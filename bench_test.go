// Benchmarks regenerating the paper's evaluation, one per table/figure.
// Each benchmark iteration runs the corresponding experiment at a reduced
// scale (the full-scale numbers live in EXPERIMENTS.md and come from
// cmd/figures). Custom metrics report the headline quantity of each figure
// so `go test -bench=.` doubles as a shape regression check.
//
// Run a single figure: go test -bench=BenchmarkFig08 -benchtime=1x
package dibs_test

import (
	"testing"

	"dibs"
	"dibs/internal/experiments"
	"dibs/internal/packet"
	"dibs/internal/topology"
)

// benchScale keeps a single iteration around a second of wall time.
const benchScale = 0.05

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables := e.Run(experiments.Opts{Seed: int64(i + 1), Scale: benchScale})
		if len(tables) == 0 || len(tables[0].Rows) == 0 && len(tables[0].Notes) == 0 {
			b.Fatalf("%s produced no output", id)
		}
	}
}

// --- §2 worked examples ---

func BenchmarkFig01PacketTrace(b *testing.B)    { benchExperiment(b, "fig01") }
func BenchmarkFig02DetourTimeline(b *testing.B) { benchExperiment(b, "fig02") }

// --- §3 requirements ---

func BenchmarkFig04HotLinks(b *testing.B)        { benchExperiment(b, "fig04") }
func BenchmarkFig05NeighborBuffers(b *testing.B) { benchExperiment(b, "fig05") }

// --- §5.2 Click testbed ---

func BenchmarkFig06ClickIncast(b *testing.B) { benchExperiment(b, "fig06") }

// --- §5.4 traffic sweeps ---

func BenchmarkFig07BufferSizes(b *testing.B)     { benchExperiment(b, "fig07") }
func BenchmarkFig08BackgroundSweep(b *testing.B) { benchExperiment(b, "fig08") }
func BenchmarkFig09QueryRateSweep(b *testing.B)  { benchExperiment(b, "fig09") }
func BenchmarkFig10ResponseSizes(b *testing.B)   { benchExperiment(b, "fig10") }
func BenchmarkFig11IncastDegree(b *testing.B)    { benchExperiment(b, "fig11") }

// --- §5.5 network configurations ---

func BenchmarkFig12SmallBuffers(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkFig13TTLLimits(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkDBASharedBuffers(b *testing.B)  { benchExperiment(b, "dba") }
func BenchmarkOversubscription(b *testing.B)  { benchExperiment(b, "oversub") }

// --- §5.6 / §5.7 / §5.8 ---

func BenchmarkFairness(b *testing.B)            { benchExperiment(b, "fair") }
func BenchmarkFig14ExtremeQPS(b *testing.B)     { benchExperiment(b, "fig14") }
func BenchmarkFig15LargeResponses(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkFig16PFabric(b *testing.B)        { benchExperiment(b, "fig16") }

// --- §7 ablations ---

func BenchmarkPolicyAblation(b *testing.B)   { benchExperiment(b, "policies") }
func BenchmarkTopologyAblation(b *testing.B) { benchExperiment(b, "topos") }
func BenchmarkDupAckAblation(b *testing.B)   { benchExperiment(b, "dupack") }
func BenchmarkPFCComparison(b *testing.B)    { benchExperiment(b, "pfc") }
func BenchmarkCIOQArchitecture(b *testing.B) { benchExperiment(b, "cioq") }
func BenchmarkPacketSpray(b *testing.B)      { benchExperiment(b, "spray") }
func BenchmarkDelayedAck(b *testing.B)       { benchExperiment(b, "delack") }
func BenchmarkMinRTO(b *testing.B)           { benchExperiment(b, "minrto") }

// --- simulator micro/meso benchmarks ---

// BenchmarkSimulatorThroughput measures raw simulation speed on the paper's
// default workload: virtual-seconds simulated per wall-second and events
// processed per second. The Heap variant runs the identical workload on the
// reference heap engine, so one `go test -bench` invocation yields a
// machine-noise-free wheel/heap comparison.
func BenchmarkSimulatorThroughput(b *testing.B)     { benchThroughput(b, "wheel") }
func BenchmarkSimulatorThroughputHeap(b *testing.B) { benchThroughput(b, "heap") }

func benchThroughput(b *testing.B, engine string) {
	b.ReportAllocs()
	var events, pkts uint64
	for i := 0; i < b.N; i++ {
		cfg := dibs.DefaultConfig()
		cfg.Seed = int64(i + 1)
		cfg.Duration = 50 * dibs.Millisecond
		cfg.Drain = 50 * dibs.Millisecond
		cfg.Engine = engine
		n := dibs.Build(cfg)
		r := n.Run()
		events += n.Sched.Executed()
		pkts += r.PoolBorrowed
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	// Packets emitted per iteration (data + ACKs), so cmd/bench can derive
	// allocs per packet.
	b.ReportMetric(float64(pkts)/float64(b.N), "pkts/op")
}

// BenchmarkHybridThroughput measures the hybrid fluid/packet fast path on
// the workload it exists for: a long-flow-dominated run where every flow
// demotes to the rate model after its cwnd stabilizes (DESIGN §9). The
// fluidMB/op metric confirms the rate model carried the bulk of the bytes;
// cmd/bench separately times the identical workload in packet mode and
// gates the wall-clock ratio (hybrid_speedup in BENCH_9.json).
func BenchmarkHybridThroughput(b *testing.B) {
	b.ReportAllocs()
	var events, fluidBytes uint64
	for i := 0; i < b.N; i++ {
		cfg := hybridBenchConfig()
		cfg.Seed = int64(i + 1)
		n := dibs.Build(cfg)
		r := n.Run()
		if r.FluidDemotions == 0 {
			b.Fatal("no long flow demoted to the rate model")
		}
		events += n.Sched.Executed()
		fluidBytes += r.FluidBytes
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	b.ReportMetric(float64(fluidBytes)/float64(b.N)/(1<<20), "fluidMB/op")
}

// hybridBenchConfig is the long-background-flows workload shared by
// BenchmarkHybridThroughput and cmd/bench's hybrid-speedup probe: a K=4
// fat-tree saturated by one long flow per adjacent host pair, NICs marking
// like the fabric so the flows reach the stationary DCTCP steady state the
// rate model is calibrated for.
func hybridBenchConfig() dibs.Config {
	cfg := dibs.DefaultConfig()
	cfg.FatTreeK = 4
	cfg.Query = nil
	cfg.BGInterarrival = 0
	cfg.Long = &dibs.LongFlows{PerPair: 1}
	cfg.HostMarkAtPkts = 20
	cfg.Mode = dibs.ModeHybrid
	cfg.Duration = 300 * dibs.Millisecond
	cfg.Drain = 0
	return cfg
}

// BenchmarkPacketPool measures the steady-state borrow/return cycle of the
// packet arena. It must report 0 allocs/op: any allocation here means the
// pool is not recycling and the per-packet hot path regressed (cmd/bench
// gates on it).
func BenchmarkPacketPool(b *testing.B) {
	pool := packet.NewPool()
	pool.Put(pool.Get()) // warm one node into the freelist
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pool.Get()
		p.Kind = packet.Data
		p.PayloadBytes = packet.DefaultMSS
		pool.Put(p)
	}
}

// BenchmarkNextHops measures the per-hop FIB lookup on a K=8 fat-tree —
// the lookup every switch performs for every packet.
func BenchmarkNextHops(b *testing.B) {
	topo := topology.FatTree(8, topology.DefaultLink, 1)
	hosts := topo.Hosts()
	sws := topo.Switches()
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(topo.NextHops(sws[i%len(sws)], hosts[i%len(hosts)]))
	}
	if sink == 0 {
		b.Fatal("no next hops found")
	}
}

// BenchmarkIncastBurst measures one synchronized 100-way incast absorbed by
// DIBS end to end.
func BenchmarkIncastBurst(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := dibs.DefaultConfig()
		cfg.Seed = int64(i + 1)
		cfg.BGInterarrival = 0
		cfg.Query = nil
		cfg.OneShot = &dibs.OneShot{At: dibs.Millisecond, Senders: 100, FlowsPerSender: 1, Bytes: 20_000}
		cfg.Duration = 10 * dibs.Millisecond
		cfg.Drain = 300 * dibs.Millisecond
		r := dibs.Run(cfg)
		if r.QueriesDone != 1 {
			b.Fatal("incast did not complete")
		}
	}
}
