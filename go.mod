module dibs

go 1.22
