// pFabric comparison (paper §5.8): under a mixed workload, pFabric's
// strict shortest-remaining-first prioritization wins for query traffic but
// starves long background flows as the query rate rises; DCTCP+DIBS keeps
// both traffic classes healthy.
//
//	go run ./examples/pfabric
package main

import (
	"fmt"

	"dibs"
)

func main() {
	fmt.Println("DIBS vs pFabric at increasing query rates (degree 40 x 20KB, background on)")
	fmt.Println()
	fmt.Printf("%6s | %12s %12s | %12s %12s\n", "qps", "QCT99-pfab", "QCT99-dibs", "BGFCT99-pfab", "BGFCT99-dibs")
	fmt.Println("-------+---------------------------+---------------------------")

	for _, qps := range []float64{300, 1000, 2000} {
		pf := dibs.DefaultConfig()
		pf.Duration = 300 * dibs.Millisecond
		pf.Query = &dibs.QueryConfig{QPS: qps, Degree: 40, ResponseBytes: 20_000}
		pf.DIBS = false
		pf.Buffer = dibs.BufferPFabric
		pf.BufferPkts = 24 // pFabric's tiny priority queues
		pf.MarkAtPkts = 0
		pf.Transport = dibs.PFabric
		pfr := dibs.Run(pf)

		db := dibs.DefaultConfig()
		db.Duration = 300 * dibs.Millisecond
		db.Query = &dibs.QueryConfig{QPS: qps, Degree: 40, ResponseBytes: 20_000}
		dbr := dibs.Run(db)

		fmt.Printf("%6g | %10.2fms %10.2fms | %10.2fms %10.2fms\n",
			qps, pfr.QCT99, dbr.QCT99, pfr.BGFCT99, dbr.BGFCT99)
	}

	fmt.Println()
	fmt.Println("Expected shape (paper Fig. 16): comparable QCTs (DIBS slightly ahead at high")
	fmt.Println("qps, where pFabric drops and retransmits heavily), while pFabric's background")
	fmt.Println("FCT blows up — its priority queues always serve shorter flows first.")
}
