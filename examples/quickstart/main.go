// Quickstart: run the paper's default workload (K=8 fat-tree, DCTCP, 300
// queries/s of 40-way incast plus background traffic) once with plain
// DCTCP and once with DIBS, and compare the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"dibs"
)

func main() {
	fmt.Println("DIBS quickstart: 200ms of the paper's default workload, both arms")
	fmt.Println()

	run := func(useDIBS bool) *dibs.Results {
		cfg := dibs.DefaultConfig()
		cfg.DIBS = useDIBS
		cfg.Duration = 200 * dibs.Millisecond
		cfg.Drain = 300 * dibs.Millisecond
		cfg.Seed = 42
		return dibs.Run(cfg)
	}

	dctcp := run(false)
	withDIBS := run(true)

	fmt.Printf("%-28s %15s %15s\n", "", "DCTCP", "DCTCP+DIBS")
	row := func(name string, a, b float64) {
		fmt.Printf("%-28s %15.2f %15.2f\n", name, a, b)
	}
	row("QCT p50 (ms)", dctcp.QCT50, withDIBS.QCT50)
	row("QCT p99 (ms)", dctcp.QCT99, withDIBS.QCT99)
	row("short-flow FCT p99 (ms)", dctcp.ShortFCT99, withDIBS.ShortFCT99)
	row("packet drops", float64(dctcp.TotalDrops), float64(withDIBS.TotalDrops))
	row("detours", float64(dctcp.Detours), float64(withDIBS.Detours))
	row("timeouts", float64(dctcp.Timeouts), float64(withDIBS.Timeouts))
	fmt.Println()

	if withDIBS.TotalDrops == 0 && dctcp.TotalDrops > 0 {
		fmt.Println("DIBS absorbed every incast burst in neighboring switch buffers: zero loss,")
		fmt.Printf("and the 99th-percentile query completion time dropped from %.1fms to %.1fms.\n",
			dctcp.QCT99, withDIBS.QCT99)
	}
}
