// Detour-policy ablation (paper §7): the paper ships the parameter-free
// random policy and sketches richer ones — load-aware, flow-based,
// probabilistic. This example pits all of them (plus plain drop-tail)
// against a hard incast workload on the K=8 fat-tree and on JellyFish,
// whose higher path diversity §7 argues suits detouring well.
//
//	go run ./examples/policies
package main

import (
	"fmt"

	"dibs"
)

func main() {
	policies := []struct {
		name string
		on   bool
		pol  dibs.DetourPolicy
	}{
		{"droptail", false, ""},
		{"random", true, dibs.PolicyRandom},
		{"load-aware", true, dibs.PolicyLoadAware},
		{"flow-based", true, dibs.PolicyFlowBased},
		{"probabilistic", true, dibs.PolicyProbabilistic},
	}

	for _, topoName := range []string{"fattree-k8", "jellyfish"} {
		fmt.Printf("== %s ==\n", topoName)
		fmt.Printf("%-14s %10s %10s %10s %9s\n", "policy", "QCT99", "FCT99", "detours", "drops")
		for _, p := range policies {
			cfg := dibs.DefaultConfig()
			cfg.Duration = 250 * dibs.Millisecond
			cfg.Query = &dibs.QueryConfig{QPS: 1000, Degree: 40, ResponseBytes: 20_000}
			if topoName == "jellyfish" {
				cfg.Topo = dibs.TopoJellyfish
				cfg.JellyfishSwitches = 20
				cfg.JellyfishDegree = 6
				cfg.JellyfishHostsPer = 4
				cfg.Query.Degree = 20
			}
			cfg.DIBS = p.on
			if p.on {
				cfg.Policy = p.pol
			}
			r := dibs.Run(cfg)
			fmt.Printf("%-14s %8.2fms %8.2fms %10d %9d\n",
				p.name, r.QCT99, r.ShortFCT99, r.Detours, r.TotalDrops)
		}
		fmt.Println()
	}
}
