// Incast walkthrough: the paper's §5.2 Click-testbed experiment. Five
// servers each open ten simultaneous 32KB flows to a sixth server — the
// classic partition-aggregate burst that overwhelms a shallow switch
// buffer. Three switch configurations are compared: infinite buffers
// (ideal), 100-packet drop-tail (today's switches), and 100-packet buffers
// with DIBS.
//
//	go run ./examples/incast
package main

import (
	"fmt"

	"dibs"
)

func main() {
	type arm struct {
		name   string
		buffer dibs.Config
	}
	configure := func(mode string) dibs.Config {
		cfg := dibs.DefaultConfig()
		cfg.Topo = dibs.TopoClick
		cfg.MarkAtPkts = 0 // the testbed ran plain TCP without ECN
		cfg.BGInterarrival = 0
		cfg.Query = nil
		cfg.OneShot = &dibs.OneShot{
			At:             dibs.Millisecond,
			Senders:        5,
			FlowsPerSender: 10,
			Bytes:          32_000,
		}
		cfg.Duration = 10 * dibs.Millisecond
		cfg.Drain = 800 * dibs.Millisecond
		switch mode {
		case "infinite":
			cfg.Buffer = dibs.BufferInfinite
			cfg.DIBS = false
			cfg.DupAckThresh = 3
		case "droptail":
			cfg.Buffer = dibs.BufferDropTail
			cfg.DIBS = false
			cfg.DupAckThresh = 3
		case "dibs":
			cfg.Buffer = dibs.BufferDropTail
			cfg.DIBS = true
			cfg.DupAckThresh = 0 // §4: disable fast retransmit under detouring
		}
		return cfg
	}

	fmt.Println("Incast: 5 senders x 10 flows x 32KB -> 1 receiver (Click testbed topology)")
	fmt.Println("Query completes when the receiver holds all 50 responses. 20 runs per arm.")
	fmt.Println()
	fmt.Printf("%-12s %10s %10s %10s %10s %9s\n", "setting", "QCT-p50", "QCT-p99", "QCT-max", "timeouts", "drops")

	for _, mode := range []string{"infinite", "dibs", "droptail"} {
		var qcts []float64
		var timeouts, drops int
		for seed := int64(0); seed < 20; seed++ {
			cfg := configure(mode)
			cfg.Seed = 1000 + seed
			r := dibs.Run(cfg)
			if r.QueriesDone == 1 {
				qcts = append(qcts, r.QCT99)
			}
			timeouts += r.Timeouts
			drops += int(r.TotalDrops)
		}
		fmt.Printf("%-12s %9.2fms %9.2fms %9.2fms %10d %9d\n",
			mode, percentile(qcts, 50), percentile(qcts, 99), percentile(qcts, 100), timeouts, drops)
	}
	fmt.Println()
	fmt.Println("Expected shape (paper Fig. 6): infinite and DIBS complete every query in one")
	fmt.Println("burst; droptail loses packets, a ~9% tail of responses takes a 10ms+ timeout,")
	fmt.Println("and those stragglers gate the query.")
}

// percentile is a tiny nearest-rank helper for the example output.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(p/100*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
