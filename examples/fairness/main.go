// Fairness walkthrough (paper §5.6): 64 node-disjoint host pairs on the
// K=8 fat-tree run N long-lived flows in each direction. If the network is
// stable and DIBS does not induce unfairness, each flow should get roughly
// 1/N Gbps and Jain's fairness index should stay above 0.9.
//
// Also shown, beyond the paper: the same experiment with randomly shuffled
// (mostly cross-pod) pairs, where flow-level ECMP hash collisions — not
// DIBS — create rate imbalance.
//
//	go run ./examples/fairness
package main

import (
	"fmt"
	"sort"

	"dibs"
)

func main() {
	fmt.Println("Long-lived flow fairness on the K=8 fat-tree (150ms, DCTCP+DIBS)")
	fmt.Println()
	fmt.Printf("%12s %8s | %10s %12s %12s %12s\n",
		"pairing", "N/pair", "flows", "Jain", "median Mbps", "min Mbps")

	for _, shuffle := range []bool{false, true} {
		name := "adjacent"
		if shuffle {
			name = "shuffled"
		}
		for _, n := range []int{1, 4, 16} {
			cfg := dibs.DefaultConfig()
			cfg.BGInterarrival = 0
			cfg.Query = nil
			cfg.Duration = 150 * dibs.Millisecond
			cfg.Drain = 0
			cfg.Long = &dibs.LongFlows{PerPair: n, Shuffle: shuffle}
			res := dibs.Run(cfg)

			g := append([]float64(nil), res.LongGoodputs...)
			sort.Float64s(g)
			fmt.Printf("%12s %8d | %10d %12.3f %12.1f %12.1f\n",
				name, n, len(g), res.JainIndex, g[len(g)/2]/1e6, g[0]/1e6)
		}
	}

	fmt.Println()
	fmt.Println("Expected shape: adjacent pairs (same edge switch, the paper's setup) share")
	fmt.Println("each 1Gbps host link equally -> Jain near 1 for every N. Shuffled pairs add")
	fmt.Println("ECMP path collisions at the aggregation/core layers, lowering the index —")
	fmt.Println("an effect of flow-level ECMP, not of DIBS (detours are rare without incast).")
}
