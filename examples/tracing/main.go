// Tracing walkthrough: run a bursty incast with the structured event log
// enabled, write it to JSONL, read it back, and answer the kinds of
// questions the paper's Figures 1-2 pose: when did detouring start and
// stop, which flow suffered most, and how long did its packets wander?
//
//	go run ./examples/tracing
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"

	"dibs"
)

func main() {
	cfg := dibs.DefaultConfig()
	cfg.BGInterarrival = 0
	cfg.Query = nil
	cfg.OneShot = &dibs.OneShot{
		At:             dibs.Millisecond,
		Senders:        80,
		FlowsPerSender: 1,
		Bytes:          20_000,
	}
	cfg.Duration = 10 * dibs.Millisecond
	cfg.Drain = 500 * dibs.Millisecond
	cfg.TraceEvents = true
	cfg.Seed = 7

	net := dibs.Build(cfg)
	res := net.Run()
	fmt.Printf("run: %s\n\n", res)

	// Round-trip the log through its wire format, as an external analysis
	// tool would consume it.
	var buf bytes.Buffer
	if err := dibs.WriteEventTrace(&buf, net); err != nil {
		log.Fatal(err)
	}
	wireBytes := buf.Len()
	events, err := dibs.ReadEventTrace(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("event log: %d events (%d bytes of JSONL)\n", len(events), wireBytes)

	// When did detouring start and stop?
	var first, last dibs.Time
	detoursPerFlow := map[int64]int{}
	for _, e := range events {
		if e.Kind.String() != "detour" {
			continue
		}
		if first == 0 || e.T < first {
			first = e.T
		}
		if e.T > last {
			last = e.T
		}
		detoursPerFlow[int64(e.Flow)]++
	}
	if last > 0 {
		fmt.Printf("detouring active %v -> %v (%.2fms of burst absorption)\n",
			first, last, (last - first).Millis())
	}

	// Which flows bore the detour storm?
	type fd struct {
		flow int64
		n    int
	}
	var worst []fd
	for f, n := range detoursPerFlow {
		worst = append(worst, fd{f, n})
	}
	sort.Slice(worst, func(i, j int) bool { return worst[i].n > worst[j].n })
	fmt.Println("\nmost-detoured flows:")
	for i := 0; i < 5 && i < len(worst); i++ {
		fmt.Printf("  flow %3d: %3d detour decisions\n", worst[i].flow, worst[i].n)
	}
	fmt.Printf("\n(every one of the %d flows still completed losslessly: drops = %d)\n",
		res.QueriesDone*80, res.TotalDrops)
}
