package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dibs/internal/packet"
)

// fakeView is a scriptable SwitchView.
type fakeView struct {
	hostPorts map[int]bool
	full      map[int]bool
	lens      map[int]int
	caps      map[int]int
	n         int
}

func (v *fakeView) NumPorts() int         { return v.n }
func (v *fakeView) IsHostPort(p int) bool { return v.hostPorts[p] }
func (v *fakeView) QueueFull(p int) bool  { return v.full[p] }
func (v *fakeView) QueueLen(p int) int    { return v.lens[p] }
func (v *fakeView) QueueCap(p int) int {
	if c, ok := v.caps[p]; ok {
		return c
	}
	return 100
}

func newView(n int) *fakeView {
	return &fakeView{
		n:         n,
		hostPorts: map[int]bool{},
		full:      map[int]bool{},
		lens:      map[int]int{},
		caps:      map[int]int{},
	}
}

func pkt() *packet.Packet { return &packet.Packet{Kind: packet.Data, Flow: 7} }

func TestRandomAvoidsHostAndFullPorts(t *testing.T) {
	v := newView(8)
	v.full[0] = true // desired
	v.hostPorts[1] = true
	v.hostPorts[2] = true
	v.full[3] = true
	// eligible: 4,5,6,7
	rng := rand.New(rand.NewSource(1))
	pol := NewRandom()
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		got := pol.SelectDetour(v, pkt(), 0, rng)
		if got < 4 {
			t.Fatalf("random detour picked ineligible port %d", got)
		}
		seen[got] = true
	}
	for p := 4; p <= 7; p++ {
		if !seen[p] {
			t.Errorf("eligible port %d never chosen in 200 draws", p)
		}
	}
}

func TestRandomDropWhenNoEligible(t *testing.T) {
	v := newView(4)
	for i := 0; i < 4; i++ {
		v.full[i] = true
	}
	rng := rand.New(rand.NewSource(1))
	if got := NewRandom().SelectDetour(v, pkt(), 0, rng); got != -1 {
		t.Fatalf("expected drop (-1), got %d", got)
	}
	// All host ports except desired: also drop.
	v2 := newView(4)
	v2.full[0] = true
	v2.hostPorts[1] = true
	v2.hostPorts[2] = true
	v2.hostPorts[3] = true
	if got := NewRandom().SelectDetour(v2, pkt(), 0, rng); got != -1 {
		t.Fatalf("expected drop with only host ports, got %d", got)
	}
}

func TestRandomNeverPicksDesired(t *testing.T) {
	// Desired port not marked full (e.g. shared-pool race); policy must
	// still not bounce the packet back onto the same queue.
	v := newView(3)
	v.hostPorts[2] = true
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		if got := NewRandom().SelectDetour(v, pkt(), 0, rng); got != 1 {
			t.Fatalf("only port 1 is eligible, got %d", got)
		}
	}
}

func TestLoadAwarePicksShortest(t *testing.T) {
	v := newView(5)
	v.full[0] = true
	v.lens[1] = 30
	v.lens[2] = 5
	v.lens[3] = 40
	v.lens[4] = 12
	rng := rand.New(rand.NewSource(1))
	if got := NewLoadAware().SelectDetour(v, pkt(), 0, rng); got != 2 {
		t.Fatalf("load-aware picked %d, want 2", got)
	}
}

func TestLoadAwareTieBreakUniform(t *testing.T) {
	v := newView(4)
	v.full[0] = true
	v.lens[1] = 5
	v.lens[2] = 5
	v.lens[3] = 9
	rng := rand.New(rand.NewSource(42))
	counts := map[int]int{}
	for i := 0; i < 1000; i++ {
		counts[NewLoadAware().SelectDetour(v, pkt(), 0, rng)]++
	}
	if counts[3] != 0 {
		t.Fatal("longer queue chosen despite shorter ties")
	}
	if counts[1] < 300 || counts[2] < 300 {
		t.Fatalf("tie break skewed: %v", counts)
	}
}

func TestFlowBasedConsistency(t *testing.T) {
	v := newView(6)
	v.full[0] = true
	pol := NewFlowBased()
	rng := rand.New(rand.NewSource(1))
	p := pkt()
	first := pol.SelectDetour(v, p, 0, rng)
	for i := 0; i < 20; i++ {
		if got := pol.SelectDetour(v, p, 0, rng); got != first {
			t.Fatal("flow-based detour not consistent for same flow")
		}
	}
	// Different flows should spread across ports.
	seen := map[int]bool{}
	for f := packet.FlowID(0); f < 64; f++ {
		seen[pol.SelectDetour(v, &packet.Packet{Flow: f}, 0, rng)] = true
	}
	if len(seen) < 3 {
		t.Fatalf("flow-based hashing too skewed: %d distinct ports", len(seen))
	}
}

func TestProbabilisticEarlyDetour(t *testing.T) {
	v := newView(4)
	v.caps[0] = 100
	pol := NewProbabilistic(0.8)
	rng := rand.New(rand.NewSource(1))
	lowPri := &packet.Packet{Flow: 1, Priority: 1 << 20}

	v.lens[0] = 50 // below start: never detour early
	for i := 0; i < 100; i++ {
		if pol.ShouldDetourEarly(v, lowPri, 0, rng) {
			t.Fatal("early detour below start occupancy")
		}
	}
	v.lens[0] = 99 // nearly full: almost always detour low priority
	hits := 0
	for i := 0; i < 1000; i++ {
		if pol.ShouldDetourEarly(v, lowPri, 0, rng) {
			hits++
		}
	}
	if hits < 900 {
		t.Fatalf("early detour rate at 99%% occupancy = %d/1000", hits)
	}
	// Highest priority (0) packets are never early-detoured.
	hiPri := &packet.Packet{Flow: 2, Priority: 0}
	for i := 0; i < 100; i++ {
		if pol.ShouldDetourEarly(v, hiPri, 0, rng) {
			t.Fatal("high-priority packet early-detoured")
		}
	}
}

func TestProbabilisticFullFallsBackToRandom(t *testing.T) {
	v := newView(3)
	v.full[0] = true
	rng := rand.New(rand.NewSource(1))
	got := NewProbabilistic(0.8).SelectDetour(v, pkt(), 0, rng)
	if got != 1 && got != 2 {
		t.Fatalf("probabilistic full-queue detour = %d", got)
	}
}

func TestProbabilisticBadStartPanics(t *testing.T) {
	for _, s := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("start=%v should panic", s)
				}
			}()
			NewProbabilistic(s)
		}()
	}
}

func TestPolicyNames(t *testing.T) {
	if NewRandom().Name() != "random" ||
		NewLoadAware().Name() != "load-aware" ||
		NewFlowBased().Name() != "flow-based" ||
		NewProbabilistic(0.5).Name() != "probabilistic" {
		t.Fatal("policy name mismatch")
	}
}

func TestFlowHashDistribution(t *testing.T) {
	buckets := make([]int, 4)
	for f := packet.FlowID(0); f < 4000; f++ {
		buckets[FlowHash(f, 1)%4]++
	}
	for i, b := range buckets {
		if b < 800 || b > 1200 {
			t.Fatalf("bucket %d = %d, too skewed", i, b)
		}
	}
}

func TestFlowHashSeedIndependence(t *testing.T) {
	// Different seeds should decorrelate the same flow's choices.
	same := 0
	for f := packet.FlowID(0); f < 1000; f++ {
		if FlowHash(f, 1)%4 == FlowHash(f, 2)%4 {
			same++
		}
	}
	if same > 400 {
		t.Fatalf("seeds too correlated: %d/1000 collisions", same)
	}
}

// Property: every policy returns either -1 or an eligible port, for random
// switch states.
func TestQuickPoliciesReturnEligible(t *testing.T) {
	policies := []Policy{NewRandom(), NewLoadAware(), NewFlowBased(), NewProbabilistic(0.8)}
	f := func(seed int64, hostMask, fullMask uint8, desired uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		v := newView(8)
		d := int(desired % 8)
		v.full[d] = true
		for i := 0; i < 8; i++ {
			if hostMask&(1<<uint(i)) != 0 {
				v.hostPorts[i] = true
			}
			if fullMask&(1<<uint(i)) != 0 {
				v.full[i] = true
			}
			v.lens[i] = rng.Intn(100)
		}
		p := &packet.Packet{Flow: packet.FlowID(seed)}
		for _, pol := range policies {
			got := pol.SelectDetour(v, p, d, rng)
			if got == -1 {
				// Verify there truly was no eligible port.
				for i := 0; i < 8; i++ {
					if i != d && !v.hostPorts[i] && !v.full[i] {
						return false
					}
				}
				continue
			}
			if got == d || v.hostPorts[got] || v.full[got] || got >= 8 || got < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRandomSelect(b *testing.B) {
	v := newView(8)
	v.full[0] = true
	v.hostPorts[1] = true
	rng := rand.New(rand.NewSource(1))
	pol := NewRandom()
	p := pkt()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pol.SelectDetour(v, p, 0, rng)
	}
}
