// Package core implements detour-induced buffer sharing (DIBS), the
// contribution of the paper. When a switch's output queue toward a packet's
// destination is full, a DIBS policy selects another switch-facing port with
// spare buffer to forward ("detour") the packet on, instead of dropping it.
//
// The paper's default policy is Random (§2): pick uniformly among ports that
// (a) do not face an end host and (b) whose queues are not full. It has no
// tunable parameters and requires no coordination between switches. §7
// sketches richer policies — load-aware, flow-based, and probabilistic —
// which are implemented here as well for the ablation experiments.
package core

import (
	"math/rand"

	"dibs/internal/packet"
)

// SwitchView is the switch state a detour policy may consult. It is
// deliberately restricted to information available at line rate in a real
// switch: port count, host-facing bitmap, and per-queue occupancy.
type SwitchView interface {
	// NumPorts returns the number of output ports.
	NumPorts() int
	// IsHostPort reports whether the port faces an end host. DIBS never
	// detours to hosts: they do not forward packets not meant for them.
	IsHostPort(port int) bool
	// QueueFull reports whether the port's output queue would refuse a
	// new packet.
	QueueFull(port int) bool
	// QueueLen returns the port's current queue length in packets.
	QueueLen(port int) int
	// QueueCap returns the port's queue capacity in packets; 0 when
	// unbounded or governed by a shared pool.
	QueueCap(port int) int
}

// Policy decides where to detour a packet whose desired output queue is
// full.
type Policy interface {
	// Name identifies the policy in results and configs.
	Name() string
	// SelectDetour returns the port to detour p on, or -1 to drop.
	// desired is the (full) port the FIB chose. rng is the switch-local
	// PRNG; policies must use it rather than global randomness so runs
	// are reproducible.
	SelectDetour(sw SwitchView, p *packet.Packet, desired int, rng *rand.Rand) int
}

// EarlyDetourer is an optional extension: policies that sometimes detour
// before the queue is strictly full (the paper's §7 "probabilistic
// detouring"). The switch consults it on every enqueue.
type EarlyDetourer interface {
	// ShouldDetourEarly reports whether p should be detoured even though
	// the desired queue still has room.
	ShouldDetourEarly(sw SwitchView, p *packet.Packet, desired int, rng *rand.Rand) bool
}

// eligible appends to dst the detour-eligible ports: switch-facing, not
// full, and not the (full) desired port. Returns the filled slice.
func eligible(sw SwitchView, desired int, dst []int) []int {
	for i := 0; i < sw.NumPorts(); i++ {
		if i == desired || sw.IsHostPort(i) || sw.QueueFull(i) {
			continue
		}
		dst = append(dst, i)
	}
	return dst
}

// Random is the paper's parameter-free default policy.
type Random struct {
	scratch []int
}

// NewRandom returns the random detour policy.
func NewRandom() *Random { return &Random{} }

// Name implements Policy.
func (*Random) Name() string { return "random" }

// SelectDetour implements Policy: uniform choice among eligible ports.
func (r *Random) SelectDetour(sw SwitchView, p *packet.Packet, desired int, rng *rand.Rand) int {
	r.scratch = eligible(sw, desired, r.scratch[:0])
	if len(r.scratch) == 0 {
		return -1
	}
	return r.scratch[rng.Intn(len(r.scratch))]
}

// LoadAware detours to the eligible port with the shortest queue (§7
// "Load-aware detouring"), breaking ties uniformly at random.
type LoadAware struct {
	scratch []int
}

// NewLoadAware returns the load-aware detour policy.
func NewLoadAware() *LoadAware { return &LoadAware{} }

// Name implements Policy.
func (*LoadAware) Name() string { return "load-aware" }

// SelectDetour implements Policy.
func (l *LoadAware) SelectDetour(sw SwitchView, p *packet.Packet, desired int, rng *rand.Rand) int {
	l.scratch = eligible(sw, desired, l.scratch[:0])
	if len(l.scratch) == 0 {
		return -1
	}
	best := -1
	bestLen := 0
	ties := 0
	for _, port := range l.scratch {
		n := sw.QueueLen(port)
		switch {
		case best == -1 || n < bestLen:
			best, bestLen, ties = port, n, 1
		case n == bestLen:
			// Reservoir-sample among ties for a uniform choice.
			ties++
			if rng.Intn(ties) == 0 {
				best = port
			}
		}
	}
	return best
}

// FlowBased detours all packets of a flow through the same port (§7
// "Flow-based detouring"), chosen by hashing the flow ID over the eligible
// set, so detoured packets of one flow follow a consistent path and
// reordering within the detour itself is avoided.
type FlowBased struct {
	scratch []int
}

// NewFlowBased returns the flow-based detour policy.
func NewFlowBased() *FlowBased { return &FlowBased{} }

// Name implements Policy.
func (*FlowBased) Name() string { return "flow-based" }

// SelectDetour implements Policy.
func (f *FlowBased) SelectDetour(sw SwitchView, p *packet.Packet, desired int, rng *rand.Rand) int {
	f.scratch = eligible(sw, desired, f.scratch[:0])
	if len(f.scratch) == 0 {
		return -1
	}
	h := FlowHash(p.Flow, 0x9e3779b97f4a7c15)
	return f.scratch[int(h%uint64(len(f.scratch)))]
}

// Probabilistic implements §7 "Probabilistic detouring": as a queue fills,
// lower-priority packets are detoured with increasing probability before
// the queue is strictly full, reserving headroom for higher-priority
// traffic. Packets with Priority 0 are treated as highest priority and are
// only detoured when the queue is actually full.
type Probabilistic struct {
	// Start is the occupancy fraction at which early detouring begins.
	Start float64
	inner Random
}

// NewProbabilistic returns a probabilistic policy beginning early detours
// at the given occupancy fraction (e.g. 0.8).
func NewProbabilistic(start float64) *Probabilistic {
	if start <= 0 || start > 1 {
		panic("core: Probabilistic start must be in (0,1]")
	}
	return &Probabilistic{Start: start}
}

// Name implements Policy.
func (*Probabilistic) Name() string { return "probabilistic" }

// SelectDetour implements Policy: same as Random once the queue is full.
func (pr *Probabilistic) SelectDetour(sw SwitchView, p *packet.Packet, desired int, rng *rand.Rand) int {
	return pr.inner.SelectDetour(sw, p, desired, rng)
}

// ShouldDetourEarly implements EarlyDetourer. The detour probability rises
// linearly from 0 at Start occupancy to 1 at full occupancy, scaled down
// for high-priority (low Priority value) packets.
func (pr *Probabilistic) ShouldDetourEarly(sw SwitchView, p *packet.Packet, desired int, rng *rand.Rand) bool {
	capPkts := sw.QueueCap(desired)
	if capPkts <= 0 || p.Priority == 0 {
		return false
	}
	occ := float64(sw.QueueLen(desired)) / float64(capPkts)
	if occ < pr.Start {
		return false
	}
	prob := (occ - pr.Start) / (1 - pr.Start)
	return rng.Float64() < prob
}

// FlowHash mixes a flow ID with a per-switch seed into a well-distributed
// hash, used for ECMP next-hop selection and flow-based detouring. It is
// the 64-bit finalizer of SplitMix64.
func FlowHash(flow packet.FlowID, seed uint64) uint64 {
	z := uint64(flow) + seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
