// Package switching models output-queued switches and the links between
// nodes. Each output port owns a queue (any discipline from internal/queue)
// and a transmitter that serializes one packet at a time at the link rate,
// then delivers it to the peer after the propagation delay.
//
// The Switch forwarding path implements the paper's data plane: FIB lookup
// with flow-level ECMP (§3), DCTCP ECN marking in the queue discipline,
// TTL handling (§5.5.3), and — when a DIBS policy is installed — detouring
// instead of dropping when the desired output queue is full (§2).
package switching

import (
	"fmt"
	"math/rand"

	"dibs/internal/core"
	"dibs/internal/eventq"
	"dibs/internal/packet"
	"dibs/internal/queue"
	"dibs/internal/rng"
	"dibs/internal/topology"
)

// Handler consumes packets arriving at a node.
type Handler interface {
	// Receive is invoked when a packet fully arrives at the node's port.
	// The handler takes ownership of p: it forwards, buffers, or frees it.
	//dibslint:owns the receiving node assumes custody of the packet
	Receive(p *packet.Packet, port int)
}

// DropReason classifies packet drops for the metrics layer.
type DropReason uint8

const (
	// DropOverflow: the output queue was full and no DIBS policy was
	// installed.
	DropOverflow DropReason = iota
	// DropNoDetour: the queue was full and DIBS found no eligible port
	// (all neighbors full — the §5.7 breaking regime), or TTL budget
	// exhausted detour options.
	DropNoDetour
	// DropTTL: the packet's TTL reached zero.
	DropTTL
	// DropNoRoute: the FIB had no entry for the destination.
	DropNoRoute
	// DropEvicted: a pFabric queue evicted this lower-priority packet.
	DropEvicted
	numDropReasons
)

// NumDropReasons is the number of distinct drop reasons.
const NumDropReasons = int(numDropReasons)

func (r DropReason) String() string {
	switch r {
	case DropOverflow:
		return "overflow"
	case DropNoDetour:
		return "no-detour"
	case DropTTL:
		return "ttl"
	case DropNoRoute:
		return "no-route"
	case DropEvicted:
		return "evicted"
	default:
		return fmt.Sprintf("DropReason(%d)", uint8(r))
	}
}

// Hooks are optional observation callbacks; nil fields are skipped. They
// exist for the metrics layer and must not mutate packets.
type Hooks struct {
	// OnDrop fires when node discards p for the given reason.
	OnDrop func(node packet.NodeID, p *packet.Packet, reason DropReason)
	// OnDetour fires when node detours p: the FIB wanted desired, DIBS
	// chose chosen.
	OnDetour func(node packet.NodeID, p *packet.Packet, desired, chosen int)
	// OnDeliver fires when a host receives p (wired by the host layer).
	OnDeliver func(node packet.NodeID, p *packet.Packet)
}

// OutPort is one output port: a queue plus a store-and-forward transmitter
// attached to a link.
type OutPort struct {
	sched    *eventq.Scheduler
	Q        queue.Queue
	rateBps  int64
	delay    eventq.Time
	peer     Handler
	peerPort int
	busy     bool

	// fluidDelay adds the fluid-modeled standing queue's waiting time to
	// every delivery (hybrid mode, zero otherwise): a packet crossing a
	// fluid-saturated bottleneck sits behind the modeled flows' standing
	// queue exactly as it would behind their real packets. Because the
	// delay is charged at delivery (after serialization) while the
	// transmitter moves straight on to the next packet, a back-to-back
	// burst of n packets arrives at the far end at t + standing + i/rate —
	// byte-for-byte the FIFO schedule of a burst queued behind a standing
	// queue. Packets serialize at the full link rate: in FIFO order, fluid
	// bytes arriving after a real packet queue behind it, so present
	// packet traffic is never slowed by the fluid flows' future arrivals;
	// the fluid engine yields the capacity packets consume on its next
	// tick (measured arrivals). Changes only on fluid-engine ticks.
	fluidDelay eventq.Time

	// jitter, when jitterMax > 0, adds a uniform random per-packet
	// delivery delay in [0, jitterMax). Identical self-clocked flows
	// otherwise phase-lock on the deterministic ECN threshold and share
	// bandwidth unfairly — an artifact real switches' variable pipeline
	// latency prevents. The stream is port-local, so a port's jitter draws
	// are a function of its own packet sequence alone — the property that
	// keeps deliveries identical no matter how the network is sharded.
	jitter    rng.Stream
	jitterMax eventq.Time
	// lastArrival keeps deliveries FIFO under jitter.
	lastArrival eventq.Time

	// pri is the delivery ordering key for this link: every delivery event
	// is scheduled with it, so same-instant arrivals across the whole
	// network execute in a fixed per-link order rather than in scheduling
	// order — the tie-break that makes sharded runs byte-identical to
	// sequential ones. Assigned once at network assembly, unique per
	// directed link, always > 0 (ordinary events use pri 0 and run first).
	pri int64

	// remote, when set, replaces local delivery scheduling: the link's far
	// end lives in another shard, so at serialization end the packet is
	// snapshotted, its node returned to this shard's arena, and the
	// snapshot handed to the shard driver stamped with its arrival time
	// and link key.
	remote func(at eventq.Time, pri int64, w packet.Wire)

	// paused stops the transmitter from starting new packets (Ethernet
	// flow control); the in-flight serialization always completes.
	paused bool

	// current is the packet occupying the transmitter; inflight holds the
	// packets on the wire (serialized, not yet delivered). Keeping them as
	// port state lets the transmitter reuse the two callbacks below instead
	// of closing over each packet. serDone/deliver are bound once at
	// construction; per-packet closures were the hot path's top allocator.
	current  *packet.Packet
	inflight pktRing
	serDone  func()
	deliver  func()
	// OnEnqueue, when set, observes every accepted packet after it is
	// queued but before the transmitter may pick it up; OnDequeue
	// observes every packet leaving the queue for the wire. Ethernet
	// flow control uses the pair for ingress buffer accounting.
	OnEnqueue func(p *packet.Packet)
	OnDequeue func(p *packet.Packet)

	// PausedTime accumulates how long the port sat paused with a
	// non-empty queue (head-of-line blocking metric).
	PausedTime  eventq.Time
	pausedSince eventq.Time

	// TxPackets and TxBytes count fully transmitted packets. RxBytes
	// counts bytes accepted into the queue — the port's offered packet
	// load. The fluid layer measures packet demand from arrivals rather
	// than service: a fold throttles the transmitter, so a service-based
	// measure would under-report demand in exact proportion to the
	// throttling and packet traffic could never reclaim bandwidth.
	TxPackets uint64
	TxBytes   uint64
	RxBytes   uint64
	// BusyTime accumulates serialization time, for utilization metrics.
	BusyTime eventq.Time
}

// NewOutPort creates a port transmitting at rateBps with one-way
// propagation delay, delivering into peer at peerPort.
func NewOutPort(sched *eventq.Scheduler, q queue.Queue, rateBps int64, delay eventq.Time, peer Handler, peerPort int) *OutPort {
	return InitOutPort(&OutPort{}, sched, q, rateBps, delay, peer, peerPort)
}

// InitOutPort initializes o in place. Network builders allocate their port
// structs en bloc (one slice for the whole topology) and wire each element
// here, so constructing a fat tree pays one allocation rather than one per
// port; NewOutPort is the single-port convenience wrapper over it.
func InitOutPort(o *OutPort, sched *eventq.Scheduler, q queue.Queue, rateBps int64, delay eventq.Time, peer Handler, peerPort int) *OutPort {
	if rateBps <= 0 {
		panic("switching: rate must be positive")
	}
	*o = OutPort{sched: sched, Q: q, rateBps: rateBps, delay: delay, peer: peer, peerPort: peerPort}
	o.serDone = o.onSerDone
	o.deliver = o.onDeliver
	return o
}

// SetPeer rewires the port's receiving end (used during network assembly).
func (o *OutPort) SetPeer(peer Handler, peerPort int) {
	o.peer = peer
	o.peerPort = peerPort
}

// SetJitter enables uniform per-packet delivery jitter in [0, max), drawn
// from the port-local stream seeded with seed. Pass max 0 to disable.
func (o *OutPort) SetJitter(seed uint64, max eventq.Time) {
	o.jitter = rng.Stream(seed)
	o.jitterMax = max
}

// SetDeliveryPri assigns the link's same-instant delivery ordering key
// (used during network assembly; unique per directed link, > 0).
func (o *OutPort) SetDeliveryPri(pri int64) { o.pri = pri }

// SetRemote marks the link's far end as living in another scheduler shard:
// instead of scheduling a local delivery event, serialized packets are
// snapshotted and handed to emit with their arrival time and link key.
func (o *OutPort) SetRemote(emit func(at eventq.Time, pri int64, w packet.Wire)) {
	o.remote = emit
}

// SerializationTime returns how long a packet of the given wire size
// occupies the transmitter at the link rate.
func (o *OutPort) SerializationTime(bytes int) eventq.Time {
	return eventq.Time(int64(bytes) * 8 * int64(eventq.Second) / o.rateBps)
}

// RateBps returns the nominal link rate.
func (o *OutPort) RateBps() int64 { return o.rateBps }

// SetFluid folds the fluid model's standing-queue delay into the port:
// every delivery waits it on top of propagation (see fluidDelay for why
// this — not a residual serialization rate — is the FIFO-faithful fold).
// Pass 0 to clear.
func (o *OutPort) SetFluid(standing eventq.Time) {
	o.fluidDelay = standing
}

// Enqueue offers p to the port's queue and starts the transmitter if idle.
func (o *OutPort) Enqueue(p *packet.Packet) queue.Result {
	r := o.Q.Enqueue(p)
	if r.Accepted {
		o.RxBytes += uint64(p.Size())
		if o.OnEnqueue != nil {
			o.OnEnqueue(p)
		}
		o.kick()
	}
	return r
}

// SetPaused pauses or resumes the transmitter (Ethernet flow control).
func (o *OutPort) SetPaused(paused bool) {
	if o.paused == paused {
		return
	}
	o.paused = paused
	if paused {
		o.pausedSince = o.sched.Now()
		return
	}
	o.PausedTime += o.sched.Now() - o.pausedSince
	o.kick()
}

// Paused reports whether the transmitter is flow-control paused.
func (o *OutPort) Paused() bool { return o.paused }

// kick starts transmitting the head-of-queue packet if the port is idle.
func (o *OutPort) kick() {
	if o.busy || o.paused {
		return
	}
	p := o.Q.Dequeue()
	if p == nil {
		return
	}
	if o.OnDequeue != nil {
		o.OnDequeue(p)
	}
	o.busy = true
	o.current = p
	ser := o.SerializationTime(p.Size())
	o.BusyTime += ser
	o.sched.After(ser, o.serDone)
}

// onSerDone fires when the current packet's last bit leaves the
// transmitter: put it on the wire and start the next one.
func (o *OutPort) onSerDone() {
	p := o.current
	o.current = nil
	o.busy = false
	o.TxPackets++
	o.TxBytes += uint64(p.Size())
	at := o.sched.Now() + o.delay + o.fluidDelay
	if o.jitterMax > 0 {
		at += eventq.Time(o.jitter.Int63n(int64(o.jitterMax)))
	}
	if at < o.lastArrival {
		at = o.lastArrival // keep the link FIFO under jitter
	}
	o.lastArrival = at
	if o.remote != nil {
		// Cross-shard link: the arrival is at least one full propagation
		// delay ahead (the driver's lookahead), so the hand-off message
		// always lands beyond the current synchronization window. The
		// node goes back to this shard's arena; the far shard restores
		// the snapshot into one of its own.
		w := p.Snapshot()
		packet.Free(p)
		o.remote(at, o.pri, w)
		o.kick()
		return
	}
	// Deliveries are scheduled in nondecreasing time (the FIFO clamp above)
	// and the scheduler breaks same-(time,pri) ties in insertion order, so
	// the wire ring pops in push order and onDeliver always dequeues the
	// right packet.
	o.inflight.push(p)
	o.sched.AtPri(at, o.pri, o.deliver)
	o.kick()
}

// onDeliver fires when the oldest in-flight packet reaches the peer.
func (o *OutPort) onDeliver() {
	p := o.inflight.pop()
	o.peer.Receive(p, o.peerPort)
}

// InFlight counts packets serialized but not yet delivered, plus the one
// occupying the transmitter (for conservation checks).
func (o *OutPort) InFlight() int {
	n := o.inflight.n
	if o.current != nil {
		n++
	}
	return n
}

// pktRing is a never-shrinking power-of-two FIFO ring holding the packets
// in flight on a link.
type pktRing struct {
	buf  []*packet.Packet
	head int
	n    int
}

func (r *pktRing) push(p *packet.Packet) {
	if r.n == len(r.buf) {
		// Start at 16: a port that carries any traffic at all holds a few
		// packets in flight, so a smaller initial ring just schedules extra
		// grow steps for every active port in the network.
		grown := make([]*packet.Packet, max(16, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf = grown
		r.head = 0
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = p
	r.n++
}

//dibslint:owns pop hands the in-flight packet back out of the ring's custody
func (r *pktRing) pop() *packet.Packet {
	if r.n == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return p
}

// Switch is an output-queued switch.
type Switch struct {
	ID    packet.NodeID
	topo  *topology.Topology
	ports []*OutPort

	policy core.Policy
	early  core.EarlyDetourer // non-nil when policy supports early detours
	// MarkDetours sets CE on detoured packets (paper §5.3: detoured
	// packets are also marked). Enabled for ECN transports.
	MarkDetours bool
	// PacketSpray switches ECMP from flow-level to packet-level: each
	// packet picks a uniform random shortest-path next hop. §6 argues
	// even this cannot relieve incast (the last hop has one path); it is
	// implemented to quantify that claim.
	PacketSpray bool

	rng   *rand.Rand
	seed  uint64 // per-switch ECMP hash seed
	hooks *Hooks
	// pfc is non-nil when Ethernet flow control is enabled (§6
	// comparison); see pfc.go.
	pfc *pfcState

	// Counters, indexable by DropReason.
	Drops     [NumDropReasons]uint64
	Detours   uint64
	RxPackets uint64
}

// NewSwitch creates a switch for node id of topo. ports must be indexed
// identically to topo.Ports(id). policy may be nil for plain drop-tail
// behavior. hooks may be nil.
func NewSwitch(id packet.NodeID, topo *topology.Topology, ports []*OutPort, policy core.Policy, rng *rand.Rand, hooks *Hooks) *Switch {
	if len(ports) != len(topo.Ports(id)) {
		panic(fmt.Sprintf("switching: switch %d has %d ports, topology says %d",
			id, len(ports), len(topo.Ports(id))))
	}
	s := &Switch{
		ID:     id,
		topo:   topo,
		ports:  ports,
		policy: policy,
		rng:    rng,
		seed:   core.FlowHash(packet.FlowID(id), 0xD1B5) | 1,
		hooks:  hooks,
	}
	if ed, ok := policy.(core.EarlyDetourer); ok {
		s.early = ed
	}
	return s
}

// Ports exposes the switch's output ports (for metrics sampling).
func (s *Switch) Ports() []*OutPort { return s.ports }

// --- core.SwitchView implementation ---

// NumPorts implements core.SwitchView.
func (s *Switch) NumPorts() int { return len(s.ports) }

// IsHostPort implements core.SwitchView.
func (s *Switch) IsHostPort(port int) bool { return s.topo.IsHostPort(s.ID, port) }

// QueueFull implements core.SwitchView.
func (s *Switch) QueueFull(port int) bool { return s.ports[port].Q.Full() }

// QueueLen implements core.SwitchView.
func (s *Switch) QueueLen(port int) int { return s.ports[port].Q.Len() }

// QueueCap implements core.SwitchView.
func (s *Switch) QueueCap(port int) int {
	if c, ok := s.ports[port].Q.(interface{ Capacity() int }); ok {
		return c.Capacity()
	}
	return 0
}

// Receive implements Handler: the switch forwarding path.
func (s *Switch) Receive(p *packet.Packet, inPort int) {
	s.RxPackets++
	p.Hops++
	p.TTL--
	if p.TTL <= 0 {
		s.drop(p, DropTTL)
		return
	}
	nhs := s.topo.NextHops(s.ID, p.Dst)
	if len(nhs) == 0 {
		s.drop(p, DropNoRoute)
		return
	}
	// Flow-level ECMP by default: all packets of a flow take the same
	// next hop at this switch (§3). Packet spraying randomizes per packet.
	var desired int
	if s.PacketSpray && len(nhs) > 1 {
		desired = int(nhs[s.rng.Intn(len(nhs))])
	} else {
		desired = int(nhs[core.FlowHash(p.Flow, s.seed)%uint64(len(nhs))])
	}

	// §7 probabilistic policies may detour before the queue is full.
	if s.early != nil && !s.ports[desired].Q.Full() &&
		s.early.ShouldDetourEarly(s, p, desired, s.rng) {
		if d := s.policy.SelectDetour(s, p, desired, s.rng); d >= 0 {
			s.detour(p, desired, d)
			return
		}
	}

	if s.pfc != nil {
		p.Ingress = inPort
	}
	r := s.ports[desired].Enqueue(p)
	if r.Accepted {
		s.trace(p, desired, false)
		if r.Evicted != nil {
			s.drop(r.Evicted, DropEvicted)
		}
		return
	}
	if s.policy == nil {
		s.drop(p, DropOverflow)
		return
	}
	d := s.policy.SelectDetour(s, p, desired, s.rng)
	if d < 0 {
		// Every neighbor's buffer is full too: the §5.7 breaking regime.
		s.drop(p, DropNoDetour)
		return
	}
	s.detour(p, desired, d)
}

// detour forwards p out port d instead of the full desired port.
func (s *Switch) detour(p *packet.Packet, desired, d int) {
	p.Detours++
	if s.MarkDetours {
		p.CE = true
	}
	s.Detours++
	if s.hooks != nil && s.hooks.OnDetour != nil {
		s.hooks.OnDetour(s.ID, p, desired, d)
	}
	r := s.ports[d].Enqueue(p)
	if !r.Accepted {
		// The policy verified the queue had room; in a single-threaded
		// simulator this cannot race, so refusal is a policy bug.
		panic(fmt.Sprintf("switching: detour port %d on switch %d refused packet", d, s.ID))
	}
	s.trace(p, d, true)
	if r.Evicted != nil {
		s.drop(r.Evicted, DropEvicted)
	}
}

func (s *Switch) trace(p *packet.Packet, port int, detoured bool) {
	if p.Trace != nil {
		p.Trace = append(p.Trace, packet.TraceHop{Node: s.ID, Port: port, Detoured: detoured})
	}
}

func (s *Switch) drop(p *packet.Packet, reason DropReason) {
	s.Drops[reason]++
	if s.hooks != nil && s.hooks.OnDrop != nil {
		s.hooks.OnDrop(s.ID, p, reason)
	}
	packet.Free(p)
}

// TotalDrops sums drops across reasons.
func (s *Switch) TotalDrops() uint64 {
	var t uint64
	for _, d := range s.Drops {
		t += d
	}
	return t
}

// QueuedPackets counts packets buffered across all output queues (for
// conservation checks).
func (s *Switch) QueuedPackets() int {
	total := 0
	for _, op := range s.ports {
		total += op.Q.Len()
	}
	return total
}

// Node is the common surface of the switch architectures (output-queued
// Switch and CIOQSwitch) that the network assembly and monitors rely on.
type Node interface {
	Handler
	// Ports returns the egress ports.
	Ports() []*OutPort
	// QueuedPackets counts packets buffered anywhere in the switch.
	QueuedPackets() int
	// TotalDrops sums packet drops.
	TotalDrops() uint64
}

var (
	_ Node = (*Switch)(nil)
	_ Node = (*CIOQSwitch)(nil)
)
