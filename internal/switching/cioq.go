package switching

// Combined input/output queued (CIOQ) switch, the §4 alternative
// architecture: arriving packets wait in per-(input,output) virtual output
// queues (VOQs) drawn from a per-input ingress buffer; a crossbar with
// configurable speedup transfers them to small dedicated egress queues.
// DIBS slots into the forwarding engine exactly as §4 describes: "when a
// packet arrives at an input port, the forwarding engine determines its
// output port; if the desired output queue is full, [it] can detour the
// packet to another output port."

import (
	"fmt"
	"math/rand"

	"dibs/internal/core"
	"dibs/internal/eventq"
	"dibs/internal/packet"
	"dibs/internal/topology"
)

// CIOQConfig sizes the CIOQ data path.
type CIOQConfig struct {
	// IngressCap is the per-input buffer shared by that input's VOQs.
	IngressCap int
	// Speedup is the crossbar speedup relative to the line rate
	// (2 is the classical value that makes CIOQ emulate output queueing).
	Speedup int
}

// DefaultCIOQ matches common practice: 100-packet ingress per port,
// speedup 2.
var DefaultCIOQ = CIOQConfig{IngressCap: 100, Speedup: 2}

func (c *CIOQConfig) validate() {
	if c.IngressCap < 1 {
		panic("switching: CIOQ ingress capacity must be >= 1")
	}
	if c.Speedup < 1 {
		panic("switching: CIOQ speedup must be >= 1")
	}
}

// voq is a minimal packet FIFO (slice-backed; VOQ occupancy is bounded by
// the ingress buffer so growth is fine).
type voq struct {
	pkts []*packet.Packet
	head int
}

func (q *voq) push(p *packet.Packet) { q.pkts = append(q.pkts, p) }
func (q *voq) empty() bool           { return q.head >= len(q.pkts) }

//dibslint:owns pop hands the buffered packet back out of the VOQ's custody
func (q *voq) pop() *packet.Packet {
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head++
	if q.head == len(q.pkts) {
		q.pkts = q.pkts[:0]
		q.head = 0
	}
	return p
}

// CIOQSwitch is an input/output-queued switch.
type CIOQSwitch struct {
	ID    packet.NodeID
	topo  *topology.Topology
	sched *eventq.Scheduler
	cfg   CIOQConfig

	// egress ports: small dedicated output queues plus transmitters.
	ports []*OutPort

	voqs        [][]voq // voqs[input][output]
	ingressUsed []int
	rr          []int  // per-output round-robin input pointer
	active      []bool // per-output transfer loop running
	// transferFns caches one self-rescheduling closure per output so the
	// crossbar loop does not allocate a fresh closure per packet.
	transferFns []func()

	policy      core.Policy
	MarkDetours bool
	rng         *rand.Rand
	seed        uint64
	hooks       *Hooks

	// Counters.
	Drops     [NumDropReasons]uint64
	Detours   uint64
	RxPackets uint64
	// IngressDrops counts packets lost to ingress-buffer overflow (a
	// failure mode output-queued switches do not have).
	IngressDrops uint64
}

// NewCIOQSwitch builds a CIOQ switch for node id. ports are the egress
// transmitters (small queues). policy may be nil.
func NewCIOQSwitch(id packet.NodeID, topo *topology.Topology, sched *eventq.Scheduler,
	ports []*OutPort, cfg CIOQConfig, policy core.Policy, rng *rand.Rand, hooks *Hooks) *CIOQSwitch {
	cfg.validate()
	if len(ports) != len(topo.Ports(id)) {
		panic(fmt.Sprintf("switching: CIOQ switch %d has %d ports, topology says %d",
			id, len(ports), len(topo.Ports(id))))
	}
	n := len(ports)
	s := &CIOQSwitch{
		ID:          id,
		topo:        topo,
		sched:       sched,
		cfg:         cfg,
		ports:       ports,
		voqs:        make([][]voq, n),
		ingressUsed: make([]int, n),
		rr:          make([]int, n),
		active:      make([]bool, n),
		policy:      policy,
		rng:         rng,
		seed:        core.FlowHash(packet.FlowID(id), 0xC109) | 1,
		hooks:       hooks,
	}
	for i := range s.voqs {
		s.voqs[i] = make([]voq, n)
	}
	s.transferFns = make([]func(), n)
	for out := range s.transferFns {
		out := out
		s.transferFns[out] = func() { s.transfer(out) }
	}
	return s
}

// Ports exposes the egress ports (for monitors).
func (s *CIOQSwitch) Ports() []*OutPort { return s.ports }

// --- core.SwitchView over the egress queues ---

// NumPorts implements core.SwitchView.
func (s *CIOQSwitch) NumPorts() int { return len(s.ports) }

// IsHostPort implements core.SwitchView.
func (s *CIOQSwitch) IsHostPort(port int) bool { return s.topo.IsHostPort(s.ID, port) }

// QueueFull implements core.SwitchView. The §4 detour predicate is the
// state of the dedicated egress queue.
func (s *CIOQSwitch) QueueFull(port int) bool { return s.ports[port].Q.Full() }

// QueueLen implements core.SwitchView.
func (s *CIOQSwitch) QueueLen(port int) int { return s.ports[port].Q.Len() }

// QueueCap implements core.SwitchView.
func (s *CIOQSwitch) QueueCap(port int) int {
	if c, ok := s.ports[port].Q.(interface{ Capacity() int }); ok {
		return c.Capacity()
	}
	return 0
}

// Receive implements Handler: the CIOQ forwarding engine.
func (s *CIOQSwitch) Receive(p *packet.Packet, inPort int) {
	s.RxPackets++
	p.Hops++
	p.TTL--
	if p.TTL <= 0 {
		s.drop(p, DropTTL)
		return
	}
	nhs := s.topo.NextHops(s.ID, p.Dst)
	if len(nhs) == 0 {
		s.drop(p, DropNoRoute)
		return
	}
	desired := int(nhs[core.FlowHash(p.Flow, s.seed)%uint64(len(nhs))])

	// §4 DIBS hook: the forwarding engine checks the desired egress queue
	// and detours before the packet ever enters a VOQ.
	if s.policy != nil && s.ports[desired].Q.Full() {
		d := s.policy.SelectDetour(s, p, desired, s.rng)
		if d >= 0 {
			p.Detours++
			if s.MarkDetours {
				p.CE = true
			}
			s.Detours++
			if s.hooks != nil && s.hooks.OnDetour != nil {
				s.hooks.OnDetour(s.ID, p, desired, d)
			}
			desired = d
		}
		// If no eligible port, fall through: the VOQ may still hold it.
	}

	if s.ingressUsed[inPort] >= s.cfg.IngressCap {
		s.IngressDrops++
		s.drop(p, DropOverflow)
		return
	}
	s.ingressUsed[inPort]++
	s.voqs[inPort][desired].push(p)
	s.startTransfer(desired)
}

// startTransfer kicks the per-output crossbar loop.
func (s *CIOQSwitch) startTransfer(out int) {
	if s.active[out] {
		return
	}
	s.active[out] = true
	s.transfer(out)
}

// transfer moves one packet from a VOQ to the egress queue, then schedules
// itself after the crossbar transfer time (packet serialization divided by
// the speedup). It idles when no VOQ feeds this output; when the egress
// queue is momentarily full it waits one MTU transfer time and retries —
// with DIBS, arrivals were already detoured before entering the VOQs, so
// this wait is the input-side backpressure a real CIOQ exhibits.
func (s *CIOQSwitch) transfer(out int) {
	in := s.pickInput(out)
	if in < 0 {
		s.active[out] = false
		return
	}
	if s.ports[out].Q.Full() {
		s.sched.After(s.cellTime(packet.DefaultMTU), s.transferFns[out])
		return
	}
	p := s.voqs[in][out].pop()
	s.ingressUsed[in]--
	s.rr[out] = (in + 1) % len(s.ports)
	r := s.ports[out].Enqueue(p)
	if !r.Accepted {
		// Cannot happen: fullness was checked above and the simulator is
		// single-threaded.
		panic("switching: CIOQ egress refused after fullness check")
	}
	if p.Trace != nil {
		p.Trace = append(p.Trace, packet.TraceHop{Node: s.ID, Port: out, Detoured: false})
	}
	s.sched.After(s.cellTime(p.Size()), s.transferFns[out])
}

// pickInput round-robins over inputs with a waiting packet for out.
func (s *CIOQSwitch) pickInput(out int) int {
	n := len(s.ports)
	for k := 0; k < n; k++ {
		in := (s.rr[out] + k) % n
		if !s.voqs[in][out].empty() {
			return in
		}
	}
	return -1
}

// cellTime is the crossbar occupancy for a packet of the given wire size.
func (s *CIOQSwitch) cellTime(bytes int) eventq.Time {
	t := s.ports[0].SerializationTime(bytes) / eventq.Time(s.cfg.Speedup)
	if t < 1 {
		t = 1
	}
	return t
}

func (s *CIOQSwitch) drop(p *packet.Packet, reason DropReason) {
	s.Drops[reason]++
	if s.hooks != nil && s.hooks.OnDrop != nil {
		s.hooks.OnDrop(s.ID, p, reason)
	}
	packet.Free(p)
}

// TotalDrops sums drops across reasons.
func (s *CIOQSwitch) TotalDrops() uint64 {
	var t uint64
	for _, d := range s.Drops {
		t += d
	}
	return t
}

// QueuedPackets counts packets buffered in VOQs plus egress queues (for
// conservation checks).
func (s *CIOQSwitch) QueuedPackets() int {
	total := 0
	for _, used := range s.ingressUsed {
		total += used
	}
	for _, op := range s.ports {
		total += op.Q.Len()
	}
	return total
}
