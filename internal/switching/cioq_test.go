package switching

import (
	"math/rand"
	"testing"

	"dibs/internal/core"
	"dibs/internal/eventq"
	"dibs/internal/packet"
	"dibs/internal/queue"
	"dibs/internal/topology"
)

// buildCIOQ wires a CIOQ switch over the Click topology's first edge
// switch with capture handlers, a small egress queue, and the given config.
func buildCIOQ(t *testing.T, cfg CIOQConfig, policy core.Policy, egressCap int) (*CIOQSwitch, *topology.Topology, map[int]*capture, *eventq.Scheduler, *Hooks) {
	t.Helper()
	topo := topology.ClickTestbed(topology.DefaultLink)
	sched := eventq.NewScheduler()
	hooks := &Hooks{}
	sw := topo.Switches()[2]
	caps := make(map[int]*capture)
	var ports []*OutPort
	for pi, p := range topo.Ports(sw) {
		c := &capture{sched: sched}
		caps[pi] = c
		ports = append(ports, NewOutPort(sched, queue.NewDropTail(egressCap, 0), p.RateBps, p.Delay, c, p.PeerPort))
	}
	s := NewCIOQSwitch(sw, topo, sched, ports, cfg, policy, rand.New(rand.NewSource(7)), hooks)
	return s, topo, caps, sched, hooks
}

func TestCIOQForwardsSinglePacket(t *testing.T) {
	s, topo, caps, sched, _ := buildCIOQ(t, DefaultCIOQ, nil, 10)
	host := topo.Hosts()[0]
	hp := hostPortOf(t, topo, s.ID, host)
	p := dataPkt(1, host, 64)
	s.Receive(p, 0)
	sched.Run()
	if len(caps[hp].pkts) != 1 {
		t.Fatal("packet not delivered")
	}
	if p.TTL != 63 || p.Hops != 1 {
		t.Fatalf("header updates: ttl=%d hops=%d", p.TTL, p.Hops)
	}
	if s.QueuedPackets() != 0 {
		t.Fatal("packets stuck in switch")
	}
}

func TestCIOQCrossbarContention(t *testing.T) {
	// Two inputs feed the same output: the crossbar serializes transfers,
	// FIFO per input, and everything arrives.
	s, topo, caps, sched, _ := buildCIOQ(t, DefaultCIOQ, nil, 100)
	host := topo.Hosts()[0]
	hp := hostPortOf(t, topo, s.ID, host)
	for i := 0; i < 10; i++ {
		s.Receive(dataPkt(packet.FlowID(i), host, 64), 0)
		s.Receive(dataPkt(packet.FlowID(100+i), host, 64), 1)
	}
	sched.Run()
	if got := len(caps[hp].pkts); got != 20 {
		t.Fatalf("delivered %d of 20", got)
	}
	// Per-input FIFO order preserved.
	last := map[int]packet.FlowID{}
	for _, p := range caps[hp].pkts {
		in := 0
		if p.Flow >= 100 {
			in = 1
		}
		if prev, ok := last[in]; ok && p.Flow <= prev {
			t.Fatal("per-input order violated")
		}
		last[in] = p.Flow
	}
}

func TestCIOQVOQPreventsHeadOfLineBlocking(t *testing.T) {
	// Input 0 queues traffic to a congested output (host port with tiny
	// egress) and to an idle output; the idle output's traffic must not
	// wait behind the congested one.
	s, topo, caps, sched, _ := buildCIOQ(t, CIOQConfig{IngressCap: 1000, Speedup: 2}, nil, 2)
	hostA := topo.Hosts()[0]
	hostB := topo.Hosts()[1]
	hpA := hostPortOf(t, topo, s.ID, hostA)
	hpB := hostPortOf(t, topo, s.ID, hostB)
	// 50 packets to A (will back up in the VOQ: egress cap 2), then 1 to B.
	for i := 0; i < 50; i++ {
		s.Receive(dataPkt(packet.FlowID(i), hostA, 64), 0)
	}
	s.Receive(dataPkt(999, hostB, 64), 0)
	// B's packet should arrive long before A's backlog drains (~600us).
	sched.RunUntil(100 * eventq.Microsecond)
	if len(caps[hpB].pkts) != 1 {
		t.Fatal("VOQ head-of-line blocking: idle output starved")
	}
	sched.Run()
	if len(caps[hpA].pkts) != 50 {
		t.Fatalf("A delivered %d of 50", len(caps[hpA].pkts))
	}
}

func TestCIOQIngressOverflow(t *testing.T) {
	s, topo, _, sched, hooks := buildCIOQ(t, CIOQConfig{IngressCap: 5, Speedup: 1}, nil, 1)
	drops := 0
	hooks.OnDrop = func(n packet.NodeID, p *packet.Packet, r DropReason) {
		if r == DropOverflow {
			drops++
		}
	}
	host := topo.Hosts()[0]
	pl := packet.NewPool()
	for i := 0; i < 20; i++ {
		s.Receive(pooledPkt(pl, packet.FlowID(i), host, 64), 0)
	}
	if drops == 0 || s.IngressDrops == 0 {
		t.Fatal("ingress overflow not recorded")
	}
	if int(pl.Returned()) != drops {
		t.Fatalf("overflow drops freed %d packets, want %d", pl.Returned(), drops)
	}
	sched.Run()
}

func TestCIOQDIBSDetoursAtEgressFull(t *testing.T) {
	s, topo, caps, sched, hooks := buildCIOQ(t, DefaultCIOQ, core.NewRandom(), 1)
	s.MarkDetours = true
	detours := 0
	hooks.OnDetour = func(n packet.NodeID, p *packet.Packet, desired, chosen int) {
		if s.IsHostPort(chosen) {
			t.Error("detoured to host port")
		}
		detours++
	}
	host := topo.Hosts()[0]
	hp := hostPortOf(t, topo, s.ID, host)
	// Two inputs together deliver at 2x the egress drain rate, so the
	// 1-deep egress queue fills and later arrivals find it full, taking
	// the §4 detour path.
	for i := 0; i < 40; i++ {
		i := i
		sched.At(eventq.Time(i)*6*eventq.Microsecond, func() {
			s.Receive(dataPkt(packet.FlowID(i), host, 64), i%2)
		})
	}
	sched.Run()
	if detours == 0 || s.Detours == 0 {
		t.Fatal("no detours at full egress")
	}
	// Detoured packets left via the uplinks, CE-marked.
	found := false
	for pi, c := range caps {
		if pi == hp {
			continue
		}
		for _, p := range c.pkts {
			if p.Detours > 0 && p.CE {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no marked detoured packet observed on uplinks")
	}
}

func TestCIOQTTLAndNoRouteDrops(t *testing.T) {
	s, topo, _, sched, _ := buildCIOQ(t, DefaultCIOQ, nil, 10)
	s.Receive(pooledPkt(packet.NewPool(), 1, topo.Hosts()[0], 1), 0)
	if s.Drops[DropTTL] != 1 {
		t.Fatal("TTL drop not recorded")
	}
	if s.TotalDrops() != 1 {
		t.Fatal("TotalDrops mismatch")
	}
	sched.Run()
}

func TestCIOQConfigValidation(t *testing.T) {
	for i, cfg := range []CIOQConfig{
		{IngressCap: 0, Speedup: 2},
		{IngressCap: 10, Speedup: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			buildCIOQ(t, cfg, nil, 10)
		}()
	}
}

func TestCIOQSpeedupMatters(t *testing.T) {
	// With speedup 1 the crossbar is the bottleneck under 2-input
	// contention; speedup 2 keeps the egress link saturated, finishing
	// no slower.
	run := func(speedup int) eventq.Time {
		s, topo, caps, sched, _ := buildCIOQ(t, CIOQConfig{IngressCap: 1000, Speedup: speedup}, nil, 100)
		host := topo.Hosts()[0]
		hp := hostPortOf(t, topo, s.ID, host)
		for i := 0; i < 20; i++ {
			s.Receive(dataPkt(packet.FlowID(i), host, 64), 0)
			s.Receive(dataPkt(packet.FlowID(100+i), host, 64), 1)
		}
		sched.Run()
		if len(caps[hp].pkts) != 40 {
			t.Fatalf("speedup %d: delivered %d", speedup, len(caps[hp].pkts))
		}
		return sched.Now()
	}
	t1 := run(1)
	t2 := run(2)
	if t2 > t1 {
		t.Fatalf("speedup 2 finished later (%v) than speedup 1 (%v)", t2, t1)
	}
}
