package switching

import (
	"testing"
	"testing/quick"

	"dibs/internal/eventq"
	"dibs/internal/packet"
	"dibs/internal/queue"
)

// Property: delivery jitter never reorders a link — arrivals are
// nondecreasing in time and preserve transmission order for any jitter
// magnitude and packet mix.
func TestQuickJitterPreservesFIFO(t *testing.T) {
	f := func(seed int64, jitterUs uint8, sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		sched := eventq.NewScheduler()
		sink := &capture{sched: sched}
		op := NewOutPort(sched, queue.NewInfinite(0), 1_000_000_000, 1500, sink, 0)
		op.SetJitter(uint64(seed), eventq.Time(jitterUs)*eventq.Microsecond+1)
		for i, sz := range sizes {
			op.Enqueue(&packet.Packet{
				Kind:         packet.Data,
				Flow:         packet.FlowID(i),
				PayloadBytes: int(sz%1460) + 1,
			})
		}
		sched.Run()
		if len(sink.pkts) != len(sizes) {
			return false
		}
		for i := 1; i < len(sink.pkts); i++ {
			if sink.pkts[i].Flow != packet.FlowID(i) {
				return false // order broken
			}
			if sink.times[i] < sink.times[i-1] {
				return false // time went backwards
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	sched := eventq.NewScheduler()
	op := NewOutPort(sched, queue.NewInfinite(0), 1_000_000_000, 0, &capture{sched: sched}, 0)
	// 5 full packets: 5 x 12us of serialization.
	for i := 0; i < 5; i++ {
		op.Enqueue(&packet.Packet{Kind: packet.Data, PayloadBytes: 1460})
	}
	sched.Run()
	if op.BusyTime != 60*eventq.Microsecond {
		t.Fatalf("BusyTime = %v, want 60us", op.BusyTime)
	}
	if op.TxPackets != 5 || op.TxBytes != 5*1500 {
		t.Fatalf("tx counters: %d pkts, %d bytes", op.TxPackets, op.TxBytes)
	}
}

func TestSetPeerRewires(t *testing.T) {
	sched := eventq.NewScheduler()
	a := &capture{sched: sched}
	b := &capture{sched: sched}
	op := NewOutPort(sched, queue.NewDropTail(4, 0), 1_000_000_000, 0, a, 0)
	op.Enqueue(&packet.Packet{Kind: packet.Data, PayloadBytes: 10})
	sched.Run()
	op.SetPeer(b, 3)
	op.Enqueue(&packet.Packet{Kind: packet.Data, PayloadBytes: 10})
	sched.Run()
	if len(a.pkts) != 1 || len(b.pkts) != 1 {
		t.Fatalf("deliveries a=%d b=%d", len(a.pkts), len(b.pkts))
	}
}
