package switching

import (
	"math/rand"
	"testing"

	"dibs/internal/core"
	"dibs/internal/eventq"
	"dibs/internal/packet"
	"dibs/internal/queue"
	"dibs/internal/topology"
)

// capture records delivered packets with their arrival times.
type capture struct {
	pkts  []*packet.Packet
	times []eventq.Time
	sched *eventq.Scheduler
}

func (c *capture) Receive(p *packet.Packet, port int) {
	c.pkts = append(c.pkts, p)
	c.times = append(c.times, c.sched.Now())
}

func dataPkt(flow packet.FlowID, dst packet.NodeID, ttl int) *packet.Packet {
	return &packet.Packet{Kind: packet.Data, Flow: flow, Dst: dst, PayloadBytes: 1460, TTL: ttl}
}

// pooledPkt is dataPkt for packets that will reach a terminal path (drop,
// TTL expiry, eviction): StrictFree requires those to come from a pool.
func pooledPkt(pl *packet.Pool, flow packet.FlowID, dst packet.NodeID, ttl int) *packet.Packet {
	p := pl.Get()
	p.Kind = packet.Data
	p.Flow = flow
	p.Dst = dst
	p.PayloadBytes = 1460
	p.TTL = ttl
	return p
}

func TestOutPortTiming(t *testing.T) {
	sched := eventq.NewScheduler()
	sink := &capture{sched: sched}
	// 1 Gbps, 1500ns propagation.
	op := NewOutPort(sched, queue.NewDropTail(10, 0), 1_000_000_000, 1500, sink, 0)
	p := dataPkt(1, 0, 64) // 1500B on the wire
	op.Enqueue(p)
	sched.Run()
	// Serialization: 1500B * 8 / 1Gbps = 12000ns; arrival at 12000+1500.
	if len(sink.times) != 1 || sink.times[0] != 13500 {
		t.Fatalf("arrival at %v, want 13500ns", sink.times)
	}
	if op.TxPackets != 1 || op.TxBytes != 1500 {
		t.Fatalf("tx counters: %d pkts %d bytes", op.TxPackets, op.TxBytes)
	}
	if op.BusyTime != 12000 {
		t.Fatalf("busy time = %v", op.BusyTime)
	}
}

func TestOutPortBackToBack(t *testing.T) {
	sched := eventq.NewScheduler()
	sink := &capture{sched: sched}
	op := NewOutPort(sched, queue.NewDropTail(10, 0), 1_000_000_000, 0, sink, 0)
	for i := 0; i < 3; i++ {
		op.Enqueue(dataPkt(packet.FlowID(i), 0, 64))
	}
	sched.Run()
	// Three 12us serializations back to back.
	want := []eventq.Time{12000, 24000, 36000}
	for i, w := range want {
		if sink.times[i] != w {
			t.Fatalf("packet %d arrived at %v, want %v", i, sink.times[i], w)
		}
	}
	// FIFO order preserved.
	for i, p := range sink.pkts {
		if p.Flow != packet.FlowID(i) {
			t.Fatal("FIFO order broken")
		}
	}
}

func TestOutPortSerializationScalesWithRate(t *testing.T) {
	sched := eventq.NewScheduler()
	op := NewOutPort(sched, queue.NewDropTail(1, 0), 250_000_000, 0, &capture{sched: sched}, 0)
	// Quarter rate -> 4x serialization time.
	if got := op.SerializationTime(1500); got != 48000 {
		t.Fatalf("serialization at 250Mbps = %v, want 48000ns", got)
	}
}

func TestBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rate 0")
		}
	}()
	NewOutPort(eventq.NewScheduler(), queue.NewDropTail(1, 0), 0, 0, nil, 0)
}

// buildSwitch wires a Switch over the Click testbed topology with capture
// handlers on every peer port. Returns the edge switch attached to hosts
// 0,1, its captures (indexed by the switch's own port number), and the
// scheduler.
func buildSwitch(t *testing.T, policy core.Policy, qcap int) (*Switch, *topology.Topology, map[int]*capture, *eventq.Scheduler, *Hooks) {
	t.Helper()
	topo := topology.ClickTestbed(topology.DefaultLink)
	sched := eventq.NewScheduler()
	hooks := &Hooks{}
	sw := topo.Switches()[2] // edge-0: ports to aggr-0, aggr-1, host-0-0, host-0-1
	caps := make(map[int]*capture)
	var ports []*OutPort
	for pi, p := range topo.Ports(sw) {
		c := &capture{sched: sched}
		caps[pi] = c
		ports = append(ports, NewOutPort(sched, queue.NewDropTail(qcap, 0), p.RateBps, p.Delay, c, p.PeerPort))
	}
	s := NewSwitch(sw, topo, ports, policy, rand.New(rand.NewSource(7)), hooks)
	return s, topo, caps, sched, hooks
}

func hostPortOf(t *testing.T, topo *topology.Topology, sw, host packet.NodeID) int {
	t.Helper()
	for pi, p := range topo.Ports(sw) {
		if p.Peer == host {
			return pi
		}
	}
	t.Fatalf("no port from %d to %d", sw, host)
	return -1
}

func TestSwitchForwardsToHost(t *testing.T) {
	s, topo, caps, sched, _ := buildSwitch(t, nil, 10)
	host := topo.Hosts()[0] // attached to edge-0
	hp := hostPortOf(t, topo, s.ID, host)
	p := dataPkt(1, host, 64)
	s.Receive(p, 0)
	sched.Run()
	if len(caps[hp].pkts) != 1 {
		t.Fatalf("packet not delivered to host port %d", hp)
	}
	if p.TTL != 63 {
		t.Fatalf("TTL = %d, want 63", p.TTL)
	}
	if p.Hops != 1 {
		t.Fatalf("Hops = %d", p.Hops)
	}
}

func TestSwitchECMPSpreadAndFlowStickiness(t *testing.T) {
	s, topo, caps, sched, _ := buildSwitch(t, nil, 1000)
	// Destination in another rack: 2 ECMP uplinks (ports to aggr-0/1).
	dst := topo.Hosts()[2]
	for f := packet.FlowID(0); f < 64; f++ {
		for i := 0; i < 3; i++ { // several packets per flow
			s.Receive(dataPkt(f, dst, 64), 2)
		}
	}
	sched.Run()
	up0, up1 := len(caps[0].pkts), len(caps[1].pkts)
	if up0+up1 != 64*3 {
		t.Fatalf("delivered %d+%d, want 192", up0, up1)
	}
	if up0 == 0 || up1 == 0 {
		t.Fatal("ECMP did not spread across uplinks")
	}
	// Flow stickiness: all packets of a flow exit the same port.
	seen := map[packet.FlowID]int{}
	for pi, c := range caps {
		for _, p := range c.pkts {
			if prev, ok := seen[p.Flow]; ok && prev != pi {
				t.Fatalf("flow %d split across ports %d and %d", p.Flow, prev, pi)
			}
			seen[p.Flow] = pi
		}
	}
}

func TestSwitchTTLExpiry(t *testing.T) {
	s, topo, caps, sched, hooks := buildSwitch(t, nil, 10)
	var dropped []*packet.Packet
	hooks.OnDrop = func(n packet.NodeID, p *packet.Packet, r DropReason) {
		if r != DropTTL {
			t.Errorf("reason = %v, want ttl", r)
		}
		dropped = append(dropped, p)
	}
	s.Receive(pooledPkt(packet.NewPool(), 1, topo.Hosts()[0], 1), 0)
	sched.Run()
	if len(dropped) != 1 || s.Drops[DropTTL] != 1 {
		t.Fatalf("TTL drop not recorded: %d", s.Drops[DropTTL])
	}
	for _, c := range caps {
		if len(c.pkts) != 0 {
			t.Fatal("expired packet was forwarded")
		}
	}
}

func TestSwitchDropTailWithoutDIBS(t *testing.T) {
	s, topo, _, sched, hooks := buildSwitch(t, nil, 2)
	drops := 0
	hooks.OnDrop = func(n packet.NodeID, p *packet.Packet, r DropReason) {
		if r != DropOverflow {
			t.Errorf("reason = %v", r)
		}
		drops++
	}
	host := topo.Hosts()[0]
	// 10 packets into a 2-deep queue; one may be in the transmitter.
	pl := packet.NewPool()
	for i := 0; i < 10; i++ {
		s.Receive(pooledPkt(pl, 1, host, 64), 0)
	}
	if drops == 0 || s.Drops[DropOverflow] == 0 {
		t.Fatal("no overflow drops recorded")
	}
	sched.Run()
}

func TestSwitchDIBSDetoursInsteadOfDropping(t *testing.T) {
	s, topo, caps, sched, hooks := buildSwitch(t, core.NewRandom(), 2)
	s.MarkDetours = true
	detours := 0
	hooks.OnDetour = func(n packet.NodeID, p *packet.Packet, desired, chosen int) {
		if s.IsHostPort(chosen) {
			t.Error("detoured to a host port")
		}
		detours++
	}
	hooks.OnDrop = func(n packet.NodeID, p *packet.Packet, r DropReason) {
		t.Errorf("unexpected drop: %v", r)
	}
	host := topo.Hosts()[0]
	hp := hostPortOf(t, topo, s.ID, host)
	// Capacity at one instant: (2 queued + 1 in transmitter) on the host
	// port plus the same on each of the 2 uplinks = 9 packets; send
	// exactly that many so nothing is forced to drop.
	for i := 0; i < 9; i++ {
		s.Receive(dataPkt(1, host, 64), 0)
	}
	if detours == 0 || s.Detours == 0 {
		t.Fatal("no detours under congestion")
	}
	sched.Run()
	// Detoured packets went out the uplinks (ports 0/1) and are CE-marked.
	detouredOut := 0
	for pi, c := range caps {
		if pi == hp {
			continue
		}
		for _, p := range c.pkts {
			if p.Detours > 0 {
				detouredOut++
				if !p.CE {
					t.Error("detoured packet not CE-marked")
				}
			}
		}
	}
	if detouredOut != detours {
		t.Fatalf("detoured out %d, decisions %d", detouredOut, detours)
	}
}

func TestSwitchDIBSDropsWhenAllNeighborsFull(t *testing.T) {
	s, topo, _, sched, hooks := buildSwitch(t, core.NewRandom(), 1)
	noDetour := 0
	hooks.OnDrop = func(n packet.NodeID, p *packet.Packet, r DropReason) {
		if r == DropNoDetour {
			noDetour++
		}
	}
	host := topo.Hosts()[0]
	// Flood far more than 4 ports x 1 slot can hold before any drains.
	pl := packet.NewPool()
	for i := 0; i < 50; i++ {
		s.Receive(pooledPkt(pl, packet.FlowID(i), host, 64), 0)
	}
	if noDetour == 0 {
		t.Fatal("expected DropNoDetour when the whole neighborhood is full")
	}
	sched.Run()
}

func TestSwitchTraceRecording(t *testing.T) {
	s, topo, _, sched, _ := buildSwitch(t, core.NewRandom(), 2)
	host := topo.Hosts()[0]
	traced := dataPkt(9, host, 64)
	traced.Trace = make([]packet.TraceHop, 0, 8)
	// Fill the host port queue first so the traced packet detours.
	for i := 0; i < 5; i++ {
		s.Receive(dataPkt(1, host, 64), 0)
	}
	s.Receive(traced, 0)
	sched.Run()
	if len(traced.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	hop := traced.Trace[0]
	if hop.Node != s.ID {
		t.Fatalf("trace node = %d", hop.Node)
	}
	if !hop.Detoured {
		t.Fatal("trace should record the detour")
	}
}

func TestSwitchNoRouteDrop(t *testing.T) {
	// Build a second disconnected topology to get an unroutable dst: use a
	// host id that exists but verify via a switch from a *different* use:
	// simplest is TTL-valid packet to a host with no FIB entry; all hosts
	// are reachable in our topologies, so instead check the counter stays
	// untouched during normal forwarding.
	s, topo, _, sched, _ := buildSwitch(t, nil, 10)
	s.Receive(dataPkt(1, topo.Hosts()[0], 64), 0)
	sched.Run()
	if s.Drops[DropNoRoute] != 0 {
		t.Fatal("spurious no-route drop")
	}
}

func TestSwitchQueueCapReporting(t *testing.T) {
	s, _, _, _, _ := buildSwitch(t, nil, 17)
	if s.QueueCap(0) != 17 {
		t.Fatalf("QueueCap = %d, want 17", s.QueueCap(0))
	}
	if s.NumPorts() != 4 {
		t.Fatalf("NumPorts = %d", s.NumPorts())
	}
}

func TestPFabricEvictionCountsAsDrop(t *testing.T) {
	topo := topology.ClickTestbed(topology.DefaultLink)
	sched := eventq.NewScheduler()
	sw := topo.Switches()[2]
	evicted := 0
	hooks := &Hooks{OnDrop: func(n packet.NodeID, p *packet.Packet, r DropReason) {
		if r == DropEvicted {
			evicted++
		}
	}}
	var ports []*OutPort
	for _, p := range topo.Ports(sw) {
		ports = append(ports, NewOutPort(sched, queue.NewPFabric(2), p.RateBps, p.Delay, &capture{sched: sched}, p.PeerPort))
	}
	s := NewSwitch(sw, topo, ports, nil, rand.New(rand.NewSource(1)), hooks)
	host := topo.Hosts()[0]
	pl := packet.NewPool()
	mk := func(prio int64) *packet.Packet {
		p := pooledPkt(pl, packet.FlowID(prio), host, 64)
		p.Priority = prio
		return p
	}
	// Low priority fills the 2-slot queue (one may enter the transmitter),
	// then high priority evicts.
	s.Receive(mk(1000), 0)
	s.Receive(mk(900), 0)
	s.Receive(mk(800), 0)
	s.Receive(mk(10), 0)
	if evicted == 0 || s.Drops[DropEvicted] == 0 {
		t.Fatal("pFabric eviction not recorded as drop")
	}
	sched.Run()
}

func TestTotalDrops(t *testing.T) {
	s, topo, _, sched, _ := buildSwitch(t, nil, 1)
	pl := packet.NewPool()
	for i := 0; i < 10; i++ {
		s.Receive(pooledPkt(pl, 1, topo.Hosts()[0], 64), 0)
	}
	sched.Run()
	if s.TotalDrops() != s.Drops[DropOverflow] {
		t.Fatal("TotalDrops mismatch")
	}
	if s.TotalDrops() == 0 {
		t.Fatal("expected drops")
	}
}

func TestDropReasonStrings(t *testing.T) {
	want := map[DropReason]string{
		DropOverflow: "overflow",
		DropNoDetour: "no-detour",
		DropTTL:      "ttl",
		DropNoRoute:  "no-route",
		DropEvicted:  "evicted",
	}
	for r, w := range want {
		if r.String() != w {
			t.Fatalf("%d.String() = %q", r, r.String())
		}
	}
	if DropReason(99).String() == "" {
		t.Fatal("unknown reason should still format")
	}
}
