package switching

import (
	"math/rand"
	"testing"

	"dibs/internal/core"
	"dibs/internal/eventq"
	"dibs/internal/packet"
	"dibs/internal/queue"
	"dibs/internal/topology"
)

func TestOutPortPauseResume(t *testing.T) {
	sched := eventq.NewScheduler()
	sink := &capture{sched: sched}
	op := NewOutPort(sched, queue.NewDropTail(10, 0), 1_000_000_000, 0, sink, 0)
	op.SetPaused(true)
	op.Enqueue(dataPkt(1, 0, 64))
	sched.RunUntil(100 * eventq.Microsecond)
	if len(sink.pkts) != 0 {
		t.Fatal("paused port transmitted")
	}
	if !op.Paused() {
		t.Fatal("Paused() should report true")
	}
	op.SetPaused(false)
	sched.Run()
	if len(sink.pkts) != 1 {
		t.Fatal("resume did not restart transmission")
	}
	if op.PausedTime != 100*eventq.Microsecond {
		t.Fatalf("PausedTime = %v", op.PausedTime)
	}
	// Redundant transitions are no-ops.
	op.SetPaused(false)
	op.SetPaused(true)
	op.SetPaused(true)
}

func TestPauseDoesNotAbortInFlight(t *testing.T) {
	sched := eventq.NewScheduler()
	sink := &capture{sched: sched}
	op := NewOutPort(sched, queue.NewDropTail(10, 0), 1_000_000_000, 0, sink, 0)
	op.Enqueue(dataPkt(1, 0, 64)) // starts 12us serialization
	op.Enqueue(dataPkt(2, 0, 64)) // queued
	sched.At(6*eventq.Microsecond, func() { op.SetPaused(true) })
	sched.RunUntil(eventq.Millisecond)
	// The in-flight packet completes; the queued one stays.
	if len(sink.pkts) != 1 || sink.pkts[0].Flow != 1 {
		t.Fatalf("in-flight packet mishandled: %d delivered", len(sink.pkts))
	}
	op.SetPaused(false)
	sched.Run()
	if len(sink.pkts) != 2 {
		t.Fatal("queued packet lost across pause")
	}
}

func TestOnEnqueueDequeueHooks(t *testing.T) {
	sched := eventq.NewScheduler()
	op := NewOutPort(sched, queue.NewDropTail(10, 0), 1_000_000_000, 0, &capture{sched: sched}, 0)
	var enq, deq []packet.FlowID
	op.OnEnqueue = func(p *packet.Packet) { enq = append(enq, p.Flow) }
	op.OnDequeue = func(p *packet.Packet) { deq = append(deq, p.Flow) }
	op.Enqueue(dataPkt(1, 0, 64))
	op.Enqueue(dataPkt(2, 0, 64))
	sched.Run()
	if len(enq) != 2 || len(deq) != 2 {
		t.Fatalf("hooks: enq=%v deq=%v", enq, deq)
	}
	// Enqueue hook for packet 1 must run before its dequeue hook.
	if enq[0] != 1 || deq[0] != 1 {
		t.Fatal("hook ordering broken")
	}
}

// buildPFCSwitch wires a PFC-enabled switch over the Click topology with a
// recording pause function.
func buildPFCSwitch(t *testing.T, xoff, xon int) (*Switch, *topology.Topology, map[int]*capture, *eventq.Scheduler, *[]string) {
	t.Helper()
	topo := topology.ClickTestbed(topology.DefaultLink)
	sched := eventq.NewScheduler()
	sw := topo.Switches()[2]
	caps := make(map[int]*capture)
	var ports []*OutPort
	for pi, p := range topo.Ports(sw) {
		c := &capture{sched: sched}
		caps[pi] = c
		ports = append(ports, NewOutPort(sched, queue.NewDropTail(1000, 0), p.RateBps, p.Delay, c, p.PeerPort))
	}
	s := NewSwitch(sw, topo, ports, nil, rand.New(rand.NewSource(7)), nil)
	var events []string
	s.EnablePFC(PFCConfig{
		Xoff: xoff,
		Xon:  xon,
		Pause: func(inPort int, paused bool) {
			if paused {
				events = append(events, "pause")
			} else {
				events = append(events, "resume")
			}
		},
	})
	return s, topo, caps, sched, &events
}

func TestPFCPausesAtXoffResumesAtXon(t *testing.T) {
	s, topo, _, sched, events := buildPFCSwitch(t, 5, 3)
	host := topo.Hosts()[0]
	// 8 packets arrive back-to-back at t=0 via input port 0 toward the
	// host; queue builds (transmitter drains 1 per 12us).
	for i := 0; i < 8; i++ {
		s.Receive(dataPkt(packet.FlowID(i), host, 64), 0)
	}
	if len(*events) == 0 || (*events)[0] != "pause" {
		t.Fatalf("no pause at Xoff: %v", *events)
	}
	if s.PFCPausesSent() != 1 {
		t.Fatalf("pauses sent = %d", s.PFCPausesSent())
	}
	sched.Run()
	// Queue fully drained: resume must have been sent.
	last := (*events)[len(*events)-1]
	if last != "resume" {
		t.Fatalf("no resume after drain: %v", *events)
	}
}

func TestPFCPerIngressAccounting(t *testing.T) {
	s, topo, _, sched, events := buildPFCSwitch(t, 5, 3)
	host := topo.Hosts()[0]
	// 4 packets from ingress 0, 4 from ingress 1: neither crosses Xoff=5.
	for i := 0; i < 4; i++ {
		s.Receive(dataPkt(packet.FlowID(i), host, 64), 0)
		s.Receive(dataPkt(packet.FlowID(100+i), host, 64), 1)
	}
	if len(*events) != 0 {
		t.Fatalf("pause despite per-ingress counts below Xoff: %v", *events)
	}
	sched.Run()
}

func TestPFCConfigValidation(t *testing.T) {
	topo := topology.ClickTestbed(topology.DefaultLink)
	sched := eventq.NewScheduler()
	mk := func() *Switch {
		sw := topo.Switches()[2]
		var ports []*OutPort
		for _, p := range topo.Ports(sw) {
			ports = append(ports, NewOutPort(sched, queue.NewDropTail(10, 0), p.RateBps, p.Delay, &capture{sched: sched}, p.PeerPort))
		}
		return NewSwitch(sw, topo, ports, nil, rand.New(rand.NewSource(1)), nil)
	}
	cases := []PFCConfig{
		{Xoff: 0, Xon: 0, Pause: func(int, bool) {}},
		{Xoff: 5, Xon: 5, Pause: func(int, bool) {}},
		{Xoff: 5, Xon: 6, Pause: func(int, bool) {}},
		{Xoff: 5, Xon: 3, Pause: nil},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			mk().EnablePFC(cfg)
		}()
	}
	// PFC + DIBS is rejected.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PFC on a DIBS switch should panic")
			}
		}()
		sw := topo.Switches()[2]
		var ports []*OutPort
		for _, p := range topo.Ports(sw) {
			ports = append(ports, NewOutPort(sched, queue.NewDropTail(10, 0), p.RateBps, p.Delay, &capture{sched: sched}, p.PeerPort))
		}
		s := NewSwitch(sw, topo, ports, &fakePolicy{}, rand.New(rand.NewSource(1)), nil)
		s.EnablePFC(PFCConfig{Xoff: 5, Xon: 3, Pause: func(int, bool) {}})
	}()
}

type fakePolicy struct{}

func (*fakePolicy) Name() string { return "fake" }
func (*fakePolicy) SelectDetour(sw core.SwitchView, p *packet.Packet, desired int, rng *rand.Rand) int {
	return -1
}
