package switching

import "dibs/internal/packet"

// Ethernet flow control (IEEE 802.3x PAUSE / 802.1Qbb PFC with a single
// traffic class), the alternative lossless mechanism the paper compares
// DIBS against in §6. When the packets buffered in a switch that entered
// via input port i exceed the XOFF threshold, the switch pauses the
// upstream transmitter on that link; when they drain below XON it resumes
// it. The pause cascades hop by hop toward the senders — implicit buffer
// sharing with the *upstream* switches only, whereas DIBS can claim any
// neighbor's buffer.
//
// The implementation uses per-ingress accounting (packet.Ingress scratch),
// a dequeue hook on every output port, and a pause function wired by the
// network builder that flips the upstream OutPort after one link delay.

// PFCConfig enables Ethernet flow control on a switch.
type PFCConfig struct {
	// Xoff pauses the upstream link when this many packets from one
	// ingress are buffered; Xon resumes below it. 0 < Xon < Xoff.
	Xoff, Xon int
	// Pause is invoked to pause/resume the upstream transmitter of input
	// port inPort. The builder wires it (with link-delay latency).
	Pause func(inPort int, paused bool)
}

// pfcState is the per-switch flow-control state.
type pfcState struct {
	cfg        PFCConfig
	ingress    []int  // buffered packets per input port
	pausedUp   []bool // whether we have paused each upstream
	PausesSent uint64
}

// EnablePFC activates Ethernet flow control on the switch. Must be called
// before any traffic; incompatible with DIBS (they are alternative
// mechanisms) and the builder enforces that.
func (s *Switch) EnablePFC(cfg PFCConfig) {
	if cfg.Xoff <= 0 || cfg.Xon <= 0 || cfg.Xon >= cfg.Xoff {
		panic("switching: PFC requires 0 < Xon < Xoff")
	}
	if cfg.Pause == nil {
		panic("switching: PFC requires a Pause function")
	}
	if s.policy != nil {
		panic("switching: PFC and DIBS are mutually exclusive")
	}
	s.pfc = &pfcState{
		cfg:      cfg,
		ingress:  make([]int, len(s.ports)),
		pausedUp: make([]bool, len(s.ports)),
	}
	for _, op := range s.ports {
		op.OnEnqueue = func(p *packet.Packet) { s.pfcOnEnqueue(p.Ingress) }
		op.OnDequeue = s.pfcOnDequeue
	}
}

// PFCPausesSent reports how many PAUSE frames this switch has emitted.
func (s *Switch) PFCPausesSent() uint64 {
	if s.pfc == nil {
		return 0
	}
	return s.pfc.PausesSent
}

// pfcOnEnqueue accounts an accepted packet against its ingress port and
// pauses the upstream when crossing XOFF.
func (s *Switch) pfcOnEnqueue(inPort int) {
	st := s.pfc
	st.ingress[inPort]++
	if !st.pausedUp[inPort] && st.ingress[inPort] >= st.cfg.Xoff {
		st.pausedUp[inPort] = true
		st.PausesSent++
		st.cfg.Pause(inPort, true)
	}
}

// pfcOnDequeue releases the buffer slot and resumes the upstream when
// draining below XON.
func (s *Switch) pfcOnDequeue(p *packet.Packet) {
	st := s.pfc
	in := p.Ingress
	if in < 0 || in >= len(st.ingress) {
		return
	}
	st.ingress[in]--
	if st.pausedUp[in] && st.ingress[in] < st.cfg.Xon {
		st.pausedUp[in] = false
		st.cfg.Pause(in, false)
	}
}
