package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{5 * Nanosecond, "5ns"},
		{3 * Microsecond, "3.000us"},
		{Time(2500) * Microsecond, "2.500ms"},
		{Time(1500) * Millisecond, "1.500s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestDurationConversion(t *testing.T) {
	if Duration(time.Millisecond) != Millisecond {
		t.Fatalf("Duration(1ms) = %d", Duration(time.Millisecond))
	}
	if got := (250 * Microsecond).Millis(); got != 0.25 {
		t.Fatalf("Millis = %v", got)
	}
	if got := (2 * Millisecond).Micros(); got != 2000 {
		t.Fatalf("Micros = %v", got)
	}
	if got := (500 * Millisecond).Seconds(); got != 0.5 {
		t.Fatalf("Seconds = %v", got)
	}
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %v", s.Now())
	}
	if s.Executed() != 3 {
		t.Fatalf("Executed = %d", s.Executed())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of FIFO order: %v", order)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	s.After(10, func() {
		fired = append(fired, s.Now())
		s.After(5, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	ran := 0
	s.At(10, func() { ran++ })
	s.At(20, func() { ran++ })
	s.At(30, func() { ran++ })
	s.RunUntil(20)
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if s.Now() != 20 {
		t.Fatalf("Now = %v, want 20", s.Now())
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	s.RunUntil(100)
	if ran != 3 || s.Now() != 100 {
		t.Fatalf("ran=%d now=%v", ran, s.Now())
	}
}

func TestCancel(t *testing.T) {
	s := NewScheduler()
	ran := false
	tm := s.At(10, func() { ran = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Cancel() {
		t.Fatal("Cancel should report true for pending timer")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	if tm.Pending() {
		t.Fatal("canceled timer should not be pending")
	}
	s.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
}

func TestCancelAfterFire(t *testing.T) {
	s := NewScheduler()
	tm := s.At(10, func() {})
	s.Run()
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	if tm.Cancel() {
		t.Fatal("Cancel after fire should report false")
	}
}

func TestTimerWhen(t *testing.T) {
	s := NewScheduler()
	tm := s.At(42, func() {})
	if tm.When() != 42 {
		t.Fatalf("When = %v", tm.When())
	}
}

func TestStop(t *testing.T) {
	s := NewScheduler()
	ran := 0
	s.At(10, func() { ran++; s.Stop() })
	s.At(20, func() { ran++ })
	s.Run()
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 (Stop should halt)", ran)
	}
	// Resuming picks up where it left off.
	s.Run()
	if ran != 2 {
		t.Fatalf("ran = %d after resume, want 2", ran)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestNegativeAfterPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Error("negative After should panic")
		}
	}()
	s.After(-1, func() {})
}

// Property: regardless of insertion order, events fire in nondecreasing time
// order and the clock matches each event's scheduled time.
func TestQuickTimeOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewScheduler()
		var fired []Time
		for _, d := range delays {
			at := Time(d)
			s.At(at, func() {
				if s.Now() != at {
					t.Errorf("clock %v != scheduled %v", s.Now(), at)
				}
				fired = append(fired, s.Now())
			})
		}
		s.Run()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: canceling a random subset fires exactly the complement.
func TestQuickCancelSubset(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		fired := make(map[int]bool)
		timers := make([]Timer, n)
		for i := 0; i < int(n); i++ {
			i := i
			timers[i] = s.At(Time(rng.Intn(1000)), func() { fired[i] = true })
		}
		canceled := make(map[int]bool)
		for i := range timers {
			if rng.Intn(2) == 0 {
				timers[i].Cancel()
				canceled[i] = true
			}
		}
		s.Run()
		for i := 0; i < int(n); i++ {
			if fired[i] == canceled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	var chain func()
	remaining := b.N
	chain = func() {
		if remaining <= 0 {
			return
		}
		remaining--
		s.After(Time(rng.Intn(100)+1), chain)
	}
	// Keep ~64 events in flight.
	for i := 0; i < 64 && remaining > 0; i++ {
		remaining--
		s.After(Time(rng.Intn(100)+1), chain)
	}
	b.ResetTimer()
	s.Run()
}

// TestSameInstantFIFOUnderHeapChurn pins the (at, seq) tie-break while the
// heap is busy with events at many other instants: sift-up/down must never
// reorder equal-time events. A scheduler refactor that drops the seq field
// passes the simple FIFO test by luck far more easily than this one.
func TestSameInstantFIFOUnderHeapChurn(t *testing.T) {
	s := NewScheduler()
	const tied = 100
	var got []int
	// Surround the tied instant with earlier and later events, interleaving
	// insertion so tied events arrive between unrelated heap operations.
	for i := 0; i < tied; i++ {
		i := i
		s.At(Time(10*i+5), func() {})               // before the tie
		s.At(5000, func() { got = append(got, i) }) // the tied instant
		s.At(Time(9000+7*i), func() {})             // after the tie
	}
	s.Run()
	if len(got) != tied {
		t.Fatalf("ran %d tied events, want %d", len(got), tied)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tied events out of insertion order at %d: %v", i, got[:i+1])
		}
	}
}

// TestSameInstantFIFOAcrossAtAndAfter pins that At(now+d) and After(d) land
// in one FIFO ordered purely by scheduling call order.
func TestSameInstantFIFOAcrossAtAndAfter(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.After(50, func() { got = append(got, 0) })
	s.At(50, func() { got = append(got, 1) })
	s.After(50, func() { got = append(got, 2) })
	s.At(50, func() { got = append(got, 3) })
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("mixed At/After tie broke FIFO: %v", got)
		}
	}
}

// TestNestedSameInstantRunsAfterQueued pins that an event scheduled *for the
// current instant from within a callback* runs after everything already
// queued at that instant (its seq is larger), not immediately.
func TestNestedSameInstantRunsAfterQueued(t *testing.T) {
	s := NewScheduler()
	var got []string
	s.At(10, func() {
		got = append(got, "first")
		s.At(10, func() { got = append(got, "nested") })
		s.After(0, func() { got = append(got, "nested-after0") })
	})
	s.At(10, func() { got = append(got, "second") })
	s.Run()
	want := []string{"first", "second", "nested", "nested-after0"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nested same-instant ordering: got %v, want %v", got, want)
		}
	}
}

// TestTimerWhenZeroValue is the regression test for the When() nil
// dereference: a zero Timer (never scheduled) must report 0, exactly like
// Cancel and Pending tolerate the zero value.
func TestTimerWhenZeroValue(t *testing.T) {
	var tm Timer
	if got := tm.When(); got != 0 {
		t.Fatalf("zero Timer When = %v, want 0", got)
	}
	if tm.Cancel() {
		t.Fatal("zero Timer Cancel should report false")
	}
	if tm.Pending() {
		t.Fatal("zero Timer Pending should report false")
	}
}

// TestTimerWhenAfterFire pins that a fired timer's When reports 0 rather
// than the stale scheduled time of whatever event recycled its node.
func TestTimerWhenAfterFire(t *testing.T) {
	s := NewScheduler()
	tm := s.At(42, func() {})
	s.Run()
	if got := tm.When(); got != 0 {
		t.Fatalf("fired Timer When = %v, want 0", got)
	}
}

// TestStaleHandleAfterRecycle pins the generation counter: once a timer's
// event node has been recycled to back a *different* event, the old handle
// must stay inert — Cancel must not kill the new event, Pending/When must
// not report the new event's state.
func TestStaleHandleAfterRecycle(t *testing.T) {
	s := NewScheduler()
	old := s.At(10, func() {})
	s.RunUntil(10) // fires old; its node goes to the freelist
	ran := false
	fresh := s.At(50, func() { ran = true }) // reuses the recycled node
	if old.Pending() {
		t.Fatal("stale handle reports Pending for recycled node")
	}
	if old.When() != 0 {
		t.Fatalf("stale handle When = %v, want 0", old.When())
	}
	if old.Cancel() {
		t.Fatal("stale handle Cancel reported true")
	}
	if !fresh.Pending() {
		t.Fatal("stale Cancel killed the new event")
	}
	s.Run()
	if !ran {
		t.Fatal("new event did not run after stale Cancel")
	}
}

// TestCanceledThenSweptHandle pins that handles to canceled events stay
// inert after the tombstone sweep recycles their nodes mid-queue.
func TestCanceledThenSweptHandle(t *testing.T) {
	s := NewScheduler()
	var timers []Timer
	ran := 0
	for i := 0; i < 100; i++ {
		timers = append(timers, s.At(Time(100+i), func() { ran++ }))
	}
	// Cancel well past half the heap to force at least one sweep.
	for i := 0; i < 80; i++ {
		timers[i].Cancel()
	}
	for i := 0; i < 80; i++ {
		if timers[i].Pending() {
			t.Fatalf("canceled timer %d still pending after sweep", i)
		}
		if timers[i].Cancel() {
			t.Fatalf("re-Cancel of swept timer %d reported true", i)
		}
	}
	for i := 80; i < 100; i++ {
		if !timers[i].Pending() {
			t.Fatalf("live timer %d lost by sweep", i)
		}
	}
	s.Run()
	if ran != 20 {
		t.Fatalf("ran = %d, want 20", ran)
	}
}

// TestSweepPreservesOrder pins that the tombstone sweep's re-heapify does
// not perturb the (at, seq) pop order, including same-instant FIFO ties.
func TestSweepPreservesOrder(t *testing.T) {
	s := NewScheduler()
	var timers []Timer
	var got []int
	for i := 0; i < 200; i++ {
		i := i
		at := Time(1000 + 10*(i%7)) // many ties across several instants
		timers = append(timers, s.At(at, func() { got = append(got, i) }))
	}
	for i := 0; i < 200; i += 2 { // cancel half: triggers sweeps
		timers[i].Cancel()
	}
	s.Run()
	var want []int
	for at := 0; at < 7; at++ {
		for i := 1; i < 200; i += 2 {
			if i%7 == at {
				want = append(want, i)
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep perturbed order at %d: got %v, want %v", i, got[:i+1], want[:i+1])
		}
	}
}

// TestFreelistRecycles pins the allocation-lean claim: steady-state
// schedule/fire churn must reuse nodes instead of growing the freelist or
// allocating fresh ones.
func TestFreelistRecycles(t *testing.T) {
	s := NewScheduler()
	var chain func()
	n := 0
	chain = func() {
		if n++; n < 1000 {
			s.After(1, chain)
		}
	}
	s.After(1, chain)
	s.Run()
	if n != 1000 {
		t.Fatalf("chain ran %d times", n)
	}
	// One event in flight at a time: the freelist should hold exactly the
	// first allocation block, not a thousand nodes — steady-state churn
	// reuses one node rather than allocating.
	if len(s.free) != 64 {
		t.Fatalf("freelist holds %d nodes, want one 64-node block", len(s.free))
	}
}

// TestCancelDoesNotDisturbTieOrder pins that canceling one event in a tied
// group leaves the remaining events in insertion order.
func TestCancelDoesNotDisturbTieOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	var timers []Timer
	for i := 0; i < 20; i++ {
		i := i
		timers = append(timers, s.At(77, func() { got = append(got, i) }))
	}
	for i := 1; i < 20; i += 3 {
		if !timers[i].Cancel() {
			t.Fatalf("cancel %d failed", i)
		}
	}
	s.Run()
	want := 0
	for _, v := range got {
		for want%3 == 1 { // canceled residues
			want++
		}
		if v != want {
			t.Fatalf("post-cancel tie order broke: %v", got)
		}
		want++
	}
	if len(got) != 13 {
		t.Fatalf("ran %d events, want 13", len(got))
	}
}
