// Package eventq implements the discrete-event core of the simulator: a
// virtual clock with nanosecond resolution and a binary-heap scheduler.
//
// All simulator components (links, switches, transport timers, workload
// generators) advance exclusively by scheduling callbacks on a single
// Scheduler. Events scheduled for the same instant run in FIFO order of
// scheduling, which keeps runs deterministic for a fixed seed.
package eventq

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is deliberately a distinct type from time.Duration to keep
// wall-clock time out of the simulator.
type Time int64

// Common durations, expressed in Time units (nanoseconds).
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time; used as "never".
const MaxTime Time = math.MaxInt64

// Duration converts a time.Duration into simulator Time units.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds returns t expressed in seconds as a float.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns t expressed in milliseconds as a float.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros returns t expressed in microseconds as a float.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// event is a scheduled callback. seq breaks ties between events at the same
// virtual instant so that scheduling order is execution order.
type event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

// Timer is a handle to a scheduled event that can be canceled or queried.
type Timer struct{ ev *event }

// Cancel prevents the timer's callback from running. Canceling an already
// fired or already canceled timer is a no-op. Cancel reports whether the
// callback was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.canceled || t.ev.index == -1 {
		return false
	}
	t.ev.canceled = true
	return true
}

// Pending reports whether the timer's callback has neither fired nor been
// canceled.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.canceled && t.ev.index != -1
}

// When returns the virtual time the timer is scheduled for.
func (t *Timer) When() Time { return t.ev.at }

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; the simulator is deliberately single-threaded so runs
// are reproducible.
type Scheduler struct {
	now      Time
	seq      uint64
	heap     eventHeap
	executed uint64
	running  bool
	stopped  bool
}

// NewScheduler returns a scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len returns the number of pending events (including canceled ones not yet
// discarded).
func (s *Scheduler) Len() int { return len(s.heap) }

// Executed returns the number of callbacks run so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: that is always a simulator bug, not a recoverable condition.
func (s *Scheduler) At(at Time, fn func()) *Timer {
	if at < s.now {
		panic(fmt.Sprintf("eventq: scheduling at %v before now %v", at, s.now))
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.heap, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("eventq: negative delay %d", d))
	}
	return s.At(s.now+d, fn)
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// step pops and runs the next event. Returns false when the queue is empty
// or the next event is beyond limit.
func (s *Scheduler) step(limit Time) bool {
	for len(s.heap) > 0 {
		next := s.heap[0]
		if next.at > limit {
			return false
		}
		heap.Pop(&s.heap)
		if next.canceled {
			continue
		}
		s.now = next.at
		s.executed++
		next.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (s *Scheduler) Run() {
	s.run(MaxTime)
}

// RunUntil executes events with timestamps <= limit, then advances the clock
// to limit. Events beyond limit remain pending.
func (s *Scheduler) RunUntil(limit Time) {
	s.run(limit)
	if s.now < limit {
		s.now = limit
	}
}

func (s *Scheduler) run(limit Time) {
	if s.running {
		panic("eventq: Run re-entered")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()
	for !s.stopped && s.step(limit) {
	}
}
