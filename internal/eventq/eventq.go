// Package eventq implements the discrete-event core of the simulator: a
// virtual clock with nanosecond resolution and a pluggable scheduler.
//
// All simulator components (links, switches, transport timers, workload
// generators) advance exclusively by scheduling callbacks on a single
// Scheduler. Events scheduled for the same instant run in FIFO order of
// scheduling, which keeps runs deterministic for a fixed seed.
//
// Two engines implement the same (at, seq) total order behind one API:
//
//   - EngineWheel (default): a hierarchical timing wheel (wheel.go) —
//     4 cascading levels of 256 slots at a ~1µs tick, with a small sorted
//     spill list for events beyond the wheel horizon. Near-horizon events
//     (link-serialization completions, RTO timers) insert and fire in O(1).
//   - EngineHeap: the inlined 4-ary min-heap, kept as a differential
//     reference. Both engines must produce byte-identical simulations;
//     the determinism regression and the cross-engine property test hold
//     them to it.
//
// The hot path is allocation-lean: popped and canceled events are recycled
// through a per-Scheduler freelist, so a steady-state run allocates no new
// event nodes. Timer handles are plain values carrying a generation
// counter; a handle to a recycled event is detected as stale and every
// operation on it is a safe no-op.
package eventq

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is deliberately a distinct type from time.Duration to keep
// wall-clock time out of the simulator.
type Time int64

// Common durations, expressed in Time units (nanoseconds).
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time; used as "never".
const MaxTime Time = math.MaxInt64

// Duration converts a time.Duration into simulator Time units.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds returns t expressed in seconds as a float.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns t expressed in milliseconds as a float.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros returns t expressed in microseconds as a float.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Engine selects the scheduler's internal priority structure. Both engines
// realize the identical (at, seq) pop order; they differ only in cost
// profile.
type Engine uint8

const (
	// EngineWheel is the hierarchical timing wheel (default).
	EngineWheel Engine = iota
	// EngineHeap is the 4-ary min-heap reference engine.
	EngineHeap
)

// String names the engine as accepted by ParseEngine.
func (e Engine) String() string {
	if e == EngineHeap {
		return "heap"
	}
	return "wheel"
}

// ParseEngine maps a config/flag string to an Engine. The empty string
// selects the default (wheel).
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "wheel":
		return EngineWheel, nil
	case "heap":
		return EngineHeap, nil
	default:
		return EngineWheel, fmt.Errorf("eventq: unknown engine %q (want wheel or heap)", s)
	}
}

// event is a scheduled callback. pri orders events within an instant by an
// explicit caller-chosen key (0 for ordinary events; link deliveries carry a
// per-link key so same-instant arrivals order by link identity rather than
// scheduling history — the property that makes sharded runs byte-identical
// to sequential ones). seq breaks the remaining ties so that scheduling
// order is execution order. gen counts how many times the node has been
// recycled through the freelist; a Timer carrying an older gen is stale and
// operates as a no-op.
type event struct {
	at       Time
	pri      int64
	seq      uint64
	fn       func()
	gen      uint32
	canceled bool
	// index is the heap position for the heap engine; the wheel engine
	// uses the sentinels inWheelIdx/inSpillIdx. -1 once popped or
	// recycled, under either engine.
	index int32
}

// Wheel-engine index sentinels: the wheel never needs positional removal
// (cancellation is lazy), only "is this node still queued, and where would
// a sweep find it".
const (
	inWheelIdx int32 = 0 // resident in a wheel slot
	inSpillIdx int32 = 1 // resident in the sorted spill list
)

// Timer is a value handle to a scheduled event that can be canceled or
// queried. The zero Timer is valid: Cancel and Pending report false, When
// reports 0. A Timer outliving its event (fired or canceled-and-swept, node
// recycled) is detected via the generation counter and behaves the same.
type Timer struct {
	s   *Scheduler
	ev  *event
	gen uint32
}

// live reports whether the handle still refers to its original scheduling.
func (t Timer) live() bool {
	return t.ev != nil && t.ev.gen == t.gen
}

// Cancel prevents the timer's callback from running. Canceling an already
// fired or already canceled timer is a no-op. Cancel reports whether the
// callback was still pending.
//
// Cancel itself is O(1): it only tombstones the node. Reclamation is
// deferred — the heap engine compacts at the top of the run loop (never
// re-entrantly from inside a firing callback), and the wheel engine
// reclaims tombstones when their slot is next drained or cascaded.
func (t Timer) Cancel() bool {
	if !t.live() || t.ev.canceled || t.ev.index < 0 {
		return false
	}
	t.ev.canceled = true
	s := t.s
	switch s.engine {
	case EngineHeap:
		s.tombstones++
		// Retransmit-style timers are canceled far more often than they
		// fire; once tombstones dominate the heap, compact it so pops stay
		// O(log n) over live events and the nodes return to the freelist.
		// Inside the run loop the compaction is deferred to the top of the
		// loop: a callback canceling a sibling timer must not restructure
		// the heap mid-iteration.
		if s.tombstones*2 > len(s.heap) {
			if s.running {
				s.needSweep = true
			} else {
				s.sweep()
			}
		}
	default:
		if t.ev.index == inSpillIdx {
			// Spill tombstones would otherwise linger forever ("never"
			// timers are canceled, not fired); compaction runs at the
			// next refill, outside any firing callback.
			s.w.spillTombs++
		}
	}
	return true
}

// Pending reports whether the timer's callback has neither fired nor been
// canceled.
func (t Timer) Pending() bool {
	return t.live() && !t.ev.canceled && t.ev.index >= 0
}

// When returns the virtual time the timer is scheduled for, or 0 for a zero
// Timer or one whose event has already fired or been canceled.
func (t Timer) When() Time {
	if !t.live() {
		return 0
	}
	return t.ev.at
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; each simulation is deliberately single-threaded so
// runs are reproducible (parallelism lives above whole runs, in
// internal/runner).
type Scheduler struct {
	now    Time
	seq    uint64
	engine Engine

	// --- heap engine state ---
	heap []*event // 4-ary min-heap ordered by (at, seq)
	// tombstones counts canceled events still occupying heap slots.
	tombstones int
	// needSweep defers tombstone compaction to the top of the run loop so
	// Cancel never restructures the heap from inside a firing callback.
	needSweep bool

	// --- wheel engine state ---
	w wheel

	// free holds recycled event nodes, shared by both engines.
	free []*event
	// queued counts event nodes currently scheduled (including canceled
	// ones not yet reclaimed), under either engine.
	queued   int
	executed uint64
	running  bool
	stopped  bool
}

// NewScheduler returns a scheduler with the clock at zero, using the
// default engine (the timing wheel).
func NewScheduler() *Scheduler {
	return NewSchedulerEngine(EngineWheel)
}

// NewSchedulerEngine returns a scheduler using the given engine. EngineHeap
// is the differential-testing reference; simulations are byte-identical
// under both.
func NewSchedulerEngine(e Engine) *Scheduler {
	return &Scheduler{engine: e}
}

// Engine reports which engine the scheduler runs on.
func (s *Scheduler) Engine() Engine { return s.engine }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len returns the number of pending events (including canceled ones not yet
// discarded).
func (s *Scheduler) Len() int { return s.queued }

// Executed returns the number of callbacks run so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: that is always a simulator bug, not a recoverable condition.
func (s *Scheduler) At(at Time, fn func()) Timer {
	return s.AtPri(at, 0, fn)
}

// AtPri is At with an explicit same-instant ordering key: events at one
// virtual instant execute in ascending pri, and by scheduling order within
// equal pri. Ordinary events use pri 0 (and so run before any same-instant
// link delivery); link deliveries pass a stable per-link key so that the
// execution order of same-instant arrivals is a function of the topology,
// not of which scheduler shard queued them first.
func (s *Scheduler) AtPri(at Time, pri int64, fn func()) Timer {
	if at < s.now {
		panic(fmt.Sprintf("eventq: scheduling at %v before now %v", at, s.now))
	}
	ev := s.alloc(at, pri, fn)
	if s.engine == EngineHeap {
		s.push(ev)
	} else {
		s.wheelInsert(ev)
	}
	s.queued++
	return Timer{s: s, ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time. A delay that would
// overflow virtual time (d near MaxTime used as "never") clamps to MaxTime
// instead of wrapping negative.
func (s *Scheduler) After(d Time, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("eventq: negative delay %d", d))
	}
	at := s.now + d
	if at < s.now { // overflow: now + d wrapped past MaxTime
		at = MaxTime
	}
	return s.At(at, fn)
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// alloc takes an event node off the freelist (or makes more) and stamps it.
// Nodes are allocated in blocks: the freelist never shrinks, so a growing
// simulation would otherwise pay one allocation per unit of peak pending
// events while it warms up.
func (s *Scheduler) alloc(at Time, pri int64, fn func()) *event {
	n := len(s.free)
	if n == 0 {
		block := make([]event, 64)
		for i := range block {
			block[i].index = -1
			s.free = append(s.free, &block[i])
		}
		n = len(s.free)
	}
	ev := s.free[n-1]
	s.free[n-1] = nil
	s.free = s.free[:n-1]
	ev.at, ev.pri, ev.seq, ev.fn = at, pri, s.seq, fn
	s.seq++
	return ev
}

// release bumps the node's generation — invalidating every outstanding
// Timer to it — and returns it to the freelist.
func (s *Scheduler) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.canceled = false
	ev.index = -1
	s.queued--
	s.free = append(s.free, ev)
}

// less orders events by (at, pri, seq): time first, then the explicit
// same-instant key, then scheduling order. seq is unique, so the order is
// total and runs are deterministic regardless of engine or intermediate
// layout.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.seq < b.seq
}

// push appends ev and restores the heap property by sifting up. The 4-ary
// layout (children of i at 4i+1..4i+4) halves tree depth versus a binary
// heap, trading slightly pricier sift-downs for much cheaper inserts —
// the right trade for a scheduler where most events are pushed once and
// popped once in rough time order.
func (s *Scheduler) push(ev *event) {
	i := len(s.heap)
	s.heap = append(s.heap, ev)
	for i > 0 {
		p := (i - 1) / 4
		if !less(ev, s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		s.heap[i].index = int32(i)
		i = p
	}
	s.heap[i] = ev
	ev.index = int32(i)
}

// siftDown restores the heap property from slot i downward.
func (s *Scheduler) siftDown(i int) {
	ev := s.heap[i]
	n := len(s.heap)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if less(s.heap[c], s.heap[best]) {
				best = c
			}
		}
		if !less(s.heap[best], ev) {
			break
		}
		s.heap[i] = s.heap[best]
		s.heap[i].index = int32(i)
		i = best
	}
	s.heap[i] = ev
	ev.index = int32(i)
}

// popMin removes and returns the earliest event.
func (s *Scheduler) popMin() *event {
	ev := s.heap[0]
	n := len(s.heap) - 1
	last := s.heap[n]
	s.heap[n] = nil
	s.heap = s.heap[:n]
	if n > 0 && last != ev {
		s.heap[0] = last
		s.siftDown(0)
	}
	ev.index = -1
	return ev
}

// sweep compacts canceled events out of the heap and rebuilds it in place.
// The (at, seq) order is total, so pop order — and therefore simulation
// output — is identical whatever the intermediate heap layout.
func (s *Scheduler) sweep() {
	live := s.heap[:0]
	for _, ev := range s.heap {
		if ev.canceled {
			s.release(ev)
		} else {
			live = append(live, ev)
		}
	}
	// Clear the tail so released nodes are not pinned by the backing array.
	for i := len(live); i < len(s.heap); i++ {
		s.heap[i] = nil
	}
	s.heap = live
	for i, ev := range s.heap {
		ev.index = int32(i)
	}
	// Note (n-2)/4 truncates toward zero, so guard the small cases rather
	// than relying on the loop bound going negative.
	if n := len(s.heap); n > 1 {
		for i := (n - 2) / 4; i >= 0; i-- {
			s.siftDown(i)
		}
	}
	s.tombstones = 0
}

// stepHeap pops and runs the next event. Returns false when the queue is
// empty or the next event is beyond limit.
func (s *Scheduler) stepHeap(limit Time) bool {
	for len(s.heap) > 0 {
		next := s.heap[0]
		if next.at > limit {
			return false
		}
		s.popMin()
		if next.canceled {
			s.tombstones--
			s.release(next)
			continue
		}
		at, fn := next.at, next.fn
		// Recycle before running: fn may schedule and the node can serve
		// the new event immediately; the old handle's gen is already stale.
		s.release(next)
		s.now = at
		s.executed++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (s *Scheduler) Run() {
	s.run(MaxTime)
}

// RunUntil executes events with timestamps <= limit, then advances the clock
// to limit. Events beyond limit remain pending.
func (s *Scheduler) RunUntil(limit Time) {
	s.run(limit)
	if s.now < limit {
		s.now = limit
	}
}

func (s *Scheduler) run(limit Time) {
	if s.running {
		panic("eventq: Run re-entered")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()
	if s.engine == EngineHeap {
		for !s.stopped {
			// Deferred tombstone compaction: requested by Cancel from
			// inside a callback, performed here between events where no
			// pop is in flight.
			if s.needSweep {
				s.sweep()
				s.needSweep = false
			}
			if !s.stepHeap(limit) {
				return
			}
		}
		return
	}
	s.runWheel(limit)
}
