package eventq

import (
	"testing"

	"dibs/internal/rng"
)

// TestAfterOverflowClampsToMaxTime is the regression test for the After
// overflow bug: now + d wrapping negative used to panic as past-scheduling
// (or, worse, corrupt ordering). A "never"-style delay must clamp to
// MaxTime under both engines.
func TestAfterOverflowClampsToMaxTime(t *testing.T) {
	for _, e := range []Engine{EngineWheel, EngineHeap} {
		t.Run(e.String(), func(t *testing.T) {
			s := NewSchedulerEngine(e)
			s.At(100, func() {})
			s.RunUntil(100) // now = 100, so now + MaxTime overflows
			tm := s.After(MaxTime, func() { t.Fatal("never-timer fired") })
			if got := tm.When(); got != MaxTime {
				t.Fatalf("After(MaxTime) scheduled at %d, want MaxTime", got)
			}
			// A second overflow-range delay must order after everything
			// finite and not disturb the clock.
			s.After(MaxTime-50, func() { t.Fatal("never-timer fired") })
			fired := false
			s.After(10, func() { fired = true })
			s.RunUntil(1000)
			if !fired {
				t.Fatal("finite timer did not fire")
			}
			if s.Now() != 1000 {
				t.Fatalf("clock at %v, want 1000", s.Now())
			}
			if !tm.Cancel() {
				t.Fatal("never-timer was not pending")
			}
		})
	}
}

// TestCancelInsideCallbackDefersCompaction is the regression test for the
// re-entrant tombstone sweep: a callback canceling enough sibling timers to
// cross the sweep threshold must not compact the structure mid-pop. The
// canceled timers must not fire, the survivors must fire in order, and
// handles must stay coherent.
func TestCancelInsideCallbackDefersCompaction(t *testing.T) {
	for _, e := range []Engine{EngineWheel, EngineHeap} {
		t.Run(e.String(), func(t *testing.T) {
			s := NewSchedulerEngine(e)
			const n = 64
			var timers []Timer
			var fired []int
			// Interleave victims across the whole horizon so the cancels
			// hit events at many positions of the live structure.
			for i := 0; i < n; i++ {
				i := i
				timers = append(timers, s.At(Time(10+i), func() { fired = append(fired, i) }))
			}
			// The first event cancels every odd sibling — from inside the
			// run loop, crossing the heap's tombstones*2 > len threshold.
			s.At(5, func() {
				for i := 1; i < n; i += 2 {
					if !timers[i].Cancel() {
						t.Errorf("cancel %d failed", i)
					}
				}
			})
			s.Run()
			if len(fired) != n/2 {
				t.Fatalf("fired %d events, want %d", len(fired), n/2)
			}
			for k, v := range fired {
				if v != 2*k {
					t.Fatalf("fired order wrong at %d: got %d, want %d", k, v, 2*k)
				}
			}
			for i, tm := range timers {
				if tm.Pending() {
					t.Fatalf("timer %d still pending after run", i)
				}
			}
		})
	}
}

// TestCancelNextEventInsideCallback pins the sharpest re-entrancy case: a
// firing callback cancels the event that is immediately next at the same
// instant, while enough tombstones exist to trigger a sweep.
func TestCancelNextEventInsideCallback(t *testing.T) {
	for _, e := range []Engine{EngineWheel, EngineHeap} {
		t.Run(e.String(), func(t *testing.T) {
			s := NewSchedulerEngine(e)
			var got []string
			var next Timer
			// Build up tombstone pressure first.
			for i := 0; i < 8; i++ {
				s.At(50, func() {}).Cancel()
			}
			s.At(50, func() {
				got = append(got, "a")
				if !next.Cancel() {
					t.Error("cancel of same-instant successor failed")
				}
			})
			next = s.At(50, func() { got = append(got, "b") })
			s.At(50, func() { got = append(got, "c") })
			s.Run()
			if len(got) != 2 || got[0] != "a" || got[1] != "c" {
				t.Fatalf("got %v, want [a c]", got)
			}
		})
	}
}

// popRecord is one fired event in a differential trace.
type popRecord struct {
	at  Time
	tag int
}

// TestEnginesAgreeOnRandomWorkloads is the wheel/heap differential property
// test: randomized schedule/cancel/reschedule workloads — same-instant
// bursts, cascade-boundary deltas, spill-range "never" timers — must
// produce identical (at, tag) pop sequences under both engines. Workloads
// derive from internal/rng so failures reproduce exactly.
func TestEnginesAgreeOnRandomWorkloads(t *testing.T) {
	const (
		trials   = 40
		nSeed    = 400 // events seeded before running
		nDynamic = 6   // events each callback may spawn
	)
	for trial := 0; trial < trials; trial++ {
		runTrace := func(e Engine) []popRecord {
			r := rng.New(int64(trial), "eventq/engines-agree")
			s := NewSchedulerEngine(e)
			var trace []popRecord
			var timers []Timer
			tag := 0
			// Delay classes cover every wheel path: same-instant ties,
			// sub-tick, level-0, cascade boundaries at each level, and the
			// spill horizon.
			delay := func() Time {
				switch r.Intn(10) {
				case 0:
					return 0 // same instant
				case 1:
					return Time(r.Intn(1 << tickShift)) // sub-tick
				case 2, 3, 4:
					return Time(r.Intn(200 << tickShift)) // level 0
				case 5, 6:
					return Time(r.Intn(1 << (tickShift + 2*levelBits))) // level 1
				case 7:
					return Time(r.Intn(1 << (tickShift + 3*levelBits))) // level 2
				case 8:
					// Hug cascade boundaries: a power-of-two span ± a hair.
					base := Time(1) << uint(tickShift+levelBits*(1+r.Intn(3)))
					return base + Time(r.Intn(5)) - 2
				default:
					return MaxTime - Time(r.Intn(3)) // spill / overflow clamp
				}
			}
			var fire func(int) func()
			fire = func(myTag int) func() {
				return func() {
					trace = append(trace, popRecord{s.Now(), myTag})
					for k := r.Intn(nDynamic); k > 0; k-- {
						switch r.Intn(4) {
						case 0, 1: // cancel a random outstanding timer
							if len(timers) > 0 {
								timers[r.Intn(len(timers))].Cancel()
							}
						case 2: // reschedule: cancel + re-arm
							if len(timers) > 0 {
								i := r.Intn(len(timers))
								if timers[i].Cancel() {
									tag++
									timers[i] = s.After(delay(), fire(tag))
								}
							}
						default: // spawn a fresh timer (kept subcritical:
							// each fire consumes one event and adds <1 on
							// average, so every trial dies out)
							tag++
							timers = append(timers, s.After(delay(), fire(tag)))
						}
					}
				}
			}
			for i := 0; i < nSeed; i++ {
				tag++
				timers = append(timers, s.At(delay(), fire(tag)))
			}
			// Run in bounded windows so RunUntil's mid-drain stop/resume
			// path is exercised too, then drain the finite remainder.
			for _, limit := range []Time{1 << 18, 1 << 26, 1 << 34} {
				s.RunUntil(limit)
			}
			for _, tm := range timers {
				if tm.When() > 1<<40 {
					tm.Cancel() // drop "never" timers so Run terminates
				}
			}
			// Run (not RunUntil) so both engines also reclaim the canceled
			// far-future tombstones and drain completely.
			s.Run()
			if s.Len() != 0 {
				t.Fatalf("trial %d: %d events still pending", trial, s.Len())
			}
			return trace
		}
		wheel := runTrace(EngineWheel)
		heap := runTrace(EngineHeap)
		if len(wheel) != len(heap) {
			t.Fatalf("trial %d: wheel fired %d events, heap %d", trial, len(wheel), len(heap))
		}
		for i := range wheel {
			if wheel[i] != heap[i] {
				t.Fatalf("trial %d: pop %d diverges: wheel (at=%d tag=%d), heap (at=%d tag=%d)",
					trial, i, wheel[i].at, wheel[i].tag, heap[i].at, heap[i].tag)
			}
		}
	}
}

// TestSpillTimersFireInOrder covers the overflow list end to end: events
// beyond the wheel horizon must migrate back into the wheel and fire in
// (at, seq) order, including ties.
func TestSpillTimersFireInOrder(t *testing.T) {
	s := NewScheduler()
	horizon := Time(span(3)) << tickShift
	var got []int
	for i, at := range []Time{horizon * 3, horizon * 2, horizon * 2, horizon*2 + 7, horizon * 5} {
		i := i
		s.At(at, func() { got = append(got, i) })
	}
	canceled := s.At(horizon*2+3, func() { t.Fatal("canceled spill timer fired") })
	canceled.Cancel()
	s.Run()
	want := []int{1, 2, 3, 0, 4}
	if len(got) != len(want) {
		t.Fatalf("fired %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("spill order: got %v, want %v", got, want)
		}
	}
}
