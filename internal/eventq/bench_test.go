package eventq

import (
	"math/rand"
	"testing"
)

// engines runs a scheduler micro-benchmark under both engines, so every
// result doubles as a wheel-vs-heap comparison on the same machine state.
func engines(b *testing.B, bench func(b *testing.B, s *Scheduler)) {
	b.Run("wheel", func(b *testing.B) { bench(b, NewSchedulerEngine(EngineWheel)) })
	b.Run("heap", func(b *testing.B) { bench(b, NewSchedulerEngine(EngineHeap)) })
}

// BenchmarkSchedulePop measures the basic push/pop cycle with a standing
// population of pending events, the common steady-state shape of a packet
// simulation (one pop schedules roughly one push). The delay profiles span
// the wheel's easy and hard regimes: "tick" delays (~1 event per slot
// drain), "subtick" delays inside the live 1024ns tick (the calendar-split
// sub-bucket path: every reschedule lands in the tick being drained), and
// "subbucket" delays inside a single 128ns sub-bucket (the residual
// binary-insert worst case).
func BenchmarkSchedulePop(b *testing.B) {
	profiles := []struct {
		name string
		span int // delays drawn from [1, span]
	}{
		{"tick", 1000},
		{"subtick", 1023},
		{"subbucket", 127},
	}
	for _, p := range profiles {
		span := p.span
		b.Run(p.name, func(b *testing.B) {
			engines(b, func(b *testing.B, s *Scheduler) {
				rng := rand.New(rand.NewSource(1))
				b.ReportAllocs()
				remaining := b.N
				var chain func()
				chain = func() {
					if remaining <= 0 {
						return
					}
					remaining--
					s.After(Time(rng.Intn(span)+1), chain)
				}
				// Standing population of 1024 in-flight events.
				for i := 0; i < 1024 && remaining > 0; i++ {
					remaining--
					s.After(Time(rng.Intn(span)+1), chain)
				}
				b.ResetTimer()
				s.Run()
			})
		})
	}
}

// BenchmarkCancelHeavy models retransmit timers: almost every scheduled
// event is canceled before it would fire (the ACK arrives first), so
// tombstone reclamation and the freelist dominate.
func BenchmarkCancelHeavy(b *testing.B) {
	engines(b, func(b *testing.B, s *Scheduler) {
		rng := rand.New(rand.NewSource(2))
		b.ReportAllocs()
		remaining := b.N
		var tick func()
		var pending Timer
		tick = func() {
			// Cancel the previous "RTO", arm a new one, schedule the next tick.
			pending.Cancel()
			if remaining <= 0 {
				return
			}
			remaining--
			pending = s.After(Time(rng.Intn(100)+50), func() {})
			s.After(1, tick)
		}
		s.After(1, tick)
		b.ResetTimer()
		s.Run()
	})
}

// BenchmarkSameInstantBurst models an incast: large batches of events all
// landing on one instant, stressing the seq tie-break and the slot-batch
// drain (wheel) or sift paths (heap) where comparisons resolve on the
// second key.
func BenchmarkSameInstantBurst(b *testing.B) {
	const burst = 256
	engines(b, func(b *testing.B, s *Scheduler) {
		b.ReportAllocs()
		remaining := b.N
		var arm func()
		arm = func() {
			if remaining <= 0 {
				return
			}
			at := s.Now() + 100
			n := burst
			if n > remaining {
				n = remaining
			}
			remaining -= n
			for i := 0; i < n-1; i++ {
				s.At(at, func() {})
			}
			s.At(at, arm) // last of the burst schedules the next burst
		}
		arm()
		b.ResetTimer()
		s.Run()
	})
}

// BenchmarkLongHorizon measures scheduling far beyond the level-0 window,
// forcing inserts into the upper wheel levels and cascades back down as
// virtual time advances — the wheel's worst case against the heap.
func BenchmarkLongHorizon(b *testing.B) {
	engines(b, func(b *testing.B, s *Scheduler) {
		rng := rand.New(rand.NewSource(3))
		b.ReportAllocs()
		remaining := b.N
		var chain func()
		chain = func() {
			if remaining <= 0 {
				return
			}
			remaining--
			// 350µs-style RTO horizon: lands two wheel levels up.
			s.After(Time(rng.Intn(400_000)+100_000), chain)
		}
		for i := 0; i < 512 && remaining > 0; i++ {
			remaining--
			s.After(Time(rng.Intn(400_000)+100_000), chain)
		}
		b.ResetTimer()
		s.Run()
	})
}
