package eventq

import "math/bits"

// Hierarchical timing wheel (Varghese & Lauck scheme 6/7, as in the classic
// Linux timer wheel): four cascading levels of 256 slots over a ~1µs tick.
//
// Geometry. A tick is 1<<tickShift ns = 1024ns. Level L buckets ticks at
// granularity 256^L, so the wheel spans 256^4 = 2^32 ticks (~73 virtual
// minutes) before falling back to a sorted spill list — in practice only
// MaxTime-style "never" timers land there.
//
// Residency invariant. Every resident event lives in the *remainder of the
// current window* of its level: an event with tick t is in level L iff
// t < (cur &^ (span(L)-1)) + span(L) for span(L) = 256^(L+1) and no lower
// level satisfies that. Consequently, within each level all occupied slot
// indices are >= the cursor's index at that level (strictly > for L >= 1),
// so advancing the cursor is a forward bitmap scan — never a wrap — and the
// slot under the cursor at levels >= 1 is always empty. When the cursor
// crosses a level boundary, that level's next slot cascades: its events
// reinsert, landing at strictly lower levels, which makes reusing the
// slot's backing array safe.
//
// Determinism. The global firing order is the same (at, seq) total order
// the heap engine realizes. Slot lists are append-ordered and cascades can
// interleave older-seq events behind newer direct inserts, so a level-0
// slot is sorted (insertion sort, usually a no-op verify pass) once, when
// its drain starts. Draining then walks the slot linearly — the Run loop
// fires a whole tick's batch without re-consulting the wheel — and a
// callback scheduling into the live tick binary-inserts behind the drain
// cursor, preserving FIFO within the instant.
type wheel struct {
	// cur is the wheel cursor in ticks. Events never reside at ticks
	// behind it; inserts that would (only possible after a run advanced
	// cur over tombstone-only slots) clamp their tick to cur, which
	// preserves the (at, seq) firing order because every other resident
	// event's at is >= cur<<tickShift.
	cur   int64
	slots [numLevels][wheelSlots][]*event
	// occ mirrors slot occupancy: bit i of level L is set iff
	// slots[L][i] is non-empty (tombstones count as occupancy until
	// reclaimed). Lets the cursor skip empty regions 64 slots at a time.
	occ [numLevels][wheelSlots / 64]uint64
	// spill holds events beyond the wheel horizon, sorted by (at, seq).
	spill      []*event
	spillTombs int
	// Drain state: when draining, level-0 slot slotIdx is sorted and
	// events [0:di) have been fired or reclaimed.
	draining bool
	slotIdx  int
	di       int
}

const (
	tickShift  = 10 // 1 tick = 1024 ns, ~1 µs
	levelBits  = 8
	wheelSlots = 1 << levelBits
	numLevels  = 4
)

// span returns the number of ticks one slot of the given level covers times
// wheelSlots, i.e. the full horizon of that level.
func span(level int) int64 { return 1 << uint(levelBits*(level+1)) }

// occNext returns the lowest set bit index >= from in a 256-bit occupancy
// map, or -1 if none.
func occNext(m *[wheelSlots / 64]uint64, from int) int {
	if from >= wheelSlots {
		return -1
	}
	w := from >> 6
	b := m[w] &^ (1<<uint(from&63) - 1)
	for {
		if b != 0 {
			return w<<6 + bits.TrailingZeros64(b)
		}
		w++
		if w == len(m) {
			return -1
		}
		b = m[w]
	}
}

// wheelInsert routes a freshly allocated event into the wheel. Called only
// from At, so ev.at >= s.now.
func (s *Scheduler) wheelInsert(ev *event) {
	w := &s.w
	tick := int64(ev.at) >> tickShift
	if tick < w.cur {
		// See the cur field comment: order-preserving clamp.
		tick = w.cur
	}
	if w.draining && tick == w.cur {
		w.drainInsert(ev)
		return
	}
	w.put(ev, tick)
}

// put places ev (at the given tick, >= w.cur) into its level slot or the
// spill list.
//
//dibslint:owns the slot array keeps the node until its tick drains or cascades
func (w *wheel) put(ev *event, tick int64) {
	c := w.cur
	var level int
	var idx int
	switch {
	case tick < (c&^(span(0)-1))+span(0):
		level, idx = 0, int(tick&(wheelSlots-1))
	case tick < (c&^(span(1)-1))+span(1):
		level, idx = 1, int((tick>>levelBits)&(wheelSlots-1))
	case tick < (c&^(span(2)-1))+span(2):
		level, idx = 2, int((tick>>(2*levelBits))&(wheelSlots-1))
	case tick < (c&^(span(3)-1))+span(3):
		level, idx = 3, int((tick>>(3*levelBits))&(wheelSlots-1))
	default:
		w.spillInsert(ev)
		return
	}
	lst := w.slots[level][idx]
	if cap(lst) == 0 {
		// Skip the 1-2-4 growth steps: with ~1µs ticks a live slot
		// typically collects a handful of events before draining.
		lst = make([]*event, 0, 16)
	}
	w.slots[level][idx] = append(lst, ev)
	w.occ[level][idx>>6] |= 1 << uint(idx&63)
	ev.index = inWheelIdx
}

// spillInsert binary-inserts ev into the sorted overflow list.
//
//dibslint:owns the spill list keeps the node until it migrates into the wheel
func (w *wheel) spillInsert(ev *event) {
	lo, hi := 0, len(w.spill)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(ev, w.spill[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	w.spill = append(w.spill, nil)
	copy(w.spill[lo+1:], w.spill[lo:])
	w.spill[lo] = ev
	ev.index = inSpillIdx
}

// drainInsert places ev into the level-0 slot currently being drained, at
// its (at, seq) position behind the drain cursor. Since ev.at >= s.now and
// ev.seq is the largest yet issued, the position is always >= di, so the
// event fires in this same drain pass, after every earlier same-instant
// event — the FIFO-within-instant guarantee.
//
//dibslint:owns the live slot keeps the node until the drain reaches it
func (w *wheel) drainInsert(ev *event) {
	slot := w.slots[0][w.slotIdx]
	if w.di > 32 && w.di*2 >= len(slot) {
		// Trim the fired prefix so a workload that keeps scheduling into
		// the live tick (sub-tick delays) cannot grow the slot without
		// bound. Amortized O(1): each trimmed entry was one fired event.
		n := copy(slot, slot[w.di:])
		slot = slot[:n]
		w.slots[0][w.slotIdx] = slot
		w.di = 0
	}
	lo, hi := w.di, len(slot)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(ev, slot[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	slot = append(slot, nil)
	copy(slot[lo+1:], slot[lo:])
	slot[lo] = ev
	w.slots[0][w.slotIdx] = slot
	ev.index = inWheelIdx
}

// startDrain compacts tombstones out of level-0 slot idx, sorts it by
// (at, seq) if a cascade left it out of order, and arms the drain state.
// Returns false if the slot held only tombstones (it is emptied and its
// occupancy bit cleared).
func (s *Scheduler) startDrain(idx int) bool {
	w := &s.w
	slot := w.slots[0][idx]
	// One pass does double duty: squeeze out canceled events and check
	// whether the survivors are already (at, seq)-ordered — they are
	// unless a cascade appended older-seq events behind direct inserts.
	live := slot[:0]
	sorted := true
	for _, ev := range slot {
		if ev.canceled {
			s.release(ev)
			continue
		}
		if n := len(live); n > 0 && less(ev, live[n-1]) {
			sorted = false
		}
		live = append(live, ev)
	}
	// Stale pointers beyond len are left in place: every node is owned by
	// the scheduler for its whole lifetime (freelist discipline), so they
	// pin nothing the freelist does not already keep alive.
	slot = live
	w.slots[0][idx] = slot
	if len(slot) == 0 {
		w.occ[0][idx>>6] &^= 1 << uint(idx&63)
		return false
	}
	if !sorted {
		// Slots are small and nearly sorted; insertion sort avoids the
		// closure allocation of sort.Slice.
		for i := 1; i < len(slot); i++ {
			ev := slot[i]
			j := i - 1
			for j >= 0 && less(ev, slot[j]) {
				slot[j+1] = slot[j]
				j--
			}
			slot[j+1] = ev
		}
	}
	w.draining = true
	w.slotIdx = idx
	w.di = 0
	return true
}

// runWheel drains events at or before limit until none remain or Stop is
// called. Each armed slot is fired as a batch — one tick's events run
// without re-consulting the wheel levels in between. Drain state survives
// across calls, so a RunUntil that stops mid-slot resumes exactly where it
// left off.
func (s *Scheduler) runWheel(limit Time) {
	w := &s.w
	for {
		if !w.draining {
			if !s.wheelRefill(limit) {
				return
			}
		}
		// The slot and drain cursor live in locals; only a firing callback
		// can move them (drainInsert appends, regrows, or compacts), so
		// they are published before each fn() and reloaded after — not
		// re-read per event.
		slot := w.slots[0][w.slotIdx]
		di := w.di
		for {
			if di >= len(slot) {
				w.slots[0][w.slotIdx] = slot[:0]
				w.occ[0][w.slotIdx>>6] &^= 1 << uint(w.slotIdx&63)
				w.draining = false
				w.di = 0
				break
			}
			ev := slot[di]
			if ev.at > limit {
				w.di = di
				return
			}
			di++
			if ev.canceled {
				s.release(ev)
				continue
			}
			at, fn := ev.at, ev.fn
			// Recycle before running, matching the heap engine: fn may
			// schedule and reuse this node immediately.
			s.release(ev)
			s.now = at
			s.executed++
			w.di = di
			fn()
			if s.stopped {
				return
			}
			di = w.di
			slot = w.slots[0][w.slotIdx]
		}
	}
}

// wheelRefill advances the cursor to the next occupied tick <= limit,
// cascading level boundaries as it crosses them, and arms a drain. Returns
// false when every pending event is beyond limit (the cursor is never
// advanced past limit's tick, so later inserts at >= limit still land ahead
// of it).
func (s *Scheduler) wheelRefill(limit Time) bool {
	w := &s.w
	tickLimit := int64(limit) >> tickShift
	for {
		if idx := occNext(&w.occ[0], int(w.cur&(wheelSlots-1))); idx >= 0 {
			tick := (w.cur &^ (wheelSlots - 1)) | int64(idx)
			if tick > tickLimit {
				return false
			}
			w.cur = tick
			if s.startDrain(idx) {
				return true
			}
			continue
		}
		c1 := int((w.cur >> levelBits) & (wheelSlots - 1))
		if idx := occNext(&w.occ[1], c1+1); idx >= 0 {
			b := (w.cur &^ (span(1) - 1)) | int64(idx)<<levelBits
			if b > tickLimit {
				return false
			}
			w.cur = b
			s.cascade(1, idx)
			continue
		}
		c2 := int((w.cur >> (2 * levelBits)) & (wheelSlots - 1))
		if idx := occNext(&w.occ[2], c2+1); idx >= 0 {
			b := (w.cur &^ (span(2) - 1)) | int64(idx)<<(2*levelBits)
			if b > tickLimit {
				return false
			}
			w.cur = b
			s.cascade(2, idx)
			continue
		}
		c3 := int((w.cur >> (3 * levelBits)) & (wheelSlots - 1))
		if idx := occNext(&w.occ[3], c3+1); idx >= 0 {
			b := (w.cur &^ (span(3) - 1)) | int64(idx)<<(3*levelBits)
			if b > tickLimit {
				return false
			}
			w.cur = b
			s.cascade(3, idx)
			continue
		}
		// Wheel empty: the residency invariant means no occupied slot can
		// sit behind any level's cursor, so only the spill remains.
		if w.spillTombs > 0 {
			s.spillSweep()
		}
		if len(w.spill) == 0 {
			return false
		}
		head := w.spill[0]
		htick := int64(head.at) >> tickShift
		if htick > tickLimit {
			return false
		}
		w.cur = htick
		s.migrateSpill()
	}
}

// cascade empties slot idx of the given level, reinserting its live events
// relative to the new cursor. Every reinsertion lands at a strictly lower
// level (the slot covers span(level-1) ticks starting at the new cursor),
// so reusing the emptied slot's backing array is safe.
func (s *Scheduler) cascade(level, idx int) {
	w := &s.w
	slot := w.slots[level][idx]
	w.slots[level][idx] = slot[:0]
	w.occ[level][idx>>6] &^= 1 << uint(idx&63)
	for _, ev := range slot {
		if ev.canceled {
			s.release(ev)
			continue
		}
		w.put(ev, int64(ev.at)>>tickShift)
	}
}

// migrateSpill moves the sorted prefix of the spill list that now fits
// inside the wheel horizon into the wheel. Called with the cursor on the
// spill head's tick, so the prefix is non-empty unless it was all
// tombstones.
func (s *Scheduler) migrateSpill() {
	w := &s.w
	horizon := (w.cur &^ (span(3) - 1)) + span(3)
	n := 0
	for n < len(w.spill) && int64(w.spill[n].at)>>tickShift < horizon {
		n++
	}
	for i := 0; i < n; i++ {
		ev := w.spill[i]
		if ev.canceled {
			s.release(ev)
			w.spillTombs--
			continue
		}
		w.put(ev, int64(ev.at)>>tickShift)
	}
	m := copy(w.spill, w.spill[n:])
	for i := m; i < len(w.spill); i++ {
		w.spill[i] = nil
	}
	w.spill = w.spill[:m]
}

// spillSweep compacts canceled events out of the spill list.
func (s *Scheduler) spillSweep() {
	w := &s.w
	live := w.spill[:0]
	for _, ev := range w.spill {
		if ev.canceled {
			s.release(ev)
		} else {
			live = append(live, ev)
		}
	}
	for i := len(live); i < len(w.spill); i++ {
		w.spill[i] = nil
	}
	w.spill = live
	w.spillTombs = 0
}
