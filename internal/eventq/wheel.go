package eventq

import "math/bits"

// Hierarchical timing wheel (Varghese & Lauck scheme 6/7, as in the classic
// Linux timer wheel): four cascading levels of 256 slots over a ~1µs tick.
//
// Geometry. A tick is 1<<tickShift ns = 1024ns. Level L buckets ticks at
// granularity 256^L, so the wheel spans 256^4 = 2^32 ticks (~73 virtual
// minutes) before falling back to a sorted spill list — in practice only
// MaxTime-style "never" timers land there.
//
// Residency invariant. Every resident event lives in the *remainder of the
// current window* of its level: an event with tick t is in level L iff
// t < (cur &^ (span(L)-1)) + span(L) for span(L) = 256^(L+1) and no lower
// level satisfies that. Consequently, within each level all occupied slot
// indices are >= the cursor's index at that level (strictly > for L >= 1),
// so advancing the cursor is a forward bitmap scan — never a wrap — and the
// slot under the cursor at levels >= 1 is always empty. When the cursor
// crosses a level boundary, that level's next slot cascades: its events
// reinsert, landing at strictly lower levels, which makes reusing the
// slot's backing array safe.
//
// Determinism. The global firing order is the same (at, seq) total order
// the heap engine realizes. Slot lists are append-ordered and cascades can
// interleave older-seq events behind newer direct inserts, so a level-0
// slot is sorted (insertion sort, usually a no-op verify pass) once, when
// its drain starts. Draining then walks the slot linearly — the Run loop
// fires a whole tick's batch without re-consulting the wheel — and a
// callback scheduling into the live tick binary-inserts behind the drain
// cursor, preserving FIFO within the instant.
type wheel struct {
	// cur is the wheel cursor in ticks. Events never reside at ticks
	// behind it; inserts that would (only possible after a run advanced
	// cur over tombstone-only slots) clamp their tick to cur, which
	// preserves the (at, seq) firing order because every other resident
	// event's at is >= cur<<tickShift.
	cur   int64
	slots [numLevels][wheelSlots][]*event
	// occ mirrors slot occupancy: bit i of level L is set iff
	// slots[L][i] is non-empty (tombstones count as occupancy until
	// reclaimed). Lets the cursor skip empty regions 64 slots at a time.
	occ [numLevels][wheelSlots / 64]uint64
	// spill holds events beyond the wheel horizon, sorted by (at, pri, seq).
	spill      []*event
	spillTombs int
	// slotArena is the tail of the current slot-storage block: first-touch
	// slot slices carve their initial capacity from it in bulk, so warming
	// up a wheel costs one allocation per slotArenaSlots touched slots
	// rather than one per slot. A slot outgrowing slotInitCap falls back to
	// ordinary append growth.
	slotArena []*event
	// Drain state. The live tick is split calendar-queue style into
	// subCount sub-buckets of (1<<subShift) ns each: startDrain distributes
	// the armed slot's events by sub-tick address, and each sub-bucket is
	// compacted and sorted only when the drain reaches it (subArmed). This
	// keeps the sub-tick churn worst case — callbacks rescheduling into the
	// live tick — an O(1) append into a later sub-bucket instead of an
	// O(slot) memmove into one big sorted list. When draining, level-0 slot
	// slotIdx is distributed, sub-buckets [0:curSub) are exhausted, and
	// events [0:di) of sub-bucket curSub have been fired or reclaimed.
	draining bool
	slotIdx  int
	curSub   int
	subArmed bool
	di       int
	subs     [subCount][]*event
}

const (
	tickShift  = 10 // 1 tick = 1024 ns, ~1 µs
	levelBits  = 8
	wheelSlots = 1 << levelBits
	numLevels  = 4

	// Live-tick calendar split: 8 sub-buckets of 128 ns.
	subBits  = 3
	subCount = 1 << subBits
	subShift = tickShift - subBits
	subMask  = subCount - 1

	// First-touch slot storage: each untouched slot starts with capacity
	// slotInitCap carved from an arena block covering slotArenaSlots slots
	// (8 KB per block).
	slotInitCap    = 16
	slotArenaSlots = 64
)

// span returns the number of ticks one slot of the given level covers times
// wheelSlots, i.e. the full horizon of that level.
func span(level int) int64 { return 1 << uint(levelBits*(level+1)) }

// occNext returns the lowest set bit index >= from in a 256-bit occupancy
// map, or -1 if none.
func occNext(m *[wheelSlots / 64]uint64, from int) int {
	if from >= wheelSlots {
		return -1
	}
	w := from >> 6
	b := m[w] &^ (1<<uint(from&63) - 1)
	for {
		if b != 0 {
			return w<<6 + bits.TrailingZeros64(b)
		}
		w++
		if w == len(m) {
			return -1
		}
		b = m[w]
	}
}

// wheelInsert routes a freshly allocated event into the wheel. Called only
// from At, so ev.at >= s.now.
func (s *Scheduler) wheelInsert(ev *event) {
	w := &s.w
	tick := int64(ev.at) >> tickShift
	if tick < w.cur {
		// See the cur field comment: order-preserving clamp.
		tick = w.cur
	}
	if w.draining && tick == w.cur {
		w.drainInsert(ev)
		return
	}
	w.put(ev, tick)
}

// put places ev (at the given tick, >= w.cur) into its level slot or the
// spill list.
//
//dibslint:owns the slot array keeps the node until its tick drains or cascades
func (w *wheel) put(ev *event, tick int64) {
	c := w.cur
	var level int
	var idx int
	switch {
	case tick < (c&^(span(0)-1))+span(0):
		level, idx = 0, int(tick&(wheelSlots-1))
	case tick < (c&^(span(1)-1))+span(1):
		level, idx = 1, int((tick>>levelBits)&(wheelSlots-1))
	case tick < (c&^(span(2)-1))+span(2):
		level, idx = 2, int((tick>>(2*levelBits))&(wheelSlots-1))
	case tick < (c&^(span(3)-1))+span(3):
		level, idx = 3, int((tick>>(3*levelBits))&(wheelSlots-1))
	default:
		w.spillInsert(ev)
		return
	}
	lst := w.slots[level][idx]
	if cap(lst) == 0 {
		// Skip the 1-2-4 growth steps: with ~1µs ticks a live slot
		// typically collects a handful of events before draining. The
		// initial capacity is carved from a shared arena block, amortizing
		// the first-touch cost across slotArenaSlots slots.
		if len(w.slotArena) < slotInitCap {
			w.slotArena = make([]*event, slotArenaSlots*slotInitCap)
		}
		lst = w.slotArena[:0:slotInitCap]
		w.slotArena = w.slotArena[slotInitCap:]
	}
	w.slots[level][idx] = append(lst, ev)
	w.occ[level][idx>>6] |= 1 << uint(idx&63)
	ev.index = inWheelIdx
}

// spillInsert binary-inserts ev into the sorted overflow list.
//
//dibslint:owns the spill list keeps the node until it migrates into the wheel
func (w *wheel) spillInsert(ev *event) {
	lo, hi := 0, len(w.spill)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(ev, w.spill[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	w.spill = append(w.spill, nil)
	copy(w.spill[lo+1:], w.spill[lo:])
	w.spill[lo] = ev
	ev.index = inSpillIdx
}

// drainInsert places ev into the live tick currently being drained. An
// event addressed to a later sub-bucket is a plain append — armSub sorts
// that bucket when the drain reaches it. An event addressed to the current
// (or, after a mid-drain RunUntil moved the clock backwards relative to the
// pending tail, an earlier) sub-bucket binary-inserts into the current
// bucket at its (at, pri, seq) position behind the drain cursor: since
// ev.at >= s.now, the position is always >= di, so the event fires in this
// same drain pass, after every earlier same-instant event — the
// FIFO-within-instant guarantee. The clamp into curSub preserves global
// order because every event in a later sub-bucket has a strictly larger
// sub-tick address, hence a strictly larger at.
//
//dibslint:owns the live sub-bucket keeps the node until the drain reaches it
func (w *wheel) drainInsert(ev *event) {
	j := int(int64(ev.at)>>subShift) & subMask
	if j > w.curSub {
		lst := w.subs[j]
		if cap(lst) == 0 {
			lst = make([]*event, 0, 16)
		}
		w.subs[j] = append(lst, ev)
		ev.index = inWheelIdx
		return
	}
	sub := w.subs[w.curSub]
	if w.di > 32 && w.di*2 >= len(sub) {
		// Trim the fired prefix so a workload that keeps scheduling into
		// the live sub-bucket cannot grow it without bound. Amortized O(1):
		// each trimmed entry was one fired event.
		n := copy(sub, sub[w.di:])
		sub = sub[:n]
		w.subs[w.curSub] = sub
		w.di = 0
	}
	lo, hi := w.di, len(sub)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(ev, sub[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	sub = append(sub, nil)
	copy(sub[lo+1:], sub[lo:])
	sub[lo] = ev
	w.subs[w.curSub] = sub
	ev.index = inWheelIdx
}

// startDrain distributes level-0 slot idx into the live-tick sub-buckets,
// releasing tombstones along the way, and arms the drain state. Returns
// false if the slot held only tombstones (it is emptied and its occupancy
// bit cleared). Sorting is deferred per sub-bucket to armSub.
func (s *Scheduler) startDrain(idx int) bool {
	w := &s.w
	slot := w.slots[0][idx]
	live := 0
	for _, ev := range slot {
		if ev.canceled {
			s.release(ev)
			continue
		}
		j := int(int64(ev.at)>>subShift) & subMask
		lst := w.subs[j]
		if cap(lst) == 0 {
			lst = make([]*event, 0, 16)
		}
		w.subs[j] = append(lst, ev)
		live++
	}
	// Stale pointers beyond len are left in place: every node is owned by
	// the scheduler for its whole lifetime (freelist discipline), so they
	// pin nothing the freelist does not already keep alive.
	w.slots[0][idx] = slot[:0]
	if live == 0 {
		w.occ[0][idx>>6] &^= 1 << uint(idx&63)
		return false
	}
	w.draining = true
	w.slotIdx = idx
	w.curSub = 0
	w.subArmed = false
	w.di = 0
	return true
}

// armSub compacts tombstones out of sub-bucket j and sorts it by
// (at, pri, seq) if distribution or cascading left it out of order — it is
// already ordered unless a cascade appended older-seq events behind direct
// inserts. Slots are small and nearly sorted; insertion sort avoids the
// closure allocation of sort.Slice.
func (s *Scheduler) armSub(j int) {
	w := &s.w
	lst := w.subs[j]
	live := lst[:0]
	sorted := true
	for _, ev := range lst {
		if ev.canceled {
			s.release(ev)
			continue
		}
		if n := len(live); n > 0 && less(ev, live[n-1]) {
			sorted = false
		}
		live = append(live, ev)
	}
	lst = live
	w.subs[j] = lst
	if !sorted {
		for i := 1; i < len(lst); i++ {
			ev := lst[i]
			k := i - 1
			for k >= 0 && less(ev, lst[k]) {
				lst[k+1] = lst[k]
				k--
			}
			lst[k+1] = ev
		}
	}
	w.di = 0
	w.subArmed = true
}

// runWheel drains events at or before limit until none remain or Stop is
// called. Each armed slot is fired as a batch — one tick's events run
// without re-consulting the wheel levels in between. Drain state survives
// across calls, so a RunUntil that stops mid-slot resumes exactly where it
// left off.
func (s *Scheduler) runWheel(limit Time) {
	w := &s.w
	for {
		if !w.draining {
			if !s.wheelRefill(limit) {
				return
			}
		}
		for w.curSub < subCount {
			if !w.subArmed {
				s.armSub(w.curSub)
			}
			// The sub-bucket and drain cursor live in locals; only a firing
			// callback can move them (drainInsert appends, regrows, or
			// compacts), so they are published before each fn() and
			// reloaded after — not re-read per event.
			sub := w.subs[w.curSub]
			di := w.di
			for {
				if di >= len(sub) {
					w.subs[w.curSub] = sub[:0]
					w.subArmed = false
					w.curSub++
					w.di = 0
					break
				}
				ev := sub[di]
				if ev.at > limit {
					w.di = di
					return
				}
				di++
				if ev.canceled {
					s.release(ev)
					continue
				}
				at, fn := ev.at, ev.fn
				// Recycle before running, matching the heap engine: fn may
				// schedule and reuse this node immediately.
				s.release(ev)
				s.now = at
				s.executed++
				w.di = di
				fn()
				if s.stopped {
					return
				}
				di = w.di
				sub = w.subs[w.curSub]
			}
		}
		w.occ[0][w.slotIdx>>6] &^= 1 << uint(w.slotIdx&63)
		w.draining = false
		w.curSub = 0
		w.di = 0
	}
}

// wheelRefill advances the cursor to the next occupied tick <= limit,
// cascading level boundaries as it crosses them, and arms a drain. Returns
// false when every pending event is beyond limit (the cursor is never
// advanced past limit's tick, so later inserts at >= limit still land ahead
// of it).
func (s *Scheduler) wheelRefill(limit Time) bool {
	w := &s.w
	tickLimit := int64(limit) >> tickShift
	for {
		if idx := occNext(&w.occ[0], int(w.cur&(wheelSlots-1))); idx >= 0 {
			tick := (w.cur &^ (wheelSlots - 1)) | int64(idx)
			if tick > tickLimit {
				return false
			}
			w.cur = tick
			if s.startDrain(idx) {
				return true
			}
			continue
		}
		c1 := int((w.cur >> levelBits) & (wheelSlots - 1))
		if idx := occNext(&w.occ[1], c1+1); idx >= 0 {
			b := (w.cur &^ (span(1) - 1)) | int64(idx)<<levelBits
			if b > tickLimit {
				return false
			}
			w.cur = b
			s.cascade(1, idx)
			continue
		}
		c2 := int((w.cur >> (2 * levelBits)) & (wheelSlots - 1))
		if idx := occNext(&w.occ[2], c2+1); idx >= 0 {
			b := (w.cur &^ (span(2) - 1)) | int64(idx)<<(2*levelBits)
			if b > tickLimit {
				return false
			}
			w.cur = b
			s.cascade(2, idx)
			continue
		}
		c3 := int((w.cur >> (3 * levelBits)) & (wheelSlots - 1))
		if idx := occNext(&w.occ[3], c3+1); idx >= 0 {
			b := (w.cur &^ (span(3) - 1)) | int64(idx)<<(3*levelBits)
			if b > tickLimit {
				return false
			}
			w.cur = b
			s.cascade(3, idx)
			continue
		}
		// Wheel empty: the residency invariant means no occupied slot can
		// sit behind any level's cursor, so only the spill remains.
		if w.spillTombs > 0 {
			s.spillSweep()
		}
		if len(w.spill) == 0 {
			return false
		}
		head := w.spill[0]
		htick := int64(head.at) >> tickShift
		if htick > tickLimit {
			return false
		}
		w.cur = htick
		s.migrateSpill()
	}
}

// cascade empties slot idx of the given level, reinserting its live events
// relative to the new cursor. Every reinsertion lands at a strictly lower
// level (the slot covers span(level-1) ticks starting at the new cursor),
// so reusing the emptied slot's backing array is safe.
func (s *Scheduler) cascade(level, idx int) {
	w := &s.w
	slot := w.slots[level][idx]
	w.slots[level][idx] = slot[:0]
	w.occ[level][idx>>6] &^= 1 << uint(idx&63)
	for _, ev := range slot {
		if ev.canceled {
			s.release(ev)
			continue
		}
		w.put(ev, int64(ev.at)>>tickShift)
	}
}

// migrateSpill moves the sorted prefix of the spill list that now fits
// inside the wheel horizon into the wheel. Called with the cursor on the
// spill head's tick, so the prefix is non-empty unless it was all
// tombstones.
func (s *Scheduler) migrateSpill() {
	w := &s.w
	horizon := (w.cur &^ (span(3) - 1)) + span(3)
	n := 0
	for n < len(w.spill) && int64(w.spill[n].at)>>tickShift < horizon {
		n++
	}
	for i := 0; i < n; i++ {
		ev := w.spill[i]
		if ev.canceled {
			s.release(ev)
			w.spillTombs--
			continue
		}
		w.put(ev, int64(ev.at)>>tickShift)
	}
	m := copy(w.spill, w.spill[n:])
	for i := m; i < len(w.spill); i++ {
		w.spill[i] = nil
	}
	w.spill = w.spill[:m]
}

// spillSweep compacts canceled events out of the spill list.
func (s *Scheduler) spillSweep() {
	w := &s.w
	live := w.spill[:0]
	for _, ev := range w.spill {
		if ev.canceled {
			s.release(ev)
		} else {
			live = append(live, ev)
		}
	}
	for i := len(live); i < len(w.spill); i++ {
		w.spill[i] = nil
	}
	w.spill = live
	w.spillTombs = 0
}
