// Package trace records simulation events as a structured, bounded log
// that can be written to and read back from JSON Lines. It backs the
// paper's packet-level illustrations (Figures 1-2) and gives experiments a
// way to post-mortem detour storms: every drop, detour, delivery and flow
// transition carries its virtual timestamp and location.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"dibs/internal/eventq"
	"dibs/internal/packet"
)

// Kind classifies events.
type Kind uint8

const (
	// KindSend: a host emitted a data packet.
	KindSend Kind = iota
	// KindDeliver: a host received a data packet.
	KindDeliver
	// KindDrop: a switch discarded a packet.
	KindDrop
	// KindDetour: a switch detoured a packet (DIBS).
	KindDetour
	// KindFlowStart / KindFlowDone: flow lifecycle.
	KindFlowStart
	KindFlowDone
	// KindQueryStart / KindQueryDone: query (incast) lifecycle.
	KindQueryStart
	KindQueryDone
	numKinds
)

var kindNames = [numKinds]string{
	"send", "deliver", "drop", "detour",
	"flow-start", "flow-done", "query-start", "query-done",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindFromString parses a kind name; ok is false for unknown names.
func KindFromString(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// Event is one recorded occurrence.
type Event struct {
	// T is the virtual time in nanoseconds.
	T eventq.Time `json:"t"`
	// Kind names the event type (serialized as its string form).
	Kind Kind `json:"-"`
	// Node is where it happened (switch or host), -1 if n/a.
	Node packet.NodeID `json:"node"`
	// Flow is the affected flow, -1 if n/a.
	Flow packet.FlowID `json:"flow"`
	// Seq is the packet byte offset, -1 if n/a.
	Seq int64 `json:"seq"`
	// Detail carries kind-specific context (drop reason, detour ports,
	// query id).
	Detail string `json:"detail,omitempty"`
}

// MarshalJSON implements json.Marshaler with the kind as a string.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		T      int64         `json:"t"`
		Kind   string        `json:"kind"`
		Node   packet.NodeID `json:"node"`
		Flow   packet.FlowID `json:"flow"`
		Seq    int64         `json:"seq"`
		Detail string        `json:"detail,omitempty"`
	}{int64(e.T), e.Kind.String(), e.Node, e.Flow, e.Seq, e.Detail})
}

// UnmarshalJSON implements json.Unmarshaler.
func (e *Event) UnmarshalJSON(data []byte) error {
	var ej struct {
		T      int64         `json:"t"`
		Kind   string        `json:"kind"`
		Node   packet.NodeID `json:"node"`
		Flow   packet.FlowID `json:"flow"`
		Seq    int64         `json:"seq"`
		Detail string        `json:"detail"`
	}
	if err := json.Unmarshal(data, &ej); err != nil {
		return err
	}
	k, ok := KindFromString(ej.Kind)
	if !ok {
		return fmt.Errorf("trace: unknown event kind %q", ej.Kind)
	}
	*e = Event{T: eventq.Time(ej.T), Kind: k, Node: ej.Node, Flow: ej.Flow, Seq: ej.Seq, Detail: ej.Detail}
	return nil
}

// Recorder accumulates events up to a cap; further events are counted but
// discarded, so a detour storm cannot exhaust memory.
type Recorder struct {
	max     int
	events  []Event
	Dropped int // events discarded after the cap
	counts  [numKinds]uint64
}

// NewRecorder creates a recorder holding at most max events (<=0 means a
// generous default of 1M).
func NewRecorder(max int) *Recorder {
	if max <= 0 {
		max = 1 << 20
	}
	return &Recorder{max: max}
}

// Record appends an event.
func (r *Recorder) Record(e Event) {
	if int(e.Kind) < len(r.counts) {
		r.counts[e.Kind]++
	}
	if len(r.events) >= r.max {
		r.Dropped++
		return
	}
	r.events = append(r.events, e)
}

// Events returns the recorded events (not a copy; do not modify).
func (r *Recorder) Events() []Event { return r.events }

// Count returns how many events of kind were recorded (including any
// discarded past the cap).
func (r *Recorder) Count(kind Kind) uint64 { return r.counts[kind] }

// Filter returns the events satisfying pred.
func Filter(events []Event, pred func(Event) bool) []Event {
	var out []Event
	for _, e := range events {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// ByFlow returns the events of one flow, in time order.
func ByFlow(events []Event, flow packet.FlowID) []Event {
	return Filter(events, func(e Event) bool { return e.Flow == flow })
}

// Between returns events with lo <= T < hi.
func Between(events []Event, lo, hi eventq.Time) []Event {
	return Filter(events, func(e Event) bool { return e.T >= lo && e.T < hi })
}

// WriteJSONL writes events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL stream produced by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// Summary renders per-kind counts.
func (r *Recorder) Summary() string {
	s := ""
	for k := Kind(0); k < numKinds; k++ {
		if r.counts[k] > 0 {
			s += fmt.Sprintf("%s=%d ", k, r.counts[k])
		}
	}
	if r.Dropped > 0 {
		s += fmt.Sprintf("(truncated, %d beyond cap)", r.Dropped)
	}
	return s
}
