package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"

	"dibs/internal/eventq"
	"dibs/internal/packet"
)

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if strings.Contains(name, "Kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		back, ok := KindFromString(name)
		if !ok || back != k {
			t.Fatalf("round trip failed for %q", name)
		}
	}
	if _, ok := KindFromString("bogus"); ok {
		t.Fatal("bogus kind parsed")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind formatting")
	}
}

func TestRecorderCap(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Record(Event{T: 1, Kind: KindDrop})
	}
	if len(r.Events()) != 3 {
		t.Fatalf("events = %d, want 3", len(r.Events()))
	}
	if r.Dropped != 2 {
		t.Fatalf("dropped = %d", r.Dropped)
	}
	// Counts include discarded events.
	if r.Count(KindDrop) != 5 {
		t.Fatalf("count = %d", r.Count(KindDrop))
	}
	if !strings.Contains(r.Summary(), "drop=5") || !strings.Contains(r.Summary(), "truncated") {
		t.Fatalf("summary = %q", r.Summary())
	}
}

func TestFilters(t *testing.T) {
	events := []Event{
		{T: 10, Kind: KindSend, Flow: 1},
		{T: 20, Kind: KindDetour, Flow: 2},
		{T: 30, Kind: KindDeliver, Flow: 1},
	}
	if got := ByFlow(events, 1); len(got) != 2 {
		t.Fatalf("ByFlow = %d", len(got))
	}
	if got := Between(events, 15, 30); len(got) != 1 || got[0].Kind != KindDetour {
		t.Fatalf("Between = %v", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{T: 100, Kind: KindFlowStart, Node: 5, Flow: 7, Seq: -1, Detail: "bytes=2000"},
		{T: 250, Kind: KindDetour, Node: 3, Flow: 7, Seq: 1460, Detail: "2->4"},
		{T: 900, Kind: KindFlowDone, Node: 5, Flow: 7, Seq: -1},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"kind":"detour"`) {
		t.Fatalf("missing kind name: %s", buf.String())
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("read %d events", len(back))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, back[i], events[i])
		}
	}
}

func TestReadJSONLRejectsUnknownKind(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader(`{"t":1,"kind":"martian","node":0,"flow":0,"seq":0}` + "\n"))
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// Property: any sequence of events survives a JSONL round trip intact.
func TestQuickJSONLRoundTrip(t *testing.T) {
	f := func(ts []int64, kinds []uint8, details []string) bool {
		n := len(ts)
		if len(kinds) < n {
			n = len(kinds)
		}
		if len(details) < n {
			n = len(details)
		}
		events := make([]Event, 0, n)
		for i := 0; i < n; i++ {
			d := details[i]
			if !utf8.ValidString(d) {
				d = ""
			}
			events = append(events, Event{
				T:      absT(ts[i]),
				Kind:   Kind(kinds[i] % uint8(numKinds)),
				Node:   packet.NodeID(i),
				Flow:   packet.FlowID(i * 3),
				Seq:    int64(i) * 1460,
				Detail: d,
			})
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, events); err != nil {
			return false
		}
		back, err := ReadJSONL(&buf)
		if err != nil || len(back) != len(events) {
			return false
		}
		for i := range events {
			if back[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func absT(v int64) eventq.Time {
	if v < 0 {
		v = -v
	}
	return eventq.Time(v)
}
