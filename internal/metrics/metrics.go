// Package metrics collects the measurements the paper's evaluation reports:
// query completion times (QCT), flow completion times (FCT) by traffic
// class, drop/detour/mark counters, detour timelines (Figure 2a), buffer
// occupancy snapshots (Figures 2b and 5), per-link utilization windows
// (Figure 4), and the most-detoured packet's path (Figure 1).
package metrics

import (
	"sort"

	"dibs/internal/eventq"
	"dibs/internal/packet"
	"dibs/internal/stats"
	"dibs/internal/switching"
)

// FlowClass labels the paper's traffic classes.
type FlowClass uint8

const (
	// ClassQuery is partition-aggregate (incast) response traffic.
	ClassQuery FlowClass = iota
	// ClassBackground is the DCTCP-paper background workload.
	ClassBackground
	// ClassLong is a long-lived flow (fairness experiment, §5.6).
	ClassLong
	numClasses
)

func (c FlowClass) String() string {
	switch c {
	case ClassQuery:
		return "query"
	case ClassBackground:
		return "background"
	case ClassLong:
		return "long"
	default:
		return "unknown"
	}
}

// FlowInfo is the collector's record of one flow.
type FlowInfo struct {
	ID      packet.FlowID
	Class   FlowClass
	Bytes   int64
	QueryID int // -1 for non-query flows
	Start   eventq.Time
	End     eventq.Time // 0 while in flight
}

// Done reports whether the flow completed.
func (f *FlowInfo) Done() bool { return f.End > 0 }

// FCT returns the flow completion time.
func (f *FlowInfo) FCT() eventq.Time { return f.End - f.Start }

// DetourEvent is one detour decision, for the Figure 2a timeline.
type DetourEvent struct {
	T      eventq.Time
	Switch packet.NodeID
}

type queryState struct {
	remaining int
	start     eventq.Time
	end       eventq.Time
}

// Collector aggregates all measurements of one simulation run. Wire its
// Hooks into every switch and call the flow-lifecycle methods from the
// workload/host layer.
type Collector struct {
	sched *eventq.Scheduler

	flows   map[packet.FlowID]*FlowInfo
	queries map[int]*queryState
	// flowBlock is the spare tail of the current FlowInfo block (see
	// FlowStartedAt).
	flowBlock []FlowInfo

	// QCTs holds completed query completion times in milliseconds.
	QCTs stats.Sample
	// ShortBGFCTs holds FCTs (ms) of short background flows (1-10KB),
	// the paper's collateral-damage metric.
	ShortBGFCTs stats.Sample
	// BGFCTs holds FCTs (ms) of all completed background flows.
	BGFCTs stats.Sample

	// Drops counts packet drops by reason, across all switches.
	Drops [switching.NumDropReasons]uint64
	// DropsByClass counts dropped data packets per traffic class.
	DropsByClass [numClasses]uint64
	// Detours counts detour decisions; DetoursByClass splits them per
	// class (§5.4.1: >90% of detoured packets belong to query traffic).
	Detours        uint64
	DetoursByClass [numClasses]uint64

	// RecordTimeline enables the DetourTimeline (Figure 2a).
	RecordTimeline bool
	DetourTimeline []DetourEvent

	// MaxDetours tracks the worst detour count over delivered data
	// packets, and BestTrace the path of that packet when tracing was on
	// (Figure 1).
	MaxDetours int
	BestTrace  []packet.TraceHop
	// DetourCounts samples the per-delivered-packet detour count.
	DetourCounts stats.Sample

	// DeliveredData counts data packets delivered to hosts; DeliveredAcks
	// counts delivered ACKs. Together with the drop counters they account
	// for every packet the pool hands out (conservation checks).
	DeliveredData uint64
	DeliveredAcks uint64
}

// NewCollector creates a collector bound to the scheduler's clock.
func NewCollector(sched *eventq.Scheduler) *Collector {
	return &Collector{
		sched:   sched,
		flows:   make(map[packet.FlowID]*FlowInfo),
		queries: make(map[int]*queryState),
	}
}

// Hooks returns switch hooks that feed this collector.
func (c *Collector) Hooks() *switching.Hooks {
	return &switching.Hooks{
		OnDrop:   c.onDrop,
		OnDetour: c.onDetour,
	}
}

func (c *Collector) onDrop(node packet.NodeID, p *packet.Packet, reason switching.DropReason) {
	c.Drops[reason]++
	if p.Kind == packet.Data {
		if f, ok := c.flows[p.Flow]; ok {
			c.DropsByClass[f.Class]++
		}
	}
}

func (c *Collector) onDetour(node packet.NodeID, p *packet.Packet, desired, chosen int) {
	c.Detours++
	if f, ok := c.flows[p.Flow]; ok {
		c.DetoursByClass[f.Class]++
	}
	if c.RecordTimeline {
		c.DetourTimeline = append(c.DetourTimeline, DetourEvent{T: c.sched.Now(), Switch: node})
	}
}

// OnDeliver records a data packet reaching its destination host. The host
// layer calls this for every data packet.
func (c *Collector) OnDeliver(p *packet.Packet) {
	if p.Kind != packet.Data {
		if p.Kind == packet.Ack {
			c.DeliveredAcks++
		}
		return
	}
	c.DeliveredData++
	if p.Detours > 0 {
		c.DetourCounts.Add(float64(p.Detours))
	}
	if p.Detours > c.MaxDetours {
		c.MaxDetours = p.Detours
		if p.Trace != nil {
			c.BestTrace = append(c.BestTrace[:0], p.Trace...)
		}
	}
}

// FlowStarted registers a new flow. queryID is -1 for non-query flows.
func (c *Collector) FlowStarted(id packet.FlowID, class FlowClass, bytes int64, queryID int) {
	c.FlowStartedAt(id, class, bytes, queryID, c.sched.Now())
}

// FlowStartedAt is FlowStarted with an explicit start time. The sharded
// engine uses it to register the full precomputed flow table in every
// shard's collector before the run begins, so drop/detour class attribution
// works in whichever shard a packet happens to be when the hook fires.
func (c *Collector) FlowStartedAt(id packet.FlowID, class FlowClass, bytes int64, queryID int, at eventq.Time) {
	// Carve FlowInfos from a block: one allocation per 64 flows instead of
	// one each. Earlier pointers stay valid across refills — only the spare
	// capacity is re-sliced away, never the handed-out prefix.
	if len(c.flowBlock) == 0 {
		c.flowBlock = make([]FlowInfo, 64)
	}
	f := &c.flowBlock[0]
	c.flowBlock = c.flowBlock[1:]
	*f = FlowInfo{
		ID:      id,
		Class:   class,
		Bytes:   bytes,
		QueryID: queryID,
		Start:   at,
	}
	c.flows[id] = f
}

// FlowDone marks a flow complete, updating FCT samples and any parent
// query.
func (c *Collector) FlowDone(id packet.FlowID) {
	f, ok := c.flows[id]
	if !ok || f.Done() {
		return
	}
	f.End = c.sched.Now()
	fctMs := f.FCT().Millis()
	switch f.Class {
	case ClassBackground:
		c.BGFCTs.Add(fctMs)
		if f.Bytes >= 1_000 && f.Bytes <= 10_000 {
			c.ShortBGFCTs.Add(fctMs)
		}
	}
	if f.QueryID >= 0 {
		q := c.queries[f.QueryID]
		if q != nil && q.end == 0 {
			q.remaining--
			if q.remaining == 0 {
				q.end = c.sched.Now()
				c.QCTs.Add((q.end - q.start).Millis())
			}
		}
	}
}

// QueryStarted registers a query of nFlows responses.
func (c *Collector) QueryStarted(queryID, nFlows int) {
	c.QueryStartedAt(queryID, nFlows, c.sched.Now())
}

// QueryStartedAt is QueryStarted with an explicit start time, for
// pre-registering the precomputed query table in every shard's collector.
func (c *Collector) QueryStartedAt(queryID, nFlows int, at eventq.Time) {
	c.queries[queryID] = &queryState{remaining: nFlows, start: at}
}

// MergeFrom folds another collector's measurements into c, the reduction
// step after a sharded run. Every aggregate it touches is order-independent
// across shards: counters sum, maxima take the max, samples append raw
// values (percentiles sort internally), and per-flow/per-query state is
// keyed so exactly one shard ever contributes the completion (a flow
// finishes at its destination host's shard; all of a query's flows share
// one destination). Iteration is over sorted keys so the merged in-memory
// layout is itself deterministic.
func (c *Collector) MergeFrom(o *Collector) {
	c.QCTs.AddAll(o.QCTs.Values())
	c.ShortBGFCTs.AddAll(o.ShortBGFCTs.Values())
	c.BGFCTs.AddAll(o.BGFCTs.Values())
	c.DetourCounts.AddAll(o.DetourCounts.Values())
	for i := range c.Drops {
		c.Drops[i] += o.Drops[i]
	}
	for i := range c.DropsByClass {
		c.DropsByClass[i] += o.DropsByClass[i]
		c.DetoursByClass[i] += o.DetoursByClass[i]
	}
	c.Detours += o.Detours
	c.DeliveredData += o.DeliveredData
	c.DeliveredAcks += o.DeliveredAcks
	if o.MaxDetours > c.MaxDetours {
		c.MaxDetours = o.MaxDetours
		c.BestTrace = append(c.BestTrace[:0], o.BestTrace...)
	}
	c.DetourTimeline = append(c.DetourTimeline, o.DetourTimeline...)

	// Indexed fill + sort: the iteration order of the source map never
	// reaches the merged state.
	flowIDs := make([]packet.FlowID, len(o.flows))
	i := 0
	for id := range o.flows {
		flowIDs[i] = id
		i++
	}
	sortFlowIDs(flowIDs)
	for _, id := range flowIDs {
		of := o.flows[id]
		f, ok := c.flows[id]
		if !ok {
			cp := *of
			c.flows[id] = &cp
			continue
		}
		if of.End > f.End {
			f.End = of.End
		}
	}

	queryIDs := make([]int, len(o.queries))
	i = 0
	for id := range o.queries {
		queryIDs[i] = id
		i++
	}
	sortInts(queryIDs)
	for _, id := range queryIDs {
		oq := o.queries[id]
		q, ok := c.queries[id]
		if !ok {
			cp := *oq
			c.queries[id] = &cp
			continue
		}
		if oq.remaining < q.remaining {
			q.remaining = oq.remaining
		}
		if oq.end > q.end {
			q.end = oq.end
		}
	}
}

func sortFlowIDs(ids []packet.FlowID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func sortInts(ids []int) { sort.Ints(ids) }

// Flow returns the record for id (nil when unknown).
func (c *Collector) Flow(id packet.FlowID) *FlowInfo { return c.flows[id] }

// EachFlow visits every registered flow (order unspecified).
func (c *Collector) EachFlow(fn func(*FlowInfo)) {
	for _, f := range c.flows {
		fn(f)
	}
}

// CompletedQueries returns how many queries have fully completed.
func (c *Collector) CompletedQueries() int {
	n := 0
	for _, q := range c.queries {
		if q.end > 0 {
			n++
		}
	}
	return n
}

// StartedQueries returns how many queries were registered.
func (c *Collector) StartedQueries() int { return len(c.queries) }

// CompletedFlows returns the number of completed flows of a class.
func (c *Collector) CompletedFlows(class FlowClass) int {
	n := 0
	for _, f := range c.flows {
		if f.Class == class && f.Done() {
			n++
		}
	}
	return n
}

// TotalDrops sums drops over all reasons.
func (c *Collector) TotalDrops() uint64 {
	var t uint64
	for _, d := range c.Drops {
		t += d
	}
	return t
}

// DetouredFraction returns detour decisions / delivered data packets, an
// upper-bound analogue of the paper's "fraction of packets detoured".
func (c *Collector) DetouredFraction() float64 {
	if c.DeliveredData == 0 {
		return 0
	}
	return float64(c.Detours) / float64(c.DeliveredData)
}
