package metrics

import (
	"dibs/internal/eventq"
	"dibs/internal/packet"
	"dibs/internal/switching"
)

// PortRef identifies one monitored output port.
type PortRef struct {
	Node packet.NodeID
	Port int
	Out  *switching.OutPort
}

// LinkUtilMonitor samples link utilization in fixed windows, producing the
// data for the hot-link analysis of Figure 4: a link is "hot" in a window
// when its utilization meets a threshold (the paper uses 90% for its own
// workloads).
type LinkUtilMonitor struct {
	sched  *eventq.Scheduler
	window eventq.Time
	ports  []PortRef

	lastBusy []eventq.Time
	// Windows[w][i] is port i's utilization (0..1) during window w.
	Windows [][]float64
	running bool
}

// NewLinkUtilMonitor creates a monitor over the given ports with the given
// window length.
func NewLinkUtilMonitor(sched *eventq.Scheduler, window eventq.Time, ports []PortRef) *LinkUtilMonitor {
	if window <= 0 {
		panic("metrics: window must be positive")
	}
	return &LinkUtilMonitor{
		sched:    sched,
		window:   window,
		ports:    ports,
		lastBusy: make([]eventq.Time, len(ports)),
	}
}

// Start begins periodic sampling.
func (m *LinkUtilMonitor) Start() {
	if m.running {
		return
	}
	m.running = true
	for i, p := range m.ports {
		m.lastBusy[i] = p.Out.BusyTime
	}
	m.sched.After(m.window, m.sample)
}

func (m *LinkUtilMonitor) sample() {
	utils := make([]float64, len(m.ports))
	for i, p := range m.ports {
		busy := p.Out.BusyTime
		utils[i] = float64(busy-m.lastBusy[i]) / float64(m.window)
		if utils[i] > 1 {
			// A serialization that started in the previous window can
			// land its whole busy time in this one; clamp.
			utils[i] = 1
		}
		m.lastBusy[i] = busy
	}
	m.Windows = append(m.Windows, utils)
	m.sched.After(m.window, m.sample)
}

// HotFractions returns, per window, the fraction of monitored links with
// utilization >= threshold.
func (m *LinkUtilMonitor) HotFractions(threshold float64) []float64 {
	out := make([]float64, len(m.Windows))
	for w, utils := range m.Windows {
		hot := 0
		for _, u := range utils {
			if u >= threshold {
				hot++
			}
		}
		out[w] = float64(hot) / float64(len(utils))
	}
	return out
}

// HotPorts returns the indices (into the monitor's port list) of the ports
// hot in window w.
func (m *LinkUtilMonitor) HotPorts(w int, threshold float64) []int {
	var out []int
	for i, u := range m.Windows[w] {
		if u >= threshold {
			out = append(out, i)
		}
	}
	return out
}

// Ports exposes the monitored port list.
func (m *LinkUtilMonitor) Ports() []PortRef { return m.ports }

// BufferSnapshot is one periodic sample of queue occupancy.
type BufferSnapshot struct {
	T eventq.Time
	// Len[i] is the queue length of monitored port i; Full[i] whether it
	// would refuse a packet.
	Len  []int
	Full []bool
}

// BufferSampler periodically snapshots queue occupancy of a port set
// (Figures 2b and 5).
type BufferSampler struct {
	sched   *eventq.Scheduler
	period  eventq.Time
	ports   []PortRef
	running bool

	Snapshots []BufferSnapshot
}

// NewBufferSampler creates a sampler with the given period.
func NewBufferSampler(sched *eventq.Scheduler, period eventq.Time, ports []PortRef) *BufferSampler {
	if period <= 0 {
		panic("metrics: period must be positive")
	}
	return &BufferSampler{sched: sched, period: period, ports: ports}
}

// Start begins periodic snapshots (the first fires after one period).
func (b *BufferSampler) Start() {
	if b.running {
		return
	}
	b.running = true
	b.sched.After(b.period, b.sample)
}

func (b *BufferSampler) sample() {
	s := BufferSnapshot{
		T:    b.sched.Now(),
		Len:  make([]int, len(b.ports)),
		Full: make([]bool, len(b.ports)),
	}
	for i, p := range b.ports {
		s.Len[i] = p.Out.Q.Len()
		s.Full[i] = p.Out.Q.Full()
	}
	b.Snapshots = append(b.Snapshots, s)
	b.sched.After(b.period, b.sample)
}

// Ports exposes the sampled port list.
func (b *BufferSampler) Ports() []PortRef { return b.ports }
