package metrics

import (
	"testing"

	"dibs/internal/eventq"
	"dibs/internal/packet"
	"dibs/internal/queue"
	"dibs/internal/switching"
)

func TestFlowLifecycleAndFCT(t *testing.T) {
	sched := eventq.NewScheduler()
	c := NewCollector(sched)
	c.FlowStarted(1, ClassBackground, 5_000, -1)
	sched.At(3*eventq.Millisecond, func() { c.FlowDone(1) })
	sched.Run()
	if c.CompletedFlows(ClassBackground) != 1 {
		t.Fatal("flow not completed")
	}
	if c.BGFCTs.N() != 1 || c.BGFCTs.Max() != 3 {
		t.Fatalf("BG FCT = %v", c.BGFCTs.Values())
	}
	// 5KB is in the short-flow band.
	if c.ShortBGFCTs.N() != 1 {
		t.Fatal("short-flow FCT not recorded")
	}
	f := c.Flow(1)
	if f == nil || !f.Done() || f.FCT() != 3*eventq.Millisecond {
		t.Fatalf("flow info: %+v", f)
	}
}

func TestShortFlowBand(t *testing.T) {
	sched := eventq.NewScheduler()
	c := NewCollector(sched)
	c.FlowStarted(1, ClassBackground, 500, -1)     // below band
	c.FlowStarted(2, ClassBackground, 100_000, -1) // above band
	c.FlowStarted(3, ClassBackground, 10_000, -1)  // inside band
	sched.At(1, func() { c.FlowDone(1); c.FlowDone(2); c.FlowDone(3) })
	sched.Run()
	if c.BGFCTs.N() != 3 {
		t.Fatalf("all BG FCTs = %d", c.BGFCTs.N())
	}
	if c.ShortBGFCTs.N() != 1 {
		t.Fatalf("short FCTs = %d, want 1", c.ShortBGFCTs.N())
	}
}

func TestQueryCompletion(t *testing.T) {
	sched := eventq.NewScheduler()
	c := NewCollector(sched)
	c.QueryStarted(0, 3)
	for i := packet.FlowID(1); i <= 3; i++ {
		c.FlowStarted(i, ClassQuery, 20_000, 0)
	}
	sched.At(2*eventq.Millisecond, func() { c.FlowDone(1) })
	sched.At(5*eventq.Millisecond, func() { c.FlowDone(2) })
	sched.At(9*eventq.Millisecond, func() { c.FlowDone(3) })
	sched.Run()
	if c.CompletedQueries() != 1 || c.StartedQueries() != 1 {
		t.Fatal("query not completed")
	}
	// QCT is gated by the last response: 9ms.
	if c.QCTs.N() != 1 || c.QCTs.Max() != 9 {
		t.Fatalf("QCT = %v", c.QCTs.Values())
	}
}

func TestQueryIncompleteWithoutAllFlows(t *testing.T) {
	sched := eventq.NewScheduler()
	c := NewCollector(sched)
	c.QueryStarted(7, 2)
	c.FlowStarted(1, ClassQuery, 1000, 7)
	c.FlowStarted(2, ClassQuery, 1000, 7)
	sched.At(1, func() { c.FlowDone(1) })
	sched.Run()
	if c.CompletedQueries() != 0 {
		t.Fatal("query should be incomplete")
	}
	if c.QCTs.N() != 0 {
		t.Fatal("no QCT should be recorded")
	}
}

func TestFlowDoneIdempotent(t *testing.T) {
	sched := eventq.NewScheduler()
	c := NewCollector(sched)
	c.FlowStarted(1, ClassBackground, 2000, -1)
	sched.At(1, func() { c.FlowDone(1); c.FlowDone(1) })
	sched.Run()
	if c.BGFCTs.N() != 1 {
		t.Fatalf("FCT recorded %d times", c.BGFCTs.N())
	}
	// Unknown flow is a no-op.
	c.FlowDone(99)
}

func TestHookCounters(t *testing.T) {
	sched := eventq.NewScheduler()
	c := NewCollector(sched)
	c.RecordTimeline = true
	c.FlowStarted(1, ClassQuery, 1000, -1)
	c.FlowStarted(2, ClassBackground, 1000, -1)
	h := c.Hooks()
	dp := &packet.Packet{Kind: packet.Data, Flow: 1}
	bp := &packet.Packet{Kind: packet.Data, Flow: 2}
	h.OnDrop(5, dp, switching.DropOverflow)
	h.OnDrop(5, bp, switching.DropOverflow)
	h.OnDetour(5, dp, 0, 1)
	h.OnDetour(6, dp, 0, 2)
	if c.TotalDrops() != 2 || c.Drops[switching.DropOverflow] != 2 {
		t.Fatal("drop counters")
	}
	if c.DropsByClass[ClassQuery] != 1 || c.DropsByClass[ClassBackground] != 1 {
		t.Fatal("per-class drops")
	}
	if c.Detours != 2 || c.DetoursByClass[ClassQuery] != 2 {
		t.Fatal("detour counters")
	}
	if len(c.DetourTimeline) != 2 || c.DetourTimeline[1].Switch != 6 {
		t.Fatalf("timeline = %v", c.DetourTimeline)
	}
}

func TestOnDeliverTracksWorstDetouredPacket(t *testing.T) {
	sched := eventq.NewScheduler()
	c := NewCollector(sched)
	p1 := &packet.Packet{Kind: packet.Data, Detours: 3,
		Trace: []packet.TraceHop{{Node: 1, Port: 0, Detoured: true}}}
	p2 := &packet.Packet{Kind: packet.Data, Detours: 15,
		Trace: []packet.TraceHop{{Node: 2, Port: 1, Detoured: true}, {Node: 3, Port: 0}}}
	p3 := &packet.Packet{Kind: packet.Data, Detours: 7}
	c.OnDeliver(p1)
	c.OnDeliver(p2)
	c.OnDeliver(p3)
	c.OnDeliver(&packet.Packet{Kind: packet.Ack, Detours: 99})
	if c.MaxDetours != 15 {
		t.Fatalf("MaxDetours = %d", c.MaxDetours)
	}
	if len(c.BestTrace) != 2 || c.BestTrace[0].Node != 2 {
		t.Fatalf("BestTrace = %v", c.BestTrace)
	}
	if c.DeliveredData != 3 {
		t.Fatalf("DeliveredData = %d", c.DeliveredData)
	}
	if c.DetourCounts.N() != 3 {
		t.Fatalf("DetourCounts = %d", c.DetourCounts.N())
	}
	// DetouredFraction relates detour *decisions* (hook) to deliveries.
	c.Hooks().OnDetour(1, p1, 0, 1)
	if f := c.DetouredFraction(); f <= 0 {
		t.Fatalf("DetouredFraction = %v", f)
	}
}

// sink discards packets.
type sink struct{}

func (sink) Receive(p *packet.Packet, port int) {}

func TestLinkUtilMonitor(t *testing.T) {
	sched := eventq.NewScheduler()
	// 1 Gbps port; a 1500B packet busies it for 12us.
	op := switching.NewOutPort(sched, queue.NewDropTail(1000, 0), 1_000_000_000, 0, sink{}, 0)
	m := NewLinkUtilMonitor(sched, 120*eventq.Microsecond, []PortRef{{Node: 1, Port: 0, Out: op}})
	m.Start()
	// Saturate the first window: 10 packets = 120us busy.
	for i := 0; i < 10; i++ {
		op.Enqueue(&packet.Packet{Kind: packet.Data, PayloadBytes: 1460})
	}
	sched.RunUntil(240 * eventq.Microsecond)
	if len(m.Windows) != 2 {
		t.Fatalf("windows = %d", len(m.Windows))
	}
	if m.Windows[0][0] < 0.99 {
		t.Fatalf("first window util = %v, want ~1", m.Windows[0][0])
	}
	if m.Windows[1][0] != 0 {
		t.Fatalf("second window util = %v, want 0", m.Windows[1][0])
	}
	hot := m.HotFractions(0.9)
	if hot[0] != 1 || hot[1] != 0 {
		t.Fatalf("hot fractions = %v", hot)
	}
	if got := m.HotPorts(0, 0.9); len(got) != 1 || got[0] != 0 {
		t.Fatalf("hot ports = %v", got)
	}
}

func TestBufferSampler(t *testing.T) {
	sched := eventq.NewScheduler()
	q := queue.NewDropTail(2, 0)
	op := switching.NewOutPort(sched, q, 1_000_000_000, 0, sink{}, 0)
	b := NewBufferSampler(sched, 10*eventq.Microsecond, []PortRef{{Node: 1, Port: 0, Out: op}})
	b.Start()
	// Fill: 3 packets (1 transmitting at 12us, 2 queued).
	for i := 0; i < 3; i++ {
		op.Enqueue(&packet.Packet{Kind: packet.Data, PayloadBytes: 1460})
	}
	sched.RunUntil(10 * eventq.Microsecond)
	if len(b.Snapshots) != 1 {
		t.Fatalf("snapshots = %d", len(b.Snapshots))
	}
	s := b.Snapshots[0]
	if s.Len[0] != 2 || !s.Full[0] {
		t.Fatalf("snapshot = %+v", s)
	}
	sched.RunUntil(eventq.Millisecond)
	last := b.Snapshots[len(b.Snapshots)-1]
	if last.Len[0] != 0 || last.Full[0] {
		t.Fatal("queue should have drained")
	}
}

func TestMonitorConstructorPanics(t *testing.T) {
	sched := eventq.NewScheduler()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero window should panic")
			}
		}()
		NewLinkUtilMonitor(sched, 0, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero period should panic")
			}
		}()
		NewBufferSampler(sched, 0, nil)
	}()
}

func TestStartIdempotent(t *testing.T) {
	sched := eventq.NewScheduler()
	op := switching.NewOutPort(sched, queue.NewDropTail(2, 0), 1_000_000_000, 0, sink{}, 0)
	m := NewLinkUtilMonitor(sched, 10*eventq.Microsecond, []PortRef{{Out: op}})
	m.Start()
	m.Start()
	sched.RunUntil(10 * eventq.Microsecond)
	if len(m.Windows) != 1 {
		t.Fatalf("double Start duplicated sampling: %d windows", len(m.Windows))
	}
	b := NewBufferSampler(sched, 10*eventq.Microsecond, []PortRef{{Out: op}})
	b.Start()
	b.Start()
	sched.RunUntil(20 * eventq.Microsecond)
	if len(b.Snapshots) != 1 {
		t.Fatalf("double Start duplicated snapshots: %d", len(b.Snapshots))
	}
}

func TestFlowClassString(t *testing.T) {
	if ClassQuery.String() != "query" || ClassBackground.String() != "background" ||
		ClassLong.String() != "long" || FlowClass(9).String() != "unknown" {
		t.Fatal("class strings")
	}
}
