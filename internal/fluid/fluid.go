// Package fluid models designated long flows as piecewise-constant rate
// processes instead of per-packet events (the hybrid fast path of DESIGN
// §9). On every coarse engine tick — an ordinary event on the simulation's
// eventq.Scheduler, so determinism, the timing wheel, and sharding rules
// are untouched — the engine:
//
//  1. credits each fluid flow rate·dt bytes (delivered straight to the
//     transport endpoints, no packets borrowed),
//  2. promotes every flow crossing a link whose packet queue has entered
//     the incast regime back to packet fidelity (DIBS's interesting
//     physics are per-packet; see the paper's §5),
//  3. lets the hybrid layer demote newly stable flows via OnTick, and
//  4. re-solves the max-min fair-share rate allocation over the residual
//     link capacities, folding each link's fluid occupancy back into the
//     packet world (queue.FluidShare + the port's residual service rate)
//     so packet traffic keeps seeing correct depth, drop, and detour
//     decisions.
//
// Rates and byte accumulators are float64; all comparisons use relative
// tolerances (never ==), and all durations are eventq.Time. The flow set
// is kept in flow-ID order and the solver visits links in registration
// order, so a run is a pure function of the schedule — byte-identical
// across repeats, engines, and host machines.
package fluid

import (
	"math"
	"sort"

	"dibs/internal/eventq"
	"dibs/internal/queue"
)

// rateEps is the relative tolerance for fair-share comparisons: two shares
// within this fraction are "the same bottleneck".
const rateEps = 1e-9

// stickFrac is the hysteresis band for a flow's standing-charge site: the
// flow keeps charging its previous bottleneck link while that link's share
// stays within this fraction of the round minimum (see solve).
const stickFrac = 0.1

// satFrac: a link whose allocated fluid throughput consumes at least this
// fraction of its residual capacity is fluid-saturated — a standing queue
// of fluid traffic exists there, and packet traffic is charged for it.
const satFrac = 0.95

// minResidualFrac floors the residual capacity the solver offers fluid
// flows at this fraction of the nominal link rate, so a packet-load
// measurement spike cannot fully starve the fluid allocation during
// transients.
const minResidualFrac = 0.05

// pktLoadGain is the EWMA gain for the per-link packet-throughput
// measurement that the solver subtracts from link capacity.
const pktLoadGain = 0.5

// Link is the fluid view of one directed link. The caller registers every
// link packet traffic can traverse; only links actually crossed by a fluid
// flow cost anything per tick.
type Link struct {
	// CapBps is the nominal link rate in bits/second.
	CapBps int64
	// QLen reports the packet queue's real (packet-only) length.
	QLen func() int
	// PktBytes reports cumulative packet bytes offered to (accepted by)
	// the link; the engine differentiates it per tick to measure the
	// packet load the solver subtracts from capacity. Counting arrivals
	// (not transmissions) keeps the measurement independent of delivery-
	// side effects of the fold.
	PktBytes func() uint64
	// SetFold pushes the link's standing-queue delay into the packet
	// transmitter (OutPort.SetFluid). Packet serialization itself stays
	// at the full link rate: in FIFO order, fluid bytes arriving after a
	// real packet queue behind it, so present packet traffic is never
	// slowed by the fluid flows' future arrivals — instead the engine
	// yields the measured packet load on its next tick.
	SetFold func(standing eventq.Time)
	// Share receives the link's fluid occupancy in packet equivalents,
	// folded into the queue's capacity and Full checks. Nil when the
	// discipline has no capacity to fold into (Infinite).
	Share *queue.FluidShare
	// StandingPkts is the occupancy charged while the link is
	// fluid-saturated: the standing queue a long packet flow would keep
	// at this bottleneck (DCTCP pins it at the marking threshold).
	StandingPkts int
	// StandingDelay is the extra per-packet delivery latency of that
	// standing queue (StandingPkts full-rate serialization times).
	StandingDelay eventq.Time
	// PromotePkts, when > 0, is the effective queue length (packets +
	// fluid share) at which every fluid flow crossing this link is
	// promoted back to packet fidelity.
	PromotePkts int

	nflows     int     // fluid flows currently crossing this link
	pktBps     float64 // EWMA packet offered load
	lastPkt    uint64  // PktBytes at the previous measurement
	measured   bool    // lastPkt is valid
	avail      float64 // solver scratch: residual capacity not yet allocated
	availCap   float64 // solver scratch: residual capacity at round start
	unfrozen   int     // solver scratch: flows not yet frozen on this link
	fluidBps   float64 // sum of allocated fluid rates
	bottleneck bool    // some flow's rate was frozen first at this link
	folded     bool    // a nonzero fold is currently pushed into the port
}

// share returns the fair share a new flow would get on l right now (solver
// scratch state).
func (l *Link) share() float64 { return l.avail / float64(l.unfrozen) }

// Hot reports whether the link is in the incast regime: its effective
// queue — real packets plus folded fluid share — crossed the promotion
// watermark. Queue depth is the only signal that works across fabrics: an
// arrival-rate test misfires on oversubscribed uplinks, where ordinary
// cwnd bursts arrive at NIC line rate (several times uplink capacity)
// without ever building a standing queue. Links with PromotePkts == 0
// (host NICs: sender fan-in, never transit incast) are never hot. The
// hybrid layer also uses this to keep stable flows from demoting onto a
// contended path.
func (l *Link) Hot() bool {
	return l.PromotePkts > 0 && l.QLen()+l.Share.Pkts() >= l.PromotePkts
}

// Flow is one rate-modeled transfer.
type Flow struct {
	// ID orders flows deterministically (the transport flow ID).
	ID uint64
	// Path lists the links the flow's packets would traverse, in order,
	// replicating the packet world's flow-level ECMP choices.
	Path []*Link
	// Remaining is the byte count still to deliver; the engine decrements
	// it as credits flow.
	Remaining int64
	// OnDeliver credits n bytes to the endpoints (receiver first, then
	// the sender's cumulative-ack state).
	OnDeliver func(n int64)
	// OnComplete fires once when Remaining reaches zero; the flow has
	// already been removed from the engine.
	OnComplete func()
	// OnPromote fires when a link on the path enters the incast regime:
	// the flow has been removed from the engine and must resume packet
	// transmission from its cumulative-ack point.
	OnPromote func(remaining int64)

	rateBps float64
	acc     float64 // fractional-byte accumulator
	frozen  bool    // solver scratch
	bneck   *Link   // sticky standing-charge site (see solve)
}

// RateBps returns the flow's current allocated rate (for tests/metrics).
func (f *Flow) RateBps() float64 { return f.rateBps }

// Engine advances all fluid flows on a fixed tick.
type Engine struct {
	sched *eventq.Scheduler
	tick  eventq.Time

	links  []*Link // registration order
	flows  []*Flow // ID order
	active []*Link // links with nflows > 0, registration order
	dirty  bool    // active set needs rebuilding

	lastTick eventq.Time
	running  bool
	tickFn   func() // bound once; rescheduling allocates nothing

	// OnTick fires at the end of every tick, after deliveries and
	// promotions but before the rate solve — the hybrid layer's hook for
	// scanning demotion candidates (flows admitted here are priced into
	// the same tick's solve).
	OnTick func()

	// DeliveredBytes totals fluid-delivered bytes (conservation checks).
	DeliveredBytes uint64
	// Promotions counts flows returned to packet fidelity by the incast
	// trigger.
	Promotions uint64

	promoteScratch []*Flow // reused each tick
}

// NewEngine creates an engine ticking every tick on sched. The tick is the
// fluid model's time resolution: rate changes, deliveries, and
// promote/demote decisions all happen on tick boundaries.
func NewEngine(sched *eventq.Scheduler, tick eventq.Time) *Engine {
	if tick <= 0 {
		panic("fluid: tick must be positive")
	}
	e := &Engine{sched: sched, tick: tick}
	e.tickFn = e.onTick
	return e
}

// AddLink registers a link. Links must be registered before Start.
func (e *Engine) AddLink(l *Link) {
	if l.CapBps <= 0 {
		panic("fluid: link capacity must be positive")
	}
	e.links = append(e.links, l)
}

// Start begins ticking. The first tick fires one tick from now.
func (e *Engine) Start() {
	if e.running {
		return
	}
	e.running = true
	e.lastTick = e.sched.Now()
	e.sched.After(e.tick, e.tickFn)
}

// Flows returns the number of flows currently under fluid control.
func (e *Engine) Flows() int { return len(e.flows) }

// Admit places f under fluid control. Credits begin at the next tick; the
// flow's first rate comes from the next solve. Admitting from inside
// OnTick is the intended demotion path — the flow is priced into that same
// tick's solve.
func (e *Engine) Admit(f *Flow) {
	if f.Remaining <= 0 {
		panic("fluid: admitted flow has nothing to deliver")
	}
	if len(f.Path) == 0 {
		panic("fluid: admitted flow has an empty path")
	}
	i := sort.Search(len(e.flows), func(i int) bool { return e.flows[i].ID >= f.ID })
	if i < len(e.flows) && e.flows[i].ID == f.ID {
		panic("fluid: flow admitted twice")
	}
	e.flows = append(e.flows, nil)
	copy(e.flows[i+1:], e.flows[i:])
	e.flows[i] = f
	for _, l := range f.Path {
		l.nflows++
	}
	e.dirty = true
}

// remove takes f out of the engine (completion or promotion).
func (e *Engine) remove(f *Flow) {
	i := sort.Search(len(e.flows), func(i int) bool { return e.flows[i].ID >= f.ID })
	if i >= len(e.flows) || e.flows[i] != f {
		panic("fluid: removing unknown flow")
	}
	copy(e.flows[i:], e.flows[i+1:])
	e.flows = e.flows[:len(e.flows)-1]
	for _, l := range f.Path {
		l.nflows--
	}
	e.dirty = true
}

// onTick is the engine heartbeat.
func (e *Engine) onTick() {
	now := e.sched.Now()
	dt := now - e.lastTick
	e.lastTick = now

	e.deliver(dt)
	e.measure(dt)
	e.promote()
	if e.OnTick != nil {
		e.OnTick()
	}
	e.rebuildActive()
	e.solve()
	e.fold()

	e.sched.After(e.tick, e.tickFn)
}

// deliver credits every flow rate·dt bytes and completes drained flows.
func (e *Engine) deliver(dt eventq.Time) {
	// Completion removes flows mid-iteration; walk by index over a stable
	// prefix view. remove() only shifts elements left, so compensating
	// the index keeps the walk in ID order.
	for i := 0; i < len(e.flows); i++ {
		f := e.flows[i]
		f.acc += f.rateBps * dt.Seconds() / 8
		n := int64(f.acc)
		if n <= 0 {
			continue
		}
		if n >= f.Remaining {
			n = f.Remaining
			f.acc = 0
		} else {
			f.acc -= float64(n)
		}
		f.Remaining -= n
		e.DeliveredBytes += uint64(n)
		if f.OnDeliver != nil {
			f.OnDeliver(n)
		}
		if f.Remaining <= 0 {
			e.remove(f)
			i--
			if f.OnComplete != nil {
				f.OnComplete()
			}
		}
	}
}

// measure updates each active link's packet offered-load EWMA from the
// arrival counter delta.
func (e *Engine) measure(dt eventq.Time) {
	secs := dt.Seconds()
	if secs <= 0 {
		return
	}
	for _, l := range e.active {
		pkt := l.PktBytes()
		if !l.measured {
			l.lastPkt, l.measured = pkt, true
			continue
		}
		inst := float64(pkt-l.lastPkt) * 8 / secs
		l.lastPkt = pkt
		l.pktBps += pktLoadGain * (inst - l.pktBps)
	}
}

// promote returns every flow crossing an incast-regime link to packet
// fidelity. The effective length (real packets plus the fluid share
// already folded in) crossing PromotePkts is DIBS's signal that per-packet
// physics — detours, drops, retransmissions — are about to matter.
func (e *Engine) promote() {
	hot := false
	for _, l := range e.active {
		if l.nflows > 0 && l.Hot() {
			hot = true
			break
		}
	}
	if !hot {
		return
	}
	// Collect first (ID order), then remove and notify: OnPromote
	// restarts packet transmission, which must not observe a half-walked
	// flow list.
	victims := e.promoteScratch[:0]
	for _, f := range e.flows {
		for _, l := range f.Path {
			if l.Hot() {
				victims = append(victims, f)
				break
			}
		}
	}
	for _, f := range victims {
		e.remove(f)
	}
	for i, f := range victims {
		e.Promotions++
		victims[i] = nil
		if f.OnPromote != nil {
			f.OnPromote(f.Remaining)
		}
	}
	e.promoteScratch = victims[:0]
}

// rebuildActive refreshes the set of links carrying fluid flows, clearing
// the folds of links that dropped out.
func (e *Engine) rebuildActive() {
	if !e.dirty {
		return
	}
	e.dirty = false
	e.active = e.active[:0]
	for _, l := range e.links {
		if l.nflows > 0 {
			e.active = append(e.active, l)
			continue
		}
		l.pktBps = 0
		l.measured = false
		if l.folded {
			l.folded = false
			l.fluidBps = 0
			l.Share.SetPkts(0)
			if l.SetFold != nil {
				l.SetFold(0)
			}
		}
	}
}

// solve computes the max-min fair-share allocation (progressive filling)
// of every flow over the residual capacity of its path. Fluid flows are
// greedy — a demoted flow is by construction in its bandwidth-limited
// steady state, so its rate is whatever fair share the topology yields,
// exactly as a long DCTCP flow's would be.
func (e *Engine) solve() {
	for _, l := range e.active {
		avail := float64(l.CapBps) - l.pktBps
		if floor := minResidualFrac * float64(l.CapBps); avail < floor {
			avail = floor
		}
		l.avail = avail
		l.availCap = avail
		l.unfrozen = l.nflows
		l.fluidBps = 0
		l.bottleneck = false
	}
	remaining := 0
	for _, f := range e.flows {
		f.frozen = false
		f.rateBps = 0
		remaining++
	}
	for remaining > 0 {
		// The tightest per-flow share over all contended links.
		min := math.MaxFloat64
		for _, l := range e.active {
			if l.unfrozen > 0 && l.share() < min {
				min = l.share()
			}
		}
		// Freeze every unfrozen flow crossing a bottleneck (a link whose
		// share is within tolerance of the minimum) at that share. At
		// least the minimum link's flows freeze, so each round makes
		// progress.
		progressed := false
		for _, f := range e.flows {
			if f.frozen {
				continue
			}
			// The flow freezes at the first path link whose share is
			// within tolerance of the minimum. That link is where the
			// flow's standing queue physically sits: downstream links see
			// only the already-limited rate and keep (near-)empty queues,
			// so the fold must not charge standing occupancy there. The
			// choice is sticky: once a flow has a bottleneck, it keeps it
			// while that link's share stays within stickFrac of the
			// minimum. Without hysteresis, packet-load measurement noise
			// flaps the argmin between a path's near-equal links tick to
			// tick, smearing the standing charge over links whose real
			// queues would be empty (a real flow's queue stays planted at
			// one contention point).
			var at *Link
			for _, l := range f.Path {
				if l.unfrozen > 0 && l.share() <= min*(1+rateEps) {
					at = l
					break
				}
			}
			if at == nil {
				continue
			}
			if b := f.bneck; b != nil && b != at && b.unfrozen > 0 && b.share() <= min*(1+stickFrac) {
				for _, l := range f.Path {
					if l == b {
						at = b
						break
					}
				}
			}
			f.bneck = at
			at.bottleneck = true
			f.frozen = true
			f.rateBps = min
			remaining--
			progressed = true
			for _, l := range f.Path {
				l.avail -= min
				if l.avail < 0 {
					l.avail = 0
				}
				l.unfrozen--
				l.fluidBps += min
			}
		}
		if !progressed {
			break // float pathology guard; unreachable for sane inputs
		}
	}
}

// fold pushes each active link's allocation back into the packet world:
// the queue's fluid occupancy share and the transmitter's standing-queue
// delivery delay. Standing charges apply only where a fluid flow is both
// saturating the link and bottlenecked by it — a saturated link downstream
// of the bottleneck serves traffic at its arrival rate and keeps no queue.
func (e *Engine) fold() {
	for _, l := range e.active {
		saturated := l.bottleneck && l.fluidBps >= satFrac*l.availCap
		pkts := 0
		var standing eventq.Time
		if saturated {
			pkts = l.StandingPkts
			standing = l.StandingDelay
		}
		l.Share.SetPkts(pkts)
		if l.SetFold != nil {
			l.SetFold(standing)
		}
		l.folded = true
	}
}
