package transport

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dibs/internal/eventq"
	"dibs/internal/packet"
)

// Property: a flow completes correctly under ANY pattern of random data
// loss, marking, and reordering, for every transport variant — the
// transport never deadlocks or miscounts bytes.
func TestQuickTransferSurvivesChaos(t *testing.T) {
	variants := []Variant{DCTCP, NewReno, PFabric}
	f := func(seed int64, sizeRaw uint32, lossPct, markPct, delayPct uint8, variantRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int64(sizeRaw%200_000) + 1
		loss := int(lossPct % 40) // up to 40% loss
		mark := int(markPct % 90) // up to 90% marking
		delay := int(delayPct % 50)
		cfg := DefaultConfig(variants[int(variantRaw)%len(variants)])
		if rng.Intn(2) == 0 {
			cfg.DupAckThresh = 3
		}
		w := newWire(20 * eventq.Microsecond)
		s, r := w.connect(cfg, size)
		w.dropData = func(i int, p *packet.Packet) bool {
			// Never drop retransmissions of the same segment forever:
			// cap per-packet losses by making rexmits immune at random.
			return rng.Intn(100) < loss && !p.Rexmit
		}
		w.markData = func(i int, p *packet.Packet) bool { return rng.Intn(100) < mark }
		w.extraDelay = func(i int, p *packet.Packet) eventq.Time {
			if rng.Intn(100) < delay {
				return eventq.Time(rng.Intn(500)) * eventq.Microsecond
			}
			return 0
		}
		s.Start()
		// Bound the run: plenty of time for RTO recovery of every loss.
		w.sched.RunUntil(60 * eventq.Second)
		return s.Done() && r.Done() && r.RcvNxt() == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: cwnd always stays within [1, MaxCwnd] and sndUna never exceeds
// sndNxt, across random loss patterns.
func TestQuickSenderInvariants(t *testing.T) {
	f := func(seed int64, lossPct uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig(DCTCP)
		cfg.MaxCwnd = 64
		w := newWire(20 * eventq.Microsecond)
		s, _ := w.connect(cfg, 300_000)
		loss := int(lossPct % 30)
		w.dropData = func(i int, p *packet.Packet) bool {
			return rng.Intn(100) < loss && !p.Rexmit
		}
		ok := true
		check := func() {
			if s.cwnd < 1 || s.cwnd > cfg.MaxCwnd+1 {
				ok = false
			}
			if s.sndUna > s.sndNxt || s.sndUna > s.Total {
				ok = false
			}
			if s.alpha < 0 || s.alpha > 1 {
				ok = false
			}
		}
		var poll func()
		poll = func() {
			check()
			if !s.Done() {
				w.sched.After(100*eventq.Microsecond, poll)
			}
		}
		poll()
		s.Start()
		w.sched.RunUntil(30 * eventq.Second)
		check()
		return ok && s.Done()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the receiver acknowledges exactly monotonically and never
// beyond the bytes it has seen.
func TestQuickReceiverAckMonotone(t *testing.T) {
	f := func(seed int64, nSegs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nSegs%40) + 1
		cfg := DefaultConfig(DCTCP)
		sched := eventq.NewScheduler()
		var lastAck int64 = -1
		ok := true
		env := Env{Sched: sched, Emit: func(p *packet.Packet) {
			if p.Kind != packet.Ack {
				return
			}
			if p.Seq < lastAck {
				ok = false // cumulative ACK went backwards
			}
			lastAck = p.Seq
		}}
		const mss = 1460
		rcv := NewReceiver(env, cfg, 1, 9, int64(n)*mss)
		segs := rng.Perm(n)
		seen := int64(0)
		for _, sIdx := range segs {
			rcv.OnData(&packet.Packet{
				Kind: packet.Data, Flow: 1, Seq: int64(sIdx) * mss, PayloadBytes: mss,
			})
			seen += mss
			if lastAck > seen {
				ok = false // acked more than delivered
			}
		}
		return ok && rcv.Done() && rcv.RcvNxt() == int64(n)*mss
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
