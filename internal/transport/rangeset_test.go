package transport

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRangeSetBasic(t *testing.T) {
	var rs rangeSet
	rs.add(0, 10)
	if rs.contiguousFrom(0) != 10 {
		t.Fatalf("contiguous = %d", rs.contiguousFrom(0))
	}
	rs.add(20, 30)
	if rs.contiguousFrom(0) != 10 {
		t.Fatal("gap should stop contiguity")
	}
	rs.add(10, 20)
	if rs.contiguousFrom(0) != 30 {
		t.Fatalf("merged contiguous = %d", rs.contiguousFrom(0))
	}
	if rs.covered() != 30 {
		t.Fatalf("covered = %d", rs.covered())
	}
}

func TestRangeSetOverlaps(t *testing.T) {
	var rs rangeSet
	rs.add(5, 15)
	rs.add(10, 20) // overlap right
	rs.add(0, 7)   // overlap left
	if rs.covered() != 20 {
		t.Fatalf("covered = %d, want 20", rs.covered())
	}
	if rs.contiguousFrom(0) != 20 {
		t.Fatalf("contiguous = %d", rs.contiguousFrom(0))
	}
	rs.add(0, 20) // full duplicate
	if rs.covered() != 20 {
		t.Fatal("duplicate changed coverage")
	}
}

func TestRangeSetEmptyAndDegenerate(t *testing.T) {
	var rs rangeSet
	if rs.contiguousFrom(0) != 0 || rs.covered() != 0 {
		t.Fatal("empty set")
	}
	rs.add(5, 5) // degenerate
	rs.add(7, 3) // inverted
	if rs.covered() != 0 {
		t.Fatal("degenerate ranges should be ignored")
	}
}

func TestRangeSetContiguousFromMiddle(t *testing.T) {
	var rs rangeSet
	rs.add(0, 10)
	rs.add(15, 25)
	if rs.contiguousFrom(15) != 25 {
		t.Fatalf("from 15: %d", rs.contiguousFrom(15))
	}
	if rs.contiguousFrom(12) != 12 {
		t.Fatalf("from 12 (hole): %d", rs.contiguousFrom(12))
	}
	if rs.contiguousFrom(5) != 10 {
		t.Fatalf("from 5: %d", rs.contiguousFrom(5))
	}
}

// Property: inserting all MSS segments of a flow in any order yields full
// coverage and contiguity, regardless of duplicates.
func TestQuickRangeSetReassembly(t *testing.T) {
	f := func(seed int64, nSegs uint8, dups uint8) bool {
		n := int(nSegs%64) + 1
		rng := rand.New(rand.NewSource(seed))
		segs := rng.Perm(n)
		// Append some duplicates.
		for i := 0; i < int(dups%16); i++ {
			segs = append(segs, rng.Intn(n))
		}
		var rs rangeSet
		const mss = 1460
		for _, s := range segs {
			rs.add(int64(s)*mss, int64(s+1)*mss)
		}
		return rs.covered() == int64(n)*mss && rs.contiguousFrom(0) == int64(n)*mss
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: coverage is monotone non-decreasing and bounded by the span.
func TestQuickRangeSetMonotone(t *testing.T) {
	f := func(ops [][2]uint16) bool {
		var rs rangeSet
		prev := int64(0)
		for _, op := range ops {
			lo, hi := int64(op[0]), int64(op[1])
			if lo > hi {
				lo, hi = hi, lo
			}
			rs.add(lo, hi)
			c := rs.covered()
			if c < prev || c > 1<<17 {
				return false
			}
			prev = c
		}
		// Invariant: ranges sorted, non-overlapping.
		for i := 1; i < len(rs.ranges); i++ {
			if rs.ranges[i-1].hi >= rs.ranges[i].lo {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
