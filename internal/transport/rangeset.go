package transport

// rangeSet tracks received byte ranges [lo, hi) of a flow, merging overlaps
// so out-of-order and duplicate segments (both common under DIBS detouring
// and go-back-N retransmission) are handled correctly.
type rangeSet struct {
	// ranges is sorted by lo and kept non-overlapping, non-adjacent.
	ranges []byteRange
}

type byteRange struct{ lo, hi int64 }

// add records receipt of [lo, hi).
func (rs *rangeSet) add(lo, hi int64) {
	if lo >= hi {
		return
	}
	// Find insertion window: all ranges overlapping or adjacent to [lo,hi).
	i := 0
	for i < len(rs.ranges) && rs.ranges[i].hi < lo {
		i++
	}
	j := i
	for j < len(rs.ranges) && rs.ranges[j].lo <= hi {
		if rs.ranges[j].lo < lo {
			lo = rs.ranges[j].lo
		}
		if rs.ranges[j].hi > hi {
			hi = rs.ranges[j].hi
		}
		j++
	}
	// Splice [i,j) down to the single merged range in place: the steady
	// state — an in-order segment extending an existing range (i < j) —
	// must not allocate, and the pure insert (i == j) allocates only when
	// the slice needs to grow.
	if i == j {
		rs.ranges = append(rs.ranges, byteRange{})
		copy(rs.ranges[i+1:], rs.ranges[i:])
		rs.ranges[i] = byteRange{lo, hi}
		return
	}
	rs.ranges[i] = byteRange{lo, hi}
	rs.ranges = append(rs.ranges[:i+1], rs.ranges[j:]...)
}

// contiguousFrom returns the highest offset h such that [from, h) is fully
// received; returns from when the first byte is missing.
func (rs *rangeSet) contiguousFrom(from int64) int64 {
	for _, r := range rs.ranges {
		if r.lo > from {
			return from
		}
		if r.hi > from {
			return r.hi
		}
	}
	return from
}

// covered returns the total number of bytes recorded.
func (rs *rangeSet) covered() int64 {
	var n int64
	for _, r := range rs.ranges {
		n += r.hi - r.lo
	}
	return n
}
