package transport

import (
	"testing"

	"dibs/internal/eventq"
	"dibs/internal/packet"
)

// wire connects a Sender and Receiver through a fixed-delay pipe with
// programmable data-packet loss and ECN marking.
type wire struct {
	sched    *eventq.Scheduler
	delay    eventq.Time
	sender   *Sender
	receiver *Receiver
	// dropData, when non-nil, is consulted per data packet (by index,
	// counting from 0); true drops the packet silently.
	dropData func(i int, p *packet.Packet) bool
	// markData, when non-nil, sets CE on matching data packets.
	markData func(i int, p *packet.Packet) bool
	// extraDelay, when non-nil, adds per-packet delay (reordering).
	extraDelay func(i int, p *packet.Packet) eventq.Time
	dataSent   int
}

func newWire(delay eventq.Time) *wire {
	return &wire{sched: eventq.NewScheduler(), delay: delay}
}

func (w *wire) senderEnv() Env {
	return Env{Sched: w.sched, Emit: func(p *packet.Packet) {
		i := w.dataSent
		w.dataSent++
		if w.dropData != nil && w.dropData(i, p) {
			return
		}
		if w.markData != nil && w.markData(i, p) {
			p.CE = true
		}
		d := w.delay
		if w.extraDelay != nil {
			d += w.extraDelay(i, p)
		}
		w.sched.After(d, func() { w.receiver.OnData(p) })
	}}
}

func (w *wire) receiverEnv() Env {
	return Env{Sched: w.sched, Emit: func(p *packet.Packet) {
		w.sched.After(w.delay, func() { w.sender.OnAck(p) })
	}}
}

// connect builds a sender/receiver pair over the wire for a flow of total
// bytes and returns them; run with w.sched.Run().
func (w *wire) connect(cfg Config, total int64) (*Sender, *Receiver) {
	w.sender = NewSender(w.senderEnv(), cfg, 1, 10, 20, total)
	w.receiver = NewReceiver(w.receiverEnv(), cfg, 1, 20, total)
	return w.sender, w.receiver
}

func TestBasicTransferCompletes(t *testing.T) {
	w := newWire(50 * eventq.Microsecond)
	cfg := DefaultConfig(DCTCP)
	s, r := w.connect(cfg, 100_000)
	var senderDone, receiverDone bool
	s.OnComplete = func() { senderDone = true }
	r.OnComplete = func() { receiverDone = true }
	s.Start()
	w.sched.Run()
	if !senderDone || !receiverDone {
		t.Fatalf("done: sender=%v receiver=%v", senderDone, receiverDone)
	}
	if r.RcvNxt() != 100_000 {
		t.Fatalf("received %d bytes", r.RcvNxt())
	}
	if s.Timeouts != 0 || s.Retransmits != 0 {
		t.Fatalf("clean path had %d timeouts, %d retransmits", s.Timeouts, s.Retransmits)
	}
	// 100KB needs ceil(100000/1460)=69 segments.
	if r.PacketsReceived != 69 {
		t.Fatalf("received %d packets, want 69", r.PacketsReceived)
	}
}

func TestSinglePacketFlow(t *testing.T) {
	w := newWire(10 * eventq.Microsecond)
	s, r := w.connect(DefaultConfig(DCTCP), 1)
	s.Start()
	w.sched.Run()
	if !s.Done() || !r.Done() {
		t.Fatal("1-byte flow did not complete")
	}
	// Completion after one round trip.
	if got := w.sched.Now(); got < 20*eventq.Microsecond {
		t.Fatalf("completed at %v, impossibly fast", got)
	}
}

func TestFastRetransmitRecoversLoss(t *testing.T) {
	w := newWire(20 * eventq.Microsecond)
	cfg := DefaultConfig(NewReno)
	cfg.DupAckThresh = 3
	s, r := w.connect(cfg, 60_000) // 42 segments
	w.dropData = func(i int, p *packet.Packet) bool { return i == 4 && !p.Rexmit }
	s.Start()
	w.sched.Run()
	if !r.Done() {
		t.Fatal("flow did not complete")
	}
	if s.FastRecovers != 1 {
		t.Fatalf("fast recoveries = %d, want 1", s.FastRecovers)
	}
	if s.Timeouts != 0 {
		t.Fatalf("timeouts = %d; fast retransmit should have recovered", s.Timeouts)
	}
	// Completion well before the 10ms RTO proves loss recovery was fast.
	if w.sched.Now() > 9*eventq.Millisecond {
		t.Fatalf("took %v, too slow for fast retransmit", w.sched.Now())
	}
}

func TestRTORecoversLossWhenFastRetransmitDisabled(t *testing.T) {
	w := newWire(20 * eventq.Microsecond)
	cfg := DefaultConfig(DCTCP) // DupAckThresh 0: the DIBS setting
	s, r := w.connect(cfg, 60_000)
	w.dropData = func(i int, p *packet.Packet) bool { return i == 4 && !p.Rexmit }
	s.Start()
	w.sched.Run()
	if !r.Done() {
		t.Fatal("flow did not complete")
	}
	if s.Timeouts < 1 {
		t.Fatal("expected an RTO with fast retransmit disabled")
	}
	// Completion is gated by the 10ms minRTO.
	if w.sched.Now() < 10*eventq.Millisecond {
		t.Fatalf("completed at %v, before the RTO could fire", w.sched.Now())
	}
}

func TestReorderingToleratedWithoutFastRetransmit(t *testing.T) {
	w := newWire(20 * eventq.Microsecond)
	cfg := DefaultConfig(DCTCP)
	s, r := w.connect(cfg, 30_000)
	// Delay every 3rd packet enough to arrive after its successors —
	// exactly what DIBS detouring does.
	w.extraDelay = func(i int, p *packet.Packet) eventq.Time {
		if i%3 == 0 {
			return 200 * eventq.Microsecond
		}
		return 0
	}
	s.Start()
	w.sched.Run()
	if !r.Done() {
		t.Fatal("flow did not complete under reordering")
	}
	if s.Retransmits != 0 || s.Timeouts != 0 {
		t.Fatalf("reordering caused %d retransmits, %d timeouts", s.Retransmits, s.Timeouts)
	}
}

func TestReorderingTriggersSpuriousFastRetransmitWhenEnabled(t *testing.T) {
	// Sanity check of the paper's motivation for disabling fast
	// retransmit: heavy reordering + dupack threshold 3 => spurious
	// retransmissions.
	w := newWire(20 * eventq.Microsecond)
	cfg := DefaultConfig(NewReno)
	cfg.DupAckThresh = 3
	s, r := w.connect(cfg, 60_000)
	w.extraDelay = func(i int, p *packet.Packet) eventq.Time {
		if !p.Rexmit && i%5 == 0 {
			return 300 * eventq.Microsecond
		}
		return 0
	}
	s.Start()
	w.sched.Run()
	if !r.Done() {
		t.Fatal("flow did not complete")
	}
	if s.Retransmits == 0 {
		t.Fatal("expected spurious retransmissions under reordering with dupack=3")
	}
	if r.DupBytes == 0 {
		t.Fatal("receiver should have seen duplicate bytes")
	}
}

func TestDCTCPAlphaRisesUnderPersistentMarking(t *testing.T) {
	w := newWire(20 * eventq.Microsecond)
	cfg := DefaultConfig(DCTCP)
	s, r := w.connect(cfg, 500_000)
	w.markData = func(i int, p *packet.Packet) bool { return true }
	s.Start()
	w.sched.Run()
	if !r.Done() {
		t.Fatal("flow did not complete")
	}
	if s.Alpha() < 0.9 {
		t.Fatalf("alpha = %v under 100%% marking, want near 1", s.Alpha())
	}
	// With every window marked, cwnd should stay pinned near 1.
	if s.Cwnd() > 3 {
		t.Fatalf("cwnd = %v under persistent marking", s.Cwnd())
	}
}

func TestDCTCPAlphaDecaysWithoutMarking(t *testing.T) {
	w := newWire(20 * eventq.Microsecond)
	cfg := DefaultConfig(DCTCP)
	s, r := w.connect(cfg, 500_000)
	s.Start()
	w.sched.Run()
	if !r.Done() {
		t.Fatal("flow did not complete")
	}
	// Initial alpha is 1; with zero marks it decays by (1-g) per window.
	// A 500KB transfer spans ~7 windows: expect roughly 0.9375^7 ~ 0.64.
	if s.Alpha() >= 0.75 {
		t.Fatalf("alpha = %v with no marking, want decayed below 0.75", s.Alpha())
	}
	// Unmarked transfer should grow cwnd past its initial value.
	if s.Cwnd() <= cfg.InitCwnd {
		t.Fatalf("cwnd = %v never grew", s.Cwnd())
	}
}

func TestDCTCPSingleMarkMildReduction(t *testing.T) {
	// With alpha decayed to ~0, a single fresh mark should barely reduce
	// cwnd — the proportionality that distinguishes DCTCP from Reno.
	w := newWire(20 * eventq.Microsecond)
	cfg := DefaultConfig(DCTCP)
	s, r := w.connect(cfg, 2_000_000)
	marked := false
	w.markData = func(i int, p *packet.Packet) bool {
		// One mark late in the transfer, after alpha has decayed.
		if i == 600 && !marked {
			marked = true
			return true
		}
		return false
	}
	var cwndBefore float64
	prev := 0.0
	w.sched.After(0, func() {}) // ensure scheduler initialized
	s.Start()
	// Sample cwnd just before the mark by polling each ms.
	var poll func()
	poll = func() {
		if !s.Done() {
			prev = s.Cwnd()
			w.sched.After(100*eventq.Microsecond, poll)
		}
	}
	poll()
	w.sched.Run()
	cwndBefore = prev
	_ = cwndBefore
	if !r.Done() {
		t.Fatal("flow did not complete")
	}
	if !marked {
		t.Skip("flow finished before mark index; adjust sizes")
	}
	if s.Timeouts != 0 {
		t.Fatal("no timeouts expected")
	}
}

func TestRTTEstimation(t *testing.T) {
	w := newWire(100 * eventq.Microsecond)
	cfg := DefaultConfig(DCTCP)
	s, _ := w.connect(cfg, 200_000)
	s.Start()
	w.sched.Run()
	// RTT is 2x100us plus negligible processing.
	if s.SRTT() < 180*eventq.Microsecond || s.SRTT() > 250*eventq.Microsecond {
		t.Fatalf("srtt = %v, want ~200us", s.SRTT())
	}
	if s.RTO() != cfg.MinRTO {
		t.Fatalf("rto = %v, want clamped to MinRTO %v", s.RTO(), cfg.MinRTO)
	}
}

func TestRTOBackoff(t *testing.T) {
	w := newWire(20 * eventq.Microsecond)
	cfg := DefaultConfig(DCTCP)
	s, r := w.connect(cfg, 2000)
	// Drop the first segment twice (original + first rexmit).
	drops := 0
	w.dropData = func(i int, p *packet.Packet) bool {
		if p.Seq == 0 && drops < 2 {
			drops++
			return true
		}
		return false
	}
	s.Start()
	w.sched.Run()
	if !r.Done() {
		t.Fatal("flow did not complete")
	}
	if s.Timeouts != 2 {
		t.Fatalf("timeouts = %d, want 2", s.Timeouts)
	}
	// First RTO at 10ms, second at 20ms: completion after 30ms.
	if w.sched.Now() < 30*eventq.Millisecond {
		t.Fatalf("completed at %v; backoff not applied", w.sched.Now())
	}
}

func TestPFabricPriorityStamping(t *testing.T) {
	w := newWire(20 * eventq.Microsecond)
	cfg := DefaultConfig(PFabric)
	var prios []int64
	total := int64(50_000)
	w.sender = NewSender(Env{Sched: w.sched, Emit: func(p *packet.Packet) {
		prios = append(prios, p.Priority)
		w.sched.After(w.delay, func() { w.receiver.OnData(p) })
	}}, cfg, 1, 10, 20, total)
	w.receiver = NewReceiver(w.receiverEnv(), cfg, 1, 20, total)
	w.sender.Start()
	w.sched.Run()
	if !w.receiver.Done() {
		t.Fatal("pfabric flow did not complete")
	}
	if prios[0] != total {
		t.Fatalf("first priority = %d, want %d (full remaining size)", prios[0], total)
	}
	last := prios[len(prios)-1]
	if last >= prios[0] {
		t.Fatalf("priority did not decrease: first %d last %d", prios[0], last)
	}
}

func TestPFabricFixedRTO(t *testing.T) {
	w := newWire(20 * eventq.Microsecond)
	cfg := DefaultConfig(PFabric)
	s, r := w.connect(cfg, 100_000)
	s.Start()
	w.sched.Run()
	if !r.Done() {
		t.Fatal("flow did not complete")
	}
	if s.RTO() != 350*eventq.Microsecond {
		t.Fatalf("pfabric rto = %v, want fixed 350us", s.RTO())
	}
}

func TestPFabricLossRecoveryIsFast(t *testing.T) {
	w := newWire(20 * eventq.Microsecond)
	cfg := DefaultConfig(PFabric)
	s, r := w.connect(cfg, 30_000)
	w.dropData = func(i int, p *packet.Packet) bool { return i == 2 && !p.Rexmit }
	s.Start()
	w.sched.Run()
	if !r.Done() {
		t.Fatal("flow did not complete")
	}
	if s.Timeouts < 1 {
		t.Fatal("expected RTO recovery")
	}
	// The 350us RTO means sub-millisecond recovery.
	if w.sched.Now() > 3*eventq.Millisecond {
		t.Fatalf("pfabric recovery took %v", w.sched.Now())
	}
}

func TestGoBackNDuplicatesAreHandled(t *testing.T) {
	w := newWire(20 * eventq.Microsecond)
	cfg := DefaultConfig(DCTCP)
	s, r := w.connect(cfg, 30_000)
	// Delay packet 3 beyond the RTO: the retransmission and the original
	// both arrive, producing duplicate bytes at the receiver — the
	// "spurious retransmission" case of paper §4.
	w.extraDelay = func(i int, p *packet.Packet) eventq.Time {
		if i == 3 && !p.Rexmit {
			return 15 * eventq.Millisecond
		}
		return 0
	}
	s.Start()
	w.sched.Run()
	if !r.Done() {
		t.Fatal("flow did not complete")
	}
	if r.DupBytes == 0 {
		t.Fatal("go-back-N should have produced duplicates")
	}
	if r.RcvNxt() != 30_000 {
		t.Fatalf("rcvNxt = %d", r.RcvNxt())
	}
}

func TestCompletionFiresExactlyOnce(t *testing.T) {
	w := newWire(20 * eventq.Microsecond)
	s, r := w.connect(DefaultConfig(DCTCP), 10_000)
	n := 0
	r.OnComplete = func() { n++ }
	s.Start()
	w.sched.Run()
	if n != 1 {
		t.Fatalf("OnComplete fired %d times", n)
	}
	// Feeding a stray duplicate afterwards must not re-fire.
	r.OnData(&packet.Packet{Kind: packet.Data, Flow: 1, Seq: 0, PayloadBytes: 100, SentAt: 0})
	if n != 1 {
		t.Fatal("OnComplete re-fired on duplicate data")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{MSS: 0, InitCwnd: 10, MinRTO: 1, TTL: 64},
		{MSS: 1460, InitCwnd: 0, MinRTO: 1, TTL: 64},
		{MSS: 1460, InitCwnd: 10, MinRTO: 0, TTL: 64},
		{MSS: 1460, InitCwnd: 10, MinRTO: 1, TTL: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should panic", i)
				}
			}()
			NewSender(Env{}, cfg, 1, 1, 2, 100)
		}()
	}
	// Zero-size flow panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero-size flow should panic")
			}
		}()
		NewSender(Env{}, DefaultConfig(DCTCP), 1, 1, 2, 0)
	}()
}

func TestVariantString(t *testing.T) {
	if DCTCP.String() != "dctcp" || NewReno.String() != "newreno" || PFabric.String() != "pfabric" {
		t.Fatal("variant strings")
	}
}

func TestStartIsIdempotent(t *testing.T) {
	w := newWire(20 * eventq.Microsecond)
	s, r := w.connect(DefaultConfig(DCTCP), 10_000)
	s.Start()
	s.Start()
	w.sched.Run()
	if !r.Done() {
		t.Fatal("did not complete")
	}
	if r.DupBytes != 0 {
		t.Fatal("double Start sent duplicate data")
	}
}
