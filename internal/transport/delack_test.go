package transport

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dibs/internal/eventq"
	"dibs/internal/packet"
)

func delAckConfig() Config {
	cfg := DefaultConfig(DCTCP)
	cfg.DelayedAck = true
	return cfg
}

func TestDelayedAckHalvesAckCount(t *testing.T) {
	w := newWire(20 * eventq.Microsecond)
	s, r := w.connect(delAckConfig(), 100_000) // 69 segments
	s.Start()
	w.sched.Run()
	if !r.Done() || !s.Done() {
		t.Fatal("flow did not complete with delayed ACKs")
	}
	// 69 segments coalesced ~2:1 (window rollovers and the final flush
	// add a few extras).
	if r.AcksSent >= 55 {
		t.Fatalf("acks sent = %d for 69 segments; coalescing not working", r.AcksSent)
	}
	if r.AcksSent < 30 {
		t.Fatalf("acks sent = %d, suspiciously few", r.AcksSent)
	}
}

func TestDelayedAckFlushesOnTimeout(t *testing.T) {
	sched := eventq.NewScheduler()
	var acks []*packet.Packet
	cfg := delAckConfig()
	env := Env{Sched: sched, Emit: func(p *packet.Packet) { acks = append(acks, p) }}
	r := NewReceiver(env, cfg, 1, 9, 10*1460)
	// One lone segment: no second arrival, so the 500us timer must fire.
	r.OnData(&packet.Packet{Kind: packet.Data, Flow: 1, Seq: 0, PayloadBytes: 1460})
	if len(acks) != 0 {
		t.Fatal("ACK sent before coalescing window closed")
	}
	sched.RunUntil(eventq.Millisecond)
	if len(acks) != 1 {
		t.Fatalf("acks = %d after timeout, want 1", len(acks))
	}
	if acks[0].Seq != 1460 {
		t.Fatalf("ack seq = %d", acks[0].Seq)
	}
}

func TestDelayedAckFlushesOnCEChange(t *testing.T) {
	sched := eventq.NewScheduler()
	var acks []*packet.Packet
	cfg := delAckConfig()
	cfg.AckEvery = 100 // only CE changes and completion flush
	env := Env{Sched: sched, Emit: func(p *packet.Packet) { acks = append(acks, p) }}
	r := NewReceiver(env, cfg, 1, 9, 100*1460)
	mk := func(i int, ce bool) *packet.Packet {
		return &packet.Packet{Kind: packet.Data, Flow: 1, Seq: int64(i) * 1460, PayloadBytes: 1460, CE: ce}
	}
	// Three unmarked, then a marked segment: the CE transition must flush
	// an ACK echoing the *unmarked* state for the first three.
	r.OnData(mk(0, false))
	r.OnData(mk(1, false))
	if len(acks) != 1 { // AckEvery=100, but default flushes at 2? No: every=100
		// With AckEvery=100 nothing flushed yet; adjust expectation.
		_ = acks
	}
	acks = acks[:0]
	r.OnData(mk(2, false))
	r.OnData(mk(3, true)) // CE state change
	if len(acks) != 1 {
		t.Fatalf("CE change did not flush: %d acks", len(acks))
	}
	if acks[0].ECNEcho {
		t.Fatal("flush on CE change must echo the previous (unmarked) state")
	}
	if acks[0].Seq != 3*1460 {
		t.Fatalf("flush ack seq = %d, want %d", acks[0].Seq, 3*1460)
	}
	// And the reverse transition echoes the marked state.
	acks = acks[:0]
	r.OnData(mk(4, false))
	if len(acks) != 1 || !acks[0].ECNEcho {
		t.Fatalf("reverse CE change: %+v", acks)
	}
}

func TestDelayedAckFlushesOnCompletion(t *testing.T) {
	sched := eventq.NewScheduler()
	var acks []*packet.Packet
	env := Env{Sched: sched, Emit: func(p *packet.Packet) { acks = append(acks, p) }}
	r := NewReceiver(env, delAckConfig(), 1, 9, 3*1460)
	for i := 0; i < 3; i++ {
		r.OnData(&packet.Packet{Kind: packet.Data, Flow: 1, Seq: int64(i) * 1460, PayloadBytes: 1460})
	}
	if !r.Done() {
		t.Fatal("not done")
	}
	// Final ACK must go out immediately, not wait for the timer.
	if len(acks) == 0 || acks[len(acks)-1].Seq != 3*1460 {
		t.Fatalf("completion not acked promptly: %+v", acks)
	}
}

func TestDelayedAckDCTCPMarkingAccuracy(t *testing.T) {
	// With every data packet marked, alpha must still converge to ~1
	// through the delayed-ACK echo path.
	w := newWire(20 * eventq.Microsecond)
	s, r := w.connect(delAckConfig(), 500_000)
	w.markData = func(i int, p *packet.Packet) bool { return true }
	s.Start()
	w.sched.Run()
	if !r.Done() {
		t.Fatal("flow did not complete")
	}
	if s.Alpha() < 0.9 {
		t.Fatalf("alpha = %v under full marking with delayed acks", s.Alpha())
	}
}

// Property: delayed-ACK flows complete under random loss/marking patterns
// exactly like per-segment-ACK flows.
func TestQuickDelayedAckChaos(t *testing.T) {
	f := func(seed int64, sizeRaw uint32, lossPct, markPct uint8) bool {
		size := int64(sizeRaw%150_000) + 1
		cfg := delAckConfig()
		w := newWire(20 * eventq.Microsecond)
		s, r := w.connect(cfg, size)
		loss := int(lossPct % 30)
		mark := int(markPct % 80)
		rng := newSeededRand(seed)
		w.dropData = func(i int, p *packet.Packet) bool {
			return rng.Intn(100) < loss && !p.Rexmit
		}
		w.markData = func(i int, p *packet.Packet) bool { return rng.Intn(100) < mark }
		s.Start()
		w.sched.RunUntil(60 * eventq.Second)
		return s.Done() && r.Done() && r.RcvNxt() == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// newSeededRand is a tiny helper so property tests share deterministic
// randomness.
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
