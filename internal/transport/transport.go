// Package transport implements the end-host protocols of the DIBS
// evaluation: DCTCP (the paper's companion congestion control), classic
// TCP-NewReno-style loss recovery, and the minimal pFabric host transport
// of §5.8.
//
// A flow is a one-directional transfer of Total bytes from Src to Dst. The
// Sender segments the byte stream into MSS-sized packets under a congestion
// window; the Receiver reassembles (tolerating the reordering DIBS
// introduces) and returns one cumulative ACK per data segment, echoing the
// segment's ECN CE bit. Connections are pre-established, as in the paper's
// testbed (§5.2 modified iperf to pre-establish TCP connections), so there
// is no handshake.
//
// By default the receiver acks every segment; Config.DelayedAck enables
// the DCTCP paper's delayed-ACK ECN-echo state machine instead. Remaining
// simplifications relative to a kernel stack, documented in DESIGN.md:
// go-back-N on timeout and RTT sampling via sender timestamps echoed by
// the receiver.
package transport

import (
	"fmt"

	"dibs/internal/eventq"
	"dibs/internal/packet"
)

// Env provides a transport endpoint's access to the simulated world.
type Env struct {
	// Sched is the simulation scheduler (clock + timers).
	Sched *eventq.Scheduler
	// Emit hands a packet to the host NIC for transmission.
	//dibslint:owns the NIC (and the network beyond it) assumes custody of the packet
	Emit func(p *packet.Packet)
	// Pool supplies the packet nodes for emitted segments and ACKs; the
	// network gives every endpoint the per-run pool. When nil (unit tests
	// that build an Env by hand), the constructor creates a private pool so
	// emission behaves identically.
	Pool *packet.Pool
}

// Variant selects the congestion-control behavior.
type Variant uint8

const (
	// DCTCP reacts to ECN marks with the proportional alpha-based window
	// decrease (Alizadeh et al.); the paper couples DIBS with DCTCP.
	DCTCP Variant = iota
	// NewReno is loss-based TCP: no ECN reaction, standard fast
	// retransmit and timeout behavior.
	NewReno
	// PFabric is the minimal transport of pFabric (§5.8): remaining-size
	// priority stamped on every packet, a fixed small RTO, no fast
	// retransmit, and slow-start-only window dynamics.
	PFabric
)

func (v Variant) String() string {
	switch v {
	case DCTCP:
		return "dctcp"
	case NewReno:
		return "newreno"
	case PFabric:
		return "pfabric"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// Config carries the tunables from the paper's Table 1.
type Config struct {
	Variant Variant
	// MSS is the maximum payload per segment (1460 for a 1500 MTU).
	MSS int
	// InitCwnd is the initial congestion window in packets (paper: 10).
	InitCwnd float64
	// MaxCwnd caps the window in packets (0 = effectively uncapped).
	MaxCwnd float64
	// MinRTO clamps the retransmission timeout (paper: 10 ms).
	MinRTO eventq.Time
	// MaxRTO caps exponential backoff.
	MaxRTO eventq.Time
	// DupAckThresh triggers fast retransmit; 0 disables it entirely, the
	// paper's setting when DIBS is on (§4: reordering tolerance).
	DupAckThresh int
	// DCTCPGain is the alpha EWMA gain g (paper default 1/16).
	DCTCPGain float64
	// TTL is stamped on every emitted packet (§5.5.3 varies it).
	TTL int
	// FixedRTO, when nonzero, bypasses RTT estimation entirely (pFabric
	// uses a constant 350 us at 1 Gbps).
	FixedRTO eventq.Time

	// DelayedAck enables the DCTCP paper's delayed-ACK ECN-echo state
	// machine: the receiver coalesces up to AckEvery segments per ACK
	// (flushing early on an AckTimeout, on flow completion, or whenever
	// the CE state of arriving segments changes, so the echo stream
	// remains an exact run-length encoding of the mark stream).
	DelayedAck bool
	// AckEvery is the delayed-ACK coalescing factor (default 2).
	AckEvery int
	// AckTimeout bounds how long an ACK may be withheld (default 500us).
	AckTimeout eventq.Time
}

// DefaultConfig returns the paper's Table 1 settings for the given variant,
// with fast retransmit disabled (the DIBS configuration). Callers enable
// DupAckThresh explicitly for non-DIBS runs.
func DefaultConfig(v Variant) Config {
	c := Config{
		Variant:      v,
		MSS:          packet.DefaultMSS,
		InitCwnd:     10,
		MaxCwnd:      10000,
		MinRTO:       10 * eventq.Millisecond,
		MaxRTO:       2 * eventq.Second,
		DupAckThresh: 0,
		DCTCPGain:    1.0 / 16,
		TTL:          packet.DefaultTTL,
	}
	if v == PFabric {
		c.FixedRTO = 350 * eventq.Microsecond
		c.MinRTO = 350 * eventq.Microsecond
	}
	return c
}

func (c *Config) validate() {
	if c.MSS <= 0 {
		panic("transport: MSS must be positive")
	}
	if c.InitCwnd < 1 {
		panic("transport: InitCwnd must be >= 1")
	}
	if c.MinRTO <= 0 {
		panic("transport: MinRTO must be positive")
	}
	if c.TTL <= 0 {
		panic("transport: TTL must be positive")
	}
}

// Sender is the sending endpoint of a flow.
type Sender struct {
	env  Env
	cfg  Config
	Flow packet.FlowID
	Src  packet.NodeID
	Dst  packet.NodeID
	// Total is the number of payload bytes to transfer.
	Total int64

	sndUna  int64 // lowest unacknowledged byte
	sndNxt  int64 // next byte to send
	maxSent int64 // highest byte ever sent (detects retransmissions)

	cwnd       float64 // congestion window, in packets
	ssthresh   float64
	dupacks    int
	inRecovery bool
	recover    int64 // NewReno recovery point

	srtt, rttvar eventq.Time
	hasRTT       bool
	rto          eventq.Time
	rtoTimer     eventq.Timer
	// rtoFn is the onRTO method value, bound once so re-arming the timer
	// does not allocate per call.
	rtoFn func()

	// DCTCP state.
	alpha       float64
	ackedBytes  int64
	markedBytes int64
	windowEnd   int64
	cwndReduced bool // at most one reduction per window

	// Fluid hand-off state (hybrid mode, DESIGN §9). A demotion request
	// quiesces the sender first: emission stops at sndStop, the in-flight
	// window drains through normal ack/RTO processing, and only when
	// sndUna reaches sndStop — a clean byte boundary with nothing on the
	// wire — does custody pass to the rate model. While fluid, emission
	// and ack processing are suppressed; FluidAcked advances the
	// cumulative-ack state instead.
	fluid     bool
	quiesce   bool
	sndStop   int64
	onDrained func(remaining int64)

	// Stability tracking for demotion: at each window rollover the
	// current cwnd and the goodput since the previous rollover are
	// compared to their previous values. Staying within the stability
	// band on either axis counts a stable window; loss recovery (RTO or
	// fast retransmit) resets the count. Two regimes make the two axes
	// necessary: at a marked bottleneck DCTCP's alpha-proportional cwnd
	// wiggle stays inside the band (cwnd-stable), while a flow serialized
	// by an unmarked NIC grows cwnd every RTT against an inflating queue
	// even though its delivery rate is pinned at line rate (rate-stable).
	stableWins int
	stabEnd    int64
	stabCwnd   float64
	stabRate   float64     // goodput over the previous rollover interval
	stabAck    int64       // cumulative ack at the previous rollover
	stabTime   eventq.Time // clock at the previous rollover
	stabLoss   bool        // loss recovery happened in the current window

	started bool
	done    bool
	// OnComplete fires once, when every byte has been cumulatively acked.
	OnComplete func()

	// Stats.
	Retransmits  int
	Timeouts     int
	FastRecovers int
	PacketsSent  int
	StartedAt    eventq.Time
}

// NewSender creates a sender for a flow of total bytes.
func NewSender(env Env, cfg Config, flow packet.FlowID, src, dst packet.NodeID, total int64) *Sender {
	cfg.validate()
	if total <= 0 {
		panic("transport: flow size must be positive")
	}
	if env.Pool == nil {
		env.Pool = packet.NewPool()
	}
	s := &Sender{
		env:      env,
		cfg:      cfg,
		Flow:     flow,
		Src:      src,
		Dst:      dst,
		Total:    total,
		cwnd:     cfg.InitCwnd,
		ssthresh: 1 << 30,
		rto:      cfg.initialRTO(),
		// DCTCP convention (and Linux default): start alpha at 1 so the
		// first congestion signal gets a conservative halving.
		alpha: 1,
	}
	s.rtoFn = s.onRTO
	return s
}

func (c *Config) initialRTO() eventq.Time {
	if c.FixedRTO > 0 {
		return c.FixedRTO
	}
	return c.MinRTO
}

// Start begins transmission.
func (s *Sender) Start() {
	if s.started {
		return
	}
	s.started = true
	s.StartedAt = s.env.Sched.Now()
	s.windowEnd = 0
	s.trySend()
}

// Done reports whether the transfer completed.
func (s *Sender) Done() bool { return s.done }

// Cwnd returns the current congestion window in packets (for tests and
// metrics).
func (s *Sender) Cwnd() float64 { return s.cwnd }

// Alpha returns the DCTCP congestion estimate.
func (s *Sender) Alpha() float64 { return s.alpha }

// RTO returns the current retransmission timeout.
func (s *Sender) RTO() eventq.Time { return s.rto }

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (s *Sender) SRTT() eventq.Time { return s.srtt }

func (s *Sender) inflight() int64 { return s.sndNxt - s.sndUna }

func (s *Sender) cwndBytes() int64 {
	return int64(s.cwnd * float64(s.cfg.MSS))
}

// trySend emits segments while the window allows. A quiescing sender
// stops at the hand-off boundary; a fluid sender emits nothing.
func (s *Sender) trySend() {
	if s.done || s.fluid {
		return
	}
	limit := s.Total
	if s.quiesce {
		limit = s.sndStop
	}
	for s.sndNxt < limit && s.inflight() < s.cwndBytes() {
		payload := limit - s.sndNxt
		if payload > int64(s.cfg.MSS) {
			payload = int64(s.cfg.MSS)
		}
		s.emitSegment(s.sndNxt, int(payload))
		s.sndNxt += payload
		if s.sndNxt > s.maxSent {
			s.maxSent = s.sndNxt
		}
	}
	if s.inflight() > 0 {
		s.armRTO(false)
	}
}

func (s *Sender) emitSegment(seq int64, payload int) {
	p := s.env.Pool.Get()
	p.Kind = packet.Data
	p.Flow = s.Flow
	p.Src = s.Src
	p.Dst = s.Dst
	p.Seq = seq
	p.PayloadBytes = payload
	p.TTL = s.cfg.TTL
	p.SentAt = int64(s.env.Sched.Now())
	p.Rexmit = seq < s.maxSent
	if s.cfg.Variant == PFabric {
		// pFabric priority: remaining flow size; lower = more urgent.
		p.Priority = s.Total - s.sndUna
	}
	if p.Rexmit {
		s.Retransmits++
	}
	s.PacketsSent++
	s.env.Emit(p)
}

// armRTO schedules (or, when force is set, reschedules) the retransmission
// timer.
func (s *Sender) armRTO(force bool) {
	if s.rtoTimer.Pending() {
		if !force {
			return
		}
		s.rtoTimer.Cancel()
	}
	s.rtoTimer = s.env.Sched.After(s.rto, s.rtoFn)
}

func (s *Sender) cancelRTO() {
	s.rtoTimer.Cancel()
	s.rtoTimer = eventq.Timer{}
}

// onRTO handles a retransmission timeout: go-back-N from sndUna with an
// exponentially backed-off timer.
func (s *Sender) onRTO() {
	if s.done || s.fluid {
		return
	}
	s.Timeouts++
	s.stabLoss = true
	s.stableWins = 0
	s.ssthresh = maxf(s.cwnd/2, 2)
	s.cwnd = 1
	s.dupacks = 0
	s.inRecovery = false
	if s.cfg.FixedRTO == 0 {
		s.rto = minT(s.rto*2, s.cfg.MaxRTO)
	}
	s.sndNxt = s.sndUna
	s.trySend()
	s.armRTO(true)
}

// OnAck processes a cumulative acknowledgment.
func (s *Sender) OnAck(p *packet.Packet) {
	if s.done || s.fluid || p.Kind != packet.Ack {
		return
	}
	ack := p.Seq
	switch {
	case ack > s.sndUna:
		newly := ack - s.sndUna
		s.sndUna = ack
		if s.sndNxt < s.sndUna {
			s.sndNxt = s.sndUna
		}
		s.dupacks = 0
		// RTT sampling from the echoed send timestamp, original
		// transmissions only (Karn's rule).
		if !p.Rexmit && s.cfg.FixedRTO == 0 {
			s.updateRTT(s.env.Sched.Now() - eventq.Time(p.SentAt))
		}
		if s.cfg.Variant == DCTCP {
			s.dctcpOnAck(ack, newly, p.ECNEcho)
		}
		if s.inRecovery {
			if ack >= s.recover {
				s.inRecovery = false
				s.cwnd = s.ssthresh
			} else {
				// NewReno partial ACK: retransmit the next hole.
				s.emitSegment(s.sndUna, s.segLenAt(s.sndUna))
			}
		} else {
			s.grow(newly)
		}
		s.trackStability(ack)
		if s.sndUna >= s.Total {
			s.complete()
			return
		}
		if s.quiesce && s.sndUna >= s.sndStop {
			s.finishHandoff()
			return
		}
		s.armRTO(true)
		s.trySend()

	case ack == s.sndUna && s.inflight() > 0:
		s.dupacks++
		if s.cfg.DupAckThresh > 0 && s.dupacks == s.cfg.DupAckThresh && !s.inRecovery {
			s.fastRetransmit()
		}
	}
}

// segLenAt returns the payload length of the segment starting at seq.
func (s *Sender) segLenAt(seq int64) int {
	n := s.Total - seq
	if n > int64(s.cfg.MSS) {
		n = int64(s.cfg.MSS)
	}
	return int(n)
}

func (s *Sender) fastRetransmit() {
	s.FastRecovers++
	s.stabLoss = true
	s.stableWins = 0
	s.ssthresh = maxf(s.cwnd/2, 2)
	s.cwnd = s.ssthresh + 3
	s.inRecovery = true
	s.recover = s.sndNxt
	s.emitSegment(s.sndUna, s.segLenAt(s.sndUna))
	s.armRTO(true)
}

// grow applies slow start / congestion avoidance for newly acked bytes.
func (s *Sender) grow(newly int64) {
	pkts := float64(newly) / float64(s.cfg.MSS)
	if s.cwnd < s.ssthresh {
		s.cwnd += pkts
	} else {
		s.cwnd += pkts / s.cwnd
	}
	if s.cfg.MaxCwnd > 0 && s.cwnd > s.cfg.MaxCwnd {
		s.cwnd = s.cfg.MaxCwnd
	}
}

// dctcpOnAck implements the DCTCP control law: per-window marked-byte
// fraction drives alpha; one proportional window decrease per window.
func (s *Sender) dctcpOnAck(ack, newly int64, echo bool) {
	s.ackedBytes += newly
	if echo {
		s.markedBytes += newly
		if !s.cwndReduced {
			s.cwnd = maxf(1, s.cwnd*(1-s.alpha/2))
			s.ssthresh = s.cwnd
			s.cwndReduced = true
		}
	}
	if ack >= s.windowEnd {
		if s.ackedBytes > 0 {
			f := float64(s.markedBytes) / float64(s.ackedBytes)
			s.alpha = (1-s.cfg.DCTCPGain)*s.alpha + s.cfg.DCTCPGain*f
		}
		s.ackedBytes, s.markedBytes = 0, 0
		s.windowEnd = s.sndNxt
		s.cwndReduced = false
	}
}

// updateRTT is RFC 6298 with the MinRTO clamp.
func (s *Sender) updateRTT(sample eventq.Time) {
	if sample <= 0 {
		return
	}
	if !s.hasRTT {
		s.srtt = sample
		s.rttvar = sample / 2
		s.hasRTT = true
	} else {
		d := s.srtt - sample
		if d < 0 {
			d = -d
		}
		s.rttvar = (3*s.rttvar + d) / 4
		s.srtt = (7*s.srtt + sample) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.cfg.MinRTO {
		s.rto = s.cfg.MinRTO
	}
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
}

func (s *Sender) complete() {
	s.done = true
	s.cancelRTO()
	if s.OnComplete != nil {
		s.OnComplete()
	}
}

// stabilityBand is the relative cwnd (or goodput) movement tolerated
// between window rollovers while still counting the window as stable. Wide
// enough to absorb DCTCP's steady-state alpha wiggle, narrow enough that
// slow start (cwnd and rate doubling) and congestion collapse both read as
// unstable.
const stabilityBand = 0.25

// trackStability advances the stable-window counter at window rollovers.
// A window is stable when no loss recovery ran and either cwnd or the
// goodput since the previous rollover stayed inside the band (see the
// field block for why both axes are needed).
func (s *Sender) trackStability(ack int64) {
	if ack < s.stabEnd {
		return
	}
	now := s.env.Sched.Now()
	var rate float64
	if dt := now - s.stabTime; dt > 0 {
		rate = float64(ack-s.stabAck) / dt.Seconds()
	}
	cwndOK := s.stabCwnd > 0 && absf(s.cwnd-s.stabCwnd) <= stabilityBand*s.stabCwnd
	rateOK := s.stabRate > 0 && rate > 0 && absf(rate-s.stabRate) <= stabilityBand*s.stabRate
	if s.stabLoss {
		s.stableWins = 0
	} else if cwndOK || rateOK {
		s.stableWins++
	} else {
		s.stableWins = 0
	}
	s.stabLoss = false
	s.stabCwnd = s.cwnd
	s.stabRate = rate
	s.stabAck = ack
	s.stabTime = now
	s.stabEnd = s.sndNxt
}

// StableWindows reports how many consecutive window rollovers kept cwnd
// inside the stability band with no loss recovery — the hybrid layer's
// demotion signal.
func (s *Sender) StableWindows() int { return s.stableWins }

// Remaining returns the bytes not yet cumulatively acknowledged.
func (s *Sender) Remaining() int64 { return s.Total - s.sndUna }

// InFluid reports whether the sender's bytes are under fluid custody.
func (s *Sender) InFluid() bool { return s.fluid }

// HandoffPending reports whether a demotion is quiescing the window.
func (s *Sender) HandoffPending() bool { return s.quiesce }

// StartFluidHandoff begins demoting the flow to fluid custody: emission
// stops at the current sndNxt, the in-flight window drains through normal
// ack (and, on loss, RTO) processing, and when the pipe is empty —
// sndUna == sndNxt, a clean byte boundary — onDrained fires once with the
// remaining byte count for the caller to admit into the rate model. If the
// flow completes before draining, onDrained never fires. Returns false if
// the sender cannot hand off (done, not started, or already fluid).
func (s *Sender) StartFluidHandoff(onDrained func(remaining int64)) bool {
	if s.done || !s.started || s.fluid || s.quiesce {
		return false
	}
	s.quiesce = true
	s.sndStop = s.sndNxt
	s.onDrained = onDrained
	if s.sndUna >= s.sndStop {
		// Nothing in flight (an idle boundary); hand off immediately.
		s.finishHandoff()
	}
	return true
}

// finishHandoff completes the quiesce: custody moves to the rate model.
func (s *Sender) finishHandoff() {
	s.quiesce = false
	s.fluid = true
	s.cancelRTO()
	s.dupacks = 0
	s.inRecovery = false
	cb := s.onDrained
	s.onDrained = nil
	if cb != nil {
		cb(s.Total - s.sndUna)
	}
}

// StartFluid starts the flow directly under fluid custody, never emitting
// a packet (pure fluid mode). FluidAcked drives it to completion.
func (s *Sender) StartFluid() {
	if s.started {
		return
	}
	s.started = true
	s.StartedAt = s.env.Sched.Now()
	s.fluid = true
}

// FluidAcked credits n fluid-delivered bytes to the cumulative-ack state.
func (s *Sender) FluidAcked(n int64) {
	if s.done || !s.fluid || n <= 0 {
		return
	}
	s.sndUna += n
	if s.sndUna > s.Total {
		s.sndUna = s.Total
	}
	s.sndNxt = s.sndUna
	if s.maxSent < s.sndUna {
		s.maxSent = s.sndUna
	}
	if s.sndUna >= s.Total {
		s.complete()
	}
}

// ResumeFromFluid promotes the flow back to packet fidelity: transmission
// restarts at the cumulative-ack point in slow start from the initial
// window, with ssthresh set to the cwnd retained from before demotion (the
// demoted flow's bandwidth-limited steady state, so slow start ends near
// its fair share). Restarting the window itself — TCP's after-idle rule —
// matters for fidelity: the flow has no ack clock at this instant, and
// releasing the whole retained window would inject a line-rate burst that
// the steadily-paced packet-mode flow never produces. Stability and DCTCP
// window accounting restart from here.
func (s *Sender) ResumeFromFluid() {
	if s.done || !s.fluid {
		return
	}
	s.fluid = false
	s.ssthresh = maxf(s.cwnd, 2)
	s.cwnd = s.cfg.InitCwnd
	s.ackedBytes, s.markedBytes = 0, 0
	s.windowEnd = s.sndNxt
	s.cwndReduced = false
	s.stableWins = 0
	s.stabLoss = false
	s.stabCwnd = s.cwnd
	s.stabRate = 0
	s.stabAck = s.sndUna
	s.stabTime = s.env.Sched.Now()
	s.stabEnd = s.sndNxt
	s.trySend()
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Receiver is the receiving endpoint of a flow.
type Receiver struct {
	env  Env
	cfg  Config
	Flow packet.FlowID
	// Host is this receiver's node (the ACK source).
	Host  packet.NodeID
	Total int64

	rcvNxt int64
	ranges rangeSet
	done   bool
	// OnComplete fires once, when all Total bytes have arrived.
	OnComplete func()

	// Delayed-ACK state (DCTCP ECN-echo state machine).
	pendingCnt int
	lastCE     bool
	lastSentAt int64
	lastRexmit bool
	ackTimer   eventq.Timer
	flushFn    func() // flushAck method value, bound once (no per-arm alloc)
	peerSrc    packet.NodeID
	peerFlow   packet.FlowID

	// AcksSent counts emitted ACKs (delayed acking roughly halves it).
	AcksSent int

	// Stats.
	PacketsReceived int
	DupBytes        int64
	FirstArrival    eventq.Time
	LastArrival     eventq.Time
	// FluidBytes counts bytes delivered by the fluid model rather than by
	// packets (conservation: RcvNxt-covered bytes = packet bytes + fluid
	// bytes for flows that never retransmit across the boundary).
	FluidBytes int64
}

// NewReceiver creates a receiver expecting total bytes on flow.
func NewReceiver(env Env, cfg Config, flow packet.FlowID, host packet.NodeID, total int64) *Receiver {
	cfg.validate()
	if total <= 0 {
		panic("transport: flow size must be positive")
	}
	if env.Pool == nil {
		env.Pool = packet.NewPool()
	}
	r := &Receiver{env: env, cfg: cfg, Flow: flow, Host: host, Total: total}
	r.flushFn = r.flushAck
	return r
}

// Done reports whether every byte has arrived.
func (r *Receiver) Done() bool { return r.done }

// RcvNxt returns the highest contiguous byte received.
func (r *Receiver) RcvNxt() int64 { return r.rcvNxt }

// OnData handles an arriving data segment and emits a cumulative ACK that
// echoes the segment's CE mark and send timestamp.
func (r *Receiver) OnData(p *packet.Packet) {
	if p.Kind != packet.Data {
		return
	}
	if r.PacketsReceived == 0 {
		r.FirstArrival = r.env.Sched.Now()
	}
	r.PacketsReceived++
	r.LastArrival = r.env.Sched.Now()

	// ECN-echo state machine (delayed ACKs): a change in the CE state of
	// arriving segments immediately flushes an ACK covering the previous
	// segments and echoing *their* state, so the sender can reconstruct
	// the exact marked-byte count. This must happen before the new
	// segment advances rcvNxt.
	if r.cfg.DelayedAck && r.pendingCnt > 0 && p.CE != r.lastCE {
		r.flushAck()
	}

	before := r.ranges.covered()
	r.ranges.add(p.Seq, p.End())
	if r.ranges.covered() == before {
		r.DupBytes += int64(p.PayloadBytes)
	}
	r.rcvNxt = r.ranges.contiguousFrom(r.rcvNxt)

	complete := !r.done && r.rcvNxt >= r.Total

	if !r.cfg.DelayedAck {
		r.emitAck(p.CE, p.SentAt, p.Rexmit, p.Src, p.Flow)
	} else {
		r.peerSrc, r.peerFlow = p.Src, p.Flow
		r.lastCE = p.CE
		r.lastSentAt = p.SentAt
		r.lastRexmit = p.Rexmit
		r.pendingCnt++
		every := r.cfg.AckEvery
		if every <= 0 {
			every = 2
		}
		if r.pendingCnt >= every || complete {
			r.flushAck()
		} else if !r.ackTimer.Pending() {
			timeout := r.cfg.AckTimeout
			if timeout <= 0 {
				timeout = 500 * eventq.Microsecond
			}
			r.ackTimer = r.env.Sched.After(timeout, r.flushFn)
		}
	}

	if complete {
		r.done = true
		if r.OnComplete != nil {
			r.OnComplete()
		}
	}
}

// FluidDeliver credits n contiguous fluid-delivered bytes starting at
// rcvNxt. The fluid hand-off only begins at a fully acknowledged byte
// boundary with nothing in flight, so the credit always extends the
// contiguous prefix; no ACK is emitted — the sender's cumulative state
// advances through Sender.FluidAcked in the same engine tick.
func (r *Receiver) FluidDeliver(n int64) {
	if r.done || n <= 0 {
		return
	}
	end := r.rcvNxt + n
	if end > r.Total {
		end = r.Total
	}
	if end <= r.rcvNxt {
		return
	}
	if r.FirstArrival == 0 && r.PacketsReceived == 0 {
		r.FirstArrival = r.env.Sched.Now()
	}
	r.LastArrival = r.env.Sched.Now()
	r.FluidBytes += end - r.rcvNxt
	r.ranges.add(r.rcvNxt, end)
	r.rcvNxt = r.ranges.contiguousFrom(r.rcvNxt)
	if !r.done && r.rcvNxt >= r.Total {
		r.done = true
		if r.OnComplete != nil {
			r.OnComplete()
		}
	}
}

// flushAck emits the pending delayed ACK, if any.
func (r *Receiver) flushAck() {
	if r.pendingCnt == 0 {
		return
	}
	r.ackTimer.Cancel()
	r.pendingCnt = 0
	r.emitAck(r.lastCE, r.lastSentAt, r.lastRexmit, r.peerSrc, r.peerFlow)
}

// emitAck sends a cumulative ACK for everything received so far.
func (r *Receiver) emitAck(echo bool, sentAt int64, rexmit bool, dst packet.NodeID, flow packet.FlowID) {
	p := r.env.Pool.Get()
	p.Kind = packet.Ack
	p.Flow = flow
	p.Src = r.Host
	p.Dst = dst
	p.Seq = r.rcvNxt
	p.TTL = r.cfg.TTL
	p.ECNEcho = echo
	p.SentAt = sentAt
	p.Rexmit = rexmit
	// ACKs carry top priority in pFabric so they are never starved;
	// Priority is already zero on a freshly borrowed packet.
	r.env.Emit(p)
	r.AcksSent++
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minT(a, b eventq.Time) eventq.Time {
	if a < b {
		return a
	}
	return b
}
