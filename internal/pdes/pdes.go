// Package pdes drives conservative (lookahead-synchronized) parallel
// discrete-event simulation over sharded schedulers.
//
// The model is the classic null-message-free conservative scheme
// specialized to a network simulation whose only cross-shard interactions
// are link traversals with a known minimum propagation delay L (the
// lookahead): if every shard has executed all events up to time B-1, then
// any message a shard emits while executing the window [B, B+L-1] carries
// an arrival timestamp >= B+L — strictly beyond the window. So all shards
// may execute one lookahead-wide window in parallel with no communication
// at all, exchange the messages that serialization produced at a barrier,
// and repeat. No null messages, no deadlock avoidance protocol: the window
// IS the lookahead.
//
// Determinism does not depend on the barrier schedule. Messages are
// injected into their destination shard in a globally sorted
// (time, link key, source sequence) order, and the schedulers themselves
// execute by (time, pri, seq); since link keys are unique per directed
// link and same-link messages arrive pre-ordered by source sequence, the
// executed event order of every shard is a pure function of the simulation
// state — not of shard count, batching, or goroutine interleaving. That is
// what the cross-shard-count determinism test pins.
//
// This package is the one place below the run boundary where goroutines
// are allowed: Run is declared //dibslint:confined coordinator, so the
// shard-escape rule checks every value its workers capture instead of the
// blanket nondet-goroutine allowlist this package used to carry. All shard
// state is owned by its worker during a window and by the coordinator
// between windows; the channel sends are the happens-before edges, which
// the -race proof in scripts/check.sh exercises.
package pdes

import (
	"fmt"
	"sort"

	"dibs/internal/eventq"
)

// Message is one cross-shard hand-off: a packet snapshot's delivery,
// wrapped by the emitting shard into a closure that borrows from the
// destination arena and performs the arrival.
type Message struct {
	// At is the arrival time at the far end of the link (serialization
	// end + propagation delay + jitter, FIFO-clamped by the emitting
	// port). The lookahead contract guarantees At >= windowEnd+1 for any
	// message emitted during a window.
	At eventq.Time
	// Pri is the directed link's delivery ordering key (see
	// eventq.AtPri); unique per link, so it totally orders same-instant
	// arrivals from different links.
	Pri int64
	// Seq is the emitting shard's running emission count. Same-link
	// messages share a source shard, so (At, Pri, Seq) sorting preserves
	// per-link FIFO order.
	Seq uint64
	// Dst is the destination shard index.
	Dst int
	// Deliver schedules nothing itself: the coordinator hands it to
	// inject, which schedules it on the destination shard at (At, Pri).
	//
	//dibslint:confined shard built by the emitting worker, executed by the destination worker; custody crosses only at the barrier
	Deliver func()
}

// Run executes a sharded simulation until every shard's clock reaches
// until.
//
//   - runWindow(shard, limit) must execute shard's events through limit
//     (eventq.Scheduler.RunUntil semantics: events at <= limit run, the
//     clock ends at limit).
//   - flush(shard) must return and clear the messages shard emitted since
//     the last flush.
//   - inject(m) must schedule m.Deliver on shard m.Dst at (m.At, m.Pri).
//     It is called only between windows, in globally sorted order.
//
// lookahead must be the minimum cross-shard link latency (> 0); until is
// the virtual end of the run. Panics on invalid arguments rather than
// limping into a lookahead violation.
//
//dibslint:confined coordinator the barrier loop runs between windows only; cmd/done sends are the happens-before edges to every worker
//dibslint:confined(runWindow) shard invoked only from the owning shard's worker goroutine, one window at a time
//dibslint:confined(flush) coordinator called only between windows, after every worker has parked on cmd
//dibslint:confined(inject) coordinator called only between windows, in globally sorted message order
func Run(nShards int, lookahead, until eventq.Time,
	runWindow func(shard int, limit eventq.Time),
	flush func(shard int) []Message,
	inject func(m Message)) {
	if nShards < 1 {
		panic(fmt.Sprintf("pdes: %d shards", nShards))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("pdes: non-positive lookahead %v", lookahead))
	}

	// One persistent worker per shard. cmd carries the window limit; done
	// carries the worker index back. Buffered so the coordinator can issue
	// a full round without blocking.
	cmd := make([]chan eventq.Time, nShards)
	done := make(chan int, nShards)
	for i := 0; i < nShards; i++ {
		cmd[i] = make(chan eventq.Time, 1)
		go func(i int) {
			for limit := range cmd[i] {
				runWindow(i, limit)
				done <- i
			}
		}(i)
	}
	defer func() {
		for i := 0; i < nShards; i++ {
			close(cmd[i])
		}
	}()

	var batch []Message
	for base := eventq.Time(0); base <= until; base += lookahead {
		limit := base + lookahead - 1
		if limit > until || limit < base { // clamp, incl. overflow
			limit = until
		}
		for i := 0; i < nShards; i++ {
			cmd[i] <- limit
		}
		for i := 0; i < nShards; i++ {
			<-done
		}
		batch = batch[:0]
		for i := 0; i < nShards; i++ {
			batch = append(batch, flush(i)...)
		}
		if len(batch) == 0 {
			continue
		}
		sort.Slice(batch, func(a, b int) bool {
			x, y := &batch[a], &batch[b]
			if x.At != y.At {
				return x.At < y.At
			}
			if x.Pri != y.Pri {
				return x.Pri < y.Pri
			}
			return x.Seq < y.Seq
		})
		for _, m := range batch {
			if m.At <= limit {
				panic(fmt.Sprintf("pdes: lookahead violation: message at %v inside window ending %v", m.At, limit))
			}
			inject(m)
		}
	}
}
