// Package stats provides the summary statistics the paper reports:
// percentiles (the evaluation's headline metric is the 99th percentile of
// completion times), empirical CDFs (Figures 4-6), and Jain's fairness
// index (§5.6).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates float64 observations.
type Sample struct {
	vals   []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// AddAll appends many observations.
func (s *Sample) AddAll(vs []float64) {
	s.vals = append(s.vals, vs...)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.vals) }

// Values returns the (sorted) observations; the slice must not be modified.
func (s *Sample) Values() []float64 {
	s.sort()
	return s.vals
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) using linear
// interpolation between closest ranks. Returns NaN for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of (0,100]", p))
	}
	s.sort()
	if len(s.vals) == 1 {
		return s.vals[0]
	}
	rank := p / 100 * float64(len(s.vals)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.vals[lo]
	}
	frac := rank - float64(lo)
	return s.vals[lo]*(1-frac) + s.vals[hi]*frac
}

// Mean returns the arithmetic mean (NaN when empty).
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Max returns the maximum (NaN when empty).
func (s *Sample) Max() float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.vals[len(s.vals)-1]
}

// Min returns the minimum (NaN when empty).
func (s *Sample) Min() float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.vals[0]
}

// CDFPoint is one point of an empirical CDF: fraction F of observations
// are <= X.
type CDFPoint struct {
	X float64
	F float64
}

// CDF returns the empirical CDF, one point per distinct value.
func (s *Sample) CDF() []CDFPoint {
	s.sort()
	n := len(s.vals)
	if n == 0 {
		return nil
	}
	var out []CDFPoint
	for i := 0; i < n; i++ {
		// Emit at the last occurrence of each distinct value.
		//dibslint:ignore float-eq exact duplicate detection over stored values, not computed ones
		if i+1 < n && s.vals[i+1] == s.vals[i] {
			continue
		}
		out = append(out, CDFPoint{X: s.vals[i], F: float64(i+1) / float64(n)})
	}
	return out
}

// FractionBelow returns the fraction of observations <= x.
func (s *Sample) FractionBelow(x float64) float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	s.sort()
	i := sort.SearchFloat64s(s.vals, x)
	// Include equal values.
	for i < len(s.vals) && s.vals[i] <= x {
		i++
	}
	return float64(i) / float64(len(s.vals))
}

// Jain computes Jain's fairness index: (sum x)^2 / (n * sum x^2). It is 1
// for perfectly equal allocations and 1/n in the worst case. Returns NaN
// for empty input or all-zero allocations.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return math.NaN()
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}
