package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(50); math.Abs(got-50.5) > 0.01 {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile(99); math.Abs(got-99.01) > 0.011 {
		t.Fatalf("p99 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
}

func TestPercentileSingleAndEmpty(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Percentile(99)) {
		t.Fatal("empty percentile should be NaN")
	}
	s.Add(7)
	if s.Percentile(1) != 7 || s.Percentile(99) != 7 {
		t.Fatal("single-value percentiles")
	}
}

func TestPercentilePanics(t *testing.T) {
	var s Sample
	s.Add(1)
	for _, p := range []float64{0, -5, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("percentile %v should panic", p)
				}
			}()
			s.Percentile(p)
		}()
	}
}

func TestMeanMinMax(t *testing.T) {
	var s Sample
	s.AddAll([]float64{3, 1, 2})
	if s.Mean() != 2 || s.Min() != 1 || s.Max() != 3 {
		t.Fatalf("mean=%v min=%v max=%v", s.Mean(), s.Min(), s.Max())
	}
	var e Sample
	if !math.IsNaN(e.Mean()) || !math.IsNaN(e.Min()) || !math.IsNaN(e.Max()) {
		t.Fatal("empty stats should be NaN")
	}
}

func TestCDF(t *testing.T) {
	var s Sample
	s.AddAll([]float64{1, 1, 2, 4})
	cdf := s.CDF()
	want := []CDFPoint{{1, 0.5}, {2, 0.75}, {4, 1.0}}
	if len(cdf) != len(want) {
		t.Fatalf("cdf = %v", cdf)
	}
	for i := range want {
		if cdf[i] != want[i] {
			t.Fatalf("cdf[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
}

func TestFractionBelow(t *testing.T) {
	var s Sample
	s.AddAll([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := s.FractionBelow(c.x); got != c.want {
			t.Fatalf("FractionBelow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestJain(t *testing.T) {
	if j := Jain([]float64{1, 1, 1, 1}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("equal allocations: %v", j)
	}
	// One user hogging everything: index = 1/n.
	if j := Jain([]float64{1, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Fatalf("max unfairness: %v", j)
	}
	if !math.IsNaN(Jain(nil)) || !math.IsNaN(Jain([]float64{0, 0})) {
		t.Fatal("degenerate Jain should be NaN")
	}
}

// Property: percentiles are monotone in p and bounded by [min, max].
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []float64, seed int64) bool {
		var s Sample
		ok := false
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s.Add(v)
				ok = true
			}
		}
		if !ok {
			return true
		}
		prev := math.Inf(-1)
		for _, p := range []float64{1, 25, 50, 75, 90, 99, 100} {
			v := s.Percentile(p)
			if v < prev || v < s.Min() || v > s.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF is monotone, ends at 1, and FractionBelow agrees with it.
func TestQuickCDFConsistency(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Sample
		for i := 0; i < int(n)+1; i++ {
			s.Add(float64(rng.Intn(20)))
		}
		cdf := s.CDF()
		prevX, prevF := math.Inf(-1), 0.0
		for _, pt := range cdf {
			if pt.X <= prevX || pt.F <= prevF {
				return false
			}
			if math.Abs(s.FractionBelow(pt.X)-pt.F) > 1e-12 {
				return false
			}
			prevX, prevF = pt.X, pt.F
		}
		return cdf[len(cdf)-1].F == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Jain's index lies in [1/n, 1] for positive allocations.
func TestQuickJainBounds(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n%20) + 1
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = rng.Float64()*100 + 0.001
		}
		j := Jain(xs)
		return j >= 1/float64(m)-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: sorting the values slice matches Values().
func TestQuickValuesSorted(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		var clean []float64
		for _, v := range raw {
			if !math.IsNaN(v) {
				s.Add(v)
				clean = append(clean, v)
			}
		}
		sort.Float64s(clean)
		got := s.Values()
		if len(got) != len(clean) {
			return false
		}
		for i := range got {
			if got[i] != clean[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
