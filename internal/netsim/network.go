package netsim

import (
	"fmt"

	"dibs/internal/core"
	"dibs/internal/eventq"
	"dibs/internal/host"
	"dibs/internal/metrics"
	"dibs/internal/packet"
	"dibs/internal/queue"
	"dibs/internal/rng"
	"dibs/internal/switching"
	"dibs/internal/topology"
	"dibs/internal/trace"
	"dibs/internal/transport"
	"dibs/internal/workload"
)

// Network is a fully assembled simulation.
type Network struct {
	Cfg   Config
	Sched *eventq.Scheduler
	Topo  *topology.Topology
	// Pool is the per-run packet arena: every segment/ACK the transports
	// emit is borrowed from it and returned on its terminal path.
	Pool *packet.Pool
	// Switches is indexed by node ID (nil entries for hosts); entries are
	// *switching.Switch (output-queued) or *switching.CIOQSwitch per
	// Config.Arch.
	Switches []switching.Node
	// HostsByID is indexed by node ID (nil entries for switches).
	HostsByID []*host.Host
	Collector *metrics.Collector
	// Util and Buf are non-nil when the config enables them.
	Util *metrics.LinkUtilMonitor
	Buf  *metrics.BufferSampler
	// Trace is non-nil when Config.TraceEvents is set.
	Trace *trace.Recorder

	handlers []switching.Handler

	nextFlow packet.FlowID
	// senders retains every sender for end-of-run stats aggregation.
	senders []*transport.Sender
	// longRx tracks fairness-experiment receivers for goodput accounting.
	longRx []*transport.Receiver

	// dataEmitted counts data packets handed to host NICs, for the
	// trace-sampling stride.
	dataEmitted int
}

// portRef lets OutPorts deliver through the network's handler table,
// breaking the construction cycle between ports and handlers.
type portRef struct {
	n    *Network
	node packet.NodeID
}

func (r portRef) Receive(p *packet.Packet, port int) {
	r.n.handlers[r.node].Receive(p, port)
}

// Build constructs the network described by cfg.
func Build(cfg Config) *Network {
	cfg.Validate()
	engine, _ := eventq.ParseEngine(cfg.Engine) // Validate already vetted it
	n := &Network{
		Cfg:   cfg,
		Sched: eventq.NewSchedulerEngine(engine),
		Pool:  packet.NewPool(),
	}
	n.Topo = buildTopo(cfg)
	n.Collector = metrics.NewCollector(n.Sched)
	n.Collector.RecordTimeline = cfg.RecordTimeline

	nn := n.Topo.NumNodes()
	n.Switches = make([]switching.Node, nn)
	n.HostsByID = make([]*host.Host, nn)
	n.handlers = make([]switching.Handler, nn)

	hooks := n.Collector.Hooks()
	if cfg.TraceEvents {
		n.Trace = trace.NewRecorder(cfg.TraceEventCap)
		inner := hooks
		hooks = &switching.Hooks{
			OnDrop: func(node packet.NodeID, p *packet.Packet, reason switching.DropReason) {
				inner.OnDrop(node, p, reason)
				n.Trace.Record(trace.Event{
					T: n.Sched.Now(), Kind: trace.KindDrop, Node: node,
					Flow: p.Flow, Seq: p.Seq, Detail: reason.String(),
				})
			},
			OnDetour: func(node packet.NodeID, p *packet.Packet, desired, chosen int) {
				inner.OnDetour(node, p, desired, chosen)
				n.Trace.Record(trace.Event{
					T: n.Sched.Now(), Kind: trace.KindDetour, Node: node,
					Flow: p.Flow, Seq: p.Seq, Detail: fmt.Sprintf("%d->%d", desired, chosen),
				})
			},
		}
	}
	jitterRng := rng.New(cfg.Seed, "link/jitter")
	jitterize := func(op *switching.OutPort) *switching.OutPort {
		if cfg.ForwardJitter > 0 {
			op.SetJitter(jitterRng, cfg.ForwardJitter)
		}
		return op
	}

	// Hosts first (their NICs are simple), then switches.
	for _, hid := range n.Topo.Hosts() {
		h := host.New(hid)
		p := n.Topo.Ports(hid)[0]
		nic := jitterize(switching.NewOutPort(n.Sched, queue.NewDropTail(cfg.HostQueuePkts, 0),
			p.RateBps, p.Delay, portRef{n, p.Peer}, p.PeerPort))
		h.NIC = nic
		h.OnDeliver = n.Collector.OnDeliver
		if cfg.TraceEvents {
			hid := hid
			h.OnDeliver = func(p *packet.Packet) {
				n.Collector.OnDeliver(p)
				if p.Kind == packet.Data {
					n.Trace.Record(trace.Event{
						T: n.Sched.Now(), Kind: trace.KindDeliver, Node: hid,
						Flow: p.Flow, Seq: p.Seq,
					})
				}
			}
		}
		if cfg.TraceEveryNth > 0 {
			stride := cfg.TraceEveryNth
			h.TracePacket = func(p *packet.Packet) bool {
				n.dataEmitted++
				return n.dataEmitted%stride == 0
			}
		}
		n.HostsByID[hid] = h
		n.handlers[hid] = h
	}
	for _, sid := range n.Topo.Switches() {
		ports := make([]*switching.OutPort, 0, len(n.Topo.Ports(sid)))
		var pool *queue.SharedPool
		if cfg.Buffer == BufferShared {
			pool = queue.NewSharedPool(cfg.SharedPoolPkts, cfg.SharedAlpha, cfg.SharedReserve)
		}
		for _, p := range n.Topo.Ports(sid) {
			ports = append(ports, jitterize(switching.NewOutPort(n.Sched, n.makeQueue(pool),
				p.RateBps, p.Delay, portRef{n, p.Peer}, p.PeerPort)))
		}
		swRng := rng.New(cfg.Seed, fmt.Sprintf("switch/%d", sid))
		var node switching.Node
		if cfg.Arch == ArchCIOQ {
			sw := switching.NewCIOQSwitch(sid, n.Topo, n.Sched, ports,
				switching.CIOQConfig{IngressCap: cfg.CIOQIngressCap, Speedup: cfg.CIOQSpeedup},
				n.makePolicy(), swRng, hooks)
			sw.MarkDetours = cfg.MarkAtPkts > 0
			node = sw
		} else {
			sw := switching.NewSwitch(sid, n.Topo, ports, n.makePolicy(), swRng, hooks)
			sw.MarkDetours = cfg.MarkAtPkts > 0
			sw.PacketSpray = cfg.PacketSpray
			node = sw
		}
		n.Switches[sid] = node
		n.handlers[sid] = node
	}

	if cfg.PFC {
		n.enablePFC()
	}
	n.installMonitors()
	return n
}

// enablePFC turns on Ethernet flow control everywhere: each switch pauses
// the upstream transmitter (switch port or host NIC) of an ingress whose
// buffered packets cross Xoff. Control frames take one link delay.
func (n *Network) enablePFC() {
	for _, sid := range n.Topo.Switches() {
		sid := sid
		sw, ok := n.Switches[sid].(*switching.Switch)
		if !ok {
			panic("netsim: PFC requires output-queued switches")
		}
		sw.EnablePFC(switching.PFCConfig{
			Xoff: n.Cfg.PFCXoff,
			Xon:  n.Cfg.PFCXon,
			Pause: func(inPort int, paused bool) {
				p := n.Topo.Ports(sid)[inPort]
				n.Sched.After(p.Delay, func() {
					if h := n.HostsByID[p.Peer]; h != nil {
						h.NIC.SetPaused(paused)
						return
					}
					n.Switches[p.Peer].Ports()[p.PeerPort].SetPaused(paused)
				})
			},
		})
	}
}

// PFCPauses sums PAUSE frames emitted across all switches.
func (n *Network) PFCPauses() uint64 {
	var total uint64
	for _, sid := range n.Topo.Switches() {
		if sw, ok := n.Switches[sid].(*switching.Switch); ok {
			total += sw.PFCPausesSent()
		}
	}
	return total
}

func buildTopo(cfg Config) *topology.Topology {
	spec := topology.LinkSpec{RateBps: cfg.LinkRate, Delay: cfg.LinkDelay}
	switch cfg.Topo {
	case TopoFatTree:
		return topology.FatTree(cfg.FatTreeK, spec, cfg.Oversub)
	case TopoClick:
		return topology.ClickTestbed(spec)
	case TopoLinear:
		return topology.Linear(cfg.LinearSwitches, cfg.LinearHostsPer, spec)
	case TopoJellyfish:
		return topology.Jellyfish(cfg.JellyfishSwitches, cfg.JellyfishDegree,
			cfg.JellyfishHostsPer, spec, cfg.Seed)
	case TopoHyperX:
		return topology.HyperX(cfg.HyperXX, cfg.HyperXY, cfg.HyperXHostsPer, spec)
	default:
		panic("netsim: unreachable topology kind")
	}
}

func (n *Network) makeQueue(pool *queue.SharedPool) queue.Queue {
	cfg := &n.Cfg
	switch cfg.Buffer {
	case BufferDropTail:
		return queue.NewDropTail(cfg.BufferPkts, cfg.MarkAtPkts)
	case BufferInfinite:
		return queue.NewInfinite(cfg.MarkAtPkts)
	case BufferShared:
		return queue.NewSharedQueue(pool, cfg.MarkAtPkts)
	case BufferPFabric:
		return queue.NewPFabric(cfg.BufferPkts)
	default:
		panic("netsim: unreachable buffer mode")
	}
}

func (n *Network) makePolicy() core.Policy {
	if !n.Cfg.DIBS {
		return nil
	}
	switch n.Cfg.Policy {
	case PolicyRandom:
		return core.NewRandom()
	case PolicyLoadAware:
		return core.NewLoadAware()
	case PolicyFlowBased:
		return core.NewFlowBased()
	case PolicyProbabilistic:
		return core.NewProbabilistic(n.Cfg.ProbabilisticStart)
	default:
		panic("netsim: unreachable policy")
	}
}

func (n *Network) installMonitors() {
	cfg := &n.Cfg
	if cfg.UtilWindow > 0 {
		n.Util = metrics.NewLinkUtilMonitor(n.Sched, cfg.UtilWindow, n.switchPorts())
	}
	if cfg.BufferSamplePeriod > 0 {
		n.Buf = metrics.NewBufferSampler(n.Sched, cfg.BufferSamplePeriod, n.switchPorts())
	}
}

// switchPorts lists every switch output port, for the monitors.
func (n *Network) switchPorts() []metrics.PortRef {
	var out []metrics.PortRef
	for _, sid := range n.Topo.Switches() {
		for pi, op := range n.Switches[sid].Ports() {
			out = append(out, metrics.PortRef{Node: sid, Port: pi, Out: op})
		}
	}
	return out
}

// transportConfig derives the per-flow transport settings from the run
// config.
func (n *Network) transportConfig() transport.Config {
	cfg := &n.Cfg
	tc := transport.DefaultConfig(cfg.Transport)
	tc.InitCwnd = cfg.InitCwnd
	tc.DupAckThresh = cfg.DupAckThresh
	tc.TTL = cfg.TTL
	tc.DelayedAck = cfg.DelayedAck
	if cfg.Transport != transport.PFabric {
		tc.MinRTO = cfg.MinRTO
	}
	return tc
}

// StartFlow launches a flow of bytes from src to dst, registering it with
// the collector. queryID is -1 for non-query flows. Returns the sender.
func (n *Network) StartFlow(src, dst packet.NodeID, bytes int64,
	class metrics.FlowClass, queryID int) *transport.Sender {
	if src == dst {
		panic("netsim: flow to self")
	}
	flowID := n.nextFlow
	n.nextFlow++

	srcHost := n.HostsByID[src]
	dstHost := n.HostsByID[dst]
	if srcHost == nil || dstHost == nil {
		panic(fmt.Sprintf("netsim: flow endpoints %d->%d are not hosts", src, dst))
	}

	tc := n.transportConfig()
	env := transport.Env{Sched: n.Sched, Pool: n.Pool}

	sEnv := env
	sEnv.Emit = srcHost.Send
	snd := transport.NewSender(sEnv, tc, flowID, src, dst, bytes)

	rEnv := env
	rEnv.Emit = dstHost.Send
	rcv := transport.NewReceiver(rEnv, tc, flowID, dst, bytes)

	n.Collector.FlowStarted(flowID, class, bytes, queryID)
	if n.Trace != nil {
		n.Trace.Record(trace.Event{
			T: n.Sched.Now(), Kind: trace.KindFlowStart, Node: src,
			Flow: flowID, Seq: -1, Detail: fmt.Sprintf("%s %dB -> %d", class, bytes, dst),
		})
	}
	rcv.OnComplete = func() {
		n.Collector.FlowDone(flowID)
		dstHost.RemoveReceiver(flowID)
		if n.Trace != nil {
			n.Trace.Record(trace.Event{
				T: n.Sched.Now(), Kind: trace.KindFlowDone, Node: dst,
				Flow: flowID, Seq: -1,
			})
		}
	}
	snd.OnComplete = func() {
		srcHost.RemoveSender(flowID)
	}

	srcHost.AddSender(snd)
	dstHost.AddReceiver(rcv)
	n.senders = append(n.senders, snd)
	if class == metrics.ClassLong {
		n.longRx = append(n.longRx, rcv)
	}
	snd.Start()
	return snd
}

// Run installs the configured workloads, runs the simulation for
// Duration+Drain, and returns the results.
func (n *Network) Run() *Results {
	cfg := &n.Cfg
	hosts := n.Topo.Hosts()
	start := func(src, dst packet.NodeID, bytes int64, class metrics.FlowClass, queryID int) {
		n.StartFlow(src, dst, bytes, class, queryID)
	}

	if cfg.BGInterarrival > 0 {
		dist := workload.WebSearchBackground()
		if cfg.BGDist == BGDataMining {
			dist = workload.DataMiningBackground()
		}
		bg := workload.NewBackground(n.Sched, rng.New(cfg.Seed, "workload/background"),
			hosts, cfg.BGInterarrival, dist, cfg.Duration, start)
		bg.Start()
	}
	if cfg.Query != nil {
		q := workload.NewQueries(n.Sched, rng.New(cfg.Seed, "workload/queries"),
			hosts, *cfg.Query, cfg.Duration, start)
		q.OnQuery = n.Collector.QueryStarted
		q.Start()
	}
	if cfg.OneShot != nil {
		os := cfg.OneShot
		if os.Senders >= len(hosts) {
			panic("netsim: one-shot senders must leave a target host")
		}
		n.Sched.At(os.At, func() {
			target := hosts[len(hosts)-1]
			nFlows := os.Senders * os.FlowsPerSender
			n.Collector.QueryStarted(1_000_000, nFlows)
			for s := 0; s < os.Senders; s++ {
				for f := 0; f < os.FlowsPerSender; f++ {
					n.StartFlow(hosts[s], target, os.Bytes, metrics.ClassQuery, 1_000_000)
				}
			}
		})
	}
	if cfg.Long != nil {
		pairs := workload.Pairs(hosts)
		if cfg.Long.Shuffle {
			pairs = workload.PairsShuffled(hosts, rng.New(cfg.Seed, "workload/longpairs"))
		}
		const longBytes = int64(1) << 40 // effectively unbounded
		for _, pr := range pairs {
			for i := 0; i < cfg.Long.PerPair; i++ {
				n.StartFlow(pr[0], pr[1], longBytes, metrics.ClassLong, -1)
				n.StartFlow(pr[1], pr[0], longBytes, metrics.ClassLong, -1)
			}
		}
	}

	if n.Util != nil {
		n.Util.Start()
	}
	if n.Buf != nil {
		n.Buf.Start()
	}

	end := cfg.Duration + cfg.Drain
	n.Sched.RunUntil(end)
	return n.results(end)
}
