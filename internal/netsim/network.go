package netsim

import (
	"fmt"
	"strconv"

	"dibs/internal/core"
	"dibs/internal/eventq"
	"dibs/internal/host"
	"dibs/internal/metrics"
	"dibs/internal/packet"
	"dibs/internal/queue"
	"dibs/internal/rng"
	"dibs/internal/switching"
	"dibs/internal/topology"
	"dibs/internal/trace"
	"dibs/internal/transport"
)

// Network is a fully assembled simulation.
type Network struct {
	Cfg Config
	// Sched is shard 0's scheduler — with Shards <= 1 (the default), the
	// only one, i.e. the plain sequential engine.
	Sched *eventq.Scheduler
	Topo  *topology.Topology
	// Pool is shard 0's packet arena: every segment/ACK the transports
	// emit is borrowed from its shard's arena and returned on a terminal
	// path (cross-shard hops re-home the packet, see packet.Wire).
	Pool *packet.Pool
	// Switches is indexed by node ID (nil entries for hosts); entries are
	// *switching.Switch (output-queued) or *switching.CIOQSwitch per
	// Config.Arch.
	Switches []switching.Node
	// HostsByID is indexed by node ID (nil entries for switches).
	HostsByID []*host.Host
	Collector *metrics.Collector
	// Util and Buf are non-nil when the config enables them.
	Util *metrics.LinkUtilMonitor
	Buf  *metrics.BufferSampler
	// Trace is non-nil when Config.TraceEvents is set.
	Trace *trace.Recorder

	handlers []switching.Handler

	// shards holds one scheduler/arena/collector group per PDES shard
	// (exactly one with Shards <= 1); part maps every node ID to its
	// shard.
	shards []*shardCtx
	part   []int

	// fluid is non-nil in fluid/hybrid mode (see fluid.go).
	fluid *fluidState

	nextFlow packet.FlowID

	// dataEmitted counts data packets handed to host NICs, for the
	// trace-sampling stride.
	dataEmitted int
}

// portRef lets OutPorts deliver through the network's handler table,
// breaking the construction cycle between ports and handlers.
type portRef struct {
	n    *Network
	node packet.NodeID
}

func (r portRef) Receive(p *packet.Packet, port int) {
	r.n.handlers[r.node].Receive(p, port)
}

// Build constructs the network described by cfg.
func Build(cfg Config) *Network {
	cfg.Validate()
	engine, _ := eventq.ParseEngine(cfg.Engine) // Validate already vetted it
	n := &Network{Cfg: cfg}
	n.Topo = buildTopo(cfg)

	// Shard layout: always the same construction, with Shards <= 1 being
	// the one-shard (sequential) special case. The partition is a pure
	// function of the topology, so a given node sits in the same shard on
	// every run.
	nsh := 1
	if cfg.Shards > 1 {
		nsh = cfg.Shards
		if nsw := len(n.Topo.Switches()); nsh > nsw {
			nsh = nsw
		}
	}
	n.part = n.Topo.Partition(nsh)
	n.shards = make([]*shardCtx, nsh)
	for i := range n.shards {
		sc := &shardCtx{id: i, sched: eventq.NewSchedulerEngine(engine), pool: packet.NewPool()}
		sc.coll = metrics.NewCollector(sc.sched)
		sc.coll.RecordTimeline = cfg.RecordTimeline
		n.shards[i] = sc
	}
	n.Sched = n.shards[0].sched
	n.Pool = n.shards[0].pool
	n.Collector = n.shards[0].coll

	nn := n.Topo.NumNodes()
	n.Switches = make([]switching.Node, nn)
	n.HostsByID = make([]*host.Host, nn)
	n.handlers = make([]switching.Handler, nn)

	// Each shard's switches report into that shard's collector; the merge
	// at results time is order-independent (see metrics.MergeFrom).
	hooksBy := make([]*switching.Hooks, nsh)
	for i, sc := range n.shards {
		hooksBy[i] = sc.coll.Hooks()
	}
	if cfg.TraceEvents {
		n.Trace = trace.NewRecorder(cfg.TraceEventCap)
		inner := hooksBy[0] // Validate pinned Shards <= 1 for tracing
		hooksBy[0] = &switching.Hooks{
			OnDrop: func(node packet.NodeID, p *packet.Packet, reason switching.DropReason) {
				inner.OnDrop(node, p, reason)
				n.Trace.Record(trace.Event{
					T: n.Sched.Now(), Kind: trace.KindDrop, Node: node,
					Flow: p.Flow, Seq: p.Seq, Detail: reason.String(),
				})
			},
			OnDetour: func(node packet.NodeID, p *packet.Packet, desired, chosen int) {
				inner.OnDetour(node, p, desired, chosen)
				n.Trace.Record(trace.Event{
					T: n.Sched.Now(), Kind: trace.KindDetour, Node: node,
					Flow: p.Flow, Seq: p.Seq, Detail: fmt.Sprintf("%d->%d", desired, chosen),
				})
			},
		}
	}
	// finishPort applies the per-port policies every link needs: the
	// port-local jitter stream (a function of (node, port) alone, so draws
	// do not depend on execution interleaving), the link's same-instant
	// delivery ordering key, and — when the far end lives in another
	// shard — the outbox hand-off instead of local delivery.
	finishPort := func(op *switching.OutPort, nid packet.NodeID, pi int, peer packet.NodeID, peerPort int) *switching.OutPort {
		if cfg.ForwardJitter > 0 {
			op.SetJitter(rng.Derive2(uint64(cfg.Seed), "link/jitter", int(nid), pi), cfg.ForwardJitter)
		}
		op.SetDeliveryPri(1 + (int64(peer)<<16 | int64(peerPort)))
		if n.part[nid] != n.part[peer] {
			op.SetRemote(n.makeEmit(n.shards[n.part[nid]], n.shards[n.part[peer]], peer, peerPort))
		}
		return op
	}

	// Port and host structs come from two en-bloc slices: a K=8 fat tree
	// otherwise pays ~900 separate struct allocations before the first
	// packet moves, which dominates short-run benchmarks.
	nPorts := len(n.Topo.Hosts()) // one NIC each
	for _, sid := range n.Topo.Switches() {
		nPorts += len(n.Topo.Ports(sid))
	}
	portBlock := make([]switching.OutPort, nPorts)
	nextPort := func() *switching.OutPort {
		op := &portBlock[0]
		portBlock = portBlock[1:]
		return op
	}
	hostBlock := make([]host.Host, len(n.Topo.Hosts()))
	// DropTail queues (every NIC, and every switch port in drop-tail
	// configs) carve from one arena, like the port and host blocks above.
	var qArena queue.DropTailArena

	// Hosts first (their NICs are simple), then switches.
	for hi, hid := range n.Topo.Hosts() {
		h := hostBlock[hi].Init(hid)
		sh := n.shards[n.part[hid]]
		p := n.Topo.Ports(hid)[0]
		nic := finishPort(switching.InitOutPort(nextPort(), sh.sched, qArena.New(cfg.HostQueuePkts, cfg.HostMarkAtPkts),
			p.RateBps, p.Delay, portRef{n, p.Peer}, p.PeerPort), hid, 0, p.Peer, p.PeerPort)
		h.NIC = nic
		h.OnDeliver = sh.coll.OnDeliver
		if cfg.TraceEvents {
			hid := hid
			h.OnDeliver = func(p *packet.Packet) {
				n.Collector.OnDeliver(p)
				if p.Kind == packet.Data {
					n.Trace.Record(trace.Event{
						T: n.Sched.Now(), Kind: trace.KindDeliver, Node: hid,
						Flow: p.Flow, Seq: p.Seq,
					})
				}
			}
		}
		if cfg.TraceEveryNth > 0 {
			stride := cfg.TraceEveryNth
			h.TracePacket = func(p *packet.Packet) bool {
				n.dataEmitted++
				return n.dataEmitted%stride == 0
			}
		}
		n.HostsByID[hid] = h
		n.handlers[hid] = h
	}
	for _, sid := range n.Topo.Switches() {
		sh := n.shards[n.part[sid]]
		ports := make([]*switching.OutPort, 0, len(n.Topo.Ports(sid)))
		var pool *queue.SharedPool
		if cfg.Buffer == BufferShared {
			pool = queue.NewSharedPool(cfg.SharedPoolPkts, cfg.SharedAlpha, cfg.SharedReserve)
		}
		for pi, p := range n.Topo.Ports(sid) {
			ports = append(ports, finishPort(switching.InitOutPort(nextPort(), sh.sched, n.makeQueue(pool, &qArena),
				p.RateBps, p.Delay, portRef{n, p.Peer}, p.PeerPort), sid, pi, p.Peer, p.PeerPort))
		}
		// strconv, not Sprintf: same stream name, so the derived seed (and
		// every golden) is unchanged, without the printf machinery per switch.
		swRng := rng.New(cfg.Seed, "switch/"+strconv.Itoa(int(sid)))
		hooks := hooksBy[n.part[sid]]
		var node switching.Node
		if cfg.Arch == ArchCIOQ {
			sw := switching.NewCIOQSwitch(sid, n.Topo, sh.sched, ports,
				switching.CIOQConfig{IngressCap: cfg.CIOQIngressCap, Speedup: cfg.CIOQSpeedup},
				n.makePolicy(), swRng, hooks)
			sw.MarkDetours = cfg.MarkAtPkts > 0
			node = sw
		} else {
			sw := switching.NewSwitch(sid, n.Topo, ports, n.makePolicy(), swRng, hooks)
			sw.MarkDetours = cfg.MarkAtPkts > 0
			sw.PacketSpray = cfg.PacketSpray
			node = sw
		}
		n.Switches[sid] = node
		n.handlers[sid] = node
	}

	if cfg.PFC {
		n.enablePFC()
	}
	if cfg.mode() != ModePacket {
		n.buildFluid()
	}
	n.installMonitors()
	return n
}

// enablePFC turns on Ethernet flow control everywhere: each switch pauses
// the upstream transmitter (switch port or host NIC) of an ingress whose
// buffered packets cross Xoff. Control frames take one link delay.
func (n *Network) enablePFC() {
	for _, sid := range n.Topo.Switches() {
		sid := sid
		sw, ok := n.Switches[sid].(*switching.Switch)
		if !ok {
			panic("netsim: PFC requires output-queued switches")
		}
		sw.EnablePFC(switching.PFCConfig{
			Xoff: n.Cfg.PFCXoff,
			Xon:  n.Cfg.PFCXon,
			Pause: func(inPort int, paused bool) {
				p := n.Topo.Ports(sid)[inPort]
				n.Sched.After(p.Delay, func() {
					if h := n.HostsByID[p.Peer]; h != nil {
						h.NIC.SetPaused(paused)
						return
					}
					n.Switches[p.Peer].Ports()[p.PeerPort].SetPaused(paused)
				})
			},
		})
	}
}

// PFCPauses sums PAUSE frames emitted across all switches.
func (n *Network) PFCPauses() uint64 {
	var total uint64
	for _, sid := range n.Topo.Switches() {
		if sw, ok := n.Switches[sid].(*switching.Switch); ok {
			total += sw.PFCPausesSent()
		}
	}
	return total
}

func buildTopo(cfg Config) *topology.Topology {
	spec := topology.LinkSpec{RateBps: cfg.LinkRate, Delay: cfg.LinkDelay}
	switch cfg.Topo {
	case TopoFatTree:
		return topology.FatTree(cfg.FatTreeK, spec, cfg.Oversub)
	case TopoClick:
		return topology.ClickTestbed(spec)
	case TopoLinear:
		return topology.Linear(cfg.LinearSwitches, cfg.LinearHostsPer, spec)
	case TopoJellyfish:
		return topology.Jellyfish(cfg.JellyfishSwitches, cfg.JellyfishDegree,
			cfg.JellyfishHostsPer, spec, cfg.Seed)
	case TopoHyperX:
		return topology.HyperX(cfg.HyperXX, cfg.HyperXY, cfg.HyperXHostsPer, spec)
	default:
		panic("netsim: unreachable topology kind")
	}
}

func (n *Network) makeQueue(pool *queue.SharedPool, arena *queue.DropTailArena) queue.Queue {
	cfg := &n.Cfg
	switch cfg.Buffer {
	case BufferDropTail:
		return arena.New(cfg.BufferPkts, cfg.MarkAtPkts)
	case BufferInfinite:
		return queue.NewInfinite(cfg.MarkAtPkts)
	case BufferShared:
		return queue.NewSharedQueue(pool, cfg.MarkAtPkts)
	case BufferPFabric:
		return queue.NewPFabric(cfg.BufferPkts)
	default:
		panic("netsim: unreachable buffer mode")
	}
}

func (n *Network) makePolicy() core.Policy {
	if !n.Cfg.DIBS {
		return nil
	}
	switch n.Cfg.Policy {
	case PolicyRandom:
		return core.NewRandom()
	case PolicyLoadAware:
		return core.NewLoadAware()
	case PolicyFlowBased:
		return core.NewFlowBased()
	case PolicyProbabilistic:
		return core.NewProbabilistic(n.Cfg.ProbabilisticStart)
	default:
		panic("netsim: unreachable policy")
	}
}

func (n *Network) installMonitors() {
	cfg := &n.Cfg
	if cfg.UtilWindow > 0 {
		n.Util = metrics.NewLinkUtilMonitor(n.Sched, cfg.UtilWindow, n.switchPorts())
	}
	if cfg.BufferSamplePeriod > 0 {
		n.Buf = metrics.NewBufferSampler(n.Sched, cfg.BufferSamplePeriod, n.switchPorts())
	}
}

// switchPorts lists every switch output port, for the monitors.
func (n *Network) switchPorts() []metrics.PortRef {
	var out []metrics.PortRef
	for _, sid := range n.Topo.Switches() {
		for pi, op := range n.Switches[sid].Ports() {
			out = append(out, metrics.PortRef{Node: sid, Port: pi, Out: op})
		}
	}
	return out
}

// transportConfig derives the per-flow transport settings from the run
// config.
func (n *Network) transportConfig() transport.Config {
	cfg := &n.Cfg
	tc := transport.DefaultConfig(cfg.Transport)
	tc.InitCwnd = cfg.InitCwnd
	tc.DupAckThresh = cfg.DupAckThresh
	tc.TTL = cfg.TTL
	tc.DelayedAck = cfg.DelayedAck
	if cfg.Transport != transport.PFabric {
		tc.MinRTO = cfg.MinRTO
	}
	return tc
}

// StartFlow launches a flow of bytes from src to dst immediately,
// registering it with the collector. queryID is -1 for non-query flows.
// Returns the sender. It drives ad-hoc (test and tool) traffic on the
// sequential engine; Run's configured workloads instead replay a recorded
// schedule (see recordSchedule), which is also why StartFlow refuses
// sharded networks — a synchronous start has no single shard clock to be
// "immediate" on.
func (n *Network) StartFlow(src, dst packet.NodeID, bytes int64,
	class metrics.FlowClass, queryID int) *transport.Sender {
	if len(n.shards) > 1 {
		panic("netsim: StartFlow requires Shards <= 1")
	}
	if src == dst {
		panic("netsim: flow to self")
	}
	flowID := n.nextFlow
	n.nextFlow++

	srcHost := n.HostsByID[src]
	dstHost := n.HostsByID[dst]
	if srcHost == nil || dstHost == nil {
		panic(fmt.Sprintf("netsim: flow endpoints %d->%d are not hosts", src, dst))
	}

	tc := n.transportConfig()
	env := transport.Env{Sched: n.Sched, Pool: n.Pool}

	sEnv := env
	sEnv.Emit = srcHost.SendFn()
	snd := transport.NewSender(sEnv, tc, flowID, src, dst, bytes)

	rEnv := env
	rEnv.Emit = dstHost.SendFn()
	rcv := transport.NewReceiver(rEnv, tc, flowID, dst, bytes)

	n.Collector.FlowStarted(flowID, class, bytes, queryID)
	if n.Trace != nil {
		n.Trace.Record(trace.Event{
			T: n.Sched.Now(), Kind: trace.KindFlowStart, Node: src,
			Flow: flowID, Seq: -1, Detail: fmt.Sprintf("%s %dB -> %d", class, bytes, dst),
		})
	}
	rcv.OnComplete = func() {
		n.Collector.FlowDone(flowID)
		dstHost.RemoveReceiver(flowID)
		if n.Trace != nil {
			n.Trace.Record(trace.Event{
				T: n.Sched.Now(), Kind: trace.KindFlowDone, Node: dst,
				Flow: flowID, Seq: -1,
			})
		}
	}
	snd.OnComplete = func() {
		srcHost.RemoveSender(flowID)
	}

	srcHost.AddSender(snd)
	dstHost.AddReceiver(rcv)
	sh := n.shards[0]
	sh.senders = append(sh.senders, snd)
	if class == metrics.ClassLong {
		sh.longRx = append(sh.longRx, rcv)
	}
	if n.fluid == nil || !n.fluid.registerFlow(snd, rcv) {
		snd.Start()
	}
	return snd
}

// Run records the configured workloads' arrival schedule, replays it on the
// network for Duration+Drain — sequentially with one shard, under the
// conservative window protocol otherwise — and returns the results.
func (n *Network) Run() *Results {
	cfg := &n.Cfg
	n.installSchedule(recordSchedule(cfg, n.Topo.Hosts()))

	if n.Util != nil {
		n.Util.Start()
	}
	if n.Buf != nil {
		n.Buf.Start()
	}

	end := cfg.Duration + cfg.Drain
	if len(n.shards) == 1 {
		n.Sched.RunUntil(end)
	} else {
		n.runSharded(end)
	}
	return n.results(end)
}
