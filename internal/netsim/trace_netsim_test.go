package netsim

import (
	"bytes"
	"testing"

	"dibs/internal/eventq"
	"dibs/internal/trace"
)

func TestEventTraceRecordsRun(t *testing.T) {
	cfg := smallConfig()
	cfg.TraceEvents = true
	cfg.OneShot = &OneShot{At: eventq.Millisecond, Senders: 12, FlowsPerSender: 2, Bytes: 20_000}
	cfg.Duration = 30 * eventq.Millisecond
	cfg.Drain = 300 * eventq.Millisecond
	n := Build(cfg)
	r := n.Run()
	if n.Trace == nil {
		t.Fatal("trace recorder missing")
	}
	if n.Trace.Count(trace.KindFlowStart) != 24 || n.Trace.Count(trace.KindFlowDone) != 24 {
		t.Fatalf("flow lifecycle events: start=%d done=%d",
			n.Trace.Count(trace.KindFlowStart), n.Trace.Count(trace.KindFlowDone))
	}
	if n.Trace.Count(trace.KindDetour) != r.Detours {
		t.Fatalf("detour events %d != detour count %d", n.Trace.Count(trace.KindDetour), r.Detours)
	}
	if n.Trace.Count(trace.KindDeliver) != r.DeliveredData {
		t.Fatalf("deliver events %d != delivered %d", n.Trace.Count(trace.KindDeliver), r.DeliveredData)
	}
	// The log round-trips through JSONL.
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, n.Trace.Events()); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadJSONL(&buf)
	if err != nil || len(back) != len(n.Trace.Events()) {
		t.Fatalf("round trip: %v, %d events", err, len(back))
	}
	// Per-flow view: flow 0 has start, deliveries, done — in time order.
	f0 := trace.ByFlow(n.Trace.Events(), 0)
	if len(f0) < 3 {
		t.Fatalf("flow 0 events = %d", len(f0))
	}
	for i := 1; i < len(f0); i++ {
		if f0[i].T < f0[i-1].T {
			t.Fatal("trace not time ordered")
		}
	}
}
