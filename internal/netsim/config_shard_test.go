package netsim

import (
	"strings"
	"testing"
)

// validatePanic runs cfg.Validate and returns the panic message, or "" if
// it returned normally.
func validatePanic(t *testing.T, cfg Config) (msg string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			msg = r.(string)
		}
	}()
	cfg.Validate()
	return ""
}

// The sharding gate must name the specific offending options — all of
// them at once for the run-global instrumentation family — not just
// reject the config with a generic message.
func TestValidateShardingNamesOffenders(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(c *Config)
		want    []string // substrings the panic must contain
		wantNot []string // options that are off and must not be blamed
	}{
		{
			name:   "trace events",
			mutate: func(c *Config) { c.TraceEvents = true },
			want:   []string{"TraceEvents", "Shards <= 1"},
		},
		{
			name:    "packet tracing",
			mutate:  func(c *Config) { c.TraceEveryNth = 10 },
			want:    []string{"TraceEveryNth"},
			wantNot: []string{"TraceEvents,", "RecordTimeline"},
		},
		{
			name:   "timeline",
			mutate: func(c *Config) { c.RecordTimeline = true },
			want:   []string{"RecordTimeline"},
		},
		{
			name:   "util monitor",
			mutate: func(c *Config) { c.UtilWindow = 100 },
			want:   []string{"UtilWindow"},
		},
		{
			name:   "buffer monitor",
			mutate: func(c *Config) { c.BufferSamplePeriod = 100 },
			want:   []string{"BufferSamplePeriod"},
		},
		{
			name: "all instrumentation at once",
			mutate: func(c *Config) {
				c.TraceEvents = true
				c.TraceEveryNth = 10
				c.RecordTimeline = true
				c.UtilWindow = 100
				c.BufferSamplePeriod = 100
			},
			want: []string{"TraceEvents", "TraceEveryNth", "RecordTimeline", "UtilWindow", "BufferSamplePeriod"},
		},
		{
			name: "pfc",
			mutate: func(c *Config) {
				c.DIBS = false
				c.Buffer = BufferShared
				c.PFC = true
			},
			want:    []string{"PFC", "lookahead"},
			wantNot: []string{"TraceEvents"},
		},
		{
			name:   "zero link delay",
			mutate: func(c *Config) { c.LinkDelay = 0 },
			want:   []string{"LinkDelay", "lookahead"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig()
			cfg.Shards = 2
			tc.mutate(&cfg)
			msg := validatePanic(t, cfg)
			if msg == "" {
				t.Fatal("Validate accepted an unshardable config")
			}
			for _, w := range tc.want {
				if !strings.Contains(msg, w) {
					t.Errorf("panic %q does not name %q", msg, w)
				}
			}
			for _, w := range tc.wantNot {
				if strings.Contains(msg, w) {
					t.Errorf("panic %q blames %q, which is not set", msg, w)
				}
			}
		})
	}
}

func TestValidateShardingAcceptsCleanConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Shards = 4
	if msg := validatePanic(t, cfg); msg != "" {
		t.Fatalf("clean sharded config rejected: %s", msg)
	}
	// The same options are fine unsharded.
	cfg = smallConfig()
	cfg.TraceEvents = true
	cfg.RecordTimeline = true
	cfg.DIBS = false
	cfg.Buffer = BufferShared
	cfg.PFC = true
	if msg := validatePanic(t, cfg); msg != "" {
		t.Fatalf("unsharded instrumentation rejected: %s", msg)
	}
}
