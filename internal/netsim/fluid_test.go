package netsim

import (
	"fmt"
	"testing"

	"dibs/internal/eventq"
	"dibs/internal/metrics"
)

// fluidConfig returns a fast K=4 fat-tree config in the given mode with one
// long flow per adjacent host pair (32 flows total).
func fluidConfig(mode SimMode) Config {
	cfg := smallConfig()
	cfg.Mode = mode
	cfg.Long = &LongFlows{PerPair: 1}
	cfg.Duration = 100 * eventq.Millisecond
	cfg.Drain = 0
	return cfg
}

func TestFluidModeLongFlowsProgress(t *testing.T) {
	r := Build(fluidConfig(ModeFluid)).Run()
	if r.FluidBytes == 0 {
		t.Fatal("fluid mode delivered no rate-model bytes")
	}
	if r.FluidDemotions == 0 {
		t.Fatal("fluid mode admitted no flows")
	}
	// Pure fluid mode emits no packets for these flows at all.
	if r.DeliveredData != 0 {
		t.Fatalf("fluid mode delivered %d data packets, want 0", r.DeliveredData)
	}
	// K=4: 16 hosts -> 8 adjacent pairs x 2 directions.
	if len(r.LongGoodputs) != 16 {
		t.Fatalf("long flows = %d, want 16", len(r.LongGoodputs))
	}
	for i, g := range r.LongGoodputs {
		if g <= 0 {
			t.Fatalf("long flow %d made no progress", i)
		}
	}
	// Adjacent-pair long flows contend only at their own NICs (one flow
	// per direction per NIC), so the fair-share solver should give every
	// flow the same rate: Jain ~= 1.
	if r.JainIndex < 0.999 {
		t.Fatalf("Jain index = %.4f, want ~1 under exact fair sharing", r.JainIndex)
	}
}

func TestFluidModeFarCheaperThanPacket(t *testing.T) {
	packet := Build(fluidConfig(ModePacket))
	packet.Run()
	fl := Build(fluidConfig(ModeFluid))
	fl.Run()
	// The rate model replaces per-packet events with coarse ticks; for
	// long flows the event count collapses by orders of magnitude.
	if fl.Executed()*10 > packet.Executed() {
		t.Fatalf("fluid executed %d events vs packet %d, want >=10x fewer",
			fl.Executed(), packet.Executed())
	}
}

func TestHybridDemotesStableLongFlows(t *testing.T) {
	r := Build(fluidConfig(ModeHybrid)).Run()
	if r.FluidDemotions == 0 {
		t.Fatal("no long flow demoted to fluid despite stable cwnd")
	}
	if r.FluidBytes == 0 {
		t.Fatal("demoted flows delivered no rate-model bytes")
	}
	// Flows ran as packets first, so packet bytes flowed too.
	if r.DeliveredData == 0 {
		t.Fatal("hybrid run delivered no packet bytes")
	}
	if r.FluidFlows == 0 {
		t.Fatal("no flow still under rate custody at end of run")
	}
	for i, g := range r.LongGoodputs {
		if g <= 0 {
			t.Fatalf("long flow %d made no progress", i)
		}
	}
}

func TestHybridPromoteOnIncast(t *testing.T) {
	cfg := fluidConfig(ModeHybrid)
	// A low stability threshold demotes the long flows within a few
	// milliseconds (their NIC-bloated RTTs make window rollovers slow, so
	// the default 8 would take most of the run). The incast onto the last
	// host then finds them fluid; its edge port crosses the promotion
	// threshold, which must kick the 14<->15 long flow back to packet
	// fidelity.
	cfg.FluidStableWindows = 3
	cfg.OneShot = &OneShot{At: 60 * eventq.Millisecond, Senders: 12, FlowsPerSender: 2, Bytes: 20_000}
	cfg.Duration = 70 * eventq.Millisecond
	cfg.Drain = 200 * eventq.Millisecond
	r := Build(cfg).Run()
	if r.FluidDemotions == 0 {
		t.Fatal("no demotions before the burst")
	}
	if r.FluidPromotions == 0 {
		t.Fatal("incast burst promoted no fluid flow back to packets")
	}
	if r.QueriesDone != 1 {
		t.Fatalf("incast query incomplete: %s", r)
	}
}

func TestHybridByteConservationAcrossBoundary(t *testing.T) {
	cfg := smallConfig()
	cfg.Mode = ModeHybrid
	cfg.Duration = 400 * eventq.Millisecond
	cfg.Drain = 100 * eventq.Millisecond
	n := Build(cfg)
	hosts := n.Topo.Hosts()
	const total = 40 << 20 // 40 MB: demotes after the stable-cwnd threshold
	snd := n.StartFlow(hosts[0], hosts[15], total, metrics.ClassLong, -1)
	r := n.Run()
	if !snd.Done() {
		t.Fatalf("flow incomplete: %s", r)
	}
	if r.FluidDemotions != 1 {
		t.Fatalf("demotions = %d, want 1", r.FluidDemotions)
	}
	// Every byte was delivered exactly once: the receiver's cumulative
	// next-expected byte reached exactly the flow size, and the rate-model
	// credits it holds match the engine's delivered total — so the packet
	// phase delivered precisely the rest, with no byte double-counted or
	// lost at the hand-off boundary.
	rcv := n.fluid.cands[0].rcv
	if got := rcv.RcvNxt(); got != total {
		t.Fatalf("receiver advanced to %d bytes, want exactly %d", got, total)
	}
	if rcv.FluidBytes != int64(r.FluidBytes) {
		t.Fatalf("receiver fluid credits %d != engine delivered %d", rcv.FluidBytes, r.FluidBytes)
	}
	if r.FluidBytes == 0 || int64(r.FluidBytes) >= total {
		t.Fatalf("fluid bytes %d: hand-off never happened or packet phase delivered nothing (total %d)",
			r.FluidBytes, total)
	}
	// Packet-pool conservation must survive the hand-off.
	if r.PoolLive != 0 {
		t.Fatalf("pool live = %d after drained run", r.PoolLive)
	}
}

// fluidFingerprint summarizes everything a hybrid run computes.
func fluidFingerprint(r *Results) string {
	return fmt.Sprintf("%v|%d|%d|%d|%d|%d|%d|%.9g|%.9g|%v",
		r.SimTime, r.DeliveredData, r.FluidBytes, r.FluidDemotions, r.FluidPromotions,
		r.TotalDrops, r.Detours, r.QCT99, r.JainIndex, r.LongGoodputs)
}

func TestHybridDeterminism(t *testing.T) {
	mk := func() *Results {
		cfg := fluidConfig(ModeHybrid)
		cfg.Query = incastQuery(200, 8, 20_000)
		cfg.Duration = 60 * eventq.Millisecond
		cfg.Seed = 7
		return Build(cfg).Run()
	}
	a, b := fluidFingerprint(mk()), fluidFingerprint(mk())
	if a != b {
		t.Fatalf("hybrid runs differ:\n%s\n%s", a, b)
	}
}

func TestHybridEnginesAgree(t *testing.T) {
	mk := func(engine string) *Results {
		cfg := fluidConfig(ModeHybrid)
		cfg.Engine = engine
		cfg.Seed = 7
		return Build(cfg).Run()
	}
	a, b := fluidFingerprint(mk("heap")), fluidFingerprint(mk("wheel"))
	if a != b {
		t.Fatalf("heap and wheel hybrid runs differ:\n%s\n%s", a, b)
	}
}

// TestHybridFCTAgreement is the fidelity harness: background FCTs under
// hybrid mode must stay within 5% of the packet-mode reference at p50 and
// p99 (ISSUE: fluid-vs-packet divergence bound on bystander traffic).
//
// The workload sits in the regime the standing-queue abstraction models
// (DESIGN §9): NICs mark like the rest of the fabric, so the long flows
// hold a stationary DCTCP steady state at their NIC bottlenecks, and
// FluidMinBytes pins custody to the long flows alone — background traffic
// keeps packet fidelity in both runs and measures only how well the fold
// reproduces the long flows' footprint.
func TestHybridFCTAgreement(t *testing.T) {
	run := func(mode SimMode) *Results {
		cfg := smallConfig()
		cfg.Mode = mode
		cfg.HostMarkAtPkts = 20
		cfg.Long = &LongFlows{PerPair: 1}
		cfg.BGInterarrival = 20 * eventq.Millisecond
		cfg.FluidMinBytes = 1 << 32
		cfg.Duration = 200 * eventq.Millisecond
		cfg.Drain = 200 * eventq.Millisecond
		cfg.Seed = 11
		return Build(cfg).Run()
	}
	ref := run(ModePacket)
	hyb := run(ModeHybrid)
	if hyb.FluidDemotions == 0 {
		t.Fatal("hybrid run never engaged the rate model; agreement test is vacuous")
	}
	if ref.BGFlowsDone != hyb.BGFlowsDone {
		t.Fatalf("bg flows done: packet %d vs hybrid %d", ref.BGFlowsDone, hyb.BGFlowsDone)
	}
	within := func(name string, a, b float64) {
		t.Helper()
		if a == 0 {
			t.Fatalf("%s: packet reference is zero", name)
		}
		if d := absf(a-b) / a; d > 0.05 {
			t.Errorf("%s diverges %.1f%%: packet %.4fms vs hybrid %.4fms", name, d*100, a, b)
		}
	}
	within("short bg FCT p50", ref.ShortFCT50, hyb.ShortFCT50)
	within("short bg FCT p99", ref.ShortFCT99, hyb.ShortFCT99)
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
