package netsim

import (
	"math"
	"strings"
	"testing"

	"dibs/internal/eventq"
	"dibs/internal/switching"
)

func TestFiniteOr(t *testing.T) {
	if FiniteOr(math.NaN(), 7) != 7 {
		t.Fatal("NaN should map to default")
	}
	if FiniteOr(3.5, 7) != 3.5 {
		t.Fatal("finite value should pass through")
	}
}

func TestNetworkDropsExcludesEvictions(t *testing.T) {
	r := &Results{}
	r.Drops[switching.DropOverflow] = 10
	r.Drops[switching.DropEvicted] = 4
	r.TotalDrops = 14
	if r.NetworkDrops() != 10 {
		t.Fatalf("NetworkDrops = %d", r.NetworkDrops())
	}
}

func TestResultsStringSections(t *testing.T) {
	cfg := smallConfig()
	cfg.Long = &LongFlows{PerPair: 1}
	cfg.Query = incastQuery(200, 6, 10_000)
	cfg.BGInterarrival = 20 * eventq.Millisecond
	cfg.Duration = 40 * eventq.Millisecond
	cfg.Drain = 200 * eventq.Millisecond
	r := Build(cfg).Run()
	s := r.String()
	for _, want := range []string{"queries", "bg flows", "drops", "Jain"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q: %s", want, s)
		}
	}
}

func TestResultsSenderStatsAggregated(t *testing.T) {
	cfg := smallConfig()
	cfg.DIBS = false
	cfg.BufferPkts = 20
	cfg.OneShot = &OneShot{At: eventq.Millisecond, Senders: 12, FlowsPerSender: 2, Bytes: 20_000}
	cfg.Duration = 30 * eventq.Millisecond
	cfg.Drain = 500 * eventq.Millisecond
	r := Build(cfg).Run()
	// Tiny droptail buffers under incast force loss recovery.
	if r.Timeouts == 0 || r.Retransmits == 0 {
		t.Fatalf("expected recovery activity: %d timeouts %d retransmits", r.Timeouts, r.Retransmits)
	}
}
