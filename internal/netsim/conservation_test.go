package netsim

import (
	"testing"
	"testing/quick"

	"dibs/internal/eventq"
	"dibs/internal/metrics"
	"dibs/internal/workload"
)

// queuedPackets counts packets still sitting in switch buffers (output
// queues and, for CIOQ, VOQs).
func queuedPackets(n *Network) int {
	total := 0
	for _, sid := range n.Topo.Switches() {
		total += n.Switches[sid].QueuedPackets()
	}
	return total
}

// poolConserved checks the packet-pool conservation invariant after a fully
// drained run: every borrowed packet was returned on a terminal path
// (borrowed == returned). A leak names the offending packets — flow, kind,
// seq — via the pool's identity tracking; a double return or use of a
// recycled node is caught earlier by the pool itself, which panics with the
// packet and its generation counter.
func poolConserved(t *testing.T, n *Network) bool {
	t.Helper()
	if n.Pool.Live() == 0 {
		return true
	}
	t.Logf("pool: borrowed %d, returned %d, live %d", n.Pool.Borrowed(), n.Pool.Returned(), n.Pool.Live())
	for i, p := range n.Pool.Leaked() {
		if i >= 10 {
			t.Logf("... and %d more", n.Pool.Live()-10)
			break
		}
		t.Logf("leaked: %v (gen %d)", p, p.Gen())
	}
	return false
}

// Property: after a fully drained run, no packets remain queued anywhere,
// every started query completes, and the DIBS invariant holds: zero
// overflow drops.
func TestQuickDrainedRunConservation(t *testing.T) {
	f := func(seedRaw uint16, degRaw, respRaw uint8) bool {
		cfg := DefaultConfig()
		cfg.FatTreeK = 4
		cfg.Seed = int64(seedRaw) + 1
		cfg.Duration = 30 * eventq.Millisecond
		cfg.Drain = 700 * eventq.Millisecond
		cfg.BGInterarrival = 40 * eventq.Millisecond
		cfg.Query = &workload.QueryConfig{
			QPS:           400,
			Degree:        int(degRaw%12) + 2,
			ResponseBytes: int64(respRaw%30)*1000 + 2000,
		}
		n := Build(cfg)
		r := n.Run()
		if queuedPackets(n) != 0 {
			t.Logf("seed %d: %d packets still queued", cfg.Seed, queuedPackets(n))
			return false
		}
		if r.QueriesDone != r.QueriesStarted {
			t.Logf("seed %d: %d/%d queries", cfg.Seed, r.QueriesDone, r.QueriesStarted)
			return false
		}
		if r.Drops[0] != 0 { // overflow drops never happen under DIBS
			t.Logf("seed %d: overflow drops %d", cfg.Seed, r.Drops[0])
			return false
		}
		if !poolConserved(t, n) {
			t.Logf("seed %d: packet pool leaked", cfg.Seed)
			return false
		}
		// Every endpoint cleaned up: no leaked flows on any host.
		for _, h := range n.Topo.Hosts() {
			if n.HostsByID[h].ActiveFlows() != 0 {
				// Long-running background flows may legitimately still be
				// in flight; only incast flows are guaranteed done. Check
				// via collector instead.
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: delivered + dropped + still-queued + in-host-NICs accounts for
// every switch transmission: no packet is silently created or destroyed.
func TestQuickNoPacketLeaks(t *testing.T) {
	f := func(seedRaw uint16) bool {
		cfg := DefaultConfig()
		cfg.FatTreeK = 4
		cfg.Seed = int64(seedRaw) + 1
		cfg.BGInterarrival = 0
		cfg.Query = nil
		cfg.OneShot = &OneShot{
			At:             eventq.Millisecond,
			Senders:        10,
			FlowsPerSender: 2,
			Bytes:          20_000,
		}
		cfg.Duration = 20 * eventq.Millisecond
		cfg.Drain = 600 * eventq.Millisecond
		n := Build(cfg)
		r := n.Run()
		if r.QueriesDone != 1 {
			return false
		}
		// After full drain: nothing queued; every data packet the hosts
		// received was counted.
		if queuedPackets(n) != 0 {
			return false
		}
		// 20 flows x 20000B = 400000B; at least ceil/MSS = 280 data
		// packets must have been delivered (more with spurious rexmits).
		if r.DeliveredData < 280 {
			t.Logf("delivered only %d data packets", r.DeliveredData)
			return false
		}
		if !poolConserved(t, n) {
			return false
		}
		// Every pool return happened on a known terminal path: delivery
		// (data or ACK), a switch drop, or a NIC refusal. Anything else
		// would mean a packet was silently destroyed.
		accounted := uint64(r.DeliveredData) + r.Collector.DeliveredAcks +
			r.TotalDrops + r.HostNICDrops
		if r.PoolReturned != accounted {
			t.Logf("pool returned %d but terminal paths account for %d", r.PoolReturned, accounted)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: with DIBS disabled and infinite buffers, there are never drops
// nor detours, regardless of workload intensity.
func TestQuickInfiniteBufferNeverDrops(t *testing.T) {
	f := func(seedRaw uint16, degRaw uint8) bool {
		cfg := DefaultConfig()
		cfg.FatTreeK = 4
		cfg.Buffer = BufferInfinite
		cfg.DIBS = false
		cfg.Seed = int64(seedRaw) + 1
		cfg.Duration = 30 * eventq.Millisecond
		cfg.Drain = 500 * eventq.Millisecond
		cfg.BGInterarrival = 0
		cfg.Query = &workload.QueryConfig{
			QPS:           500,
			Degree:        int(degRaw%14) + 2,
			ResponseBytes: 20_000,
		}
		n := Build(cfg)
		r := n.Run()
		return r.TotalDrops == 0 && r.Detours == 0 && poolConserved(t, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestCollectorFlowAccounting cross-checks collector sample counts against
// flow records after a mixed run.
func TestCollectorFlowAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FatTreeK = 4
	cfg.Duration = 50 * eventq.Millisecond
	cfg.Drain = 500 * eventq.Millisecond
	cfg.BGInterarrival = 20 * eventq.Millisecond
	cfg.Query = &workload.QueryConfig{QPS: 300, Degree: 6, ResponseBytes: 10_000}
	n := Build(cfg)
	r := n.Run()

	doneBG, doneQuery := 0, 0
	r.Collector.EachFlow(func(f *metrics.FlowInfo) {
		if !f.Done() {
			return
		}
		switch f.Class {
		case metrics.ClassBackground:
			doneBG++
		case metrics.ClassQuery:
			doneQuery++
		}
	})
	if doneBG != r.BGFlowsDone {
		t.Fatalf("BG done: iterator %d vs results %d", doneBG, r.BGFlowsDone)
	}
	if r.Collector.BGFCTs.N() != doneBG {
		t.Fatalf("BG FCT samples %d vs flows %d", r.Collector.BGFCTs.N(), doneBG)
	}
	if doneQuery == 0 || r.QueriesDone == 0 {
		t.Fatal("no query flows completed")
	}
	if !poolConserved(t, n) {
		t.Fatal("packet pool leaked")
	}
}
