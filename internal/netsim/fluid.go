package netsim

import (
	"fmt"

	"dibs/internal/core"
	"dibs/internal/eventq"
	"dibs/internal/fluid"
	"dibs/internal/packet"
	"dibs/internal/queue"
	"dibs/internal/switching"
	"dibs/internal/transport"
)

// mode returns the effective simulation mode ("" normalizes to packet).
func (c *Config) mode() SimMode {
	if c.Mode == "" {
		return ModePacket
	}
	return c.Mode
}

// Defaulted fluid tunables (0 selects these).
func (c *Config) fluidTick() eventq.Time {
	if c.FluidTick > 0 {
		return c.FluidTick
	}
	return 100 * eventq.Microsecond
}

func (c *Config) fluidStableWindows() int {
	if c.FluidStableWindows > 0 {
		return c.FluidStableWindows
	}
	return 8
}

func (c *Config) fluidMinBytes() int64 {
	if c.FluidMinBytes > 0 {
		return c.FluidMinBytes
	}
	return 1 << 20
}

func (c *Config) fluidPromoteFrac() float64 {
	if c.FluidPromoteFrac > 0 {
		return c.FluidPromoteFrac
	}
	return 0.5
}

// Candidate fidelity states.
const (
	candPacket  uint8 = iota // full packet fidelity, demotable
	candQuiesce              // demotion requested, in-flight window draining
	candFluid                // under rate-model custody
	candDone                 // flow completed
)

// fluidCand is one hybrid-mode flow eligible for fluid custody.
type fluidCand struct {
	id       packet.FlowID
	src, dst packet.NodeID
	snd      *transport.Sender
	rcv      *transport.Receiver
	state    uint8
	path     []*fluid.Link // computed lazily at first demotion scan
}

// fluidState wires the fluid engine into one network: the per-link fluid
// views (indexed [node][port], host NICs at port 0), the hybrid demotion
// candidates, and the fidelity-boundary bookkeeping.
type fluidState struct {
	n   *Network
	eng *fluid.Engine

	links [][]*fluid.Link
	cands []*fluidCand
	// pendingRcv passes each flow's receiver from its creation event to
	// the sender's (the receiver event runs first; see installFlow).
	pendingRcv map[packet.FlowID]*transport.Receiver

	demotions uint64
}

// buildFluid assembles the fluid engine over the finished network. Every
// port gets a fluid link view; ticking starts immediately so ad-hoc
// (StartFlow) traffic participates without calling Run.
func (n *Network) buildFluid() {
	cfg := &n.Cfg
	fs := &fluidState{
		n:          n,
		eng:        fluid.NewEngine(n.Sched, cfg.fluidTick()),
		links:      make([][]*fluid.Link, n.Topo.NumNodes()),
		pendingRcv: make(map[packet.FlowID]*transport.Receiver),
	}
	// The standing queue a long packet flow would keep at a bottleneck.
	// DCTCP's instantaneous-threshold sawtooth oscillates between drain
	// and the mark, so its time-average occupancy — what a transiting
	// packet waits behind on average — is about half the marking
	// threshold (measured packet-mode switch queues here average ~K/2).
	mark := cfg.MarkAtPkts
	if mark <= 0 {
		if cfg.Buffer == BufferDropTail {
			mark = cfg.BufferPkts / 5
		} else {
			mark = 20
		}
	}
	standing := mark / 2
	if standing < 1 {
		standing = 1
	}
	promoteCap := cfg.BufferPkts
	if cfg.Buffer != BufferDropTail {
		promoteCap = 100
	}
	promote := int(cfg.fluidPromoteFrac() * float64(promoteCap))
	if promote < 1 {
		promote = 1
	}
	// NIC-bottlenecked flows keep their standing queue at the host queue;
	// with NIC marking on, DCTCP pins it around that threshold instead of
	// the switch one.
	hostStanding := standing
	if cfg.HostMarkAtPkts > 0 {
		if hostStanding = cfg.HostMarkAtPkts / 2; hostStanding < 1 {
			hostStanding = 1
		}
	}
	for _, hid := range n.Topo.Hosts() {
		// Host NICs share sender capacity among that host's flows but
		// never see transit incast; no promotion trigger there.
		fs.links[hid] = []*fluid.Link{fs.makeLink(n.HostsByID[hid].NIC, hostStanding, 0)}
	}
	for _, sid := range n.Topo.Switches() {
		ports := n.Switches[sid].Ports()
		ls := make([]*fluid.Link, len(ports))
		for pi, op := range ports {
			ls[pi] = fs.makeLink(op, standing, promote)
		}
		fs.links[sid] = ls
	}
	if cfg.mode() == ModeHybrid {
		fs.eng.OnTick = fs.scan
	}
	n.fluid = fs
	fs.eng.Start()
}

// makeLink registers op's fluid view with the engine.
func (fs *fluidState) makeLink(op *switching.OutPort, standing, promote int) *fluid.Link {
	l := &fluid.Link{
		CapBps:        op.RateBps(),
		QLen:          op.Q.Len,
		PktBytes:      func() uint64 { return op.RxBytes },
		SetFold:       op.SetFluid,
		StandingPkts:  standing,
		StandingDelay: op.SerializationTime(standing * (packet.DefaultMSS + packet.HeaderBytes)),
		PromotePkts:   promote,
	}
	if q, ok := op.Q.(interface{ SetFluid(*queue.FluidShare) }); ok {
		share := &queue.FluidShare{}
		q.SetFluid(share)
		l.Share = share
	}
	fs.eng.AddLink(l)
	return l
}

// fluidPath replicates the packet world's route for a flow: the host NIC,
// then each switch's flow-level ECMP choice (the same hash and per-switch
// seed switching.NewSwitch uses), down to the destination host.
func (fs *fluidState) fluidPath(id packet.FlowID, src, dst packet.NodeID) []*fluid.Link {
	n := fs.n
	links := []*fluid.Link{fs.links[src][0]}
	node := n.Topo.Ports(src)[0].Peer
	for hops := 0; node != dst; hops++ {
		if hops > 64 {
			panic("netsim: fluid path exceeds 64 hops (routing loop?)")
		}
		nhs := n.Topo.NextHops(node, dst)
		if len(nhs) == 0 {
			panic(fmt.Sprintf("netsim: fluid path %d->%d: no route at node %d", src, dst, node))
		}
		seed := core.FlowHash(packet.FlowID(node), 0xD1B5) | 1
		pi := int(nhs[core.FlowHash(id, seed)%uint64(len(nhs))])
		links = append(links, fs.links[node][pi])
		node = n.Topo.Ports(node)[pi].Peer
	}
	return links
}

// registerFlow hooks one flow into the fluid layer at sender-creation
// time. In pure fluid mode the flow goes straight under rate custody (the
// caller must NOT also Start the sender); in hybrid mode large flows
// become demotion candidates and start as packets. Returns true when the
// caller should skip snd.Start().
func (fs *fluidState) registerFlow(snd *transport.Sender, rcv *transport.Receiver) bool {
	cfg := &fs.n.Cfg
	c := &fluidCand{id: snd.Flow, src: snd.Src, dst: snd.Dst, snd: snd, rcv: rcv}
	switch cfg.mode() {
	case ModeFluid:
		fs.cands = append(fs.cands, c)
		snd.StartFluid()
		fs.admit(c, snd.Total)
		return true
	case ModeHybrid:
		if snd.Total >= cfg.fluidMinBytes() {
			fs.cands = append(fs.cands, c)
		}
		return false
	default:
		return false
	}
}

// scan is the hybrid demotion pass, run at the end of every engine tick:
// any candidate whose sender has held a stable cwnd long enough — and
// whose path is not currently hot — starts the quiesce hand-off.
func (fs *fluidState) scan() {
	cfg := &fs.n.Cfg
	k := cfg.fluidStableWindows()
	minBytes := cfg.fluidMinBytes()
	for _, c := range fs.cands {
		if c.state != candPacket {
			continue
		}
		if c.snd.Done() {
			c.state = candDone
			continue
		}
		if c.snd.StableWindows() < k || c.snd.Remaining() < minBytes {
			continue
		}
		if c.path == nil {
			c.path = fs.fluidPath(c.id, c.src, c.dst)
		}
		// Demoting into an incast-regime link would promote right back;
		// keep packet fidelity while any path link is hot.
		hot := false
		for _, l := range c.path {
			if l.Hot() {
				hot = true
				break
			}
		}
		if hot {
			continue
		}
		c.state = candQuiesce
		cand := c
		c.snd.StartFluidHandoff(func(remaining int64) {
			if remaining <= 0 {
				cand.state = candDone
				return
			}
			fs.admit(cand, remaining)
		})
	}
}

// admit places a candidate's remaining bytes under rate-model custody.
func (fs *fluidState) admit(c *fluidCand, remaining int64) {
	if c.path == nil {
		c.path = fs.fluidPath(c.id, c.src, c.dst)
	}
	fl := &fluid.Flow{ID: uint64(c.id), Path: c.path, Remaining: remaining}
	fl.OnDeliver = func(n int64) {
		// Receiver first (bytes arrive), then the sender's cumulative ack.
		c.rcv.FluidDeliver(n)
		c.snd.FluidAcked(n)
	}
	fl.OnComplete = func() { c.state = candDone }
	fl.OnPromote = func(rem int64) {
		c.state = candPacket
		c.snd.ResumeFromFluid()
	}
	c.state = candFluid
	fs.demotions++
	fs.eng.Admit(fl)
}
