package netsim

import (
	"testing"

	"dibs/internal/eventq"
)

func TestPacketSprayReordersButCompletes(t *testing.T) {
	cfg := smallConfig()
	cfg.DIBS = false
	cfg.PacketSpray = true
	cfg.OneShot = &OneShot{At: eventq.Millisecond, Senders: 12, FlowsPerSender: 2, Bytes: 20_000}
	cfg.Duration = 30 * eventq.Millisecond
	cfg.Drain = 500 * eventq.Millisecond
	r := Build(cfg).Run()
	if r.QueriesDone != 1 {
		t.Fatalf("spray incast incomplete: %s", r)
	}
	// Spraying cannot relieve the last hop: drops still occur.
	if r.TotalDrops == 0 {
		t.Fatalf("expected last-hop drops under spraying: %s", r)
	}
}

func TestDelayedAckRunCompletes(t *testing.T) {
	cfg := smallConfig()
	cfg.DelayedAck = true
	cfg.Query = incastQuery(200, 8, 20_000)
	cfg.Duration = 60 * eventq.Millisecond
	cfg.Drain = 300 * eventq.Millisecond
	r := Build(cfg).Run()
	if r.QueriesDone != r.QueriesStarted || r.QueriesDone == 0 {
		t.Fatalf("delayed-ack run incomplete: %s", r)
	}
	if r.NetworkDrops() != 0 {
		t.Fatalf("delayed-ack DIBS run dropped: %s", r)
	}
}
