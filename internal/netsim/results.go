package netsim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dibs/internal/eventq"
	"dibs/internal/metrics"
	"dibs/internal/stats"
	"dibs/internal/switching"
	"dibs/internal/transport"
)

// Results summarizes one run. Times are milliseconds, matching the paper's
// axes. Percentiles are NaN when no sample exists.
type Results struct {
	Cfg     Config
	SimTime eventq.Time

	// Query traffic (paper metric: 99th percentile QCT).
	QueriesStarted, QueriesDone int
	QCT50, QCT99, QCTMax        float64

	// Background traffic (paper metric: 99th percentile FCT of 1-10KB
	// flows).
	BGFlowsDone            int
	ShortFCT50, ShortFCT99 float64
	BGFCT99                float64

	// Loss and detouring.
	Drops         [switching.NumDropReasons]uint64
	TotalDrops    uint64
	Detours       uint64
	DetouredFrac  float64
	MaxDetours    int
	DetourP99     float64
	HostNICDrops  uint64
	DeliveredData uint64

	// Sender-side recovery activity, aggregated over all flows.
	Timeouts, Retransmits, FastRecovers int

	// PFCPauses counts Ethernet flow-control PAUSE frames (PFC runs).
	PFCPauses uint64

	// Fairness (§5.6): per-long-flow goodput in bits/s and Jain's index.
	LongGoodputs []float64
	JainIndex    float64

	// Hybrid/fluid mode (DESIGN §9): bytes delivered by the rate model
	// and the fidelity-boundary crossing counts. All zero in packet mode.
	FluidBytes      uint64
	FluidDemotions  uint64
	FluidPromotions uint64
	// FluidFlows is the number of flows still under rate custody at the
	// end of the run (unfinished long flows).
	FluidFlows int

	// Packet-pool accounting (DESIGN §9 memory model): every packet the
	// transports borrow must be returned on a terminal path. PoolLive is
	// borrowed − returned at the end of the run — packets still buffered
	// in queues or in flight when the run was cut off (0 for drained runs).
	PoolBorrowed uint64
	PoolReturned uint64
	PoolLive     int

	// Collector retains the full samples for CDF-level analysis.
	Collector *metrics.Collector
}

func (n *Network) results(end eventq.Time) *Results {
	if len(n.shards) > 1 {
		// Reduce the per-shard collectors into one. MergeFrom is
		// order-independent across shards, so the merged aggregates are
		// byte-identical to what a 1-shard run accumulates directly.
		merged := metrics.NewCollector(n.Sched)
		for _, sh := range n.shards {
			merged.MergeFrom(sh.coll)
		}
		n.Collector = merged
	}
	c := n.Collector
	r := &Results{
		Cfg:            n.Cfg,
		SimTime:        end,
		QueriesStarted: c.StartedQueries(),
		QueriesDone:    c.CompletedQueries(),
		QCT50:          c.QCTs.Percentile(50),
		QCT99:          c.QCTs.Percentile(99),
		QCTMax:         c.QCTs.Max(),
		BGFlowsDone:    c.CompletedFlows(metrics.ClassBackground),
		ShortFCT50:     c.ShortBGFCTs.Percentile(50),
		ShortFCT99:     c.ShortBGFCTs.Percentile(99),
		BGFCT99:        c.BGFCTs.Percentile(99),
		Drops:          c.Drops,
		TotalDrops:     c.TotalDrops(),
		Detours:        c.Detours,
		DetouredFrac:   c.DetouredFraction(),
		MaxDetours:     c.MaxDetours,
		DetourP99:      c.DetourCounts.Percentile(99),
		DeliveredData:  c.DeliveredData,
		Collector:      c,
	}
	for _, h := range n.Topo.Hosts() {
		r.HostNICDrops += n.HostsByID[h].NICDrops
	}
	var longRx []*transport.Receiver
	var emitted, adopted uint64
	for _, sh := range n.shards {
		for _, s := range sh.senders {
			r.Timeouts += s.Timeouts
			r.Retransmits += s.Retransmits
			r.FastRecovers += s.FastRecovers
		}
		longRx = append(longRx, sh.longRx...)
		// Cross-shard hops re-home packets: a Free into the source arena
		// at emission plus a Get from the destination arena at delivery.
		// Cancelling those out of the totals leaves exactly the borrows
		// and returns a 1-shard run would record — including a packet
		// caught mid-boundary at the end of the run, whose emission-side
		// return is cancelled but whose adoption never happened, so it
		// still counts as live.
		r.PoolBorrowed += sh.pool.Borrowed()
		r.PoolReturned += sh.pool.Returned()
		emitted += sh.emitted
		adopted += sh.adopted
	}
	r.PoolBorrowed -= adopted
	r.PoolReturned -= emitted
	r.PoolLive = int(r.PoolBorrowed - r.PoolReturned)
	r.PFCPauses = n.PFCPauses()
	if n.fluid != nil {
		r.FluidBytes = n.fluid.eng.DeliveredBytes
		r.FluidDemotions = n.fluid.demotions
		r.FluidPromotions = n.fluid.eng.Promotions
		for _, c := range n.fluid.cands {
			if c.state == candFluid {
				r.FluidFlows++
			}
		}
	}
	if len(longRx) > 0 {
		// Flow-ID order, so the goodput vector is identical for every
		// shard count (shard-local append order is creation order, which
		// is ID order within a shard but interleaves across shards).
		sort.Slice(longRx, func(i, j int) bool { return longRx[i].Flow < longRx[j].Flow })
		secs := end.Seconds()
		for _, rx := range longRx {
			r.LongGoodputs = append(r.LongGoodputs, float64(rx.RcvNxt())*8/secs)
		}
		r.JainIndex = stats.Jain(r.LongGoodputs)
	}
	return r
}

// NetworkDrops returns drops excluding pFabric evictions (which are part of
// that design's normal operation).
func (r *Results) NetworkDrops() uint64 {
	return r.TotalDrops - r.Drops[switching.DropEvicted]
}

// String renders a compact human-readable summary.
func (r *Results) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim %v: ", r.SimTime)
	if r.QueriesStarted > 0 {
		fmt.Fprintf(&b, "queries %d/%d done, QCT p50/p99 = %.2f/%.2f ms; ",
			r.QueriesDone, r.QueriesStarted, r.QCT50, r.QCT99)
	}
	if r.BGFlowsDone > 0 {
		fmt.Fprintf(&b, "bg flows %d, short FCT p99 = %.2f ms; ", r.BGFlowsDone, r.ShortFCT99)
	}
	fmt.Fprintf(&b, "drops %d (overflow %d, no-detour %d, ttl %d, evicted %d), detours %d",
		r.TotalDrops, r.Drops[switching.DropOverflow], r.Drops[switching.DropNoDetour],
		r.Drops[switching.DropTTL], r.Drops[switching.DropEvicted], r.Detours)
	if len(r.LongGoodputs) > 0 {
		fmt.Fprintf(&b, "; Jain %.3f over %d long flows", r.JainIndex, len(r.LongGoodputs))
	}
	return b.String()
}

// FiniteOr returns v, or def when v is NaN (for rendering).
func FiniteOr(v, def float64) float64 {
	if math.IsNaN(v) {
		return def
	}
	return v
}
