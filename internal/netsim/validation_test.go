package netsim

import (
	"testing"

	"dibs/internal/eventq"
	"dibs/internal/metrics"
	"dibs/internal/model"
)

// TestIncastMatchesAnalyticBound checks the simulator against the
// closed-form ideal: with infinite buffers, a one-shot incast must complete
// no faster than the last-hop serialization bound and within a modest
// factor above it.
func TestIncastMatchesAnalyticBound(t *testing.T) {
	cfg := smallConfig()
	cfg.Buffer = BufferInfinite
	cfg.DIBS = false
	cfg.ForwardJitter = 0
	const senders, per = 12, 2
	const bytes = 20_000
	cfg.OneShot = &OneShot{At: eventq.Millisecond, Senders: senders, FlowsPerSender: per, Bytes: bytes}
	cfg.Duration = 10 * eventq.Millisecond
	cfg.Drain = 500 * eventq.Millisecond
	r := Build(cfg).Run()
	if r.QueriesDone != 1 {
		t.Fatalf("incast incomplete: %s", r)
	}
	baseRTT := model.BaseRTT(6, cfg.LinkRate, cfg.LinkDelay, model.DefaultWire)
	ideal := model.IncastIdealQCT(senders*per, bytes, cfg.LinkRate, baseRTT, model.DefaultWire)
	got := eventq.Time(r.QCT99 * float64(eventq.Millisecond))
	if float64(got) < 0.9*float64(ideal) {
		t.Fatalf("simulated QCT %v beats the physical estimate %v by >10%% — simulator bug", got, ideal)
	}
	if got > 2*ideal {
		t.Fatalf("simulated QCT %v more than 2x the ideal %v — unexplained stall", got, ideal)
	}
	// DIBS must land in the same corridor (near-optimal claim, §5.2).
	cfg.Buffer = BufferDropTail
	cfg.DIBS = true
	r2 := Build(cfg).Run()
	got2 := eventq.Time(r2.QCT99 * float64(eventq.Millisecond))
	if float64(got2) < 0.9*float64(ideal) || got2 > 2*ideal {
		t.Fatalf("DIBS QCT %v outside [0.9x, 2x] of %v", got2, ideal)
	}
}

// TestSingleFlowMatchesSlowStartModel checks an isolated transfer against
// the slow-start completion-time model.
func TestSingleFlowMatchesSlowStartModel(t *testing.T) {
	cfg := smallConfig()
	cfg.ForwardJitter = 0
	cfg.Duration = 10 * eventq.Millisecond
	cfg.Drain = eventq.Second
	n := Build(cfg)
	hosts := n.Topo.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1] // cross-pod: 6 hops
	const bytes = 500_000
	n.StartFlow(src, dst, bytes, metrics.ClassBackground, -1)
	r := n.Run()
	f := r.Collector.Flow(0)
	if f == nil || !f.Done() {
		t.Fatal("flow did not complete")
	}
	rtt := model.BaseRTT(6, cfg.LinkRate, cfg.LinkDelay, model.DefaultWire)
	ideal := model.SlowStartIdealFCT(bytes, cfg.LinkRate, rtt, cfg.InitCwnd, model.DefaultWire)
	got := f.FCT()
	if float64(got) < 0.9*float64(ideal) {
		t.Fatalf("FCT %v beats the slow-start estimate %v by >10%%", got, ideal)
	}
	if got > 3*ideal {
		t.Fatalf("FCT %v more than 3x ideal %v", got, ideal)
	}
}

// TestLongFlowReachesLineRate checks that a single unimpeded long flow
// saturates its 1Gbps path (goodput > 90% of fair share).
func TestLongFlowReachesLineRate(t *testing.T) {
	cfg := smallConfig()
	cfg.Duration = 100 * eventq.Millisecond
	cfg.Drain = 0
	n := Build(cfg)
	hosts := n.Topo.Hosts()
	n.StartFlow(hosts[0], hosts[15], 1<<40, metrics.ClassLong, -1)
	r := n.Run()
	if len(r.LongGoodputs) != 1 {
		t.Fatal("missing goodput sample")
	}
	share := model.FairShare(cfg.LinkRate, 1)
	if r.LongGoodputs[0] < 0.9*share {
		t.Fatalf("goodput %.0f < 90%% of line rate %.0f", r.LongGoodputs[0], share)
	}
	// Payload goodput cannot exceed line rate.
	if r.LongGoodputs[0] > share {
		t.Fatalf("goodput %.0f exceeds line rate", r.LongGoodputs[0])
	}
}

// TestTwoFlowsSplitFairShare checks the congestion-controlled equilibrium
// against the fair-share model.
func TestTwoFlowsSplitFairShare(t *testing.T) {
	cfg := smallConfig()
	cfg.Duration = 150 * eventq.Millisecond
	cfg.Drain = 0
	n := Build(cfg)
	hosts := n.Topo.Hosts()
	// Two flows into the same destination host: its access link is the
	// bottleneck.
	n.StartFlow(hosts[0], hosts[15], 1<<40, metrics.ClassLong, -1)
	n.StartFlow(hosts[1], hosts[15], 1<<40, metrics.ClassLong, -1)
	r := n.Run()
	share := model.FairShare(cfg.LinkRate, 2)
	for i, g := range r.LongGoodputs {
		if g < 0.6*share || g > 1.4*share {
			t.Fatalf("flow %d goodput %.0f outside 60-140%% of fair share %.0f (jain %.3f)",
				i, g, share, r.JainIndex)
		}
	}
}
