package netsim

import (
	"math"
	"testing"

	"dibs/internal/eventq"
	"dibs/internal/metrics"
	"dibs/internal/switching"
	"dibs/internal/transport"
	"dibs/internal/workload"
)

// smallConfig returns a fast K=4 fat-tree configuration with no workload;
// tests add what they need.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.FatTreeK = 4
	cfg.Duration = 50 * eventq.Millisecond
	cfg.Drain = 100 * eventq.Millisecond
	cfg.BGInterarrival = 0
	cfg.Query = nil
	return cfg
}

func incastQuery(qps float64, degree int, bytes int64) *workload.QueryConfig {
	return &workload.QueryConfig{QPS: qps, Degree: degree, ResponseBytes: bytes}
}

func TestBuildTopologies(t *testing.T) {
	for _, mk := range []func(c *Config){
		func(c *Config) { c.Topo = TopoFatTree; c.FatTreeK = 4 },
		func(c *Config) { c.Topo = TopoClick },
		func(c *Config) { c.Topo = TopoLinear; c.LinearSwitches = 3; c.LinearHostsPer = 2 },
		func(c *Config) {
			c.Topo = TopoJellyfish
			c.JellyfishSwitches = 6
			c.JellyfishDegree = 3
			c.JellyfishHostsPer = 2
		},
		func(c *Config) { c.Topo = TopoHyperX; c.HyperXX = 2; c.HyperXY = 2; c.HyperXHostsPer = 2 },
	} {
		cfg := smallConfig()
		mk(&cfg)
		n := Build(cfg)
		if len(n.Topo.Hosts()) < 2 {
			t.Fatalf("%s: too few hosts", cfg.Topo)
		}
		// Every node has a handler; switches and hosts are disjoint.
		for _, hid := range n.Topo.Hosts() {
			if n.HostsByID[hid] == nil || n.Switches[hid] != nil {
				t.Fatalf("%s: host table broken", cfg.Topo)
			}
		}
		for _, sid := range n.Topo.Switches() {
			if n.Switches[sid] == nil || n.HostsByID[sid] != nil {
				t.Fatalf("%s: switch table broken", cfg.Topo)
			}
		}
	}
}

func TestSingleFlowDelivers(t *testing.T) {
	cfg := smallConfig()
	n := Build(cfg)
	hosts := n.Topo.Hosts()
	n.StartFlow(hosts[0], hosts[15], 100_000, metrics.ClassBackground, -1)
	r := n.Run()
	if r.Collector.CompletedFlows(metrics.ClassBackground) != 1 {
		t.Fatalf("flow did not complete: %s", r)
	}
	if r.TotalDrops != 0 {
		t.Fatalf("unloaded network dropped packets: %s", r)
	}
	if r.Detours != 0 {
		t.Fatal("unloaded network detoured packets (DIBS must be invisible when idle)")
	}
	// Flow endpoints cleaned up.
	if n.HostsByID[hosts[0]].ActiveFlows()+n.HostsByID[hosts[15]].ActiveFlows() != 0 {
		t.Fatal("endpoints leaked")
	}
}

func TestIncastDIBSVersusDroptail(t *testing.T) {
	run := func(dibs bool) *Results {
		cfg := smallConfig()
		cfg.DIBS = dibs
		cfg.Duration = 30 * eventq.Millisecond
		cfg.Drain = 300 * eventq.Millisecond
		cfg.OneShot = &OneShot{At: eventq.Millisecond, Senders: 12, FlowsPerSender: 2, Bytes: 20_000}
		return Build(cfg).Run()
	}
	dt := run(false)
	db := run(true)
	if dt.QueriesDone != 1 || db.QueriesDone != 1 {
		t.Fatalf("incast incomplete: droptail %s / dibs %s", dt, db)
	}
	// 24 flows x 10-pkt initial windows >> 100-pkt buffer: droptail must
	// drop, DIBS must not.
	if dt.Drops[switching.DropOverflow] == 0 {
		t.Fatalf("droptail saw no overflow drops: %s", dt)
	}
	if db.NetworkDrops() != 0 {
		t.Fatalf("DIBS dropped packets: %s", db)
	}
	if db.Detours == 0 {
		t.Fatal("DIBS never detoured under incast")
	}
	// The headline result: DIBS completes the query faster (droptail
	// takes timeouts).
	if !(db.QCT99 < dt.QCT99) {
		t.Fatalf("DIBS QCT99 %.2f !< droptail QCT99 %.2f", db.QCT99, dt.QCT99)
	}
}

func TestIncastDIBSMatchesInfiniteBuffer(t *testing.T) {
	run := func(mode BufferMode, dibs bool) *Results {
		cfg := smallConfig()
		cfg.Buffer = mode
		cfg.DIBS = dibs
		cfg.Duration = 30 * eventq.Millisecond
		cfg.Drain = 300 * eventq.Millisecond
		cfg.OneShot = &OneShot{At: eventq.Millisecond, Senders: 12, FlowsPerSender: 2, Bytes: 20_000}
		return Build(cfg).Run()
	}
	inf := run(BufferInfinite, false)
	db := run(BufferDropTail, true)
	if inf.TotalDrops != 0 {
		t.Fatalf("infinite buffer dropped: %s", inf)
	}
	// §5.2: DIBS achieves near-optimal QCT (within ~25% here).
	if db.QCT99 > inf.QCT99*1.25+1 {
		t.Fatalf("DIBS QCT %.2fms far from infinite-buffer QCT %.2fms", db.QCT99, inf.QCT99)
	}
}

func TestQueryWorkloadCompletes(t *testing.T) {
	cfg := smallConfig()
	cfg.Query = incastQuery(200, 8, 20_000)
	cfg.Duration = 100 * eventq.Millisecond
	cfg.Drain = 300 * eventq.Millisecond
	r := Build(cfg).Run()
	if r.QueriesStarted == 0 {
		t.Fatal("no queries generated")
	}
	if r.QueriesDone != r.QueriesStarted {
		t.Fatalf("queries %d/%d done: %s", r.QueriesDone, r.QueriesStarted, r)
	}
	if math.IsNaN(r.QCT99) {
		t.Fatal("no QCT recorded")
	}
	if r.NetworkDrops() != 0 {
		t.Fatalf("DIBS run dropped: %s", r)
	}
}

func TestBackgroundWorkloadCompletes(t *testing.T) {
	cfg := smallConfig()
	cfg.BGInterarrival = 20 * eventq.Millisecond
	cfg.Duration = 100 * eventq.Millisecond
	cfg.Drain = 500 * eventq.Millisecond
	r := Build(cfg).Run()
	if r.BGFlowsDone == 0 {
		t.Fatal("no background flows completed")
	}
	if r.Collector.BGFCTs.N() != r.BGFlowsDone {
		t.Fatal("FCT sample count mismatch")
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Results {
		cfg := smallConfig()
		cfg.Query = incastQuery(300, 8, 20_000)
		cfg.BGInterarrival = 40 * eventq.Millisecond
		cfg.Duration = 60 * eventq.Millisecond
		cfg.Seed = 42
		return Build(cfg).Run()
	}
	a, b := mk(), mk()
	if a.QCT99 != b.QCT99 || a.TotalDrops != b.TotalDrops || a.Detours != b.Detours ||
		a.BGFlowsDone != b.BGFlowsDone || a.DeliveredData != b.DeliveredData {
		t.Fatalf("runs differ:\n%s\n%s", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	mk := func(seed int64) *Results {
		cfg := smallConfig()
		cfg.Query = incastQuery(300, 8, 20_000)
		cfg.Duration = 60 * eventq.Millisecond
		cfg.Seed = seed
		return Build(cfg).Run()
	}
	a, b := mk(1), mk(2)
	if a.DeliveredData == b.DeliveredData && a.QCT99 == b.QCT99 {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestFairnessLongFlows(t *testing.T) {
	cfg := smallConfig()
	cfg.Long = &LongFlows{PerPair: 2}
	cfg.Duration = 100 * eventq.Millisecond
	cfg.Drain = 0
	r := Build(cfg).Run()
	// K=4: 16 hosts -> 8 pairs x 2 flows x 2 directions = 32 flows.
	if len(r.LongGoodputs) != 32 {
		t.Fatalf("long flows = %d, want 32", len(r.LongGoodputs))
	}
	if r.JainIndex < 0.9 {
		t.Fatalf("Jain index = %.3f, want > 0.9 (§5.6)", r.JainIndex)
	}
	for _, g := range r.LongGoodputs {
		if g <= 0 {
			t.Fatal("a long flow made no progress")
		}
	}
}

func TestPFabricRunCompletes(t *testing.T) {
	cfg := smallConfig()
	cfg.Buffer = BufferPFabric
	cfg.BufferPkts = 24
	cfg.MarkAtPkts = 0
	cfg.DIBS = false
	cfg.Transport = transport.PFabric
	cfg.Query = incastQuery(200, 8, 20_000)
	cfg.Duration = 50 * eventq.Millisecond
	cfg.Drain = 300 * eventq.Millisecond
	r := Build(cfg).Run()
	if r.QueriesDone == 0 {
		t.Fatalf("pFabric completed no queries: %s", r)
	}
	if r.QueriesDone != r.QueriesStarted {
		t.Fatalf("pFabric queries %d/%d: %s", r.QueriesDone, r.QueriesStarted, r)
	}
}

func TestSharedBufferAbsorbsModerateIncast(t *testing.T) {
	cfg := smallConfig()
	cfg.Buffer = BufferShared
	cfg.DIBS = false
	cfg.OneShot = &OneShot{At: eventq.Millisecond, Senders: 12, FlowsPerSender: 2, Bytes: 20_000}
	cfg.Duration = 30 * eventq.Millisecond
	cfg.Drain = 300 * eventq.Millisecond
	r := Build(cfg).Run()
	// §5.5.2: with DBA the whole 1133-packet pool absorbs the burst
	// without loss even without DIBS.
	if r.TotalDrops != 0 {
		t.Fatalf("DBA dropped under moderate incast: %s", r)
	}
	if r.QueriesDone != 1 {
		t.Fatalf("incast incomplete: %s", r)
	}
}

func TestTTLExhaustionForcesDrops(t *testing.T) {
	// A tiny TTL starves detoured packets (§5.5.3): with heavy incast
	// and TTL 8, DIBS must record TTL drops.
	cfg := smallConfig()
	cfg.TTL = 8
	cfg.OneShot = &OneShot{At: eventq.Millisecond, Senders: 15, FlowsPerSender: 4, Bytes: 20_000}
	cfg.Duration = 50 * eventq.Millisecond
	cfg.Drain = 500 * eventq.Millisecond
	r := Build(cfg).Run()
	if r.Drops[switching.DropTTL] == 0 {
		t.Fatalf("no TTL drops with TTL=8 under heavy incast: %s", r)
	}
}

func TestTraceCapturesDetouredPath(t *testing.T) {
	cfg := smallConfig()
	cfg.TraceEveryNth = 1
	cfg.OneShot = &OneShot{At: eventq.Millisecond, Senders: 12, FlowsPerSender: 2, Bytes: 20_000}
	cfg.Duration = 30 * eventq.Millisecond
	cfg.Drain = 300 * eventq.Millisecond
	r := Build(cfg).Run()
	if r.MaxDetours == 0 {
		t.Skip("no detours this seed")
	}
	if len(r.Collector.BestTrace) == 0 {
		t.Fatal("no trace captured despite detours")
	}
	detoured := false
	for _, h := range r.Collector.BestTrace {
		if h.Detoured {
			detoured = true
		}
	}
	if !detoured {
		t.Fatal("best trace records no detour hops")
	}
}

func TestMonitorsCollect(t *testing.T) {
	cfg := smallConfig()
	cfg.UtilWindow = 5 * eventq.Millisecond
	cfg.BufferSamplePeriod = 5 * eventq.Millisecond
	cfg.RecordTimeline = true
	cfg.OneShot = &OneShot{At: eventq.Millisecond, Senders: 12, FlowsPerSender: 2, Bytes: 20_000}
	cfg.Duration = 30 * eventq.Millisecond
	cfg.Drain = 100 * eventq.Millisecond
	n := Build(cfg)
	r := n.Run()
	if n.Util == nil || len(n.Util.Windows) == 0 {
		t.Fatal("no utilization windows")
	}
	if n.Buf == nil || len(n.Buf.Snapshots) == 0 {
		t.Fatal("no buffer snapshots")
	}
	if r.Detours > 0 && len(r.Collector.DetourTimeline) == 0 {
		t.Fatal("timeline empty despite detours")
	}
	// Hot-link analysis runs.
	hf := n.Util.HotFractions(0.9)
	if len(hf) != len(n.Util.Windows) {
		t.Fatal("hot fraction length mismatch")
	}
}

func TestOversubscribedBuild(t *testing.T) {
	cfg := smallConfig()
	cfg.Oversub = 4
	cfg.OneShot = &OneShot{At: eventq.Millisecond, Senders: 8, FlowsPerSender: 1, Bytes: 20_000}
	cfg.Duration = 30 * eventq.Millisecond
	cfg.Drain = 500 * eventq.Millisecond
	r := Build(cfg).Run()
	if r.QueriesDone != 1 {
		t.Fatalf("oversubscribed incast incomplete: %s", r)
	}
}

func TestConfigValidationPanics(t *testing.T) {
	cases := []func(c *Config){
		func(c *Config) { c.LinkRate = 0 },
		func(c *Config) { c.BufferPkts = 0 },
		func(c *Config) { c.Buffer = BufferShared; c.SharedPoolPkts = 0 },
		func(c *Config) { c.Buffer = BufferPFabric; c.DIBS = true },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.TTL = 1 },
		func(c *Config) { c.HostQueuePkts = 0 },
		func(c *Config) { c.Topo = "mesh" },
		func(c *Config) { c.Policy = "psychic" },
	}
	for i, mutate := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			cfg := smallConfig()
			mutate(&cfg)
			Build(cfg)
		}()
	}
}

func TestDetourPoliciesAllRun(t *testing.T) {
	for _, pol := range []DetourPolicy{PolicyRandom, PolicyLoadAware, PolicyFlowBased, PolicyProbabilistic} {
		cfg := smallConfig()
		cfg.Policy = pol
		cfg.OneShot = &OneShot{At: eventq.Millisecond, Senders: 12, FlowsPerSender: 2, Bytes: 20_000}
		cfg.Duration = 30 * eventq.Millisecond
		cfg.Drain = 300 * eventq.Millisecond
		r := Build(cfg).Run()
		if r.QueriesDone != 1 {
			t.Fatalf("%s: incast incomplete: %s", pol, r)
		}
		if r.NetworkDrops() != 0 {
			t.Fatalf("%s: dropped: %s", pol, r)
		}
	}
}

func TestResultsString(t *testing.T) {
	cfg := smallConfig()
	cfg.Query = incastQuery(200, 8, 20_000)
	r := Build(cfg).Run()
	if s := r.String(); s == "" {
		t.Fatal("empty results string")
	}
}

func TestStartFlowPanics(t *testing.T) {
	n := Build(smallConfig())
	hosts := n.Topo.Hosts()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("self-flow should panic")
			}
		}()
		n.StartFlow(hosts[0], hosts[0], 100, metrics.ClassBackground, -1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("switch endpoint should panic")
			}
		}()
		n.StartFlow(n.Topo.Switches()[0], hosts[0], 100, metrics.ClassBackground, -1)
	}()
}

func TestDataMiningBackgroundRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.BGDist = BGDataMining
	cfg.BGInterarrival = 10 * eventq.Millisecond
	cfg.Duration = 60 * eventq.Millisecond
	cfg.Drain = 400 * eventq.Millisecond
	r := Build(cfg).Run()
	if r.BGFlowsDone == 0 {
		t.Fatal("no data-mining background flows completed")
	}
	// Unknown distribution names are rejected.
	defer func() {
		if recover() == nil {
			t.Error("bogus distribution should panic")
		}
	}()
	bad := smallConfig()
	bad.BGDist = "cachefollower"
	Build(bad)
}
