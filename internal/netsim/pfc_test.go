package netsim

import (
	"testing"

	"dibs/internal/eventq"
)

func pfcConfig() Config {
	cfg := smallConfig()
	cfg.DIBS = false
	cfg.Buffer = BufferShared
	cfg.PFC = true
	cfg.PFCXoff = 50
	cfg.PFCXon = 40
	return cfg
}

func TestPFCAbsorbsIncastWithoutLoss(t *testing.T) {
	cfg := pfcConfig()
	cfg.OneShot = &OneShot{At: eventq.Millisecond, Senders: 12, FlowsPerSender: 2, Bytes: 20_000}
	cfg.Duration = 30 * eventq.Millisecond
	cfg.Drain = 500 * eventq.Millisecond
	r := Build(cfg).Run()
	if r.QueriesDone != 1 {
		t.Fatalf("incast incomplete under PFC: %s", r)
	}
	if r.TotalDrops != 0 {
		t.Fatalf("PFC should be lossless for this burst: %s", r)
	}
	if r.PFCPauses == 0 {
		t.Fatal("incast should have triggered PAUSE frames")
	}
	if r.Detours != 0 {
		t.Fatal("PFC run must not detour")
	}
}

func TestPFCVersusDIBSHeadOfLineBlocking(t *testing.T) {
	// Under incast plus background, PFC's cascading pauses delay innocent
	// flows sharing paused links (head-of-line blocking); DIBS moves the
	// excess away instead. Both avoid loss; compare victim FCT.
	run := func(pfc bool) *Results {
		var cfg Config
		if pfc {
			cfg = pfcConfig()
		} else {
			cfg = smallConfig()
		}
		cfg.Seed = 5
		cfg.BGInterarrival = 10 * eventq.Millisecond
		cfg.OneShot = &OneShot{At: 5 * eventq.Millisecond, Senders: 12, FlowsPerSender: 3, Bytes: 20_000}
		cfg.Duration = 60 * eventq.Millisecond
		cfg.Drain = 500 * eventq.Millisecond
		return Build(cfg).Run()
	}
	pfc := run(true)
	dibs := run(false)
	if pfc.QueriesDone != 1 || dibs.QueriesDone != 1 {
		t.Fatalf("incast incomplete: pfc=%s dibs=%s", pfc, dibs)
	}
	if pfc.TotalDrops != 0 {
		t.Logf("PFC dropped %d (shared pool exhausted)", pfc.TotalDrops)
	}
	if dibs.NetworkDrops() != 0 {
		t.Fatalf("DIBS dropped: %s", dibs)
	}
	t.Logf("QCT99 pfc=%.2fms dibs=%.2fms; shortFCT99 pfc=%.2fms dibs=%.2fms; pauses=%d",
		pfc.QCT99, dibs.QCT99, pfc.ShortFCT99, dibs.ShortFCT99, pfc.PFCPauses)
}

func TestPFCValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.DIBS = true },             // PFC+DIBS
		func(c *Config) { c.Buffer = BufferDropTail }, // needs shared
		func(c *Config) { c.PFCXon = c.PFCXoff },      // bad thresholds
		func(c *Config) { c.PFCXon = 0 },              // bad thresholds
	}
	for i, mutate := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			cfg := pfcConfig()
			mutate(&cfg)
			Build(cfg)
		}()
	}
}
