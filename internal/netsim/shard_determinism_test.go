package netsim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"testing"

	"dibs/internal/eventq"
	"dibs/internal/metrics"
	"dibs/internal/workload"
)

// shardConfigs are the workloads the cross-shard-count property runs over:
// a pod-structured fat-tree (pods map to shards, cores spread) and a
// pod-less jellyfish (contiguous-block partition), both with background +
// incast traffic over every seeded stream that survives sharding. The
// run-global instrumentation (tracing, timeline, monitors) is off because
// Shards > 1 rejects it.
func shardConfigs() map[string]Config {
	ft := DefaultConfig()
	ft.FatTreeK = 4
	ft.Duration = 20 * eventq.Millisecond
	ft.Drain = 60 * eventq.Millisecond
	ft.Seed = 424242
	ft.BGInterarrival = 10 * eventq.Millisecond
	ft.Query = &workload.QueryConfig{QPS: 400, Degree: 8, ResponseBytes: 20_000}

	jf := ft
	jf.Topo = TopoJellyfish
	jf.JellyfishSwitches = 12
	jf.JellyfishDegree = 4
	jf.JellyfishHostsPer = 2

	return map[string]Config{"fattree": ft, "jellyfish": jf}
}

// shardFingerprint serializes everything observable about a finished
// sharded run in canonical form: the Results struct (minus the shard count
// itself), every retained sample (Values() sorts), every flow record in ID
// order, and the executed-event total across shards.
func shardFingerprint(t *testing.T, n *Network, r *Results) []byte {
	t.Helper()
	var buf bytes.Buffer

	flat := *r
	flat.Collector = nil // pointer identity differs across runs
	flat.Cfg.Shards = 0  // the shard count is the one allowed difference
	// Empty samples report NaN percentiles, which JSON cannot carry.
	for _, p := range []*float64{
		&flat.QCT50, &flat.QCT99, &flat.QCTMax,
		&flat.ShortFCT50, &flat.ShortFCT99, &flat.BGFCT99, &flat.DetourP99,
	} {
		*p = FiniteOr(*p, -1)
	}
	if err := json.NewEncoder(&buf).Encode(flat); err != nil {
		t.Fatalf("encoding results: %v", err)
	}
	fmt.Fprintln(&buf, r.String())

	c := r.Collector
	for _, s := range []struct {
		name string
		vals []float64
	}{
		{"qct", c.QCTs.Values()},
		{"shortbg", c.ShortBGFCTs.Values()},
		{"bg", c.BGFCTs.Values()},
		{"detours", c.DetourCounts.Values()},
	} {
		fmt.Fprintf(&buf, "%s %v\n", s.name, s.vals)
	}

	var flows []*metrics.FlowInfo
	c.EachFlow(func(f *metrics.FlowInfo) { flows = append(flows, f) })
	sort.Slice(flows, func(i, j int) bool { return flows[i].ID < flows[j].ID })
	for _, f := range flows {
		fmt.Fprintf(&buf, "flow %d %v %d %d %v %v\n", f.ID, f.Class, f.Bytes, f.QueryID, f.Start, f.End)
	}

	fmt.Fprintf(&buf, "executed %d\n", n.Executed())
	return buf.Bytes()
}

// TestShardCountInvariance is the sharded engine's core property: for a
// fixed seed, every shard count produces the byte-identical run — same
// metrics, same per-flow records, same pool accounting, same executed-event
// total. Shards=1 is the plain sequential engine, so this pins the parallel
// protocol (windows, message merge order, per-link delivery keys, arena
// custody transfer) to sequential semantics on both a pod-structured and a
// pod-less topology. Run under -race, it doubles as the proof that the
// window loop shares nothing it shouldn't.
func TestShardCountInvariance(t *testing.T) {
	for name, base := range shardConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg := base
			cfg.Shards = 1
			n1 := Build(cfg)
			r1 := n1.Run()
			ref := shardFingerprint(t, n1, r1)

			if r1.DeliveredData == 0 || r1.QueriesDone == 0 {
				t.Fatalf("reference run delivered nothing (delivered=%d queries=%d); config too small",
					r1.DeliveredData, r1.QueriesDone)
			}
			if r1.PoolLive != 0 {
				t.Fatalf("reference run leaked %d packets", r1.PoolLive)
			}

			for _, shards := range []int{2, 4, 8} {
				cfg := base
				cfg.Shards = shards
				n := Build(cfg)
				if got := len(n.shards); shards > 1 && got < 2 {
					t.Fatalf("Shards=%d built %d shards; partition degenerated", shards, got)
				}
				fp := shardFingerprint(t, n, n.Run())
				if !bytes.Equal(ref, fp) {
					t.Fatalf("Shards=%d diverged from Shards=1:\nref %d bytes, got %d bytes\nfirst difference near byte %d:\nref: %.120s\ngot: %.120s",
						shards, len(ref), len(fp), firstDiff(ref, fp),
						tail(ref, firstDiff(ref, fp)), tail(fp, firstDiff(ref, fp)))
				}
			}
		})
	}
}

// tail returns the fingerprint text around offset, for failure messages.
func tail(b []byte, off int) []byte {
	if off > len(b) {
		off = len(b)
	}
	start := off - 40
	if start < 0 {
		start = 0
	}
	return b[start:]
}
