package netsim

import (
	"dibs/internal/eventq"
	"dibs/internal/metrics"
	"dibs/internal/packet"
	"dibs/internal/rng"
	"dibs/internal/workload"
)

// flowStart is one precomputed flow arrival.
type flowStart struct {
	id       packet.FlowID
	at       eventq.Time
	src, dst packet.NodeID
	bytes    int64
	class    metrics.FlowClass
	queryID  int
}

// queryStart is one precomputed query arrival.
type queryStart struct {
	id     int
	at     eventq.Time
	nFlows int
}

// flowSchedule is the full precomputed workload of a run: every flow and
// query arrival, in start order, with flow IDs assigned by that order.
type flowSchedule struct {
	flows   []flowStart
	queries []queryStart
}

// recordSchedule runs the configured workload generators to completion on a
// scratch scheduler and records what they would start instead of starting
// it. The generators are feedback-free — pure functions of their RNG stream
// and the clock, never of simulation state — so the recording is exactly
// the arrival sequence a live run would produce, and it is computed once,
// up front, identically for every shard count. Both the sequential and the
// sharded engines then replay this schedule, which is what pins "flow N" to
// the same (time, endpoints, size) everywhere.
func recordSchedule(cfg *Config, hosts []packet.NodeID) *flowSchedule {
	s := &flowSchedule{}
	scratch := eventq.NewScheduler()
	next := packet.FlowID(0)
	rec := func(src, dst packet.NodeID, bytes int64, class metrics.FlowClass, queryID int) {
		s.flows = append(s.flows, flowStart{
			id: next, at: scratch.Now(), src: src, dst: dst,
			bytes: bytes, class: class, queryID: queryID,
		})
		next++
	}

	// Long flows first, at t=0: the live engine started them synchronously
	// before the event loop, so they own the lowest flow IDs.
	if cfg.Long != nil {
		pairs := workload.Pairs(hosts)
		if cfg.Long.Shuffle {
			pairs = workload.PairsShuffled(hosts, rng.New(cfg.Seed, "workload/longpairs"))
		}
		const longBytes = int64(1) << 40 // effectively unbounded
		for _, pr := range pairs {
			for i := 0; i < cfg.Long.PerPair; i++ {
				rec(pr[0], pr[1], longBytes, metrics.ClassLong, -1)
				rec(pr[1], pr[0], longBytes, metrics.ClassLong, -1)
			}
		}
	}
	if cfg.BGInterarrival > 0 {
		dist := workload.WebSearchBackground()
		if cfg.BGDist == BGDataMining {
			dist = workload.DataMiningBackground()
		}
		bg := workload.NewBackground(scratch, rng.New(cfg.Seed, "workload/background"),
			hosts, cfg.BGInterarrival, dist, cfg.Duration, rec)
		bg.Start()
	}
	if cfg.Query != nil {
		q := workload.NewQueries(scratch, rng.New(cfg.Seed, "workload/queries"),
			hosts, *cfg.Query, cfg.Duration, rec)
		q.OnQuery = func(queryID, nFlows int) {
			s.queries = append(s.queries, queryStart{id: queryID, at: scratch.Now(), nFlows: nFlows})
		}
		q.Start()
	}
	horizon := cfg.Duration
	if os := cfg.OneShot; os != nil {
		if os.Senders >= len(hosts) {
			panic("netsim: one-shot senders must leave a target host")
		}
		scratch.At(os.At, func() {
			target := hosts[len(hosts)-1]
			nFlows := os.Senders * os.FlowsPerSender
			s.queries = append(s.queries, queryStart{id: oneShotQueryID, at: os.At, nFlows: nFlows})
			for snd := 0; snd < os.Senders; snd++ {
				for f := 0; f < os.FlowsPerSender; f++ {
					rec(hosts[snd], target, os.Bytes, metrics.ClassQuery, oneShotQueryID)
				}
			}
		})
		if os.At > horizon {
			horizon = os.At
		}
	}
	scratch.RunUntil(horizon)
	return s
}

// oneShotQueryID is the synthetic query ID of the single-incast workload,
// far above anything the query generator assigns.
const oneShotQueryID = 1_000_000
