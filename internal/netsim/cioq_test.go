package netsim

import (
	"testing"

	"dibs/internal/eventq"
	"dibs/internal/switching"
)

func cioqConfig() Config {
	cfg := smallConfig()
	cfg.Arch = ArchCIOQ
	cfg.BufferPkts = 32 // dedicated egress queues are small in CIOQ designs
	cfg.MarkAtPkts = 10
	return cfg
}

func TestCIOQNetworkCompletesIncast(t *testing.T) {
	cfg := cioqConfig()
	cfg.OneShot = &OneShot{At: eventq.Millisecond, Senders: 12, FlowsPerSender: 2, Bytes: 20_000}
	cfg.Duration = 30 * eventq.Millisecond
	cfg.Drain = 500 * eventq.Millisecond
	n := Build(cfg)
	r := n.Run()
	if r.QueriesDone != 1 {
		t.Fatalf("CIOQ incast incomplete: %s", r)
	}
	if r.NetworkDrops() != 0 {
		t.Fatalf("CIOQ+DIBS dropped: %s", r)
	}
	if r.Detours == 0 {
		t.Fatal("expected §4 forwarding-engine detours")
	}
	// The switch table holds CIOQ nodes.
	if _, ok := n.Switches[n.Topo.Switches()[0]].(*switching.CIOQSwitch); !ok {
		t.Fatal("expected CIOQSwitch nodes")
	}
	if queuedPackets(n) != 0 {
		t.Fatal("packets stuck in VOQs after drain")
	}
}

func TestCIOQVersusOQSameWorkload(t *testing.T) {
	// Both architectures with DIBS complete the workload losslessly; the
	// crossbar adds modest latency but the headline behavior is the same.
	run := func(arch SwitchArch) *Results {
		cfg := smallConfig()
		if arch == ArchCIOQ {
			cfg = cioqConfig()
		}
		cfg.Query = incastQuery(200, 8, 20_000)
		cfg.Duration = 60 * eventq.Millisecond
		cfg.Drain = 400 * eventq.Millisecond
		return Build(cfg).Run()
	}
	oq := run(ArchOutputQueued)
	ci := run(ArchCIOQ)
	if oq.QueriesDone != oq.QueriesStarted || ci.QueriesDone != ci.QueriesStarted {
		t.Fatalf("incomplete: oq=%s cioq=%s", oq, ci)
	}
	if ci.NetworkDrops() != 0 {
		t.Fatalf("CIOQ dropped: %s", ci)
	}
	t.Logf("QCT99 oq=%.2fms cioq=%.2fms detours oq=%d cioq=%d",
		oq.QCT99, ci.QCT99, oq.Detours, ci.Detours)
}

func TestCIOQWithoutDIBSDropsUnderIncast(t *testing.T) {
	cfg := cioqConfig()
	cfg.DIBS = false
	cfg.OneShot = &OneShot{At: eventq.Millisecond, Senders: 14, FlowsPerSender: 3, Bytes: 20_000}
	cfg.Duration = 30 * eventq.Millisecond
	cfg.Drain = 500 * eventq.Millisecond
	r := Build(cfg).Run()
	if r.TotalDrops == 0 {
		t.Fatalf("CIOQ without DIBS should drop under heavy incast: %s", r)
	}
}

func TestCIOQValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Buffer = BufferInfinite },
		func(c *Config) { c.CIOQIngressCap = 0 },
		func(c *Config) { c.CIOQSpeedup = 0 },
		func(c *Config) { c.Arch = "banyan" },
	}
	for i, mutate := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			cfg := cioqConfig()
			mutate(&cfg)
			Build(cfg)
		}()
	}
}
