package netsim

import (
	"strings"
	"testing"

	"dibs/internal/transport"
)

// The fluid/hybrid gate must name every incompatible option at once — a
// user fixing their config one rejected flag at a time is the failure mode
// this test pins out.
func TestValidateModeNamesOffenders(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(c *Config)
		want    []string // substrings the panic must contain
		wantNot []string // options that are off and must not be blamed
	}{
		{
			name:   "shards",
			mutate: func(c *Config) { c.Shards = 4 },
			want:   []string{"Shards"},
		},
		{
			name: "pfc",
			mutate: func(c *Config) {
				c.DIBS = false
				c.Buffer = BufferShared
				c.PFC = true
			},
			want:    []string{"PFC"},
			wantNot: []string{"Shards", "TraceEvents"},
		},
		{
			name:   "cioq",
			mutate: func(c *Config) { c.Arch = ArchCIOQ },
			want:   []string{"Arch=cioq"},
		},
		{
			name: "pfabric buffers",
			mutate: func(c *Config) {
				// DIBS off (and the matching transport on): DIBS+pFabric is
				// invalid in any mode and trips its own check before the
				// mode gate ever runs.
				c.DIBS = false
				c.Buffer = BufferPFabric
				c.Transport = transport.PFabric
				c.DupAckThresh = 3
			},
			want: []string{"Buffer=pfabric"},
		},
		{
			name:   "packet spray",
			mutate: func(c *Config) { c.PacketSpray = true },
			want:   []string{"PacketSpray"},
		},
		{
			name:   "tracing",
			mutate: func(c *Config) { c.TraceEvents = true },
			want:   []string{"TraceEvents"},
		},
		{
			name:    "packet sampling",
			mutate:  func(c *Config) { c.TraceEveryNth = 10 },
			want:    []string{"TraceEveryNth"},
			wantNot: []string{"TraceEvents,"},
		},
		{
			name:   "timeline",
			mutate: func(c *Config) { c.RecordTimeline = true },
			want:   []string{"RecordTimeline"},
		},
		{
			name:   "util monitor",
			mutate: func(c *Config) { c.UtilWindow = 100 },
			want:   []string{"UtilWindow"},
		},
		{
			name:   "buffer monitor",
			mutate: func(c *Config) { c.BufferSamplePeriod = 100 },
			want:   []string{"BufferSamplePeriod"},
		},
		{
			// No Shards here: sharded instrumentation trips the sharding
			// gate before the mode gate ever runs.
			name: "everything at once",
			mutate: func(c *Config) {
				c.PacketSpray = true
				c.TraceEvents = true
				c.RecordTimeline = true
				c.UtilWindow = 100
			},
			want: []string{"PacketSpray", "TraceEvents", "RecordTimeline", "UtilWindow"},
		},
	}
	for _, mode := range []SimMode{ModeFluid, ModeHybrid} {
		for _, tc := range cases {
			t.Run(string(mode)+"/"+tc.name, func(t *testing.T) {
				cfg := smallConfig()
				cfg.Mode = mode
				tc.mutate(&cfg)
				msg := validatePanic(t, cfg)
				if msg == "" {
					t.Fatalf("Validate accepted Mode=%s with %s", mode, tc.name)
				}
				if !strings.Contains(msg, "Mode="+string(mode)) {
					t.Errorf("panic %q does not name the mode", msg)
				}
				for _, w := range tc.want {
					if !strings.Contains(msg, w) {
						t.Errorf("panic %q does not name %q", msg, w)
					}
				}
				for _, w := range tc.wantNot {
					if strings.Contains(msg, w) {
						t.Errorf("panic %q blames %q, which is not set", msg, w)
					}
				}
			})
		}
	}
}

func TestValidateModeAcceptsCleanAndPacketConfigs(t *testing.T) {
	for _, mode := range []SimMode{"", ModePacket, ModeFluid, ModeHybrid} {
		cfg := smallConfig()
		cfg.Mode = mode
		if msg := validatePanic(t, cfg); msg != "" {
			t.Fatalf("clean Mode=%q config rejected: %s", mode, msg)
		}
	}
	// Packet mode carries no fluid restrictions: the same instrumentation
	// fluid/hybrid reject is fine there.
	cfg := smallConfig()
	cfg.Mode = ModePacket
	cfg.TraceEvents = true
	cfg.RecordTimeline = true
	cfg.PacketSpray = true
	if msg := validatePanic(t, cfg); msg != "" {
		t.Fatalf("packet-mode instrumentation rejected: %s", msg)
	}
	// Negative fluid tunables are nonsense in any fluid mode.
	cfg = smallConfig()
	cfg.Mode = ModeHybrid
	cfg.FluidPromoteFrac = -1
	if msg := validatePanic(t, cfg); !strings.Contains(msg, "fluid tunables") {
		t.Fatalf("negative fluid tunable accepted (panic %q)", msg)
	}
	// Unknown modes fail closed.
	cfg = smallConfig()
	cfg.Mode = "quantum"
	if msg := validatePanic(t, cfg); !strings.Contains(msg, "unknown simulation mode") {
		t.Fatalf("unknown mode accepted (panic %q)", msg)
	}
}
