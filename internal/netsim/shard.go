package netsim

import (
	"fmt"

	"dibs/internal/eventq"
	"dibs/internal/metrics"
	"dibs/internal/packet"
	"dibs/internal/pdes"
	"dibs/internal/trace"
	"dibs/internal/transport"
)

// shardCtx is one scheduler shard of the network: its own event queue,
// packet arena, and metrics collector, plus the outbox of cross-shard
// packets it emitted during the current window. With Shards <= 1 the whole
// network is one shardCtx and the run is the plain sequential engine — the
// sharded configuration differs only in how many of these exist and in
// which links hand off through the outbox instead of scheduling locally.
//
//dibslint:confined shard owned by its worker during windows and by the coordinator between them; never aliased across shards
type shardCtx struct {
	id    int
	sched *eventq.Scheduler
	pool  *packet.Pool
	coll  *metrics.Collector

	// outbox collects the shard's cross-shard emissions of the current
	// window; the coordinator drains it at each barrier. Only this shard's
	// worker appends (during windows) and only the coordinator reads
	// (between windows), with the barrier channels ordering the two.
	//
	//dibslint:confined shard appended by the owning worker, drained by the coordinator; the barrier orders the two
	outbox []pdes.Message
	// emitted counts packets returned to this shard's arena because they
	// left for another shard; adopted counts packets borrowed from this
	// arena to re-materialize an arriving snapshot. The pair lets the
	// results layer cancel the hand-off borrows out of the pool totals,
	// keeping PoolBorrowed/PoolReturned byte-identical to a 1-shard run.
	emitted uint64
	adopted uint64

	// senders/longRx retain this shard's transport endpoints for
	// end-of-run stats aggregation (sums and Flow-sorted merges).
	senders []*transport.Sender
	longRx  []*transport.Receiver
}

// makeEmit builds the cross-shard hand-off for one directed link whose
// transmitter lives in src and receiver (node peer, port peerPort) in dst.
// The OutPort has already freed the packet into src's arena; the message
// wraps the snapshot and, on delivery, borrows from dst's arena, restores
// the snapshot, and hands it to the receiving node exactly as a local
// delivery event would.
//
//dibslint:confined shard the emitter runs on src's worker and the Message closure on dst's; the outbox append stays inside the custody protocol
func (n *Network) makeEmit(src, dst *shardCtx, peer packet.NodeID, peerPort int) func(at eventq.Time, pri int64, w packet.Wire) {
	return func(at eventq.Time, pri int64, w packet.Wire) {
		src.emitted++
		src.outbox = append(src.outbox, pdes.Message{
			At: at, Pri: pri, Seq: src.emitted, Dst: dst.id,
			Deliver: func() {
				dst.adopted++
				p := dst.pool.Get()
				w.Restore(p)
				n.handlers[peer].Receive(p, peerPort)
			},
		})
	}
}

// lookahead returns the conservative window width: the minimum propagation
// delay over links that cross a shard boundary. Any packet emitted during a
// window arrives at least that far in the future, so shards can run a full
// window without hearing from each other.
func (n *Network) lookahead() eventq.Time {
	var la eventq.Time
	for _, sid := range n.Topo.Switches() {
		for _, p := range n.Topo.Ports(sid) {
			if n.part[sid] != n.part[p.Peer] && (la == 0 || p.Delay < la) {
				la = p.Delay
			}
		}
	}
	if la == 0 {
		la = n.Cfg.LinkDelay
	}
	return la
}

// runSharded drives all shards to end under the conservative window
// protocol.
//
//dibslint:confined coordinator runs between windows only; every shard is quiescent whenever its closures touch shard state
func (n *Network) runSharded(end eventq.Time) {
	pdes.Run(len(n.shards), n.lookahead(), end,
		func(i int, limit eventq.Time) { n.shards[i].sched.RunUntil(limit) },
		func(i int) []pdes.Message {
			sh := n.shards[i]
			out := sh.outbox
			sh.outbox = nil
			return out
		},
		func(m pdes.Message) {
			n.shards[m.Dst].sched.AtPri(m.At, m.Pri, m.Deliver)
		})
}

// Executed sums executed events over all shards.
func (n *Network) Executed() uint64 {
	var total uint64
	for _, sh := range n.shards {
		total += sh.sched.Executed()
	}
	return total
}

// installSchedule pre-registers the recorded workload with every shard's
// collector and schedules the creation of each flow's endpoints. Flow and
// query tables go to every collector eagerly: a packet may be dropped or
// detoured in any shard along its path, and class attribution must work
// wherever the hook fires. Completion state stays exclusive — only the
// destination shard's collector ever marks a flow done — so the merge
// cannot double-count.
func (n *Network) installSchedule(s *flowSchedule) {
	tc := n.transportConfig()
	for _, sh := range n.shards {
		for _, q := range s.queries {
			sh.coll.QueryStartedAt(q.id, q.nFlows, q.at)
		}
		for _, f := range s.flows {
			sh.coll.FlowStartedAt(f.id, f.class, f.bytes, f.queryID, f.at)
		}
	}
	for i := range s.flows {
		n.installFlow(&s.flows[i], tc)
	}
}

// installFlow schedules the creation of one recorded flow's endpoints: the
// receiver on the destination's shard, then the sender on the source's.
// Both events carry pri 0 at the flow's start time; installing the receiver
// first gives it the smaller sequence number, so in a shared shard it
// exists before the sender's first segment can possibly matter.
func (n *Network) installFlow(f *flowStart, tc transport.Config) {
	if f.src == f.dst {
		panic("netsim: flow to self")
	}
	srcHost := n.HostsByID[f.src]
	dstHost := n.HostsByID[f.dst]
	if srcHost == nil || dstHost == nil {
		panic(fmt.Sprintf("netsim: flow endpoints %d->%d are not hosts", f.src, f.dst))
	}
	ss := n.shards[n.part[f.src]]
	ds := n.shards[n.part[f.dst]]

	ds.sched.At(f.at, func() {
		rcv := transport.NewReceiver(transport.Env{Sched: ds.sched, Pool: ds.pool, Emit: dstHost.SendFn()},
			tc, f.id, f.dst, f.bytes)
		rcv.OnComplete = func() {
			ds.coll.FlowDone(f.id)
			dstHost.RemoveReceiver(f.id)
			if n.Trace != nil {
				n.Trace.Record(trace.Event{
					T: ds.sched.Now(), Kind: trace.KindFlowDone, Node: f.dst,
					Flow: f.id, Seq: -1,
				})
			}
		}
		dstHost.AddReceiver(rcv)
		if f.class == metrics.ClassLong {
			ds.longRx = append(ds.longRx, rcv)
		}
		if n.fluid != nil {
			// Fluid modes run on one shard; the receiver event precedes
			// the sender's at the same instant, so the hand-off below is
			// always populated when the sender registers.
			n.fluid.pendingRcv[f.id] = rcv
		}
	})
	ss.sched.At(f.at, func() {
		snd := transport.NewSender(transport.Env{Sched: ss.sched, Pool: ss.pool, Emit: srcHost.SendFn()},
			tc, f.id, f.src, f.dst, f.bytes)
		snd.OnComplete = func() { srcHost.RemoveSender(f.id) }
		srcHost.AddSender(snd)
		ss.senders = append(ss.senders, snd)
		if n.Trace != nil {
			n.Trace.Record(trace.Event{
				T: ss.sched.Now(), Kind: trace.KindFlowStart, Node: f.src,
				Flow: f.id, Seq: -1, Detail: fmt.Sprintf("%s %dB -> %d", f.class, f.bytes, f.dst),
			})
		}
		if n.fluid != nil {
			rcv := n.fluid.pendingRcv[f.id]
			delete(n.fluid.pendingRcv, f.id)
			if n.fluid.registerFlow(snd, rcv) {
				return
			}
		}
		snd.Start()
	})
}
