package netsim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"testing"

	"dibs/internal/eventq"
	"dibs/internal/metrics"
	"dibs/internal/trace"
	"dibs/internal/workload"
)

// determinismConfig exercises every seeded stream at once: background and
// query workloads, per-switch ECMP/detour RNGs, link jitter, plus tracing
// and both monitors, on a small fat-tree.
func determinismConfig() Config {
	cfg := DefaultConfig()
	cfg.FatTreeK = 4
	cfg.Duration = 30 * eventq.Millisecond
	cfg.Drain = 80 * eventq.Millisecond
	cfg.Seed = 424242
	cfg.BGInterarrival = 10 * eventq.Millisecond
	cfg.Query = &workload.QueryConfig{QPS: 400, Degree: 8, ResponseBytes: 20_000}
	cfg.RecordTimeline = true
	cfg.TraceEvents = true
	cfg.TraceEveryNth = 7
	cfg.UtilWindow = 5 * eventq.Millisecond
	cfg.BufferSamplePeriod = 5 * eventq.Millisecond
	return cfg
}

// fingerprint serializes everything observable about a finished run into
// one byte stream: the Results struct, every retained sample, every flow
// record, the detour timeline, and the full structured event trace.
func fingerprint(t *testing.T, n *Network, r *Results) []byte {
	t.Helper()
	var buf bytes.Buffer

	flat := *r
	flat.Collector = nil // pointer identity differs across runs
	if err := json.NewEncoder(&buf).Encode(flat); err != nil {
		t.Fatalf("encoding results: %v", err)
	}
	fmt.Fprintln(&buf, r.String())

	c := r.Collector
	for _, s := range []struct {
		name string
		vals []float64
	}{
		{"qct", c.QCTs.Values()},
		{"shortbg", c.ShortBGFCTs.Values()},
		{"bg", c.BGFCTs.Values()},
		{"detours", c.DetourCounts.Values()},
	} {
		fmt.Fprintf(&buf, "%s %v\n", s.name, s.vals)
	}

	var flows []*metrics.FlowInfo
	c.EachFlow(func(f *metrics.FlowInfo) { flows = append(flows, f) })
	sort.Slice(flows, func(i, j int) bool { return flows[i].ID < flows[j].ID })
	for _, f := range flows {
		fmt.Fprintf(&buf, "flow %d %v %d %d %v %v\n", f.ID, f.Class, f.Bytes, f.QueryID, f.Start, f.End)
	}
	for _, d := range c.DetourTimeline {
		fmt.Fprintf(&buf, "detour %v %d\n", d.T, d.Switch)
	}

	fmt.Fprintf(&buf, "executed %d\n", n.Sched.Executed())
	if err := trace.WriteJSONL(&buf, n.Trace.Events()); err != nil {
		t.Fatalf("encoding trace: %v", err)
	}
	return buf.Bytes()
}

// TestSeededRunsAreByteIdentical is the determinism regression: two
// simulations built from the same Config must agree on every metric, every
// flow record, every trace event, and the executed-event count. Any global
// randomness, wall-clock read, or map-order dependence breaks it. It runs
// under both scheduler engines; each must be self-consistent.
func TestSeededRunsAreByteIdentical(t *testing.T) {
	for _, engine := range []string{"wheel", "heap"} {
		t.Run(engine, func(t *testing.T) {
			cfg := determinismConfig()
			cfg.Engine = engine

			n1 := Build(cfg)
			r1 := n1.Run()
			fp1 := fingerprint(t, n1, r1)

			n2 := Build(cfg)
			r2 := n2.Run()
			fp2 := fingerprint(t, n2, r2)

			if len(n1.Trace.Events()) == 0 {
				t.Fatal("trace recorded no events; fingerprint would be vacuous")
			}
			if r1.DeliveredData == 0 || r1.QueriesDone == 0 {
				t.Fatalf("run delivered nothing (delivered=%d queries=%d); config too small",
					r1.DeliveredData, r1.QueriesDone)
			}
			if got, want := len(n2.Trace.Events()), len(n1.Trace.Events()); got != want {
				t.Fatalf("trace event counts differ: %d vs %d", got, want)
			}
			if !bytes.Equal(fp1, fp2) {
				t.Fatalf("seeded runs diverged:\nrun1 %d bytes, run2 %d bytes\nfirst difference near byte %d",
					len(fp1), len(fp2), firstDiff(fp1, fp2))
			}
		})
	}
}

// TestEnginesProduceIdenticalRuns is the engine-parity regression: the
// timing wheel and the reference heap must produce byte-identical
// simulations — same metrics, same flow records, same event trace, same
// executed-event count. This is what licenses shipping the wheel as the
// default engine: any FIFO-within-instant violation in the wheel (cascade
// reordering, slot-drain interleaving, spill migration) diverges the
// packet-level interleaving and shows up here.
func TestEnginesProduceIdenticalRuns(t *testing.T) {
	runWith := func(engine string) (*Network, []byte) {
		cfg := determinismConfig()
		cfg.Engine = engine
		n := Build(cfg)
		r := n.Run()
		r.Cfg.Engine = "" // the engine name itself is the one allowed difference
		return n, fingerprint(t, n, r)
	}
	nw, fpw := runWith("wheel")
	nh, fph := runWith("heap")

	if nw.Sched.Engine() == nh.Sched.Engine() {
		t.Fatal("both runs used the same engine; config plumbing is broken")
	}
	if !bytes.Equal(fpw, fph) {
		t.Fatalf("wheel and heap runs diverged:\nwheel %d bytes, heap %d bytes\nfirst difference near byte %d",
			len(fpw), len(fph), firstDiff(fpw, fph))
	}
}

// TestDifferentSeedsDiverge guards the fingerprint itself: if two different
// seeds fingerprint identically, the fingerprint is not capturing the run.
func TestDifferentSeedsDiverge(t *testing.T) {
	cfg := determinismConfig()
	n1 := Build(cfg)
	fp1 := fingerprint(t, n1, n1.Run())

	cfg.Seed = 424243
	n2 := Build(cfg)
	fp2 := fingerprint(t, n2, n2.Run())

	if bytes.Equal(fp1, fp2) {
		t.Fatal("different seeds produced identical fingerprints; fingerprint is too weak")
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
