// Package netsim assembles the full simulated data center — topology,
// switches, hosts, transports, workloads, and instrumentation — and runs
// one experiment end to end, returning the measurements the paper reports.
package netsim

import (
	"fmt"
	"strings"

	"dibs/internal/eventq"
	"dibs/internal/transport"
	"dibs/internal/workload"
)

// TopoKind selects the network topology.
type TopoKind string

const (
	// TopoFatTree is the K-ary fat-tree of the NS-3 evaluation (§5.3).
	TopoFatTree TopoKind = "fattree"
	// TopoClick is the Emulab testbed tree of §5.2.
	TopoClick TopoKind = "click"
	// TopoLinear is the degenerate chain of footnote 10.
	TopoLinear TopoKind = "linear"
	// TopoJellyfish is the random graph discussed in §7.
	TopoJellyfish TopoKind = "jellyfish"
	// TopoHyperX is the 2-D HyperX discussed in §7.
	TopoHyperX TopoKind = "hyperx"
)

// BufferMode selects the switch queue discipline.
type BufferMode string

const (
	// BufferDropTail is a fixed per-port FIFO (paper default, 100 pkts).
	BufferDropTail BufferMode = "droptail"
	// BufferInfinite is the unbounded baseline of §5.2.
	BufferInfinite BufferMode = "infinite"
	// BufferShared is dynamic buffer allocation over shared switch
	// memory (§5.5.2).
	BufferShared BufferMode = "shared"
	// BufferPFabric is the 24-packet priority queue of §5.8.
	BufferPFabric BufferMode = "pfabric"
)

// SwitchArch selects the switch architecture (§4).
type SwitchArch string

const (
	// ArchOutputQueued is the paper's primary model (and the default;
	// the empty string means the same).
	ArchOutputQueued SwitchArch = "oq"
	// ArchCIOQ is the combined input/output queued architecture of §4.
	ArchCIOQ SwitchArch = "cioq"
)

// SimMode selects the simulation fidelity (DESIGN §9, hybrid fast path).
type SimMode string

const (
	// ModePacket is full per-packet fidelity (default; the empty string
	// means the same).
	ModePacket SimMode = "packet"
	// ModeFluid models every configured flow as a piecewise-constant
	// rate process — a throughput mode for sweep-scale runs; transient
	// per-packet physics (detours, drops, retransmissions) are not
	// simulated for modeled flows.
	ModeFluid SimMode = "fluid"
	// ModeHybrid keeps packet fidelity where DIBS needs it: flows start
	// as packets, demote to fluid after a stable-cwnd threshold, and
	// promote back when a port on their path enters the incast regime.
	ModeHybrid SimMode = "hybrid"
)

// BGDistribution names a background flow-size distribution.
type BGDistribution string

const (
	// BGWebSearch is the DCTCP-paper web-search shape (default; the
	// empty string means the same).
	BGWebSearch BGDistribution = "websearch"
	// BGDataMining is the VL2/pFabric data-mining shape.
	BGDataMining BGDistribution = "datamining"
)

// DetourPolicy names a DIBS policy.
type DetourPolicy string

const (
	// PolicyRandom is the paper's parameter-free default.
	PolicyRandom DetourPolicy = "random"
	// PolicyLoadAware detours to the least-loaded eligible port (§7).
	PolicyLoadAware DetourPolicy = "load-aware"
	// PolicyFlowBased pins each flow's detours to one port (§7).
	PolicyFlowBased DetourPolicy = "flow-based"
	// PolicyProbabilistic detours low-priority packets early (§7).
	PolicyProbabilistic DetourPolicy = "probabilistic"
)

// OneShot describes a single synchronized incast (the §5.2 Click
// experiment): Senders hosts each open FlowsPerSender simultaneous flows of
// Bytes to the last host, at time At.
type OneShot struct {
	At             eventq.Time
	Senders        int
	FlowsPerSender int
	Bytes          int64
}

// LongFlows configures the §5.6 fairness workload: node-disjoint host
// pairs, each running PerPair flows in both directions for the whole run.
// Shuffle switches from adjacent (same-edge) pairing to random pairing,
// which adds ECMP path contention (an ablation beyond the paper).
type LongFlows struct {
	PerPair int
	Shuffle bool
}

// Config fully describes one simulation run. The zero value is not valid;
// start from DefaultConfig.
type Config struct {
	// --- topology ---
	Topo     TopoKind
	FatTreeK int
	// Oversub divides switch-to-switch link capacity (§5.5.4): factor f
	// yields 1:f^2 oversubscription. 1 = full bisection.
	Oversub   int
	LinkRate  int64
	LinkDelay eventq.Time
	// Jellyfish / HyperX / Linear geometry (used per Topo).
	JellyfishSwitches, JellyfishDegree, JellyfishHostsPer int
	HyperXX, HyperXY, HyperXHostsPer                      int
	LinearSwitches, LinearHostsPer                        int

	// --- switch architecture ---
	// Arch selects output-queued (default) or combined input/output
	// queued switches (§4): "cioq" adds per-input VOQ buffers and a
	// crossbar with CIOQSpeedup; DIBS detours at the forwarding engine
	// against the egress queues.
	Arch           SwitchArch
	CIOQIngressCap int
	CIOQSpeedup    int

	// --- switch buffers ---
	Buffer BufferMode
	// BufferPkts is the per-port queue capacity (droptail/pfabric).
	BufferPkts int
	// MarkAtPkts is the DCTCP ECN marking threshold; 0 disables marking.
	MarkAtPkts int
	// SharedPoolPkts / SharedAlpha / SharedReserve parameterize DBA.
	SharedPoolPkts int
	SharedAlpha    float64
	SharedReserve  int

	// --- DIBS ---
	DIBS   bool
	Policy DetourPolicy
	// ProbabilisticStart is the early-detour occupancy threshold.
	ProbabilisticStart float64

	// --- Ethernet flow control (§6 comparison; alternative to DIBS) ---
	// PFC enables hop-by-hop pause. Requires BufferShared (real PFC
	// switches do per-ingress accounting over shared memory) and DIBS
	// off. A switch pauses an upstream link when PFCXoff packets from
	// that ingress are buffered, and resumes below PFCXon.
	PFC     bool
	PFCXoff int
	PFCXon  int

	// --- transport (Table 1) ---
	Transport    transport.Variant
	MinRTO       eventq.Time
	InitCwnd     float64
	DupAckThresh int
	TTL          int
	// DelayedAck enables the DCTCP delayed-ACK ECN-echo state machine
	// instead of per-segment ACKs.
	DelayedAck bool

	// PacketSpray switches all switches from flow-level to packet-level
	// ECMP (§6 comparison: even per-packet load balancing cannot relieve
	// incast, because the last hop has a single path).
	PacketSpray bool

	// --- workload (Table 2) ---
	Seed int64
	// Duration is the traffic-generation window; Drain is extra time to
	// let in-flight flows finish before measuring.
	Duration eventq.Time
	Drain    eventq.Time
	// BGInterarrival is the per-host mean background flow inter-arrival
	// time; 0 disables background traffic.
	BGInterarrival eventq.Time
	// BGDist selects the background flow-size distribution:
	// "websearch" (default, the DCTCP-paper trace shape the paper's
	// simulations use) or "datamining" (the VL2/pFabric trace shape).
	BGDist BGDistribution
	// Query enables incast traffic when non-nil.
	Query *workload.QueryConfig
	// OneShot enables a single synchronized incast when non-nil.
	OneShot *OneShot
	// Long enables the fairness workload when non-nil.
	Long *LongFlows

	// --- instrumentation ---
	RecordTimeline bool
	// TraceEveryNth attaches a path trace to every Nth data packet
	// (0 disables tracing).
	TraceEveryNth int
	// TraceEvents records a structured event log (drops, detours,
	// deliveries, flow/query lifecycle) on Network.Trace, capped at
	// TraceEventCap events (0 = 1M).
	TraceEvents   bool
	TraceEventCap int
	// UtilWindow enables the link-utilization monitor (Figure 4);
	// 0 disables.
	UtilWindow eventq.Time
	// BufferSamplePeriod enables buffer-occupancy snapshots (Figures 2b
	// and 5); 0 disables.
	BufferSamplePeriod eventq.Time
	// HostQueuePkts is the host NIC queue depth.
	HostQueuePkts int
	// HostMarkAtPkts, when > 0, ECN-marks at the host NIC queue at that
	// threshold, as DCTCP deployments do on end hosts. The default 0
	// leaves NICs unmarked (deep FIFO bufferbloat), matching the paper's
	// switch-only marking setup. Marked NICs give long flows a stationary
	// NIC-bottleneck steady state, which is the regime the hybrid mode's
	// standing-queue abstraction models faithfully (DESIGN §9).
	HostMarkAtPkts int
	// Engine selects the scheduler's internal priority structure: "wheel"
	// (default, also the empty string) or "heap". The two engines realize
	// the same (at, seq) event order, so results are byte-identical; the
	// heap is kept as a differential-testing reference.
	Engine string
	// ForwardJitter adds a uniform per-packet delivery jitter in
	// [0, ForwardJitter) on every link (FIFO order preserved), modeling
	// variable switch pipeline latency. Without it, identical self-clocked
	// DCTCP flows phase-lock on the deterministic marking threshold and
	// share bandwidth unfairly. 0 disables.
	ForwardJitter eventq.Time
	// Mode selects the simulation fidelity: "packet" (default, also the
	// empty string), "fluid", or "hybrid" (DESIGN §9). Fluid and hybrid
	// reject run-global options the rate model cannot honor yet; see
	// Validate.
	Mode SimMode
	// FluidTick is the fluid engine's time resolution (0 = 100 us): rate
	// re-solves, byte credits, and demote/promote decisions all happen on
	// tick boundaries.
	FluidTick eventq.Time
	// FluidStableWindows is the consecutive stable-cwnd window count after
	// which a hybrid-mode flow demotes to fluid (0 = 8).
	FluidStableWindows int
	// FluidMinBytes is the smallest flow (and smallest remaining transfer)
	// eligible for fluid custody (0 = 1 MB). Short flows — the paper's
	// query traffic — always stay packets.
	FluidMinBytes int64
	// FluidPromoteFrac is the fraction of a port's queue capacity —
	// counting both real packets and the folded fluid share — at which
	// fluid flows crossing the port promote back to packets (0 = 0.5).
	// Half the buffer is well above any steady-state standing queue yet
	// fires early in a genuine incast, while per-packet physics (detours,
	// drops, retransmissions) still have headroom to matter.
	FluidPromoteFrac float64
	// Shards partitions the network across that many conservative-PDES
	// scheduler shards (DESIGN §10): pods stay together, cores spread
	// round-robin, hosts follow their edge switch, and shards run
	// lookahead-wide windows in parallel, exchanging cross-shard packets
	// at window barriers. Results are byte-identical for every shard
	// count. 0 or 1 selects the plain sequential engine; values above the
	// switch count are clamped. Shards > 1 rejects the run-global
	// instrumentation that would need cross-shard ordering (event/packet
	// tracing, detour timeline, util/buffer monitors) and PFC (whose
	// pause control loop is tighter than the link-delay lookahead).
	Shards int
}

// DefaultConfig returns the paper's default setup (Tables 1 and 2): K=8
// fat-tree, 1 Gbps links, 100-packet buffers marking at 20, DCTCP with
// 10 ms minRTO and initial window 10, fast retransmit disabled, DIBS with
// the random policy, 300 qps incast of degree 40 x 20 KB, and 120 ms
// per-host background inter-arrivals.
func DefaultConfig() Config {
	return Config{
		Topo:      TopoFatTree,
		FatTreeK:  8,
		Oversub:   1,
		LinkRate:  1_000_000_000,
		LinkDelay: 1500 * eventq.Nanosecond,

		Buffer:         BufferDropTail,
		BufferPkts:     100,
		MarkAtPkts:     20,
		SharedPoolPkts: 1133, // ~1.7MB of 1500B packets (§5.5.2)
		SharedAlpha:    1,
		SharedReserve:  10,

		DIBS:               true,
		Policy:             PolicyRandom,
		ProbabilisticStart: 0.8,

		PFCXoff: 100,
		PFCXon:  80,

		Transport:    transport.DCTCP,
		MinRTO:       10 * eventq.Millisecond,
		InitCwnd:     10,
		DupAckThresh: 0,
		TTL:          255,

		Seed:           1,
		Duration:       eventq.Second,
		Drain:          300 * eventq.Millisecond,
		BGInterarrival: 120 * eventq.Millisecond,
		Query: &workload.QueryConfig{
			QPS:           300,
			Degree:        40,
			ResponseBytes: 20_000,
		},

		HostQueuePkts: 100_000,
		ForwardJitter: 2 * eventq.Microsecond,

		FluidTick:          100 * eventq.Microsecond,
		FluidStableWindows: 8,
		FluidMinBytes:      1 << 20,
		FluidPromoteFrac:   0.5,

		Arch:           ArchOutputQueued,
		CIOQIngressCap: 100,
		CIOQSpeedup:    2,
	}
}

// Validate panics on inconsistent configurations; Build calls it.
func (c *Config) Validate() {
	if c.LinkRate <= 0 {
		panic("netsim: link rate must be positive")
	}
	if c.Buffer == BufferDropTail && c.BufferPkts < 1 {
		panic("netsim: droptail needs BufferPkts >= 1")
	}
	if c.Buffer == BufferPFabric && c.BufferPkts < 1 {
		panic("netsim: pfabric needs BufferPkts >= 1")
	}
	if c.Buffer == BufferShared && c.SharedPoolPkts < 1 {
		panic("netsim: shared buffer needs SharedPoolPkts >= 1")
	}
	if c.DIBS && c.Buffer == BufferPFabric {
		panic("netsim: DIBS does not combine with pFabric queues")
	}
	if c.PFC {
		if c.DIBS {
			panic("netsim: PFC and DIBS are alternative mechanisms; enable one")
		}
		if c.Buffer != BufferShared {
			panic("netsim: PFC requires shared-buffer switches")
		}
		if c.PFCXon <= 0 || c.PFCXon >= c.PFCXoff {
			panic("netsim: PFC requires 0 < PFCXon < PFCXoff")
		}
	}
	switch c.BGDist {
	case "", BGWebSearch, BGDataMining:
	default:
		panic(fmt.Sprintf("netsim: unknown background distribution %q", c.BGDist))
	}
	switch c.Arch {
	case "", ArchOutputQueued:
	case ArchCIOQ:
		if c.PFC {
			panic("netsim: PFC is implemented for output-queued switches only")
		}
		if c.Buffer != BufferDropTail {
			panic("netsim: CIOQ uses dedicated drop-tail egress queues")
		}
		if c.CIOQIngressCap < 1 || c.CIOQSpeedup < 1 {
			panic("netsim: CIOQ needs positive ingress capacity and speedup")
		}
	default:
		panic(fmt.Sprintf("netsim: unknown switch architecture %q", c.Arch))
	}
	if c.Duration <= 0 {
		panic("netsim: duration must be positive")
	}
	if c.TTL < 2 {
		panic("netsim: TTL must be >= 2")
	}
	if c.HostQueuePkts < 1 {
		panic("netsim: host queue must hold >= 1 packet")
	}
	if c.HostMarkAtPkts < 0 {
		panic("netsim: HostMarkAtPkts must be >= 0 (0 disables NIC marking)")
	}
	if _, err := eventq.ParseEngine(c.Engine); err != nil {
		panic(err.Error())
	}
	if c.Shards < 0 {
		panic("netsim: Shards must be >= 0")
	}
	if c.Shards > 1 {
		// Name every offending option at once, so fixing a sharded config
		// is one edit instead of a panic-by-panic treasure hunt. The
		// instrumentation options all share one reason: each appends to a
		// run-global ordered buffer, which shard workers cannot feed
		// without breaking the byte-identical-results guarantee.
		var global []string
		if c.TraceEvents {
			global = append(global, "TraceEvents")
		}
		if c.TraceEveryNth > 0 {
			global = append(global, "TraceEveryNth")
		}
		if c.RecordTimeline {
			global = append(global, "RecordTimeline")
		}
		if c.UtilWindow > 0 {
			global = append(global, "UtilWindow")
		}
		if c.BufferSamplePeriod > 0 {
			global = append(global, "BufferSamplePeriod")
		}
		if len(global) > 0 {
			panic(fmt.Sprintf("netsim: %s require Shards <= 1: run-global instrumentation appends to an ordered buffer no shard worker may share", strings.Join(global, ", ")))
		}
		if c.PFC {
			panic("netsim: PFC requires Shards <= 1: pause feedback reacts faster than the link-delay lookahead window")
		}
		if c.LinkDelay <= 0 {
			panic("netsim: Shards > 1 needs a positive LinkDelay lookahead")
		}
	}
	switch c.Mode {
	case "", ModePacket:
	case ModeFluid, ModeHybrid:
		// Mirror the sharding check: name every offending option at once.
		// Each of these either observes per-packet state that fluid flows
		// never generate (the instrumentation would silently misreport) or
		// configures a mechanism the rate model does not fold into.
		var bad []string
		if c.Shards > 1 {
			bad = append(bad, "Shards") // the engine is a run-global controller on one clock
		}
		if c.PFC {
			bad = append(bad, "PFC") // pause state is not in the rate solver
		}
		if c.Arch == ArchCIOQ {
			bad = append(bad, "Arch=cioq") // occupancy folds into OQ egress queues only
		}
		if c.Buffer == BufferPFabric {
			bad = append(bad, "Buffer=pfabric") // a priority queue has no FIFO depth to fold into
		}
		if c.PacketSpray {
			bad = append(bad, "PacketSpray") // fluid paths replicate flow-ECMP; sprayed traffic has no single path
		}
		if c.TraceEvents {
			bad = append(bad, "TraceEvents")
		}
		if c.TraceEveryNth > 0 {
			bad = append(bad, "TraceEveryNth")
		}
		if c.RecordTimeline {
			bad = append(bad, "RecordTimeline")
		}
		if c.UtilWindow > 0 {
			bad = append(bad, "UtilWindow")
		}
		if c.BufferSamplePeriod > 0 {
			bad = append(bad, "BufferSamplePeriod")
		}
		if len(bad) > 0 {
			panic(fmt.Sprintf("netsim: %s cannot combine with Mode=%s: fluid-modeled flows emit no packets for these to observe or control", strings.Join(bad, ", "), c.Mode))
		}
		if c.FluidTick < 0 || c.FluidStableWindows < 0 || c.FluidMinBytes < 0 || c.FluidPromoteFrac < 0 {
			panic("netsim: fluid tunables must be >= 0 (0 selects the default)")
		}
	default:
		panic(fmt.Sprintf("netsim: unknown simulation mode %q", c.Mode))
	}
	switch c.Topo {
	case TopoFatTree, TopoClick, TopoLinear, TopoJellyfish, TopoHyperX:
	default:
		panic(fmt.Sprintf("netsim: unknown topology %q", c.Topo))
	}
	if c.DIBS {
		switch c.Policy {
		case PolicyRandom, PolicyLoadAware, PolicyFlowBased, PolicyProbabilistic:
		default:
			panic(fmt.Sprintf("netsim: unknown detour policy %q", c.Policy))
		}
	}
}
