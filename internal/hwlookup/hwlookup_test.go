package hwlookup

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestForwardWhenDesiredAvailable(t *testing.T) {
	// Desired port 2, all ports available.
	d := Decide(1<<2, 0xFF, 0, 12345)
	if d.Port != 2 || d.Detoured {
		t.Fatalf("got %+v, want forward on port 2", d)
	}
}

func TestForwardPicksAmongDesired(t *testing.T) {
	// ECMP: desired {1,3}, both available.
	seen := map[int]bool{}
	for r := uint64(0); r < 16; r++ {
		d := Decide(1<<1|1<<3, 0xFF, 0, r)
		if d.Detoured || (d.Port != 1 && d.Port != 3) {
			t.Fatalf("got %+v", d)
		}
		seen[d.Port] = true
	}
	if !seen[1] || !seen[3] {
		t.Fatal("both desired ports should be used")
	}
}

func TestDetourWhenDesiredFull(t *testing.T) {
	// Desired 0 unavailable; ports 4..7 available, 4 is a host port.
	avail := uint64(0xF0)
	host := uint64(1 << 4)
	for r := uint64(0); r < 32; r++ {
		d := Decide(1<<0, avail, host, r)
		if !d.Detoured {
			t.Fatalf("expected detour, got %+v", d)
		}
		if d.Port < 5 || d.Port > 7 {
			t.Fatalf("detour to ineligible port %d", d.Port)
		}
	}
}

func TestDropWhenNothingAvailable(t *testing.T) {
	d := Decide(1<<0, 0, 0, 1)
	if d.Port != -1 {
		t.Fatalf("expected drop, got %+v", d)
	}
	// Only host ports available.
	d = Decide(1<<0, 1<<3, 1<<3, 1)
	if d.Port != -1 {
		t.Fatalf("expected drop with host-only availability, got %+v", d)
	}
}

func TestAvailableBitmap(t *testing.T) {
	fullPorts := map[int]bool{1: true, 3: true}
	m := AvailableBitmap(5, func(p int) bool { return fullPorts[p] })
	if m != 0b10101 {
		t.Fatalf("bitmap = %b", m)
	}
}

func TestPickBitUniformity(t *testing.T) {
	mask := uint64(0b1011_0010)
	rng := rand.New(rand.NewSource(5))
	counts := map[int]int{}
	for i := 0; i < 4000; i++ {
		counts[pickBit(mask, rng.Uint64())]++
	}
	for _, b := range []int{1, 4, 5, 7} {
		if counts[b] < 800 {
			t.Fatalf("bit %d undersampled: %v", b, counts)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("picked bits outside mask: %v", counts)
	}
}

// Property: the decision always lands on a set bit of the correct bitmap,
// and drops exactly when no eligible port exists.
func TestQuickDecide(t *testing.T) {
	f := func(desired, available, hostPorts, rnd uint64) bool {
		desired &= 0xFFFF
		available &= 0xFFFF
		hostPorts &= 0xFFFF
		d := Decide(desired, available, hostPorts, rnd)
		if fwd := desired & available; fwd != 0 {
			return !d.Detoured && d.Port >= 0 && fwd&(1<<uint(d.Port)) != 0
		}
		elig := available &^ hostPorts &^ desired
		if elig == 0 {
			return d.Port == -1
		}
		return d.Detoured && d.Port >= 0 && elig&(1<<uint(d.Port)) != 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: pickBit always returns a set bit for arbitrary masks.
func TestQuickPickBit(t *testing.T) {
	f := func(mask, rnd uint64) bool {
		if mask == 0 {
			return true
		}
		b := pickBit(mask, rnd)
		return mask&(1<<uint(b)) != 0 && b < 64 && b >= bits.TrailingZeros64(mask)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkDecide demonstrates the §5.1 claim: the forward/detour decision
// is a handful of bit operations, trivially line-rate (a 64-byte packet at
// 1 Gbps takes 672 ns to serialize; this runs in single-digit ns).
func BenchmarkDecide(b *testing.B) {
	b.ReportAllocs()
	var sink Decision
	for i := 0; i < b.N; i++ {
		sink = Decide(1<<3, 0xFFF0, 0x0F00, uint64(i))
	}
	_ = sink
}

func BenchmarkDecideForwardPath(b *testing.B) {
	b.ReportAllocs()
	var sink Decision
	for i := 0; i < b.N; i++ {
		sink = Decide(1<<3, 0xFFFF, 0, uint64(i))
	}
	_ = sink
}
