// Package hwlookup mirrors the paper's NetFPGA implementation of DIBS
// (§5.1): the Output Port Lookup stage is extended with a bitmap of
// available output ports (queues not full). A bitwise AND of that bitmap
// with the FIB's desired-ports bitmap decides forward-vs-detour in a single
// combinational step, so DIBS adds no processing delay.
//
// The functions here are pure and allocation-free, matching the hardware
// data path; the package benchmark demonstrates that a software rendition
// of the same logic runs in a few nanoseconds — far faster than the 672 ns
// serialization time of a 64-byte packet at 1 Gbps ("line rate").
package hwlookup

import "math/bits"

// Decision is the output of the lookup stage.
type Decision struct {
	// Port is the chosen output port, or -1 when the packet must drop.
	Port int
	// Detoured is true when Port is not one of the FIB's desired ports.
	Detoured bool
}

// Decide picks an output port given the FIB's desired-ports bitmap, the
// bitmap of ports whose queues can accept a packet, and the bitmap of ports
// that face end hosts. rnd supplies the randomness for the detour pick (in
// hardware, an LFSR).
//
// Priority order, as in the NetFPGA module:
//  1. a desired port that is available → forward normally;
//  2. otherwise any available switch-facing port → detour;
//  3. otherwise drop.
func Decide(desired, available, hostPorts uint64, rnd uint64) Decision {
	if ok := desired & available; ok != 0 {
		return Decision{Port: pickBit(ok, rnd)}
	}
	elig := available &^ hostPorts &^ desired
	if elig == 0 {
		return Decision{Port: -1}
	}
	return Decision{Port: pickBit(elig, rnd), Detoured: true}
}

// pickBit returns the index of the (rnd mod popcount)-th set bit of mask.
// mask must be non-zero.
func pickBit(mask uint64, rnd uint64) int {
	n := uint64(bits.OnesCount64(mask))
	k := int(rnd % n)
	for i := 0; i < k; i++ {
		mask &= mask - 1 // clear lowest set bit
	}
	return bits.TrailingZeros64(mask)
}

// AvailableBitmap assembles the available-ports bitmap from a queue-full
// predicate, mirroring the per-port full signals wired into the NetFPGA
// lookup module.
func AvailableBitmap(numPorts int, full func(port int) bool) uint64 {
	var m uint64
	for i := 0; i < numPorts; i++ {
		if !full(i) {
			m |= 1 << uint(i)
		}
	}
	return m
}
