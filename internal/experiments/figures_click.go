package experiments

import (
	"fmt"

	"dibs/internal/eventq"
	"dibs/internal/metrics"
	"dibs/internal/netsim"
	"dibs/internal/rng"
	"dibs/internal/runner"
	"dibs/internal/stats"
)

func init() {
	register("fig06", "Click-testbed incast: infinite vs droptail vs DIBS (paper Fig. 6)", fig06)
}

// fig06 reproduces the §5.2 testbed experiment on the simulated Click
// topology: five servers each send ten simultaneous 32KB flows to the sixth
// server, repeated across seeds, under three buffer settings.
func fig06(o Opts) []*Table {
	o.normalize()
	runs := int(25 * o.Scale)
	if runs < 5 {
		runs = 5
	}
	type mode struct {
		name   string
		buffer netsim.BufferMode
		dibs   bool
	}
	modes := []mode{
		{"InfiniteBuf", netsim.BufferInfinite, false},
		{"Detour", netsim.BufferDropTail, true},
		{"Droptail100", netsim.BufferDropTail, false},
	}

	qct := &Table{
		ID:      "fig06a",
		Title:   fmt.Sprintf("Query completion time over %d incast runs", runs),
		XLabel:  "setting",
		Columns: []string{"QCT-p50(ms)", "QCT-p90(ms)", "QCT-p99(ms)", "QCT-max(ms)"},
	}
	flows := &Table{
		ID:      "fig06b",
		Title:   "Individual flow durations and loss recovery",
		XLabel:  "setting",
		Columns: []string{"flow-p50(ms)", "flow-p99(ms)", "flow-max(ms)", "timeouts", "drops"},
	}

	// The full mode x seed grid is one flat list of independent runs; the
	// runner spreads it over cores and hands results back in grid order.
	cfgs := make([]netsim.Config, 0, len(modes)*runs)
	for _, m := range modes {
		for run := 0; run < runs; run++ {
			cfg := netsim.DefaultConfig()
			cfg.Topo = netsim.TopoClick
			cfg.Seed = int64(rng.Derive(uint64(o.Seed), fmt.Sprintf("experiments/fig06/run%d", run)))
			cfg.Buffer = m.buffer
			cfg.DIBS = m.dibs
			// The testbed ran plain TCP over droptail switches: no ECN.
			cfg.MarkAtPkts = 0
			cfg.Transport = netsim.DefaultConfig().Transport
			if !m.dibs {
				// Without DIBS the testbed TCP used standard fast
				// retransmit (§5.2 disables it only for DIBS).
				cfg.DupAckThresh = 3
			}
			cfg.BGInterarrival = 0
			cfg.Query = nil
			cfg.OneShot = &netsim.OneShot{
				At:             eventq.Millisecond,
				Senders:        5,
				FlowsPerSender: 10,
				Bytes:          32_000,
			}
			cfg.Duration = 10 * eventq.Millisecond
			cfg.Drain = 800 * eventq.Millisecond
			cfgs = append(cfgs, cfg)
		}
	}
	results := runner.Map(o.Workers, len(cfgs), func(i int) *netsim.Results {
		return netsim.Build(cfgs[i]).Run()
	})

	for mi, m := range modes {
		var qcts, fcts stats.Sample
		var timeouts, drops uint64
		for run := 0; run < runs; run++ {
			r := results[mi*runs+run]
			if r.QueriesDone != 1 {
				o.logf("fig06 %s run %d: incast incomplete (%s)", m.name, run, r)
				continue
			}
			qcts.Add(r.QCT99) // one query per run: p99 == the QCT
			r.Collector.EachFlow(func(f *metrics.FlowInfo) {
				if f.Done() {
					fcts.Add(f.FCT().Millis())
				}
			})
			timeouts += uint64(r.Timeouts)
			drops += r.TotalDrops
		}
		qct.AddRow(m.name, qcts.Percentile(50), qcts.Percentile(90), qcts.Percentile(99), qcts.Max())
		flows.AddRow(m.name, fcts.Percentile(50), fcts.Percentile(99), fcts.Max(),
			float64(timeouts), float64(drops))
		o.logf("fig06 %-12s QCT p50=%.2f p99=%.2f max=%.2f (timeouts %d, drops %d)",
			m.name, qcts.Percentile(50), qcts.Percentile(99), qcts.Max(), timeouts, drops)
	}
	qct.Note("paper: infinite ~25ms, DIBS ~27ms (near-optimal), droptail 26-51ms — timeouts on lost responses gate the query")
	flows.Note("paper: with droptail ~9%% of responses take a timeout (25-50ms durations); DIBS eliminates drops so every flow finishes in one burst")
	return []*Table{qct, flows}
}
