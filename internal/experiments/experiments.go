// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment is a named function producing one or
// more Tables — the numeric series behind the corresponding plot — plus
// notes recording the qualitative claim the series should exhibit.
//
// Absolute milliseconds differ from the paper (its testbed constants are
// not fully specified); the shapes — who wins, by what factor, where the
// crossover or breaking point falls — are the reproduction target and are
// recorded against the paper in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"dibs/internal/eventq"
	"dibs/internal/netsim"
	"dibs/internal/runner"
)

// Opts controls experiment scale and logging.
type Opts struct {
	// Seed is the base RNG seed; experiments derive per-run seeds.
	Seed int64
	// Scale multiplies traffic-generation durations; 1.0 is the standard
	// scale used in EXPERIMENTS.md, smaller values run faster (benches).
	Scale float64
	// Workers bounds how many sweep points run concurrently; <=0 means
	// GOMAXPROCS, 1 forces the serial reference path. Results and log
	// lines are identical for every value — see internal/runner.
	Workers int
	// Engine selects the scheduler engine ("", "wheel" or "heap") for
	// every run; results are byte-identical either way.
	Engine string
	// Shards sets the conservative-PDES shard count for every run
	// (<=1 sequential); results are byte-identical for any value.
	Shards int
	// Mode, when non-empty, overrides the simulation mode ("packet",
	// "fluid" or "hybrid") for every run. Unlike Engine/Shards this CAN
	// change results: fluid and hybrid trade per-packet fidelity for
	// speed (DESIGN §9). Experiments whose configs a non-packet mode
	// cannot express (query fan-in, tracing, PFC, ...) fail fast in
	// netsim.Config.Validate.
	Mode netsim.SimMode
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// DefaultOpts returns the standard full-scale options.
func DefaultOpts() Opts { return Opts{Seed: 1, Scale: 1} }

func (o *Opts) normalize() {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// dur scales a base duration, flooring at 20ms so even quick runs see a
// few queries.
func (o *Opts) dur(base eventq.Time) eventq.Time {
	d := eventq.Time(float64(base) * o.Scale)
	if d < 20*eventq.Millisecond {
		d = 20 * eventq.Millisecond
	}
	return d
}

func (o *Opts) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// Row is one x-position of a table.
type Row struct {
	X    string
	Vals []float64
}

// Table is the numeric series behind one figure panel.
type Table struct {
	ID      string
	Title   string
	XLabel  string
	Columns []string
	Rows    []Row
	Notes   []string
}

// AddRow appends a row.
func (t *Table) AddRow(x string, vals ...float64) {
	if len(vals) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: row %q has %d vals, table %s has %d columns",
			x, len(vals), t.ID, len(t.Columns)))
	}
	t.Rows = append(t.Rows, Row{X: x, Vals: vals})
}

// Note appends a free-text note.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len(t.XLabel)
	for _, r := range t.Rows {
		if len(r.X) > widths[0] {
			widths[0] = len(r.X)
		}
	}
	cells := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		cells[i] = make([]string, len(r.Vals))
		for j, v := range r.Vals {
			cells[i][j] = formatVal(v)
		}
	}
	for j, c := range t.Columns {
		widths[j+1] = len(c)
		for i := range t.Rows {
			if len(cells[i][j]) > widths[j+1] {
				widths[j+1] = len(cells[i][j])
			}
		}
	}
	fmt.Fprintf(w, "%-*s", widths[0], t.XLabel)
	for j, c := range t.Columns {
		fmt.Fprintf(w, "  %*s", widths[j+1], c)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", sum(widths)+2*len(t.Columns)))
	for i, r := range t.Rows {
		fmt.Fprintf(w, "%-*s", widths[0], r.X)
		for j := range r.Vals {
			fmt.Fprintf(w, "  %*s", widths[j+1], cells[i][j])
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func formatVal(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.4f", v)
	case math.Abs(v) >= 10000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// Experiment is a registered, runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(Opts) []*Table
}

var registry []Experiment

func register(id, title string, run func(Opts) []*Table) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns the registered experiments in a stable order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given ID, or false.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- shared run helpers ---

// paperConfig is DefaultConfig with experiment-scale duration applied.
func (o *Opts) paperConfig(base eventq.Time) netsim.Config {
	cfg := netsim.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.Duration = o.dur(base)
	cfg.Drain = 300 * eventq.Millisecond
	return cfg
}

// run executes one configuration, logging a one-line summary.
func (o *Opts) run(label string, cfg netsim.Config) *netsim.Results {
	cfg.Engine = o.Engine
	cfg.Shards = o.Shards
	if o.Mode != "" {
		cfg.Mode = o.Mode
	}
	r := netsim.Build(cfg).Run()
	o.logf("%-40s %s", label, r)
	return r
}

// point is one independent run of a sweep: a label plus a frozen Config.
// Sweeps declare their full point list up front and hand it to runPoints,
// which is what lets the runner execute them on several cores.
type point struct {
	label string
	cfg   netsim.Config
}

// bothArms appends the DIBS-off and DIBS-on arms of one sweep setting, the
// common shape of the paper's figures.
func bothArms(points []point, label string, cfg netsim.Config) []point {
	cfg.DIBS = false
	points = append(points, point{label + "/dctcp", cfg})
	cfg.DIBS = true
	points = append(points, point{label + "/dibs", cfg})
	return points
}

// runPoints executes the declared points — in parallel when o.Workers
// allows — and returns results in point order. Each run is a pure function
// of its Config, and log lines are emitted after collection in point
// order, so output is byte-identical for every worker count.
func (o *Opts) runPoints(points []point) []*netsim.Results {
	results := runner.Map(o.Workers, len(points), func(i int) *netsim.Results {
		cfg := points[i].cfg
		cfg.Engine = o.Engine
		cfg.Shards = o.Shards
		if o.Mode != "" {
			cfg.Mode = o.Mode
		}
		return netsim.Build(cfg).Run()
	})
	for i, r := range results {
		o.logf("%-40s %s", points[i].label, r)
	}
	return results
}
