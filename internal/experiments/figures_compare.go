package experiments

import (
	"fmt"

	"dibs/internal/eventq"
	"dibs/internal/netsim"
	"dibs/internal/transport"
	"dibs/internal/workload"
)

func init() {
	register("fig16", "DIBS vs pFabric under mixed traffic (paper Fig. 16)", fig16)
	register("fair", "Jain's fairness index for long-lived flows (paper §5.6)", fair)
	register("policies", "Detour-policy ablation (paper §7)", policies)
	register("topos", "DIBS on other topologies (paper §7)", topos)
	register("dupack", "Dup-ack threshold instead of disabling fast retransmit (paper §4)", dupack)
}

func fig16(o Opts) []*Table {
	o.normalize()
	a := &Table{
		ID:      "fig16a",
		Title:   "99th percentile background FCT: pFabric vs DCTCP+DIBS",
		XLabel:  "qps",
		Columns: []string{"FCT99-pfabric(ms)", "FCT99-dibs(ms)", "BGFCT99-pfabric(ms)", "BGFCT99-dibs(ms)"},
	}
	b := &Table{
		ID:      "fig16b",
		Title:   "99th percentile QCT: pFabric vs DCTCP+DIBS",
		XLabel:  "qps",
		Columns: []string{"QCT99-pfabric(ms)", "QCT99-dibs(ms)"},
	}
	rates := []float64{300, 500, 1000, 1500, 2000}
	var points []point
	for _, qps := range rates {
		base := o.paperConfig(400 * eventq.Millisecond)
		base.Query = &workload.QueryConfig{QPS: qps, Degree: 40, ResponseBytes: 20_000}

		pf := base
		pf.DIBS = false
		pf.Buffer = netsim.BufferPFabric
		pf.BufferPkts = 24
		pf.MarkAtPkts = 0
		pf.Transport = transport.PFabric
		points = append(points, point{fmt.Sprintf("fig16 qps=%g pfabric", qps), pf})
		points = append(points, point{fmt.Sprintf("fig16 qps=%g dibs", qps), base})
	}
	res := o.runPoints(points)
	for i, qps := range rates {
		pfr, dbr := res[2*i], res[2*i+1]
		x := fmt.Sprintf("%g", qps)
		a.AddRow(x, pfr.ShortFCT99, dbr.ShortFCT99, pfr.BGFCT99, dbr.BGFCT99)
		b.AddRow(x, pfr.QCT99, dbr.QCT99)
	}
	a.Note("paper: pFabric starves long background flows at high query rates (short flows outrank them); DIBS does not prioritize, so background FCT stays low")
	b.Note("paper: QCTs are comparable, and at high qps DIBS edges out pFabric, which drops and retransmits heavily")
	return []*Table{a, b}
}

func fair(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:      "fair",
		Title:   "Jain's index over long-lived pair flows (K=8, 64 pairs)",
		XLabel:  "flows-per-pair",
		Columns: []string{"jain-adjacent-pairs", "jain-shuffled-pairs"},
	}
	counts := []int{1, 2, 4, 8, 16}
	var points []point
	for _, n := range counts {
		base := o.paperConfig(150 * eventq.Millisecond)
		base.Drain = 0
		base.BGInterarrival = 0
		base.Query = nil

		adj := base
		adj.Long = &netsim.LongFlows{PerPair: n}
		points = append(points, point{fmt.Sprintf("fair n=%d adjacent", n), adj})

		sh := base
		sh.Long = &netsim.LongFlows{PerPair: n, Shuffle: true}
		points = append(points, point{fmt.Sprintf("fair n=%d shuffled", n), sh})
	}
	res := o.runPoints(points)
	for i, n := range counts {
		ra, rs := res[2*i], res[2*i+1]
		t.AddRow(fmt.Sprintf("%d", n), ra.JainIndex, rs.JainIndex)
	}
	t.Note("paper: Jain's index > 0.9 for all N (node-disjoint pairs). Shuffled pairing adds ECMP path collisions — a harder setting beyond the paper — and shows where flow-level ECMP, not DIBS, causes unfairness")
	return []*Table{t}
}

func policies(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:      "policies",
		Title:   "Detour policies under heavy incast (1000 qps, degree 40)",
		XLabel:  "policy",
		Columns: []string{"QCT99(ms)", "FCT99(ms)", "detours", "drops"},
	}
	arms := []struct {
		name string
		mut  func(*netsim.Config)
	}{
		{"droptail", func(c *netsim.Config) { c.DIBS = false }},
		{"random", func(c *netsim.Config) { c.Policy = netsim.PolicyRandom }},
		{"load-aware", func(c *netsim.Config) { c.Policy = netsim.PolicyLoadAware }},
		{"flow-based", func(c *netsim.Config) { c.Policy = netsim.PolicyFlowBased }},
		{"probabilistic", func(c *netsim.Config) { c.Policy = netsim.PolicyProbabilistic }},
	}
	var points []point
	for _, arm := range arms {
		cfg := o.paperConfig(300 * eventq.Millisecond)
		cfg.Query = &workload.QueryConfig{QPS: 1000, Degree: 40, ResponseBytes: 20_000}
		arm.mut(&cfg)
		points = append(points, point{"policies " + arm.name, cfg})
	}
	res := o.runPoints(points)
	for i, arm := range arms {
		r := res[i]
		t.AddRow(arm.name, r.QCT99, r.ShortFCT99, float64(r.Detours), float64(r.NetworkDrops()))
	}
	t.Note("paper §7 proposes these variants without evaluating them; random is the parameter-free default and the others trade small QCT differences for implementation complexity")
	return []*Table{t}
}

func topos(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:      "topos",
		Title:   "DIBS across topologies (incast via query traffic)",
		XLabel:  "topology",
		Columns: []string{"hosts", "QCT99-dctcp(ms)", "QCT99-dibs(ms)", "drops-dctcp", "drops-dibs"},
	}
	arms := []struct {
		name string
		mut  func(*netsim.Config)
	}{
		{"fattree-k4", func(c *netsim.Config) { c.Topo = netsim.TopoFatTree; c.FatTreeK = 4 }},
		{"jellyfish", func(c *netsim.Config) {
			c.Topo = netsim.TopoJellyfish
			c.JellyfishSwitches = 16
			c.JellyfishDegree = 4
			c.JellyfishHostsPer = 4
		}},
		{"hyperx-4x4", func(c *netsim.Config) {
			c.Topo = netsim.TopoHyperX
			c.HyperXX = 4
			c.HyperXY = 4
			c.HyperXHostsPer = 4
		}},
		{"linear-8", func(c *netsim.Config) {
			c.Topo = netsim.TopoLinear
			c.LinearSwitches = 8
			c.LinearHostsPer = 4
		}},
	}
	hosts := make([]int, len(arms))
	var points []point
	for i, arm := range arms {
		cfg := o.paperConfig(300 * eventq.Millisecond)
		cfg.BGInterarrival = 0
		cfg.Query = &workload.QueryConfig{QPS: 500, Degree: 10, ResponseBytes: 20_000}
		arm.mut(&cfg)
		// Topology-size probe: a Build without Run is cheap, keep it serial.
		hosts[i] = len(netsim.Build(cfg).Topo.Hosts())
		points = bothArms(points, "topos "+arm.name, cfg)
	}
	res := o.runPoints(points)
	for i, arm := range arms {
		dctcp, dibs := res[2*i], res[2*i+1]
		t.AddRow(arm.name, float64(hosts[i]), dctcp.QCT99, dibs.QCT99,
			float64(dctcp.TotalDrops), float64(dibs.NetworkDrops()))
	}
	t.Note("paper §7: richer path diversity (HyperX, Jellyfish) gives DIBS more detour options; even the linear chain works, detouring backwards (footnote 10)")
	return []*Table{t}
}

func dupack(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:      "dupack",
		Title:   "Reordering tolerance: dup-ack threshold with DIBS (paper §4)",
		XLabel:  "dupack-threshold",
		Columns: []string{"QCT99(ms)", "FCT99(ms)", "spurious-rexmits", "timeouts"},
	}
	threshes := []int{0, 3, 10, 20}
	labels := make([]string, len(threshes))
	var points []point
	for i, th := range threshes {
		cfg := o.paperConfig(300 * eventq.Millisecond)
		cfg.DupAckThresh = th
		labels[i] = fmt.Sprintf("%d", th)
		if th == 0 {
			labels[i] = "disabled"
		}
		points = append(points, point{"dupack " + labels[i], cfg})
	}
	res := o.runPoints(points)
	for i := range threshes {
		r := res[i]
		t.AddRow(labels[i], r.QCT99, r.ShortFCT99, float64(r.Retransmits), float64(r.Timeouts))
	}
	t.Note("paper: detour-induced reordering makes threshold 3 fire spurious fast retransmits; a threshold >= 10 (or disabling it) suffices")
	return []*Table{t}
}
