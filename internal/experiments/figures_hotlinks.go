package experiments

import (
	"fmt"

	"dibs/internal/eventq"
	"dibs/internal/netsim"
	"dibs/internal/packet"
	"dibs/internal/runner"
	"dibs/internal/stats"
	"dibs/internal/topology"
	"dibs/internal/workload"
)

func init() {
	register("fig04", "Hot-link sparsity across workload intensities (paper Fig. 4)", fig04)
	register("fig05", "Free buffer near hot links (paper Fig. 5)", fig05)
}

// hotWorkloads are the paper's baseline / heavy / extreme query rates.
var hotWorkloads = []struct {
	name string
	qps  float64
	base eventq.Time
}{
	{"baseline-300qps", 300, 300 * eventq.Millisecond},
	{"heavy-2000qps", 2000, 250 * eventq.Millisecond},
	{"extreme-10000qps", 10000, 80 * eventq.Millisecond},
}

// hotRun is one monitored workload run: the network (for monitor access)
// plus its results (for the log line).
type hotRun struct {
	net *netsim.Network
	res *netsim.Results
}

// runHotWorkloads runs all three paper workloads through the runner,
// returning networks in workload order; log lines follow collection order.
func runHotWorkloads(o *Opts, buffers bool) []hotRun {
	runs := runner.Map(o.Workers, len(hotWorkloads), func(i int) hotRun {
		w := hotWorkloads[i]
		cfg := o.paperConfig(w.base)
		cfg.Query = &workload.QueryConfig{QPS: w.qps, Degree: 40, ResponseBytes: 20_000}
		cfg.UtilWindow = 10 * eventq.Millisecond
		if buffers {
			cfg.BufferSamplePeriod = 10 * eventq.Millisecond
		}
		cfg.Drain = 100 * eventq.Millisecond
		n := netsim.Build(cfg)
		return hotRun{net: n, res: n.Run()}
	})
	for i, r := range runs {
		o.logf("hotlinks qps=%g: %s", hotWorkloads[i].qps, r.res)
	}
	return runs
}

// hotThreshold matches the paper's Fig. 4 criterion: utilization >= 90%.
const hotThreshold = 0.9

func fig04(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:      "fig04",
		Title:   "CDF over 10ms windows of the fraction of links hot (util >= 90%)",
		XLabel:  "frac-links-hot<=",
		Columns: []string{"baseline-300qps", "heavy-2000qps", "extreme-10000qps"},
	}
	var samples []*stats.Sample
	for _, run := range runHotWorkloads(&o, false) {
		var s stats.Sample
		s.AddAll(run.net.Util.HotFractions(hotThreshold))
		samples = append(samples, &s)
	}
	for _, x := range []float64{0, 0.01, 0.02, 0.05, 0.10, 0.20, 0.50} {
		vals := make([]float64, len(samples))
		for i, s := range samples {
			vals[i] = s.FractionBelow(x)
		}
		t.AddRow(fmt.Sprintf("%.2f", x), vals...)
	}
	t.Note("paper: congestion is sparse — in the baseline almost all windows have under a few %% of links hot; the extreme workload shifts the CDF right")
	return []*Table{t}
}

func fig05(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:     "fig05",
		Title:  "CDF of free-buffer fraction in switches near hot links (1-hop / 2-hop)",
		XLabel: "free-frac<=",
		Columns: []string{
			"baseline-1hop", "baseline-2hop",
			"heavy-1hop", "heavy-2hop",
			"extreme-1hop", "extreme-2hop",
		},
	}
	var samples []*stats.Sample
	for _, run := range runHotWorkloads(&o, true) {
		one, two := neighborhoodAvailability(run.net)
		samples = append(samples, one, two)
	}
	for _, x := range []float64{0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 1.0} {
		vals := make([]float64, len(samples))
		for i, s := range samples {
			vals[i] = s.FractionBelow(x)
		}
		t.AddRow(fmt.Sprintf("%.2f", x), vals...)
	}
	t.Note("paper: even in the heavy workload ~80%% of buffers near a congested link are empty; only the extreme (breaking) workload exhausts the neighborhood")
	return []*Table{t}
}

// neighborhoodAvailability pairs each utilization window with the buffer
// snapshot taken at the same instant and, for every hot link, computes the
// fraction of free buffer slots across the switches within one and two hops
// of the link's endpoints.
func neighborhoodAvailability(n *netsim.Network) (oneHop, twoHop *stats.Sample) {
	oneHop, twoHop = &stats.Sample{}, &stats.Sample{}
	util := n.Util
	buf := n.Buf
	if util == nil || buf == nil {
		panic("experiments: monitors not enabled")
	}
	// Queue lengths per switch for one snapshot.
	capPkts := n.Cfg.BufferPkts
	ports := buf.Ports()
	windows := len(util.Windows)
	if windows > len(buf.Snapshots) {
		windows = len(buf.Snapshots)
	}
	// Per-switch port index ranges in the sampler's flat port list.
	type swRange struct{ lo, hi int }
	ranges := map[packet.NodeID]swRange{}
	for i, p := range ports {
		r, ok := ranges[p.Node]
		if !ok {
			ranges[p.Node] = swRange{i, i + 1}
			continue
		}
		r.hi = i + 1
		ranges[p.Node] = r
	}
	avail := func(snap []int, sws map[packet.NodeID]bool) float64 {
		total, used := 0, 0
		for sw := range sws {
			r := ranges[sw]
			for i := r.lo; i < r.hi; i++ {
				total += capPkts
				used += snap[i]
			}
		}
		if total == 0 {
			return 1
		}
		f := 1 - float64(used)/float64(total)
		if f < 0 {
			f = 0
		}
		return f
	}
	for w := 0; w < windows; w++ {
		snap := buf.Snapshots[w].Len
		for _, pi := range util.HotPorts(w, hotThreshold) {
			ref := util.Ports()[pi]
			ends := []packet.NodeID{ref.Node}
			peer := n.Topo.Ports(ref.Node)[ref.Port].Peer
			if n.Topo.Node(peer).Kind == topology.Switch {
				ends = append(ends, peer)
			}
			one := map[packet.NodeID]bool{}
			for _, e := range ends {
				one[e] = true
				for _, nb := range n.Topo.Neighbors(e) {
					one[nb] = true
				}
			}
			two := map[packet.NodeID]bool{}
			for sw := range one {
				two[sw] = true
			}
			for sw := range one {
				for _, nb := range n.Topo.Neighbors(sw) {
					two[nb] = true
				}
			}
			oneHop.Add(avail(snap, one))
			twoHop.Add(avail(snap, two))
		}
	}
	return oneHop, twoHop
}
