package experiments

import (
	"fmt"

	"dibs/internal/eventq"
	"dibs/internal/netsim"
	"dibs/internal/workload"
)

func init() {
	register("pfc", "Ethernet flow control vs DIBS (paper §6)", pfc)
}

// pfc quantifies the §6 comparison the paper makes qualitatively: hop-by-hop
// pause (802.3x/PFC over shared-buffer switches) also avoids loss, but it
// shares buffers only with upstream switches and its cascading pauses block
// innocent traffic on shared links. DIBS spreads the excess to any
// neighbor. Both arms run over the same shared-buffer switches so only the
// mechanism differs; plain drop-tail DCTCP is the loss baseline.
func pfc(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:     "pfc",
		Title:  "Incast-degree sweep: drop-tail vs PFC vs DIBS",
		XLabel: "degree",
		Columns: []string{
			"QCT99-droptail(ms)", "QCT99-pfc(ms)", "QCT99-dibs(ms)",
			"FCT99-droptail(ms)", "FCT99-pfc(ms)", "FCT99-dibs(ms)",
			"drops-droptail", "drops-pfc", "pauses-pfc",
		},
	}
	degrees := []int{40, 60, 80, 100}
	var points []point
	for _, deg := range degrees {
		mk := func() netsim.Config {
			cfg := o.paperConfig(300 * eventq.Millisecond)
			cfg.BGInterarrival = 40 * eventq.Millisecond
			cfg.Query = &workload.QueryConfig{QPS: 300, Degree: deg, ResponseBytes: 20_000}
			return cfg
		}

		dt := mk()
		dt.DIBS = false
		points = append(points, point{fmt.Sprintf("pfc deg=%d droptail", deg), dt})

		pf := mk()
		pf.DIBS = false
		pf.Buffer = netsim.BufferShared
		pf.PFC = true
		points = append(points, point{fmt.Sprintf("pfc deg=%d pfc", deg), pf})

		points = append(points, point{fmt.Sprintf("pfc deg=%d dibs", deg), mk()})
	}
	res := o.runPoints(points)
	for i, deg := range degrees {
		dtr, pfr, dbr := res[3*i], res[3*i+1], res[3*i+2]
		t.AddRow(fmt.Sprintf("%d", deg),
			dtr.QCT99, pfr.QCT99, dbr.QCT99,
			dtr.ShortFCT99, pfr.ShortFCT99, dbr.ShortFCT99,
			float64(dtr.TotalDrops), float64(pfr.TotalDrops), float64(pfr.PFCPauses))
	}
	t.Note("paper §6: PFC also avoids loss but needs threshold tuning and only borrows upstream buffers; pause cascades can head-of-line-block victim flows, while DIBS detours around the hotspot with no parameters")
	return []*Table{t}
}
