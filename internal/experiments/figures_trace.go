package experiments

import (
	"fmt"
	"sort"

	"dibs/internal/eventq"
	"dibs/internal/netsim"
	"dibs/internal/topology"
	"dibs/internal/workload"
)

func init() {
	register("fig01", "Path of the most-detoured packet (paper Fig. 1)", fig01)
	register("fig02", "Detour timeline and pod buffer occupancy during a burst (paper Fig. 2)", fig02)
}

// fig01 samples packet traces under a bursty workload and reports the
// per-arc traversal counts of the worst-detoured delivered packet, the
// analogue of the paper's Figure 1 path diagram.
func fig01(o Opts) []*Table {
	o.normalize()
	cfg := o.paperConfig(200 * eventq.Millisecond)
	cfg.Query = &workload.QueryConfig{QPS: 1500, Degree: 60, ResponseBytes: 20_000}
	cfg.TraceEveryNth = 5
	n := netsim.Build(cfg)
	r := n.Run()
	o.logf("fig01: %s", r)

	t := &Table{
		ID:      "fig01",
		Title:   "Arc traversal counts for the most-detoured delivered packet",
		XLabel:  "arc",
		Columns: []string{"traversals", "via-detour"},
	}
	trace := r.Collector.BestTrace
	if len(trace) == 0 {
		t.Note("no detoured packet was traced at this scale; rerun with a larger -scale")
		return []*Table{t}
	}
	type arcStat struct{ total, detoured int }
	arcs := map[string]*arcStat{}
	var order []string
	for _, hop := range trace {
		from := n.Topo.Node(hop.Node).Name
		to := n.Topo.Node(n.Topo.Ports(hop.Node)[hop.Port].Peer).Name
		key := from + " -> " + to
		s, ok := arcs[key]
		if !ok {
			s = &arcStat{}
			arcs[key] = s
			order = append(order, key)
		}
		s.total++
		if hop.Detoured {
			s.detoured++
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if arcs[order[i]].total != arcs[order[j]].total {
			return arcs[order[i]].total > arcs[order[j]].total
		}
		return order[i] < order[j]
	})
	for _, k := range order {
		t.AddRow(k, float64(arcs[k].total), float64(arcs[k].detoured))
	}
	t.Note("packet detoured %d times over %d switch hops before delivery (paper's example: 15 detours)",
		r.MaxDetours, len(trace))
	return []*Table{t}
}

// fig02 reproduces the network-wide example of §2: a large synchronized
// burst toward one host, showing (a) detour decisions per switch layer over
// time and (b) queue occupancy in the target pod at three instants.
func fig02(o Opts) []*Table {
	o.normalize()
	cfg := netsim.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.BGInterarrival = 0
	cfg.Query = nil
	cfg.OneShot = &netsim.OneShot{
		At:             eventq.Millisecond,
		Senders:        100,
		FlowsPerSender: 1,
		Bytes:          20_000,
	}
	cfg.RecordTimeline = true
	cfg.BufferSamplePeriod = 250 * eventq.Microsecond
	cfg.Duration = 10 * eventq.Millisecond
	cfg.Drain = 500 * eventq.Millisecond
	n := netsim.Build(cfg)
	r := n.Run()
	o.logf("fig02: %s", r)

	timeline := &Table{
		ID:      "fig02a",
		Title:   "Detour decisions per 0.5ms bucket, by switch layer",
		XLabel:  "t(ms)",
		Columns: []string{"edge", "aggr", "core"},
	}
	const bucket = 500 * eventq.Microsecond
	counts := map[int][3]int{}
	maxB := 0
	for _, ev := range r.Collector.DetourTimeline {
		b := int(ev.T / bucket)
		if b > maxB {
			maxB = b
		}
		c := counts[b]
		switch n.Topo.Node(ev.Switch).Layer {
		case topology.LayerEdge:
			c[0]++
		case topology.LayerAggr:
			c[1]++
		case topology.LayerCore:
			c[2]++
		}
		counts[b] = c
	}
	for b := 0; b <= maxB; b++ {
		c := counts[b]
		timeline.AddRow(fmt.Sprintf("%.1f", float64(b)*bucket.Millis()),
			float64(c[0]), float64(c[1]), float64(c[2]))
	}
	timeline.Note("paper Fig 2a: aggregation switches detour during the burst peak; the target's edge switch keeps detouring longest")

	occupancy := &Table{
		ID:      "fig02b",
		Title:   "Target-pod queue occupancy at burst start (t1), peak (t2), late (t3)",
		XLabel:  "instant",
		Columns: []string{"edge-pkts", "aggr-pkts", "full-ports", "detours-in-bucket"},
	}
	hosts := n.Topo.Hosts()
	target := hosts[len(hosts)-1]
	pod := n.Topo.Node(n.Topo.Ports(target)[0].Peer).Pod
	snaps := n.Buf.Snapshots
	if len(snaps) > 0 && len(r.Collector.DetourTimeline) > 0 {
		first := r.Collector.DetourTimeline[0].T
		last := r.Collector.DetourTimeline[len(r.Collector.DetourTimeline)-1].T
		peak := first
		best := 0
		for b, c := range counts {
			if tot := c[0] + c[1] + c[2]; tot > best {
				best = tot
				peak = eventq.Time(b) * bucket
			}
		}
		for _, inst := range []struct {
			name string
			at   eventq.Time
		}{{"t1-start", first}, {"t2-peak", peak}, {"t3-late", (peak + last) / 2}} {
			si := sort.Search(len(snaps), func(i int) bool { return snaps[i].T >= inst.at })
			if si == len(snaps) {
				si--
			}
			snap := snaps[si]
			edge, aggr, full := 0, 0, 0
			for i, ref := range n.Buf.Ports() {
				nd := n.Topo.Node(ref.Node)
				if nd.Pod != pod {
					continue
				}
				switch nd.Layer {
				case topology.LayerEdge:
					edge += snap.Len[i]
				case topology.LayerAggr:
					aggr += snap.Len[i]
				}
				if snap.Full[i] {
					full++
				}
			}
			c := counts[int(inst.at/bucket)]
			occupancy.AddRow(fmt.Sprintf("%s(%.1fms)", inst.name, inst.at.Millis()),
				float64(edge), float64(aggr), float64(full), float64(c[0]+c[1]+c[2]))
		}
	}
	occupancy.Note("paper Fig 2b: buffers in the target pod fill at t2 (edge + all aggr detouring), then drain by t3 with only the edge switch still detouring; burst absorbed without loss (drops=%d)", r.NetworkDrops())
	return []*Table{timeline, occupancy}
}
