package experiments

import (
	"fmt"

	"dibs/internal/eventq"
	"dibs/internal/netsim"
	"dibs/internal/workload"
)

func init() {
	register("cioq", "DIBS on CIOQ switches (paper §4)", cioq)
}

// cioq checks §4's claim that DIBS drops into a combined input/output
// queued architecture "easily": the forwarding engine detours against the
// dedicated egress queues, and the qualitative results of the OQ evaluation
// carry over. Egress queues in CIOQ designs are much smaller (32 packets
// here), so DIBS engages earlier while VOQs absorb crossbar contention.
func cioq(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:     "cioq",
		Title:  "Output-queued vs CIOQ switches, with and without DIBS",
		XLabel: "degree",
		Columns: []string{
			"QCT99-oq-dctcp(ms)", "QCT99-oq-dibs(ms)",
			"QCT99-cioq-dctcp(ms)", "QCT99-cioq-dibs(ms)",
			"drops-cioq-dctcp", "drops-cioq-dibs",
		},
	}
	degrees := []int{40, 70, 100}
	var points []point
	for _, deg := range degrees {
		mk := func(arch netsim.SwitchArch) netsim.Config {
			cfg := o.paperConfig(300 * eventq.Millisecond)
			cfg.Query = &workload.QueryConfig{QPS: 300, Degree: deg, ResponseBytes: 20_000}
			cfg.Arch = arch
			if arch == netsim.ArchCIOQ {
				cfg.BufferPkts = 32
				cfg.MarkAtPkts = 10
			}
			return cfg
		}
		points = bothArms(points, fmt.Sprintf("cioq deg=%d oq", deg), mk(netsim.ArchOutputQueued))
		points = bothArms(points, fmt.Sprintf("cioq deg=%d cioq", deg), mk(netsim.ArchCIOQ))
	}
	res := o.runPoints(points)
	for i, deg := range degrees {
		oqD, oqB, ciD, ciB := res[4*i], res[4*i+1], res[4*i+2], res[4*i+3]
		t.AddRow(fmt.Sprintf("%d", deg),
			oqD.QCT99, oqB.QCT99, ciD.QCT99, ciB.QCT99,
			float64(ciD.TotalDrops), float64(ciB.NetworkDrops()))
	}
	t.Note("paper §4: DIBS is architecture-agnostic — on CIOQ it detours at the forwarding engine against the small dedicated egress queues, eliminating the drops the DCTCP-only CIOQ suffers, with the same qualitative win as on output-queued switches")
	return []*Table{t}
}
