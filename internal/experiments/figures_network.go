package experiments

import (
	"fmt"

	"dibs/internal/eventq"
	"dibs/internal/netsim"
	"dibs/internal/switching"
	"dibs/internal/workload"
)

func init() {
	register("fig07", "QCT vs buffer size, incl. infinite buffers (paper Fig. 7)", fig07)
	register("fig12", "Variable buffer size under heavy background (paper Fig. 12)", fig12)
	register("fig13", "Variable max TTL (paper Fig. 13)", fig13)
	register("oversub", "Oversubscribed fat-tree (paper §5.5.4)", oversub)
	register("dba", "Shared-buffer (DBA) switches (paper §5.5.2)", dba)
}

// markAtFor keeps the ECN threshold below tiny buffers.
func markAtFor(buffer int) int {
	if buffer < 20 {
		return (buffer + 1) / 2
	}
	return 20
}

func fig07(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:      "fig07",
		Title:   "99th percentile QCT vs switch buffer size",
		XLabel:  "buffer(pkts)",
		Columns: []string{"QCT99-dctcp(ms)", "QCT99-dctcp-inf(ms)", "QCT99-dibs(ms)"},
	}
	bufs := []int{25, 100, 300, 500, 700}
	var points []point
	for _, buf := range bufs {
		mk := func() netsim.Config {
			cfg := o.paperConfig(400 * eventq.Millisecond)
			cfg.BufferPkts = buf
			cfg.MarkAtPkts = markAtFor(buf)
			return cfg
		}
		cfg := mk()
		cfg.DIBS = false
		points = append(points, point{fmt.Sprintf("fig07 buf=%d dctcp", buf), cfg})

		cfg = mk()
		cfg.DIBS = false
		cfg.Buffer = netsim.BufferInfinite
		points = append(points, point{fmt.Sprintf("fig07 buf=%d dctcp-inf", buf), cfg})

		cfg = mk()
		cfg.DIBS = true
		points = append(points, point{fmt.Sprintf("fig07 buf=%d dibs", buf), cfg})
	}
	res := o.runPoints(points)
	for i, buf := range bufs {
		dctcp, inf, dibs := res[3*i], res[3*i+1], res[3*i+2]
		t.AddRow(fmt.Sprintf("%d", buf), dctcp.QCT99, inf.QCT99, dibs.QCT99)
	}
	t.Note("paper: DIBS tracks the infinite-buffer baseline even at small buffers, where plain DCTCP degrades badly")
	return []*Table{t}
}

func fig12(o Opts) []*Table {
	o.normalize()
	a := &Table{
		ID:      "fig12a",
		Title:   "99th percentile short-background FCT vs buffer size (BG inter-arrival 10ms)",
		XLabel:  "buffer(pkts)",
		Columns: []string{"FCT99-dctcp(ms)", "FCT99-dibs(ms)"},
	}
	b := &Table{
		ID:      "fig12b",
		Title:   "99th percentile QCT vs buffer size (BG inter-arrival 10ms)",
		XLabel:  "buffer(pkts)",
		Columns: []string{"QCT99-dctcp(ms)", "QCT99-dibs(ms)"},
	}
	bufs := []int{1, 5, 10, 25, 40, 100, 200}
	var points []point
	for _, buf := range bufs {
		cfg := o.paperConfig(250 * eventq.Millisecond)
		cfg.BGInterarrival = 10 * eventq.Millisecond
		cfg.BufferPkts = buf
		cfg.MarkAtPkts = markAtFor(buf)
		points = bothArms(points, fmt.Sprintf("fig12 buf=%d", buf), cfg)
	}
	res := o.runPoints(points)
	for i, buf := range bufs {
		dctcp, dibs := res[2*i], res[2*i+1]
		x := fmt.Sprintf("%d", buf)
		a.AddRow(x, dctcp.ShortFCT99, dibs.ShortFCT99)
		b.AddRow(x, dctcp.QCT99, dibs.QCT99)
	}
	b.Note("paper: DIBS absorbs bursts in neighboring switches, so its QCT stays low even with 1-packet buffers where DCTCP's QCT explodes")
	a.Note("paper: no FCT collateral damage at any buffer size")
	return []*Table{a, b}
}

func fig13(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:      "fig13",
		Title:   "Variable max TTL: limiting detours (BG inter-arrival 10ms)",
		XLabel:  "ttl",
		Columns: append(append([]string{}, qctFctColumns...), "ttl-drops-dibs"),
	}
	ttls := []int{12, 24, 36, 48, 255}
	var points []point
	for _, ttl := range ttls {
		cfg := o.paperConfig(250 * eventq.Millisecond)
		cfg.BGInterarrival = 10 * eventq.Millisecond
		cfg.TTL = ttl
		points = bothArms(points, fmt.Sprintf("fig13 ttl=%d", ttl), cfg)
	}
	res := o.runPoints(points)
	for i, ttl := range ttls {
		dctcp, dibs := res[2*i], res[2*i+1]
		t.AddRow(fmt.Sprintf("%d", ttl),
			dctcp.QCT99, dibs.QCT99, dctcp.ShortFCT99, dibs.ShortFCT99,
			float64(dibs.Drops[switching.DropTTL]))
	}
	t.Note("paper: DIBS QCT improves with larger TTL (small TTLs force drops of already-detoured packets); TTL has no effect on DCTCP and little on background FCT")
	return []*Table{t}
}

func oversub(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:      "oversub",
		Title:   "Oversubscribed fat-tree: DIBS improvement persists",
		XLabel:  "oversubscription",
		Columns: qctFctColumns,
	}
	factors := []int{1, 2, 3, 4}
	var points []point
	for _, f := range factors {
		cfg := o.paperConfig(400 * eventq.Millisecond)
		cfg.Oversub = f
		points = bothArms(points, fmt.Sprintf("oversub 1:%d", f*f), cfg)
	}
	res := o.runPoints(points)
	for i, f := range factors {
		dctcp, dibs := res[2*i], res[2*i+1]
		t.AddRow(fmt.Sprintf("1:%d", f*f), dctcp.QCT99, dibs.QCT99, dctcp.ShortFCT99, dibs.ShortFCT99)
	}
	t.Note("paper: DIBS lowers QCT99 by ~20ms at every oversubscription; the last downstream hop stays the bottleneck, where DIBS prevents loss")
	return []*Table{t}
}

func dba(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:      "dba",
		Title:   "Dynamic buffer allocation (shared 1133-packet pool per switch)",
		XLabel:  "degree",
		Columns: []string{"drops-dba", "drops-dba+dibs", "QCT99-dba(ms)", "QCT99-dba+dibs(ms)", "detours-dibs"},
	}
	degrees := []int{40, 100, 150, 250}
	var points []point
	for _, deg := range degrees {
		cfg := o.paperConfig(300 * eventq.Millisecond)
		cfg.Buffer = netsim.BufferShared
		cfg.Query = &workload.QueryConfig{
			QPS: 300, Degree: deg, ResponseBytes: 20_000,
			// Beyond 127 responders the generator reuses hosts via
			// multiple connections, as §5.5.2 does.
			MaxFanInPerHost: 3,
		}
		points = bothArms(points, fmt.Sprintf("dba degree=%d", deg), cfg)
	}
	res := o.runPoints(points)
	for i, deg := range degrees {
		dctcp, dibs := res[2*i], res[2*i+1]
		t.AddRow(fmt.Sprintf("%d", deg),
			float64(dctcp.TotalDrops), float64(dibs.NetworkDrops()),
			dctcp.QCT99, dibs.QCT99, float64(dibs.Detours))
	}
	t.Note("paper: DBA alone absorbs moderate incast with zero loss (DIBS idle); past ~degree 150 DBA overflows and drops while DIBS still avoids loss, cutting QCT99 by ~75%%")
	return []*Table{t}
}
