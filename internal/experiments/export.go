package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// jsonTable is the machine-readable form of a Table. NaN cells (no sample)
// are encoded as null.
type jsonTable struct {
	ID      string    `json:"id"`
	Title   string    `json:"title"`
	XLabel  string    `json:"xlabel"`
	Columns []string  `json:"columns"`
	Rows    []jsonRow `json:"rows"`
	Notes   []string  `json:"notes,omitempty"`
}

type jsonRow struct {
	X    string     `json:"x"`
	Vals []*float64 `json:"vals"`
}

// WriteJSON encodes the table as a single JSON object.
func (t *Table) WriteJSON(w io.Writer) error {
	jt := jsonTable{
		ID: t.ID, Title: t.Title, XLabel: t.XLabel,
		Columns: t.Columns, Notes: t.Notes,
	}
	for _, r := range t.Rows {
		jr := jsonRow{X: r.X, Vals: make([]*float64, len(r.Vals))}
		for i, v := range r.Vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				v := v
				jr.Vals[i] = &v
			}
		}
		jt.Rows = append(jt.Rows, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// WriteCSV encodes the table as CSV with a header row; NaN cells are empty.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{t.XLabel}, t.Columns...)); err != nil {
		return err
	}
	for _, r := range t.Rows {
		rec := make([]string, 0, len(r.Vals)+1)
		rec = append(rec, r.X)
		for _, v := range r.Vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				rec = append(rec, "")
			} else {
				rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ParseTableJSON reads back a table written by WriteJSON.
func ParseTableJSON(r io.Reader) (*Table, error) {
	var jt jsonTable
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, err
	}
	t := &Table{ID: jt.ID, Title: jt.Title, XLabel: jt.XLabel, Columns: jt.Columns, Notes: jt.Notes}
	for _, jr := range jt.Rows {
		if len(jr.Vals) != len(jt.Columns) {
			return nil, fmt.Errorf("experiments: row %q has %d vals for %d columns",
				jr.X, len(jr.Vals), len(jt.Columns))
		}
		vals := make([]float64, len(jr.Vals))
		for i, v := range jr.Vals {
			if v == nil {
				vals[i] = math.NaN()
			} else {
				vals[i] = *v
			}
		}
		t.AddRow(jr.X, vals...)
	}
	return t, nil
}
