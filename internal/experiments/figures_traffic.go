package experiments

import (
	"fmt"

	"dibs/internal/eventq"
	"dibs/internal/switching"
	"dibs/internal/workload"
)

func init() {
	register("fig08", "Variable background traffic (paper Fig. 8)", fig08)
	register("fig09", "Variable query arrival rate (paper Fig. 9)", fig09)
	register("fig10", "Variable query response size (paper Fig. 10)", fig10)
	register("fig11", "Variable incast degree (paper Fig. 11)", fig11)
	register("fig14", "Extreme query intensity — where DIBS breaks (paper Fig. 14)", fig14)
	register("fig15", "Large query response sizes at 2000 qps (paper Fig. 15)", fig15)
}

// qctFctColumns is the common four-series layout of Figures 8-11.
var qctFctColumns = []string{"QCT99-dctcp(ms)", "QCT99-dibs(ms)", "FCT99-dctcp(ms)", "FCT99-dibs(ms)"}

func fig08(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:      "fig08",
		Title:   "99th percentile QCT and short-background FCT vs background inter-arrival",
		XLabel:  "interarrival(ms)",
		Columns: qctFctColumns,
	}
	ias := []eventq.Time{10, 20, 40, 80, 120}
	var points []point
	for _, ia := range ias {
		cfg := o.paperConfig(400 * eventq.Millisecond)
		cfg.BGInterarrival = ia * eventq.Millisecond
		points = bothArms(points, fmt.Sprintf("fig08 ia=%dms", ia), cfg)
	}
	res := o.runPoints(points)
	for i, ia := range ias {
		dctcp, dibs := res[2*i], res[2*i+1]
		t.AddRow(fmt.Sprintf("%d", ia), dctcp.QCT99, dibs.QCT99, dctcp.ShortFCT99, dibs.ShortFCT99)
	}
	t.Note("paper: DIBS cuts QCT99 by ~20ms at every BG intensity; FCT99 rises <2ms (low collateral damage)")
	return []*Table{t}
}

func fig09(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:      "fig09",
		Title:   "99th percentile QCT and short-background FCT vs query arrival rate",
		XLabel:  "qps",
		Columns: qctFctColumns,
	}
	detail := &Table{
		ID:      "fig09-detours",
		Title:   "Detour accounting vs query rate (§5.4.2 claims)",
		XLabel:  "qps",
		Columns: []string{"detoured-frac", "query-share-of-detours", "drops-dibs", "drops-dctcp"},
	}
	rates := []float64{300, 500, 1000, 1500, 2000}
	var points []point
	for _, qps := range rates {
		cfg := o.paperConfig(400 * eventq.Millisecond)
		cfg.Query = &workload.QueryConfig{QPS: qps, Degree: 40, ResponseBytes: 20_000}
		points = bothArms(points, fmt.Sprintf("fig09 qps=%g", qps), cfg)
	}
	res := o.runPoints(points)
	for i, qps := range rates {
		dctcp, dibs := res[2*i], res[2*i+1]
		t.AddRow(fmt.Sprintf("%g", qps), dctcp.QCT99, dibs.QCT99, dctcp.ShortFCT99, dibs.ShortFCT99)

		queryShare := 0.0
		if dibs.Detours > 0 {
			queryShare = float64(dibs.Collector.DetoursByClass[0]) / float64(dibs.Detours)
		}
		detail.AddRow(fmt.Sprintf("%g", qps), dibs.DetouredFrac, queryShare,
			float64(dibs.NetworkDrops()), float64(dctcp.NetworkDrops()))
	}
	t.Note("paper: DIBS improves QCT99 ~20ms across rates; at 2000qps DIBS also improves FCT99")
	detail.Note("paper: >99%% of detoured packets belong to query traffic; DIBS has (virtually) no drops while DCTCP drops thousands")
	return []*Table{t, detail}
}

func fig10(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:      "fig10",
		Title:   "99th percentile QCT and short-background FCT vs response size",
		XLabel:  "response(KB)",
		Columns: qctFctColumns,
	}
	sizes := []int64{20, 30, 40, 50}
	var points []point
	for _, kb := range sizes {
		cfg := o.paperConfig(400 * eventq.Millisecond)
		cfg.Query = &workload.QueryConfig{QPS: 300, Degree: 40, ResponseBytes: kb * 1000}
		points = bothArms(points, fmt.Sprintf("fig10 size=%dKB", kb), cfg)
	}
	res := o.runPoints(points)
	for i, kb := range sizes {
		dctcp, dibs := res[2*i], res[2*i+1]
		t.AddRow(fmt.Sprintf("%d", kb), dctcp.QCT99, dibs.QCT99, dctcp.ShortFCT99, dibs.ShortFCT99)
	}
	t.Note("paper: the QCT improvement shrinks as responses grow (21ms at 20KB -> 6ms at 50KB); FCT collateral grows slightly")
	return []*Table{t}
}

func fig11(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:      "fig11",
		Title:   "99th percentile QCT and short-background FCT vs incast degree",
		XLabel:  "degree",
		Columns: qctFctColumns,
	}
	worst := &Table{
		ID:      "fig11-detours",
		Title:   "Detours per packet vs incast degree (§5.4.4 burstiness claim)",
		XLabel:  "degree",
		Columns: []string{"p99-detours-per-detoured-pkt", "max-detours"},
	}
	degrees := []int{40, 60, 80, 100}
	var points []point
	for _, deg := range degrees {
		cfg := o.paperConfig(400 * eventq.Millisecond)
		cfg.Query = &workload.QueryConfig{QPS: 300, Degree: deg, ResponseBytes: 20_000}
		points = bothArms(points, fmt.Sprintf("fig11 degree=%d", deg), cfg)
	}
	res := o.runPoints(points)
	for i, deg := range degrees {
		dctcp, dibs := res[2*i], res[2*i+1]
		t.AddRow(fmt.Sprintf("%d", deg), dctcp.QCT99, dibs.QCT99, dctcp.ShortFCT99, dibs.ShortFCT99)
		worst.AddRow(fmt.Sprintf("%d", deg), dibs.DetourP99, float64(dibs.MaxDetours))
	}
	t.Note("paper: the QCT improvement grows with degree (22ms at 40 -> 33ms at 100); high degree hurts DCTCP far more than DIBS")
	worst.Note("paper: at degree 100, 1%% of packets detour 40+ times (vs ~10 for the same bytes via larger responses)")
	return []*Table{t, worst}
}

func fig14(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:      "fig14",
		Title:   "Extreme query intensity: QCT and background FCT (DIBS breaking point)",
		XLabel:  "qps",
		Columns: append(append([]string{}, qctFctColumns...), "dibs-forced-drops", "dibs-qdone-frac"),
	}
	rates := []float64{6000, 8000, 10000, 12000, 14000}
	var points []point
	for _, qps := range rates {
		cfg := o.paperConfig(100 * eventq.Millisecond)
		cfg.Drain = 1500 * eventq.Millisecond
		cfg.Query = &workload.QueryConfig{QPS: qps, Degree: 40, ResponseBytes: 20_000}
		points = bothArms(points, fmt.Sprintf("fig14 qps=%g", qps), cfg)
	}
	res := o.runPoints(points)
	for i, qps := range rates {
		dctcp, dibs := res[2*i], res[2*i+1]
		doneFrac := 0.0
		if dibs.QueriesStarted > 0 {
			doneFrac = float64(dibs.QueriesDone) / float64(dibs.QueriesStarted)
		}
		t.AddRow(fmt.Sprintf("%g", qps),
			dctcp.QCT99, dibs.QCT99, dctcp.ShortFCT99, dibs.ShortFCT99,
			float64(dibs.Drops[switching.DropNoDetour]), doneFrac)
	}
	t.Note("paper: past ~10000 qps detoured packets cannot leave the network; queues build everywhere and DIBS hurts both traffic classes")
	return []*Table{t}
}

func fig15(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:      "fig15",
		Title:   "Large responses at 2000 qps: DIBS does not break",
		XLabel:  "response(KB)",
		Columns: qctFctColumns,
	}
	sizes := []int64{60, 80, 100, 120, 160}
	var points []point
	for _, kb := range sizes {
		cfg := o.paperConfig(80 * eventq.Millisecond)
		cfg.Drain = 1500 * eventq.Millisecond
		cfg.Query = &workload.QueryConfig{QPS: 2000, Degree: 40, ResponseBytes: kb * 1000}
		points = bothArms(points, fmt.Sprintf("fig15 size=%dKB", kb), cfg)
	}
	res := o.runPoints(points)
	for i, kb := range sizes {
		dctcp, dibs := res[2*i], res[2*i+1]
		t.AddRow(fmt.Sprintf("%d", kb), dctcp.QCT99, dibs.QCT99, dctcp.ShortFCT99, dibs.ShortFCT99)
	}
	t.Note("paper: multi-RTT responses give DCTCP time to throttle senders, so DIBS keeps its advantage and never collapses")
	return []*Table{t}
}
