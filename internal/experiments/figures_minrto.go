package experiments

import (
	"fmt"

	"dibs/internal/eventq"
)

func init() {
	register("minrto", "minRTO sensitivity: Table 1's 10ms vs §4's 1ms", minrto)
}

// minrto resolves an internal tension in the paper: Table 1 lists a 10ms
// minRTO while §4 says "we use a default MinRTO value of 1ms, which is
// commonly used in data center variants of TCP". Measured outcome: the
// DIBS tail is *insensitive* to minRTO (its p99 comes from detour queueing,
// not timeouts — timeout counts collapse to single digits at 10-20ms),
// while DCTCP improves sharply with a small minRTO (fine-grained
// retransmissions mask incast loss, as in Vasudevan et al.), narrowing or
// closing the gap at 1-2ms. This supports the paper's framing: DIBS's win
// is precisely that it does not depend on aggressive timeout tuning (§4:
// "the value of the timeout is not important").
func minrto(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:      "minrto",
		Title:   "99th percentile QCT vs minRTO (default workload)",
		XLabel:  "minRTO(ms)",
		Columns: []string{"QCT99-dctcp(ms)", "QCT99-dibs(ms)", "timeouts-dctcp", "timeouts-dibs"},
	}
	rtos := []eventq.Time{1, 2, 5, 10, 20}
	var points []point
	for _, rto := range rtos {
		cfg := o.paperConfig(400 * eventq.Millisecond)
		cfg.MinRTO = rto * eventq.Millisecond
		points = bothArms(points, fmt.Sprintf("minrto %dms", rto), cfg)
	}
	res := o.runPoints(points)
	for i, rto := range rtos {
		dctcp, dibs := res[2*i], res[2*i+1]
		t.AddRow(fmt.Sprintf("%d", rto),
			dctcp.QCT99, dibs.QCT99, float64(dctcp.Timeouts), float64(dibs.Timeouts))
	}
	t.Note("DIBS's tail is timeout-independent (detour queueing), so it needs no minRTO tuning; DCTCP needs a 1-2ms minRTO to approach it — §4's point that with DIBS 'the value of the timeout is not important'")
	return []*Table{t}
}
