package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func quickOpts() Opts {
	return Opts{Seed: 3, Scale: 0.05}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig01", "fig02", "fig04", "fig05", "fig06", "fig07", "fig08",
		"fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "dba", "oversub", "fair", "policies", "topos", "dupack",
		"pfc", "spray", "delack", "cioq", "minrto",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Fatalf("registry has %d experiments, want >= %d", len(All()), len(want))
	}
	// All() is sorted and stable.
	ids := All()
	for i := 1; i < len(ids); i++ {
		if ids[i-1].ID >= ids[i].ID {
			t.Fatal("All() not sorted")
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID should miss unknown ids")
	}
}

func TestTableRenderAndValidation(t *testing.T) {
	tb := &Table{ID: "x", Title: "T", XLabel: "x", Columns: []string{"a", "b"}}
	tb.AddRow("r1", 1, math.NaN())
	tb.Note("hello %d", 7)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"## x — T", "r1", "1.00", "-", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row width should panic")
		}
	}()
	tb.AddRow("bad", 1)
}

func TestFormatVal(t *testing.T) {
	cases := map[float64]string{
		math.NaN(): "-",
		0:          "0.00",
		0.0003:     "0.0003",
		12.345:     "12.35",
		123456:     "123456",
	}
	for v, want := range cases {
		if got := formatVal(v); got != want {
			t.Errorf("formatVal(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestOptsScaling(t *testing.T) {
	o := Opts{}
	o.normalize()
	if o.Scale != 1 || o.Seed != 1 {
		t.Fatal("normalize defaults")
	}
	o.Scale = 0.001
	if d := o.dur(1000 * 1000 * 1000); d < 20*1000*1000 {
		t.Fatal("dur floor not applied")
	}
}

// Smoke-run every registered experiment at a tiny scale: tables render,
// rows are present, and no NaN-only series appear where data must exist.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are slow")
	}
	heavy := map[string]bool{
		// These sweep extreme workloads; exercised separately below with
		// reduced scope via the registry entry itself.
		"fig14": true, "fig15": true, "fig05": true, "fig04": true,
	}
	for _, e := range All() {
		if heavy[e.ID] {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(quickOpts())
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if tb.ID == "" || tb.Title == "" {
					t.Fatalf("%s: table missing metadata", e.ID)
				}
				var buf bytes.Buffer
				tb.Render(&buf)
				if buf.Len() == 0 {
					t.Fatalf("%s: empty render", tb.ID)
				}
			}
		})
	}
}
