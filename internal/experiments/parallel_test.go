package experiments

import (
	"bytes"
	"fmt"
	"testing"
)

// renderAll runs one experiment and returns the rendered tables plus the
// full log stream — everything a user of cmd/figures can observe.
func renderAll(t *testing.T, id string, workers int) (tables, logs string) {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	var logBuf bytes.Buffer
	o := Opts{
		Seed:    3,
		Scale:   0.05,
		Workers: workers,
		Log: func(format string, args ...any) {
			fmt.Fprintf(&logBuf, format+"\n", args...)
		},
	}
	var tabBuf bytes.Buffer
	for _, tab := range e.Run(o) {
		tab.Render(&tabBuf)
	}
	return tabBuf.String(), logBuf.String()
}

// TestParallelMatchesSerial is the runner's determinism contract, end to
// end: for sweep experiments the parallel path must produce byte-identical
// tables AND byte-identical log streams to the serial path. fig08 and
// fig12 are plain both-arm sweeps; fig06 exercises the repeat-seed grid;
// fig07 a three-arm sweep.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full experiments")
	}
	for _, id := range []string{"fig08", "fig12", "fig06", "fig07"} {
		t.Run(id, func(t *testing.T) {
			serialTab, serialLog := renderAll(t, id, 1)
			for _, workers := range []int{2, 4} {
				parTab, parLog := renderAll(t, id, workers)
				if parTab != serialTab {
					t.Errorf("workers=%d: tables differ from serial\n--- serial ---\n%s\n--- workers=%d ---\n%s",
						workers, serialTab, workers, parTab)
				}
				if parLog != serialLog {
					t.Errorf("workers=%d: log stream differs from serial\n--- serial ---\n%s\n--- workers=%d ---\n%s",
						workers, serialLog, workers, parLog)
				}
			}
		})
	}
}
