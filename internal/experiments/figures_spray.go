package experiments

import (
	"fmt"

	"dibs/internal/eventq"
	"dibs/internal/netsim"
	"dibs/internal/workload"
)

func init() {
	register("spray", "Packet-level ECMP vs DIBS under incast (paper §6)", spray)
	register("delack", "Per-segment vs DCTCP delayed ACKs (fidelity ablation)", delack)
}

// spray quantifies the §6 claim: "even packet-level, load-aware routing
// will not help [incast], while DIBS can" — spraying spreads load across
// core paths but the receiver's last hop still has exactly one path, so the
// edge switch overflows all the same.
func spray(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:     "spray",
		Title:  "Incast-degree sweep: flow-level ECMP vs packet spraying vs DIBS",
		XLabel: "degree",
		Columns: []string{
			"QCT99-ecmp(ms)", "QCT99-spray(ms)", "QCT99-dibs(ms)",
			"drops-ecmp", "drops-spray", "drops-dibs",
		},
	}
	for _, deg := range []int{40, 70, 100} {
		mk := func() netsim.Config {
			cfg := o.paperConfig(300 * eventq.Millisecond)
			cfg.Query = &workload.QueryConfig{QPS: 300, Degree: deg, ResponseBytes: 20_000}
			cfg.DIBS = false
			return cfg
		}
		ec := mk()
		ecr := o.run(fmt.Sprintf("spray deg=%d ecmp", deg), ec)

		sp := mk()
		sp.PacketSpray = true
		spr := o.run(fmt.Sprintf("spray deg=%d spray", deg), sp)

		db := mk()
		db.DIBS = true
		dbr := o.run(fmt.Sprintf("spray deg=%d dibs", deg), db)

		t.AddRow(fmt.Sprintf("%d", deg),
			ecr.QCT99, spr.QCT99, dbr.QCT99,
			float64(ecr.TotalDrops), float64(spr.TotalDrops), float64(dbr.NetworkDrops()))
	}
	t.Note("paper §6: spraying balances core links but cannot add capacity at the receiver's single downlink, so incast drops persist; DIBS absorbs them in neighbor buffers")
	return []*Table{t}
}

// delack compares the default per-segment ACKs against the DCTCP paper's
// delayed-ACK ECN-echo state machine, checking that the reproduction's
// headline numbers are not an artifact of the ACKing simplification.
func delack(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:     "delack",
		Title:  "ACKing fidelity: per-segment vs delayed ACKs (DCTCP+DIBS)",
		XLabel: "acking",
		Columns: []string{
			"QCT99(ms)", "FCT99(ms)", "drops", "detours",
		},
	}
	for _, delayed := range []bool{false, true} {
		cfg := o.paperConfig(400 * eventq.Millisecond)
		cfg.DelayedAck = delayed
		label := "per-segment"
		if delayed {
			label = "delayed-2:1"
		}
		r := o.run("delack "+label, cfg)
		t.AddRow(label, r.QCT99, r.ShortFCT99, float64(r.NetworkDrops()), float64(r.Detours))
	}
	t.Note("the two ACKing models should agree on the paper's qualitative results; delayed ACKs halve ACK load and slightly change timings")
	return []*Table{t}
}
