package experiments

import (
	"fmt"

	"dibs/internal/eventq"
	"dibs/internal/netsim"
	"dibs/internal/workload"
)

func init() {
	register("spray", "Packet-level ECMP vs DIBS under incast (paper §6)", spray)
	register("delack", "Per-segment vs DCTCP delayed ACKs (fidelity ablation)", delack)
}

// spray quantifies the §6 claim: "even packet-level, load-aware routing
// will not help [incast], while DIBS can" — spraying spreads load across
// core paths but the receiver's last hop still has exactly one path, so the
// edge switch overflows all the same.
func spray(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:     "spray",
		Title:  "Incast-degree sweep: flow-level ECMP vs packet spraying vs DIBS",
		XLabel: "degree",
		Columns: []string{
			"QCT99-ecmp(ms)", "QCT99-spray(ms)", "QCT99-dibs(ms)",
			"drops-ecmp", "drops-spray", "drops-dibs",
		},
	}
	degrees := []int{40, 70, 100}
	var points []point
	for _, deg := range degrees {
		mk := func() netsim.Config {
			cfg := o.paperConfig(300 * eventq.Millisecond)
			cfg.Query = &workload.QueryConfig{QPS: 300, Degree: deg, ResponseBytes: 20_000}
			cfg.DIBS = false
			return cfg
		}
		points = append(points, point{fmt.Sprintf("spray deg=%d ecmp", deg), mk()})

		sp := mk()
		sp.PacketSpray = true
		points = append(points, point{fmt.Sprintf("spray deg=%d spray", deg), sp})

		db := mk()
		db.DIBS = true
		points = append(points, point{fmt.Sprintf("spray deg=%d dibs", deg), db})
	}
	res := o.runPoints(points)
	for i, deg := range degrees {
		ecr, spr, dbr := res[3*i], res[3*i+1], res[3*i+2]
		t.AddRow(fmt.Sprintf("%d", deg),
			ecr.QCT99, spr.QCT99, dbr.QCT99,
			float64(ecr.TotalDrops), float64(spr.TotalDrops), float64(dbr.NetworkDrops()))
	}
	t.Note("paper §6: spraying balances core links but cannot add capacity at the receiver's single downlink, so incast drops persist; DIBS absorbs them in neighbor buffers")
	return []*Table{t}
}

// delack compares the default per-segment ACKs against the DCTCP paper's
// delayed-ACK ECN-echo state machine, checking that the reproduction's
// headline numbers are not an artifact of the ACKing simplification.
func delack(o Opts) []*Table {
	o.normalize()
	t := &Table{
		ID:     "delack",
		Title:  "ACKing fidelity: per-segment vs delayed ACKs (DCTCP+DIBS)",
		XLabel: "acking",
		Columns: []string{
			"QCT99(ms)", "FCT99(ms)", "drops", "detours",
		},
	}
	labels := []string{"per-segment", "delayed-2:1"}
	var points []point
	for i, delayed := range []bool{false, true} {
		cfg := o.paperConfig(400 * eventq.Millisecond)
		cfg.DelayedAck = delayed
		points = append(points, point{"delack " + labels[i], cfg})
	}
	res := o.runPoints(points)
	for i, r := range res {
		t.AddRow(labels[i], r.QCT99, r.ShortFCT99, float64(r.NetworkDrops()), float64(r.Detours))
	}
	t.Note("the two ACKing models should agree on the paper's qualitative results; delayed ACKs halve ACK load and slightly change timings")
	return []*Table{t}
}
