package experiments

import (
	"math"
	"testing"
)

// Shape-regression tests: each asserts the qualitative relationship the
// paper's figure turns on, at a reduced scale, so refactors that silently
// break a reproduction are caught by `go test`. These complement the smoke
// tests (which only check that experiments run).

func col(tb *Table, name string) int {
	for i, c := range tb.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

func TestShapeFig06DIBSNearOptimal(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are slow")
	}
	tables := mustRun(t, "fig06", Opts{Seed: 11, Scale: 0.3})
	qct := tables[0]
	byName := map[string][]float64{}
	for _, r := range qct.Rows {
		byName[r.X] = r.Vals
	}
	p99 := col(qct, "QCT-p99(ms)")
	inf, det, dt := byName["InfiniteBuf"][p99], byName["Detour"][p99], byName["Droptail100"][p99]
	if !(det < inf*1.3) {
		t.Fatalf("DIBS p99 %.2f not near infinite-buffer %.2f", det, inf)
	}
	if !(dt > det*1.5) {
		t.Fatalf("droptail p99 %.2f not clearly worse than DIBS %.2f", dt, det)
	}
}

func TestShapeFig09DIBSWinsAtEveryRate(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are slow")
	}
	tables := mustRun(t, "fig09", Opts{Seed: 11, Scale: 0.15})
	main := tables[0]
	cd, cb := col(main, "QCT99-dctcp(ms)"), col(main, "QCT99-dibs(ms)")
	for _, r := range main.Rows {
		if math.IsNaN(r.Vals[cd]) || math.IsNaN(r.Vals[cb]) {
			continue
		}
		if r.Vals[cb] >= r.Vals[cd] {
			t.Fatalf("qps %s: DIBS QCT99 %.2f !< DCTCP %.2f", r.X, r.Vals[cb], r.Vals[cd])
		}
	}
	// Detour accounting: query traffic dominates detours, and DIBS drops
	// are (virtually) zero while DCTCP/droptail drops thousands. A stray
	// TTL-expiry drop under the most extreme rates is legitimate DIBS
	// physics (§5.5.3), so the bound is relative, not an exact zero.
	det := tables[1]
	qs, dr, dc := col(det, "query-share-of-detours"), col(det, "drops-dibs"), col(det, "drops-dctcp")
	for _, r := range det.Rows {
		if r.Vals[qs] < 0.8 {
			t.Fatalf("qps %s: query share of detours %.2f < 0.8", r.X, r.Vals[qs])
		}
		if r.Vals[dr] > 0 && r.Vals[dr]*500 > r.Vals[dc] {
			t.Fatalf("qps %s: DIBS dropped %v packets (DCTCP %v); not ~zero",
				r.X, r.Vals[dr], r.Vals[dc])
		}
	}
}

func TestShapeSprayDoesNotHelpIncast(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are slow")
	}
	tables := mustRun(t, "spray", Opts{Seed: 11, Scale: 0.15})
	tb := tables[0]
	de, ds, db := col(tb, "drops-ecmp"), col(tb, "drops-spray"), col(tb, "drops-dibs")
	for _, r := range tb.Rows {
		if r.Vals[de] == 0 {
			continue // workload too light at this scale
		}
		// Spraying stays within 2x of flow ECMP's drops; DIBS is at least
		// 10x below both.
		if r.Vals[ds] < r.Vals[de]/2 {
			t.Fatalf("degree %s: spraying eliminated drops (%v vs %v)", r.X, r.Vals[ds], r.Vals[de])
		}
		if r.Vals[db] > r.Vals[de]/10 {
			t.Fatalf("degree %s: DIBS drops %v not << ECMP drops %v", r.X, r.Vals[db], r.Vals[de])
		}
	}
}

func TestShapeFig13TTLDropsDecrease(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests are slow")
	}
	tables := mustRun(t, "fig13", Opts{Seed: 11, Scale: 0.1})
	tb := tables[0]
	td := col(tb, "ttl-drops-dibs")
	first := tb.Rows[0].Vals[td]             // TTL 12
	last := tb.Rows[len(tb.Rows)-1].Vals[td] // TTL 255
	if last != 0 {
		t.Fatalf("TTL 255 should never expire (drops %v)", last)
	}
	if first == 0 {
		t.Skip("no TTL pressure at this scale")
	}
}

func mustRun(t *testing.T, id string, o Opts) []*Table {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q missing", id)
	}
	tables := e.Run(o)
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	return tables
}
