package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{ID: "t1", Title: "Test", XLabel: "x", Columns: []string{"a", "b"}}
	t.AddRow("10", 1.5, math.NaN())
	t.AddRow("20", 2.25, -3)
	t.Note("shape holds")
	return t
}

func TestJSONRoundTrip(t *testing.T) {
	tb := sampleTable()
	var buf bytes.Buffer
	if err := tb.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"id": "t1"`) || !strings.Contains(buf.String(), "null") {
		t.Fatalf("json = %s", buf.String())
	}
	back, err := ParseTableJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != tb.ID || len(back.Rows) != 2 || back.Columns[1] != "b" {
		t.Fatalf("round trip: %+v", back)
	}
	if !math.IsNaN(back.Rows[0].Vals[1]) {
		t.Fatal("NaN not preserved via null")
	}
	if back.Rows[1].Vals[0] != 2.25 {
		t.Fatal("value lost")
	}
	if len(back.Notes) != 1 {
		t.Fatal("notes lost")
	}
}

func TestCSVExport(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "x,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "10,1.5," {
		t.Fatalf("NaN row = %q", lines[1])
	}
	if lines[2] != "20,2.25,-3" {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestParseTableJSONRejectsRaggedRows(t *testing.T) {
	bad := `{"id":"x","title":"t","xlabel":"x","columns":["a","b"],"rows":[{"x":"1","vals":[1]}]}`
	if _, err := ParseTableJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("ragged row accepted")
	}
}
