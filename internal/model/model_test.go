package model

import (
	"testing"
	"testing/quick"

	"dibs/internal/eventq"
)

func TestWireBytes(t *testing.T) {
	w := DefaultWire
	if w.WireBytes(0) != 0 || w.Segments(0) != 0 {
		t.Fatal("zero payload")
	}
	if w.WireBytes(1) != 41 {
		t.Fatalf("1 byte -> %d wire bytes", w.WireBytes(1))
	}
	if w.WireBytes(1460) != 1500 {
		t.Fatalf("full segment -> %d", w.WireBytes(1460))
	}
	if w.WireBytes(1461) != 1461+80 {
		t.Fatalf("1461 bytes -> %d", w.WireBytes(1461))
	}
	if w.Segments(20_000) != 14 {
		t.Fatalf("20KB -> %d segments", w.Segments(20_000))
	}
}

func TestSerializationTime(t *testing.T) {
	// 1500 bytes at 1Gbps = 12us.
	if got := SerializationTime(1500, 1_000_000_000); got != 12*eventq.Microsecond {
		t.Fatalf("serialization = %v", got)
	}
}

func TestIncastIdealQCT(t *testing.T) {
	// 40 x 20KB at 1Gbps: 40 x 20560 wire bytes = 822400B -> 6.58ms.
	got := IncastIdealQCT(40, 20_000, 1_000_000_000, 100*eventq.Microsecond, DefaultWire)
	if got < 6*eventq.Millisecond || got > 7*eventq.Millisecond {
		t.Fatalf("ideal QCT = %v, want ~6.6ms", got)
	}
}

func TestSlowStartIdealFCT(t *testing.T) {
	rtt := 200 * eventq.Microsecond
	// Tiny flow: one round trip dominates.
	small := SlowStartIdealFCT(1000, 1_000_000_000, rtt, 10, DefaultWire)
	if small < rtt || small > rtt+50*eventq.Microsecond {
		t.Fatalf("small-flow FCT = %v", small)
	}
	// Large flow: serialization dominates: 10MB ~ 82ms at 1Gbps.
	large := SlowStartIdealFCT(10_000_000, 1_000_000_000, rtt, 10, DefaultWire)
	if large < 80*eventq.Millisecond || large > 90*eventq.Millisecond {
		t.Fatalf("large-flow FCT = %v", large)
	}
	// Window-limited mid-size flow needs multiple RTTs.
	mid := SlowStartIdealFCT(100_000, 10_000_000_000, rtt, 10, DefaultWire)
	if mid < 2*rtt {
		t.Fatalf("mid-flow FCT = %v, want >= 3 RTTs", mid)
	}
}

func TestBaseRTT(t *testing.T) {
	// One hop at 1Gbps: data 12us + 1.5us, ack 0.32us + 1.5us ~ 15.3us.
	got := BaseRTT(1, 1_000_000_000, 1500*eventq.Nanosecond, DefaultWire)
	if got < 15*eventq.Microsecond || got > 16*eventq.Microsecond {
		t.Fatalf("1-hop RTT = %v", got)
	}
	if BaseRTT(6, 1_000_000_000, 1500, DefaultWire) != 6*got {
		t.Fatal("RTT should scale linearly in hops")
	}
}

func TestFairShare(t *testing.T) {
	if FairShare(1_000_000_000, 4) != 250_000_000 {
		t.Fatal("fair share")
	}
	if FairShare(1_000_000_000, 0) != 0 {
		t.Fatal("degenerate fair share")
	}
}

// Property: wire bytes are monotone in payload and bounded by
// payload * (1 + header/mss) + header.
func TestQuickWireBytesMonotone(t *testing.T) {
	w := DefaultWire
	f := func(a, b uint32) bool {
		x, y := int64(a%10_000_000), int64(b%10_000_000)
		if x > y {
			x, y = y, x
		}
		if w.WireBytes(x) > w.WireBytes(y) {
			return false
		}
		overhead := w.WireBytes(y) - y
		return overhead <= (w.Segments(y))*int64(w.HeaderBytes)+int64(w.HeaderBytes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ideal QCT scales linearly in degree and response size.
func TestQuickIncastLinearity(t *testing.T) {
	f := func(degRaw, kbRaw uint8) bool {
		deg := int(degRaw%100) + 1
		bytes := (int64(kbRaw%100) + 1) * 1000
		base := IncastIdealQCT(deg, bytes, 1_000_000_000, 0, DefaultWire)
		double := IncastIdealQCT(2*deg, bytes, 1_000_000_000, 0, DefaultWire)
		ratio := float64(double) / float64(base)
		return ratio > 1.99 && ratio < 2.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
