// Package model provides closed-form performance bounds used to validate
// the simulator: ideal (lossless, work-conserving) completion times for
// incast queries and slow-start-limited flows. The integration tests assert
// that simulated results with infinite buffers or DIBS land between these
// lower bounds and a small constant factor above them — catching both
// optimistic bugs (finishing faster than physics allows) and pessimistic
// ones (unexplained stalls).
package model

import (
	"math"

	"dibs/internal/eventq"
)

// WirePacket describes segmentization for byte->wire-size conversion.
type WirePacket struct {
	MSS         int // payload bytes per full segment
	HeaderBytes int // per-segment overhead
}

// DefaultWire matches the simulator's 1500-byte MTU framing.
var DefaultWire = WirePacket{MSS: 1460, HeaderBytes: 40}

// WireBytes returns the total bytes on the wire for a payload of n bytes,
// including per-segment headers.
func (w WirePacket) WireBytes(n int64) int64 {
	if n <= 0 {
		return 0
	}
	segs := (n + int64(w.MSS) - 1) / int64(w.MSS)
	return n + segs*int64(w.HeaderBytes)
}

// Segments returns the number of MSS-sized segments for n payload bytes.
func (w WirePacket) Segments(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return (n + int64(w.MSS) - 1) / int64(w.MSS)
}

// SerializationTime returns how long n wire bytes occupy a link of the
// given rate.
func SerializationTime(wireBytes int64, rateBps int64) eventq.Time {
	return eventq.Time(wireBytes * 8 * int64(eventq.Second) / rateBps)
}

// IncastIdealQCT lower-bounds the completion time of a partition-aggregate
// query: `degree` responders each send `bytes` to one receiver whose access
// link runs at rateBps. Even a perfect scheduler must serialize every
// response over that last hop, plus one base round trip to get the first
// byte moving and the last byte delivered.
func IncastIdealQCT(degree int, bytes int64, rateBps int64, baseRTT eventq.Time, w WirePacket) eventq.Time {
	total := int64(degree) * w.WireBytes(bytes)
	return SerializationTime(total, rateBps) + baseRTT
}

// SlowStartIdealFCT estimates (to within ~10%; pipelining overlaps the
// final round trip) a single flow's completion time under
// slow start with initial window initCwnd packets: the flow needs
// ceil(log2(segments/initCwnd + 1)) round trips of window growth before the
// pipe is full, plus the serialization of its bytes at the bottleneck.
// Valid for an otherwise idle path.
func SlowStartIdealFCT(bytes int64, rateBps int64, rtt eventq.Time, initCwnd float64, w WirePacket) eventq.Time {
	segs := float64(w.Segments(bytes))
	if segs <= 0 {
		return 0
	}
	ser := SerializationTime(w.WireBytes(bytes), rateBps)
	// Segments deliverable per RTT while windows still double: the flow is
	// window-limited until cwnd*MSS covers the bandwidth-delay product or
	// the flow ends. Lower bound: rounds of doubling needed to emit all
	// segments if the link were infinitely fast, charged one RTT each —
	// but never less than serialization + one RTT.
	rounds := math.Ceil(math.Log2(segs/initCwnd + 1))
	if rounds < 1 {
		rounds = 1
	}
	windowBound := eventq.Time(float64(rtt) * rounds)
	serBound := ser + rtt
	if windowBound > serBound {
		return windowBound
	}
	return serBound
}

// BaseRTT estimates the unloaded round-trip time of a path with `hops`
// store-and-forward links of the given rate and per-link propagation delay,
// for a full data segment out and a bare ACK back.
func BaseRTT(hops int, rateBps int64, linkDelay eventq.Time, w WirePacket) eventq.Time {
	data := SerializationTime(int64(w.MSS+w.HeaderBytes), rateBps) + linkDelay
	ack := SerializationTime(int64(w.HeaderBytes), rateBps) + linkDelay
	// hops is a dimensionless count, so multiply in int64 rather than
	// forming a Time×Time product.
	return eventq.Time(int64(hops) * int64(data+ack))
}

// FairShare returns the per-flow ideal throughput when n flows share a link.
func FairShare(rateBps int64, n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(rateBps) / float64(n)
}
