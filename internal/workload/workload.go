// Package workload generates the traffic of the paper's evaluation (§5.3):
//
//   - Background traffic modeled on the production data center traces of
//     the DCTCP paper (~80% of flows under 100 KB with a heavy tail),
//     arriving per host as a Poisson process with configurable mean
//     inter-arrival time (Table 2 varies 10-120 ms).
//   - Query (partition-aggregate / incast) traffic: queries arrive as a
//     network-wide Poisson process at a configurable rate (qps); each query
//     picks a random target host and a random set of "incast degree"
//     responders, each of which sends a fixed-size response to the target.
//   - Long-lived pair flows for the fairness experiment (§5.6): 64
//     node-disjoint pairs with N flows in each direction.
//
// The original traces are proprietary; SizeDist encodes the published
// distribution shape with log-linear interpolation (see DESIGN.md).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dibs/internal/eventq"
	"dibs/internal/metrics"
	"dibs/internal/packet"
)

// StartFlow is the callback generators use to launch a flow. queryID is -1
// for non-query flows.
type StartFlow func(src, dst packet.NodeID, bytes int64, class metrics.FlowClass, queryID int)

// SizeDist is an empirical flow-size distribution: a piecewise CDF sampled
// with log-linear interpolation between knots.
type SizeDist struct {
	points []SizePoint
}

// SizePoint is one CDF knot: fraction F of flows are <= Bytes.
type SizePoint struct {
	Bytes int64
	F     float64
}

// NewSizeDist validates knots (F strictly increasing to 1, Bytes strictly
// increasing and positive) and returns the distribution.
func NewSizeDist(points []SizePoint) *SizeDist {
	if len(points) < 2 {
		panic("workload: size distribution needs >= 2 points")
	}
	for i, p := range points {
		if p.Bytes <= 0 {
			panic("workload: size points must be positive")
		}
		if i > 0 && (p.Bytes <= points[i-1].Bytes || p.F <= points[i-1].F) {
			panic("workload: size points must be strictly increasing")
		}
	}
	//dibslint:ignore float-eq CDF knots are literal constants; the endpoint must be exactly 1
	if points[len(points)-1].F != 1 {
		panic("workload: final CDF point must be 1")
	}
	if points[0].F < 0 {
		panic("workload: CDF must start >= 0")
	}
	return &SizeDist{points: points}
}

// WebSearchBackground approximates the DCTCP paper's web-search background
// flow sizes: mostly small flows (80% below 100 KB) with a heavy tail
// truncated at 10 MB for simulation tractability.
func WebSearchBackground() *SizeDist {
	return NewSizeDist([]SizePoint{
		{1_000, 0.02},
		{2_000, 0.15},
		{5_000, 0.35},
		{10_000, 0.55},
		{20_000, 0.65},
		{50_000, 0.75},
		{100_000, 0.80},
		{300_000, 0.88},
		{1_000_000, 0.94},
		{3_000_000, 0.98},
		{10_000_000, 1.00},
	})
}

// DataMiningBackground approximates the data-mining workload used in the
// pFabric evaluation (Greenberg et al.'s VL2 traces): even more extreme
// bimodality than web-search — over half the flows are a single small
// request/response, while a thin tail of huge shuffles carries most bytes
// (truncated at 30 MB for tractability). Useful for stress-testing pFabric
// comparisons where short-flow prioritization matters most.
func DataMiningBackground() *SizeDist {
	return NewSizeDist([]SizePoint{
		{100, 0.10},
		{300, 0.40},
		{1_000, 0.55},
		{2_000, 0.62},
		{10_000, 0.70},
		{100_000, 0.78},
		{1_000_000, 0.88},
		{10_000_000, 0.95},
		{30_000_000, 1.00},
	})
}

// Sample draws a flow size.
func (d *SizeDist) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	pts := d.points
	if u <= pts[0].F {
		return pts[0].Bytes
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].F >= u }) // first knot with F >= u
	lo, hi := pts[i-1], pts[i]
	// Log-linear interpolation in bytes.
	frac := (u - lo.F) / (hi.F - lo.F)
	lb := math.Log(float64(lo.Bytes))
	hb := math.Log(float64(hi.Bytes))
	return int64(math.Exp(lb + frac*(hb-lb)))
}

// Mean estimates the distribution mean by numeric integration over the
// knots (log-linear segments), useful for load accounting in tests.
func (d *SizeDist) Mean(rng *rand.Rand, samples int) float64 {
	var sum float64
	for i := 0; i < samples; i++ {
		sum += float64(d.Sample(rng))
	}
	return sum / float64(samples)
}

// Background generates per-host Poisson flow arrivals.
type Background struct {
	sched *eventq.Scheduler
	rng   *rand.Rand
	hosts []packet.NodeID
	// MeanInterarrival is the per-host mean time between flow starts.
	MeanInterarrival eventq.Time
	Sizes            *SizeDist
	start            StartFlow
	stopAt           eventq.Time

	// Started counts generated flows.
	Started int
}

// NewBackground creates a background generator over hosts. Flows start
// until stopAt.
func NewBackground(sched *eventq.Scheduler, rng *rand.Rand, hosts []packet.NodeID,
	meanInterarrival eventq.Time, sizes *SizeDist, stopAt eventq.Time, start StartFlow) *Background {
	if meanInterarrival <= 0 {
		panic("workload: mean interarrival must be positive")
	}
	if len(hosts) < 2 {
		panic("workload: background needs >= 2 hosts")
	}
	return &Background{
		sched: sched, rng: rng, hosts: hosts,
		MeanInterarrival: meanInterarrival, Sizes: sizes,
		start: start, stopAt: stopAt,
	}
}

// Start schedules the first arrival on every host.
func (b *Background) Start() {
	for _, h := range b.hosts {
		b.scheduleNext(h)
	}
}

func (b *Background) scheduleNext(h packet.NodeID) {
	gap := expDelay(b.rng, b.MeanInterarrival)
	at := b.sched.Now() + gap
	if at > b.stopAt {
		return
	}
	b.sched.At(at, func() {
		dst := b.randOtherHost(h)
		b.Started++
		b.start(h, dst, b.Sizes.Sample(b.rng), metrics.ClassBackground, -1)
		b.scheduleNext(h)
	})
}

func (b *Background) randOtherHost(h packet.NodeID) packet.NodeID {
	for {
		d := b.hosts[b.rng.Intn(len(b.hosts))]
		if d != h {
			return d
		}
	}
}

// QueryConfig parameterizes the incast workload (paper Table 2).
type QueryConfig struct {
	// QPS is the network-wide query arrival rate.
	QPS float64
	// Degree is the number of responders per query (paper default 40).
	Degree int
	// ResponseBytes is each responder's payload (paper default 20 KB).
	ResponseBytes int64
	// MaxFanInPerHost allows responders to appear multiple times when
	// Degree exceeds the host count (the §5.5.2 "multiple connections on
	// single server" trick); 1 keeps responders distinct.
	MaxFanInPerHost int
}

// Queries generates partition-aggregate query traffic.
type Queries struct {
	sched  *eventq.Scheduler
	rng    *rand.Rand
	hosts  []packet.NodeID
	cfg    QueryConfig
	start  StartFlow
	stopAt eventq.Time
	// OnQuery is invoked before a query's flows start (to register it
	// with the metrics collector).
	OnQuery func(queryID, nFlows int)

	nextID int
	// Started counts generated queries.
	Started int
}

// NewQueries creates a query generator.
func NewQueries(sched *eventq.Scheduler, rng *rand.Rand, hosts []packet.NodeID,
	cfg QueryConfig, stopAt eventq.Time, start StartFlow) *Queries {
	if cfg.QPS <= 0 {
		panic("workload: qps must be positive")
	}
	if cfg.Degree < 1 {
		panic("workload: incast degree must be >= 1")
	}
	if cfg.ResponseBytes <= 0 {
		panic("workload: response size must be positive")
	}
	if cfg.MaxFanInPerHost < 1 {
		cfg.MaxFanInPerHost = 1
	}
	if cfg.Degree > (len(hosts)-1)*cfg.MaxFanInPerHost {
		panic(fmt.Sprintf("workload: degree %d exceeds responder capacity %d",
			cfg.Degree, (len(hosts)-1)*cfg.MaxFanInPerHost))
	}
	return &Queries{sched: sched, rng: rng, hosts: hosts, cfg: cfg, stopAt: stopAt, start: start}
}

// Start schedules the first query arrival.
func (q *Queries) Start() {
	q.scheduleNext()
}

func (q *Queries) scheduleNext() {
	mean := eventq.Time(float64(eventq.Second) / q.cfg.QPS)
	at := q.sched.Now() + expDelay(q.rng, mean)
	if at > q.stopAt {
		return
	}
	q.sched.At(at, func() {
		q.fire()
		q.scheduleNext()
	})
}

// fire launches one query: a random target and Degree responders.
func (q *Queries) fire() {
	target := q.hosts[q.rng.Intn(len(q.hosts))]
	responders := q.pickResponders(target)
	id := q.nextID
	q.nextID++
	q.Started++
	if q.OnQuery != nil {
		q.OnQuery(id, len(responders))
	}
	for _, r := range responders {
		q.start(r, target, q.cfg.ResponseBytes, metrics.ClassQuery, id)
	}
}

// pickResponders selects Degree responders uniformly without replacement
// (up to MaxFanInPerHost repetitions per host).
func (q *Queries) pickResponders(target packet.NodeID) []packet.NodeID {
	pool := make([]packet.NodeID, 0, (len(q.hosts)-1)*q.cfg.MaxFanInPerHost)
	for _, h := range q.hosts {
		if h == target {
			continue
		}
		for i := 0; i < q.cfg.MaxFanInPerHost; i++ {
			pool = append(pool, h)
		}
	}
	// Partial Fisher-Yates for the first Degree entries.
	for i := 0; i < q.cfg.Degree; i++ {
		j := i + q.rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return pool[:q.cfg.Degree]
}

// Pairs returns node-disjoint host pairs for the §5.6 fairness experiment
// by pairing hosts in index order: (0,1), (2,3), ... In a fat-tree this
// pairs hosts under the same edge switch, so each flow's only bottleneck is
// the host link and the 1/N-Gbps-per-flow expectation of §5.6 holds
// exactly.
func Pairs(hosts []packet.NodeID) [][2]packet.NodeID {
	var out [][2]packet.NodeID
	for i := 0; i+1 < len(hosts); i += 2 {
		out = append(out, [2]packet.NodeID{hosts[i], hosts[i+1]})
	}
	return out
}

// PairsShuffled pairs hosts after a seeded shuffle, producing mostly
// cross-pod pairs whose flows contend on ECMP-chosen core paths — a harder
// fairness setting used as an ablation.
func PairsShuffled(hosts []packet.NodeID, rng *rand.Rand) [][2]packet.NodeID {
	hs := append([]packet.NodeID(nil), hosts...)
	rng.Shuffle(len(hs), func(i, j int) { hs[i], hs[j] = hs[j], hs[i] })
	return Pairs(hs)
}

// expDelay draws an exponential delay with the given mean, floored at 1ns.
func expDelay(rng *rand.Rand, mean eventq.Time) eventq.Time {
	d := eventq.Time(rng.ExpFloat64() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}
