package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dibs/internal/eventq"
	"dibs/internal/metrics"
	"dibs/internal/packet"
)

func hosts(n int) []packet.NodeID {
	hs := make([]packet.NodeID, n)
	for i := range hs {
		hs[i] = packet.NodeID(i)
	}
	return hs
}

func TestWebSearchBackgroundShape(t *testing.T) {
	d := WebSearchBackground()
	rng := rand.New(rand.NewSource(1))
	n := 50_000
	under100K, under10K := 0, 0
	var min, max int64 = math.MaxInt64, 0
	for i := 0; i < n; i++ {
		s := d.Sample(rng)
		if s <= 100_000 {
			under100K++
		}
		if s <= 10_000 {
			under10K++
		}
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	// Paper: ~80% of background flows below 100KB.
	f100 := float64(under100K) / float64(n)
	if f100 < 0.77 || f100 > 0.83 {
		t.Fatalf("fraction <= 100KB = %v, want ~0.80", f100)
	}
	f10 := float64(under10K) / float64(n)
	if f10 < 0.52 || f10 > 0.58 {
		t.Fatalf("fraction <= 10KB = %v, want ~0.55", f10)
	}
	if min < 1_000 || max > 10_000_000 {
		t.Fatalf("sample range [%d, %d] outside knots", min, max)
	}
}

func TestSizeDistValidation(t *testing.T) {
	bad := [][]SizePoint{
		{{1000, 1}},                           // too few
		{{1000, 0.5}, {500, 1}},               // bytes not increasing
		{{1000, 0.5}, {2000, 0.4}},            // F not increasing
		{{1000, 0.5}, {2000, 0.9}},            // doesn't end at 1
		{{0, 0.5}, {2000, 1}},                 // nonpositive bytes
		{{1000, 0.5}, {2000, 0.5}, {3000, 1}}, // F stalls
	}
	for i, pts := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			NewSizeDist(pts)
		}()
	}
}

func TestBackgroundGeneratorRate(t *testing.T) {
	sched := eventq.NewScheduler()
	rng := rand.New(rand.NewSource(2))
	var flows int
	var sizes []int64
	gen := NewBackground(sched, rng, hosts(8), 10*eventq.Millisecond, WebSearchBackground(),
		eventq.Second, func(src, dst packet.NodeID, bytes int64, class metrics.FlowClass, queryID int) {
			flows++
			sizes = append(sizes, bytes)
			if src == dst {
				t.Error("flow to self")
			}
			if class != metrics.ClassBackground || queryID != -1 {
				t.Error("wrong class/queryID")
			}
		})
	gen.Start()
	sched.Run()
	// 8 hosts x ~100 flows/s x 1s = ~800 flows.
	if flows < 600 || flows > 1000 {
		t.Fatalf("flows = %d, want ~800", flows)
	}
	if gen.Started != flows {
		t.Fatal("Started counter mismatch")
	}
}

func TestBackgroundStopsAtDeadline(t *testing.T) {
	sched := eventq.NewScheduler()
	rng := rand.New(rand.NewSource(3))
	lastStart := eventq.Time(0)
	gen := NewBackground(sched, rng, hosts(4), eventq.Millisecond, WebSearchBackground(),
		100*eventq.Millisecond, func(src, dst packet.NodeID, bytes int64, class metrics.FlowClass, queryID int) {
			if sched.Now() > lastStart {
				lastStart = sched.Now()
			}
		})
	gen.Start()
	sched.Run()
	if lastStart > 100*eventq.Millisecond {
		t.Fatalf("flow started at %v, after deadline", lastStart)
	}
}

func TestQueryGenerator(t *testing.T) {
	sched := eventq.NewScheduler()
	rng := rand.New(rand.NewSource(4))
	type flow struct {
		src, dst packet.NodeID
		qid      int
	}
	var flows []flow
	queries := map[int]int{}
	gen := NewQueries(sched, rng, hosts(64), QueryConfig{
		QPS: 300, Degree: 40, ResponseBytes: 20_000,
	}, 100*eventq.Millisecond, func(src, dst packet.NodeID, bytes int64, class metrics.FlowClass, queryID int) {
		if bytes != 20_000 || class != metrics.ClassQuery {
			t.Error("wrong flow parameters")
		}
		flows = append(flows, flow{src, dst, queryID})
	})
	gen.OnQuery = func(qid, n int) { queries[qid] = n }
	gen.Start()
	sched.Run()
	// 300 qps x 0.1s = ~30 queries.
	if gen.Started < 15 || gen.Started > 50 {
		t.Fatalf("queries = %d, want ~30", gen.Started)
	}
	if len(queries) != gen.Started {
		t.Fatal("OnQuery not fired per query")
	}
	// Per query: 40 distinct responders, none equal to the target.
	perQuery := map[int]map[packet.NodeID]bool{}
	targets := map[int]packet.NodeID{}
	for _, f := range flows {
		if perQuery[f.qid] == nil {
			perQuery[f.qid] = map[packet.NodeID]bool{}
		}
		if perQuery[f.qid][f.src] {
			t.Fatal("duplicate responder in query")
		}
		perQuery[f.qid][f.src] = true
		if prev, ok := targets[f.qid]; ok && prev != f.dst {
			t.Fatal("query has multiple targets")
		}
		targets[f.qid] = f.dst
		if f.src == f.dst {
			t.Fatal("responder equals target")
		}
	}
	for qid, resp := range perQuery {
		if len(resp) != 40 {
			t.Fatalf("query %d has %d responders", qid, len(resp))
		}
		if queries[qid] != 40 {
			t.Fatalf("OnQuery reported %d flows", queries[qid])
		}
	}
}

func TestQueryFanInBeyondHostCount(t *testing.T) {
	sched := eventq.NewScheduler()
	rng := rand.New(rand.NewSource(5))
	count := map[packet.NodeID]int{}
	gen := NewQueries(sched, rng, hosts(8), QueryConfig{
		QPS: 1000, Degree: 20, ResponseBytes: 1000, MaxFanInPerHost: 3,
	}, 10*eventq.Millisecond, func(src, dst packet.NodeID, bytes int64, class metrics.FlowClass, queryID int) {
		if queryID == 0 {
			count[src]++
		}
	})
	gen.Start()
	sched.Run()
	if gen.Started == 0 {
		t.Skip("no query fired in window")
	}
	total := 0
	for h, c := range count {
		if c > 3 {
			t.Fatalf("host %d used %d times, max 3", h, c)
		}
		total += c
	}
	if total != 20 {
		t.Fatalf("query 0 had %d responders, want 20", total)
	}
}

func TestQueryConfigValidation(t *testing.T) {
	sched := eventq.NewScheduler()
	rng := rand.New(rand.NewSource(1))
	noop := func(src, dst packet.NodeID, bytes int64, class metrics.FlowClass, queryID int) {}
	bad := []QueryConfig{
		{QPS: 0, Degree: 1, ResponseBytes: 1},
		{QPS: 1, Degree: 0, ResponseBytes: 1},
		{QPS: 1, Degree: 1, ResponseBytes: 0},
		{QPS: 1, Degree: 100, ResponseBytes: 1}, // exceeds 7 hosts
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should panic", i)
				}
			}()
			NewQueries(sched, rng, hosts(8), cfg, eventq.Second, noop)
		}()
	}
}

func TestPairsDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	hs := hosts(128)
	pairs := PairsShuffled(hs, rng)
	if len(pairs) != 64 {
		t.Fatalf("pairs = %d, want 64", len(pairs))
	}
	seen := map[packet.NodeID]bool{}
	for _, p := range pairs {
		if seen[p[0]] || seen[p[1]] || p[0] == p[1] {
			t.Fatal("pairs not node-disjoint")
		}
		seen[p[0]] = true
		seen[p[1]] = true
	}
}

func TestPairsOddHostCount(t *testing.T) {
	pairs := Pairs(hosts(7))
	if len(pairs) != 3 {
		t.Fatalf("pairs from 7 hosts = %d, want 3", len(pairs))
	}
}

func TestPairsAdjacent(t *testing.T) {
	pairs := Pairs(hosts(8))
	for i, p := range pairs {
		if p[0] != packet.NodeID(2*i) || p[1] != packet.NodeID(2*i+1) {
			t.Fatalf("pair %d = %v, want adjacent", i, p)
		}
	}
}

func TestExpDelayMean(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	mean := 10 * eventq.Millisecond
	var sum eventq.Time
	n := 20_000
	for i := 0; i < n; i++ {
		sum += expDelay(rng, mean)
	}
	got := float64(sum) / float64(n)
	if got < 0.95*float64(mean) || got > 1.05*float64(mean) {
		t.Fatalf("mean delay = %v, want ~%v", eventq.Time(got), mean)
	}
}

// Property: samples always fall within the distribution's support and the
// empirical CDF tracks the configured knots.
func TestQuickSizeDistSupport(t *testing.T) {
	d := WebSearchBackground()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			s := d.Sample(rng)
			if s < 1_000 || s > 10_000_000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: responders are always valid hosts and respect fan-in caps.
func TestQuickPickResponders(t *testing.T) {
	f := func(seed int64, degRaw, fanRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sched := eventq.NewScheduler()
		fan := int(fanRaw%3) + 1
		deg := int(degRaw)%(7*fan) + 1
		var got []packet.NodeID
		gen := NewQueries(sched, rng, hosts(8), QueryConfig{
			QPS: 1, Degree: deg, ResponseBytes: 1, MaxFanInPerHost: fan,
		}, eventq.Second, func(src, dst packet.NodeID, bytes int64, class metrics.FlowClass, queryID int) {
			got = append(got, src)
		})
		gen.fire()
		if len(got) != deg {
			return false
		}
		counts := map[packet.NodeID]int{}
		for _, h := range got {
			if h < 0 || h >= 8 {
				return false
			}
			counts[h]++
			if counts[h] > fan {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDataMiningBackgroundShape(t *testing.T) {
	d := DataMiningBackground()
	rng := rand.New(rand.NewSource(9))
	n := 50_000
	under1K, under10K := 0, 0
	var totalBytes, tailBytes float64
	for i := 0; i < n; i++ {
		s := d.Sample(rng)
		if s <= 1_000 {
			under1K++
		}
		if s <= 10_000 {
			under10K++
		}
		totalBytes += float64(s)
		if s > 1_000_000 {
			tailBytes += float64(s)
		}
	}
	// VL2-style bimodality: over half the flows are tiny...
	if f := float64(under1K) / float64(n); f < 0.50 || f > 0.60 {
		t.Fatalf("fraction <= 1KB = %v, want ~0.55", f)
	}
	if f := float64(under10K) / float64(n); f < 0.65 || f > 0.75 {
		t.Fatalf("fraction <= 10KB = %v, want ~0.70", f)
	}
	// ...while the >1MB tail carries the overwhelming majority of bytes.
	if frac := tailBytes / totalBytes; frac < 0.85 {
		t.Fatalf("tail byte share = %v, want > 0.85", frac)
	}
}
