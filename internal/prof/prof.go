// Package prof wires runtime/pprof behind the -cpuprofile and -memprofile
// flags shared by the command-line tools (DESIGN §9). Profiles are written
// in the standard pprof format: `go tool pprof <binary> <file>`.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the given file paths (empty disables each) and
// returns a stop function to defer in main. The CPU profile streams for the
// whole run; the heap profile is one snapshot taken at stop after a forced
// GC, so it shows live retained memory rather than transient garbage.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("starting cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "creating mem profile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "writing mem profile: %v\n", err)
			}
			f.Close()
		}
	}, nil
}
