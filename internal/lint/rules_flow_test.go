package lint

// Fixture corpus for the flow-sensitive rules. Each rule gets fire and
// stay-quiet variants, including the CFG edge cases the builder models:
// defer in loops, labeled break/continue, goto, switch fallthrough and
// short-circuit conditions.

import (
	"bytes"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// --- mutable-globals ---

func TestMutableGlobalsFiresOutsideInit(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixmg", "fixmg.go", `
package fixmg

var counter int
var seen = map[string]bool{}

func Bump() {
	counter++
	seen["x"] = true
}

func Reset() {
	counter = 0
}
`)
	assertRule(t, fs, "mutable-globals", 3)
}

func TestMutableGlobalsAllowsInitAndRegisterPattern(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixmgreg", "fixmgreg.go", `
package fixmgreg

var registry []string

func register(name string) {
	registry = append(registry, name)
}

func init() {
	register("fig06")
	register("fig09")
}
`)
	assertRule(t, fs, "mutable-globals", 0)
}

func TestMutableGlobalsEscapedHelperStillFires(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixmgesc", "fixmgesc.go", `
package fixmgesc

var registry []string

func register(name string) {
	registry = append(registry, name)
}

func init() { register("a") }

// The helper escapes as a value: it can now run at any time, so its
// write is no longer init-only.
func Hook() func(string) { return register }
`)
	assertRule(t, fs, "mutable-globals", 1)
}

func TestMutableGlobalsIgnoresLocalsAndFields(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixmglocal", "fixmglocal.go", `
package fixmglocal

type Stats struct{ n int }

func (s *Stats) Bump() { s.n++ }

func Work() int {
	counter := 0
	counter++
	return counter
}
`)
	assertRule(t, fs, "mutable-globals", 0)
}

func TestMutableGlobalsFuncLitInInitFires(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixmglit", "fixmglit.go", `
package fixmglit

var hook func()
var count int

func init() {
	// Declaring the closure in init is fine; the write inside it runs
	// whenever the closure is called, which may be any time.
	hook = func() { count++ }
}
`)
	assertRule(t, fs, "mutable-globals", 1)
}

// --- rng-taint ---

func TestRNGTaintWallClockLaundered(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixtaintclock", "fixtaintclock.go", `
package fixtaintclock

import (
	"time"

	"dibs/internal/rng"
)

func Fresh() {
	s := time.Now().UnixNano()
	s2 := s
	_ = rng.New(s2, "workload")
}
`)
	assertRule(t, fs, "rng-taint", 1)
}

func TestRNGTaintSeedArithmetic(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixtaintarith", "fixtaintarith.go", `
package fixtaintarith

import "dibs/internal/rng"

type Opts struct{ Seed int64 }

type Config struct{ Seed int64 }

func Sweep(o Opts, runs int) {
	for run := 0; run < runs; run++ {
		var cfg Config
		cfg.Seed = o.Seed + int64(run)*7919 // collision-prone ad-hoc derivation
		_ = cfg
	}
	_ = rng.New(o.Seed*31, "workload")
}
`)
	assertRule(t, fs, "rng-taint", 2)
}

func TestRNGTaintThroughHelperFacts(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixtainthelper", "fixtainthelper.go", `
package fixtainthelper

import "dibs/internal/rng"

type Opts struct{ Seed int64 }

// mix launders seed arithmetic through a helper; ParamArithToResult
// facts carry the taint back to the call site.
func mix(seed int64, run int) int64 {
	return seed + int64(run)*7919
}

// sink makes its parameter a seed-sink via the facts store.
func sink(seed int64) { _ = rng.New(seed, "h") }

func Sweep(o Opts, runs int) {
	for run := 0; run < runs; run++ {
		_ = rng.New(mix(o.Seed, run), "workload")
	}
	sink(o.Seed * 3)
}
`)
	assertRule(t, fs, "rng-taint", 2)
}

func TestRNGTaintCleanSeedsStayQuiet(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixtaintclean", "fixtaintclean.go", `
package fixtaintclean

import (
	"fmt"

	"dibs/internal/rng"
)

type Opts struct{ Seed int64 }

type Config struct{ Seed int64 }

func Run(o Opts, runs int) {
	var cfg Config
	cfg.Seed = o.Seed // plain threading is the sanctioned pattern
	_ = rng.New(o.Seed, "workload")
	_ = rng.New(42, "fixed") // literal seeds are legal (tests, defaults)
	for run := 0; run < runs; run++ {
		// rng.Derive is the sanctioned derivation; its result is a
		// clean seed even after a conversion.
		cfg.Seed = int64(rng.Derive(uint64(o.Seed), fmt.Sprintf("run%d", run)))
	}
}
`)
	assertRule(t, fs, "rng-taint", 0)
}

func TestRNGTaintGotoAndShortCircuitPaths(t *testing.T) {
	// A tainted definition reaches the sink along the goto path even
	// though the straight-line path rebinds the seed.
	fs := lintFixture(t, "dibs/internal/fixtaintgoto", "fixtaintgoto.go", `
package fixtaintgoto

import (
	"time"

	"dibs/internal/rng"
)

func Fire(retry bool) {
	s := time.Now().UnixNano()
	if retry {
		goto done
	}
	s = 42
done:
	_ = rng.New(s, "workload")
}

func Quiet(cheap bool, o struct{ Seed int64 }) {
	s := int64(1)
	if cheap && o.Seed > 0 {
		s = o.Seed
	}
	_ = rng.New(s, "workload")
}
`)
	assertRule(t, fs, "rng-taint", 1)
}

func TestRNGTaintSwitchFallthroughPath(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixtaintfall", "fixtaintfall.go", `
package fixtaintfall

import "dibs/internal/rng"

type Opts struct{ Seed int64 }

func Pick(o Opts, kind int) {
	s := int64(7)
	switch kind {
	case 0:
		s = o.Seed * 2 // ad-hoc arithmetic
		fallthrough
	case 1:
		_ = rng.New(s, "workload") // reachable with the tainted binding
	default:
		_ = rng.New(s, "other") // only the literal reaches here
	}
}
`)
	assertRule(t, fs, "rng-taint", 1)
}

// --- vtime-flow ---

func TestVtimeFlowNamedConstant(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixvflowconst", "fixvflowconst.go", `
package fixvflowconst

import "dibs/internal/eventq"

const gap = 5000 // raw nanoseconds

const spelled = 5 * eventq.Microsecond

func Arm(s *eventq.Scheduler) {
	s.After(gap, func() {})     // fires: bare literal constant as Time
	s.After(spelled, func() {}) // quiet: declared with unit constants
	var t eventq.Time = gap * eventq.Nanosecond
	_ = t // quiet: gap used as a factor, the encouraged idiom
}
`)
	assertRule(t, fs, "vtime-flow", 1)
}

func TestVtimeFlowThroughVariable(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixvflowvar", "fixvflowvar.go", `
package fixvflowvar

import "dibs/internal/eventq"

func Arm(s *eventq.Scheduler, rate int) {
	d := 250000
	d2 := d
	s.After(eventq.Time(d2), func() {}) // fires: literal reaches the conversion

	small := 8
	s.After(eventq.Time(small), func() {}) // quiet: below the threshold

	bits := rate * 8
	s.After(eventq.Time(bits), func() {}) // quiet: computed, not a magic literal
}
`)
	assertRule(t, fs, "vtime-flow", 1)
}

func TestVtimeFlowLoopAndDeferPaths(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixvflowloop", "fixvflowloop.go", `
package fixvflowloop

import "dibs/internal/eventq"

func Arm(s *eventq.Scheduler, n int) {
	d := 0
	for i := 0; i < n; i++ {
		defer func() {}()
		if i == 0 {
			d = 90000 // raw ns assigned on the first iteration
			continue
		}
		s.After(eventq.Time(d), func() {}) // fires via the back edge
	}
}
`)
	assertRule(t, fs, "vtime-flow", 1)
}

// --- path-droppederr ---

func TestPathDroppedErrBranchMiss(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixpatherr", "fixpatherr.go", `
package fixpatherr

import "errors"

func mayFail() error { return errors.New("boom") }

func handle(error) {}

func Fire(check bool) {
	err := mayFail()
	if check {
		handle(err)
	}
	// err unused on the !check path
}

func Quiet(check bool) {
	err := mayFail()
	if check {
		handle(err)
	} else {
		handle(err)
	}
}

func QuietStraight() {
	err := mayFail()
	handle(err)
}

func QuietDiscard() {
	_ = mayFail()
}
`)
	assertRule(t, fs, "path-droppederr", 1)
}

func TestPathDroppedErrRedefine(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixpathredef", "fixpathredef.go", `
package fixpathredef

import "errors"

func mayFail() error { return errors.New("boom") }

func handle(error) {}

func Fire() {
	err := mayFail()
	err = mayFail() // first result overwritten unchecked
	handle(err)
}

func QuietAccumulator(n int) error {
	var last error
	for i := 0; i < n; i++ {
		last = mayFail() // self-overwrite across iterations: keep-last pattern
	}
	return last
}
`)
	assertRule(t, fs, "path-droppederr", 1)
}

func TestPathDroppedErrDeferAndShortCircuit(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixpathdefer", "fixpathdefer.go", `
package fixpathdefer

import "errors"

func mayFail() error { return errors.New("boom") }

func handle(error) {}

func QuietDefer() {
	err := mayFail()
	defer func() { handle(err) }() // captured: checked at every exit
}

func QuietShortCircuit(a bool) bool {
	err := mayFail()
	return a && err != nil // use inside the conditional operand
}

func FireLabeledBreak(items []int) {
loop:
	for range items {
		err := mayFail()
		if len(items) > 3 {
			break loop // leaves with err unchecked
		}
		handle(err)
	}
}
`)
	assertRule(t, fs, "path-droppederr", 1)
}

func TestPathDroppedQueueResult(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixpathq", "fixpathq.go", `
package fixpathq

import (
	"dibs/internal/packet"
	"dibs/internal/queue"
)

func Fire(q queue.Queue, p *packet.Packet, loud bool) {
	q.Enqueue(p) // result discarded outright
	r := q.Enqueue(p)
	if loud {
		_ = r.Accepted
	}
	// r unused on the quiet path
}

func Quiet(q queue.Queue, p *packet.Packet) bool {
	r := q.Enqueue(p)
	return r.Accepted
}
`)
	assertRule(t, fs, "path-droppederr", 2)
}

// --- facts store ---

func TestFactsComputedForLoadedPackages(t *testing.T) {
	l := loaderForTest(t)
	pkg, err := l.LoadSynthetic("dibs/internal/fixfacts", map[string]string{"fixfacts.go": `
package fixfacts

import (
	"time"

	"dibs/internal/rng"
)

var state int

func Clocky() int64 { return time.Now().UnixNano() }

func Mutator() { state++ }

func SeedSink(seed int64) { _ = rng.New(seed, "s") }

func Passthrough(x int64) int64 { return x }

func Arith(x int64) int64 { return x * 31 }
`})
	if err != nil {
		t.Fatalf("LoadSynthetic: %v", err)
	}
	lookup := func(name string) FuncFacts {
		t.Helper()
		fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
		if !ok {
			t.Fatalf("no function %s", name)
		}
		facts, ok := l.FactsFor(fn)
		if !ok {
			t.Fatalf("no facts for %s", name)
		}
		return facts
	}
	if f := lookup("Clocky"); !f.ReadsClock || !f.ResultClockTainted {
		t.Errorf("Clocky facts = %+v, want ReadsClock and ResultClockTainted", f)
	}
	if f := lookup("Mutator"); !f.MutatesState {
		t.Errorf("Mutator facts = %+v, want MutatesState", f)
	}
	if f := lookup("SeedSink"); f.SeedSinkParams != 1 {
		t.Errorf("SeedSink facts = %+v, want SeedSinkParams bit 0", f)
	}
	if f := lookup("Passthrough"); f.ParamToResult != 1 || f.ParamArithToResult != 0 {
		t.Errorf("Passthrough facts = %+v, want ParamToResult bit 0 only", f)
	}
	if f := lookup("Arith"); f.ParamArithToResult != 1 {
		t.Errorf("Arith facts = %+v, want ParamArithToResult bit 0", f)
	}
}

// --- JSON output ---

func TestWriteJSONGolden(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixjson", "fixjson.go", `
package fixjson

import "math/rand"

func Roll() int { return rand.Intn(6) }
`)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, fs); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	golden := filepath.Join("testdata", "json_golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON output mismatch\n got: %s\nwant: %s", buf.Bytes(), want)
	}
}

func TestWriteJSONEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("empty findings = %q, want []\\n", got)
	}
}

// --- loader test variants ---

func TestLoadTestsAugmentsPackage(t *testing.T) {
	l := loaderForTest(t)
	pkgs, err := l.LoadTests("dibs/internal/queue")
	if err != nil {
		t.Fatalf("LoadTests: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages returned")
	}
	aug := pkgs[0]
	if aug.TestOf != "dibs/internal/queue" {
		t.Errorf("augmented package TestOf = %q, want the base path", aug.TestOf)
	}
	hasTestFile := false
	for _, f := range aug.Files {
		if strings.HasSuffix(l.Fset.Position(f.Pos()).Filename, "_test.go") {
			hasTestFile = true
		}
	}
	if !hasTestFile {
		t.Error("augmented package must include _test.go files")
	}
	// The production package stays cached unaugmented for other importers.
	base, err := l.Load("dibs/internal/queue")
	if err != nil {
		t.Fatalf("Load after LoadTests: %v", err)
	}
	for _, f := range base.Files {
		if strings.HasSuffix(l.Fset.Position(f.Pos()).Filename, "_test.go") {
			t.Error("production package cache was polluted with test files")
		}
	}
	// The repo's own test files must lint clean under the test-rule set
	// (literal-seeded rand.New in tests is legal; wall-clock seeding is not).
	if fs := l.Run(pkgs, Analyzers()); len(fs) != 0 {
		t.Errorf("internal/queue test build should lint clean, got %v", rulesOf(fs))
	}
}

// --- severity and test-file filtering ---

func TestSeverityStamped(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixsev", "fixsev.go", `
package fixsev

import "math/rand"

func Roll() int { return rand.Intn(6) }
`)
	if len(fs) == 0 {
		t.Fatal("expected findings")
	}
	for _, f := range fs {
		if f.Severity != SevError {
			t.Errorf("finding %s has severity %q, want %q", f.Rule, f.Severity, SevError)
		}
	}
}

func TestTestFileFindingsFiltered(t *testing.T) {
	l := loaderForTest(t)
	pkg, err := l.LoadSynthetic("dibs/internal/fixtestfilter", map[string]string{
		"fixtestfilter.go": `
package fixtestfilter

func Placeholder() {}
`,
		"fixtestfilter_extra_test.go": `
package fixtestfilter

import (
	"math/rand"
	"time"

	"dibs/internal/rng"
)

func helperGlobalRand() int { return rand.Intn(6) } // nondet-globalrand: InTests

func helperClockSeed() {
	_ = rng.New(time.Now().UnixNano(), "flaky") // rng-taint: InTests
}

func helperTiming() int64 {
	start := time.Now() // nondet-wallclock: filtered out in tests
	return start.Unix()
}
`,
	})
	if err != nil {
		t.Fatalf("LoadSynthetic: %v", err)
	}
	fs := l.Run([]*Package{pkg}, Analyzers())
	assertRule(t, fs, "nondet-globalrand", 1)
	assertRule(t, fs, "rng-taint", 1)
	assertRule(t, fs, "nondet-wallclock", 0)
}
