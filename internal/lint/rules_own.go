package lint

// rules_own.go is the path-sensitive ownership checker built on the
// summaries of facts_own.go. For every function body it tracks:
//
//   - packet parameters (borrowed from the caller), and
//   - locals bound to an owned birth (Pool.Get, Scheduler.At/After, or a
//     ReturnsOwned / //dibslint:owns callee),
//
// and walks every CFG path from the birth looking for three defects:
//
//   own-leak          the resource reaches function exit undischarged on
//                     some path. For borrowed parameters the rule arms only
//                     when the function releases the parameter on *some*
//                     path (release-on-all-or-none; a pure borrower is
//                     fine). For owned locals every path must discharge:
//                     release, hand-off, store, or return. A Pool.Get
//                     result that is discarded outright is also a leak.
//   own-doublefree    a second release is reachable after a release,
//                     deferred release, or hand-off of the same packet.
//   own-useafterfree  the packet is used (field access, method call,
//                     hand-off) after a release point on some path.
//
// Precision notes: paths through a `v == nil` / `v != nil` check follow
// only the non-nil branch (a released or owned pointer is never nil, and a
// nil Dequeue result carries no resource); panic/os.Exit closes a path;
// rebinding v ends tracking of the old value; address-taken or
// closure-captured variables are skipped entirely. Timer handles get the
// leak rule only — Cancel is idempotent by design, so double-cancel and
// cancel-after-cancel are not defects.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// OwnershipAnalysis checks the packet-pool and timer-handle discipline on
// every CFG path, using the interprocedural summaries from the fact store.
func OwnershipAnalysis() *Analyzer {
	return &Analyzer{
		Rules: []RuleDoc{
			{ID: "own-leak", Doc: "a pool packet or timer handle reaches function exit undischarged on some path; release it, hand it off, or store it on every path", Severity: SevError},
			{ID: "own-doublefree", Doc: "a packet can be released twice along one path (Free/Put after a release or hand-off)", Severity: SevError},
			{ID: "own-useafterfree", Doc: "a packet is used after a release point on some path", Severity: SevError},
		},
		Check: func(l *Loader, pkg *Package, report func(token.Pos, string, string)) {
			path := effectivePath(pkg)
			if !l.SimPackage(path) {
				return
			}
			// The resource implementations themselves legitimately touch
			// freelists and handle internals.
			if path == l.ModulePath+"/internal/packet" || path == l.ModulePath+"/internal/eventq" {
				return
			}
			for _, f := range pkg.Files {
				eachFuncBody(pkg, f, func(obj *types.Func, recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt) {
					oc := &ownChecker{
						l:        l,
						info:     pkg.Info,
						du:       l.funcData(pkg.Info, recv, ftype, body),
						captured: capturedVars(pkg, body),
						report:   report,
						reported: make(map[string]bool),
					}
					oc.check()
				})
			}
		},
	}
}

// varEvent is one classified event of a block node on a tracked variable.
type varEvent struct {
	v   *types.Var
	ev  ownEvent
	pos token.Pos
}

type ownChecker struct {
	l        *Loader
	info     *types.Info
	du       *defUse
	captured map[*types.Var]bool
	report   func(token.Pos, string, string)
	reported map[string]bool

	eventsAt map[ast.Node][]varEvent
}

func (oc *ownChecker) reportOnce(pos token.Pos, rule, msg string) {
	key := fmt.Sprintf("%s:%d", rule, pos)
	if oc.reported[key] {
		return
	}
	oc.reported[key] = true
	oc.report(pos, rule, msg)
}

// tracked is one resource value under analysis: a borrowed parameter
// (birth == nil, paths start at entry) or an owned local (paths start just
// after the birth node).
type tracked struct {
	v       *types.Var
	kind    string // "packet" or "timer"
	isParam bool
	birth   ast.Node
	blk     *cfgBlock
	idx     int
}

func (oc *ownChecker) check() {
	du := oc.du

	// Pre-classify every node's events once.
	oc.eventsAt = make(map[ast.Node][]varEvent)
	for _, blk := range du.g.blocks {
		for _, n := range blk.nodes {
			node := n
			oc.l.ownEvents(oc.info, du, node, func(v *types.Var, ev ownEvent, pos token.Pos) {
				oc.eventsAt[node] = append(oc.eventsAt[node], varEvent{v, ev, pos})
			})
		}
	}

	var items []tracked

	// Borrowed resource parameters.
	for _, d := range du.defs {
		if d.kind != defParam || oc.captured[d.obj] {
			continue
		}
		if kind := resourceKind(d.obj.Type()); kind == "packet" {
			items = append(items, tracked{v: d.obj, kind: kind, isParam: true,
				blk: du.g.entry, idx: 0})
		}
	}

	// Owned locals born from a call, and discarded births.
	for _, blk := range du.g.blocks {
		for idx, n := range blk.nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok {
					if oc.l.ownedBirth(oc.info, call) == "packet" {
						oc.reportOnce(call.Pos(), "own-leak",
							"owned packet result is discarded; the borrowed packet can never be returned to its pool")
					}
				}
				continue
			}
			for _, d := range du.defsAt[n] {
				if d.kind != defExpr || d.rhs == nil || oc.captured[d.obj] {
					continue
				}
				call, ok := ast.Unparen(d.rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				kind := oc.l.ownedBirth(oc.info, call)
				if kind == "" || resourceKind(d.obj.Type()) != kind {
					continue
				}
				items = append(items, tracked{v: d.obj, kind: kind,
					birth: n, blk: blk, idx: idx})
			}
		}
	}
	if len(items) == 0 {
		return
	}

	for _, it := range items {
		releases := oc.hasRelease(it.v)
		switch it.kind {
		case "packet":
			// Leak: parameters arm only when a release exists somewhere
			// (release-on-some-paths-but-not-all); owned locals always arm.
			if !it.isParam || releases {
				oc.checkLeak(it)
			}
			oc.checkDoubleFree(it)
			oc.checkUseAfterFree(it)
		case "timer":
			oc.checkLeak(it)
		}
	}
}

// hasRelease reports whether any node releases v (directly or deferred).
func (oc *ownChecker) hasRelease(v *types.Var) bool {
	for _, evs := range oc.eventsAt {
		for _, e := range evs {
			if e.v == v && (e.ev == evRelease || e.ev == evDeferRelease) {
				return true
			}
		}
	}
	return false
}

// rebinds reports whether node n redefines v (other than the birth node
// itself, which loops may legitimately revisit).
func (oc *ownChecker) rebinds(n ast.Node, v *types.Var, birth ast.Node) bool {
	if n == birth {
		return true // reaching the birth again: old value ends here
	}
	for _, d := range oc.du.defsAt[n] {
		if d.obj == v {
			return true
		}
	}
	return false
}

// isTerminalNode reports whether n ends the path without a normal return
// (panic / os.Exit expression statements).
func isTerminalNode(n ast.Node) bool {
	es, ok := n.(*ast.ExprStmt)
	return ok && isTerminalCall(es.X)
}

// liveSuccs returns blk's successors excluding a nil-branch for v: when the
// block ends in `v == nil` / `v != nil`, a live resource pointer only
// follows the non-nil edge.
func (oc *ownChecker) liveSuccs(blk *cfgBlock, v *types.Var) []*cfgBlock {
	if len(blk.succs) != 2 || len(blk.nodes) == 0 {
		return blk.succs
	}
	be, ok := blk.nodes[len(blk.nodes)-1].(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return blk.succs
	}
	var other ast.Expr
	if id, ok := ast.Unparen(be.X).(*ast.Ident); ok && oc.du.localVar(id) == v {
		other = be.Y
	} else if id, ok := ast.Unparen(be.Y).(*ast.Ident); ok && oc.du.localVar(id) == v {
		other = be.X
	} else {
		return blk.succs
	}
	if tv, ok := oc.info.Types[other]; !ok || !tv.IsNil() {
		return blk.succs
	}
	// cond() links the true successor first.
	if be.Op == token.EQL {
		return blk.succs[1:2] // v == nil: true branch is the nil branch
	}
	return blk.succs[0:1] // v != nil: false branch is the nil branch
}

// pathStep is what one node does to the path being walked.
type pathStep int

const (
	stepContinue pathStep = iota
	stepClose             // path is settled (discharged / terminal / rebind)
	stepHit               // defect found at this node
)

// walkPaths DFSes from just after (blk, start), applying step to each node.
// It returns true if some path reaches function exit with every node
// stepping stepContinue (used by the leak check); step may report hits as a
// side effect. Dead-end blocks are builder artifacts, not paths to exit.
func (oc *ownChecker) walkPaths(v *types.Var, blk *cfgBlock, start int, step func(n ast.Node) pathStep) bool {
	scan := func(b *cfgBlock, from int) pathStep {
		for _, n := range b.nodes[from:] {
			switch step(n) {
			case stepClose:
				return stepClose
			case stepHit:
				return stepHit
			}
		}
		return stepContinue
	}
	switch scan(blk, start) {
	case stepClose, stepHit:
		return false
	}
	visited := map[*cfgBlock]bool{}
	var dfs func(b *cfgBlock) bool
	dfs = func(b *cfgBlock) bool {
		if b == oc.du.g.exit {
			return true
		}
		if visited[b] {
			return false
		}
		visited[b] = true
		switch scan(b, 0) {
		case stepClose, stepHit:
			return false
		}
		succs := oc.liveSuccs(b, v)
		if len(succs) == 0 {
			return false
		}
		leaked := false
		for _, s := range succs {
			if dfs(s) {
				leaked = true
			}
		}
		return leaked
	}
	leaked := false
	for _, s := range oc.liveSuccs(blk, v) {
		if dfs(s) {
			leaked = true
		}
	}
	return leaked
}

// eventsOn returns the classified events of node n on variable v.
func (oc *ownChecker) eventsOn(n ast.Node, v *types.Var) []varEvent {
	var out []varEvent
	for _, e := range oc.eventsAt[n] {
		if e.v == v {
			out = append(out, e)
		}
	}
	return out
}

// checkLeak reports a path from the birth (or entry, for parameters) to
// function exit on which v is never discharged.
func (oc *ownChecker) checkLeak(it tracked) {
	discharging := func(ev ownEvent) bool {
		switch ev {
		case evRelease, evDeferRelease, evTransfer, evMaybe, evStore:
			return true
		}
		return false
	}
	start := it.idx
	if !it.isParam {
		start = it.idx + 1
	}
	leaks := oc.walkPaths(it.v, it.blk, start, func(n ast.Node) pathStep {
		if isTerminalNode(n) {
			return stepClose
		}
		for _, e := range oc.eventsOn(n, it.v) {
			if discharging(e.ev) {
				return stepClose
			}
		}
		if oc.rebinds(n, it.v, it.birth) {
			return stepClose
		}
		return stepContinue
	})
	if !leaks {
		return
	}
	pos := it.v.Pos()
	switch {
	case it.isParam:
		oc.reportOnce(pos, "own-leak",
			fmt.Sprintf("%s is released on some paths but reaches function exit still held on others; release it on every path or on none", it.v.Name()))
	case it.kind == "timer":
		oc.reportOnce(pos, "own-leak",
			fmt.Sprintf("timer handle %s is dropped on some path; store it, cancel it, or call At/After without binding the result", it.v.Name()))
	default:
		oc.reportOnce(pos, "own-leak",
			fmt.Sprintf("%s holds an owned packet that reaches function exit undischarged on some path; Free it, hand it off, or store it on every path", it.v.Name()))
	}
}

// checkDoubleFree reports a release of v reachable after a release,
// deferred release, or hand-off of v on the same path.
func (oc *ownChecker) checkDoubleFree(it tracked) {
	isOrigin := func(ev ownEvent) bool {
		switch ev {
		case evRelease, evDeferRelease, evTransfer, evStore:
			return true
		}
		return false
	}
	for _, blk := range oc.du.g.blocks {
		for idx, n := range blk.nodes {
			origin := false
			for _, e := range oc.eventsOn(n, it.v) {
				if isOrigin(e.ev) {
					origin = true
					break
				}
			}
			if !origin {
				continue
			}
			oc.walkPaths(it.v, blk, idx+1, func(m ast.Node) pathStep {
				if isTerminalNode(m) {
					return stepClose
				}
				for _, e := range oc.eventsOn(m, it.v) {
					if e.ev == evRelease || e.ev == evDeferRelease {
						oc.reportOnce(e.pos, "own-doublefree",
							fmt.Sprintf("%s may already have been released or handed off when this release runs", it.v.Name()))
						return stepHit
					}
				}
				if oc.rebinds(m, it.v, it.birth) {
					return stepClose
				}
				return stepContinue
			})
		}
	}
}

// checkUseAfterFree reports a use, hand-off, or store of v reachable after
// an unconditional release of v. Deferred releases run at exit, so nothing
// in the body can be "after" them.
func (oc *ownChecker) checkUseAfterFree(it tracked) {
	for _, blk := range oc.du.g.blocks {
		for idx, n := range blk.nodes {
			origin := false
			for _, e := range oc.eventsOn(n, it.v) {
				if e.ev == evRelease {
					origin = true
					break
				}
			}
			if !origin {
				continue
			}
			oc.walkPaths(it.v, blk, idx+1, func(m ast.Node) pathStep {
				if isTerminalNode(m) {
					return stepClose
				}
				if oc.rebinds(m, it.v, it.birth) {
					return stepClose
				}
				for _, e := range oc.eventsOn(m, it.v) {
					switch e.ev {
					case evUse, evMaybe, evTransfer, evStore:
						oc.reportOnce(e.pos, "own-useafterfree",
							fmt.Sprintf("%s is used here after being released on some path", it.v.Name()))
						return stepHit
					case evRelease, evDeferRelease:
						return stepClose // own-doublefree's finding
					}
				}
				return stepContinue
			})
		}
	}
}
