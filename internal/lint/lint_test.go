package lint

import (
	"strings"
	"sync"
	"testing"
)

// A single loader is shared across tests: the stdlib source importer is the
// expensive part, and the loader caches every package it checks.
var (
	loaderOnce sync.Once
	testLoader *Loader
	loaderErr  error
)

func loaderForTest(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		testLoader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return testLoader
}

// lintFixture type-checks one synthetic source file under the given import
// path (which controls sim-package scoping) and runs the full suite on it.
func lintFixture(t *testing.T, pkgPath, fileName, src string) []Finding {
	t.Helper()
	l := loaderForTest(t)
	pkg, err := l.LoadSynthetic(pkgPath, map[string]string{fileName: src})
	if err != nil {
		t.Fatalf("LoadSynthetic(%s): %v", pkgPath, err)
	}
	return l.Run([]*Package{pkg}, Analyzers())
}

func rulesOf(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Rule)
	}
	return out
}

func assertRule(t *testing.T, fs []Finding, rule string, want int) {
	t.Helper()
	n := 0
	for _, f := range fs {
		if f.Rule == rule {
			n++
			if f.Pos.Line == 0 || f.Pos.Filename == "" {
				t.Errorf("%s finding lacks a position: %+v", rule, f)
			}
		}
	}
	if n != want {
		t.Errorf("rule %s: got %d findings, want %d (all: %v)", rule, n, want, rulesOf(fs))
	}
}

func TestGlobalRandFlaggedInSimPackage(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixglobalrand", "fixglobalrand.go", `
package fixglobalrand

import "math/rand"

func Roll() int {
	rand.Seed(42)
	return rand.Intn(6)
}
`)
	assertRule(t, fs, "nondet-globalrand", 2)
	for _, f := range fs {
		if f.Rule == "nondet-globalrand" && !strings.Contains(f.Msg, "rand.") {
			t.Errorf("message should name the function: %s", f.Msg)
		}
	}
}

func TestPlumbedRandAllowed(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixplumbed", "fixplumbed.go", `
package fixplumbed

import "math/rand"

func Roll(rng *rand.Rand) int { return rng.Intn(6) }
`)
	if len(fs) != 0 {
		t.Errorf("method calls on a plumbed *rand.Rand must pass; got %v", rulesOf(fs))
	}
}

func TestRandConstructorOutsideRNGPackage(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixrandnew", "fixrandnew.go", `
package fixrandnew

import "math/rand"

func Make(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
`)
	assertRule(t, fs, "nondet-randnew", 2)
}

func TestWallClockFlaggedInSimOnly(t *testing.T) {
	src := `
package fixclock

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`
	fs := lintFixture(t, "dibs/internal/fixclock", "fixclock_sim.go", src)
	assertRule(t, fs, "nondet-wallclock", 1)

	// The same code in a cmd/ package is outside the determinism perimeter.
	fs = lintFixture(t, "dibs/cmd/fixclock", "fixclock_cmd.go", src)
	assertRule(t, fs, "nondet-wallclock", 0)
}

func TestMapRangeSchedulingAndAggregation(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixmaprange", "fixmaprange.go", `
package fixmaprange

import "dibs/internal/eventq"

func Bad(s *eventq.Scheduler, m map[int]int) []int {
	var order []int
	for k := range m {
		k := k
		s.After(eventq.Microsecond, func() { _ = k })
		order = append(order, k)
	}
	return order
}

func Good(s *eventq.Scheduler, xs []int) []int {
	var order []int
	for _, x := range xs {
		order = append(order, x)
	}
	for k := range map[int]int{} {
		local := []int{}
		local = append(local, k) // stays inside the loop: fine
		_ = local
	}
	return order
}
`)
	assertRule(t, fs, "nondet-maprange", 2) // one schedule + one escaping append
}

func TestVirtualTimeDurationLeak(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixvtime", "fixvtime.go", `
package fixvtime

import (
	"time"

	"dibs/internal/eventq"
)

type LinkCfg struct {
	Delay time.Duration // should be eventq.Time
}

func Convert(d time.Duration) eventq.Time { return eventq.Time(d) }
`)
	// One for the struct field, one for the parameter declaration, one for
	// the direct cast.
	assertRule(t, fs, "vtime-duration", 3)
}

func TestRawNanosecondLiterals(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixrawns", "fixrawns.go", `
package fixrawns

import "dibs/internal/eventq"

func Bad(s *eventq.Scheduler) {
	s.After(5000, func() {}) // raw ns magic number
	var t eventq.Time = 1_000_000
	_ = t
}

func Good(s *eventq.Scheduler) {
	s.After(5*eventq.Microsecond, func() {})
	s.After(1, func() {}) // small tie-break epsilon is fine
	if s.Now() > 3*eventq.Second {
		return
	}
}
`)
	assertRule(t, fs, "vtime-rawns", 2)
}

func TestTimeTimesTimeOverflow(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixoverflow", "fixoverflow.go", `
package fixoverflow

import "dibs/internal/eventq"

func Bad(a, b eventq.Time) eventq.Time { return a * b }

func Good(a eventq.Time) eventq.Time { return 3 * a }
`)
	assertRule(t, fs, "vtime-overflow", 1)
}

func TestFloatEquality(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixfloat", "fixfloat.go", `
package fixfloat

func Bad(p99, prev float64) bool { return p99 == prev }

func Guards(sum float64, n int) bool {
	return sum == 0 || n == 3 // exact-zero guard and int compare are fine
}
`)
	assertRule(t, fs, "float-eq", 1)
}

func TestSchedulingIntoThePast(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixpast", "fixpast.go", `
package fixpast

import "dibs/internal/eventq"

func Bad(s *eventq.Scheduler, lag eventq.Time) {
	s.At(s.Now()-lag, func() {})
}

func Good(s *eventq.Scheduler, end, drain eventq.Time) {
	s.At(end-drain, func() {}) // plain absolute-time arithmetic is fine
}
`)
	assertRule(t, fs, "sched-past", 1)
}

func TestDroppedErrorReturn(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixerr", "fixerr.go", `
package fixerr

import "errors"

func mayFail() error { return errors.New("boom") }

func Bad()  { mayFail() }
func Good() { _ = mayFail() }
`)
	assertRule(t, fs, "sched-droppederr", 1)
}

func TestIgnoreDirectiveSuppresses(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixignore", "fixignore.go", `
package fixignore

import "math/rand"

func Roll() int {
	//dibslint:ignore nondet-globalrand fixture exercising suppression
	return rand.Intn(6)
}
`)
	assertRule(t, fs, "nondet-globalrand", 0)
	assertRule(t, fs, "lint-badignore", 0)
}

func TestIgnoreWithoutReasonIsReported(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixbadignore", "fixbadignore.go", `
package fixbadignore

import "math/rand"

func Roll() int {
	//dibslint:ignore nondet-globalrand
	return rand.Intn(6)
}
`)
	// The bare directive does not suppress, and is itself a finding.
	assertRule(t, fs, "nondet-globalrand", 1)
	assertRule(t, fs, "lint-badignore", 1)
}

func TestIgnoreOnlySuppressesNamedRule(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixwrongrule", "fixwrongrule.go", `
package fixwrongrule

import "math/rand"

func Roll() int {
	//dibslint:ignore nondet-wallclock wrong rule named on purpose
	return rand.Intn(6)
}
`)
	assertRule(t, fs, "nondet-globalrand", 1)
	// A directive naming the wrong rule suppresses nothing, so it is also
	// reported as stale.
	assertRule(t, fs, "lint-staleignore", 1)
}

func TestStaleIgnoreReported(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixstale", "fixstale.go", `
package fixstale

import "math/rand"

func Roll() int {
	//dibslint:ignore nondet-globalrand fixture exercises the suppression
	n := rand.Intn(6)
	//dibslint:ignore nondet-globalrand nothing on the next line trips this
	return n
}
`)
	// The first directive is live; the second suppresses nothing.
	assertRule(t, fs, "nondet-globalrand", 0)
	assertRule(t, fs, "lint-staleignore", 1)
}

func TestAllRulesDocumented(t *testing.T) {
	docs := AllRules()
	if len(docs) < 10 {
		t.Fatalf("expected a full rule catalogue, got %d entries", len(docs))
	}
	seen := map[string]bool{}
	for _, d := range docs {
		if d.ID == "" || d.Doc == "" {
			t.Errorf("rule with empty ID or doc: %+v", d)
		}
		if seen[d.ID] {
			t.Errorf("duplicate rule ID %s", d.ID)
		}
		seen[d.ID] = true
	}
}

func TestFindingString(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixformat", "fixformat.go", `
package fixformat

import "math/rand"

func Roll() int { return rand.Intn(6) }
`)
	if len(fs) == 0 {
		t.Fatal("expected a finding")
	}
	s := fs[0].String()
	if !strings.Contains(s, "fixformat.go:") || !strings.Contains(s, "nondet-globalrand") {
		t.Errorf("finding format %q lacks file:line or rule id", s)
	}
}

func TestGoroutineFlaggedInSimPackage(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixgoroutine", "fixgoroutine.go", `
package fixgoroutine

import (
	"sync"
	"sync/atomic"
)

type S struct {
	mu sync.Mutex
	n  atomic.Int64
}

func (s *S) Kick() {
	go func() { s.n.Add(1) }()
}
`)
	// One go statement + three sync/atomic identifier uses (Mutex, Int64, Add... Add is a method).
	n := 0
	for _, f := range fs {
		if f.Rule == "nondet-goroutine" {
			n++
		}
	}
	if n < 3 {
		t.Errorf("nondet-goroutine: got %d findings, want >= 3 (go stmt + sync.Mutex + atomic.Int64): %v", n, rulesOf(fs))
	}
}

func TestGoroutineAllowedInRunnerAndCmd(t *testing.T) {
	src := `
package fixpool

import "sync"

func Fan(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); fn(i) }()
	}
	wg.Wait()
}
`
	// internal/runner is the sanctioned home for parallelism.
	fs := lintFixture(t, "dibs/internal/runner", "fixpool.go", src)
	assertRule(t, fs, "nondet-goroutine", 0)

	// cmd/ binaries are outside the determinism perimeter entirely.
	fs = lintFixture(t, "dibs/cmd/fixpool", "fixpool.go", src)
	assertRule(t, fs, "nondet-goroutine", 0)

	// The blanket internal/pdes allowlist is gone: a shard driver spawning
	// bare goroutines flags like any other simulation package unless the
	// spawning function is declared //dibslint:confined coordinator.
	fs = lintFixture(t, "dibs/internal/pdeslike", "fixpool.go", src)
	if n := countRule(fs, "nondet-goroutine"); n == 0 {
		t.Errorf("nondet-goroutine: unannotated goroutines in dibs/internal/pdeslike were not flagged; the deleted allowlist leaked back")
	}

	// A coordinator-confined function may spawn workers, provided the
	// goroutines share nothing but channels and basic values — checked by
	// shard-escape instead of being waved through wholesale.
	fs = lintFixture(t, "dibs/internal/fixcoord", "fixcoord.go", `
package fixcoord

//dibslint:confined coordinator drives the barrier between windows; cmd/done order every hand-off
func Drive(n int) {
	cmd := make([]chan int, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		cmd[i] = make(chan int, 1)
		go func(i int) {
			for range cmd[i] {
				done <- i
			}
		}(i)
	}
	for i := 0; i < n; i++ {
		cmd[i] <- 1
	}
	for i := 0; i < n; i++ {
		<-done
		close(cmd[i])
	}
}
`)
	assertRule(t, fs, "nondet-goroutine", 0)
	assertRule(t, fs, "shard-escape", 0)
}

func countRule(fs []Finding, rule string) int {
	n := 0
	for _, f := range fs {
		if f.Rule == rule {
			n++
		}
	}
	return n
}

func TestPacketLiteralFlaggedInSimPackage(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixhotpath", "fixhotpath.go", `
package fixhotpath

import "dibs/internal/packet"

func Emit() *packet.Packet {
	return &packet.Packet{Kind: packet.Data, TTL: 255}
}

func EmitValue() packet.Packet {
	return packet.Packet{Kind: packet.Ack}
}
`)
	assertRule(t, fs, "hotpath-alloc", 2)
}

func TestPacketLiteralAllowedOutsidePerimeter(t *testing.T) {
	fs := lintFixture(t, "dibs/cmd/fixhotpathcmd", "fixhotpathcmd.go", `
package fixhotpathcmd

import "dibs/internal/packet"

func Probe() *packet.Packet { return &packet.Packet{Kind: packet.Data} }
`)
	assertRule(t, fs, "hotpath-alloc", 0)
}

func TestPacketLiteralIgnoreDirective(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixhotpathign", "fixhotpathign.go", `
package fixhotpathign

import "dibs/internal/packet"

func Probe() *packet.Packet {
	//dibslint:ignore hotpath-alloc cold path, one packet per run
	return &packet.Packet{Kind: packet.Data}
}
`)
	assertRule(t, fs, "hotpath-alloc", 0)
}

func TestPacketLiteralAllowedInTests(t *testing.T) {
	l := loaderForTest(t)
	pkg, err := l.LoadSynthetic("dibs/internal/fixhotpathtest", map[string]string{
		"fixhotpathtest.go": `
package fixhotpathtest

import "dibs/internal/packet"

func Use(p *packet.Packet) int { return p.TTL }
`,
		"fixhotpathtest_extra_test.go": `
package fixhotpathtest

import "dibs/internal/packet"

func helperPacket() *packet.Packet { return &packet.Packet{Kind: packet.Data, TTL: 8} }
`,
	})
	if err != nil {
		t.Fatalf("LoadSynthetic: %v", err)
	}
	fs := l.Run([]*Package{pkg}, Analyzers())
	assertRule(t, fs, "hotpath-alloc", 0)
}
