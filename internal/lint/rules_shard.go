package lint

// rules_shard.go checks the shard-confinement discipline of the
// conservative-PDES engine, replacing the blanket nondet-goroutine
// allowlist internal/pdes used to carry. Three rules, built on the
// //dibslint:confined annotations and the escape/lookahead summaries of
// facts_escape.go:
//
//   shard-escape           shard-confined state becomes reachable from
//                          another shard outside the barrier-window
//                          protocol: stored in a package variable, sent on
//                          a channel, captured by a pdes.Message in an
//                          unconfined function, passed to a callee's
//                          escaping position, or captured by a coordinator
//                          goroutine without being a channel or a
//                          shard/immutable-confined value.
//   shard-wire-custody     the packet.Wire free-at-source →
//                          re-borrow-at-destination transfer: a snapshot
//                          emitted cross-shard while the snapshotted
//                          packet is still held is a use-after-free in
//                          waiting, and a Wire restored into a node not
//                          freshly adopted from the destination pool
//                          corrupts arena custody.
//   shard-lookahead-const  the lookahead passed to pdes.Run must flow from
//                          topology link-delay constants (Delay/LinkDelay
//                          fields, literals, lookahead-safe helpers) —
//                          never arithmetic that could shave the window
//                          below the true minimum cross-shard latency.
//
// The custody walk reuses the ownership checker's CFG path machinery
// (rules_own.go), so nil-branch pruning, terminal calls, and rebinds
// behave identically to own-leak/own-doublefree.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ShardConfinement checks the three shard-confinement rules over every
// simulation package.
func ShardConfinement() *Analyzer {
	return &Analyzer{
		Rules: []RuleDoc{
			{ID: "shard-escape", Doc: "shard-confined state is reachable from another shard outside the barrier-window protocol (global store, channel send, goroutine capture, or bare pdes.Message)", Severity: SevError},
			{ID: "shard-wire-custody", Doc: "a packet.Wire snapshot is emitted cross-shard while the packet is still held, or restored into a node not freshly adopted from the destination pool", Severity: SevError},
			{ID: "shard-lookahead-const", Doc: "a pdes.Run lookahead flows from arithmetic or opaque values; it must come from topology link-delay constants", Severity: SevError},
		},
		Check: func(l *Loader, pkg *Package, report func(token.Pos, string, string)) {
			path := effectivePath(pkg)
			if !l.SimPackage(path) || strings.HasSuffix(path, "internal/runner") {
				return
			}
			// The snapshot/restore implementations themselves legitimately
			// touch Wire and Packet internals.
			custody := !strings.HasSuffix(path, "internal/packet")
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					checkConfinedParamNames(pkg, fd, report)
					sc := &shardChecker{l: l, info: pkg.Info,
						region: l.confinedOf(pkg.Info.Defs[fd.Name]), report: report}
					sc.checkEscapes(fd)
				}
				eachFuncBody(pkg, f, func(_ *types.Func, recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt) {
					du := l.funcData(pkg.Info, recv, ftype, body)
					if custody {
						checkWireCustody(l, pkg, du, body, report)
						checkRestoreAdoption(l, pkg, du, report)
					}
					checkLookaheadArgs(l, pkg, du, report)
				})
			}
		},
	}
}

// checkConfinedParamNames reports confined(param) annotations whose name
// resolves to no receiver or parameter of the function — suppressions()
// cannot, since it has no declaration in hand.
func checkConfinedParamNames(pkg *Package, fd *ast.FuncDecl, report func(token.Pos, string, string)) {
	if fd.Doc == nil {
		return
	}
	for _, c := range fd.Doc.List {
		m := confinedRe.FindStringSubmatch(c.Text)
		if m == nil || m[1] == "" || !validRegion(m[2]) || strings.TrimSpace(m[3]) == "" {
			continue
		}
		if paramIdent(fd, m[1]) == nil {
			report(c.Pos(), "lint-badignore",
				fmt.Sprintf("confined(%s) names no receiver or parameter of %s", m[1], fd.Name.Name))
		}
	}
}

// shardChecker runs the escape checks of one function declaration,
// including its nested function literals.
type shardChecker struct {
	l      *Loader
	info   *types.Info
	region string // the declaration's own confinement region, or ""
	report func(token.Pos, string, string)
}

func (sc *shardChecker) regionOf(e ast.Expr) string {
	return sc.l.exprRegion(sc.info, e)
}

func (sc *shardChecker) checkEscapes(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			if sc.region == RegionCoordinator {
				sc.checkCoordinatorGo(x)
			}
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				if writtenPackageVar(sc.info, lhs) == nil {
					continue
				}
				for _, e := range storedValues(sc.info, x.Rhs[i]) {
					if sc.regionOf(e) == RegionShard {
						sc.report(e.Pos(), "shard-escape",
							"shard-confined value stored in a package-level variable; any shard could reach it outside the window protocol")
					}
				}
			}
		case *ast.SendStmt:
			if sc.regionOf(x.Value) == RegionShard {
				sc.report(x.Value.Pos(), "shard-escape",
					"shard-confined value sent on a channel; cross-shard hand-offs go through pdes.Message custody, not raw sends")
			}
		case *ast.CompositeLit:
			if tv, ok := sc.info.Types[x]; ok && isPdesMessageType(tv.Type) &&
				sc.region != RegionShard && sc.region != RegionCoordinator {
				sc.checkMessageLit(x)
			}
		case *ast.CallExpr:
			sc.checkEscapingArgs(x)
		}
		return true
	})
}

// storedValues unwraps an rhs stored into longer-lived state to the values
// actually retained: append arguments, composite-literal elements, or the
// expression itself.
func storedValues(info *types.Info, e ast.Expr) []ast.Expr {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(x.Args) > 1 {
				return x.Args[1:]
			}
		}
	case *ast.CompositeLit:
		out := make([]ast.Expr, 0, len(x.Elts))
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				out = append(out, kv.Value)
			} else {
				out = append(out, el)
			}
		}
		return out
	}
	return []ast.Expr{e}
}

// checkCoordinatorGo verifies one goroutine spawned by a
// coordinator-confined function: everything it captures or is handed must
// be a channel, a basic value, or shard/immutable-confined — the values
// the barrier protocol is allowed to share with a worker.
func (sc *shardChecker) checkCoordinatorGo(g *ast.GoStmt) {
	call := g.Call
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		for _, v := range funcLitFreeVars(sc.info, lit) {
			if sc.sharedVarOK(v) {
				continue
			}
			sc.report(g.Pos(), "shard-escape",
				fmt.Sprintf("coordinator goroutine captures %s, which is neither a channel nor shard/immutable-confined; workers must not share it", v.Name()))
		}
	} else if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if !isPackageName(sc.info, sel.X) && !sc.sharedExprOK(sel.X) {
			sc.report(g.Pos(), "shard-escape",
				"coordinator goroutine runs a method of a value that is neither a channel nor shard/immutable-confined")
		}
	}
	for _, a := range call.Args {
		if sc.sharedExprOK(a) {
			continue
		}
		sc.report(a.Pos(), "shard-escape",
			"value handed to a coordinator goroutine must be a channel, a basic value, or shard/immutable-confined")
	}
}

// isPackageName reports whether e is a package qualifier ident.
func isPackageName(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isPkg := info.Uses[id].(*types.PkgName)
	return isPkg
}

// sharedVarOK reports whether a captured variable may be shared between the
// coordinator and a worker goroutine.
func (sc *shardChecker) sharedVarOK(v *types.Var) bool {
	if chanLike(v.Type()) {
		return true
	}
	switch sc.l.confinedOf(v) {
	case RegionShard, RegionImmutable:
		return true
	}
	switch sc.l.typeRegion(v.Type()) {
	case RegionShard, RegionImmutable:
		return true
	}
	return false
}

// sharedExprOK is sharedVarOK for argument expressions: basic values and
// constants are copied into the goroutine and carry no shared state.
func (sc *shardChecker) sharedExprOK(e ast.Expr) bool {
	if tv, ok := sc.info.Types[ast.Unparen(e)]; ok {
		if tv.Value != nil {
			return true
		}
		if _, basic := tv.Type.Underlying().(*types.Basic); basic {
			return true
		}
		if chanLike(tv.Type) {
			return true
		}
	}
	switch sc.regionOf(e) {
	case RegionShard, RegionImmutable:
		return true
	}
	return false
}

// funcLitFreeVars returns the variables a function literal references but
// does not define, in source order (deterministic across -workers).
func funcLitFreeVars(info *types.Info, lit *ast.FuncLit) []*types.Var {
	defined := make(map[*types.Var]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Defs[id].(*types.Var); ok {
				defined[v] = true
			}
		}
		return true
	})
	var out []*types.Var
	seen := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || defined[v] || seen[v] {
			return true
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

// checkMessageLit reports shard-confined values captured by a pdes.Message
// built outside a shard- or coordinator-confined function: the Message
// crosses the barrier, so everything reachable from it becomes visible to
// the destination shard.
func (sc *shardChecker) checkMessageLit(x *ast.CompositeLit) {
	ast.Inspect(x, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := sc.info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if sc.l.confinedOf(v) == RegionShard || sc.l.typeRegion(v.Type()) == RegionShard {
			sc.report(id.Pos(), "shard-escape",
				fmt.Sprintf("%s is shard-confined but reachable from a pdes.Message built outside a shard- or coordinator-confined function", id.Name))
		}
		return true
	})
}

// checkEscapingArgs reports shard-confined values passed at a callee's
// escaping parameter position. Callees annotated //dibslint:confined shard
// are exempt: the annotation asserts the escape stays inside the shard's
// own custody protocol (makeEmit storing into its shard's outbox).
func (sc *shardChecker) checkEscapingArgs(call *ast.CallExpr) {
	fn := staticCallee(sc.info, call)
	if !sc.l.moduleFunc(fn) || sc.l.confinedOf(fn) == RegionShard {
		return
	}
	facts, ok := sc.l.facts[fn]
	if !ok || facts.EscapingParams == 0 {
		return
	}
	shift := 0
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		shift = 1
	}
	for i, arg := range call.Args {
		if facts.EscapingParams&(1<<uint(i+shift)) == 0 {
			continue
		}
		if sc.regionOf(arg) == RegionShard {
			sc.report(arg.Pos(), "shard-escape",
				fmt.Sprintf("shard-confined value passed to %s, which lets it escape to state another shard can reach", fn.Name()))
		}
	}
	if shift == 1 && facts.EscapingParams&1 != 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sc.regionOf(sel.X) == RegionShard {
			sc.report(sel.X.Pos(), "shard-escape",
				fmt.Sprintf("shard-confined receiver of %s escapes to state another shard can reach", fn.Name()))
		}
	}
}

// isSnapshotCall matches (*packet.Packet).Snapshot.
func isSnapshotCall(info *types.Info, call *ast.CallExpr) bool {
	fn := staticCallee(info, call)
	return fn != nil && fn.Name() == "Snapshot" && methodOn(fn, "Packet", "internal/packet")
}

// hasDeferredRelease reports whether any node in the function defers a
// release of v.
func hasDeferredRelease(oc *ownChecker, v *types.Var) bool {
	for _, evs := range oc.eventsAt {
		for _, e := range evs {
			if e.v == v && e.ev == evDeferRelease {
				return true
			}
		}
	}
	return false
}

// checkWireCustody walks every path from a `w := p.Snapshot()` binding: if
// the snapshot is emitted (call argument, channel send, return, or store
// into longer-lived state) while p is still held, the free-at-source half
// of the custody transfer was skipped and the packet is a use-after-free in
// waiting on the destination shard.
func checkWireCustody(l *Loader, pkg *Package, du *defUse, body *ast.BlockStmt, report func(token.Pos, string, string)) {
	oc := &ownChecker{
		l:        l,
		info:     pkg.Info,
		du:       du,
		captured: capturedVars(pkg, body),
		report:   report,
		reported: make(map[string]bool),
		eventsAt: make(map[ast.Node][]varEvent),
	}
	armed := false
	for _, blk := range du.g.blocks {
		for _, n := range blk.nodes {
			for _, d := range du.defsAt[n] {
				if d.kind == defExpr && d.rhs != nil {
					if call, ok := ast.Unparen(d.rhs).(*ast.CallExpr); ok && isSnapshotCall(pkg.Info, call) {
						armed = true
					}
				}
			}
		}
	}
	if !armed {
		return
	}
	for _, blk := range du.g.blocks {
		for _, n := range blk.nodes {
			node := n
			l.ownEvents(pkg.Info, du, node, func(v *types.Var, ev ownEvent, pos token.Pos) {
				oc.eventsAt[node] = append(oc.eventsAt[node], varEvent{v, ev, pos})
			})
		}
	}
	for _, blk := range du.g.blocks {
		for idx, n := range blk.nodes {
			for _, d := range du.defsAt[n] {
				if d.kind != defExpr || d.rhs == nil {
					continue
				}
				call, ok := ast.Unparen(d.rhs).(*ast.CallExpr)
				if !ok || !isSnapshotCall(pkg.Info, call) {
					continue
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				pid, ok := ast.Unparen(sel.X).(*ast.Ident)
				if !ok {
					continue
				}
				p := du.localVar(pid)
				w := d.obj
				if p == nil || oc.captured[p] || oc.captured[w] {
					continue
				}
				// A deferred Free discharges custody wherever it appears:
				// it runs at function exit, before the coordinator can
				// drain the outbox at the barrier.
				if hasDeferredRelease(oc, p) {
					continue
				}
				oc.walkPaths(p, blk, idx+1, func(m ast.Node) pathStep {
					if isTerminalNode(m) {
						return stepClose
					}
					for _, e := range oc.eventsOn(m, p) {
						if e.ev == evRelease || e.ev == evDeferRelease {
							return stepClose // custody discharged at the source
						}
					}
					if pos, hit := emitsWire(du, m, w); hit {
						oc.reportOnce(pos, "shard-wire-custody",
							fmt.Sprintf("Wire snapshot %s crosses the shard boundary while %s is still held; free the packet into its source arena before emitting the snapshot", w.Name(), p.Name()))
						return stepHit
					}
					for _, dd := range du.defsAt[m] {
						if dd.obj == p || dd.obj == w {
							return stepClose // rebind ends this custody pair
						}
					}
					return stepContinue
				})
			}
		}
	}
}

// emitsWire reports whether node n emits the wire value held by w: hands it
// to a call, sends it, returns it, or stores it into longer-lived state —
// directly, inside a composite literal, behind &, or captured by a function
// literal.
func emitsWire(du *defUse, n ast.Node, w *types.Var) (token.Pos, bool) {
	var mentions func(e ast.Expr) bool
	mentions = func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return du.localVar(x) == w
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if mentions(el) {
					return true
				}
			}
		case *ast.KeyValueExpr:
			return mentions(x.Value)
		case *ast.CallExpr:
			for _, a := range x.Args {
				if mentions(a) {
					return true
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				return mentions(x.X)
			}
		case *ast.FuncLit:
			found := false
			ast.Inspect(x.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && du.localVar(id) == w {
					found = true
				}
				return true
			})
			return found
		}
		return false
	}
	switch s := n.(type) {
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			if mentions(e) {
				return e.Pos(), true
			}
		}
	case *ast.SendStmt:
		if mentions(s.Value) {
			return s.Value.Pos(), true
		}
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				nonlocal := false
				switch t := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					nonlocal = t.Name != "_" && du.localVar(t) == nil
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					nonlocal = true
				}
				if nonlocal && mentions(s.Rhs[i]) {
					return s.Rhs[i].Pos(), true
				}
			}
		}
	}
	var pos token.Pos
	scanShallow(n, func(m ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, a := range call.Args {
			if mentions(a) {
				pos = a.Pos()
				return false
			}
		}
		return true
	})
	return pos, pos != token.NoPos
}

// checkRestoreAdoption verifies the other half of the custody transfer:
// every Wire.Restore target must trace back to a fresh owned borrow
// (Pool.Get or a ReturnsOwned/owns-annotated callee) on the destination
// shard — restoring into a borrowed, pooled, or aliased node corrupts
// arena custody.
func checkRestoreAdoption(l *Loader, pkg *Package, du *defUse, report func(token.Pos, string, string)) {
	for _, blk := range du.g.blocks {
		for _, n := range blk.nodes {
			scanShallow(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := staticCallee(pkg.Info, call)
				if fn == nil || fn.Name() != "Restore" || !methodOn(fn, "Wire", "internal/packet") || len(call.Args) != 1 {
					return true
				}
				if !adoptedFresh(l, pkg.Info, du, call.Args[0]) {
					report(call.Args[0].Pos(), "shard-wire-custody",
						"Wire restored into a packet that is not a fresh borrow from the destination shard's pool; bind the Restore target to Pool.Get")
				}
				return true
			})
		}
	}
}

// adoptedFresh reports whether every source of e is an owned packet birth.
func adoptedFresh(l *Loader, info *types.Info, du *defUse, e ast.Expr) bool {
	ok := true
	du.eachSource(e, func(src ast.Expr) bool {
		switch x := src.(type) {
		case *ast.Ident:
			for _, d := range du.defsReaching(x) {
				if d.kind != defExpr {
					ok = false
				}
			}
			return true
		case *ast.CallExpr:
			if l.ownedBirth(info, x) != "packet" {
				ok = false
			}
			return false
		default:
			ok = false
			return false
		}
	})
	return ok
}

// checkLookaheadArgs verifies the lookahead argument of every pdes.Run
// call site against the lookahead-safe source lattice.
func checkLookaheadArgs(l *Loader, pkg *Package, du *defUse, report func(token.Pos, string, string)) {
	for _, blk := range du.g.blocks {
		for _, n := range blk.nodes {
			scanShallow(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := staticCallee(pkg.Info, call)
				if fn == nil || fn.Name() != "Run" || fn.Pkg() == nil ||
					!strings.HasSuffix(fn.Pkg().Path(), "internal/pdes") || len(call.Args) < 2 {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true
				}
				if !l.lookaheadSafe(pkg.Info, du, call.Args[1]) {
					report(call.Args[1].Pos(), "shard-lookahead-const",
						"lookahead must flow from topology link-delay constants; arithmetic or opaque values could shave the window below the true minimum cross-shard latency")
				}
				return true
			})
		}
	}
}
