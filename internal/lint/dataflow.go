package lint

// dataflow.go solves reaching definitions over a funcCFG and offers the
// two queries the flow rules are built on:
//
//   - defsReaching(ident): the definitions of a local variable that can
//     flow into this use, following the CFG (not lexical order), and
//   - eachSource(expr): a demand-driven walk from an expression back
//     through identifier definitions, parens, unary ops and conversions to
//     the terminal expressions that can produce its value — the core of
//     the taint rules (rng-taint, vtime-flow).
//
// Only function-local variables participate (parameters, named results,
// := and var declarations inside the body). Package-level variables and
// closure captures are treated as opaque: a use of one simply has no
// definitions, which keeps every rule conservative.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// defKind classifies what a definition binds.
type defKind int

const (
	defExpr   defKind = iota // obj = rhs (rhs is the defining expression)
	defOpAssn                // obj op= rhs, or obj++/--: old value also flows in
	defZero                  // var obj T (zero value)
	defOpaque                // range variable, type-switch implicit, multi-value
	defParam                 // parameter or receiver; paramIdx is set
	defResult                // named result (zero-valued at entry)
)

// definition is one binding of a local variable.
type definition struct {
	id       int
	obj      *types.Var
	kind     defKind
	node     ast.Node // the emitted block node containing the def (nil for params)
	rhs      ast.Expr // defining expression for defExpr/defOpAssn
	paramIdx int      // for defParam: position among parameters (receiver first)
}

// defUse is the reaching-definitions solution for one function body.
type defUse struct {
	g    *funcCFG
	info *types.Info

	defs   []*definition
	defIDs map[*types.Var][]int

	// defsAt[node] lists definitions created by that block node.
	defsAt map[ast.Node][]*definition

	// identNode maps every identifier appearing in an emitted node to that
	// node; identBlock/identIdx locate the node in its block.
	identNode map[*ast.Ident]ast.Node
	nodeBlock map[ast.Node]*cfgBlock
	nodeIdx   map[ast.Node]int

	in []bitset // per block: definitions reaching block entry
}

// bitset is a simple fixed-width bit vector.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) orInto(src bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | src[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

// analyzeFunc builds the CFG and reaching-definitions solution for one
// function. ftype supplies parameter and named-result definitions; recv
// the method receiver (may be nil).
func analyzeFunc(info *types.Info, recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt) *defUse {
	du := &defUse{
		g:         buildCFG(body),
		info:      info,
		defIDs:    make(map[*types.Var][]int),
		defsAt:    make(map[ast.Node][]*definition),
		identNode: make(map[*ast.Ident]ast.Node),
		nodeBlock: make(map[ast.Node]*cfgBlock),
		nodeIdx:   make(map[ast.Node]int),
	}
	du.collectParamDefs(recv, ftype)
	for _, blk := range du.g.blocks {
		for i, n := range blk.nodes {
			du.nodeBlock[n] = blk
			du.nodeIdx[n] = i
			du.collectDefs(n)
			scanShallow(n, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					du.identNode[id] = n
				}
				return true
			})
		}
	}
	du.solve()
	return du
}

func (du *defUse) addDef(d *definition) {
	d.id = len(du.defs)
	du.defs = append(du.defs, d)
	du.defIDs[d.obj] = append(du.defIDs[d.obj], d.id)
	if d.node != nil {
		du.defsAt[d.node] = append(du.defsAt[d.node], d)
	}
}

func (du *defUse) collectParamDefs(recv *ast.FieldList, ftype *ast.FuncType) {
	idx := 0
	addFields := func(fl *ast.FieldList, kind defKind) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				obj, ok := du.info.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				d := &definition{obj: obj, kind: kind}
				if kind == defParam {
					d.paramIdx = idx
					idx++
				}
				du.addDef(d)
			}
			if len(f.Names) == 0 && kind == defParam {
				idx++
			}
		}
	}
	addFields(recv, defParam)
	addFields(ftype.Params, defParam)
	addFields(ftype.Results, defResult)
}

// localVar resolves an identifier to a function-local *types.Var, or nil.
func (du *defUse) localVar(id *ast.Ident) *types.Var {
	obj := du.info.Defs[id]
	if obj == nil {
		obj = du.info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	// Package-level variables and struct fields are not locals.
	if v.IsField() || v.Parent() == v.Pkg().Scope() {
		return nil
	}
	return v
}

func (du *defUse) collectDefs(n ast.Node) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		du.collectAssignDefs(s)
	case *ast.IncDecStmt:
		if id, ok := s.X.(*ast.Ident); ok {
			if v := du.localVar(id); v != nil {
				du.addDef(&definition{obj: v, kind: defOpAssn, node: n})
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				v := du.localVar(name)
				if v == nil {
					continue
				}
				switch {
				case len(vs.Values) == len(vs.Names):
					du.addDef(&definition{obj: v, kind: defExpr, node: n, rhs: vs.Values[i]})
				case len(vs.Values) == 0:
					du.addDef(&definition{obj: v, kind: defZero, node: n})
				default: // multi-value initializer
					du.addDef(&definition{obj: v, kind: defOpaque, node: n})
				}
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if v := du.localVar(id); v != nil {
					du.addDef(&definition{obj: v, kind: defOpaque, node: n})
				}
			}
		}
	case *ast.CaseClause:
		// Type-switch clauses bind a fresh implicit variable per clause.
		if obj, ok := du.info.Implicits[s].(*types.Var); ok {
			du.addDef(&definition{obj: obj, kind: defOpaque, node: n})
		}
	}
}

func (du *defUse) collectAssignDefs(s *ast.AssignStmt) {
	multi := len(s.Rhs) == 1 && len(s.Lhs) > 1
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		v := du.localVar(id)
		if v == nil {
			continue
		}
		switch {
		case s.Tok == token.ASSIGN || s.Tok == token.DEFINE:
			if multi {
				du.addDef(&definition{obj: v, kind: defOpaque, node: s})
			} else {
				du.addDef(&definition{obj: v, kind: defExpr, node: s, rhs: s.Rhs[i]})
			}
		default: // op-assign: +=, -=, ...
			du.addDef(&definition{obj: v, kind: defOpAssn, node: s, rhs: s.Rhs[0]})
		}
	}
}

// solve runs the forward reaching-definitions fixpoint.
func (du *defUse) solve() {
	n := len(du.defs)
	gen := make([]bitset, len(du.g.blocks))
	kill := make([]bitset, len(du.g.blocks))
	du.in = make([]bitset, len(du.g.blocks))
	out := make([]bitset, len(du.g.blocks))
	for _, blk := range du.g.blocks {
		gen[blk.index] = newBitset(n)
		kill[blk.index] = newBitset(n)
		du.in[blk.index] = newBitset(n)
		out[blk.index] = newBitset(n)
	}
	// Parameter/result definitions are generated by the entry block and
	// already live at its head, so uses inside the entry block see them
	// (the in-block prefix walk only applies node-attached definitions).
	for _, d := range du.defs {
		if d.node == nil {
			gen[du.g.entry.index].set(d.id)
			du.in[du.g.entry.index].set(d.id)
		}
	}
	for _, blk := range du.g.blocks {
		g, k := gen[blk.index], kill[blk.index]
		for _, node := range blk.nodes {
			for _, d := range du.defsAt[node] {
				for _, other := range du.defIDs[d.obj] {
					k.set(other)
					g.clear(other)
				}
				g.set(d.id)
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for _, blk := range du.g.blocks {
			i := blk.index
			for j := range out[i] {
				out[i][j] = (du.in[i][j] &^ kill[i][j]) | gen[i][j]
			}
			for _, s := range blk.succs {
				if du.in[s.index].orInto(out[i]) {
					changed = true
				}
			}
		}
	}
}

// defsReaching returns the definitions of id's variable that reach this
// use. Definitions created by the node containing the use itself are not
// applied: in `x = x + 1` the right-hand x sees the previous bindings.
func (du *defUse) defsReaching(id *ast.Ident) []*definition {
	v := du.localVar(id)
	if v == nil {
		return nil
	}
	node := du.identNode[id]
	blk := du.nodeBlock[node]
	if blk == nil {
		return nil
	}
	live := du.in[blk.index].clone()
	for _, n := range blk.nodes {
		if n == node {
			break
		}
		for _, d := range du.defsAt[n] {
			for _, other := range du.defIDs[d.obj] {
				live.clear(other)
			}
			live.set(d.id)
		}
	}
	var out []*definition
	for _, idx := range du.defIDs[v] {
		if live.has(idx) {
			out = append(out, du.defs[idx])
		}
	}
	return out
}

// eachSource walks from e back to the terminal expressions that can
// produce its value: through parentheses, unary +/-/^, conversions to
// basic or named types, and identifier definitions (via reaching defs).
// visit is called for every contributing expression; returning false stops
// descent into that expression's operands (binary-op and call arguments
// are the caller's to descend, so rules control their own precision).
func (du *defUse) eachSource(e ast.Expr, visit func(ast.Expr) bool) {
	seen := make(map[ast.Node]bool)
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		if e == nil || seen[e] {
			return
		}
		seen[e] = true
		switch x := e.(type) {
		case *ast.ParenExpr:
			walk(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.ADD || x.Op == token.SUB || x.Op == token.XOR {
				walk(x.X)
				return
			}
			visit(e)
		case *ast.CallExpr:
			// A conversion T(x) passes the value through.
			if tv, ok := du.info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				walk(x.Args[0])
				return
			}
			visit(e)
		case *ast.Ident:
			if !visit(e) {
				return
			}
			for _, d := range du.defsReaching(x) {
				switch d.kind {
				case defExpr:
					walk(d.rhs)
				case defOpAssn:
					if d.rhs != nil {
						walk(d.rhs)
					}
					// The old value also flows in; its defs are the ones
					// reaching the op-assign node itself, which the seen
					// map keeps from looping forever.
					var lhs ast.Expr
					switch s := d.node.(type) {
					case *ast.AssignStmt:
						lhs = s.Lhs[0]
					case *ast.IncDecStmt:
						lhs = s.X
					}
					if id, ok := lhs.(*ast.Ident); ok && !seen[id] {
						walk(id)
					}
				}
			}
		default:
			if visit(e) {
				switch x := e.(type) {
				case *ast.BinaryExpr:
					walk(x.X)
					walk(x.Y)
				}
			}
		}
	}
	walk(e)
}
