package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// SARIF 2.1.0 output, the static-analysis interchange format GitHub code
// scanning ingests. Only the fields code scanning actually reads are
// emitted; everything is deterministic (rules sorted by ID, results in
// finding order) so the -workers byte-identity guarantee extends to the
// SARIF stream.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string            `json:"id"`
	ShortDescription sarifText         `json:"shortDescription"`
	DefaultConfig    sarifConfig       `json:"defaultConfiguration"`
	Properties       map[string]string `json:"properties,omitempty"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifConfig struct {
	Level string `json:"level"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// sarifLevel maps dibslint severities to the SARIF level vocabulary.
func sarifLevel(severity string) string {
	if severity == SevWarn {
		return "warning"
	}
	return "error"
}

// sarifURI makes a finding's filename uploadable: relative to root (the
// checkout directory code scanning resolves %SRCROOT% against) when the
// file lives under it, slash-separated either way.
func sarifURI(root, filename string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil &&
			rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			filename = rel
		}
	}
	return filepath.ToSlash(filename)
}

// WriteSARIF emits findings as a single-run SARIF 2.1.0 log, terminated by
// a newline. The rules table lists only rules that actually fired (sorted
// by ID, described from the -rules catalogue), so the log stays small and
// ruleIndex stays stable under rule-set growth. root, when non-empty, is
// the directory paths are made relative to — pass the repository root in
// CI so GitHub can anchor results to checkout-relative URIs.
func WriteSARIF(w io.Writer, findings []Finding, root string) error {
	docs := make(map[string]RuleDoc, len(AllRules()))
	for _, d := range AllRules() {
		docs[d.ID] = d
	}

	fired := make(map[string]bool)
	for _, f := range findings {
		fired[f.Rule] = true
	}
	ids := make([]string, 0, len(fired))
	for id := range fired {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	rules := make([]sarifRule, 0, len(ids))
	index := make(map[string]int, len(ids))
	for i, id := range ids {
		index[id] = i
		doc, ok := docs[id]
		if !ok {
			doc = RuleDoc{ID: id, Doc: id, Severity: SevError}
		}
		rules = append(rules, sarifRule{
			ID:               id,
			ShortDescription: sarifText{Text: doc.Doc},
			DefaultConfig:    sarifConfig{Level: sarifLevel(doc.Severity)},
		})
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:    f.Rule,
			RuleIndex: index[f.Rule],
			Level:     sarifLevel(f.Severity),
			Message:   sarifText{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       sarifURI(root, f.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   f.Pos.Line,
						StartColumn: f.Pos.Column,
					},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "dibslint",
				Rules: rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
