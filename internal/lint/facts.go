package lint

// facts.go is the cross-package fact store. When a package is loaded and
// type-checked, a summary is computed for every function declared in it:
//
//   - ReadsClock / ConsumesRNG / MutatesState: the function (transitively,
//     through module-local calls) reads the wall clock, draws from
//     math/rand, or writes package-level state;
//   - ResultClockTainted: some result value derives from the wall clock or
//     other per-process state (time.Now, os.Getpid), through any number of
//     assignments and arithmetic;
//   - SeedSinkParams: parameters whose value flows into a seed position —
//     rng.New/rng.Derive, a math/rand constructor, or another function's
//     seed-sink parameter — so callers of helpers are checked at the same
//     strength as direct calls;
//   - ParamToResult / ParamArithToResult: parameters that flow into a
//     result value, and the subset that do so through arithmetic. These
//     let rng-taint see laundering through helper functions ("mix(seed)"
//     is still ad-hoc seed arithmetic).
//
// The loader resolves module-local imports before type-checking a package,
// so facts are always computed in dependency order; within a package,
// mutually recursive functions are iterated to a fixpoint (facts only
// grow, and every field is monotone).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FuncFacts is the exported-function summary stored per *types.Func.
type FuncFacts struct {
	ReadsClock         bool
	ConsumesRNG        bool
	MutatesState       bool
	ResultClockTainted bool
	SeedSinkParams     uint64
	ParamToResult      uint64
	ParamArithToResult uint64

	// Ownership summary (facts_own.go). Parameter slots follow the
	// SeedSinkParams convention: for methods the receiver is slot 0 and
	// argument i maps to slot i+1.
	//
	//   ReleasesParams    the parameter can reach packet.Free / Pool.Put
	//                     (transitively) on some path;
	//   ConsumesParams    the function takes ownership on some path: the
	//                     parameter is released, stored into longer-lived
	//                     state, returned, or handed to another consumer;
	//   StoresOwnedParams subset of ConsumesParams stored into state;
	//   ReturnsOwned      some result is an owned resource the caller must
	//                     discharge (a Pool.Get/Timer birth, a ReturnsOwned
	//                     callee, or a //dibslint:owns annotation).
	ReleasesParams    uint64
	ConsumesParams    uint64
	StoresOwnedParams uint64
	ReturnsOwned      bool

	// Shard-confinement summary (facts_escape.go), same slot convention.
	//
	//   EscapingParams      the parameter can become reachable from heap
	//                       state another shard can see: stored to a
	//                       package variable, captured by a go-spawned
	//                       closure, sent on a channel, placed into a
	//                       pdes.Message, or passed to another function's
	//                       escaping position;
	//   ResultLookaheadSafe the function returns eventq.Time and every
	//                       result flows only from constants, zero values,
	//                       Delay/LinkDelay topology fields, or other
	//                       lookahead-safe functions — never arithmetic
	//                       that could undercut the conservative window.
	EscapingParams      uint64
	ResultLookaheadSafe bool
}

// FactsFor returns the computed summary for a function, if its declaring
// package has been loaded.
func (l *Loader) FactsFor(fn *types.Func) (FuncFacts, bool) {
	f, ok := l.facts[fn]
	return f, ok
}

// clockValueFns are stdlib functions whose results derive from per-process
// state; values flowing from them into a seed are flagged by rng-taint.
var clockValueFns = map[[2]string]bool{
	{"time", "Now"}:             true,
	{"time", "Since"}:           true,
	{"time", "Until"}:           true,
	{"os", "Getpid"}:            true,
	{"os", "Getppid"}:           true,
	{"runtime", "NumGoroutine"}: true,
}

// staticCallee resolves the *types.Func a call invokes, for direct calls
// and method calls. Interface dispatch, function values and built-ins
// resolve to nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// moduleFunc reports whether fn is declared inside this module.
func (l *Loader) moduleFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == l.ModulePath || hasPathPrefix(p, l.ModulePath)
}

func hasPathPrefix(path, prefix string) bool {
	return len(path) > len(prefix) && path[:len(prefix)] == prefix && path[len(prefix)] == '/'
}

// rngConstructor reports whether fn is internal/rng's New or Derive; their
// first argument is the canonical seed position, and their results are
// sanctioned seed-derived values.
func (l *Loader) rngConstructor(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && l.RNGPackage(fn.Pkg().Path()) &&
		(fn.Name() == "New" || fn.Name() == "Derive")
}

// seedSinkArgs returns the argument positions of call that feed a seed:
// arg 0 of rng.New/rng.Derive, every argument of a math/rand constructor
// or rand.Seed, and arguments mapped to a callee's seed-sink parameters.
func (l *Loader) seedSinkArgs(info *types.Info, call *ast.CallExpr) []int {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	if l.rngConstructor(fn) {
		if len(call.Args) > 0 {
			return []int{0}
		}
		return nil
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		if randConstructors[fn.Name()] || fn.Name() == "Seed" {
			idx := make([]int, len(call.Args))
			for i := range idx {
				idx[i] = i
			}
			return idx
		}
		return nil
	}
	if l.moduleFunc(fn) {
		if facts, ok := l.facts[fn]; ok && facts.SeedSinkParams != 0 {
			var idx []int
			// Methods: the receiver holds parameter slot 0, so argument i
			// corresponds to parameter i+shift.
			shift := 0
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				shift = 1
			}
			for i := range call.Args {
				if facts.SeedSinkParams&(1<<uint(i+shift)) != 0 {
					idx = append(idx, i)
				}
			}
			return idx
		}
	}
	return nil
}

// isSeedField reports whether sel reads (or writes) a field named Seed on
// a module-declared type — the canonical run-seed carrier.
func (l *Loader) isSeedField(info *types.Info, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Seed" {
		return false
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() || v.Pkg() == nil {
		return false
	}
	p := v.Pkg().Path()
	return p == l.ModulePath || hasPathPrefix(p, l.ModulePath)
}

// valueFlow summarizes where an expression's value can come from.
type valueFlow struct {
	clock       bool   // wall clock / per-process state
	seedOrigin  bool   // a seed read: .Seed field, rng.Derive/New result, seed-sink param
	seedArith   bool   // arithmetic combining a seed-origin value
	params      uint64 // parameters (by slot) the value flows from
	arithParams uint64 // subset of params that passed through arithmetic
}

func (a *valueFlow) merge(b valueFlow) {
	a.clock = a.clock || b.clock
	a.seedOrigin = a.seedOrigin || b.seedOrigin
	a.seedArith = a.seedArith || b.seedArith
	a.params |= b.params
	a.arithParams |= b.arithParams
}

// flowEval evaluates value flow inside one function body.
type flowEval struct {
	l         *Loader
	info      *types.Info
	du        *defUse
	enclosing *types.Func // for seed-sink-param origins; may be nil
}

func (fe *flowEval) eval(e ast.Expr) valueFlow {
	return fe.evalSeen(e, make(map[ast.Node]bool))
}

var arithOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true, token.AND: true, token.OR: true, token.XOR: true,
	token.SHL: true, token.SHR: true, token.AND_NOT: true,
}

func (fe *flowEval) evalSeen(e ast.Expr, seen map[ast.Node]bool) (vf valueFlow) {
	if e == nil || seen[e] {
		return
	}
	seen[e] = true
	switch x := e.(type) {
	case *ast.ParenExpr:
		return fe.evalSeen(x.X, seen)
	case *ast.UnaryExpr:
		if x.Op == token.ADD || x.Op == token.SUB || x.Op == token.XOR {
			return fe.evalSeen(x.X, seen)
		}
	case *ast.BinaryExpr:
		if !arithOps[x.Op] {
			return // comparisons and logic produce fresh booleans
		}
		vf.merge(fe.evalSeen(x.X, seen))
		vf.merge(fe.evalSeen(x.Y, seen))
		vf.arithParams |= vf.params
		if vf.seedOrigin {
			vf.seedArith = true
		}
		return
	case *ast.Ident:
		for _, d := range fe.du.defsReaching(x) {
			switch d.kind {
			case defExpr:
				vf.merge(fe.evalSeen(d.rhs, seen))
			case defOpAssn:
				if d.rhs != nil {
					vf.merge(fe.evalSeen(d.rhs, seen))
				}
				var lhs ast.Expr
				switch s := d.node.(type) {
				case *ast.AssignStmt:
					lhs = s.Lhs[0]
				case *ast.IncDecStmt:
					lhs = s.X
				}
				if id, ok := lhs.(*ast.Ident); ok && !seen[id] {
					vf.merge(fe.evalSeen(id, seen))
				}
			case defParam:
				vf.params |= 1 << uint(d.paramIdx)
				if fe.enclosing != nil {
					if f, ok := fe.l.facts[fe.enclosing]; ok &&
						f.SeedSinkParams&(1<<uint(d.paramIdx)) != 0 {
						vf.seedOrigin = true
					}
				}
			}
		}
		return
	case *ast.SelectorExpr:
		if fe.l.isSeedField(fe.info, x) {
			vf.seedOrigin = true
		}
		return
	case *ast.CallExpr:
		// Conversions pass the value through unchanged.
		if tv, ok := fe.info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return fe.evalSeen(x.Args[0], seen)
		}
		fn := staticCallee(fe.info, x)
		if fn == nil {
			return
		}
		if fe.l.rngConstructor(fn) {
			vf.seedOrigin = true
			return
		}
		if fn.Pkg() != nil && clockValueFns[[2]string{fn.Pkg().Path(), fn.Name()}] {
			vf.clock = true
			return
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			// A method result inherits clock taint from its receiver
			// (time.Now().UnixNano(), d.Seconds(), ...).
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if rv := fe.evalSeen(sel.X, seen); rv.clock {
					vf.clock = true
				}
			}
		}
		if fe.l.moduleFunc(fn) {
			facts := fe.l.facts[fn]
			if facts.ResultClockTainted {
				vf.clock = true
			}
			if facts.ParamToResult != 0 {
				shift := 0
				if sig != nil && sig.Recv() != nil {
					shift = 1
				}
				for i, arg := range x.Args {
					bit := uint64(1) << uint(i+shift)
					if facts.ParamToResult&bit == 0 {
						continue
					}
					av := fe.evalSeen(arg, seen)
					vf.clock = vf.clock || av.clock
					vf.params |= av.params
					vf.arithParams |= av.arithParams
					if facts.ParamArithToResult&bit != 0 {
						vf.arithParams |= av.params
						if av.seedOrigin || av.seedArith {
							vf.seedArith = true
						}
					} else {
						vf.seedOrigin = vf.seedOrigin || av.seedOrigin
						vf.seedArith = vf.seedArith || av.seedArith
					}
				}
			}
		}
		return
	}
	return
}

// funcData builds (and caches) the CFG + reaching-definitions solution for
// one function body.
func (l *Loader) funcData(info *types.Info, recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt) *defUse {
	l.duMu.Lock()
	if du, ok := l.funcDU[body]; ok {
		l.duMu.Unlock()
		return du
	}
	l.duMu.Unlock()
	du := analyzeFunc(info, recv, ftype, body)
	l.duMu.Lock()
	l.funcDU[body] = du
	l.duMu.Unlock()
	return du
}

// computeFacts derives FuncFacts for every function declared in pkg,
// iterating to a fixpoint so same-package recursion converges.
func (l *Loader) computeFacts(pkg *Package) {
	type fnDecl struct {
		obj  *types.Func
		decl *ast.FuncDecl
	}
	var fns []fnDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, fnDecl{obj, fd})
		}
	}
	for pass := 0; pass <= len(fns)+1; pass++ {
		changed := false
		for _, fn := range fns {
			nf := l.factsForDecl(pkg, fn.obj, fn.decl)
			if old, had := l.facts[fn.obj]; !had || nf != old {
				l.facts[fn.obj] = nf
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

func (l *Loader) factsForDecl(pkg *Package, obj *types.Func, decl *ast.FuncDecl) FuncFacts {
	facts := l.facts[obj]
	info := pkg.Info

	// Boolean effect facts scan the whole body, including nested function
	// literals: a closure that reads the clock still makes the function a
	// clock reader from the caller's point of view.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			fn := staticCallee(info, x)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFns[fn.Name()] {
					facts.ReadsClock = true
				}
			case "math/rand", "math/rand/v2":
				facts.ConsumesRNG = true
			}
			if l.moduleFunc(fn) {
				cf := l.facts[fn]
				facts.ReadsClock = facts.ReadsClock || cf.ReadsClock
				facts.ConsumesRNG = facts.ConsumesRNG || cf.ConsumesRNG
				facts.MutatesState = facts.MutatesState || cf.MutatesState
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if v := writtenPackageVar(info, lhs); v != nil {
					facts.MutatesState = true
				}
			}
		case *ast.IncDecStmt:
			if v := writtenPackageVar(info, x.X); v != nil {
				facts.MutatesState = true
			}
		}
		return true
	})

	du := l.funcData(info, decl.Recv, decl.Type, decl.Body)
	fe := &flowEval{l: l, info: info, du: du, enclosing: obj}
	l.computeOwnFacts(info, obj, du, &facts)
	l.computeEscapeFacts(info, du, decl, &facts)
	l.computeLookaheadFacts(info, obj, du, &facts)

	// Result taint: explicit return values, plus every assignment to a
	// named result (covers naked returns, over-approximating which return
	// each assignment reaches).
	resultVars := make(map[*types.Var]bool)
	for _, d := range du.defs {
		if d.kind == defResult {
			resultVars[d.obj] = true
		}
	}
	noteResult := func(vf valueFlow) {
		if vf.clock {
			facts.ResultClockTainted = true
		}
		facts.ParamToResult |= vf.params
		facts.ParamArithToResult |= vf.arithParams
	}
	for _, blk := range du.g.blocks {
		for _, n := range blk.nodes {
			switch s := n.(type) {
			case *ast.ReturnStmt:
				for _, e := range s.Results {
					noteResult(fe.eval(e))
				}
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || !resultVars[du.localVar(id)] {
						continue
					}
					if len(s.Rhs) == len(s.Lhs) {
						noteResult(fe.eval(s.Rhs[i]))
					}
				}
			}
			// Seed sinks: arguments feeding a seed position, and writes
			// to module Seed fields.
			scanShallow(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					for _, i := range l.seedSinkArgs(info, call) {
						facts.SeedSinkParams |= fe.eval(call.Args[i]).params
					}
				}
				return true
			})
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
				for i, lhs := range as.Lhs {
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && l.isSeedField(info, sel) {
						facts.SeedSinkParams |= fe.eval(as.Rhs[i]).params
					}
				}
			}
		}
	}
	return facts
}

// writtenPackageVar resolves an assignment target to the package-level
// variable it mutates, or nil: the base of selector/index/star chains, or
// the selected variable for qualified names (pkg.Var).
func writtenPackageVar(info *types.Info, lhs ast.Expr) *types.Var {
	for {
		switch x := lhs.(type) {
		case *ast.ParenExpr:
			lhs = x.X
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.SliceExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					lhs = x.Sel
					continue
				}
			}
			lhs = x.X
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			v, ok := obj.(*types.Var)
			if !ok || v.Pkg() == nil || v.IsField() {
				return nil
			}
			if v.Parent() == v.Pkg().Scope() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}
