package lint

import "testing"

// The fluid engine is where float rates and coarse virtual-time ticks meet,
// the two things the determinism suite exists to police. These fixtures pin
// the suite on fluid-shaped code: rate accumulators compared exactly,
// tick lengths typed as time.Duration, and raw-nanosecond tick literals —
// each of which would make hybrid runs drift across platforms or refactors.

func TestFluidStyleRateComparisons(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixfluidrate", "fixfluidrate.go", `
package fixfluidrate

// solver-style max-min loop with exact float comparisons on rates.
type flow struct {
	rate float64
	prev float64
}

func Converged(fl []*flow) bool {
	for _, f := range fl {
		if f.rate == f.prev { // exact equality on an accumulated rate
			continue
		}
		return false
	}
	return true
}

func ShareChanged(share, last float64) bool {
	return share != last // same bug, != spelling
}
`)
	assertRule(t, fs, "float-eq", 2)
}

func TestFluidStyleVirtualTimeMisuse(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixfluidtick", "fixfluidtick.go", `
package fixfluidtick

import (
	"time"

	"dibs/internal/eventq"
)

// A tick period held as wall-clock Duration instead of eventq.Time.
type Engine struct {
	Tick time.Duration
}

func (e *Engine) Arm(s *eventq.Scheduler) {
	s.After(100_000, func() {}) // raw 100µs tick as a bare ns literal
	_ = e.Tick
}
`)
	assertRule(t, fs, "vtime-duration", 1)
	assertRule(t, fs, "vtime-rawns", 1)
}

func TestFluidStyleCleanPatterns(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixfluidok", "fixfluidok.go", `
package fixfluidok

import "dibs/internal/eventq"

const rateEps = 1e-9

type flow struct {
	rate float64
	prev float64
}

// Tolerance compares and eventq-typed ticks are the sanctioned spellings.
func Converged(fl []*flow) bool {
	for _, f := range fl {
		d := f.rate - f.prev
		if d < 0 {
			d = -d
		}
		if d > rateEps*f.prev {
			return false
		}
	}
	return true
}

type Engine struct {
	Tick eventq.Time
}

func (e *Engine) Arm(s *eventq.Scheduler) {
	s.After(100*eventq.Microsecond, func() {})
}
`)
	if len(fs) != 0 {
		for _, f := range fs {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

// TestRealFluidPackageClean is the acceptance gate: the production fluid
// solver passes the full suite — no exact float compares, no wall-clock
// durations, every tick spelled in eventq units.
func TestRealFluidPackageClean(t *testing.T) {
	l := loaderForTest(t)
	pkg, err := l.Load("dibs/internal/fluid")
	if err != nil {
		t.Fatalf("Load(dibs/internal/fluid): %v", err)
	}
	fs := l.Run([]*Package{pkg}, Analyzers())
	if len(fs) != 0 {
		for _, f := range fs {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}
