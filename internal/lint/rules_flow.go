package lint

// rules_flow.go holds the flow-sensitive analyses built on the CFG
// (cfg.go), reaching definitions (dataflow.go) and the cross-package fact
// store (facts.go):
//
//   mutable-globals  package-level state written outside init (or helpers
//                    provably called only from init), in simulation
//                    packages — hidden shared state breaks the
//                    one-seed-one-output contract even when -race is quiet.
//   rng-taint        a seed reaching rng.New/rng.Derive, a math/rand
//                    constructor, a Seed field, or another function's
//                    seed-sink parameter is derived from the wall clock /
//                    process state, or from ad-hoc arithmetic on an
//                    existing seed — through any number of assignments and
//                    helper calls.
//   vtime-flow       a raw >=1000 integer literal flows into an
//                    eventq.Time through assignments or named constants
//                    (the flow-sensitive upgrade of vtime-rawns).
//   path-droppederr  an error or queue.Result returned by a module call is
//                    bound to a variable but unused along at least one
//                    path to function exit (the path-sensitive upgrade of
//                    sched-droppederr).

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// effectivePath is the import path used for perimeter decisions: external
// test packages ("foo_test") are judged by the package they test.
func effectivePath(pkg *Package) string {
	if pkg.TestOf != "" {
		return pkg.TestOf
	}
	return pkg.Path
}

// eachFuncBody invokes fn for every function body in the file:
// declarations (with their *types.Func) and function literals (nil).
func eachFuncBody(pkg *Package, f *ast.File, fn func(obj *types.Func, recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Body != nil {
				obj, _ := pkg.Info.Defs[x.Name].(*types.Func)
				fn(obj, x.Recv, x.Type, x.Body)
			}
		case *ast.FuncLit:
			fn(nil, nil, x.Type, x.Body)
		}
		return true
	})
}

// MutableGlobals reports writes to package-level variables outside init in
// simulation packages. Unexported helpers that are only ever *called* from
// init (or from other such helpers) count as init context — the
// register-from-init pattern stays legal — but a function whose name
// escapes init as a value does not, since it can run at any time.
func MutableGlobals() *Analyzer {
	return &Analyzer{
		Rules: []RuleDoc{
			{ID: "mutable-globals", Doc: "package-level variable written outside init in a simulation package; per-run state belongs in structs threaded through the run", Severity: SevError},
		},
		Check: func(l *Loader, pkg *Package, report func(token.Pos, string, string)) {
			if !l.SimPackage(effectivePath(pkg)) {
				return
			}
			initOnly := initOnlyFuncs(pkg)
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
					allowed := (fd.Name.Name == "init" && fd.Recv == nil) || initOnly[obj]
					reportGlobalWrites(pkg, fd.Body, allowed, report)
				}
			}
		},
	}
}

// reportGlobalWrites walks a body, flagging package-variable writes when
// not in init context. Function literals are never init context: even one
// declared inside init may escape and run later.
func reportGlobalWrites(pkg *Package, body *ast.BlockStmt, allowed bool, report func(token.Pos, string, string)) {
	var walk func(n ast.Node, allowed bool) bool
	walk = func(n ast.Node, allowed bool) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			ast.Inspect(x.Body, func(m ast.Node) bool { return walk(m, false) })
			return false
		case *ast.AssignStmt:
			if allowed {
				return true
			}
			for _, lhs := range x.Lhs {
				if v := writtenPackageVar(pkg.Info, lhs); v != nil {
					report(lhs.Pos(), "mutable-globals",
						fmt.Sprintf("package-level %s written outside init; per-run state must live in a struct", v.Name()))
				}
			}
		case *ast.IncDecStmt:
			if allowed {
				return true
			}
			if v := writtenPackageVar(pkg.Info, x.X); v != nil {
				report(x.Pos(), "mutable-globals",
					fmt.Sprintf("package-level %s written outside init; per-run state must live in a struct", v.Name()))
			}
		}
		return true
	}
	ast.Inspect(body, func(m ast.Node) bool { return walk(m, allowed) })
}

// initOnlyFuncs computes the set of functions only reachable from package
// initialization: unexported, non-method, and every reference to them is a
// direct call from init, a package-level variable initializer, or another
// init-only function.
func initOnlyFuncs(pkg *Package) map[*types.Func]bool {
	type ref struct {
		ctx     *types.Func // enclosing function (nil for var initializers)
		call    bool        // referenced as the callee of a direct call
		initCtx bool        // context is init or a package-level initializer
	}
	refs := make(map[*types.Func][]ref)
	note := func(root ast.Node, ctx *types.Func, initCtx bool) {
		walkWithParent(root, func(n, parent ast.Node) {
			id, ok := n.(*ast.Ident)
			if !ok {
				return
			}
			fn, ok := pkg.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() != pkg.Types {
				return
			}
			call := false
			if c, ok := parent.(*ast.CallExpr); ok && c.Fun == n {
				call = true
			}
			refs[fn] = append(refs[fn], ref{ctx: ctx, call: call, initCtx: initCtx})
		})
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			switch x := d.(type) {
			case *ast.FuncDecl:
				if x.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[x.Name].(*types.Func)
				isInit := x.Name.Name == "init" && x.Recv == nil
				note(x.Body, obj, isInit)
			case *ast.GenDecl:
				if x.Tok == token.VAR || x.Tok == token.CONST {
					note(x, nil, true)
				}
			}
		}
	}
	initOnly := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for fn, rs := range refs {
			if initOnly[fn] || fn.Exported() || fn.Name() == "init" {
				continue
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				continue
			}
			ok := len(rs) > 0
			for _, r := range rs {
				if !r.call || !(r.initCtx || (r.ctx != nil && initOnly[r.ctx])) {
					ok = false
					break
				}
			}
			if ok {
				initOnly[fn] = true
				changed = true
			}
		}
	}
	return initOnly
}

// RNGTaint checks every seed sink against the fact store and reaching
// definitions: the value must be a clean seed (a Seed field, a seed-sink
// parameter, a literal, or an rng.Derive result), not wall-clock derived
// and not ad-hoc arithmetic over an existing seed.
func RNGTaint() *Analyzer {
	return &Analyzer{
		Rules: []RuleDoc{
			{ID: "rng-taint", Doc: "a seed is derived from the wall clock/process state or by ad-hoc arithmetic; derive per-run streams with rng.Derive(seed, name)", Severity: SevError, InTests: true},
		},
		Check: func(l *Loader, pkg *Package, report func(token.Pos, string, string)) {
			path := effectivePath(pkg)
			if !l.SimPackage(path) || l.RNGPackage(path) {
				return
			}
			for _, f := range pkg.Files {
				eachFuncBody(pkg, f, func(obj *types.Func, recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt) {
					du := l.funcData(pkg.Info, recv, ftype, body)
					fe := &flowEval{l: l, info: pkg.Info, du: du, enclosing: obj}
					checkSink := func(arg ast.Expr) {
						vf := fe.eval(arg)
						switch {
						case vf.clock:
							report(arg.Pos(), "rng-taint",
								"seed derived from wall clock or process state; thread Config.Seed and derive streams with rng.New(seed, name)")
						case vf.seedArith:
							report(arg.Pos(), "rng-taint",
								"ad-hoc seed arithmetic; derive independent per-run streams with rng.Derive(seed, name)")
						}
					}
					for _, blk := range du.g.blocks {
						for _, n := range blk.nodes {
							scanShallow(n, func(m ast.Node) bool {
								switch x := m.(type) {
								case *ast.CallExpr:
									for _, i := range l.seedSinkArgs(pkg.Info, x) {
										checkSink(x.Args[i])
									}
								case *ast.KeyValueExpr:
									if key, ok := x.Key.(*ast.Ident); ok && key.Name == "Seed" {
										if v, ok := pkg.Info.Uses[key].(*types.Var); ok && v.IsField() && l.moduleObj(v) {
											checkSink(x.Value)
										}
									}
								}
								return true
							})
							if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
								for i, lhs := range as.Lhs {
									if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && l.isSeedField(pkg.Info, sel) {
										checkSink(as.Rhs[i])
									}
								}
							}
						}
					}
				})
			}
		},
	}
}

// moduleObj reports whether obj is declared inside this module.
func (l *Loader) moduleObj(obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == l.ModulePath || hasPathPrefix(p, l.ModulePath)
}

// VtimeFlow upgrades vtime-rawns with def-use chains: a bare integer
// literal >= rawNsThreshold that reaches an eventq.Time through a variable
// or a named constant is still a raw-nanosecond magic number.
func VtimeFlow() *Analyzer {
	return &Analyzer{
		Rules: []RuleDoc{
			{ID: "vtime-flow", Doc: "raw integer literal flows into eventq.Time through assignments or named constants; spell durations with eventq unit constants", Severity: SevError},
		},
		Check: func(l *Loader, pkg *Package, report func(token.Pos, string, string)) {
			if !l.SimPackage(effectivePath(pkg)) || strings.HasSuffix(effectivePath(pkg), "internal/eventq") {
				return
			}
			declExpr := constDeclExprs(pkg)
			for _, f := range pkg.Files {
				// Named constants: a use typed eventq.Time whose declared
				// value is a bare literal, outside the factor position of
				// a multiplication (`gap * eventq.Nanosecond` is the
				// idiom being encouraged).
				walkWithParent(f, func(n, parent ast.Node) {
					id, ok := n.(*ast.Ident)
					if !ok {
						return
					}
					tv, ok := pkg.Info.Types[id]
					if !ok || !isEventqTime(tv.Type) || !constAtLeast(tv, rawNsThreshold) {
						return
					}
					if be, ok := parent.(*ast.BinaryExpr); ok && (be.Op == token.MUL || be.Op == token.QUO) {
						return
					}
					rhs := declExpr[pkg.Info.Uses[id]]
					if lit, ok := ast.Unparen(rhs).(*ast.BasicLit); ok && lit.Kind == token.INT {
						report(id.Pos(), "vtime-flow",
							fmt.Sprintf("%s (= %s) is a raw nanosecond count used as eventq.Time; declare it with unit constants", id.Name, lit.Value))
					}
				})
				// Conversions: eventq.Time(x) where x is non-constant but
				// a reaching definition is a bare >=threshold literal.
				eachFuncBody(pkg, f, func(obj *types.Func, recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt) {
					du := l.funcData(pkg.Info, recv, ftype, body)
					for _, blk := range du.g.blocks {
						for _, n := range blk.nodes {
							scanShallow(n, func(m ast.Node) bool {
								call, ok := m.(*ast.CallExpr)
								if !ok || len(call.Args) != 1 {
									return true
								}
								ft, ok := pkg.Info.Types[call.Fun]
								if !ok || !ft.IsType() || !isEventqTime(ft.Type) {
									return true
								}
								if at, ok := pkg.Info.Types[call.Args[0]]; ok && at.Value != nil {
									return true // constant: vtime-rawns territory
								}
								du.eachSource(call.Args[0], func(src ast.Expr) bool {
									switch s := src.(type) {
									case *ast.Ident:
										return true // follow definitions
									case *ast.BasicLit:
										if s.Kind == token.INT {
											if tv, ok := pkg.Info.Types[s]; ok && constAtLeast(tv, rawNsThreshold) {
												report(call.Pos(), "vtime-flow",
													fmt.Sprintf("raw literal %s reaches this eventq.Time conversion; spell the duration with unit constants", s.Value))
											}
										}
									}
									return false
								})
								return true
							})
						}
					}
				})
			}
		},
	}
}

// constDeclExprs maps every constant/variable object in the package to its
// declared initializer expression.
func constDeclExprs(pkg *Package) map[types.Object]ast.Expr {
	m := make(map[types.Object]ast.Expr)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok || len(vs.Values) != len(vs.Names) {
				return true
			}
			for i, name := range vs.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					m[obj] = vs.Values[i]
				}
			}
			return true
		})
	}
	return m
}

// constAtLeast reports whether tv is an integer constant >= min.
func constAtLeast(tv types.TypeAndValue, min int64) bool {
	if tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return ok && v >= min
}

// PathDroppedErr reports module-call results of type error or queue.Result
// that are bound to a variable but unused along at least one path from the
// binding to function exit — the laundered form of sched-droppederr that a
// purely syntactic check cannot see.
func PathDroppedErr() *Analyzer {
	return &Analyzer{
		Rules: []RuleDoc{
			{ID: "path-droppederr", Doc: "an error or Enqueue result is bound but unused along at least one path; check it on every path or discard with _ explicitly", Severity: SevError},
		},
		Check: func(l *Loader, pkg *Package, report func(token.Pos, string, string)) {
			if !l.SimPackage(effectivePath(pkg)) {
				return
			}
			for _, f := range pkg.Files {
				eachFuncBody(pkg, f, func(obj *types.Func, recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt) {
					du := l.funcData(pkg.Info, recv, ftype, body)
					captured := capturedVars(pkg, body)
					for _, blk := range du.g.blocks {
						for idx, n := range blk.nodes {
							switch s := n.(type) {
							case *ast.AssignStmt:
								checkAssignedResult(l, pkg, du, captured, blk, idx, s, report)
							case *ast.ExprStmt:
								if call, ok := s.X.(*ast.CallExpr); ok {
									if tv, ok := pkg.Info.Types[call]; ok && checkedResultKind(l, tv.Type) == "queue.Result" {
										report(s.Pos(), "path-droppederr",
											"queue.Result discarded; Accepted must be checked (or assign to _ explicitly)")
									}
								}
							}
						}
					}
				})
			}
		},
	}
}

// checkedResultKind classifies result types that must be consumed: the
// error interface and internal/queue's Result.
func checkedResultKind(l *Loader, t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Name() == "error" && obj.Pkg() == nil {
		return "error"
	}
	if obj.Name() == "Result" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/queue") {
		return "queue.Result"
	}
	return ""
}

// capturedVars collects local variables that escape flow analysis: their
// address is taken, or they are referenced inside a function literal
// (which may run at any time, including deferred at exit).
func capturedVars(pkg *Package, body *ast.BlockStmt) map[*types.Var]bool {
	captured := make(map[*types.Var]bool)
	markIdents := func(root ast.Node) {
		ast.Inspect(root, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
					captured[v] = true
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			markIdents(x.Body)
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
					if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
						captured[v] = true
					}
				}
			}
		}
		return true
	})
	return captured
}

// checkAssignedResult inspects one assignment whose RHS is a single module
// call, and path-searches each bound error/Result variable.
func checkAssignedResult(l *Loader, pkg *Package, du *defUse, captured map[*types.Var]bool,
	blk *cfgBlock, idx int, s *ast.AssignStmt, report func(token.Pos, string, string)) {
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := staticCallee(pkg.Info, call)
	if !l.moduleFunc(fn) {
		return
	}
	for _, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		v := du.localVar(id)
		if v == nil || captured[v] {
			continue
		}
		kind := checkedResultKind(l, v.Type())
		if kind == "" {
			continue
		}
		if pathDropsValue(du, v, blk, idx, s) {
			report(id.Pos(), "path-droppederr",
				fmt.Sprintf("%s result %s is unused on at least one path to return; check it on every path or discard with _", kind, id.Name))
		}
	}
}

// pathDropsValue reports whether some CFG path from the definition at
// (blk, idx) reaches the function exit or a *different* redefinition of v
// without passing a use. The definition node overwriting itself around a
// loop back edge is the accumulator pattern and does not count.
func pathDropsValue(du *defUse, v *types.Var, blk *cfgBlock, idx int, defNode ast.Node) bool {
	uses := func(n ast.Node) bool {
		// The targets of a plain assignment are overwritten, not read; an
		// op-assign (+=) or ++ does read the old value and stays a use.
		excluded := make(map[*ast.Ident]bool)
		if as, ok := n.(*ast.AssignStmt); ok && (as.Tok == token.ASSIGN || as.Tok == token.DEFINE) {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					excluded[id] = true
				}
			}
		}
		found := false
		scanShallow(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && du.info.Uses[id] == v && !excluded[id] {
				found = true
			}
			return !found
		})
		return found
	}
	redefines := func(n ast.Node) bool {
		for _, d := range du.defsAt[n] {
			if d.obj == v {
				return true
			}
		}
		return false
	}
	// scanFrom classifies the rest of a block: 0 = fell off the end,
	// 1 = use reached (path closed), 2 = dropped (redefined before use).
	scanFrom := func(b *cfgBlock, from int) int {
		for _, n := range b.nodes[from:] {
			if uses(n) {
				return 1
			}
			if redefines(n) && n != defNode {
				return 2
			}
		}
		return 0
	}
	switch scanFrom(blk, idx+1) {
	case 1:
		return false
	case 2:
		return true
	}
	visited := map[*cfgBlock]bool{}
	var dfs func(b *cfgBlock) bool
	dfs = func(b *cfgBlock) bool {
		if b == du.g.exit {
			return true
		}
		if visited[b] {
			return false
		}
		visited[b] = true
		switch scanFrom(b, 0) {
		case 1:
			return false
		case 2:
			return true
		}
		if len(b.succs) == 0 {
			// Dead-end block (dead code or builder artifact): not a path
			// to exit.
			return false
		}
		for _, s := range b.succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	for _, s := range blk.succs {
		if dfs(s) {
			return true
		}
	}
	return false
}
