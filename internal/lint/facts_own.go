package lint

// facts_own.go computes the interprocedural ownership summaries behind the
// own-leak / own-doublefree / own-useafterfree rules (rules_own.go). Two
// resource kinds are tracked:
//
//   - *packet.Packet values born at packet.Pool.Get (or returned by a
//     function whose summary says ReturnsOwned), which must be released
//     (packet.Free / Pool.Put), handed to a consumer, or stored into
//     longer-lived state on every path;
//   - eventq.Timer handles born at Scheduler.At/After when bound to a
//     local, which must be stored, canceled, or passed on every path.
//     A bare s.After(d, fn) expression statement is the sanctioned
//     fire-and-forget idiom and is not tracked.
//
// Per-function summaries (FuncFacts.ReleasesParams / ConsumesParams /
// StoresOwnedParams / ReturnsOwned) are computed in the same
// computeFacts fixpoint as the determinism facts, so helpers like
// (*Switch).drop — whose body ends in packet.Free(p) — release their
// argument from every caller's point of view.
//
// Intentional long-lived transfers that the summaries cannot derive (an
// interface method whose implementations store the packet, a func-typed
// hand-off field) carry an explicit annotation:
//
//	//dibslint:owns reason...
//
// on the declaration. The annotation means: resource-typed parameters are
// consumed by the callee, and resource-typed results are owned by the
// caller. A consumer whose results include queue.Result is a *conditional*
// consumer (Enqueue may refuse; the caller keeps ownership on refusal), so
// its call sites discharge leak paths without becoming double-free origins.

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// ownEvent classifies what one CFG node does to a tracked resource value.
type ownEvent int

const (
	evUse          ownEvent = iota // read, field access, borrowed call argument
	evMaybe                        // conditional hand-off (callee returns queue.Result)
	evTransfer                     // unconditional hand-off: consuming callee or return
	evStore                        // stored into longer-lived state (a transfer)
	evDeferRelease                 // defer packet.Free(p) / defer Pool.Put(p)
	evRelease                      // released: packet.Free / Pool.Put, transitively
)

// ownEffect is the ownership effect a call has on one argument position.
type ownEffect int

const (
	effNone ownEffect = iota
	effMaybe
	effTransfer
	effRelease
)

// resourceKind classifies a type as a tracked resource: "packet" for
// *packet.Packet, "timer" for eventq.Timer, "" otherwise.
func resourceKind(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok && isPacketType(p.Elem()) {
		return "packet"
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil &&
		named.Obj().Name() == "Timer" &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/eventq") {
		return "timer"
	}
	return ""
}

// methodOn reports whether fn is a method declared on typeName in a package
// whose import path ends with pkgSuffix.
func methodOn(fn *types.Func, typeName, pkgSuffix string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == typeName &&
		strings.HasSuffix(named.Obj().Pkg().Path(), pkgSuffix)
}

// isPacketFree matches the package-level packet.Free release point.
func isPacketFree(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != "Free" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), "internal/packet")
}

// isPoolPut / isPoolGet match the packet.Pool release and birth points.
func isPoolPut(fn *types.Func) bool {
	return fn != nil && fn.Name() == "Put" && methodOn(fn, "Pool", "internal/packet")
}

func isPoolGet(fn *types.Func) bool {
	return fn != nil && fn.Name() == "Get" && methodOn(fn, "Pool", "internal/packet")
}

// isTimerBirth matches Scheduler.At/After, whose Timer result is an owned
// handle when bound.
func isTimerBirth(fn *types.Func) bool {
	return fn != nil && (fn.Name() == "At" || fn.Name() == "After") &&
		methodOn(fn, "Scheduler", "internal/eventq")
}

// isTimerCancel matches Timer.Cancel, which discharges a held handle.
func isTimerCancel(fn *types.Func) bool {
	return fn != nil && fn.Name() == "Cancel" && methodOn(fn, "Timer", "internal/eventq")
}

// calleeObject resolves the object a call invokes — a function, a method
// (including interface methods), or a func-typed variable/field — so
// //dibslint:owns annotations on any of them are honored. Built-ins and
// computed function expressions resolve to nil.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// sigOf extracts the signature of a callable object (function or
// func-typed variable/field).
func sigOf(obj types.Object) *types.Signature {
	if obj == nil {
		return nil
	}
	if sig, ok := obj.Type().(*types.Signature); ok {
		return sig
	}
	if sig, ok := obj.Type().Underlying().(*types.Signature); ok {
		return sig
	}
	return nil
}

// sigReturnsResult reports whether a signature's results include
// queue.Result — the marker of a conditional consumer (Enqueue may refuse,
// in which case the caller keeps ownership).
func sigReturnsResult(l *Loader, sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if checkedResultKind(l, res.At(i).Type()) == "queue.Result" {
			return true
		}
	}
	return false
}

// callOwnEffects classifies the ownership effect of a call on each argument
// position and on the method receiver. Unknown callees have no effect
// (arguments stay borrowed), which is the conservative default for every
// rule built on these facts.
func (l *Loader) callOwnEffects(info *types.Info, call *ast.CallExpr) (args []ownEffect, recv ownEffect) {
	args = make([]ownEffect, len(call.Args))
	obj := calleeObject(info, call)
	if b, ok := obj.(*types.Builtin); ok {
		// append(s, p) stores its elements into the slice: a transfer.
		if b.Name() == "append" {
			for i := 1; i < len(args); i++ {
				args[i] = effTransfer
			}
		}
		return args, effNone
	}
	if obj == nil {
		return args, effNone
	}
	fn, _ := obj.(*types.Func)
	sig := sigOf(obj)
	if fn != nil {
		if isPacketFree(fn) || isPoolPut(fn) {
			if len(args) > 0 {
				args[0] = effRelease
			}
			return args, effNone
		}
		if isTimerCancel(fn) {
			return args, effRelease
		}
	}
	maybe := sigReturnsResult(l, sig)
	consume := func(e ownEffect) ownEffect {
		if maybe && e == effTransfer {
			return effMaybe
		}
		return e
	}
	shift := 0
	if sig != nil && sig.Recv() != nil {
		shift = 1
	}
	if l.moduleFunc(fn) {
		if facts, ok := l.facts[fn]; ok {
			if shift == 1 {
				if facts.ReleasesParams&1 != 0 {
					recv = effRelease
				} else if facts.ConsumesParams&1 != 0 {
					recv = consume(effTransfer)
				}
			}
			for i := range args {
				bit := uint64(1) << uint(i+shift)
				if facts.ReleasesParams&bit != 0 {
					args[i] = effRelease
				} else if facts.ConsumesParams&bit != 0 {
					args[i] = consume(effTransfer)
				}
			}
		}
	}
	if l.owns[obj] && sig != nil {
		// Annotation semantics: resource-typed parameters are consumed.
		np := sig.Params().Len()
		for i := range args {
			pi := i
			if pi >= np {
				pi = np - 1 // variadic tail
			}
			if pi >= 0 && resourceKind(sig.Params().At(pi).Type()) != "" && args[i] == effNone {
				args[i] = consume(effTransfer)
			}
		}
	}
	return args, recv
}

// ownedBirth reports the resource kind of a call whose single result the
// caller owns: Pool.Get, Scheduler.At/After, a module function summarized
// ReturnsOwned, or an //dibslint:owns-annotated callee. "" otherwise.
func (l *Loader) ownedBirth(info *types.Info, call *ast.CallExpr) string {
	tv, ok := info.Types[call]
	if !ok {
		return ""
	}
	kind := resourceKind(tv.Type)
	if kind == "" {
		return ""
	}
	obj := calleeObject(info, call)
	if fn, ok := obj.(*types.Func); ok {
		if isPoolGet(fn) || isTimerBirth(fn) {
			return kind
		}
		if l.moduleFunc(fn) {
			if f, ok := l.facts[fn]; ok && f.ReturnsOwned {
				return kind
			}
		}
	}
	if obj != nil && l.owns[obj] {
		return kind
	}
	return ""
}

// ownEvents visits every ownership-relevant event one CFG node performs on
// a local variable: releases, hand-offs, stores into longer-lived state,
// returns, and plain borrows (evUse). Identifiers inside nested function
// literals are not visited (scanShallow treats literals as opaque; the
// checker excludes captured variables separately).
func (l *Loader) ownEvents(info *types.Info, du *defUse, n ast.Node, visit func(v *types.Var, ev ownEvent, pos token.Pos)) {
	seen := make(map[*ast.Ident]bool)
	emit := func(id *ast.Ident, ev ownEvent) {
		if id == nil || seen[id] {
			return
		}
		if v := du.localVar(id); v != nil {
			seen[id] = true
			visit(v, ev, id.Pos())
		}
	}
	asIdent := func(e ast.Expr) *ast.Ident {
		id, _ := ast.Unparen(e).(*ast.Ident)
		return id
	}

	deferred := false
	if d, ok := n.(*ast.DeferStmt); ok {
		deferred = true
		n = d.Call
	}
	mapEv := func(e ownEffect) ownEvent {
		switch e {
		case effRelease:
			if deferred {
				return evDeferRelease
			}
			return evRelease
		case effTransfer:
			return evTransfer
		case effMaybe:
			return evMaybe
		}
		return evUse
	}

	// Pass 1: call arguments and receivers, with their classified effects.
	scanShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		args, recv := l.callOwnEffects(info, call)
		for i, a := range call.Args {
			if args[i] != effNone {
				emit(asIdent(a), mapEv(args[i]))
			}
		}
		if recv != effNone {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				emit(asIdent(sel.X), mapEv(recv))
			}
		}
		return true
	})

	// Pass 2: stores into longer-lived state and returns.
	switch s := n.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) {
			for i, rhs := range s.Rhs {
				id := asIdent(rhs)
				if id == nil {
					continue
				}
				switch lhs := ast.Unparen(s.Lhs[i]).(type) {
				case *ast.Ident:
					// Local rebinds are aliasing, not stores; writes to
					// package-level variables are stores.
					if du.localVar(lhs) == nil && lhs.Name != "_" {
						emit(id, evStore)
					}
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					emit(id, evStore)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			emit(asIdent(e), evTransfer)
		}
	case *ast.SendStmt:
		emit(asIdent(s.Value), evTransfer)
	}

	// Pass 3: every remaining mention is a borrow.
	scanShallow(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			emit(id, evUse)
		}
		return true
	})
}

// computeOwnFacts derives the ownership summary of one declared function.
// Called from factsForDecl inside the computeFacts fixpoint; every field is
// monotone, so summaries converge with the other facts.
func (l *Loader) computeOwnFacts(info *types.Info, obj *types.Func, du *defUse, facts *FuncFacts) {
	// An //dibslint:owns annotation on the declaration asserts the
	// summary directly (the body, if any, is still scanned below).
	if l.owns[obj] {
		if sig, ok := obj.Type().(*types.Signature); ok {
			shift := 0
			if sig.Recv() != nil {
				shift = 1
			}
			for i := 0; i < sig.Params().Len(); i++ {
				if resourceKind(sig.Params().At(i).Type()) != "" {
					facts.ConsumesParams |= 1 << uint(i+shift)
				}
			}
			for i := 0; i < sig.Results().Len(); i++ {
				if resourceKind(sig.Results().At(i).Type()) != "" {
					facts.ReturnsOwned = true
				}
			}
		}
	}

	params := make(map[*types.Var]int)
	for _, d := range du.defs {
		if d.kind == defParam && resourceKind(d.obj.Type()) != "" {
			params[d.obj] = d.paramIdx
		}
	}
	for _, blk := range du.g.blocks {
		for _, n := range blk.nodes {
			if len(params) > 0 {
				l.ownEvents(info, du, n, func(v *types.Var, ev ownEvent, _ token.Pos) {
					slot, ok := params[v]
					if !ok {
						return
					}
					bit := uint64(1) << uint(slot)
					switch ev {
					case evRelease, evDeferRelease:
						facts.ReleasesParams |= bit
					case evTransfer, evMaybe:
						facts.ConsumesParams |= bit
					case evStore:
						facts.ConsumesParams |= bit
						facts.StoresOwnedParams |= bit
					}
				})
			}
			// ReturnsOwned: a return whose value traces back to a birth.
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || facts.ReturnsOwned {
				continue
			}
			for _, e := range ret.Results {
				if tv, ok := info.Types[e]; !ok || resourceKind(tv.Type) == "" {
					continue
				}
				du.eachSource(e, func(src ast.Expr) bool {
					if call, ok := src.(*ast.CallExpr); ok {
						if l.ownedBirth(info, call) != "" {
							facts.ReturnsOwned = true
						}
						return false
					}
					_, isIdent := src.(*ast.Ident)
					return isIdent // follow definitions, nothing else
				})
			}
		}
	}
}

// ownsRe matches transfer annotations: //dibslint:owns reason...
// Like ignore directives, the reason is mandatory.
var ownsRe = regexp.MustCompile(`^//dibslint:owns(\s+(.*))?$`)

// collectOwns records //dibslint:owns annotations on function declarations,
// interface methods and struct fields, keyed by their types.Object, before
// facts are computed for the package.
func (l *Loader) collectOwns(pkg *Package) {
	marked := func(groups ...*ast.CommentGroup) bool {
		for _, cg := range groups {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				if m := ownsRe.FindStringSubmatch(c.Text); m != nil && strings.TrimSpace(m[2]) != "" {
					return true
				}
			}
		}
		return false
	}
	note := func(names []*ast.Ident) {
		for _, name := range names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				l.owns[obj] = true
			}
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if marked(x.Doc) {
					note([]*ast.Ident{x.Name})
				}
			case *ast.InterfaceType:
				for _, m := range x.Methods.List {
					if marked(m.Doc, m.Comment) {
						note(m.Names)
					}
				}
			case *ast.StructType:
				for _, fld := range x.Fields.List {
					if marked(fld.Doc, fld.Comment) {
						note(fld.Names)
					}
				}
			}
			return true
		})
	}
}
