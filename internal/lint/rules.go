package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// Analyzers returns the full dibslint suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Nondeterminism(),
		Concurrency(),
		VirtualTime(),
		FloatEq(),
		SchedHygiene(),
		MutableGlobals(),
		RNGTaint(),
		VtimeFlow(),
		PathDroppedErr(),
		HotPathAlloc(),
		OwnershipAnalysis(),
		ShardConfinement(),
	}
}

// AllRules returns every rule's documentation, for `dibslint -rules`.
func AllRules() []RuleDoc {
	docs := []RuleDoc{BadIgnoreRule, StaleIgnoreRule}
	for _, a := range Analyzers() {
		docs = append(docs, a.Rules...)
	}
	return docs
}

// globalRandFns are math/rand package-level functions that draw from the
// process-global source. Using them makes two runs with the same Config
// diverge, because the global source is shared and auto-seeded.
var globalRandFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint32N": true, "Uint64N": true, "UintN": true, "Uint": true,
}

// randConstructors create PRNG sources; outside internal/rng they bypass
// the single-seed derivation contract.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// wallClockFns are time-package functions that read or depend on the wall
// clock; simulation code must use the virtual clock (eventq.Scheduler.Now).
var wallClockFns = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// Nondeterminism reports sources of run-to-run divergence in simulation
// packages: global math/rand state, PRNG construction outside internal/rng,
// wall-clock reads, and map-range iteration that feeds event scheduling or
// result aggregation.
func Nondeterminism() *Analyzer {
	return &Analyzer{
		Rules: []RuleDoc{
			{ID: "nondet-globalrand", Doc: "simulation code calls a math/rand package-level function (global, auto-seeded source)", Severity: SevError, InTests: true},
			{ID: "nondet-randnew", Doc: "PRNG constructed outside internal/rng; derive every stream from Config.Seed via rng.New", Severity: SevError},
			{ID: "nondet-wallclock", Doc: "simulation code reads the wall clock; use the scheduler's virtual clock", Severity: SevError},
			{ID: "nondet-maprange", Doc: "map iteration order feeds event scheduling or result aggregation", Severity: SevError},
		},
		Check: func(l *Loader, pkg *Package, report func(token.Pos, string, string)) {
			if !l.SimPackage(effectivePath(pkg)) {
				return
			}
			for ident, obj := range pkg.Info.Uses {
				fn, ok := obj.(*types.Func)
				if !ok || fn.Pkg() == nil {
					continue
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					continue // methods (e.g. (*rand.Rand).Intn) are fine
				}
				switch fn.Pkg().Path() {
				case "math/rand", "math/rand/v2":
					if globalRandFns[fn.Name()] {
						report(ident.Pos(), "nondet-globalrand",
							fmt.Sprintf("call to global rand.%s; use the *rand.Rand plumbed from Config.Seed", fn.Name()))
					} else if randConstructors[fn.Name()] && !l.RNGPackage(effectivePath(pkg)) {
						report(ident.Pos(), "nondet-randnew",
							fmt.Sprintf("rand.%s outside internal/rng; derive streams with rng.New(seed, name)", fn.Name()))
					}
				case "time":
					if wallClockFns[fn.Name()] {
						report(ident.Pos(), "nondet-wallclock",
							fmt.Sprintf("time.%s reads the wall clock; simulation time comes from eventq.Scheduler.Now", fn.Name()))
					}
				}
			}
			for _, f := range pkg.Files {
				checkMapRanges(pkg, f, report)
			}
		},
	}
}

// Concurrency keeps simulation packages single-threaded: a goroutine or a
// sync primitive below the run boundary means event order can depend on the
// Go scheduler, which breaks the one-seed-one-output contract. Two escapes
// exist. internal/runner fans out over whole runs and stays allowlisted.
// And a function annotated //dibslint:confined coordinator — the
// conservative-PDES barrier driver — may spawn shard workers, with every
// value those goroutines capture checked by shard-escape (rules_shard.go)
// instead of the blanket package allowlist internal/pdes used to carry.
// Everything else stays banned — determinism inside a shard is exactly
// what lets pdes exist at all.
func Concurrency() *Analyzer {
	return &Analyzer{
		Rules: []RuleDoc{
			{ID: "nondet-goroutine", Doc: "goroutine or sync primitive in a simulation package; runs are single-threaded — parallelize whole runs via internal/runner, or spawn shard workers from a coordinator-confined function checked by shard-escape", Severity: SevError},
		},
		Check: func(l *Loader, pkg *Package, report func(token.Pos, string, string)) {
			switch p := effectivePath(pkg); {
			case !l.SimPackage(p),
				strings.HasSuffix(p, "internal/runner"):
				return
			}
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil &&
						l.confinedOf(pkg.Info.Defs[fd.Name]) == RegionCoordinator {
						// The coordinator's worker spawns are shard-escape's
						// to police, capture by capture.
						continue
					}
					ast.Inspect(d, func(n ast.Node) bool {
						if g, ok := n.(*ast.GoStmt); ok {
							report(g.Pos(), "nondet-goroutine",
								"go statement in a simulation package; event order must not depend on the Go scheduler")
						}
						return true
					})
				}
			}
			for ident, obj := range pkg.Info.Uses {
				if obj == nil || obj.Pkg() == nil {
					continue
				}
				switch obj.Pkg().Path() {
				case "sync", "sync/atomic":
					report(ident.Pos(), "nondet-goroutine",
						fmt.Sprintf("use of %s.%s; simulation packages are single-threaded by contract", obj.Pkg().Name(), obj.Name()))
				}
			}
		},
	}
}

// checkMapRanges flags range-over-map loops whose bodies schedule events or
// append to state outliving the loop: Go randomizes map iteration order, so
// both make event order (and float accumulation order) differ across runs.
func checkMapRanges(pkg *Package, f *ast.File, report func(token.Pos, string, string)) {
	ast.Inspect(f, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pkg.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			switch stmt := m.(type) {
			case *ast.CallExpr:
				if se, ok := stmt.Fun.(*ast.SelectorExpr); ok {
					if sel := pkg.Info.Selections[se]; sel != nil && isSchedulerMethod(sel, se.Sel.Name) {
						report(stmt.Pos(), "nondet-maprange",
							fmt.Sprintf("%s scheduled inside map iteration; event order becomes map-order dependent", se.Sel.Name))
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range stmt.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isBuiltinAppend(pkg, call) || i >= len(stmt.Lhs) {
						continue
					}
					if escapesLoop(pkg, stmt.Lhs[i], rs) {
						report(stmt.Pos(), "nondet-maprange",
							"append to outer state inside map iteration; aggregate over a sorted key slice instead")
					}
				}
			}
			return true
		})
		return true
	})
}

// isSchedulerMethod reports whether sel is eventq.Scheduler.At/After.
func isSchedulerMethod(sel *types.Selection, name string) bool {
	if name != "At" && name != "After" {
		return false
	}
	recv := sel.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Scheduler" &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/eventq")
}

func isBuiltinAppend(pkg *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

// escapesLoop reports whether the assignment target outlives the range
// statement: a selector (field of longer-lived state) or an identifier
// declared outside the loop.
func escapesLoop(pkg *Package, lhs ast.Expr, rs *ast.RangeStmt) bool {
	switch e := lhs.(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		if obj == nil {
			obj = pkg.Info.Defs[e]
		}
		return obj != nil && (obj.Pos() < rs.Pos() || obj.Pos() > rs.End())
	}
	return false
}

// VirtualTime enforces eventq.Time hygiene: no time.Duration leaking into
// simulation state, no raw-nanosecond magic literals, and no Time×Time
// products (ns² overflows int64 within milliseconds).
func VirtualTime() *Analyzer {
	return &Analyzer{
		Rules: []RuleDoc{
			{ID: "vtime-duration", Doc: "time.Duration used in simulation code where eventq.Time belongs; convert at the boundary with eventq.Duration", Severity: SevError},
			{ID: "vtime-rawns", Doc: "raw integer literal used as eventq.Time; spell durations with eventq unit constants (e.g. 5*eventq.Microsecond)", Severity: SevError},
			{ID: "vtime-overflow", Doc: "product of two non-constant eventq.Time values; ns×ns overflows int64 almost immediately", Severity: SevError},
		},
		Check: func(l *Loader, pkg *Package, report func(token.Pos, string, string)) {
			if !l.SimPackage(effectivePath(pkg)) {
				return
			}
			eventqPkg := strings.HasSuffix(effectivePath(pkg), "internal/eventq")
			if !eventqPkg {
				// Declarations of wall-clock duration type in sim state.
				for ident, obj := range pkg.Info.Defs {
					v, ok := obj.(*types.Var)
					if !ok || !isNamedType(v.Type(), "time", "Duration") {
						continue
					}
					report(ident.Pos(), "vtime-duration",
						fmt.Sprintf("%s has type time.Duration; simulator quantities use eventq.Time", ident.Name))
				}
			}
			for _, f := range pkg.Files {
				// Conversions eventq.Time(d) from a time.Duration.
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || len(call.Args) != 1 {
						return true
					}
					ft, ok := pkg.Info.Types[call.Fun]
					if !ok || !ft.IsType() || !isEventqTime(ft.Type) {
						return true
					}
					if at, ok := pkg.Info.Types[call.Args[0]]; ok && isNamedType(at.Type, "time", "Duration") {
						report(call.Pos(), "vtime-duration",
							"direct cast of time.Duration to eventq.Time; use eventq.Duration for the boundary conversion")
					}
					return true
				})
				if !eventqPkg {
					walkWithParent(f, func(n, parent ast.Node) {
						checkRawNs(pkg, n, parent, report)
					})
				}
				ast.Inspect(f, func(n ast.Node) bool {
					be, ok := n.(*ast.BinaryExpr)
					if !ok || be.Op != token.MUL {
						return true
					}
					xt, xok := pkg.Info.Types[be.X]
					yt, yok := pkg.Info.Types[be.Y]
					if xok && yok && isEventqTime(xt.Type) && isEventqTime(yt.Type) &&
						xt.Value == nil && yt.Value == nil {
						report(be.Pos(), "vtime-overflow",
							"Time × Time product is ns²; rescale one operand to a dimensionless factor first")
					}
					return true
				})
			}
		},
	}
}

// rawNsThreshold is the smallest integer literal treated as a raw-nanosecond
// magic number when typed as eventq.Time. Small counts (tie-break epsilons,
// 1-ns floors) stay legal.
const rawNsThreshold = 1000

// checkRawNs flags bare INT literals typed eventq.Time at or above the
// threshold, except as factors of a multiplication/division (the idiomatic
// `1500 * eventq.Nanosecond` spelling) or in comparisons.
func checkRawNs(pkg *Package, n, parent ast.Node, report func(token.Pos, string, string)) {
	lit, ok := n.(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return
	}
	tv, ok := pkg.Info.Types[lit]
	if !ok || !isEventqTime(tv.Type) || tv.Value == nil {
		return
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	if !ok || v < rawNsThreshold {
		return
	}
	if be, ok := parent.(*ast.BinaryExpr); ok && be.Op != token.ADD && be.Op != token.SUB {
		return
	}
	report(lit.Pos(), "vtime-rawns",
		fmt.Sprintf("raw nanosecond literal %s as eventq.Time; write it with unit constants", lit.Value))
}

// FloatEq flags ==/!= between floating-point values. Percentiles, FCTs and
// goodputs are float64; exact equality on them silently depends on
// accumulation order. Comparisons against an exact literal zero are exempt
// (division guards test "never accumulated", which is exact).
func FloatEq() *Analyzer {
	return &Analyzer{
		Rules: []RuleDoc{
			{ID: "float-eq", Doc: "==/!= on floating-point values; compare with a tolerance or restructure", Severity: SevError},
		},
		Check: func(l *Loader, pkg *Package, report func(token.Pos, string, string)) {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					be, ok := n.(*ast.BinaryExpr)
					if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
						return true
					}
					xt, xok := pkg.Info.Types[be.X]
					yt, yok := pkg.Info.Types[be.Y]
					if !xok || !yok || (!isFloat(xt.Type) && !isFloat(yt.Type)) {
						return true
					}
					if isExactZero(xt) || isExactZero(yt) {
						return true
					}
					report(be.Pos(), "float-eq",
						fmt.Sprintf("floating-point %s comparison; use a tolerance", be.Op))
					return true
				})
			}
		},
	}
}

// SchedHygiene flags scheduling into the past and dropped error returns on
// module APIs inside simulation packages.
func SchedHygiene() *Analyzer {
	return &Analyzer{
		Rules: []RuleDoc{
			{ID: "sched-past", Doc: "event scheduled at Now() minus an offset; At panics on t < now — use After with the positive delta", Severity: SevError},
			{ID: "sched-droppederr", Doc: "error result of a simulator API call silently dropped", Severity: SevError},
		},
		Check: func(l *Loader, pkg *Package, report func(token.Pos, string, string)) {
			if !l.SimPackage(effectivePath(pkg)) {
				return
			}
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch e := n.(type) {
					case *ast.CallExpr:
						checkSchedPast(pkg, e, report)
					case *ast.ExprStmt:
						checkDroppedErr(l, pkg, e, report)
					}
					return true
				})
			}
		},
	}
}

func checkSchedPast(pkg *Package, call *ast.CallExpr, report func(token.Pos, string, string)) {
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) < 1 {
		return
	}
	sel := pkg.Info.Selections[se]
	if sel == nil || se.Sel.Name != "At" || !isSchedulerMethod(sel, "At") {
		return
	}
	be, ok := call.Args[0].(*ast.BinaryExpr)
	if !ok || be.Op != token.SUB {
		return
	}
	if containsNowCall(pkg, be.X) {
		report(call.Args[0].Pos(), "sched-past",
			"At(Now() - ...) schedules into the past; compute a forward delay and use After")
	}
}

// containsNowCall reports whether expr contains a call to Scheduler.Now.
func containsNowCall(pkg *Package, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		se, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || se.Sel.Name != "Now" {
			return true
		}
		if sel := pkg.Info.Selections[se]; sel != nil {
			recv := sel.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if named, ok := recv.(*types.Named); ok && named.Obj().Name() == "Scheduler" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func checkDroppedErr(l *Loader, pkg *Package, stmt *ast.ExprStmt, report func(token.Pos, string, string)) {
	call, ok := stmt.X.(*ast.CallExpr)
	if !ok {
		return
	}
	var fn *types.Func
	switch f := call.Fun.(type) {
	case *ast.Ident:
		fn, _ = pkg.Info.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pkg.Info.Uses[f.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if path != l.ModulePath && !strings.HasPrefix(path, l.ModulePath+"/") {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			report(stmt.Pos(), "sched-droppederr",
				fmt.Sprintf("%s returns an error that is dropped; handle it or assign to _ explicitly", fn.Name()))
			return
		}
	}
}

// --- shared type helpers ---

func isNamedType(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}

func isEventqTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Time" &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/eventq")
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isExactZero(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	return constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0))
}

// walkWithParent visits every node with its immediate parent.
func walkWithParent(root ast.Node, visit func(n, parent ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		var parent ast.Node
		if len(stack) > 0 {
			parent = stack[len(stack)-1]
		}
		visit(n, parent)
		stack = append(stack, n)
		return true
	})
}

// HotPathAlloc keeps the packet pool the sole packet constructor in
// simulation code: a packet.Packet composite literal heap-allocates on the
// per-packet hot path and bypasses the pool's conservation accounting
// (such a packet is invisible to leak checks and is never recycled).
// internal/packet itself is exempt — the pool's own Get/reset code is the
// sanctioned constructor — and the rule stays off in _test.go files, where
// hand-built packets injected into switches are the normal idiom.
func HotPathAlloc() *Analyzer {
	return &Analyzer{
		Rules: []RuleDoc{
			{ID: "hotpath-alloc", Doc: "packet.Packet composite literal outside internal/packet; borrow from the run's pool (Pool.Get) and Free on the terminal path", Severity: SevError},
		},
		Check: func(l *Loader, pkg *Package, report func(token.Pos, string, string)) {
			path := effectivePath(pkg)
			if !l.SimPackage(path) || path == l.ModulePath+"/internal/packet" {
				return
			}
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					cl, ok := n.(*ast.CompositeLit)
					if !ok {
						return true
					}
					tv, ok := pkg.Info.Types[cl]
					if !ok {
						return true
					}
					if isPacketType(tv.Type) {
						report(cl.Pos(), "hotpath-alloc",
							"packet.Packet composite literal allocates per packet; borrow from the run's packet.Pool and return it on the terminal path")
					}
					return true
				})
			}
		},
	}
}

func isPacketType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Packet" &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/packet")
}
