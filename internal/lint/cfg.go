package lint

// cfg.go builds a per-function control-flow graph directly from go/ast,
// with no type information, so the dataflow layer (dataflow.go) can answer
// "which definitions reach this use" and "is there a path from this
// statement to the function exit that avoids X". The builder models the
// constructs the flow rules depend on:
//
//   - if/else with short-circuit && and || split into their own blocks, so
//     a use in the right operand is correctly conditional,
//   - for and range loops (back edges, break/continue, labeled variants),
//   - switch and type switch, including fallthrough edges,
//   - select,
//   - goto and labels (forward and backward),
//   - defer: deferred calls are recorded on the graph and treated by the
//     analyses as running at every function exit,
//   - panic/os.Exit as terminating statements.
//
// Blocks hold the *leaf* statements and condition expressions in
// evaluation order; compound statements never appear as block nodes, with
// three exceptions that carry implicit definitions and are scanned
// shallowly (see scanShallow): *ast.RangeStmt (key/value), *ast.CaseClause
// (type-switch implicits) and *ast.CommClause (receive bindings).

import (
	"go/ast"
	"go/token"
)

// cfgBlock is one basic block: nodes in evaluation order plus successor
// edges. Predecessors are not stored; the dataflow solver iterates.
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of a single function body. entry and
// exit are distinguished blocks; every return statement links to exit.
type funcCFG struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	exit   *cfgBlock
	// deferred collects the call of every defer statement in the
	// function. Deferred calls execute at every exit, so analyses treat a
	// use inside one as a use on all paths.
	deferred []*ast.CallExpr
}

type labelInfo struct {
	target *cfgBlock // goto destination / labeled statement entry
	brk    *cfgBlock // break L target (set when the labeled loop/switch builds)
	cont   *cfgBlock // continue L target
}

type cfgBuilder struct {
	g             *funcCFG
	cur           *cfgBlock // nil when control cannot reach here
	breaks        []*cfgBlock
	continues     []*cfgBlock
	labels        map[string]*labelInfo
	pendingLabel  *labelInfo
	fallthroughTo *cfgBlock
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{}
	b := &cfgBuilder{g: g, labels: make(map[string]*labelInfo)}
	g.entry = b.newBlock()
	g.exit = b.newBlock()
	b.cur = g.entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.link(b.cur, g.exit)
	}
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
}

// emit appends a leaf node to the current block, starting a fresh
// (unreachable) block when control cannot reach here, so dead code is
// still indexed and analyzed.
func (b *cfgBuilder) emit(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

func (b *cfgBuilder) labelFor(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{target: b.newBlock()}
		b.labels[name] = li
	}
	return li
}

func (b *cfgBuilder) takeLabel() *labelInfo {
	li := b.pendingLabel
	b.pendingLabel = nil
	return li
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		li := b.labelFor(s.Label.Name)
		if b.cur != nil {
			b.link(b.cur, li.target)
		}
		b.cur = li.target
		b.pendingLabel = li
		b.stmt(s.Stmt)
		b.pendingLabel = nil

	case *ast.ReturnStmt:
		b.emit(s)
		b.link(b.cur, b.g.exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.DeferStmt:
		b.emit(s)
		b.g.deferred = append(b.g.deferred, s.Call)

	case *ast.IfStmt:
		b.takeLabel() // a label on an if only matters for goto, already wired
		if s.Init != nil {
			b.emit(s.Init)
		}
		if b.cur == nil {
			b.cur = b.newBlock()
		}
		thenB := b.newBlock()
		after := b.newBlock()
		elseB := after
		if s.Else != nil {
			elseB = b.newBlock()
		}
		b.cond(s.Cond, thenB, elseB)
		b.cur = thenB
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.link(b.cur, after)
		}
		if s.Else != nil {
			b.cur = elseB
			b.stmt(s.Else)
			if b.cur != nil {
				b.link(b.cur, after)
			}
		}
		b.cur = after

	case *ast.ForStmt:
		lbl := b.takeLabel()
		if s.Init != nil {
			b.emit(s.Init)
		}
		if b.cur == nil {
			b.cur = b.newBlock()
		}
		head := b.newBlock()
		b.link(b.cur, head)
		body := b.newBlock()
		after := b.newBlock()
		contTarget := head
		var post *cfgBlock
		if s.Post != nil {
			post = b.newBlock()
			contTarget = post
		}
		if lbl != nil {
			lbl.brk, lbl.cont = after, contTarget
		}
		b.breaks = append(b.breaks, after)
		b.continues = append(b.continues, contTarget)
		b.cur = head
		if s.Cond != nil {
			b.cond(s.Cond, body, after)
		} else {
			b.link(head, body)
		}
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.link(b.cur, contTarget)
		}
		if post != nil {
			b.cur = post
			b.emit(s.Post)
			b.link(post, head)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = after

	case *ast.RangeStmt:
		lbl := b.takeLabel()
		if b.cur == nil {
			b.cur = b.newBlock()
		}
		head := b.newBlock()
		b.link(b.cur, head)
		body := b.newBlock()
		after := b.newBlock()
		if lbl != nil {
			lbl.brk, lbl.cont = after, head
		}
		b.breaks = append(b.breaks, after)
		b.continues = append(b.continues, head)
		// The RangeStmt node carries the container use and the key/value
		// definitions; scanShallow keeps the body out of it.
		b.cur = head
		b.emit(s)
		b.link(head, body)
		b.link(head, after)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.link(b.cur, head)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = after

	case *ast.SwitchStmt:
		savedFT := b.fallthroughTo
		b.switchStmt(s.Init, s.Tag, nil, s.Body)
		b.fallthroughTo = savedFT

	case *ast.TypeSwitchStmt:
		savedFT := b.fallthroughTo
		b.switchStmt(s.Init, nil, s.Assign, s.Body)
		b.fallthroughTo = savedFT

	case *ast.SelectStmt:
		lbl := b.takeLabel()
		if b.cur == nil {
			b.cur = b.newBlock()
		}
		head := b.cur
		after := b.newBlock()
		if lbl != nil {
			lbl.brk = after
		}
		b.breaks = append(b.breaks, after)
		if len(s.Body.List) == 0 {
			b.link(head, after)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			clause := b.newBlock()
			b.link(head, clause)
			b.cur = clause
			if cc.Comm != nil {
				b.emit(cc.Comm)
			}
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.link(b.cur, after)
			}
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = after

	case *ast.ExprStmt:
		b.emit(s)
		if isTerminalCall(s.X) {
			b.link(b.cur, b.g.exit)
			b.cur = nil
		}

	case nil:
		// nothing

	default:
		// Assignments, declarations, sends, go statements, increments,
		// empty statements: straight-line leaves.
		b.emit(s)
	}
}

// switchStmt builds switch and type-switch graphs. Exactly one of tag
// (expression switch) or assign (type switch) is non-nil; either may be
// absent entirely.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	lbl := b.takeLabel()
	if init != nil {
		b.emit(init)
	}
	if tag != nil {
		b.emit(tag)
	}
	if assign != nil {
		b.emit(assign)
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	head := b.cur
	after := b.newBlock()
	if lbl != nil {
		lbl.brk = after
	}
	b.breaks = append(b.breaks, after)

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	// Pre-create clause blocks so fallthrough can link forward.
	blks := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blks[i] = b.newBlock()
		b.link(head, blks[i])
		if c.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.link(head, after)
	}
	for i, c := range clauses {
		b.cur = blks[i]
		// The clause node carries the case expressions and, for type
		// switches, the per-clause implicit definition.
		b.emit(c)
		if i+1 < len(blks) {
			b.fallthroughTo = blks[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.stmtList(c.Body)
		if b.cur != nil {
			b.link(b.cur, after)
		}
	}
	b.fallthroughTo = nil
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	jump := func(t *cfgBlock) {
		if t != nil && b.cur != nil {
			b.link(b.cur, t)
		}
		b.cur = nil
	}
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			jump(b.labelFor(s.Label.Name).brk)
		} else if n := len(b.breaks); n > 0 {
			jump(b.breaks[n-1])
		} else {
			b.cur = nil
		}
	case token.CONTINUE:
		if s.Label != nil {
			jump(b.labelFor(s.Label.Name).cont)
		} else if n := len(b.continues); n > 0 {
			jump(b.continues[n-1])
		} else {
			b.cur = nil
		}
	case token.GOTO:
		jump(b.labelFor(s.Label.Name).target)
	case token.FALLTHROUGH:
		jump(b.fallthroughTo)
	}
}

// cond splits a branch condition into blocks so short-circuit operands
// become conditional: in `a && b`, b evaluates only when a is true.
func (b *cfgBuilder) cond(e ast.Expr, t, f *cfgBlock) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		b.cond(x.X, t, f)
		return
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			rhs := b.newBlock()
			b.cond(x.X, rhs, f)
			b.cur = rhs
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			rhs := b.newBlock()
			b.cond(x.X, t, rhs)
			b.cur = rhs
			b.cond(x.Y, t, f)
			return
		}
	}
	b.emit(e)
	b.link(b.cur, t)
	b.link(b.cur, f)
}

// isTerminalCall reports whether the expression is a call that never
// returns: the panic builtin or os.Exit. Purely syntactic — the CFG layer
// has no type information, and shadowing either name in simulation code
// would be pathological.
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fn.X.(*ast.Ident); ok {
			return pkg.Name == "os" && fn.Sel.Name == "Exit"
		}
	}
	return false
}

// scanShallow visits the expressions belonging to one emitted block node
// without descending into nested statement bodies (which live in their own
// blocks) or into function literals, which are visited as opaque values —
// the visitor sees the *ast.FuncLit itself and nothing inside it.
func scanShallow(n ast.Node, visit func(ast.Node) bool) {
	switch x := n.(type) {
	case *ast.RangeStmt:
		if x.Key != nil {
			scanShallow(x.Key, visit)
		}
		if x.Value != nil {
			scanShallow(x.Value, visit)
		}
		scanShallow(x.X, visit)
		return
	case *ast.CaseClause:
		for _, e := range x.List {
			scanShallow(e, visit)
		}
		return
	case *ast.CommClause:
		if x.Comm != nil {
			scanShallow(x.Comm, visit)
		}
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		switch m.(type) {
		case *ast.FuncLit:
			visit(m)
			return false
		case *ast.BlockStmt:
			return false
		}
		return visit(m)
	})
}
