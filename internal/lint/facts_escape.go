package lint

// facts_escape.go is the shard-confinement layer of the fact store: the
// escape analysis behind the shard-escape / shard-wire-custody /
// shard-lookahead-const rules (rules_shard.go).
//
// Two per-function summaries are computed in the same fixpoint as the
// determinism and ownership facts:
//
//   - EscapingParams: parameters (receiver slot 0, argument i slot i+1)
//     whose value can become reachable from heap state another shard can
//     see — assignment to a package-level variable, capture by a
//     `go`-spawned closure, a channel send, storage into a pdes.Message
//     (the struct that crosses the barrier), or being passed to another
//     function's escaping position;
//   - ResultLookaheadSafe: every eventq.Time result flows only from
//     constants, zero values, Delay/LinkDelay topology fields, or other
//     lookahead-safe module functions — never through non-constant
//     arithmetic that could undercut the conservative window.
//
// Confinement boundaries are declared at the hand-off points:
//
//	//dibslint:confined <shard|coordinator|immutable> reason...
//	//dibslint:confined(<param>) <shard|coordinator|immutable> reason...
//
// The bare form annotates the commented declaration (a function, type,
// struct field, or interface method); the parenthesized form, valid only
// on a function's doc comment, annotates the named parameter — go/parser
// does not attach comments to parameters inside a signature, so per-param
// regions live on the function doc. Regions:
//
//	shard        owned by exactly one shard worker at a time; may be handed
//	             to other shard-confined functions but must never reach a
//	             global, a goroutine capture, or a bare pdes.Message;
//	coordinator  runs only between barrier windows; the one place allowed
//	             to spawn workers, and every value it hands them is checked;
//	immutable    a pointer-free value copy (packet.Wire); safe anywhere.
//
// A reason is mandatory, like //dibslint:ignore and //dibslint:owns.

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Confinement regions.
const (
	RegionShard       = "shard"
	RegionCoordinator = "coordinator"
	RegionImmutable   = "immutable"
)

func validRegion(r string) bool {
	switch r {
	case RegionShard, RegionCoordinator, RegionImmutable:
		return true
	}
	return false
}

// confinedRe matches confinement annotations:
// //dibslint:confined[(param)] region reason...
var confinedRe = regexp.MustCompile(`^//dibslint:confined(?:\(([A-Za-z_][A-Za-z0-9_]*)\))?\s+(\S+)\s*(.*)$`)

// collectConfined records well-formed //dibslint:confined annotations on
// function declarations (and, via the parenthesized form, their named
// parameters and receivers), type declarations, struct fields, and
// interface methods, keyed by types.Object. Malformed directives are
// reported by suppressions(); unresolvable parameter names by the
// shard-confinement analyzer, which has the declaration in hand.
func (l *Loader) collectConfined(pkg *Package) {
	each := func(groups []*ast.CommentGroup, visit func(param, region string)) {
		for _, cg := range groups {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				m := confinedRe.FindStringSubmatch(c.Text)
				if m == nil || !validRegion(m[2]) || strings.TrimSpace(m[3]) == "" {
					continue
				}
				visit(m[1], m[2])
			}
		}
	}
	note := func(names []*ast.Ident, region string) {
		for _, name := range names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				l.confined[obj] = region
			}
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				each([]*ast.CommentGroup{x.Doc}, func(param, region string) {
					if param == "" {
						note([]*ast.Ident{x.Name}, region)
						return
					}
					if id := paramIdent(x, param); id != nil {
						note([]*ast.Ident{id}, region)
					}
				})
			case *ast.GenDecl:
				for _, spec := range x.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					docs := []*ast.CommentGroup{ts.Doc, ts.Comment}
					if len(x.Specs) == 1 {
						docs = append(docs, x.Doc)
					}
					each(docs, func(param, region string) {
						if param == "" {
							note([]*ast.Ident{ts.Name}, region)
						}
					})
				}
			case *ast.InterfaceType:
				for _, m := range x.Methods.List {
					each([]*ast.CommentGroup{m.Doc, m.Comment}, func(param, region string) {
						if param == "" {
							note(m.Names, region)
						}
					})
				}
			case *ast.StructType:
				for _, fld := range x.Fields.List {
					each([]*ast.CommentGroup{fld.Doc, fld.Comment}, func(param, region string) {
						if param == "" {
							note(fld.Names, region)
						}
					})
				}
			}
			return true
		})
	}
}

// paramIdent finds the receiver or parameter of fd named name, or nil.
func paramIdent(fd *ast.FuncDecl, name string) *ast.Ident {
	for _, fl := range []*ast.FieldList{fd.Recv, fd.Type.Params} {
		if fl == nil {
			continue
		}
		for _, fld := range fl.List {
			for _, id := range fld.Names {
				if id.Name == name {
					return id
				}
			}
		}
	}
	return nil
}

// confinedOf returns the declared confinement region of an object, or "".
func (l *Loader) confinedOf(obj types.Object) string {
	if obj == nil {
		return ""
	}
	return l.confined[obj]
}

// typeRegion returns the confinement region declared on a type, looking
// through pointers, slices, and arrays to the named type.
func (l *Loader) typeRegion(t types.Type) string {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Named:
			return l.confinedOf(u.Obj())
		default:
			return ""
		}
	}
}

// exprRegion returns the confinement region of an expression: an annotation
// on the identifier / selected field it names, else on its named type.
func (l *Loader) exprRegion(info *types.Info, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if r := l.confinedOf(obj); r != "" {
			return r
		}
	case *ast.SelectorExpr:
		if r := l.confinedOf(info.Uses[x.Sel]); r != "" {
			return r
		}
	}
	if tv, ok := info.Types[ast.Unparen(e)]; ok {
		return l.typeRegion(tv.Type)
	}
	return ""
}

// isPdesMessageType reports whether t is pdes.Message, the struct that
// crosses the barrier between shards.
func isPdesMessageType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Name() == "Message" &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/pdes")
}

// isTimeType reports whether t is eventq.Time.
func isTimeType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Name() == "Time" &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/eventq")
}

// chanLike reports whether t is a channel, or a slice/array of channels —
// the synchronization values a coordinator legitimately shares with its
// workers.
func chanLike(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Slice:
		return chanLike(u.Elem())
	case *types.Array:
		return chanLike(u.Elem())
	}
	return false
}

// computeEscapeFacts folds the escaping-parameter summary of one declared
// function into facts. A parameter escapes when it (or a closure capturing
// it) is stored to a package-level variable, sent on a channel, captured by
// a go statement, placed into a pdes.Message, or passed to a callee's
// escaping position. Monotone: callee summaries only grow.
func (l *Loader) computeEscapeFacts(info *types.Info, du *defUse, decl *ast.FuncDecl, facts *FuncFacts) {
	params := make(map[*types.Var]int)
	for _, d := range du.defs {
		if d.kind == defParam {
			params[d.obj] = d.paramIdx
		}
	}
	if len(params) == 0 {
		return
	}
	markIn := func(root ast.Node) {
		if root == nil {
			return
		}
		ast.Inspect(root, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v := du.localVar(id); v != nil {
				if slot, ok := params[v]; ok {
					facts.EscapingParams |= 1 << uint(slot)
				}
			}
			return true
		})
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			markIn(x.Call)
		case *ast.SendStmt:
			markIn(x.Value)
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				if writtenPackageVar(info, lhs) != nil {
					markIn(x.Rhs[i])
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[x]; ok && isPdesMessageType(tv.Type) {
				markIn(x)
			}
		case *ast.CallExpr:
			fn := staticCallee(info, x)
			if !l.moduleFunc(fn) {
				return true
			}
			cf, ok := l.facts[fn]
			if !ok || cf.EscapingParams == 0 {
				return true
			}
			shift := 0
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil {
				shift = 1
			}
			for i, arg := range x.Args {
				if cf.EscapingParams&(1<<uint(i+shift)) != 0 {
					markIn(arg)
				}
			}
			if shift == 1 && cf.EscapingParams&1 != 0 {
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
					markIn(sel.X)
				}
			}
		}
		return true
	})
}

// computeLookaheadFacts decides ResultLookaheadSafe for one declared
// function: it has an eventq.Time result, and every expression that can
// become that result is lookahead-safe. Monotone: a callee turning safe
// can only turn its callers safe.
func (l *Loader) computeLookaheadFacts(info *types.Info, obj *types.Func, du *defUse, facts *FuncFacts) {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return
	}
	hasTime := false
	for i := 0; i < sig.Results().Len(); i++ {
		if isTimeType(sig.Results().At(i).Type()) {
			hasTime = true
		}
	}
	if !hasTime {
		return
	}
	timeResults := make(map[*types.Var]bool)
	for _, d := range du.defs {
		if d.kind == defResult && isTimeType(d.obj.Type()) {
			timeResults[d.obj] = true
		}
	}
	safe := true
	for _, blk := range du.g.blocks {
		for _, n := range blk.nodes {
			switch s := n.(type) {
			case *ast.ReturnStmt:
				for _, e := range s.Results {
					if tv, ok := info.Types[e]; ok && isTimeType(tv.Type) && !l.lookaheadSafe(info, du, e) {
						safe = false
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || !timeResults[du.localVar(id)] {
						continue
					}
					if len(s.Lhs) != len(s.Rhs) || !l.lookaheadSafe(info, du, s.Rhs[i]) {
						safe = false
					}
				}
			}
		}
	}
	facts.ResultLookaheadSafe = safe
}

// lookaheadSafe reports whether every terminal source of e is a sanctioned
// lookahead origin: a constant, a zero value, a Delay/LinkDelay
// eventq.Time field of a module struct, or a call to a module function
// whose summary is ResultLookaheadSafe. Non-constant arithmetic — anything
// that could shave the window below the true minimum link delay — is
// unsafe, as is any origin the walk cannot classify.
func (l *Loader) lookaheadSafe(info *types.Info, du *defUse, e ast.Expr) bool {
	ok := true
	du.eachSource(e, func(src ast.Expr) bool {
		if tv, has := info.Types[src]; has && tv.Value != nil {
			return false // compile-time constant, safe as-is
		}
		switch x := src.(type) {
		case *ast.Ident:
			for _, d := range du.defsReaching(x) {
				switch d.kind {
				case defExpr, defZero, defResult:
					// defExpr sources are walked by eachSource; zero
					// values cannot undercut anything.
				default:
					// Parameters, op-assigns (hidden arithmetic), range
					// variables and other opaque bindings are unprovable.
					ok = false
				}
			}
			return true
		case *ast.SelectorExpr:
			v, isVar := info.Uses[x.Sel].(*types.Var)
			safeField := isVar && v.IsField() && v.Pkg() != nil &&
				(x.Sel.Name == "Delay" || x.Sel.Name == "LinkDelay")
			if tv, has := info.Types[src]; !has || !isTimeType(tv.Type) {
				safeField = false
			}
			if !safeField {
				ok = false
			}
			return false
		case *ast.CallExpr:
			fn := staticCallee(info, x)
			if l.moduleFunc(fn) {
				if f, has := l.facts[fn]; has && f.ResultLookaheadSafe {
					return false
				}
			}
			ok = false
			return false
		default:
			ok = false
			return false
		}
	})
	return ok
}
