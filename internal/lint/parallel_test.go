package lint

import (
	"bytes"
	"fmt"
	"testing"
)

// A batch of synthetic packages with a known spread of findings, used to
// prove that parallel analysis is observably identical to serial.
func parallelCorpus(t *testing.T) []*Package {
	t.Helper()
	l := loaderForTest(t)
	var pkgs []*Package
	for i := 0; i < 6; i++ {
		path := fmt.Sprintf("dibs/internal/fixpar%d", i)
		src := fmt.Sprintf(`
package fixpar%d

import "dibs/internal/packet"

func Leak(p *packet.Packet, cond bool) {
	if cond {
		packet.Free(p)
		return
	}
	p.Hops++
}

func DoubleFree(p *packet.Packet, cond bool) {
	if cond {
		packet.Free(p)
	}
	packet.Free(p)
}
`, i)
		pkg, err := l.LoadSynthetic(path, map[string]string{fmt.Sprintf("fixpar%d.go", i): src})
		if err != nil {
			t.Fatalf("LoadSynthetic(%s): %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// The golden property behind the -workers flag: RunParallel must produce
// byte-identical output to the serial path at any worker count, so a
// parallel CI run can never disagree with a laptop run.
func TestRunParallelMatchesSerial(t *testing.T) {
	l := loaderForTest(t)
	pkgs := parallelCorpus(t)

	serial := l.Run(pkgs, Analyzers())
	if len(serial) == 0 {
		t.Fatal("corpus produced no findings; the determinism check is vacuous")
	}
	var want bytes.Buffer
	if err := WriteJSON(&want, serial); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		got := l.RunParallel(pkgs, Analyzers(), workers)
		var buf bytes.Buffer
		if err := WriteJSON(&buf, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), buf.Bytes()) {
			t.Errorf("workers=%d: output diverges from serial run\nserial:\n%s\nparallel:\n%s",
				workers, want.String(), buf.String())
		}
	}
}

// Repeated parallel runs over the same loader must also agree with each
// other (the funcDU cache is shared and mutated under a lock).
func TestRunParallelStableAcrossRuns(t *testing.T) {
	l := loaderForTest(t)
	pkgs := parallelCorpus(t)
	var first bytes.Buffer
	if err := WriteJSON(&first, l.RunParallel(pkgs, Analyzers(), 8)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		var buf bytes.Buffer
		if err := WriteJSON(&buf, l.RunParallel(pkgs, Analyzers(), 8)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), buf.Bytes()) {
			t.Errorf("run %d diverged from first parallel run", i)
		}
	}
}
