package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// cfgFor parses a function body and builds its CFG.
func cfgFor(t *testing.T, body string) *funcCFG {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	f, err := parser.ParseFile(token.NewFileSet(), "cfg.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return buildCFG(fd.Body)
}

// blockCalling returns the block containing a call to the named function.
func blockCalling(t *testing.T, g *funcCFG, name string) *cfgBlock {
	t.Helper()
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return !found
			})
			if found {
				return blk
			}
		}
	}
	t.Fatalf("no block calls %s", name)
	return nil
}

// canReach reports whether to is reachable from from along successor edges
// (not counting the trivial zero-length path unless from == to appears on
// a cycle).
func canReach(from, to *cfgBlock) bool {
	seen := make(map[*cfgBlock]bool)
	var dfs func(b *cfgBlock) bool
	dfs = func(b *cfgBlock) bool {
		for _, s := range b.succs {
			if s == to {
				return true
			}
			if !seen[s] {
				seen[s] = true
				if dfs(s) {
					return true
				}
			}
		}
		return false
	}
	return dfs(from)
}

func TestCFGShortCircuitSplitsOperands(t *testing.T) {
	g := cfgFor(t, `
	if a() && b() {
		then()
	} else {
		other()
	}
	done()`)
	aB, bB := blockCalling(t, g, "a"), blockCalling(t, g, "b")
	thenB, elseB := blockCalling(t, g, "then"), blockCalling(t, g, "other")
	if aB == bB {
		t.Fatal("&& operands must live in separate blocks")
	}
	// a false skips b entirely: an edge from a's block straight to else.
	direct := false
	for _, s := range aB.succs {
		if s == elseB {
			direct = true
		}
	}
	if !direct {
		t.Error("a()==false must branch to else without evaluating b()")
	}
	if !canReach(bB, thenB) || !canReach(bB, elseB) {
		t.Error("b() must reach both branches")
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	g := cfgFor(t, `
	for i := 0; cond(); i++ {
		body()
	}
	after()`)
	bodyB := blockCalling(t, g, "body")
	condB := blockCalling(t, g, "cond")
	afterB := blockCalling(t, g, "after")
	if !canReach(bodyB, bodyB) {
		t.Error("loop body must sit on a cycle (back edge missing)")
	}
	if !canReach(condB, afterB) {
		t.Error("loop condition must reach the after block")
	}
	if !canReach(afterB, g.exit) && afterB != g.exit {
		t.Error("after block must reach exit")
	}
}

func TestCFGRangeBreakContinue(t *testing.T) {
	g := cfgFor(t, `
	for range xs() {
		if stop() {
			break
		}
		if skip() {
			continue
		}
		body()
	}
	after()`)
	stopB := blockCalling(t, g, "stop")
	bodyB := blockCalling(t, g, "body")
	afterB := blockCalling(t, g, "after")
	if !canReach(stopB, afterB) {
		t.Error("break must reach the after block")
	}
	if !canReach(bodyB, bodyB) {
		t.Error("range body must loop")
	}
}

func TestCFGLabeledBreakFromNestedLoop(t *testing.T) {
	g := cfgFor(t, `
outer:
	for oc() {
		for ic() {
			if done() {
				break outer
			}
			inner()
		}
	}
	after()`)
	doneB := blockCalling(t, g, "done")
	afterB := blockCalling(t, g, "after")
	innerB := blockCalling(t, g, "inner")
	ocB := blockCalling(t, g, "oc")
	if !canReach(doneB, afterB) {
		t.Error("break outer must reach the after block")
	}
	if !canReach(innerB, ocB) {
		t.Error("inner loop exit must return to the outer loop head")
	}
}

func TestCFGGotoBackward(t *testing.T) {
	g := cfgFor(t, `
	setup()
loop:
	body()
	if again() {
		goto loop
	}
	after()`)
	bodyB := blockCalling(t, g, "body")
	if !canReach(bodyB, bodyB) {
		t.Error("backward goto must create a cycle")
	}
	if !canReach(blockCalling(t, g, "setup"), blockCalling(t, g, "after")) {
		t.Error("fallthrough path to after missing")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := cfgFor(t, `
	switch tag() {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	default:
		dflt()
	}
	after()`)
	oneB, twoB := blockCalling(t, g, "one"), blockCalling(t, g, "two")
	direct := false
	for _, s := range oneB.succs {
		if s == twoB {
			direct = true
		}
	}
	if !direct {
		t.Error("fallthrough must link case 1 directly to case 2")
	}
	// Without a matching case the tag block must still reach after only
	// through a clause (there is a default, so no head->after edge).
	tagB := blockCalling(t, g, "tag")
	headAfter := false
	for _, s := range tagB.succs {
		if s == blockCalling(t, g, "after") {
			headAfter = true
		}
	}
	if headAfter {
		t.Error("switch with default must not fall to after from the head")
	}
}

func TestCFGPanicTerminatesPath(t *testing.T) {
	g := cfgFor(t, `
	if bad() {
		panic("boom")
	}
	rest()`)
	restB := blockCalling(t, g, "rest")
	var panicB *cfgBlock
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			if es, ok := n.(*ast.ExprStmt); ok && isTerminalCall(es.X) {
				panicB = blk
			}
		}
	}
	if panicB == nil {
		t.Fatal("panic statement not found in any block")
	}
	if canReach(panicB, restB) {
		t.Error("panic must not fall through to the next statement")
	}
	if !canReach(panicB, g.exit) {
		t.Error("panic must link to the function exit")
	}
}

func TestCFGDeferRecorded(t *testing.T) {
	g := cfgFor(t, `
	defer cleanup()
	for it() {
		defer perIter()
	}
	rest()`)
	if len(g.deferred) != 2 {
		t.Fatalf("deferred calls: got %d, want 2", len(g.deferred))
	}
	names := []string{}
	for _, c := range g.deferred {
		if id, ok := c.Fun.(*ast.Ident); ok {
			names = append(names, id.Name)
		}
	}
	if strings.Join(names, ",") != "cleanup,perIter" {
		t.Errorf("deferred = %v, want [cleanup perIter]", names)
	}
}

func TestCFGSelectClauses(t *testing.T) {
	g := cfgFor(t, `
	select {
	case v := <-ch():
		use(v)
	default:
		dflt()
	}
	after()`)
	useB, dfltB := blockCalling(t, g, "use"), blockCalling(t, g, "dflt")
	afterB := blockCalling(t, g, "after")
	if useB == dfltB {
		t.Error("select clauses must live in separate blocks")
	}
	if !canReach(useB, afterB) || !canReach(dfltB, afterB) {
		t.Error("every select clause must reach the after block")
	}
}

func TestCFGReturnLinksToExit(t *testing.T) {
	g := cfgFor(t, `
	if early() {
		return
	}
	rest()`)
	earlyB := blockCalling(t, g, "early")
	restB := blockCalling(t, g, "rest")
	if !canReach(earlyB, g.exit) || !canReach(restB, g.exit) {
		t.Error("both paths must reach exit")
	}
	// The return's block must not reach rest().
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				if canReach(blk, restB) {
					t.Error("return must not fall through to rest()")
				}
			}
		}
	}
}
