package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// cfgFor parses a function body and builds its CFG.
func cfgFor(t *testing.T, body string) *funcCFG {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	f, err := parser.ParseFile(token.NewFileSet(), "cfg.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return buildCFG(fd.Body)
}

// blockCalling returns the block containing a call to the named function.
func blockCalling(t *testing.T, g *funcCFG, name string) *cfgBlock {
	t.Helper()
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return !found
			})
			if found {
				return blk
			}
		}
	}
	t.Fatalf("no block calls %s", name)
	return nil
}

// canReach reports whether to is reachable from from along successor edges
// (not counting the trivial zero-length path unless from == to appears on
// a cycle).
func canReach(from, to *cfgBlock) bool {
	seen := make(map[*cfgBlock]bool)
	var dfs func(b *cfgBlock) bool
	dfs = func(b *cfgBlock) bool {
		for _, s := range b.succs {
			if s == to {
				return true
			}
			if !seen[s] {
				seen[s] = true
				if dfs(s) {
					return true
				}
			}
		}
		return false
	}
	return dfs(from)
}

func TestCFGShortCircuitSplitsOperands(t *testing.T) {
	g := cfgFor(t, `
	if a() && b() {
		then()
	} else {
		other()
	}
	done()`)
	aB, bB := blockCalling(t, g, "a"), blockCalling(t, g, "b")
	thenB, elseB := blockCalling(t, g, "then"), blockCalling(t, g, "other")
	if aB == bB {
		t.Fatal("&& operands must live in separate blocks")
	}
	// a false skips b entirely: an edge from a's block straight to else.
	direct := false
	for _, s := range aB.succs {
		if s == elseB {
			direct = true
		}
	}
	if !direct {
		t.Error("a()==false must branch to else without evaluating b()")
	}
	if !canReach(bB, thenB) || !canReach(bB, elseB) {
		t.Error("b() must reach both branches")
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	g := cfgFor(t, `
	for i := 0; cond(); i++ {
		body()
	}
	after()`)
	bodyB := blockCalling(t, g, "body")
	condB := blockCalling(t, g, "cond")
	afterB := blockCalling(t, g, "after")
	if !canReach(bodyB, bodyB) {
		t.Error("loop body must sit on a cycle (back edge missing)")
	}
	if !canReach(condB, afterB) {
		t.Error("loop condition must reach the after block")
	}
	if !canReach(afterB, g.exit) && afterB != g.exit {
		t.Error("after block must reach exit")
	}
}

func TestCFGRangeBreakContinue(t *testing.T) {
	g := cfgFor(t, `
	for range xs() {
		if stop() {
			break
		}
		if skip() {
			continue
		}
		body()
	}
	after()`)
	stopB := blockCalling(t, g, "stop")
	bodyB := blockCalling(t, g, "body")
	afterB := blockCalling(t, g, "after")
	if !canReach(stopB, afterB) {
		t.Error("break must reach the after block")
	}
	if !canReach(bodyB, bodyB) {
		t.Error("range body must loop")
	}
}

func TestCFGLabeledBreakFromNestedLoop(t *testing.T) {
	g := cfgFor(t, `
outer:
	for oc() {
		for ic() {
			if done() {
				break outer
			}
			inner()
		}
	}
	after()`)
	doneB := blockCalling(t, g, "done")
	afterB := blockCalling(t, g, "after")
	innerB := blockCalling(t, g, "inner")
	ocB := blockCalling(t, g, "oc")
	if !canReach(doneB, afterB) {
		t.Error("break outer must reach the after block")
	}
	if !canReach(innerB, ocB) {
		t.Error("inner loop exit must return to the outer loop head")
	}
}

func TestCFGGotoBackward(t *testing.T) {
	g := cfgFor(t, `
	setup()
loop:
	body()
	if again() {
		goto loop
	}
	after()`)
	bodyB := blockCalling(t, g, "body")
	if !canReach(bodyB, bodyB) {
		t.Error("backward goto must create a cycle")
	}
	if !canReach(blockCalling(t, g, "setup"), blockCalling(t, g, "after")) {
		t.Error("fallthrough path to after missing")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := cfgFor(t, `
	switch tag() {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	default:
		dflt()
	}
	after()`)
	oneB, twoB := blockCalling(t, g, "one"), blockCalling(t, g, "two")
	direct := false
	for _, s := range oneB.succs {
		if s == twoB {
			direct = true
		}
	}
	if !direct {
		t.Error("fallthrough must link case 1 directly to case 2")
	}
	// Without a matching case the tag block must still reach after only
	// through a clause (there is a default, so no head->after edge).
	tagB := blockCalling(t, g, "tag")
	headAfter := false
	for _, s := range tagB.succs {
		if s == blockCalling(t, g, "after") {
			headAfter = true
		}
	}
	if headAfter {
		t.Error("switch with default must not fall to after from the head")
	}
}

func TestCFGPanicTerminatesPath(t *testing.T) {
	g := cfgFor(t, `
	if bad() {
		panic("boom")
	}
	rest()`)
	restB := blockCalling(t, g, "rest")
	var panicB *cfgBlock
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			if es, ok := n.(*ast.ExprStmt); ok && isTerminalCall(es.X) {
				panicB = blk
			}
		}
	}
	if panicB == nil {
		t.Fatal("panic statement not found in any block")
	}
	if canReach(panicB, restB) {
		t.Error("panic must not fall through to the next statement")
	}
	if !canReach(panicB, g.exit) {
		t.Error("panic must link to the function exit")
	}
}

func TestCFGDeferRecorded(t *testing.T) {
	g := cfgFor(t, `
	defer cleanup()
	for it() {
		defer perIter()
	}
	rest()`)
	if len(g.deferred) != 2 {
		t.Fatalf("deferred calls: got %d, want 2", len(g.deferred))
	}
	names := []string{}
	for _, c := range g.deferred {
		if id, ok := c.Fun.(*ast.Ident); ok {
			names = append(names, id.Name)
		}
	}
	if strings.Join(names, ",") != "cleanup,perIter" {
		t.Errorf("deferred = %v, want [cleanup perIter]", names)
	}
}

func TestCFGSelectClauses(t *testing.T) {
	g := cfgFor(t, `
	select {
	case v := <-ch():
		use(v)
	default:
		dflt()
	}
	after()`)
	useB, dfltB := blockCalling(t, g, "use"), blockCalling(t, g, "dflt")
	afterB := blockCalling(t, g, "after")
	if useB == dfltB {
		t.Error("select clauses must live in separate blocks")
	}
	if !canReach(useB, afterB) || !canReach(dfltB, afterB) {
		t.Error("every select clause must reach the after block")
	}
}

func TestCFGReturnLinksToExit(t *testing.T) {
	g := cfgFor(t, `
	if early() {
		return
	}
	rest()`)
	earlyB := blockCalling(t, g, "early")
	restB := blockCalling(t, g, "rest")
	if !canReach(earlyB, g.exit) || !canReach(restB, g.exit) {
		t.Error("both paths must reach exit")
	}
	// The return's block must not reach rest().
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				if canReach(blk, restB) {
					t.Error("return must not fall through to rest()")
				}
			}
		}
	}
}

// The pooled-packet idiom the ownership rules lean on: a defer inside a
// loop body is recorded once per syntactic site, and its block sits on the
// loop's cycle (it runs once per function exit, not per iteration, but the
// CFG must still place the statement inside the loop).
func TestCFGDeferFreeInLoop(t *testing.T) {
	g := cfgFor(t, `
	for it() {
		p := get()
		defer packet.Free(p)
		work(p)
	}
	rest()`)
	if len(g.deferred) != 1 {
		t.Fatalf("deferred calls: got %d, want 1", len(g.deferred))
	}
	if sel, ok := g.deferred[0].Fun.(*ast.SelectorExpr); !ok || sel.Sel.Name != "Free" {
		t.Errorf("deferred call is %v, want packet.Free", g.deferred[0].Fun)
	}
	var deferB *cfgBlock
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				deferB = blk
			}
		}
	}
	if deferB == nil {
		t.Fatal("defer statement not placed in any block")
	}
	if !canReach(deferB, deferB) {
		t.Error("defer in a loop body must sit on the loop's cycle")
	}
	if !canReach(deferB, blockCalling(t, g, "rest")) {
		t.Error("loop body must reach the statement after the loop")
	}
}

// A labeled continue from inside a select must jump to the enclosing
// loop's post/condition, not to the statement after the select.
func TestCFGLabeledContinueOutOfSelect(t *testing.T) {
	g := cfgFor(t, `
recv:
	for it() {
		select {
		case <-ch():
			work()
			continue recv
		default:
			dflt()
		}
		after()
	}
	rest()`)
	workB := blockCalling(t, g, "work")
	dfltB := blockCalling(t, g, "dflt")
	afterB := blockCalling(t, g, "after")
	itB := blockCalling(t, g, "it")
	for _, s := range workB.succs {
		if s == afterB {
			t.Error("continue recv must not fall through to the statement after select")
		}
	}
	if !canReach(workB, itB) {
		t.Error("continue recv must return to the loop condition")
	}
	if !canReach(dfltB, afterB) {
		t.Error("the default clause must fall through to the rest of the body")
	}
	if !canReach(workB, blockCalling(t, g, "rest")) {
		t.Error("the continuing path must still be able to leave the loop")
	}
}

// An early return inside a case that is itself a fallthrough target: the
// fallen-into case must reach exit directly without touching the code
// after the switch.
func TestCFGReturnInsideSwitchFallthrough(t *testing.T) {
	g := cfgFor(t, `
	switch tag() {
	case 1:
		one()
		fallthrough
	case 2:
		if bail() {
			return
		}
		two()
	default:
		dflt()
	}
	after()`)
	oneB := blockCalling(t, g, "one")
	bailB := blockCalling(t, g, "bail")
	twoB := blockCalling(t, g, "two")
	afterB := blockCalling(t, g, "after")
	direct := false
	for _, s := range oneB.succs {
		if s == bailB {
			direct = true
		}
	}
	if !direct {
		t.Error("fallthrough must land on the fallen-into case's first block")
	}
	var retB *cfgBlock
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				retB = blk
			}
		}
	}
	if retB == nil {
		t.Fatal("return statement not placed in any block")
	}
	if canReach(retB, afterB) || canReach(retB, twoB) {
		t.Error("early return inside the case must not reach two() or after()")
	}
	if !canReach(oneB, afterB) || !canReach(twoB, afterB) {
		t.Error("the non-returning paths must reach the code after the switch")
	}
}
