package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// --- shard-wire-custody -------------------------------------------------

const wirePrelude = `
package fixwire

import (
	"dibs/internal/eventq"
	"dibs/internal/packet"
)

type out struct {
	remote func(at eventq.Time, pri int64, w packet.Wire)
}
`

func TestWireCustodyFreeBeforeEmit(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixwiregood", "fixwiregood.go", wirePrelude+`
func Good(o *out, p *packet.Packet, at eventq.Time) {
	w := p.Snapshot()
	packet.Free(p)
	o.remote(at, 1, w)
}
`)
	assertRule(t, fs, "shard-wire-custody", 0)
}

func TestWireCustodyEmitWhileHeld(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixwirebad", "fixwirebad.go", wirePrelude+`
func Bad(o *out, p *packet.Packet, at eventq.Time) {
	w := p.Snapshot()
	o.remote(at, 1, w)
	packet.Free(p)
}
`)
	assertRule(t, fs, "shard-wire-custody", 1)
}

func TestWireCustodyEmitOnOnePath(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixwirebranch", "fixwirebranch.go", wirePrelude+`
func Branch(o *out, p *packet.Packet, at eventq.Time, cross bool) {
	w := p.Snapshot()
	if cross {
		o.remote(at, 1, w)
	}
	packet.Free(p)
}
`)
	assertRule(t, fs, "shard-wire-custody", 1)
}

func TestWireCustodyDeferredFreeDischarges(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixwiredefer", "fixwiredefer.go", wirePrelude+`
func Deferred(o *out, p *packet.Packet, at eventq.Time) {
	defer packet.Free(p)
	w := p.Snapshot()
	o.remote(at, 1, w)
}
`)
	assertRule(t, fs, "shard-wire-custody", 0)
}

func TestRestoreIntoFreshBorrow(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixadopt", "fixadopt.go", `
package fixadopt

import "dibs/internal/packet"

func Adopt(pl *packet.Pool, w packet.Wire) *packet.Packet {
	p := pl.Get()
	w.Restore(p)
	return p
}
`)
	assertRule(t, fs, "shard-wire-custody", 0)
}

func TestRestoreIntoBorrowedPacket(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixadoptbad", "fixadoptbad.go", `
package fixadoptbad

import "dibs/internal/packet"

func AdoptBorrowed(p *packet.Packet, w packet.Wire) {
	w.Restore(p)
}
`)
	assertRule(t, fs, "shard-wire-custody", 1)
}

// --- shard-lookahead-const ----------------------------------------------

const lookPrelude = `
package fixlook

import (
	"dibs/internal/eventq"
	"dibs/internal/pdes"
)

type cfg struct {
	LinkDelay eventq.Time
}

func minDelay(c *cfg) eventq.Time {
	var la eventq.Time
	la = c.LinkDelay
	return la
}

type hooks struct {
	rw  func(int, eventq.Time)
	fl  func(int) []pdes.Message
	inj func(pdes.Message)
}
`

func TestLookaheadFromLinkDelay(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixlookgood", "fixlookgood.go", lookPrelude+`
func RunConst(c *cfg, until eventq.Time, h *hooks) {
	pdes.Run(2, minDelay(c), until, h.rw, h.fl, h.inj)
}

func RunLit(until eventq.Time, h *hooks) {
	pdes.Run(2, 100, until, h.rw, h.fl, h.inj)
}
`)
	assertRule(t, fs, "shard-lookahead-const", 0)
}

func TestLookaheadArithmeticFlagged(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixlookbad", "fixlookbad.go", lookPrelude+`
func RunHalf(c *cfg, until eventq.Time, h *hooks) {
	pdes.Run(2, minDelay(c)/2, until, h.rw, h.fl, h.inj)
}
`)
	assertRule(t, fs, "shard-lookahead-const", 1)
}

func TestLookaheadShavedHelperFlagged(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixlookshave", "fixlookshave.go", lookPrelude+`
func shaved(c *cfg) eventq.Time {
	return c.LinkDelay - 1
}

func RunShaved(c *cfg, until eventq.Time, h *hooks) {
	pdes.Run(2, shaved(c), until, h.rw, h.fl, h.inj)
}
`)
	assertRule(t, fs, "shard-lookahead-const", 1)
}

// --- shard-escape --------------------------------------------------------

const escPrelude = `
package fixesc

import "dibs/internal/pdes"

//dibslint:confined shard owned by exactly one worker at a time
type shardState struct {
	n  int
	ch chan int
}
`

func TestShardEscapeToPackageVar(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixescglobal", "fixescglobal.go", escPrelude+`
var sink []*shardState

func Stash(s *shardState) {
	sink = append(sink, s)
}

func Pass(s *shardState) {
	Stash(s)
}
`)
	// Stash stores its parameter in a package variable (direct escape);
	// Pass hands a shard value to Stash's escaping position
	// (interprocedural, via the EscapingParams summary).
	assertRule(t, fs, "shard-escape", 2)
}

func TestShardEscapeOnChannel(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixescsend", "fixescsend.go", escPrelude+`
func Leak(s *shardState, ch chan *shardState) {
	ch <- s
}
`)
	assertRule(t, fs, "shard-escape", 1)
}

func TestShardBorrowerIsClean(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixescfine", "fixescfine.go", escPrelude+`
func Fine(s *shardState) int {
	return s.n
}
`)
	assertRule(t, fs, "shard-escape", 0)
}

func TestShardEscapeViaMessage(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixescmsg", "fixescmsg.go", escPrelude+`
func Smuggle(s *shardState) pdes.Message {
	return pdes.Message{At: 1, Deliver: func() { s.n++ }}
}

//dibslint:confined shard the emitter runs under the owning worker's custody protocol
func Emit(s *shardState) pdes.Message {
	return pdes.Message{At: 1, Deliver: func() { s.n++ }}
}
`)
	// Smuggle builds a barrier-crossing Message around shard state in an
	// unconfined function; Emit does the same under a shard annotation,
	// which asserts the capture stays inside the custody protocol.
	assertRule(t, fs, "shard-escape", 1)
}

func TestCoordinatorGoroutineCaptures(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixcoordcap", "fixcoordcap.go", `
package fixcoordcap

//dibslint:confined coordinator runs between windows only
//dibslint:confined(work) shard executed only by the owning shard's worker
func Drive(n int, work func(int)) {
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			work(i)
			done <- i
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}
`)
	assertRule(t, fs, "shard-escape", 0)
	assertRule(t, fs, "nondet-goroutine", 0)
}

func TestCoordinatorGoroutineSharedSlice(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixcoordbad", "fixcoordbad.go", `
package fixcoordbad

//dibslint:confined coordinator runs between windows only
func DriveShared(n int) {
	shared := make([]int, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			shared[i] = i
			done <- i
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}
`)
	if n := countRule(fs, "shard-escape"); n == 0 {
		t.Errorf("shard-escape: coordinator goroutine capturing a plain slice was not flagged: %v", rulesOf(fs))
	}
	assertRule(t, fs, "nondet-goroutine", 0)
}

// --- annotation hygiene --------------------------------------------------

func TestConfinedAnnotationHygiene(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixconfbad", "fixconfbad.go", `
package fixconfbad

//dibslint:confined warp somewhere else entirely
func BadRegion() {}

//dibslint:confined shard
func NoReason() {}

//dibslint:confined(bogus) shard some reason
func NoSuchParam(n int) {}
`)
	assertRule(t, fs, "lint-badignore", 3)
}

// --- the production packages under the new rules -------------------------

// TestRealShardPackagesClean is the acceptance gate: the real
// internal/pdes, internal/netsim, internal/packet and internal/switching
// packages pass the full suite with the blanket nondet-goroutine allowlist
// deleted and the three shard rules live.
func TestRealShardPackagesClean(t *testing.T) {
	l := loaderForTest(t)
	var pkgs []*Package
	for _, path := range []string{
		"dibs/internal/pdes",
		"dibs/internal/netsim",
		"dibs/internal/packet",
		"dibs/internal/switching",
	} {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("Load(%s): %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	fs := l.Run(pkgs, Analyzers())
	if len(fs) != 0 {
		for _, f := range fs {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

// --- seeded mutations ----------------------------------------------------

// readProductionSources returns dir's non-test Go sources keyed by a
// synthetic file name, so a mutated copy can be loaded under a fresh
// import path without colliding with the cached real package.
func readProductionSources(t *testing.T, dir, prefix string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir(%s): %v", dir, err)
	}
	out := make(map[string]string)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		out[prefix+name] = string(data)
	}
	return out
}

// TestMutationDroppedFreeBeforeWireEmission re-lints internal/switching
// with the packet.Free between Snapshot and emission deleted — the classic
// custody bug a refactor could introduce — and demands the static rule
// catch it.
func TestMutationDroppedFreeBeforeWireEmission(t *testing.T) {
	l := loaderForTest(t)
	sources := readProductionSources(t, "../switching", "switchmut_")
	mutated := false
	for name, src := range sources {
		snap := strings.Index(src, ".Snapshot()")
		if snap < 0 {
			continue
		}
		free := strings.Index(src[snap:], "packet.Free(")
		if free < 0 {
			continue
		}
		free += snap
		lineStart := strings.LastIndex(src[:free], "\n") + 1
		lineEnd := strings.Index(src[free:], "\n")
		if lineEnd < 0 {
			continue
		}
		lineEnd += free + 1
		sources[name] = src[:lineStart] + src[lineEnd:]
		mutated = true
	}
	if !mutated {
		t.Fatal("mutation did not apply: no Snapshot-then-Free sequence found in internal/switching")
	}
	pkg, err := l.LoadSynthetic("dibs/internal/switchmut", sources)
	if err != nil {
		t.Fatalf("LoadSynthetic: %v", err)
	}
	fs := l.Run([]*Package{pkg}, Analyzers())
	if n := countRule(fs, "shard-wire-custody"); n == 0 {
		t.Errorf("shard-wire-custody: dropping packet.Free before Wire emission went undetected: %v", rulesOf(fs))
	}
}

// TestMutationCoordinatorCapturesShardData re-lints internal/pdes with the
// worker goroutine made to append its window limits into a coordinator
// slice — shared mutable state across shards — and demands shard-escape
// catch it.
func TestMutationCoordinatorCapturesShardData(t *testing.T) {
	l := loaderForTest(t)
	data, err := os.ReadFile("../pdes/pdes.go")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	src := string(data)
	const anchor = "done := make(chan int, nShards)"
	const spawn = "runWindow(i, limit)"
	if !strings.Contains(src, anchor) || !strings.Contains(src, spawn) {
		t.Fatal("mutation anchors not found in internal/pdes/pdes.go")
	}
	src = strings.Replace(src, anchor, anchor+"\n\tvar windows []eventq.Time", 1)
	src = strings.Replace(src, spawn, spawn+"; windows = append(windows, limit)", 1)
	pkg, err := l.LoadSynthetic("dibs/internal/pdesmut", map[string]string{"pdesmut.go": src})
	if err != nil {
		t.Fatalf("LoadSynthetic: %v", err)
	}
	fs := l.Run([]*Package{pkg}, Analyzers())
	if n := countRule(fs, "shard-escape"); n == 0 {
		t.Errorf("shard-escape: coordinator goroutine capturing a shared slice went undetected: %v", rulesOf(fs))
	}
}
