// Package lint implements dibslint, a static-analysis suite purpose-built
// for this simulator. DIBS results are only meaningful if a run is exactly
// reproducible — the paper's figures (incast 99th-percentile QCT, drop
// counts, detour loops) come from seeded simulations — so the properties
// that keep runs deterministic are enforced by machine, not convention:
//
//   - no global math/rand state or ad-hoc PRNG construction (every stream
//     must derive from Config.Seed via internal/rng),
//   - no wall-clock reads inside simulation packages (virtual time only),
//   - no map-range iteration feeding event scheduling or result aggregation,
//   - no raw-nanosecond literals or time.Duration leaking into eventq.Time,
//   - no ==/!= on float64 metrics, and no dropped error returns or
//     scheduling into the past.
//
// The engine is built exclusively on the standard library (go/parser,
// go/ast, go/types with the source importer), honoring the repo's
// stdlib-only rule. See rules.go for the analyzers and DESIGN.md
// ("Determinism & lint rules") for the rule catalogue.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	"dibs/internal/runner"
)

// Finding is one rule violation, reported as file:line:col rule-id message.
type Finding struct {
	Pos      token.Position
	Rule     string
	Msg      string
	Severity string // SevError or SevWarn, stamped from the rule's doc
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path, e.g. dibs/internal/netsim
	Dir   string // absolute directory ("" for synthetic packages)
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TestOf is the import path of the package under test when this
	// package is a test variant (the in-package files augmented with
	// _test.go files, or the external foo_test package); "" otherwise.
	// Perimeter decisions (SimPackage etc.) use it via effectivePath.
	TestOf string
}

// Analyzer inspects one package and reports findings.
type Analyzer struct {
	// Rules lists the rule IDs this analyzer can emit, for -rules.
	Rules []RuleDoc
	// Check runs the analyzer. report attaches a finding at pos.
	Check func(l *Loader, pkg *Package, report func(pos token.Pos, rule, msg string))
}

// Severity levels for findings. Errors fail the build (exit 1); warnings
// are reported but do not gate.
const (
	SevError = "error"
	SevWarn  = "warn"
)

// RuleDoc documents one rule ID for `dibslint -rules`.
type RuleDoc struct {
	ID       string
	Doc      string
	Severity string
	// InTests marks rules that also apply inside _test.go files when the
	// loader runs with test coverage (-tests). Most determinism rules stay
	// off in tests — ad-hoc literal-seeded PRNGs and wall-clock timing are
	// legitimate there — but seeding from the wall clock (rng-taint) or
	// the process-global source (nondet-globalrand) makes a test
	// flaky-by-construction.
	InTests bool
}

// BadIgnoreRule documents the loader-emitted lint-badignore rule, which
// has no analyzer of its own.
var BadIgnoreRule = RuleDoc{
	ID:       "lint-badignore",
	Doc:      "a //dibslint: directive is malformed or lacks a reason",
	Severity: SevError,
	InTests:  true,
}

// StaleIgnoreRule documents the loader-emitted lint-staleignore rule: a
// well-formed //dibslint:ignore directive that no longer suppresses any
// finding. Dead directives hide future regressions of the named rule on
// that line, so they must be deleted when the underlying code is fixed.
var StaleIgnoreRule = RuleDoc{
	ID:       "lint-staleignore",
	Doc:      "a //dibslint:ignore directive suppresses nothing and must be deleted",
	Severity: SevWarn,
	InTests:  true,
}

// Loader parses and type-checks packages of the enclosing module using only
// the standard library: module-local imports are resolved recursively from
// source, standard-library imports through go/importer's source importer.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string // absolute path of the directory holding go.mod
	ModulePath string // module path from go.mod (e.g. "dibs")

	std  types.Importer
	pkgs map[string]*Package
	// loading guards against import cycles (invalid Go, but fail loudly).
	loading map[string]bool
	// TypeErrors collects non-fatal type-check diagnostics; packages are
	// still analyzed best-effort.
	TypeErrors []error

	// facts holds the cross-package function summaries (facts.go),
	// computed when each package is type-checked; funcDU caches the
	// CFG + reaching-definitions solution per function body. duMu guards
	// funcDU: loading is serial, but RunParallel analyzes packages
	// concurrently and analyzers build function-literal CFGs on demand.
	facts  map[*types.Func]FuncFacts
	funcDU map[*ast.BlockStmt]*defUse
	duMu   sync.Mutex

	// owns records //dibslint:owns transfer annotations (facts_own.go) on
	// functions, interface methods and func-typed fields.
	owns map[types.Object]bool

	// confined records //dibslint:confined region annotations
	// (facts_escape.go) on functions, parameters, types, struct fields and
	// interface methods: the declared shard/coordinator/immutable boundary.
	confined map[types.Object]string
}

// NewLoader locates the module root by walking up from dir to the nearest
// go.mod and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		facts:      make(map[*types.Func]FuncFacts),
		funcDU:     make(map[*ast.BlockStmt]*defUse),
		owns:       make(map[types.Object]bool),
		confined:   make(map[types.Object]string),
	}, nil
}

var moduleRe = regexp.MustCompile(`^module\s+(\S+)`)

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if m := moduleRe.FindStringSubmatch(strings.TrimSpace(line)); m != nil {
			return m[1], nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Import implements types.Importer, routing module-local paths to the
// source loader and everything else to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.ModulePath {
		return l.ModuleRoot
	}
	rel := strings.TrimPrefix(path, l.ModulePath+"/")
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
}

// PathFor maps a directory inside the module to its import path.
func (l *Loader) PathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleRoot)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// Load parses and type-checks the package at the given module import path.
// Test files (_test.go) are excluded: the determinism rules deliberately do
// not apply to tests, which may use wall clocks and ad-hoc randomness.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	sources := make(map[string]string)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		sources[filepath.Join(dir, name)] = ""
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("lint: no Go source in %s", dir)
	}
	return l.check(path, dir, sources)
}

// LoadSynthetic type-checks an in-memory package (used by analyzer tests to
// lint fixture sources that do not exist on disk). files maps file name to
// source text; the import path controls which scoped rules apply.
func (l *Loader) LoadSynthetic(path string, files map[string]string) (*Package, error) {
	return l.check(path, "", files)
}

// check parses and type-checks one package and caches it under its import
// path. sources maps filename to source text; an empty text means "read
// the file from disk".
func (l *Loader) check(path, dir string, sources map[string]string) (*Package, error) {
	l.loading[path] = true
	defer delete(l.loading, path)
	pkg, err := l.checkWith(path, dir, sources, l, "")
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// checkWith parses and type-checks one package without touching the
// package cache: typePath names the types.Package, imp resolves imports
// (test variants substitute an importer that maps the package under test
// to its augmented build), testOf tags test variants.
func (l *Loader) checkWith(typePath, dir string, sources map[string]string, imp types.Importer, testOf string) (*Package, error) {
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)

	var files []*ast.File
	for _, name := range names {
		var src any
		if text := sources[name]; text != "" {
			src = text
		}
		f, err := parser.ParseFile(l.Fset, name, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { l.TypeErrors = append(l.TypeErrors, err) },
	}
	tpkg, err := conf.Check(typePath, l.Fset, files, info)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", typePath, err)
	}
	pkg := &Package{Path: typePath, Dir: dir, Files: files, Types: tpkg, Info: info, TestOf: testOf}
	l.collectOwns(pkg)
	l.collectConfined(pkg)
	l.computeFacts(pkg)
	return pkg, nil
}

// testImporter resolves the package under test to its augmented build (the
// one including in-package _test.go files), so external foo_test packages
// see export_test.go hooks; everything else goes through the loader.
type testImporter struct {
	l    *Loader
	path string
	aug  *types.Package
}

func (ti *testImporter) Import(path string) (*types.Package, error) {
	if path == ti.path {
		return ti.aug, nil
	}
	return ti.l.Import(path)
}

// LoadTests loads the test builds of the package at the given import path:
// the augmented in-package variant (production files plus same-package
// _test.go files) and, when present, the external foo_test package. The
// production package itself is loaded (and cached) as a side effect; the
// returned packages are not cached and carry TestOf. Packages with no test
// files return the production package alone, so callers can lint the
// result list uniformly.
func (l *Loader) LoadTests(path string) ([]*Package, error) {
	base, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	inPkg := make(map[string]string)  // same-package test files
	extPkg := make(map[string]string) // external foo_test files
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		pkgName, err := packageClause(full)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if strings.HasSuffix(pkgName, "_test") {
			extPkg[full] = ""
		} else {
			inPkg[full] = ""
		}
	}
	if len(inPkg) == 0 && len(extPkg) == 0 {
		return []*Package{base}, nil
	}

	aug := base
	if len(inPkg) > 0 {
		sources := make(map[string]string, len(inPkg))
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			sources[filepath.Join(dir, name)] = ""
		}
		for name := range inPkg {
			sources[name] = ""
		}
		aug, err = l.checkWith(path, dir, sources, l, path)
		if err != nil {
			return nil, err
		}
	}
	pkgs := []*Package{aug}
	if len(extPkg) > 0 {
		imp := &testImporter{l: l, path: path, aug: aug.Types}
		ext, err := l.checkWith(path+"_test", dir, extPkg, imp, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, ext)
	}
	return pkgs, nil
}

// packageClause reads just the package name of a Go file.
func packageClause(filename string) (string, error) {
	f, err := parser.ParseFile(token.NewFileSet(), filename, nil, parser.PackageClauseOnly)
	if err != nil {
		return "", err
	}
	return f.Name.Name, nil
}

// SimPackage reports whether path is a simulation package: the module root
// package and everything under internal/, except the lint tooling itself.
// cmd/ and examples/ binaries may legitimately read the wall clock (to print
// elapsed real time) and are outside the determinism perimeter.
func (l *Loader) SimPackage(path string) bool {
	if path == l.ModulePath {
		return true
	}
	internal := l.ModulePath + "/internal/"
	if !strings.HasPrefix(path, internal) {
		return false
	}
	return path != internal+"lint"
}

// RNGPackage reports whether path is the sanctioned PRNG-derivation
// package, the only simulation code allowed to construct rand sources.
func (l *Loader) RNGPackage(path string) bool {
	return path == l.ModulePath+"/internal/rng"
}

// ignoreRe matches suppression comments: //dibslint:ignore RULE reason...
// A reason is mandatory; an ignore without one is itself reported.
var ignoreRe = regexp.MustCompile(`^//dibslint:ignore\s+(\S+)\s*(.*)$`)

// directive is one well-formed //dibslint:ignore comment, tracked so
// lint-staleignore can report the ones that no longer suppress anything.
type directive struct {
	pos  token.Pos
	rule string
	used bool
}

// suppressions scans //dibslint: comments, returning the suppression index
// (file -> line -> rule -> directive; a directive covers its own line and
// the line after it, so it can trail the offending statement or sit above
// it) plus the ordered directive list. Malformed directives — including
// reason-less ignore and owns forms — are reported as lint-badignore.
func suppressions(fset *token.FileSet, files []*ast.File, report func(pos token.Pos, rule, msg string)) (map[string]map[int]map[string]*directive, []*directive) {
	sup := make(map[string]map[int]map[string]*directive)
	var dirs []*directive
	add := func(file string, line int, d *directive) {
		if sup[file] == nil {
			sup[file] = make(map[int]map[string]*directive)
		}
		if sup[file][line] == nil {
			sup[file][line] = make(map[string]*directive)
		}
		sup[file][line][d.rule] = d
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if m := ownsRe.FindStringSubmatch(c.Text); m != nil {
					// Transfer annotations feed the fact store
					// (collectOwns); here only the mandatory reason is
					// enforced.
					if strings.TrimSpace(m[2]) == "" {
						report(c.Pos(), "lint-badignore",
							"owns annotation needs a reason: //dibslint:owns <why the callee keeps the resource>")
					}
					continue
				}
				if strings.HasPrefix(c.Text, "//dibslint:confined") {
					// Region annotations feed the fact store
					// (collectConfined); here only well-formedness and the
					// mandatory reason are enforced.
					switch m := confinedRe.FindStringSubmatch(c.Text); {
					case m == nil:
						report(c.Pos(), "lint-badignore",
							"malformed confinement annotation; use //dibslint:confined[(param)] <shard|coordinator|immutable> reason")
					case !validRegion(m[2]):
						report(c.Pos(), "lint-badignore",
							fmt.Sprintf("unknown confinement region %q; use shard, coordinator, or immutable", m[2]))
					case strings.TrimSpace(m[3]) == "":
						report(c.Pos(), "lint-badignore",
							"confined annotation needs a reason: //dibslint:confined "+m[2]+" <why this boundary holds>")
					}
					continue
				}
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.HasPrefix(c.Text, "//dibslint:") {
						report(c.Pos(), "lint-badignore",
							"malformed directive; use //dibslint:ignore RULE reason")
					}
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					report(c.Pos(), "lint-badignore",
						fmt.Sprintf("ignore of %s needs a reason: //dibslint:ignore %s <why>", m[1], m[1]))
					continue
				}
				d := &directive{pos: c.Pos(), rule: m[1]}
				dirs = append(dirs, d)
				pos := fset.Position(c.Pos())
				add(pos.Filename, pos.Line, d)
				add(pos.Filename, pos.Line+1, d)
			}
		}
	}
	return sup, dirs
}

// runPkg runs all analyzers over one package and applies suppressions, the
// test-file filter, severity stamping, and stale-directive detection. The
// per-package slice is unsorted; callers merge and sort.
func (l *Loader) runPkg(pkg *Package, analyzers []*Analyzer, docs map[string]RuleDoc) []Finding {
	var raw []Finding
	report := func(pos token.Pos, rule, msg string) {
		raw = append(raw, Finding{Pos: l.Fset.Position(pos), Rule: rule, Msg: msg})
	}
	sup, dirs := suppressions(l.Fset, pkg.Files, report)
	for _, a := range analyzers {
		a.Check(l, pkg, report)
	}
	var findings []Finding
	for _, f := range raw {
		if rules, ok := sup[f.Pos.Filename][f.Pos.Line]; ok && f.Rule != "lint-badignore" {
			if d := rules[f.Rule]; d != nil {
				d.used = true
				continue
			}
		}
		doc, known := docs[f.Rule]
		if strings.HasSuffix(f.Pos.Filename, "_test.go") && !doc.InTests {
			continue
		}
		f.Severity = SevError
		if known && doc.Severity != "" {
			f.Severity = doc.Severity
		}
		findings = append(findings, f)
	}
	for _, d := range dirs {
		if d.used {
			continue
		}
		findings = append(findings, Finding{
			Pos:      l.Fset.Position(d.pos),
			Rule:     StaleIgnoreRule.ID,
			Msg:      fmt.Sprintf("//dibslint:ignore %s suppresses nothing; delete the directive", d.rule),
			Severity: StaleIgnoreRule.Severity,
		})
	}
	return findings
}

// Run executes all analyzers over the given packages and returns findings
// sorted by position, with //dibslint:ignore suppressions applied.
// Findings inside _test.go files are kept only for rules marked InTests;
// severities are stamped from the rule docs.
func (l *Loader) Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	return l.RunParallel(pkgs, analyzers, 1)
}

// RunParallel is Run with package analysis fanned out over workers via
// internal/runner.Map. Results are merged in package-index order and fully
// sorted (position, rule, then message), so the output is byte-identical
// for every worker count. Loading stays serial — the type-checker is not
// concurrency-safe — but analysis dominates on warm caches.
func (l *Loader) RunParallel(pkgs []*Package, analyzers []*Analyzer, workers int) []Finding {
	docs := map[string]RuleDoc{BadIgnoreRule.ID: BadIgnoreRule, StaleIgnoreRule.ID: StaleIgnoreRule}
	for _, a := range analyzers {
		for _, d := range a.Rules {
			docs[d.ID] = d
		}
	}
	perPkg := runner.Map(workers, len(pkgs), func(i int) []Finding {
		return l.runPkg(pkgs[i], analyzers, docs)
	})
	var findings []Finding
	for _, fs := range perPkg {
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return findings
}
