package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteSARIFGolden(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixsarif", "fixsarif.go", `
package fixsarif

import "math/rand"

func Roll() int { return rand.Intn(6) }
`)
	if len(fs) == 0 {
		t.Fatal("fixture produced no findings; the golden check is vacuous")
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, fs, ""); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	golden := filepath.Join("testdata", "sarif_golden.sarif")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SARIF output mismatch\n got: %s\nwant: %s", buf.Bytes(), want)
	}
}

func TestWriteSARIFEmptyKeepsShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil, ""); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string            `json:"name"`
					Rules []json.RawMessage `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("malformed empty log: %s", buf.String())
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "dibslint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if run.Results == nil || len(run.Results) != 0 {
		t.Errorf("empty findings must serialize as [], got %s", buf.String())
	}
	if run.Tool.Driver.Rules == nil || len(run.Tool.Driver.Rules) != 0 {
		t.Errorf("empty rule table must serialize as [], got %s", buf.String())
	}
}

// The URI rewriting that CI relies on: absolute paths under root become
// checkout-relative, slash-separated; paths outside root pass through.
func TestSARIFURIRelativeToRoot(t *testing.T) {
	if got := sarifURI("/repo", "/repo/internal/lint/lint.go"); got != "internal/lint/lint.go" {
		t.Errorf("under root: got %q", got)
	}
	if got := sarifURI("/repo", "/elsewhere/x.go"); got != "/elsewhere/x.go" {
		t.Errorf("outside root: got %q", got)
	}
	if got := sarifURI("", "pkg/x.go"); got != "pkg/x.go" {
		t.Errorf("no root: got %q", got)
	}
}
