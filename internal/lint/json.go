package lint

import (
	"encoding/json"
	"io"
)

// jsonFinding is the machine-readable diagnostic shape: stable field names
// so CI and editor integrations can parse output without scraping the
// text format.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	Msg      string `json:"msg"`
}

// WriteJSON emits findings as an indented JSON array (never null: an empty
// run writes []), terminated by a newline.
func WriteJSON(w io.Writer, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Rule:     f.Rule,
			Severity: f.Severity,
			Msg:      f.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
