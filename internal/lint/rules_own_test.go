package lint

import (
	"strings"
	"testing"
)

// --- own-leak ---

func TestOwnLeakParamReleasedOnOnePathOnly(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixownleak", "fixownleak.go", `
package fixownleak

import "dibs/internal/packet"

// Forward frees p when the TTL is spent but lets it fall off the end of
// the function otherwise: released on one path, leaked on the other.
func Forward(p *packet.Packet) {
	if p.TTL <= 0 {
		packet.Free(p)
		return
	}
	p.Hops++
}
`)
	assertRule(t, fs, "own-leak", 1)
	for _, f := range fs {
		if f.Rule == "own-leak" && !strings.Contains(f.Msg, "p is released on some paths") {
			t.Errorf("param leak message should name the asymmetry: %s", f.Msg)
		}
	}
}

func TestOwnLeakBorrowedParamWithoutReleaseIsFine(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixownborrow", "fixownborrow.go", `
package fixownborrow

import "dibs/internal/packet"

// Peek only inspects the packet; with no release anywhere the borrow is a
// plain borrow, not a leak.
func Peek(p *packet.Packet) int {
	if p.CE {
		return 0
	}
	return p.Size()
}
`)
	assertRule(t, fs, "own-leak", 0)
}

func TestOwnLeakLocalBirthUndischarged(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixownbirth", "fixownbirth.go", `
package fixownbirth

import "dibs/internal/packet"

// Emit borrows a packet from the pool but drops it when the flow is
// filtered: the early return leaks the borrow.
func Emit(pool *packet.Pool, filtered bool) {
	p := pool.Get()
	if filtered {
		return
	}
	packet.Free(p)
}
`)
	assertRule(t, fs, "own-leak", 1)
}

func TestOwnLeakDischargedOnEveryPath(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixownok", "fixownok.go", `
package fixownok

import "dibs/internal/packet"

func Emit(pool *packet.Pool, filtered bool) {
	p := pool.Get()
	if filtered {
		packet.Free(p)
		return
	}
	packet.Free(p)
}
`)
	assertRule(t, fs, "own-leak", 0)
}

func TestOwnLeakDiscardedBirth(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixowndiscard", "fixowndiscard.go", `
package fixowndiscard

import "dibs/internal/packet"

func Warm(pool *packet.Pool) {
	pool.Get()
}
`)
	assertRule(t, fs, "own-leak", 1)
}

// The //dibslint:owns annotation marks an intentional long-lived transfer:
// handing the packet to the annotated consumer discharges the path.
func TestOwnLeakSuppressedByOwnsTransfer(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixownxfer", "fixownxfer.go", `
package fixownxfer

import "dibs/internal/packet"

type ring struct {
	buf []*packet.Packet
}

//dibslint:owns the ring keeps the packet until the far end pops it
func (r *ring) push(p *packet.Packet) {
	r.buf = append(r.buf, p)
}

func Launch(pool *packet.Pool, r *ring) {
	p := pool.Get()
	r.push(p)
}
`)
	assertRule(t, fs, "own-leak", 0)
}

func TestOwnLeakUnannotatedSinkStillLeaks(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixownnoxfer", "fixownnoxfer.go", `
package fixownnoxfer

import "dibs/internal/packet"

type observer interface {
	Observe(p *packet.Packet)
}

// Observe is an unannotated interface method: the checker must treat the
// call as a borrow, so the birth reaches exit undischarged.
func Launch(pool *packet.Pool, o observer) {
	p := pool.Get()
	o.Observe(p)
}
`)
	assertRule(t, fs, "own-leak", 1)
}

// A consumer returning queue.Result is conditional: its call sites
// discharge leak paths (the queue stored the packet on accept) without
// becoming double-free origins (the caller may still drop on refusal).
func TestOwnConditionalTransferViaQueueResult(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixownmaybe", "fixownmaybe.go", `
package fixownmaybe

import (
	"dibs/internal/packet"
	"dibs/internal/queue"
)

func Offer(pool *packet.Pool, q queue.Queue) {
	p := pool.Get()
	r := q.Enqueue(p)
	if !r.Accepted {
		packet.Free(p)
	}
}
`)
	assertRule(t, fs, "own-leak", 0)
	assertRule(t, fs, "own-doublefree", 0)
	assertRule(t, fs, "own-useafterfree", 0)
}

func TestOwnNilGuardedDequeueIsNotALeak(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixownnil", "fixownnil.go", `
package fixownnil

import (
	"dibs/internal/packet"
	"dibs/internal/queue"
)

// The nil branch of a Dequeue result carries no resource; only the
// non-nil branch must discharge.
func Drain(q queue.Queue) {
	p := q.Dequeue()
	if p == nil {
		return
	}
	packet.Free(p)
}
`)
	assertRule(t, fs, "own-leak", 0)
}

func TestOwnPanicPathClosesLeak(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixownpanic", "fixownpanic.go", `
package fixownpanic

import (
	"dibs/internal/packet"
	"dibs/internal/queue"
)

func MustOffer(pool *packet.Pool, q queue.Queue) {
	p := pool.Get()
	r := q.Enqueue(p)
	if !r.Accepted {
		panic("fixture: queue refused after fullness check")
	}
}
`)
	assertRule(t, fs, "own-leak", 0)
}

// --- own-doublefree ---

func TestOwnDoubleFreeOnOnePath(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixowndf", "fixowndf.go", `
package fixowndf

import "dibs/internal/packet"

func Drop(p *packet.Packet, logged bool) {
	if logged {
		packet.Free(p)
	}
	packet.Free(p)
}
`)
	assertRule(t, fs, "own-doublefree", 1)
}

func TestOwnDoubleFreeAfterStore(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixowndfstore", "fixowndfstore.go", `
package fixowndfstore

import "dibs/internal/packet"

type port struct {
	current *packet.Packet
}

// Storing the packet hands it to the port; freeing it afterwards releases
// a packet the function no longer owns.
func (o *port) Hold(p *packet.Packet) {
	o.current = p
	packet.Free(p)
}
`)
	assertRule(t, fs, "own-doublefree", 1)
}

func TestOwnDeferredFreeThenFreeIsDoubleFree(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixowndfdefer", "fixowndfdefer.go", `
package fixowndfdefer

import "dibs/internal/packet"

func Scoped(pool *packet.Pool, early bool) {
	p := pool.Get()
	defer packet.Free(p)
	if early {
		packet.Free(p)
	}
}
`)
	assertRule(t, fs, "own-doublefree", 1)
}

func TestOwnDeferredFreeAloneIsClean(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixowndeferok", "fixowndeferok.go", `
package fixowndeferok

import "dibs/internal/packet"

func Scoped(pool *packet.Pool) int {
	p := pool.Get()
	defer packet.Free(p)
	p.Hops++
	return p.Size()
}
`)
	assertRule(t, fs, "own-leak", 0)
	assertRule(t, fs, "own-doublefree", 0)
	assertRule(t, fs, "own-useafterfree", 0)
}

func TestOwnFreeInLoopIsDoubleFree(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixowndfloop", "fixowndfloop.go", `
package fixowndfloop

import "dibs/internal/packet"

// The same packet is released on every iteration: the back edge makes the
// second release reachable from the first.
func DrainWrong(p *packet.Packet, n int) {
	for i := 0; i < n; i++ {
		packet.Free(p)
	}
}
`)
	assertRule(t, fs, "own-doublefree", 1)
}

func TestOwnPerIterationBirthInLoopIsClean(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixownloopok", "fixownloopok.go", `
package fixownloopok

import "dibs/internal/packet"

func Burst(pool *packet.Pool, n int) {
	for i := 0; i < n; i++ {
		p := pool.Get()
		p.Hops++
		packet.Free(p)
	}
}
`)
	assertRule(t, fs, "own-leak", 0)
	assertRule(t, fs, "own-doublefree", 0)
}

// --- own-useafterfree ---

func TestOwnUseAfterFree(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixownuaf", "fixownuaf.go", `
package fixownuaf

import "dibs/internal/packet"

func Drop(p *packet.Packet) int {
	packet.Free(p)
	return p.Size()
}
`)
	assertRule(t, fs, "own-useafterfree", 1)
}

func TestOwnUseAfterFreeOnOnePathOnly(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixownuafpath", "fixownuafpath.go", `
package fixownuafpath

import "dibs/internal/packet"

type counters struct {
	bytes int
}

// The drop branch frees p, then both branches rejoin at the accounting
// line: the use is after-free on one path only.
func (c *counters) Account(p *packet.Packet, drop bool) {
	if drop {
		packet.Free(p)
	}
	c.bytes += p.Size()
}
`)
	assertRule(t, fs, "own-useafterfree", 1)
}

func TestOwnUseBeforeFreeIsClean(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixownuseok", "fixownuseok.go", `
package fixownuseok

import "dibs/internal/packet"

type counters struct {
	bytes int
}

func (c *counters) Drop(p *packet.Packet) {
	c.bytes += p.Size()
	packet.Free(p)
}
`)
	assertRule(t, fs, "own-useafterfree", 0)
}

// --- interprocedural summaries ---

// A helper whose body ends in packet.Free releases its argument from every
// caller's point of view, so the caller's paths are judged correctly.
func TestOwnTransitiveReleaseThroughHelper(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixowntrans", "fixowntrans.go", `
package fixowntrans

import "dibs/internal/packet"

type sw struct {
	drops int
}

func (s *sw) drop(p *packet.Packet) {
	s.drops++
	packet.Free(p)
}

// Bad: drop on one path, fall-through on the other.
func (s *sw) Receive(p *packet.Packet) {
	if p.TTL <= 0 {
		s.drop(p)
		return
	}
	p.Hops++
}

// AlsoBad: the helper released p, then the caller uses it.
func (s *sw) Audit(p *packet.Packet) int {
	s.drop(p)
	return p.Size()
}
`)
	assertRule(t, fs, "own-leak", 1)
	assertRule(t, fs, "own-useafterfree", 1)
}

// --- timer handles ---

func TestOwnTimerHandleDroppedOnOnePath(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixowntimer", "fixowntimer.go", `
package fixowntimer

import "dibs/internal/eventq"

type ep struct {
	rto eventq.Timer
}

// The bound handle is stored only when armed; the other path drops it and
// the endpoint can never cancel the timer.
func (e *ep) Arm(s *eventq.Scheduler, armed bool) {
	t := s.After(5*eventq.Microsecond, func() {})
	if armed {
		e.rto = t
	}
}
`)
	assertRule(t, fs, "own-leak", 1)
}

func TestOwnTimerFireAndForgetIsClean(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixowntimerok", "fixowntimerok.go", `
package fixowntimerok

import "dibs/internal/eventq"

type ep struct {
	rto eventq.Timer
}

func (e *ep) Arm(s *eventq.Scheduler) {
	// Unbound After is the sanctioned fire-and-forget idiom.
	s.After(5*eventq.Microsecond, func() {})
	// Binding and storing on every path is fine too.
	e.rto = s.After(9*eventq.Microsecond, func() {})
}

func (e *ep) Rearm(s *eventq.Scheduler) {
	t := s.After(5*eventq.Microsecond, func() {})
	t.Cancel()
}
`)
	assertRule(t, fs, "own-leak", 0)
}

// Timer handles routed through slot arrays — the timing-wheel pattern: a
// handle stored into a slot-indexed table is discharged (the table owns
// it), and a helper that performs the store is derived interprocedurally,
// while a slot-occupied path that silently drops the new handle leaks it.
func TestOwnTimerHandleThroughSlotArray(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixownslot", "fixownslot.go", `
package fixownslot

import "dibs/internal/eventq"

type table struct {
	slots [16]eventq.Timer
}

// place stores the handle into its slot; callers' handles are discharged
// interprocedurally via the derived stores-owned summary.
func (tb *table) place(i int, t eventq.Timer) {
	tb.slots[i] = t
}

// Arm stores directly into the slot array on one path and through the
// helper on the other: discharged everywhere, no findings.
func (tb *table) Arm(s *eventq.Scheduler, i int, direct bool) {
	t := s.After(5*eventq.Microsecond, func() {})
	if direct {
		tb.slots[i] = t
		return
	}
	tb.place(i, t)
}

// ArmLossy drops the fresh handle when the slot is occupied: the timer
// can never be canceled — a leak on that path.
func (tb *table) ArmLossy(s *eventq.Scheduler, i int) {
	t := s.After(5*eventq.Microsecond, func() {})
	if tb.slots[i].Pending() {
		return
	}
	tb.slots[i] = t
}
`)
	assertRule(t, fs, "own-leak", 1)
	for _, f := range fs {
		if f.Rule == "own-leak" && !strings.Contains(f.Msg, "timer handle t") {
			t.Errorf("slot-array leak should name the timer handle: %s", f.Msg)
		}
	}
}

// An annotated sink (a func-typed hand-off the summaries cannot derive)
// consumes the handle: //dibslint:owns on the declaration discharges the
// caller's path.
func TestOwnTimerAnnotatedSlotSink(t *testing.T) {
	fs := lintFixture(t, "dibs/internal/fixownslotx", "fixownslotx.go", `
package fixownslotx

import "dibs/internal/eventq"

type registry interface {
	//dibslint:owns the registry retains the handle until expiry
	Adopt(t eventq.Timer)
}

func Hand(s *eventq.Scheduler, r registry) {
	t := s.After(7*eventq.Microsecond, func() {})
	r.Adopt(t)
}
`)
	assertRule(t, fs, "own-leak", 0)
}

// --- perimeter ---

func TestOwnRulesOffOutsideSimPackages(t *testing.T) {
	fs := lintFixture(t, "dibs/cmd/fixowncmd", "fixowncmd.go", `
package fixowncmd

import "dibs/internal/packet"

func Probe(pool *packet.Pool, filtered bool) {
	p := pool.Get()
	if filtered {
		return
	}
	packet.Free(p)
}
`)
	assertRule(t, fs, "own-leak", 0)
}
