package packet

import (
	"strings"
	"testing"
)

// fill populates every simulation-visible field Snapshot carries, with
// values distinct from the zero value so a missed field shows up.
func fill(p *Packet) {
	p.Kind = Ack
	p.Flow = 7
	p.Src = 3
	p.Dst = 9
	p.Seq = 42
	p.PayloadBytes = 1460
	p.TTL = 12
	p.CE = true
	p.ECNEcho = true
	p.Priority = 5
	p.SentAt = 1000
	p.Rexmit = true
	p.Detours = 4
	p.Hops = 6
	p.Ingress = 2
}

// A shard crossing of a trace-attached packet: the snapshot must carry the
// header state but never the trace (tracing is rejected for sharded runs;
// the buffer stays with the source node), and the pools on both sides must
// balance — one return at the source, one borrow at the destination.
func TestWireRoundTripDropsTrace(t *testing.T) {
	src, dst := NewPool(), NewPool()
	p := src.Get()
	fill(p)
	p.AttachTrace()
	p.Trace = append(p.Trace, TraceHop{Node: 3, Port: 1}, TraceHop{Node: 5, Port: 2, Detoured: true})

	w := p.Snapshot()
	Free(p)

	q := dst.Get()
	w.Restore(q)
	if q.Trace != nil {
		t.Errorf("restored packet carries a trace: %v", q.Trace)
	}
	cmp := Packet{}
	fill(&cmp)
	if q.Kind != cmp.Kind || q.Flow != cmp.Flow || q.Src != cmp.Src || q.Dst != cmp.Dst ||
		q.Seq != cmp.Seq || q.PayloadBytes != cmp.PayloadBytes || q.TTL != cmp.TTL ||
		q.CE != cmp.CE || q.ECNEcho != cmp.ECNEcho || q.Priority != cmp.Priority ||
		q.SentAt != cmp.SentAt || q.Rexmit != cmp.Rexmit || q.Detours != cmp.Detours ||
		q.Hops != cmp.Hops || q.Ingress != cmp.Ingress {
		t.Errorf("restored packet %+v does not match source fields %+v", q, cmp)
	}
	if src.Borrowed() != 1 || src.Returned() != 1 || src.Live() != 0 {
		t.Errorf("source pool out of balance: borrowed=%d returned=%d", src.Borrowed(), src.Returned())
	}
	if dst.Borrowed() != 1 || dst.Returned() != 0 || dst.Live() != 1 {
		t.Errorf("destination pool out of balance: borrowed=%d returned=%d", dst.Borrowed(), dst.Returned())
	}
	Free(q)
	if dst.Live() != 0 {
		t.Errorf("destination pool leaked after final free: %d live", dst.Live())
	}
}

// A zero-payload control packet (pure ACK) survives the crossing: all-zero
// optional fields stay zero rather than inheriting destination-node junk.
func TestWireZeroPayloadRoundTrip(t *testing.T) {
	src, dst := NewPool(), NewPool()
	p := src.Get()
	p.Kind = Ack
	p.Flow = 1
	p.PayloadBytes = 0

	w := p.Snapshot()
	Free(p)

	q := dst.Get()
	q.PayloadBytes = 999 // destination-node junk a reset must overwrite
	q.Detours = 3
	w.Restore(q)
	if q.PayloadBytes != 0 || q.Detours != 0 || q.Kind != Ack || q.Flow != 1 {
		t.Errorf("zero-payload restore: %+v", q)
	}
	Free(q)
}

// Restoring into a node that is sitting in a freelist is a double
// adoption: the pool still owns the node, and the write would corrupt the
// next borrower. StrictFree (on in test binaries) must catch it.
func TestWireRestoreIntoFreedNodePanics(t *testing.T) {
	if !StrictFree {
		t.Skip("StrictFree disabled")
	}
	pool := NewPool()
	p := pool.Get()
	fill(p)
	w := p.Snapshot()
	Free(p) // p is back in the freelist; the pool owns it again

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Restore into a pooled node did not panic under StrictFree")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "Restore into pooled node") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	w.Restore(p)
}
