package packet

import (
	"strings"
	"testing"
)

func TestPoolBorrowReturnRecycles(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	if p == nil || p.pool != pl {
		t.Fatal("Get returned packet without pool backpointer")
	}
	p.Kind = Ack
	p.Seq = 99
	pl.Put(p)
	q := pl.Get()
	if q != p {
		t.Fatal("freelist did not recycle the returned node")
	}
	if q.Kind != Data || q.Seq != 0 || q.Pooled() {
		t.Fatalf("recycled packet not zeroed: %+v", q)
	}
	if pl.Borrowed() != 2 || pl.Returned() != 1 || pl.Live() != 1 {
		t.Fatalf("counters: borrowed=%d returned=%d live=%d", pl.Borrowed(), pl.Returned(), pl.Live())
	}
}

func TestPoolGenerationDetectsRecycle(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	gen := p.Gen()
	pl.Put(p)
	if p.Gen() != gen+1 {
		t.Fatalf("Put did not bump gen: %d -> %d", gen, p.Gen())
	}
	q := pl.Get()
	if q != p {
		t.Fatal("expected node reuse")
	}
	// A holder that recorded (p, gen) at the first borrow can now tell the
	// node was recycled under it.
	if q.Gen() == gen {
		t.Fatal("recycled node has stale generation")
	}
}

func TestPoolDoubleReturnPanics(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	pl.Put(p)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double Put did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "double return") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	pl.Put(p)
}

func TestPoolCrossPoolPutPanics(t *testing.T) {
	a, b := NewPool(), NewPool()
	p := a.Get()
	defer func() {
		if recover() == nil {
			t.Fatal("cross-pool Put did not panic")
		}
	}()
	b.Put(p)
}

func TestPoolLeakedNamesOutstanding(t *testing.T) {
	pl := NewPool()
	kept := pl.Get()
	kept.Flow = 42
	kept.Kind = Data
	done := pl.Get()
	pl.Put(done)
	leaked := pl.Leaked()
	if len(leaked) != 1 || leaked[0] != kept {
		t.Fatalf("Leaked() = %v, want exactly the kept packet", leaked)
	}
	if leaked[0].Flow != 42 {
		t.Fatalf("leaked packet lost identity: %+v", leaked[0])
	}
}

func TestFreeNilIsNoOp(t *testing.T) {
	Free(nil) // nil stays a no-op even under StrictFree
}

func TestStrictFreePanicsOnNonPooled(t *testing.T) {
	if !StrictFree {
		t.Fatal("StrictFree must default to on in test binaries")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Free of a composite-literal packet must panic under StrictFree")
		}
		if !strings.Contains(r.(string), "non-pooled") {
			t.Fatalf("panic message should name the cause: %v", r)
		}
	}()
	Free(&Packet{Kind: Data, Flow: 7})
}

func TestFreeIgnoresNonPooledWhenLenient(t *testing.T) {
	StrictFree = false
	defer func() { StrictFree = true }()
	Free(&Packet{Kind: Data, Flow: 7}) // composite-literal packet: no-op
}

func TestPoolTraceBufferRecycled(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	p.AttachTrace()
	p.Trace = append(p.Trace, TraceHop{Node: 3, Port: 1})
	buf := p.Trace[:0]
	pl.Put(p)
	q := pl.Get()
	if q.Trace != nil {
		t.Fatal("Trace survived recycle; tracing-off signal broken")
	}
	q.AttachTrace()
	if len(q.Trace) != 0 || cap(q.Trace) == 0 {
		t.Fatalf("AttachTrace did not reuse storage: len=%d cap=%d", len(q.Trace), cap(q.Trace))
	}
	_ = buf
}

func TestPoolSteadyStateAllocFree(t *testing.T) {
	pl := NewPool()
	// Warm up: one node in the freelist.
	pl.Put(pl.Get())
	n := testing.AllocsPerRun(1000, func() {
		p := pl.Get()
		p.PayloadBytes = DefaultMSS
		pl.Put(p)
	})
	if n != 0 {
		t.Fatalf("steady-state borrow/return allocates %v per op, want 0", n)
	}
}

func TestCloneIsNotPoolManaged(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	p.Flow = 5
	c := p.Clone()
	if c.pool != nil || c.Pooled() || c.Gen() != 0 {
		t.Fatalf("clone carries pool bookkeeping: %+v", c)
	}
	// Clones are deliberately outside pool custody; with StrictFree
	// relaxed, freeing one must not return the original's node.
	StrictFree = false
	Free(c)
	StrictFree = true
	if pl.Returned() != 0 {
		t.Fatal("freeing a clone returned the original's node")
	}
	pl.Put(p)
}
