package packet

import "fmt"

// Wire is a value-type snapshot of a Packet's simulation-visible fields,
// the form in which a packet crosses a shard boundary in the sharded PDES
// engine. The pooled node itself never travels: the sending shard snapshots
// the packet and returns the node to its own arena, and the receiving shard
// borrows a node from *its* arena and restores the snapshot — so arena
// custody stays shard-local, StrictFree holds, and the dibslint ownership
// rules keep proving the discipline on both sides of the hand-off.
//
// Trace is deliberately absent: packet tracing shares an append-only buffer
// across the run and is rejected by Config.Validate for sharded runs.
//
//dibslint:confined immutable a pointer-free value copy; safe to cross shards by value
type Wire struct {
	Kind         Kind
	Flow         FlowID
	Src          NodeID
	Dst          NodeID
	Seq          int64
	PayloadBytes int
	TTL          int
	CE           bool
	ECNEcho      bool
	Priority     int64
	SentAt       int64
	Rexmit       bool
	Detours      int
	Hops         int
	Ingress      int
}

// Snapshot captures p's simulation-visible state for a shard crossing.
//
//dibslint:confined shard called by the emitting worker; the node must return to the source arena before the snapshot is emitted
func (p *Packet) Snapshot() Wire {
	return Wire{
		Kind:         p.Kind,
		Flow:         p.Flow,
		Src:          p.Src,
		Dst:          p.Dst,
		Seq:          p.Seq,
		PayloadBytes: p.PayloadBytes,
		TTL:          p.TTL,
		CE:           p.CE,
		ECNEcho:      p.ECNEcho,
		Priority:     p.Priority,
		SentAt:       p.SentAt,
		Rexmit:       p.Rexmit,
		Detours:      p.Detours,
		Hops:         p.Hops,
		Ingress:      p.Ingress,
	}
}

// Restore writes the snapshot into a freshly borrowed pooled node (whose
// pool bookkeeping Get already reset), completing the custody transfer on
// the receiving shard. Under StrictFree, restoring into a node that is
// sitting in a freelist (a double adoption, or a stale alias of a freed
// node) panics: the node belongs to the pool, and writing into it would
// corrupt whatever borrows it next.
//
//dibslint:confined shard called by the destination worker on a node freshly adopted from its own arena
func (w Wire) Restore(p *Packet) {
	if p.pooled && StrictFree {
		panic(fmt.Sprintf("packet: Restore into pooled node %s (gen %d); adopt with Pool.Get before restoring", p, p.gen))
	}
	p.Kind = w.Kind
	p.Flow = w.Flow
	p.Src = w.Src
	p.Dst = w.Dst
	p.Seq = w.Seq
	p.PayloadBytes = w.PayloadBytes
	p.TTL = w.TTL
	p.CE = w.CE
	p.ECNEcho = w.ECNEcho
	p.Priority = w.Priority
	p.SentAt = w.SentAt
	p.Rexmit = w.Rexmit
	p.Detours = w.Detours
	p.Hops = w.Hops
	p.Ingress = w.Ingress
}
