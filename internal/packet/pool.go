package packet

import (
	"fmt"
	"testing"
)

// StrictFree makes Free panic on a packet that has no owning pool instead
// of silently no-op'ing. Composite-literal packets are a test convenience;
// in a real run every packet reaching a terminal path (drop, delivery,
// eviction) must have come from a pool, and a silent no-op hides exactly
// the accounting bugs the conservation checks exist to catch. It defaults
// to on under `go test` so literal packets that reach a terminal path fail
// loudly; tests that intentionally use literals flip it off around the
// injection (see pool_test.go).
var StrictFree = testing.Testing()

// Pool is a per-simulation packet arena: a freelist of Packet values with
// generation-counted borrow/return semantics, mirroring the event-node
// freelist in internal/eventq. A packet is heap-allocated at most once and
// recycled when it reaches any terminal path (delivered to a host, dropped,
// TTL-expired, evicted, refused by a NIC), so a steady-state run allocates
// no new packets.
//
// Ownership is linear: exactly one component owns a borrowed packet at any
// instant (a transport endpoint, an output queue, a VOQ, a link in flight,
// or a host demultiplexer), and the owner either hands it on whole or
// returns it with Free. The pool is not safe for concurrent use: each
// scheduler shard owns its own pool (a packet crossing shards is freed
// into the source arena and re-borrowed from the destination's), and
// run-level parallelism uses one pool per run.
type Pool struct {
	free []*Packet
	// all retains every node ever created, so leak checks can name the
	// packets still outstanding. Its length equals the peak live count,
	// not the packet total: recycled nodes are reused, not re-added.
	all []*Packet
	// block is the tail of the current allocation block: nodes are carved
	// from it in bulk so a growing simulation pays one allocation per
	// blockSize packets of peak live count, not one per packet.
	block []Packet

	borrowed uint64
	returned uint64
}

// blockSize is how many packet nodes one arena growth step allocates.
const blockSize = 64

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get borrows a zeroed packet from the pool. The caller owns it until it is
// handed to another component or returned with Free.
func (pl *Pool) Get() *Packet {
	var p *Packet
	if n := len(pl.free); n > 0 {
		p = pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		// Preserve pool bookkeeping and the recycled trace buffer; clear
		// every wire/bookkeeping field.
		*p = Packet{pool: pl, gen: p.gen, traceBuf: p.traceBuf}
	} else {
		if len(pl.block) == 0 {
			pl.block = make([]Packet, blockSize)
		}
		p = &pl.block[0]
		pl.block = pl.block[1:]
		p.pool = pl
		pl.all = append(pl.all, p)
	}
	pl.borrowed++
	return p
}

// Put returns p to the pool. The packet's generation counter is bumped, so
// any holder that kept the (packet, generation) pair can detect staleness;
// returning the same borrow twice panics with the packet's identity, since
// a double return would silently free some other owner's packet after the
// node is recycled.
func (pl *Pool) Put(p *Packet) {
	if p.pool != pl {
		panic("packet: Put of a packet from a different pool")
	}
	if p.pooled {
		panic(fmt.Sprintf("packet: double return of %s (gen %d)", p, p.gen))
	}
	p.pooled = true
	p.gen++
	if p.Trace != nil {
		// Keep the trace storage with the node so re-tracing a recycled
		// packet does not reallocate; Trace==nil is the "tracing off"
		// signal, so it must not survive into the next borrow.
		p.traceBuf = p.Trace[:0]
		p.Trace = nil
	}
	pl.returned++
	pl.free = append(pl.free, p)
}

// Borrowed returns the total number of Get calls.
func (pl *Pool) Borrowed() uint64 { return pl.borrowed }

// Returned returns the total number of Put calls.
func (pl *Pool) Returned() uint64 { return pl.returned }

// Live returns the number of packets currently borrowed and not returned.
func (pl *Pool) Live() int { return int(pl.borrowed - pl.returned) }

// Leaked returns the packets currently outstanding, so conservation tests
// can name the offending flow and kind. Order is allocation order.
func (pl *Pool) Leaked() []*Packet {
	var out []*Packet
	for _, p := range pl.all {
		if !p.pooled {
			out = append(out, p)
		}
	}
	return out
}

// Free returns p to its owning pool. It is the terminal-path hook used by
// switches and hosts. Packets built as plain composite literals have no
// pool: under StrictFree (the default in test binaries) they panic here,
// otherwise they pass through as a no-op and remain ordinary
// garbage-collected values.
func Free(p *Packet) {
	if p == nil {
		return
	}
	if p.pool == nil {
		if StrictFree {
			panic(fmt.Sprintf("packet: Free of non-pooled packet %s (composite literal reached a terminal path; borrow from a Pool or clear packet.StrictFree)", p))
		}
		return
	}
	p.pool.Put(p)
}
