// Package packet defines the on-wire unit the simulator moves around: TCP
// data segments and ACKs with the header fields the DIBS evaluation needs
// (ECN bits, TTL, pFabric priority) plus bookkeeping counters (detours,
// hops) used by the metrics layer.
package packet

import "fmt"

// NodeID identifies a node (host or switch) in the topology. IDs are dense,
// assigned by the topology builder.
type NodeID int32

// None is the zero-value "no node" sentinel.
const None NodeID = -1

// FlowID identifies a transport flow (one direction of a connection).
type FlowID int64

// Kind distinguishes packet types.
type Kind uint8

const (
	// Data carries payload bytes of a flow.
	Data Kind = iota
	// Ack acknowledges received data cumulatively.
	Ack
)

func (k Kind) String() string {
	switch k {
	case Data:
		return "DATA"
	case Ack:
		return "ACK"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Header sizes and defaults, in bytes.
const (
	// HeaderBytes is the combined IP+TCP header size.
	HeaderBytes = 40
	// DefaultMTU is the maximum packet size including headers.
	DefaultMTU = 1500
	// DefaultMSS is the maximum payload per data segment.
	DefaultMSS = DefaultMTU - HeaderBytes
	// AckBytes is the wire size of a pure ACK.
	AckBytes = HeaderBytes
	// DefaultTTL is the initial IP TTL (paper §5.5.3 varies 12..255).
	DefaultTTL = 255
)

// TraceHop records one switch-level forwarding decision for path tracing
// (paper Figures 1 and 2). Recorded only when tracing is enabled.
type TraceHop struct {
	Node     NodeID
	Port     int
	Detoured bool
}

// Packet is a single segment in flight. Simulation packets are borrowed
// from a per-run Pool and recycled on every terminal path; tests may still
// build them as plain composite literals (such packets have no pool and
// Free ignores them). The simulator is single-threaded so no
// synchronization is needed.
type Packet struct {
	Kind Kind
	Flow FlowID
	Src  NodeID
	Dst  NodeID

	// Seq is the byte offset of the first payload byte (Data) or the
	// cumulative ACK offset (Ack).
	Seq int64
	// PayloadBytes is the number of payload bytes carried (Data only).
	PayloadBytes int
	// TTL is decremented at every switch; the packet is dropped at zero.
	TTL int

	// CE is the ECN Congestion Experienced codepoint, set by switches when
	// the queue exceeds the marking threshold or when the packet is
	// detoured (paper §5.3: "The detoured packets are also marked").
	CE bool
	// ECNEcho on an ACK echoes the CE bit of the data segment it acks.
	ECNEcho bool

	// Priority is the pFabric priority: remaining flow size in bytes at
	// send time. Lower value = higher priority. Zero for non-pFabric runs.
	Priority int64

	// SentAt is the virtual time the transport first emitted this segment
	// (nanoseconds); used for RTT sampling.
	SentAt int64
	// Rexmit marks retransmitted segments (excluded from RTT sampling).
	Rexmit bool

	// Detours counts DIBS detour decisions applied to this packet.
	Detours int
	// Hops counts switch traversals.
	Hops int

	// Ingress is switch-local scratch: the input port this packet arrived
	// on at the switch currently buffering it. Ethernet flow control (PFC)
	// uses it for per-ingress buffer accounting; it is rewritten at every
	// hop and meaningless elsewhere.
	Ingress int

	// Trace, when non-nil, accumulates the forwarding path.
	Trace []TraceHop

	// Pool bookkeeping (see pool.go). pool is nil for packets built as
	// composite literals; gen counts recycles so stale holders are
	// detectable; pooled marks a node sitting in the freelist; traceBuf
	// retains trace storage across recycles.
	pool     *Pool
	gen      uint32
	pooled   bool
	traceBuf []TraceHop
}

// Gen returns the packet's generation counter. It is bumped every time the
// packet is returned to its pool, so a component that records (packet, Gen)
// at borrow time can detect use-after-return: a mismatch means the node was
// recycled under it.
func (p *Packet) Gen() uint32 { return p.gen }

// Pooled reports whether the packet currently sits in its pool's freelist
// (i.e. it has been returned and must not be used).
func (p *Packet) Pooled() bool { return p.pooled }

// AttachTrace enables path tracing on the packet, reusing the node's
// retained trace storage when it has been traced before.
func (p *Packet) AttachTrace() {
	if p.traceBuf != nil {
		p.Trace = p.traceBuf[:0]
		return
	}
	p.Trace = make([]TraceHop, 0, 16)
}

// Size returns the wire size of the packet in bytes.
func (p *Packet) Size() int {
	if p.Kind == Ack {
		return AckBytes
	}
	return HeaderBytes + p.PayloadBytes
}

// End returns the byte offset just past this segment's payload.
func (p *Packet) End() int64 { return p.Seq + int64(p.PayloadBytes) }

// String formats a compact human-readable description for traces and tests.
func (p *Packet) String() string {
	return fmt.Sprintf("%s flow=%d %d->%d seq=%d len=%d ttl=%d ce=%v det=%d",
		p.Kind, p.Flow, p.Src, p.Dst, p.Seq, p.PayloadBytes, p.TTL, p.CE, p.Detours)
}

// Clone returns a deep copy of the packet (trace excluded). The copy is
// not pool-managed — it carries no pool bookkeeping, so freeing it is a
// no-op and it cannot shadow the original in leak accounting. Used by
// tests and by retransmission paths that must not alias the original.
func (p *Packet) Clone() *Packet {
	q := *p
	q.Trace = nil
	q.pool = nil
	q.gen = 0
	q.pooled = false
	q.traceBuf = nil
	return &q
}
