package packet

import (
	"testing"
	"testing/quick"
)

func TestSizes(t *testing.T) {
	d := &Packet{Kind: Data, PayloadBytes: DefaultMSS}
	if d.Size() != DefaultMTU {
		t.Fatalf("full data segment size = %d, want %d", d.Size(), DefaultMTU)
	}
	a := &Packet{Kind: Ack, PayloadBytes: 9999} // payload ignored for ACKs
	if a.Size() != AckBytes {
		t.Fatalf("ack size = %d, want %d", a.Size(), AckBytes)
	}
	small := &Packet{Kind: Data, PayloadBytes: 1}
	if small.Size() != HeaderBytes+1 {
		t.Fatalf("1-byte data size = %d", small.Size())
	}
}

func TestEnd(t *testing.T) {
	p := &Packet{Kind: Data, Seq: 1000, PayloadBytes: 500}
	if p.End() != 1500 {
		t.Fatalf("End = %d", p.End())
	}
}

func TestKindString(t *testing.T) {
	if Data.String() != "DATA" || Ack.String() != "ACK" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(7).String() != "Kind(7)" {
		t.Fatalf("unknown kind: %s", Kind(7).String())
	}
}

func TestString(t *testing.T) {
	p := &Packet{Kind: Data, Flow: 3, Src: 1, Dst: 2, Seq: 0, PayloadBytes: 100, TTL: 64}
	s := p.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestClone(t *testing.T) {
	p := &Packet{Kind: Data, Flow: 5, Seq: 10, PayloadBytes: 20, TTL: 64,
		Trace: []TraceHop{{Node: 1, Port: 2}}}
	q := p.Clone()
	if q.Trace != nil {
		t.Fatal("Clone should drop trace")
	}
	q.Seq = 99
	if p.Seq != 10 {
		t.Fatal("Clone aliases original")
	}
	if q.Flow != p.Flow || q.PayloadBytes != p.PayloadBytes || q.TTL != p.TTL {
		t.Fatal("Clone lost fields")
	}
}

// Property: Size is always header-bounded and End-Seq equals payload.
func TestQuickSizeInvariants(t *testing.T) {
	f := func(payload uint16, seq uint32, isAck bool) bool {
		k := Data
		if isAck {
			k = Ack
		}
		p := &Packet{Kind: k, Seq: int64(seq), PayloadBytes: int(payload)}
		if p.End()-p.Seq != int64(p.PayloadBytes) {
			return false
		}
		if isAck {
			return p.Size() == AckBytes
		}
		return p.Size() == HeaderBytes+int(payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
