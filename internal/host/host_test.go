package host

import (
	"testing"

	"dibs/internal/eventq"
	"dibs/internal/packet"
	"dibs/internal/queue"
	"dibs/internal/switching"
	"dibs/internal/transport"
)

type capture struct{ pkts []*packet.Packet }

func (c *capture) Receive(p *packet.Packet, port int) { c.pkts = append(c.pkts, p) }

func newHost(sched *eventq.Scheduler, qcap int) (*Host, *capture) {
	h := New(5)
	c := &capture{}
	h.NIC = switching.NewOutPort(sched, queue.NewDropTail(qcap, 0), 1_000_000_000, 0, c, 0)
	return h, c
}

func TestSendForwardsToNIC(t *testing.T) {
	sched := eventq.NewScheduler()
	h, c := newHost(sched, 10)
	h.Send(&packet.Packet{Kind: packet.Data, Flow: 1, PayloadBytes: 100})
	sched.Run()
	if len(c.pkts) != 1 {
		t.Fatal("packet not transmitted")
	}
	if h.NICDrops != 0 {
		t.Fatal("spurious NIC drop")
	}
}

func TestNICDropCounting(t *testing.T) {
	sched := eventq.NewScheduler()
	h, _ := newHost(sched, 1)
	// Refused packets hit a terminal path (Free), so they must be pooled:
	// StrictFree turns a literal here into a panic.
	pl := packet.NewPool()
	for i := 0; i < 5; i++ {
		p := pl.Get()
		p.Kind = packet.Data
		p.Flow = 1
		p.PayloadBytes = 1460
		h.Send(p)
	}
	// 1 transmitting + 1 queued = 2 accepted, 3 dropped.
	if h.NICDrops != 3 {
		t.Fatalf("NIC drops = %d, want 3", h.NICDrops)
	}
	if pl.Returned() != 3 {
		t.Fatalf("dropped packets returned to pool = %d, want 3", pl.Returned())
	}
	sched.Run()
}

func TestTraceSampling(t *testing.T) {
	sched := eventq.NewScheduler()
	h, _ := newHost(sched, 100)
	n := 0
	h.TracePacket = func(p *packet.Packet) bool {
		n++
		return n%2 == 0
	}
	p1 := &packet.Packet{Kind: packet.Data, PayloadBytes: 10}
	p2 := &packet.Packet{Kind: packet.Data, PayloadBytes: 10}
	ack := &packet.Packet{Kind: packet.Ack}
	h.Send(p1)
	h.Send(p2)
	h.Send(ack)
	if p1.Trace != nil || p2.Trace == nil {
		t.Fatal("trace sampling stride broken")
	}
	if ack.Trace != nil {
		t.Fatal("ACKs must not be trace-sampled")
	}
	sched.Run()
}

func TestReceiveDemux(t *testing.T) {
	sched := eventq.NewScheduler()
	h, _ := newHost(sched, 100)
	cfg := transport.DefaultConfig(transport.DCTCP)
	// Delivery is a terminal path (Host.Receive frees), so every injected
	// packet must come from a pool under StrictFree.
	pl := packet.NewPool()
	inject := func(kind packet.Kind, flow packet.FlowID, seq int64, payload int) *packet.Packet {
		p := pl.Get()
		p.Kind = kind
		p.Flow = flow
		p.Seq = seq
		p.PayloadBytes = payload
		return p
	}

	var acksSeen []*packet.Packet
	env := transport.Env{Sched: sched, Emit: func(p *packet.Packet) { acksSeen = append(acksSeen, p) }}
	rcv := transport.NewReceiver(env, cfg, 7, 5, 1460)
	h.AddReceiver(rcv)

	delivered := 0
	h.OnDeliver = func(p *packet.Packet) { delivered++ }

	// Data for the registered flow reaches the receiver (which ACKs).
	h.Receive(inject(packet.Data, 7, 0, 1460), 0)
	if len(acksSeen) != 1 {
		t.Fatal("receiver did not process data")
	}
	if !rcv.Done() {
		t.Fatal("receiver should be complete")
	}
	// Data for an unknown flow is observed but harmless.
	h.Receive(inject(packet.Data, 99, 0, 10), 0)
	if delivered != 2 {
		t.Fatalf("OnDeliver saw %d packets, want 2", delivered)
	}

	// ACK demux to a sender.
	sndEnv := transport.Env{Sched: sched, Emit: func(p *packet.Packet) {}}
	snd := transport.NewSender(sndEnv, cfg, 8, 5, 6, 1460)
	snd.Start()
	h.AddSender(snd)
	h.Receive(inject(packet.Ack, 8, 1460, 0), 0)
	if !snd.Done() {
		t.Fatal("sender did not process ACK")
	}
	sched.Run()
}

func TestFlowRegistryLifecycle(t *testing.T) {
	sched := eventq.NewScheduler()
	h, _ := newHost(sched, 100)
	cfg := transport.DefaultConfig(transport.DCTCP)
	env := transport.Env{Sched: sched, Emit: func(p *packet.Packet) {}}
	h.AddSender(transport.NewSender(env, cfg, 1, 5, 6, 100))
	h.AddReceiver(transport.NewReceiver(env, cfg, 2, 5, 100))
	if h.ActiveFlows() != 2 {
		t.Fatalf("active = %d", h.ActiveFlows())
	}
	h.RemoveSender(1)
	h.RemoveReceiver(2)
	if h.ActiveFlows() != 0 {
		t.Fatalf("active after removal = %d", h.ActiveFlows())
	}
	// Removing unknown flows is a no-op.
	h.RemoveSender(42)
	h.RemoveReceiver(42)
}
