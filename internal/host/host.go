// Package host models end hosts: a NIC output port plus the demultiplexing
// of arriving packets to transport endpoints. Hosts never forward transit
// traffic (the reason DIBS must not detour to host ports).
package host

import (
	"dibs/internal/packet"
	"dibs/internal/switching"
	"dibs/internal/transport"
)

// Host is one end host.
type Host struct {
	ID packet.NodeID
	// NIC is the host's single output port toward its edge switch.
	NIC *switching.OutPort

	senders   map[packet.FlowID]*transport.Sender
	receivers map[packet.FlowID]*transport.Receiver

	// sendFn is Send bound once at Init: every flow's transport.Env wants
	// an emit func, and taking the method value per flow would allocate a
	// fresh binding each time.
	sendFn func(p *packet.Packet)

	// OnDeliver, when set, observes every packet arriving at this host
	// (metrics). Called before demultiplexing.
	OnDeliver func(p *packet.Packet)
	// TracePacket, when set, is consulted per emitted data packet; true
	// attaches an empty path trace that switches will fill (Figure 1).
	TracePacket func(p *packet.Packet) bool

	// NICDrops counts packets refused by the NIC queue (should stay 0
	// with a reasonably sized host queue).
	NICDrops uint64
}

// New creates a host. The NIC must be wired by the network builder.
func New(id packet.NodeID) *Host { return new(Host).Init(id) }

// Init prepares h — allocated by the caller, typically as one element of an
// en-bloc slice covering every host in the topology — as the host with the
// given id. Endpoint maps are allocated lazily on first Add*, so hosts that
// only ever forward NIC traffic (or never see a flow at all) cost no map
// allocations; Receive tolerates the nil maps (lookups on a nil map are
// defined and miss).
func (h *Host) Init(id packet.NodeID) *Host {
	h.ID = id
	h.sendFn = h.Send
	return h
}

// SendFn returns Send bound once at Init (see sendFn).
func (h *Host) SendFn() func(p *packet.Packet) { return h.sendFn }

// Send enqueues a locally generated packet on the NIC. A refused packet is
// a terminal path: the host counts it and returns it to the pool.
func (h *Host) Send(p *packet.Packet) {
	if p.Kind == packet.Data && h.TracePacket != nil && h.TracePacket(p) {
		p.AttachTrace()
	}
	if r := h.NIC.Enqueue(p); !r.Accepted {
		h.NICDrops++
		packet.Free(p)
	}
}

// Receive implements switching.Handler: demultiplex to the flow endpoint.
// Delivery is a terminal path — the endpoints and hooks read the packet but
// never retain it, so it goes back to the pool afterwards.
func (h *Host) Receive(p *packet.Packet, port int) {
	if h.OnDeliver != nil {
		h.OnDeliver(p)
	}
	switch p.Kind {
	case packet.Data:
		if r := h.receivers[p.Flow]; r != nil {
			r.OnData(p)
		}
	case packet.Ack:
		if s := h.senders[p.Flow]; s != nil {
			s.OnAck(p)
		}
	}
	packet.Free(p)
}

// AddSender registers the sending endpoint of a flow originating here.
func (h *Host) AddSender(s *transport.Sender) {
	if h.senders == nil {
		h.senders = make(map[packet.FlowID]*transport.Sender)
	}
	h.senders[s.Flow] = s
}

// AddReceiver registers the receiving endpoint of a flow terminating here.
func (h *Host) AddReceiver(r *transport.Receiver) {
	if h.receivers == nil {
		h.receivers = make(map[packet.FlowID]*transport.Receiver)
	}
	h.receivers[r.Flow] = r
}

// RemoveSender unregisters a completed flow's sender.
func (h *Host) RemoveSender(flow packet.FlowID) { delete(h.senders, flow) }

// RemoveReceiver unregisters a completed flow's receiver.
func (h *Host) RemoveReceiver(flow packet.FlowID) { delete(h.receivers, flow) }

// ActiveFlows returns the number of registered endpoints (senders +
// receivers), for tests and leak checks.
func (h *Host) ActiveFlows() int { return len(h.senders) + len(h.receivers) }
