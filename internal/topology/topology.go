// Package topology models data center network topologies as graphs of hosts
// and switches joined by full-duplex links, and computes shortest-path
// forwarding tables (FIBs) with ECMP next-hop sets.
//
// Builders are provided for the topologies in the DIBS paper: the K-ary
// fat-tree used for the NS-3 simulations (§5.3), the small Click/Emulab
// testbed tree (§5.2), and — for the §7 discussion of detouring on other
// topologies — JellyFish, HyperX and a linear chain.
package topology

import (
	"fmt"
	"strconv"

	"dibs/internal/eventq"
	"dibs/internal/packet"
	"dibs/internal/rng"
)

// NodeKind distinguishes hosts from switches.
type NodeKind uint8

const (
	// Host is an end host: single NIC, runs transport endpoints.
	Host NodeKind = iota
	// Switch forwards packets between its ports.
	Switch
)

func (k NodeKind) String() string {
	if k == Host {
		return "host"
	}
	return "switch"
}

// Layer identifies a switch's layer in layered topologies (fat-tree, Click
// testbed). Non-layered topologies use LayerNone.
type Layer uint8

const (
	LayerNone Layer = iota
	LayerEdge
	LayerAggr
	LayerCore
)

func (l Layer) String() string {
	switch l {
	case LayerEdge:
		return "edge"
	case LayerAggr:
		return "aggr"
	case LayerCore:
		return "core"
	default:
		return "none"
	}
}

// Node is a vertex of the topology.
type Node struct {
	ID    packet.NodeID
	Kind  NodeKind
	Name  string
	Layer Layer
	Pod   int // pod index in fat-tree; -1 elsewhere
}

// Port describes one direction of attachment of a node to a link.
type Port struct {
	Peer     packet.NodeID // node on the other end
	PeerPort int           // port index at the peer
	RateBps  int64         // link bandwidth in bits/second (per direction)
	Delay    eventq.Time   // one-way propagation delay
}

// Topology is an immutable graph plus the derived routing state.
type Topology struct {
	Name  string
	nodes []Node
	ports [][]Port // ports[node][port]

	hosts    []packet.NodeID // all host node IDs, in construction order
	switches []packet.NodeID
	// hostIdx maps NodeID -> dense host index (-1 for switches). NodeIDs
	// are dense, so a flat slice replaces the former map: NextHops is on
	// the per-hop hot path and the map lookup dominated its cost.
	hostIdx []int32

	hostPortMask []uint64 // per node: bitmap of ports that face a host

	// The FIB and distance tables are flat, host-major arrays rather than
	// per-(node,host) slices: a K=8 fat-tree has 208 nodes × 128 hosts =
	// 26k entries, and building one simulator per benchmark iteration made
	// those little slices the single largest allocation source in the
	// whole run. Entry (node, hostIdx) lives at hostIdx*numNodes+node.
	//
	// fibDat holds every ECMP next-hop set back to back; entry i spans
	// fibDat[fibOff[i]:fibOff[i+1]].
	fibOff []int32
	fibDat []uint8
	// dist holds hop distance (switch hops + final host link), -1 when
	// unreachable.
	dist []int16
}

// builder accumulates nodes and links before Finalize.
type builder struct {
	name  string
	nodes []Node
	ports [][]Port
}

func newBuilder(name string) *builder {
	return &builder{name: name}
}

// name2/name3/name4 build "prefix<i>[-<j>[-<k>]]" node names without fmt:
// node naming was the last Sprintf on the Build hot path, and
// strconv.Itoa's small-int fast path makes each name a single string
// allocation instead of Sprintf's argument boxing plus formatting.
func name2(prefix string, i int) string { return prefix + strconv.Itoa(i) }
func name3(prefix string, i, j int) string {
	return prefix + strconv.Itoa(i) + "-" + strconv.Itoa(j)
}
func name4(prefix string, i, j, k int) string {
	return prefix + strconv.Itoa(i) + "-" + strconv.Itoa(j) + "-" + strconv.Itoa(k)
}

func (b *builder) addNode(kind NodeKind, name string, layer Layer, pod int) packet.NodeID {
	id := packet.NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{ID: id, Kind: kind, Name: name, Layer: layer, Pod: pod})
	b.ports = append(b.ports, nil)
	return id
}

// reserve pre-allocates id's port slice for n links, replacing the
// 1->2->4->... append walk a degree-n switch would otherwise pay.
func (b *builder) reserve(id packet.NodeID, n int) {
	if cap(b.ports[id]) < n {
		b.ports[id] = make([]Port, 0, n)
	}
}

// link connects a and b with a bidirectional link. Port indices are assigned
// in call order.
func (b *builder) link(a, bb packet.NodeID, rateBps int64, delay eventq.Time) {
	ap := len(b.ports[a])
	bp := len(b.ports[bb])
	b.ports[a] = append(b.ports[a], Port{Peer: bb, PeerPort: bp, RateBps: rateBps, Delay: delay})
	b.ports[bb] = append(b.ports[bb], Port{Peer: a, PeerPort: ap, RateBps: rateBps, Delay: delay})
}

// finalize freezes the graph and computes routing tables.
func (b *builder) finalize() *Topology {
	t := &Topology{
		Name:    b.name,
		nodes:   b.nodes,
		ports:   b.ports,
		hostIdx: make([]int32, len(b.nodes)),
	}
	for i := range t.hostIdx {
		t.hostIdx[i] = -1
	}
	for _, n := range b.nodes {
		if n.Kind == Host {
			t.hostIdx[n.ID] = int32(len(t.hosts))
			t.hosts = append(t.hosts, n.ID)
		} else {
			t.switches = append(t.switches, n.ID)
		}
	}
	t.hostPortMask = make([]uint64, len(t.nodes))
	for id, ports := range t.ports {
		if len(ports) > 64 {
			panic(fmt.Sprintf("topology: node %d has %d ports; max 64", id, len(ports)))
		}
		for pi, p := range ports {
			if t.nodes[p.Peer].Kind == Host {
				t.hostPortMask[id] |= 1 << uint(pi)
			}
		}
	}
	t.computeRoutes()
	return t
}

// computeRoutes runs one BFS per destination host over the whole graph and
// records, for every node, the set of output ports on shortest paths. All
// results go into three flat arrays (see the field comments): the loop
// visits (host, node) pairs in exactly index order, so next-hop sets are
// emitted contiguously and the offset table is built as a running prefix
// sum — no per-pair allocations.
func (t *Topology) computeRoutes() {
	n := len(t.nodes)
	h := len(t.hosts)
	t.dist = make([]int16, n*h)
	for i := range t.dist {
		t.dist[i] = -1
	}
	t.fibOff = make([]int32, n*h+1)
	// Most nodes have one next-hop per destination; hosts and ECMP fan-out
	// change that, but n*h is the right starting capacity either way.
	t.fibDat = make([]uint8, 0, n*h)
	queue := make([]packet.NodeID, 0, n)
	for hi, dst := range t.hosts {
		base := hi * n
		dist := t.dist[base : base+n]
		// BFS from the destination host; dist counts links to dst.
		// Pop via an index, not queue[1:]: re-slicing the head discards
		// capacity, so every push past it would reallocate — per BFS, per
		// destination host.
		queue = append(queue[:0], dst)
		dist[dst] = 0
		for qi := 0; qi < len(queue); qi++ {
			cur := queue[qi]
			d := dist[cur]
			for _, p := range t.ports[cur] {
				// Hosts do not forward transit traffic: only the
				// destination itself may be traversed "through" a host,
				// so BFS never expands out of a non-destination host.
				if t.nodes[cur].Kind == Host && cur != dst {
					continue
				}
				if dist[p.Peer] == -1 {
					dist[p.Peer] = d + 1
					queue = append(queue, p.Peer)
				}
			}
		}
		// Next hops: ports leading to a strictly closer neighbor.
		for id := 0; id < n; id++ {
			if dist[id] > 0 {
				for pi, p := range t.ports[id] {
					if t.nodes[p.Peer].Kind == Host && p.Peer != dst {
						continue
					}
					if dist[p.Peer] == dist[id]-1 {
						t.fibDat = append(t.fibDat, uint8(pi))
					}
				}
			}
			t.fibOff[base+id+1] = int32(len(t.fibDat))
		}
	}
}

// --- accessors ---

// NumNodes returns the total node count.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// Node returns the node descriptor for id.
func (t *Topology) Node(id packet.NodeID) Node { return t.nodes[id] }

// Hosts returns all host IDs in construction order. The slice must not be
// modified.
func (t *Topology) Hosts() []packet.NodeID { return t.hosts }

// Switches returns all switch IDs in construction order.
func (t *Topology) Switches() []packet.NodeID { return t.switches }

// Ports returns the port table of a node. The slice must not be modified.
func (t *Topology) Ports(id packet.NodeID) []Port { return t.ports[id] }

// HostIndex returns the dense index of a host node, used as the FIB key.
func (t *Topology) HostIndex(id packet.NodeID) int {
	hi := t.hostIdx[id]
	if hi < 0 {
		panic(fmt.Sprintf("topology: node %d is not a host", id))
	}
	return int(hi)
}

// NextHops returns the ECMP set of output ports at node leading along
// shortest paths to dst (a host). Empty when unreachable. The slice aliases
// the shared FIB backing and must not be modified.
func (t *Topology) NextHops(node, dst packet.NodeID) []uint8 {
	i := int(t.hostIdx[dst])*len(t.nodes) + int(node)
	return t.fibDat[t.fibOff[i]:t.fibOff[i+1]]
}

// Distance returns the hop count (number of links) from node to host dst,
// or -1 if unreachable.
func (t *Topology) Distance(node, dst packet.NodeID) int {
	return int(t.dist[int(t.hostIdx[dst])*len(t.nodes)+int(node)])
}

// HostPortMask returns the bitmap of host-facing ports at node: bit i set
// means port i attaches to an end host. DIBS must never detour to those.
func (t *Topology) HostPortMask(id packet.NodeID) uint64 { return t.hostPortMask[id] }

// IsHostPort reports whether port pi of node faces an end host.
func (t *Topology) IsHostPort(id packet.NodeID, pi int) bool {
	return t.hostPortMask[id]&(1<<uint(pi)) != 0
}

// Partition maps every node to one of nShards scheduler shards for the
// sharded PDES engine. The invariants the engine relies on:
//
//   - Hosts are co-located with their edge switch (a host's single port
//     peers its switch), so host<->switch links are never shard crossings
//     and only switch<->switch links carry lookahead-bounded messages.
//   - Pod-aware topologies (fat-tree: Node.Pod >= 0 for aggregation/edge
//     switches and hosts) keep whole pods together — intra-pod traffic,
//     the bulk of a detour cascade, stays shard-local — while core
//     switches, which every pod talks to, are spread round-robin.
//   - Topologies without pods (jellyfish, linear, HyperX, Click) cut the
//     switch list into contiguous blocks in construction order, which for
//     random graphs is as good as any static cut.
//
// The map is a pure function of the topology and nShards: it never depends
// on traffic, so the same seed yields the same partition in every run.
// nShards must be in [1, len(Switches())].
func (t *Topology) Partition(nShards int) []int {
	if nShards < 1 || nShards > len(t.switches) {
		panic(fmt.Sprintf("topology: %d shards for %d switches", nShards, len(t.switches)))
	}
	part := make([]int, len(t.nodes))
	numPods := 0
	for _, sid := range t.switches {
		if p := t.nodes[sid].Pod; p >= numPods {
			numPods = p + 1
		}
	}
	core := 0
	for i, sid := range t.switches {
		switch {
		case numPods > 0 && t.nodes[sid].Pod >= 0:
			part[sid] = t.nodes[sid].Pod * nShards / numPods
		case numPods > 0:
			part[sid] = core % nShards
			core++
		default:
			part[sid] = i * nShards / len(t.switches)
		}
	}
	for _, hid := range t.hosts {
		part[hid] = part[t.ports[hid][0].Peer]
	}
	return part
}

// Diameter returns the maximum finite host-to-host distance.
func (t *Topology) Diameter() int {
	max := 0
	for _, h := range t.hosts {
		for _, g := range t.hosts {
			if d := t.Distance(h, g); d > max {
				max = d
			}
		}
	}
	return max
}

// Neighbors returns the switch neighbors of a switch (deduplicated).
func (t *Topology) Neighbors(id packet.NodeID) []packet.NodeID {
	seen := make(map[packet.NodeID]bool)
	var out []packet.NodeID
	for _, p := range t.ports[id] {
		if t.nodes[p.Peer].Kind == Switch && !seen[p.Peer] {
			seen[p.Peer] = true
			out = append(out, p.Peer)
		}
	}
	return out
}

// --- builders ---

// LinkSpec bundles the physical parameters of links.
type LinkSpec struct {
	RateBps int64
	Delay   eventq.Time
}

// DefaultLink is the paper's setting: 1 Gbps with a small DC propagation
// delay.
var DefaultLink = LinkSpec{RateBps: 1_000_000_000, Delay: 1500 * eventq.Nanosecond}

// FatTree builds a K-ary fat-tree (K even): K pods, each with K/2 edge and
// K/2 aggregation switches; (K/2)^2 core switches; K/2 hosts per edge
// switch, for K^3/4 hosts total. All links use spec. oversub divides the
// capacity of switch-to-switch links (paper §5.5.4: factor f gives 1:f^2
// oversubscription); pass 1 for a full-bisection tree.
func FatTree(k int, spec LinkSpec, oversub int) *Topology {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topology: fat-tree K must be even and >= 2, got %d", k))
	}
	if oversub < 1 {
		panic("topology: oversub must be >= 1")
	}
	b := newBuilder(fmt.Sprintf("fattree-k%d", k))
	half := k / 2
	up := LinkSpec{RateBps: spec.RateBps / int64(oversub), Delay: spec.Delay}

	core := make([]packet.NodeID, half*half)
	for i := range core {
		core[i] = b.addNode(Switch, name2("core-", i), LayerCore, -1)
		b.reserve(core[i], k) // one link per pod
	}
	for pod := 0; pod < k; pod++ {
		aggr := make([]packet.NodeID, half)
		edge := make([]packet.NodeID, half)
		for a := 0; a < half; a++ {
			aggr[a] = b.addNode(Switch, name3("aggr-", pod, a), LayerAggr, pod)
			b.reserve(aggr[a], k) // half up to core, half down to edge
		}
		for e := 0; e < half; e++ {
			edge[e] = b.addNode(Switch, name3("edge-", pod, e), LayerEdge, pod)
			b.reserve(edge[e], k) // half up to aggr, half down to hosts
		}
		// Aggr a connects to core switches [a*half, (a+1)*half).
		for a := 0; a < half; a++ {
			for c := 0; c < half; c++ {
				b.link(aggr[a], core[a*half+c], up.RateBps, up.Delay)
			}
		}
		// Full bipartite edge<->aggr within the pod.
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				b.link(edge[e], aggr[a], up.RateBps, up.Delay)
			}
		}
		// Hosts.
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				hid := b.addNode(Host, name4("host-", pod, e, h), LayerNone, pod)
				b.link(edge[e], hid, spec.RateBps, spec.Delay)
			}
		}
	}
	return b.finalize()
}

// ClickTestbed builds the Emulab topology of §5.2: two aggregation switches,
// three edge switches (each connected to both aggregates), and two hosts per
// edge switch.
func ClickTestbed(spec LinkSpec) *Topology {
	b := newBuilder("click-testbed")
	aggr := []packet.NodeID{
		b.addNode(Switch, "aggr-0", LayerAggr, 0),
		b.addNode(Switch, "aggr-1", LayerAggr, 0),
	}
	for e := 0; e < 3; e++ {
		edge := b.addNode(Switch, name2("edge-", e), LayerEdge, 0)
		for _, a := range aggr {
			b.link(edge, a, spec.RateBps, spec.Delay)
		}
		for h := 0; h < 2; h++ {
			hid := b.addNode(Host, name3("host-", e, h), LayerNone, 0)
			b.link(edge, hid, spec.RateBps, spec.Delay)
		}
	}
	return b.finalize()
}

// Linear builds a chain of n switches with hostsPer hosts on each — the
// degenerate topology of the paper's footnote 10, where DIBS can only detour
// backwards along the chain.
func Linear(n, hostsPer int, spec LinkSpec) *Topology {
	if n < 1 {
		panic("topology: linear needs >= 1 switch")
	}
	b := newBuilder(fmt.Sprintf("linear-%d", n))
	sw := make([]packet.NodeID, n)
	for i := 0; i < n; i++ {
		sw[i] = b.addNode(Switch, name2("sw-", i), LayerNone, -1)
		if i > 0 {
			b.link(sw[i-1], sw[i], spec.RateBps, spec.Delay)
		}
		for h := 0; h < hostsPer; h++ {
			hid := b.addNode(Host, name3("host-", i, h), LayerNone, -1)
			b.link(sw[i], hid, spec.RateBps, spec.Delay)
		}
	}
	return b.finalize()
}

// Jellyfish builds a random regular graph of nSwitches switches with
// switchDegree switch-to-switch ports each and hostsPer hosts per switch
// (Singla et al.; discussed for DIBS in §7). The construction is the
// standard random matching with local repair; it is deterministic for a
// given seed. Random regular graphs are connected with high probability,
// but small unlucky instances are not, so the builder retries with derived
// seeds until the graph is connected (panicking after 50 attempts, which
// indicates an infeasible parameter choice).
func Jellyfish(nSwitches, switchDegree, hostsPer int, spec LinkSpec, seed int64) *Topology {
	for attempt := 0; attempt < 50; attempt++ {
		t := jellyfishOnce(nSwitches, switchDegree, hostsPer, spec, seed, attempt)
		if t.connected() {
			return t
		}
	}
	panic("topology: jellyfish failed to produce a connected graph in 50 attempts")
}

// connected reports whether every node can reach the first host.
func (t *Topology) connected() bool {
	if len(t.hosts) == 0 {
		return true
	}
	for id := range t.nodes {
		if t.dist[id] < 0 { // host index 0 occupies the first n entries
			return false
		}
	}
	return true
}

func jellyfishOnce(nSwitches, switchDegree, hostsPer int, spec LinkSpec, seed int64, attempt int) *Topology {
	if nSwitches*switchDegree%2 != 0 {
		panic("topology: jellyfish nSwitches*switchDegree must be even")
	}
	if switchDegree >= nSwitches {
		panic("topology: jellyfish degree must be < nSwitches")
	}
	rnd := rng.New(seed, fmt.Sprintf("topology/jellyfish/attempt%d", attempt))
	b := newBuilder(fmt.Sprintf("jellyfish-%d-%d", nSwitches, switchDegree))
	sw := make([]packet.NodeID, nSwitches)
	for i := range sw {
		sw[i] = b.addNode(Switch, name2("sw-", i), LayerNone, -1)
	}

	// Random matching over port stubs, retrying to avoid self-loops and
	// parallel edges; falls back to edge swaps when stuck. Adjacency is a
	// flat bitset over switch pairs (membership checks only, never
	// iterated, so determinism is unaffected).
	adj := make([]uint64, (nSwitches*nSwitches+63)/64)
	adjHas := func(a, b int) bool {
		i := a*nSwitches + b
		return adj[i>>6]&(1<<uint(i&63)) != 0
	}
	adjSet := func(a, b int) {
		i := a*nSwitches + b
		adj[i>>6] |= 1 << uint(i&63)
	}
	adjClear := func(a, b int) {
		i := a*nSwitches + b
		adj[i>>6] &^= 1 << uint(i&63)
	}
	deg := make([]int, nSwitches)
	type edge struct{ a, b int }
	var edges []edge
	stubs := make([]int, 0, nSwitches*switchDegree)
	for i := 0; i < nSwitches; i++ {
		for d := 0; d < switchDegree; d++ {
			stubs = append(stubs, i)
		}
	}
	rnd.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	connect := func(a, bb int) {
		adjSet(a, bb)
		adjSet(bb, a)
		deg[a]++
		deg[bb]++
		edges = append(edges, edge{a, bb})
	}
	var leftover []int
	for len(stubs) >= 2 {
		a := stubs[len(stubs)-1]
		bb := stubs[len(stubs)-2]
		stubs = stubs[:len(stubs)-2]
		if a == bb || adjHas(a, bb) {
			leftover = append(leftover, a, bb)
			continue
		}
		connect(a, bb)
	}
	// Repair leftovers by swapping with a random existing edge.
	for i := 0; i+1 < len(leftover); i += 2 {
		a, bb := leftover[i], leftover[i+1]
		repaired := false
		for try := 0; try < 100*len(edges) && !repaired; try++ {
			ei := rnd.Intn(len(edges))
			e := edges[ei]
			// Replace (e.a,e.b) with (a,e.a) and (bb,e.b) if valid.
			if a != e.a && bb != e.b && !adjHas(a, e.a) && !adjHas(bb, e.b) && a != bb {
				adjClear(e.a, e.b)
				adjClear(e.b, e.a)
				deg[e.a]--
				deg[e.b]--
				edges[ei] = edges[len(edges)-1]
				edges = edges[:len(edges)-1]
				connect(a, e.a)
				connect(bb, e.b)
				repaired = true
			}
		}
		// If repair failed the graph simply has two fewer links; Jellyfish
		// tolerates slight irregularity.
	}
	for _, e := range edges {
		b.link(sw[e.a], sw[e.b], spec.RateBps, spec.Delay)
	}
	for i := 0; i < nSwitches; i++ {
		for h := 0; h < hostsPer; h++ {
			hid := b.addNode(Host, name3("host-", i, h), LayerNone, -1)
			b.link(sw[i], hid, spec.RateBps, spec.Delay)
		}
	}
	return b.finalize()
}

// HyperX builds a 2-D HyperX: an sx-by-sy grid of switches where every
// switch links directly to every other switch sharing a row or column
// (Ahn et al.; discussed for DIBS in §7). hostsPer hosts attach per switch.
func HyperX(sx, sy, hostsPer int, spec LinkSpec) *Topology {
	if sx < 1 || sy < 1 {
		panic("topology: hyperx dims must be >= 1")
	}
	b := newBuilder(fmt.Sprintf("hyperx-%dx%d", sx, sy))
	sw := make([][]packet.NodeID, sx)
	for x := 0; x < sx; x++ {
		sw[x] = make([]packet.NodeID, sy)
		for y := 0; y < sy; y++ {
			sw[x][y] = b.addNode(Switch, name3("sw-", x, y), LayerNone, -1)
		}
	}
	for x := 0; x < sx; x++ {
		for y := 0; y < sy; y++ {
			// Row links to higher x; column links to higher y.
			for x2 := x + 1; x2 < sx; x2++ {
				b.link(sw[x][y], sw[x2][y], spec.RateBps, spec.Delay)
			}
			for y2 := y + 1; y2 < sy; y2++ {
				b.link(sw[x][y], sw[x][y2], spec.RateBps, spec.Delay)
			}
		}
	}
	for x := 0; x < sx; x++ {
		for y := 0; y < sy; y++ {
			for h := 0; h < hostsPer; h++ {
				hid := b.addNode(Host, name4("host-", x, y, h), LayerNone, -1)
				b.link(sw[x][y], hid, spec.RateBps, spec.Delay)
			}
		}
	}
	return b.finalize()
}
