package topology

import (
	"testing"
	"testing/quick"

	"dibs/internal/packet"
)

func TestFatTreeCounts(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		tp := FatTree(k, DefaultLink, 1)
		wantHosts := k * k * k / 4
		wantSwitches := k*k + (k/2)*(k/2) // k pods * k switches + core
		if len(tp.Hosts()) != wantHosts {
			t.Errorf("k=%d: hosts = %d, want %d", k, len(tp.Hosts()), wantHosts)
		}
		if len(tp.Switches()) != wantSwitches {
			t.Errorf("k=%d: switches = %d, want %d", k, len(tp.Switches()), wantSwitches)
		}
		// Every switch in a fat-tree has exactly k ports.
		for _, s := range tp.Switches() {
			if got := len(tp.Ports(s)); got != k {
				t.Errorf("k=%d: switch %s has %d ports, want %d", k, tp.Node(s).Name, got, k)
			}
		}
		// Every host has exactly one port.
		for _, h := range tp.Hosts() {
			if got := len(tp.Ports(h)); got != 1 {
				t.Errorf("k=%d: host has %d ports", k, got)
			}
		}
	}
}

func TestFatTreeDiameter(t *testing.T) {
	tp := FatTree(4, DefaultLink, 1)
	// host-edge-aggr-core-aggr-edge-host = 6 links.
	if d := tp.Diameter(); d != 6 {
		t.Fatalf("fat-tree diameter = %d, want 6", d)
	}
}

func TestFatTreeIntraPodDistance(t *testing.T) {
	tp := FatTree(4, DefaultLink, 1)
	hosts := tp.Hosts()
	// Hosts under the same edge switch: distance 2.
	if d := tp.Distance(hosts[0], hosts[1]); d != 2 {
		t.Fatalf("same-edge distance = %d, want 2", d)
	}
	// Hosts in the same pod, different edges: distance 4.
	if d := tp.Distance(hosts[0], hosts[2]); d != 4 {
		t.Fatalf("same-pod distance = %d, want 4", d)
	}
	// Self distance is zero.
	if d := tp.Distance(hosts[0], hosts[0]); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
}

func TestFatTreeECMPWidth(t *testing.T) {
	tp := FatTree(4, DefaultLink, 1)
	hosts := tp.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1] // different pods
	// At the source edge switch there should be k/2 = 2 upward next hops.
	edge := tp.Ports(src)[0].Peer
	if got := len(tp.NextHops(edge, dst)); got != 2 {
		t.Fatalf("edge ECMP width = %d, want 2", got)
	}
	// The destination's edge switch has exactly 1 next hop (the host port).
	dstEdge := tp.Ports(dst)[0].Peer
	nh := tp.NextHops(dstEdge, dst)
	if len(nh) != 1 {
		t.Fatalf("dst edge next hops = %d, want 1", len(nh))
	}
	if tp.Ports(dstEdge)[nh[0]].Peer != dst {
		t.Fatal("dst edge next hop does not lead to destination host")
	}
}

func TestNextHopsReduceDistance(t *testing.T) {
	for _, tp := range []*Topology{
		FatTree(4, DefaultLink, 1),
		ClickTestbed(DefaultLink),
		Linear(5, 2, DefaultLink),
		HyperX(3, 3, 2, DefaultLink),
		Jellyfish(10, 4, 2, DefaultLink, 42),
	} {
		for _, dst := range tp.Hosts() {
			for _, sw := range tp.Switches() {
				d := tp.Distance(sw, dst)
				if d < 0 {
					t.Fatalf("%s: switch unreachable from host", tp.Name)
				}
				nh := tp.NextHops(sw, dst)
				if len(nh) == 0 {
					t.Fatalf("%s: no next hops at %s toward %s", tp.Name, tp.Node(sw).Name, tp.Node(dst).Name)
				}
				for _, pi := range nh {
					peer := tp.Ports(sw)[pi].Peer
					if tp.Distance(peer, dst) != d-1 {
						t.Fatalf("%s: next hop does not reduce distance", tp.Name)
					}
				}
			}
		}
	}
}

func TestHostPortMask(t *testing.T) {
	tp := FatTree(4, DefaultLink, 1)
	for _, sw := range tp.Switches() {
		mask := tp.HostPortMask(sw)
		for pi, p := range tp.Ports(sw) {
			isHost := tp.Node(p.Peer).Kind == Host
			if tp.IsHostPort(sw, pi) != isHost {
				t.Fatalf("IsHostPort mismatch at %s port %d", tp.Node(sw).Name, pi)
			}
			if isHost != (mask&(1<<uint(pi)) != 0) {
				t.Fatalf("mask mismatch at %s port %d", tp.Node(sw).Name, pi)
			}
		}
		// Edge switches in K=4 have 2 host ports; aggr/core have none.
		n := tp.Node(sw)
		hostPorts := 0
		for pi := range tp.Ports(sw) {
			if tp.IsHostPort(sw, pi) {
				hostPorts++
			}
		}
		switch n.Layer {
		case LayerEdge:
			if hostPorts != 2 {
				t.Fatalf("edge %s host ports = %d, want 2", n.Name, hostPorts)
			}
		default:
			if hostPorts != 0 {
				t.Fatalf("%s %s host ports = %d, want 0", n.Layer, n.Name, hostPorts)
			}
		}
	}
}

func TestOversubscription(t *testing.T) {
	tp := FatTree(4, DefaultLink, 4)
	for _, sw := range tp.Switches() {
		for pi, p := range tp.Ports(sw) {
			if tp.IsHostPort(sw, pi) {
				if p.RateBps != DefaultLink.RateBps {
					t.Fatal("host link rate should be unchanged")
				}
			} else {
				if p.RateBps != DefaultLink.RateBps/4 {
					t.Fatalf("switch link rate = %d, want %d", p.RateBps, DefaultLink.RateBps/4)
				}
			}
		}
	}
}

func TestClickTestbed(t *testing.T) {
	tp := ClickTestbed(DefaultLink)
	if len(tp.Hosts()) != 6 {
		t.Fatalf("hosts = %d, want 6", len(tp.Hosts()))
	}
	if len(tp.Switches()) != 5 {
		t.Fatalf("switches = %d, want 5", len(tp.Switches()))
	}
	// Cross-rack distance: host-edge-aggr-edge-host = 4.
	hosts := tp.Hosts()
	if d := tp.Distance(hosts[0], hosts[2]); d != 4 {
		t.Fatalf("cross-rack distance = %d, want 4", d)
	}
	// Edge switches see 2 ECMP paths (via either aggr).
	edge := tp.Ports(hosts[0])[0].Peer
	if got := len(tp.NextHops(edge, hosts[2])); got != 2 {
		t.Fatalf("click ECMP width = %d, want 2", got)
	}
}

func TestLinear(t *testing.T) {
	tp := Linear(4, 1, DefaultLink)
	if len(tp.Hosts()) != 4 || len(tp.Switches()) != 4 {
		t.Fatalf("linear counts: %d hosts %d switches", len(tp.Hosts()), len(tp.Switches()))
	}
	hosts := tp.Hosts()
	// Ends of the chain: host-sw0-sw1-sw2-sw3-host = 5 links.
	if d := tp.Distance(hosts[0], hosts[3]); d != 5 {
		t.Fatalf("linear end-to-end distance = %d, want 5", d)
	}
}

func TestHyperX(t *testing.T) {
	tp := HyperX(3, 3, 2, DefaultLink)
	if len(tp.Switches()) != 9 {
		t.Fatalf("switches = %d", len(tp.Switches()))
	}
	if len(tp.Hosts()) != 18 {
		t.Fatalf("hosts = %d", len(tp.Hosts()))
	}
	// Each switch: (sx-1)+(sy-1)=4 switch links + 2 host links.
	for _, sw := range tp.Switches() {
		if got := len(tp.Ports(sw)); got != 6 {
			t.Fatalf("hyperx switch ports = %d, want 6", got)
		}
	}
	// Max switch-to-switch distance is 2 (row then column), so host pairs
	// are at most 4 apart.
	if d := tp.Diameter(); d != 4 {
		t.Fatalf("hyperx diameter = %d, want 4", d)
	}
}

func TestJellyfishRegularity(t *testing.T) {
	tp := Jellyfish(12, 4, 2, DefaultLink, 7)
	// Every switch should have close to 4 switch links plus 2 host links.
	totalSwLinks := 0
	for _, sw := range tp.Switches() {
		swLinks := 0
		for pi := range tp.Ports(sw) {
			if !tp.IsHostPort(sw, pi) {
				swLinks++
			}
		}
		if swLinks > 4 {
			t.Fatalf("jellyfish switch degree %d exceeds target 4", swLinks)
		}
		totalSwLinks += swLinks
	}
	// Matching may drop a couple of links under repair failure, but the
	// graph should be near-regular: at least 90% of target stubs matched.
	if totalSwLinks < 12*4*9/10 {
		t.Fatalf("jellyfish too irregular: %d of %d stubs", totalSwLinks, 12*4)
	}
}

func TestJellyfishDeterminism(t *testing.T) {
	a := Jellyfish(10, 3, 1, DefaultLink, 99)
	b := Jellyfish(10, 3, 1, DefaultLink, 99)
	for _, sw := range a.Switches() {
		pa, pb := a.Ports(sw), b.Ports(sw)
		if len(pa) != len(pb) {
			t.Fatal("jellyfish not deterministic: port counts differ")
		}
		for i := range pa {
			if pa[i].Peer != pb[i].Peer {
				t.Fatal("jellyfish not deterministic: peers differ")
			}
		}
	}
}

func TestHostIndexPanicsOnSwitch(t *testing.T) {
	tp := Linear(1, 1, DefaultLink)
	defer func() {
		if recover() == nil {
			t.Fatal("HostIndex(switch) should panic")
		}
	}()
	tp.HostIndex(tp.Switches()[0])
}

func TestBadParamsPanic(t *testing.T) {
	cases := []func(){
		func() { FatTree(3, DefaultLink, 1) },
		func() { FatTree(4, DefaultLink, 0) },
		func() { Linear(0, 1, DefaultLink) },
		func() { HyperX(0, 3, 1, DefaultLink) },
		func() { Jellyfish(5, 3, 1, DefaultLink, 1) }, // odd stubs
		func() { Jellyfish(4, 4, 1, DefaultLink, 1) }, // degree >= n
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestNeighbors(t *testing.T) {
	tp := FatTree(4, DefaultLink, 1)
	for _, sw := range tp.Switches() {
		n := tp.Node(sw)
		got := len(tp.Neighbors(sw))
		switch n.Layer {
		case LayerEdge, LayerCore:
			if got != 2 { // edge: 2 aggr; core: wait, core connects to 4 pods
				if n.Layer == LayerCore && got == 4 {
					break
				}
				t.Fatalf("%s %s neighbors = %d", n.Layer, n.Name, got)
			}
		case LayerAggr:
			if got != 4 { // 2 edges + 2 cores
				t.Fatalf("aggr neighbors = %d", got)
			}
		}
	}
}

// Property: symmetric port wiring — the peer's peer is always self.
func TestQuickPortSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		tp := Jellyfish(8, 3, 1, DefaultLink, seed)
		for id := packet.NodeID(0); int(id) < tp.NumNodes(); id++ {
			for pi, p := range tp.Ports(id) {
				back := tp.Ports(p.Peer)[p.PeerPort]
				if back.Peer != id || back.PeerPort != pi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: distances obey triangle-ish consistency: dist(sw,dst) <=
// 1 + min over neighbors.
func TestQuickDistanceConsistency(t *testing.T) {
	f := func(seed int64) bool {
		tp := Jellyfish(8, 3, 2, DefaultLink, seed)
		for _, dst := range tp.Hosts() {
			for _, sw := range tp.Switches() {
				d := tp.Distance(sw, dst)
				best := 1 << 30
				for pi, p := range tp.Ports(sw) {
					if tp.IsHostPort(sw, pi) && p.Peer != dst {
						continue
					}
					if dd := tp.Distance(p.Peer, dst); dd >= 0 && dd < best {
						best = dd
					}
				}
				if d < 0 {
					// Unreachable (an unlucky random graph can be
					// disconnected): no neighbor may be reachable either.
					if best != 1<<30 {
						return false
					}
					continue
				}
				if d != best+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestJellyfishAlwaysConnected(t *testing.T) {
	// Seeds that produced disconnected graphs before the retry logic must
	// now yield connected topologies.
	for _, seed := range []int64{-8353026557089901009, 0, 1, 999} {
		tp := Jellyfish(8, 3, 1, DefaultLink, seed)
		for _, sw := range tp.Switches() {
			if tp.Distance(sw, tp.Hosts()[0]) < 0 {
				t.Fatalf("seed %d: disconnected jellyfish", seed)
			}
		}
	}
}
