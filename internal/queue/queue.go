// Package queue implements the output-port queue disciplines used in the
// DIBS evaluation:
//
//   - DropTail: fixed-capacity FIFO with optional DCTCP ECN marking at an
//     instantaneous queue-length threshold (paper Table 1: 100-packet
//     buffers, marking threshold 20).
//   - Infinite: unbounded FIFO, the "InfiniteBuf" baseline of §5.2.
//   - Shared/DBA: per-port queues drawing on a switch-wide shared memory
//     pool with dynamic thresholds (paper §5.5.2, Arista-style dynamic
//     buffer allocation).
//   - PFabric: 24-packet priority queue with lowest-priority drop and
//     highest-priority dequeue (paper §5.8).
//
// A queue holds whole packets; capacities are expressed in packets, as in
// the paper. Queues are not safe for concurrent use: the simulator is
// single-threaded.
package queue

import (
	"dibs/internal/packet"
)

// Result reports the outcome of an Enqueue.
type Result struct {
	// Accepted is true when the packet was stored.
	Accepted bool
	// Marked is true when the discipline set the packet's CE bit.
	Marked bool
	// Evicted is a previously queued packet pushed out to make room
	// (pFabric priority dropping); nil otherwise.
	Evicted *packet.Packet
}

// Queue is a single output-port queue.
type Queue interface {
	// Enqueue offers p to the queue.
	//dibslint:owns the queue stores p on accept; the caller keeps it only when Result.Accepted is false
	Enqueue(p *packet.Packet) Result
	// Dequeue removes the next packet to transmit, or nil when empty.
	//dibslint:owns the dequeued packet leaves the queue's custody; the caller must discharge it
	Dequeue() *packet.Packet
	// Len is the number of queued packets.
	Len() int
	// Full reports whether a new Enqueue would be refused. This is the
	// predicate DIBS consults before detouring.
	Full() bool
	// Bytes is the total wire bytes queued.
	Bytes() int
}

// FluidShare is the occupancy a fluid-modeled traffic share contributes to
// a port's queue (hybrid mode, DESIGN §9). The fluid engine updates it on
// its tick; disciplines with finite capacity fold it into their admission
// and Full checks, so packet traffic — and DIBS's detour-on-full decision —
// sees the queue depth the modeled flows would really occupy. Len and Bytes
// stay packet-only: conservation checks count real packets.
//
// A nil *FluidShare reads as zero occupancy, so packet-mode queues carry no
// branch cost beyond one nil check.
type FluidShare struct {
	pkts int
}

// SetPkts sets the fluid occupancy in packet equivalents (nil-safe no-op).
func (s *FluidShare) SetPkts(n int) {
	if s != nil {
		s.pkts = n
	}
}

// Pkts returns the fluid occupancy in packet equivalents (nil reads 0).
func (s *FluidShare) Pkts() int {
	if s == nil {
		return 0
	}
	return s.pkts
}

// fifo is a growable power-of-two ring buffer of packets shared by the
// FIFO disciplines. The buffer never shrinks mid-run — capacity reached
// during a burst is retained, so a queue oscillating around its high-water
// mark allocates nothing — and the power-of-two size turns the index
// modulo into a mask.
type fifo struct {
	buf   []*packet.Packet
	head  int
	n     int
	bytes int
}

func (f *fifo) push(p *packet.Packet) {
	if f.n == len(f.buf) {
		f.grow()
	}
	f.buf[(f.head+f.n)&(len(f.buf)-1)] = p
	f.n++
	f.bytes += p.Size()
}

//dibslint:owns pop hands the buffered packet back out of the ring's custody
func (f *fifo) pop() *packet.Packet {
	if f.n == 0 {
		return nil
	}
	p := f.buf[f.head]
	f.buf[f.head] = nil
	f.head = (f.head + 1) & (len(f.buf) - 1)
	f.n--
	f.bytes -= p.Size()
	return p
}

func (f *fifo) grow() {
	size := len(f.buf) * 2
	if size == 0 {
		size = 16
	}
	nb := make([]*packet.Packet, size)
	for i := 0; i < f.n; i++ {
		nb[i] = f.buf[(f.head+i)&(len(f.buf)-1)]
	}
	f.buf = nb
	f.head = 0
}

// DropTail is a fixed-capacity FIFO with optional ECN marking. A packet is
// marked when, at enqueue time, the queue already holds at least MarkAt
// packets (instantaneous marking, as DCTCP recommends for shallow buffers).
// MarkAt <= 0 disables marking.
type DropTail struct {
	capacity int
	markAt   int
	fluid    *FluidShare
	f        fifo
}

// NewDropTail returns a FIFO holding at most capacity packets, ECN-marking
// at markAt (0 disables marking).
func NewDropTail(capacity, markAt int) *DropTail {
	return new(DropTail).init(capacity, markAt, nil)
}

func (q *DropTail) init(capacity, markAt int, arena *DropTailArena) *DropTail {
	if capacity < 1 {
		panic("queue: DropTail capacity must be >= 1")
	}
	*q = DropTail{capacity: capacity, markAt: markAt}
	// Switch-scale buffers (~100 packets) get their ring up front; host
	// NICs are configured orders of magnitude deeper and rarely fill, so
	// presizing them would waste megabytes per host.
	if capacity <= 1024 {
		size := 16
		for size < capacity {
			size *= 2
		}
		if arena != nil {
			q.f.buf = arena.ring(size)
		} else {
			q.f.buf = make([]*packet.Packet, size)
		}
	}
	return q
}

// DropTailArena carves DropTail queues — the struct and its presized ring —
// from shared blocks, for builders that construct one queue per port: a
// K=8 fat-tree instantiates ~770 of them, and two allocations each made
// queue construction one of the largest allocation sites of a whole
// benchmark iteration. Queues carved here are ordinary DropTails; a queue
// that outgrows its carved ring falls back to its own buffer (the slab
// portion is abandoned, which at 64 slots per block is cheaper than ever
// reallocating it). Not safe for concurrent use; network construction is
// single-threaded.
type DropTailArena struct {
	spare []DropTail
	slab  []*packet.Packet
}

// New carves one DropTail, equivalent to NewDropTail(capacity, markAt).
func (a *DropTailArena) New(capacity, markAt int) *DropTail {
	if len(a.spare) == 0 {
		a.spare = make([]DropTail, 64)
	}
	q := &a.spare[0]
	a.spare = a.spare[1:]
	return q.init(capacity, markAt, a)
}

// ring carves a power-of-two ring of n slots from the shared slab.
func (a *DropTailArena) ring(n int) []*packet.Packet {
	if len(a.slab) < n {
		block := 64 * 128
		if block < n {
			block = n
		}
		a.slab = make([]*packet.Packet, block)
	}
	r := a.slab[:n:n]
	a.slab = a.slab[n:]
	return r
}

// SetFluid folds a fluid occupancy share into the queue's capacity and
// Full checks. Marking stays on the real packet length: the fluid model's
// congestion contribution reaches packet senders through the port's
// residual service rate, and the real queue that builds under it marks on
// its own.
func (q *DropTail) SetFluid(s *FluidShare) { q.fluid = s }

// Enqueue implements Queue.
func (q *DropTail) Enqueue(p *packet.Packet) Result {
	if q.f.n+q.fluid.Pkts() >= q.capacity {
		return Result{}
	}
	var marked bool
	if q.markAt > 0 && q.f.n >= q.markAt {
		p.CE = true
		marked = true
	}
	q.f.push(p)
	return Result{Accepted: true, Marked: marked}
}

// Dequeue implements Queue.
func (q *DropTail) Dequeue() *packet.Packet { return q.f.pop() }

// Len implements Queue.
func (q *DropTail) Len() int { return q.f.n }

// Full implements Queue.
func (q *DropTail) Full() bool { return q.f.n+q.fluid.Pkts() >= q.capacity }

// Bytes implements Queue.
func (q *DropTail) Bytes() int { return q.f.bytes }

// Capacity returns the configured packet capacity.
func (q *DropTail) Capacity() int { return q.capacity }

// Infinite is an unbounded FIFO with optional ECN marking; the paper's
// "infinite buffer" baseline.
type Infinite struct {
	markAt int
	f      fifo
}

// NewInfinite returns an unbounded FIFO ECN-marking at markAt (0 disables).
func NewInfinite(markAt int) *Infinite { return &Infinite{markAt: markAt} }

// Enqueue implements Queue.
func (q *Infinite) Enqueue(p *packet.Packet) Result {
	var marked bool
	if q.markAt > 0 && q.f.n >= q.markAt {
		p.CE = true
		marked = true
	}
	q.f.push(p)
	return Result{Accepted: true, Marked: marked}
}

// Dequeue implements Queue.
func (q *Infinite) Dequeue() *packet.Packet { return q.f.pop() }

// Len implements Queue.
func (q *Infinite) Len() int { return q.f.n }

// Full implements Queue.
func (q *Infinite) Full() bool { return false }

// Bytes implements Queue.
func (q *Infinite) Bytes() int { return q.f.bytes }

// SharedPool models a switch's shared packet memory for dynamic buffer
// allocation (DBA, paper §5.5.2). Each port's queue may grow while the pool
// has free space, up to a dynamic threshold of Alpha times the remaining
// free pool (the classic DBA control law), and is always allowed MinReserve
// packets to avoid deadlock.
type SharedPool struct {
	total   int
	used    int
	alpha   float64
	reserve int
}

// NewSharedPool creates a pool of total packets with the given alpha and
// per-port minimum reserve.
func NewSharedPool(total int, alpha float64, reserve int) *SharedPool {
	if total < 1 {
		panic("queue: SharedPool total must be >= 1")
	}
	if alpha <= 0 {
		panic("queue: SharedPool alpha must be > 0")
	}
	return &SharedPool{total: total, alpha: alpha, reserve: reserve}
}

// Free returns the free packet slots in the pool.
func (sp *SharedPool) Free() int { return sp.total - sp.used }

// Used returns the occupied packet slots.
func (sp *SharedPool) Used() int { return sp.used }

// Total returns the pool capacity in packets.
func (sp *SharedPool) Total() int { return sp.total }

// threshold returns the current dynamic per-queue length limit.
func (sp *SharedPool) threshold() int {
	t := int(sp.alpha * float64(sp.Free()))
	if t < sp.reserve {
		t = sp.reserve
	}
	return t
}

// admit reports whether a queue currently holding n packets may grow.
func (sp *SharedPool) admit(n int) bool {
	return sp.used < sp.total && n < sp.threshold()
}

// SharedQueue is one port's queue drawing on a SharedPool.
type SharedQueue struct {
	pool   *SharedPool
	markAt int
	fluid  *FluidShare
	f      fifo
}

// NewSharedQueue attaches a queue to pool, ECN-marking at markAt (0
// disables).
func NewSharedQueue(pool *SharedPool, markAt int) *SharedQueue {
	return &SharedQueue{pool: pool, markAt: markAt}
}

// SetFluid folds a fluid occupancy share into the queue's admission and
// Full checks (per-queue threshold only; the shared pool accounts real
// packets).
func (q *SharedQueue) SetFluid(s *FluidShare) { q.fluid = s }

// Enqueue implements Queue.
func (q *SharedQueue) Enqueue(p *packet.Packet) Result {
	if !q.pool.admit(q.f.n + q.fluid.Pkts()) {
		return Result{}
	}
	var marked bool
	if q.markAt > 0 && q.f.n >= q.markAt {
		p.CE = true
		marked = true
	}
	q.f.push(p)
	q.pool.used++
	return Result{Accepted: true, Marked: marked}
}

// Dequeue implements Queue.
func (q *SharedQueue) Dequeue() *packet.Packet {
	p := q.f.pop()
	if p != nil {
		q.pool.used--
	}
	return p
}

// Len implements Queue.
func (q *SharedQueue) Len() int { return q.f.n }

// Full implements Queue.
func (q *SharedQueue) Full() bool { return !q.pool.admit(q.f.n + q.fluid.Pkts()) }

// Bytes implements Queue.
func (q *SharedQueue) Bytes() int { return q.f.bytes }

// PFabric is the priority queue of pFabric switches (paper §5.8): tiny
// capacity (24 packets in the paper), dequeue the highest-priority packet
// (lowest Priority value, FIFO among equals), and on overflow evict the
// lowest-priority queued packet if the arrival beats it.
type PFabric struct {
	capacity int
	pkts     []*packet.Packet // unsorted; capacity is tiny so scans are fine
	seqs     []uint64         // arrival order for FIFO tie-breaking
	nextSeq  uint64
	bytes    int
}

// NewPFabric returns a pFabric queue with the given packet capacity. The
// packet and sequence arrays are allocated to capacity up front (capacity
// is tiny — 24 in the paper) so the queue never allocates mid-run.
func NewPFabric(capacity int) *PFabric {
	if capacity < 1 {
		panic("queue: PFabric capacity must be >= 1")
	}
	return &PFabric{
		capacity: capacity,
		pkts:     make([]*packet.Packet, 0, capacity),
		seqs:     make([]uint64, 0, capacity),
	}
}

// Enqueue implements Queue. When full, the lowest-priority (highest
// Priority value, latest arrival on ties) packet is evicted if the new
// packet outranks it; otherwise the new packet is refused.
func (q *PFabric) Enqueue(p *packet.Packet) Result {
	if len(q.pkts) < q.capacity {
		q.push(p)
		return Result{Accepted: true}
	}
	wi := q.worst()
	w := q.pkts[wi]
	if p.Priority >= w.Priority {
		return Result{} // arrival does not outrank anything; drop arrival
	}
	q.removeAt(wi)
	q.push(p)
	return Result{Accepted: true, Evicted: w}
}

func (q *PFabric) push(p *packet.Packet) {
	q.pkts = append(q.pkts, p)
	q.seqs = append(q.seqs, q.nextSeq)
	q.nextSeq++
	q.bytes += p.Size()
}

func (q *PFabric) removeAt(i int) {
	q.bytes -= q.pkts[i].Size()
	last := len(q.pkts) - 1
	q.pkts[i] = q.pkts[last]
	q.seqs[i] = q.seqs[last]
	q.pkts = q.pkts[:last]
	q.seqs = q.seqs[:last]
}

// worst returns the index of the lowest-priority packet (highest Priority
// value; later arrival loses ties).
func (q *PFabric) worst() int {
	wi := 0
	for i := 1; i < len(q.pkts); i++ {
		if q.pkts[i].Priority > q.pkts[wi].Priority ||
			(q.pkts[i].Priority == q.pkts[wi].Priority && q.seqs[i] > q.seqs[wi]) {
			wi = i
		}
	}
	return wi
}

// best returns the index of the highest-priority packet (lowest Priority
// value; earlier arrival wins ties).
func (q *PFabric) best() int {
	bi := 0
	for i := 1; i < len(q.pkts); i++ {
		if q.pkts[i].Priority < q.pkts[bi].Priority ||
			(q.pkts[i].Priority == q.pkts[bi].Priority && q.seqs[i] < q.seqs[bi]) {
			bi = i
		}
	}
	return bi
}

// Dequeue implements Queue.
func (q *PFabric) Dequeue() *packet.Packet {
	if len(q.pkts) == 0 {
		return nil
	}
	bi := q.best()
	p := q.pkts[bi]
	q.removeAt(bi)
	return p
}

// Len implements Queue.
func (q *PFabric) Len() int { return len(q.pkts) }

// Full implements Queue. pFabric is "never full" in the drop-tail sense —
// it always accepts a sufficiently high-priority packet — so Full reports
// capacity occupancy; pFabric runs never enable DIBS.
func (q *PFabric) Full() bool { return len(q.pkts) >= q.capacity }

// Bytes implements Queue.
func (q *PFabric) Bytes() int { return q.bytes }
