package queue

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dibs/internal/packet"
)

func mkpkt(seq int64) *packet.Packet {
	return &packet.Packet{Kind: packet.Data, Seq: seq, PayloadBytes: 1000}
}

func TestDropTailFIFO(t *testing.T) {
	q := NewDropTail(3, 0)
	for i := int64(0); i < 3; i++ {
		if r := q.Enqueue(mkpkt(i)); !r.Accepted || r.Marked {
			t.Fatalf("enqueue %d: %+v", i, r)
		}
	}
	if r := q.Enqueue(mkpkt(3)); r.Accepted {
		t.Fatal("4th enqueue should be refused")
	}
	if !q.Full() {
		t.Fatal("queue should be full")
	}
	for i := int64(0); i < 3; i++ {
		p := q.Dequeue()
		if p == nil || p.Seq != i {
			t.Fatalf("dequeue %d: %v", i, p)
		}
	}
	if q.Dequeue() != nil {
		t.Fatal("dequeue from empty should be nil")
	}
	if q.Len() != 0 || q.Bytes() != 0 {
		t.Fatalf("empty queue: len=%d bytes=%d", q.Len(), q.Bytes())
	}
}

func TestDropTailMarking(t *testing.T) {
	q := NewDropTail(10, 3)
	for i := int64(0); i < 3; i++ {
		if r := q.Enqueue(mkpkt(i)); r.Marked {
			t.Fatalf("packet %d marked below threshold", i)
		}
	}
	p := mkpkt(3)
	r := q.Enqueue(p)
	if !r.Marked || !p.CE {
		t.Fatal("packet at threshold should be CE-marked")
	}
}

func TestDropTailBytes(t *testing.T) {
	q := NewDropTail(10, 0)
	p := mkpkt(0)
	q.Enqueue(p)
	if q.Bytes() != p.Size() {
		t.Fatalf("bytes = %d, want %d", q.Bytes(), p.Size())
	}
	q.Dequeue()
	if q.Bytes() != 0 {
		t.Fatal("bytes should return to zero")
	}
}

func TestDropTailRingGrowth(t *testing.T) {
	// Interleave pushes and pops to exercise ring wraparound and growth.
	q := NewInfinite(0)
	next, expect := int64(0), int64(0)
	for round := 0; round < 100; round++ {
		for i := 0; i < 5; i++ {
			q.Enqueue(mkpkt(next))
			next++
		}
		for i := 0; i < 3; i++ {
			p := q.Dequeue()
			if p.Seq != expect {
				t.Fatalf("out of order: got %d want %d", p.Seq, expect)
			}
			expect++
		}
	}
	for q.Len() > 0 {
		p := q.Dequeue()
		if p.Seq != expect {
			t.Fatalf("drain out of order: got %d want %d", p.Seq, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d, pushed %d", expect, next)
	}
}

func TestInfinite(t *testing.T) {
	q := NewInfinite(0)
	for i := int64(0); i < 10000; i++ {
		if r := q.Enqueue(mkpkt(i)); !r.Accepted {
			t.Fatal("infinite queue refused a packet")
		}
	}
	if q.Full() {
		t.Fatal("infinite queue reports full")
	}
	if q.Len() != 10000 {
		t.Fatalf("len = %d", q.Len())
	}
	if q.Dequeue().Seq != 0 {
		t.Fatal("not FIFO")
	}
}

func TestInfiniteMarking(t *testing.T) {
	q := NewInfinite(2)
	q.Enqueue(mkpkt(0))
	q.Enqueue(mkpkt(1))
	if r := q.Enqueue(mkpkt(2)); !r.Marked {
		t.Fatal("infinite queue should still ECN-mark")
	}
}

func TestSharedPoolDBA(t *testing.T) {
	pool := NewSharedPool(100, 1.0, 2)
	a := NewSharedQueue(pool, 0)
	b := NewSharedQueue(pool, 0)
	// Queue a alone may grow to alpha*free: starts at 100 free, threshold
	// shrinks as it fills. With alpha=1 it can take about half the pool
	// before threshold == len.
	n := 0
	for !a.Full() {
		a.Enqueue(mkpkt(int64(n)))
		n++
	}
	if n < 45 || n > 55 {
		t.Fatalf("single queue with alpha=1 took %d of 100; want ~50", n)
	}
	// Second queue still gets space.
	m := 0
	for !b.Full() {
		b.Enqueue(mkpkt(int64(m)))
		m++
	}
	if m == 0 {
		t.Fatal("second queue starved")
	}
	if pool.Used() != n+m {
		t.Fatalf("pool used = %d, want %d", pool.Used(), n+m)
	}
	// Draining a frees pool space and unb locks b.
	for a.Len() > 0 {
		a.Dequeue()
	}
	if b.Full() {
		t.Fatal("b should be admitted again after a drains")
	}
	if pool.Used() != m {
		t.Fatalf("pool used = %d after drain, want %d", pool.Used(), m)
	}
}

func TestSharedPoolReserve(t *testing.T) {
	pool := NewSharedPool(10, 0.001, 3)
	q := NewSharedQueue(pool, 0)
	// Alpha is tiny, so the threshold floor (reserve=3) governs.
	got := 0
	for !q.Full() {
		q.Enqueue(mkpkt(int64(got)))
		got++
	}
	if got != 3 {
		t.Fatalf("reserve admission = %d, want 3", got)
	}
}

func TestSharedPoolExhaustion(t *testing.T) {
	pool := NewSharedPool(5, 100, 100)
	q := NewSharedQueue(pool, 0)
	for i := 0; i < 5; i++ {
		if r := q.Enqueue(mkpkt(int64(i))); !r.Accepted {
			t.Fatalf("enqueue %d refused with free pool", i)
		}
	}
	if r := q.Enqueue(mkpkt(99)); r.Accepted {
		t.Fatal("pool exhausted but enqueue accepted")
	}
	if pool.Free() != 0 {
		t.Fatalf("free = %d", pool.Free())
	}
}

func TestSharedQueueMarking(t *testing.T) {
	pool := NewSharedPool(100, 1, 1)
	q := NewSharedQueue(pool, 2)
	q.Enqueue(mkpkt(0))
	q.Enqueue(mkpkt(1))
	if r := q.Enqueue(mkpkt(2)); !r.Marked {
		t.Fatal("shared queue should ECN-mark at threshold")
	}
}

func prio(p int64, seq int64) *packet.Packet {
	return &packet.Packet{Kind: packet.Data, Seq: seq, PayloadBytes: 1000, Priority: p}
}

func TestPFabricPriorityDequeue(t *testing.T) {
	q := NewPFabric(24)
	q.Enqueue(prio(300, 0))
	q.Enqueue(prio(100, 1))
	q.Enqueue(prio(200, 2))
	if p := q.Dequeue(); p.Priority != 100 {
		t.Fatalf("dequeued priority %d, want 100", p.Priority)
	}
	if p := q.Dequeue(); p.Priority != 200 {
		t.Fatalf("dequeued priority %d, want 200", p.Priority)
	}
}

func TestPFabricFIFOAmongEqual(t *testing.T) {
	q := NewPFabric(24)
	for i := int64(0); i < 5; i++ {
		q.Enqueue(prio(100, i))
	}
	for i := int64(0); i < 5; i++ {
		if p := q.Dequeue(); p.Seq != i {
			t.Fatalf("equal-priority order broken: got seq %d want %d", p.Seq, i)
		}
	}
}

func TestPFabricEviction(t *testing.T) {
	q := NewPFabric(2)
	q.Enqueue(prio(100, 0))
	q.Enqueue(prio(500, 1))
	// Higher-priority (lower value) arrival evicts the worst.
	r := q.Enqueue(prio(50, 2))
	if !r.Accepted || r.Evicted == nil || r.Evicted.Priority != 500 {
		t.Fatalf("eviction result: %+v", r)
	}
	// Lower-priority arrival is refused.
	r = q.Enqueue(prio(900, 3))
	if r.Accepted {
		t.Fatal("low-priority arrival should be dropped")
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
}

func TestPFabricEvictionTieKeepsEarlier(t *testing.T) {
	q := NewPFabric(2)
	q.Enqueue(prio(100, 0))
	q.Enqueue(prio(100, 1))
	r := q.Enqueue(prio(50, 2))
	if r.Evicted == nil || r.Evicted.Seq != 1 {
		t.Fatalf("tie eviction should drop the later arrival, got %+v", r.Evicted)
	}
}

func TestPFabricBytes(t *testing.T) {
	q := NewPFabric(4)
	p := prio(1, 0)
	q.Enqueue(p)
	if q.Bytes() != p.Size() {
		t.Fatalf("bytes = %d", q.Bytes())
	}
	q.Dequeue()
	if q.Bytes() != 0 {
		t.Fatal("bytes after drain")
	}
}

func TestConstructorPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewDropTail(0, 0) },
		func() { NewPFabric(0) },
		func() { NewSharedPool(0, 1, 1) },
		func() { NewSharedPool(10, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: DropTail never exceeds capacity, conserves packets, and
// preserves FIFO order under random operation sequences.
func TestQuickDropTailInvariants(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw%50) + 1
		rng := rand.New(rand.NewSource(seed))
		q := NewDropTail(capacity, 0)
		var inQ []int64
		next := int64(0)
		accepted, drained := 0, 0
		for op := 0; op < 500; op++ {
			if rng.Intn(2) == 0 {
				r := q.Enqueue(mkpkt(next))
				if r.Accepted {
					inQ = append(inQ, next)
					accepted++
				} else if len(inQ) != capacity {
					return false // refused while not full
				}
				next++
			} else {
				p := q.Dequeue()
				if len(inQ) == 0 {
					if p != nil {
						return false
					}
					continue
				}
				if p == nil || p.Seq != inQ[0] {
					return false
				}
				inQ = inQ[1:]
				drained++
			}
			if q.Len() != len(inQ) || q.Len() > capacity {
				return false
			}
		}
		return accepted-drained == q.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the shared pool's used count always equals the sum of queue
// lengths, and no queue grows past the pool total.
func TestQuickSharedPoolConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pool := NewSharedPool(64, 1.0, 2)
		qs := make([]*SharedQueue, 4)
		for i := range qs {
			qs[i] = NewSharedQueue(pool, 0)
		}
		for op := 0; op < 1000; op++ {
			qi := rng.Intn(len(qs))
			if rng.Intn(2) == 0 {
				qs[qi].Enqueue(mkpkt(int64(op)))
			} else {
				qs[qi].Dequeue()
			}
			sum := 0
			for _, q := range qs {
				sum += q.Len()
			}
			if sum != pool.Used() || pool.Used() > pool.Total() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: pFabric dequeues in nondecreasing priority when no enqueues
// interleave, and never exceeds capacity.
func TestQuickPFabricOrder(t *testing.T) {
	f := func(prios []int16) bool {
		q := NewPFabric(24)
		for i, p := range prios {
			q.Enqueue(prio(int64(p), int64(i)))
			if q.Len() > 24 {
				return false
			}
		}
		last := int64(-1 << 62)
		for q.Len() > 0 {
			p := q.Dequeue()
			if p.Priority < last {
				return false
			}
			last = p.Priority
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDropTailEnqDeq(b *testing.B) {
	q := NewDropTail(100, 20)
	p := mkpkt(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(p)
		q.Dequeue()
	}
}

func BenchmarkPFabricEnqDeq(b *testing.B) {
	q := NewPFabric(24)
	// Keep the queue half full so scans have work to do.
	for i := int64(0); i < 12; i++ {
		q.Enqueue(prio(i*100, i))
	}
	p := prio(50, 99)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(p)
		q.Dequeue()
	}
}
