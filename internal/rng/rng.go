// Package rng is the single sanctioned place simulation code may construct
// pseudo-random number generators. Every stream derives deterministically
// from the run's Config.Seed plus a stable stream name, so one seed fixes
// the entire simulation and adding a new consumer cannot perturb existing
// streams (no shared counters, no ad-hoc XOR constants scattered around).
//
// The dibslint rule nondet-randnew enforces that rand.New/rand.NewSource
// appear nowhere else in simulation packages.
package rng

import "math/rand"

// New returns a deterministic generator for the named stream of a run.
// The same (seed, stream) pair always yields the same sequence; distinct
// stream names yield statistically independent sequences even for adjacent
// seeds. Stream names are slash-separated paths by convention, e.g.
// "workload/background" or "switch/17".
func New(seed int64, stream string) *rand.Rand {
	return rand.New(rand.NewSource(int64(Derive(uint64(seed), stream))))
}

// Derive mixes a seed with a stream name into a 64-bit stream seed:
// FNV-1a over the name, then the SplitMix64 finalizer over seed+hash.
// Exported so tests can pin the derivation, which must never change —
// every recorded result in EXPERIMENTS.md depends on it.
func Derive(seed uint64, stream string) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(stream); i++ {
		h = (h ^ uint64(stream[i])) * fnvPrime
	}
	z := seed + h + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
