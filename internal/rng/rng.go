// Package rng is the single sanctioned place simulation code may construct
// pseudo-random number generators. Every stream derives deterministically
// from the run's Config.Seed plus a stable stream name, so one seed fixes
// the entire simulation and adding a new consumer cannot perturb existing
// streams (no shared counters, no ad-hoc XOR constants scattered around).
//
// The dibslint rule nondet-randnew enforces that rand.New/rand.NewSource
// appear nowhere else in simulation packages.
package rng

import "math/rand"

// New returns a deterministic generator for the named stream of a run.
// The same (seed, stream) pair always yields the same sequence; distinct
// stream names yield statistically independent sequences even for adjacent
// seeds. Stream names are slash-separated paths by convention, e.g.
// "workload/background" or "switch/17".
func New(seed int64, stream string) *rand.Rand {
	return rand.New(rand.NewSource(int64(Derive(uint64(seed), stream))))
}

// Derive mixes a seed with a stream name into a 64-bit stream seed:
// FNV-1a over the name, then the SplitMix64 finalizer over seed+hash.
// Exported so tests can pin the derivation, which must never change —
// every recorded result in EXPERIMENTS.md depends on it.
func Derive(seed uint64, stream string) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(stream); i++ {
		h = (h ^ uint64(stream[i])) * fnvPrime
	}
	return mix(seed + h)
}

// Derive2 is Derive for indexed stream families: the same named stream
// fanned out over two integer indices (e.g. one jitter stream per
// (node, port) pair) without building a per-index name string, so
// constructing thousands of streams at network build time costs no
// allocations. Pinned by goldens alongside Derive.
func Derive2(seed uint64, stream string, a, b int) uint64 {
	z := Derive(seed, stream)
	z = mix(z + uint64(int64(a))*0x9e3779b97f4a7c15)
	return mix(z + uint64(int64(b))*0x9e3779b97f4a7c15)
}

// mix is the SplitMix64 finalizer, the avalanche at the heart of Derive.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is an allocation-free SplitMix64 sequence for hot paths that
// cannot afford a heap-allocated *rand.Rand per consumer (per-port link
// jitter). The zero value is a valid stream seeded at 0; construct real
// streams from Derive/Derive2 output.
type Stream uint64

// Next advances the stream and returns the next 64-bit value.
func (s *Stream) Next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63n returns a value in [0, n). Like the rest of this package the
// contract is determinism, not statistical perfection: the modulo bias at
// data-center jitter magnitudes (n ≪ 2⁶³) is unmeasurable.
func (s *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive bound")
	}
	return int64((s.Next() >> 1) % uint64(n))
}
