package rng

import "testing"

// TestDerivePinned locks the stream-seed derivation. Changing it silently
// re-seeds every simulation, invalidating all recorded results, so the
// exact values are pinned here; a deliberate change must update this test
// and the recorded experiment outputs together.
func TestDerivePinned(t *testing.T) {
	cases := []struct {
		seed   uint64
		stream string
		want   uint64
	}{
		{1, "workload/background", 0x975325e309e3add6},
		{1, "switch/0", 0x8f6dabcc2df04bea},
	}
	for _, c := range cases {
		if got := Derive(c.seed, c.stream); got != c.want {
			t.Errorf("Derive(%d, %q) = %#x, want %#x", c.seed, c.stream, got, c.want)
		}
	}
}

// TestDerive2Pinned locks the indexed-stream derivation the same way
// TestDerivePinned locks the named one: per-port jitter streams (and any
// future indexed family) reseed silently if these values move.
func TestDerive2Pinned(t *testing.T) {
	cases := []struct {
		seed   uint64
		stream string
		a, b   int
		want   uint64
	}{
		{1, "link/jitter", 0, 0, 0x2f4737502e671c1b},
		{1, "link/jitter", 17, 3, 0x7c85e3a32c4280a4},
		{424242, "link/jitter", 17, 3, 0x8e6c8a72ddb68b58},
	}
	for _, c := range cases {
		if got := Derive2(c.seed, c.stream, c.a, c.b); got != c.want {
			t.Errorf("Derive2(%d, %q, %d, %d) = %#x, want %#x", c.seed, c.stream, c.a, c.b, got, c.want)
		}
	}
	if Derive2(1, "link/jitter", 1, 2) == Derive2(1, "link/jitter", 2, 1) {
		t.Error("Derive2 index order must matter")
	}
}

// TestStreamPinned locks the Stream sequence: the first draws of a pinned
// stream seed, plus the bounded draw used by link jitter.
func TestStreamPinned(t *testing.T) {
	s := Stream(Derive2(1, "link/jitter", 17, 3))
	if got, want := s.Next(), uint64(0xf2484bec7fecefc4); got != want {
		t.Errorf("Next()#1 = %#x, want %#x", got, want)
	}
	if got, want := s.Next(), uint64(0xcf73f021935ce1e8); got != want {
		t.Errorf("Next()#2 = %#x, want %#x", got, want)
	}
	if got, want := s.Int63n(2000), int64(32); got != want {
		t.Errorf("Int63n(2000) = %d, want %d", got, want)
	}
	for i := 0; i < 1000; i++ {
		if v := s.Int63n(7); v < 0 || v >= 7 {
			t.Fatalf("Int63n(7) out of range: %d", v)
		}
	}
}

func TestNewIsDeterministicPerStream(t *testing.T) {
	a := New(7, "workload/queries")
	b := New(7, "workload/queries")
	for i := 0; i < 100; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("draw %d diverged: %d != %d", i, x, y)
		}
	}
}

func TestStreamsAreIndependent(t *testing.T) {
	// Distinct stream names, adjacent seeds, and name/seed swaps must all
	// yield different stream seeds — the historical failure mode of
	// additive derivations like seed+101.
	pairs := [][2]uint64{
		{Derive(1, "a"), Derive(1, "b")},
		{Derive(1, "a"), Derive(2, "a")},
		{Derive(1, "switch/1"), Derive(1, "switch/2")},
		{Derive(1, "switch/12"), Derive(2, "switch/1")},
	}
	for i, p := range pairs {
		if p[0] == p[1] {
			t.Errorf("pair %d: stream seeds collide: %#x", i, p[0])
		}
	}
}
