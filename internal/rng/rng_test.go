package rng

import "testing"

// TestDerivePinned locks the stream-seed derivation. Changing it silently
// re-seeds every simulation, invalidating all recorded results, so the
// exact values are pinned here; a deliberate change must update this test
// and the recorded experiment outputs together.
func TestDerivePinned(t *testing.T) {
	cases := []struct {
		seed   uint64
		stream string
		want   uint64
	}{
		{1, "workload/background", 0x975325e309e3add6},
		{1, "switch/0", 0x8f6dabcc2df04bea},
	}
	for _, c := range cases {
		if got := Derive(c.seed, c.stream); got != c.want {
			t.Errorf("Derive(%d, %q) = %#x, want %#x", c.seed, c.stream, got, c.want)
		}
	}
}

func TestNewIsDeterministicPerStream(t *testing.T) {
	a := New(7, "workload/queries")
	b := New(7, "workload/queries")
	for i := 0; i < 100; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("draw %d diverged: %d != %d", i, x, y)
		}
	}
}

func TestStreamsAreIndependent(t *testing.T) {
	// Distinct stream names, adjacent seeds, and name/seed swaps must all
	// yield different stream seeds — the historical failure mode of
	// additive derivations like seed+101.
	pairs := [][2]uint64{
		{Derive(1, "a"), Derive(1, "b")},
		{Derive(1, "a"), Derive(2, "a")},
		{Derive(1, "switch/1"), Derive(1, "switch/2")},
		{Derive(1, "switch/12"), Derive(2, "switch/1")},
	}
	for i, p := range pairs {
		if p[0] == p[1] {
			t.Errorf("pair %d: stream seeds collide: %#x", i, p[0])
		}
	}
}
