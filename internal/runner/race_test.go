// The test lives in package runner_test so it can drive internal/experiments
// (which itself imports runner) without an import cycle.
package runner_test

import (
	"bytes"
	"sync"
	"testing"

	"dibs/internal/experiments"
)

// renderExperiment runs one experiment at smoke scale and returns its
// rendered tables.
func renderExperiment(t *testing.T, id string, workers int) string {
	t.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	var buf bytes.Buffer
	for _, tab := range e.Run(experiments.Opts{Seed: 3, Scale: 0.05, Workers: workers}) {
		tab.Render(&buf)
	}
	return buf.String()
}

// TestConcurrentExperimentsMatchSerial runs two full experiments at the
// same time — each itself fanning out over the worker pool — and asserts
// both still match their serial golden output. Under `go test -race` this
// is the proof that nothing below the runner shares mutable state between
// runs.
func TestConcurrentExperimentsMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full experiments")
	}
	ids := []string{"fig10", "oversub"}
	golden := make([]string, len(ids))
	for i, id := range ids {
		golden[i] = renderExperiment(t, id, 1)
	}

	got := make([]string, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = renderExperiment(t, id, 2)
		}()
	}
	wg.Wait()

	for i, id := range ids {
		if got[i] != golden[i] {
			t.Errorf("%s: concurrent run differs from serial golden\n--- serial ---\n%s\n--- concurrent ---\n%s",
				id, golden[i], got[i])
		}
	}
}
