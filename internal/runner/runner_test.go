package runner

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapIndexesResults(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		got := Map(workers, 50, func(i int) int { return i * i })
		if len(got) != 50 {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); got != nil {
		t.Fatalf("n=0 should return nil, got %v", got)
	}
	if got := Map(4, -3, func(i int) int { return i }); got != nil {
		t.Fatalf("n<0 should return nil, got %v", got)
	}
}

func TestMapEachIndexOnce(t *testing.T) {
	const n = 200
	var counts [n]atomic.Int32
	Map(8, n, func(i int) struct{} {
		counts[i].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestMapSerialOnCallingGoroutine(t *testing.T) {
	// workers<=1 must not spawn: the serial path is the reference the
	// parallel path is tested against, and callers may rely on
	// goroutine-local state (e.g. testing.T) in that mode.
	var ids []int
	Map(1, 5, func(i int) struct{} {
		ids = append(ids, i) // safe only if single-goroutine and in order
		return struct{}{}
	})
	for i, v := range ids {
		if v != i {
			t.Fatalf("serial path out of order: %v", ids)
		}
	}
}

func TestMapPanicLowestIndex(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Map should re-panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "run 3 panicked: boom 3") {
			t.Fatalf("panic = %v, want lowest failing index 3", r)
		}
	}()
	Map(4, 20, func(i int) int {
		if i == 3 || i == 11 || i == 17 {
			panic("boom " + string(rune('0'+i%10)))
		}
		return i
	})
}

func TestDefaultWorkers(t *testing.T) {
	if got := DefaultWorkers(5); got != 5 {
		t.Fatalf("DefaultWorkers(5) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := DefaultWorkers(0); got != want {
		t.Fatalf("DefaultWorkers(0) = %d, want %d", got, want)
	}
	if got := DefaultWorkers(-1); got != want {
		t.Fatalf("DefaultWorkers(-1) = %d, want %d", got, want)
	}
}
