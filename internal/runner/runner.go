// Package runner executes independent simulation runs in parallel without
// changing their results.
//
// A discrete-event run is a pure function of its Config (including the
// seed): internal/rng derives every stream from Config.Seed, and dibslint
// keeps goroutines and wall-clock time out of the simulation packages. That
// makes sweep points and repeat seeds embarrassingly parallel — the only
// thing parallelism could perturb is the *order* results are observed in,
// so Map collects results by index and callers consume them exactly as the
// serial loop would have. Output is byte-identical for any worker count.
//
// This package is the single sanctioned home for goroutines in the
// simulator (the dibslint rule nondet-goroutine allowlists it); everything
// below whole runs stays single-threaded.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers resolves a worker-count flag value: n > 0 is used as
// given, anything else (0 or negative) means GOMAXPROCS.
func DefaultWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(0..n-1) on up to workers goroutines and returns the results
// indexed by input: out[i] = fn(i). With workers <= 1 (or n == 1) it runs
// serially on the calling goroutine — the reference path parallel runs must
// match. fn must not touch shared mutable state; each index is handed to
// exactly one worker.
//
// If any fn panics, Map re-panics on the calling goroutine after all
// workers have drained, with the panic from the lowest index so the failure
// is deterministic even when several runs fail.
func Map[T any](workers, n int, fn func(int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers = DefaultWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}

	type failure struct {
		index int
		value any
	}
	var (
		next  atomic.Int64 // next index to claim
		wg    sync.WaitGroup
		mu    sync.Mutex
		first *failure
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if first == nil || i < first.index {
								first = &failure{index: i, value: r}
							}
							mu.Unlock()
						}
					}()
					out[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if first != nil {
		panic(fmt.Sprintf("runner: run %d panicked: %v", first.index, first.value))
	}
	return out
}
