package dibs_test

import (
	"math"
	"testing"

	"dibs"
)

func TestDefaultConfigMatchesPaperTable1(t *testing.T) {
	cfg := dibs.DefaultConfig()
	if cfg.LinkRate != 1_000_000_000 {
		t.Errorf("link rate = %d, Table 1 says 1 Gbps", cfg.LinkRate)
	}
	if cfg.BufferPkts != 100 {
		t.Errorf("buffer = %d pkts, Table 1 says 100", cfg.BufferPkts)
	}
	if cfg.MinRTO != 10*dibs.Millisecond {
		t.Errorf("minRTO = %v, Table 1 says 10ms", cfg.MinRTO)
	}
	if cfg.InitCwnd != 10 {
		t.Errorf("initial cwnd = %v, Table 1 says 10", cfg.InitCwnd)
	}
	if cfg.DupAckThresh != 0 {
		t.Errorf("fast retransmit should be disabled (Table 1)")
	}
	if cfg.MarkAtPkts != 20 {
		t.Errorf("ECN marking threshold = %d, §5.3 says 20", cfg.MarkAtPkts)
	}
	if cfg.FatTreeK != 8 {
		t.Errorf("fat-tree K = %d, §5.3 says 8", cfg.FatTreeK)
	}
	if cfg.Query == nil || cfg.Query.QPS != 300 || cfg.Query.Degree != 40 ||
		cfg.Query.ResponseBytes != 20_000 {
		t.Errorf("query defaults = %+v, Table 2 says 300qps/40/20KB", cfg.Query)
	}
	if cfg.BGInterarrival != 120*dibs.Millisecond {
		t.Errorf("BG inter-arrival = %v, Table 2 says 120ms", cfg.BGInterarrival)
	}
	if cfg.TTL != 255 {
		t.Errorf("TTL = %d, Table 2 default is 255", cfg.TTL)
	}
	if !cfg.DIBS || cfg.Policy != dibs.PolicyRandom {
		t.Error("default should enable DIBS with the random policy")
	}
	if cfg.Transport != dibs.DCTCP {
		t.Error("default transport should be DCTCP")
	}
}

func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := dibs.DefaultConfig()
	cfg.FatTreeK = 4
	cfg.Duration = 40 * dibs.Millisecond
	cfg.Drain = 200 * dibs.Millisecond
	cfg.BGInterarrival = 0
	cfg.Query = &dibs.QueryConfig{QPS: 200, Degree: 8, ResponseBytes: 20_000}
	res := dibs.Run(cfg)
	if res.QueriesStarted == 0 {
		t.Fatal("no queries ran")
	}
	if res.QueriesDone != res.QueriesStarted {
		t.Fatalf("%d/%d queries done", res.QueriesDone, res.QueriesStarted)
	}
	if math.IsNaN(res.QCT99) || res.QCT99 <= 0 {
		t.Fatalf("QCT99 = %v", res.QCT99)
	}
	if res.NetworkDrops() != 0 {
		t.Fatalf("DIBS run dropped %d packets", res.NetworkDrops())
	}
}

func TestBuildExposesNetwork(t *testing.T) {
	cfg := dibs.DefaultConfig()
	cfg.FatTreeK = 4
	cfg.BGInterarrival = 0
	cfg.Query = nil
	cfg.Duration = 20 * dibs.Millisecond
	n := dibs.Build(cfg)
	if len(n.Topo.Hosts()) != 16 {
		t.Fatalf("hosts = %d", len(n.Topo.Hosts()))
	}
	if n.Sched.Now() != 0 {
		t.Fatal("clock should start at zero")
	}
}

func TestDurationHelper(t *testing.T) {
	if dibs.Duration(0) != 0 {
		t.Fatal("Duration(0)")
	}
	if got := dibs.Duration(1_500_000); got != eventqMs(1.5) {
		t.Fatalf("Duration = %v", got)
	}
}

func eventqMs(ms float64) dibs.Time { return dibs.Time(ms * float64(dibs.Millisecond)) }

func TestWebSearchBackgroundExported(t *testing.T) {
	if dibs.WebSearchBackground() == nil {
		t.Fatal("distribution missing")
	}
}
