#!/usr/bin/env bash
# bench.sh — measure the simulator's performance baseline.
#
# Runs BenchmarkSimulatorThroughput under both scheduler engines (wheel and
# heap — their in-process ratio is the noise-robust number), plus
# BenchmarkIncastBurst, BenchmarkPacketPool, BenchmarkNextHops and
# BenchmarkHybridThroughput (via go test), a fixed fig08+fig09 pass with a
# heap summary, a K=16 shard-speedup probe (4 conservative-PDES shards vs
# 1), a hybrid-speedup probe (packet vs hybrid mode on the
# long-background-flows workload), and the full `-all -scale 0.1`
# experiments workload, writing everything to a tracked JSON baseline.
#
#   scripts/bench.sh                       # print, write BENCH_9.json
#   scripts/bench.sh -out BENCH_10.json    # write a new baseline
#   scripts/bench.sh -compare BENCH_9.json # exit non-zero on >20% events/sec
#                                          # loss, >20% allocs/op growth
#                                          # (throughput or incast), >0.9
#                                          # allocs per packet, any
#                                          # allocation in the packet pool,
#                                          # a hybrid speedup below 5x, or
#                                          # (on >= 4 procs) a 4-shard
#                                          # speedup below 2x
#   scripts/bench.sh -skip-all ...         # skip the slow -all pass
#
# Pass -compare (without -out) in CI to gate on the checked-in baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

args=("$@")
if [ $# -eq 0 ]; then
    args=(-out BENCH_9.json)
fi

exec go run ./cmd/bench "${args[@]}"
