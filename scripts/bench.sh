#!/usr/bin/env bash
# bench.sh — measure the simulator's performance baseline.
#
# Runs BenchmarkSimulatorThroughput under both scheduler engines (wheel and
# heap — their in-process ratio is the noise-robust number), plus
# BenchmarkIncastBurst, BenchmarkPacketPool and BenchmarkNextHops (via go
# test), a fixed fig08+fig09 pass with a heap summary, and the full
# `-all -scale 0.1` experiments workload, writing everything to a tracked
# JSON baseline.
#
#   scripts/bench.sh                       # print, write BENCH_7.json
#   scripts/bench.sh -out BENCH_8.json     # write a new baseline
#   scripts/bench.sh -compare BENCH_7.json # exit non-zero on >20% events/sec
#                                          # loss, >20% allocs/op growth,
#                                          # >0.9 allocs per packet, or any
#                                          # allocation in the packet pool
#   scripts/bench.sh -skip-all ...         # skip the slow -all pass
#
# Pass -compare (without -out) in CI to gate on the checked-in baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

args=("$@")
if [ $# -eq 0 ]; then
    args=(-out BENCH_7.json)
fi

exec go run ./cmd/bench "${args[@]}"
