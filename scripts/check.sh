#!/usr/bin/env bash
# check.sh — the full local gate, in the order a CI pipeline would run it.
# Every step must pass; the script stops at the first failure.
#
#   fmt   gofmt on every tracked .go file (fails listing unformatted files)
#   vet   go vet across the module
#   lint  dibslint: the simulator's own determinism / virtual-time rules
#   build go build everything, including cmd/ and examples/
#   test  full test suite (use SHORT=1 for the quick subset)
#   race  race detector over the fast packages (RACE=0 to skip)
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s\n' "$*"; }

step "gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

step "go vet"
go vet ./...

step "dibslint"
go run ./cmd/dibslint -tests ./...

# The shard-confinement proof must hold with zero suppressions: the PDES
# engine and its netsim sharding layer may not carry any //dibslint:ignore
# without a reason, and must lint clean on their own. The fluid solver joins
# the same regime: float rates and coarse ticks are exactly what the
# float-eq and vtime rules police, so it may not suppress them.
step "dibslint shard confinement + fluid solver (zero suppressions)"
go run ./cmd/dibslint ./internal/pdes ./internal/netsim ./internal/fluid
bare_ignores=$(grep -rn '//dibslint:ignore[[:space:]]*$\|//dibslint:ignore[[:space:]]\+[a-z-]\+[[:space:]]*$' \
    internal/pdes internal/netsim internal/fluid --include='*.go' || true)
if [ -n "$bare_ignores" ]; then
    echo "reason-less //dibslint:ignore directives in shard packages:" >&2
    echo "$bare_ignores" >&2
    exit 1
fi

step "go build"
go build ./...

step "go test"
if [ "${SHORT:-0}" = "1" ]; then
    go test -short ./...
else
    go test ./...
fi

# The hybrid mode's two acceptance properties run by name even in SHORT
# mode, so a future -short guard on them can never silently retire the
# gate: byte-identical hybrid runs, and fluid-path FCT percentiles within
# tolerance of the all-packet reference.
step "hybrid determinism + FCT agreement"
go test -count=1 -run 'TestHybridDeterminism|TestHybridEnginesAgree|TestHybridFCTAgreement' ./internal/netsim

if [ "${RACE:-1}" = "1" ]; then
    step "go test -race (short)"
    go test -race -short ./...

    # The runner's concurrency proof runs full experiments, so -short skips
    # it above; run it explicitly — it is the gate for the parallel layer.
    step "go test -race internal/runner"
    go test -race -count=1 ./internal/runner

    # The sharded engine's determinism property (every shard count produces
    # the byte-identical run) doubles as its data-race proof: the window
    # loop's channel handoffs are the only synchronization it has.
    step "go test -race shard determinism"
    go test -race -count=1 -run TestShardCountInvariance ./internal/netsim
fi

printf '\nall checks passed\n'
