// Package dibs is a discrete-event reproduction of "DIBS: Just-in-time
// Congestion Mitigation for Data Centers" (Zarifis et al., EuroSys 2014).
//
// DIBS (detour-induced buffer sharing) lets a switch whose output queue is
// full detour packets to neighboring switches instead of dropping them,
// pooling the network's buffers to absorb transient incast bursts. This
// package is the public API over the simulator: describe a run with Config
// (topology, switch buffers, DIBS policy, transport, workload), call Run,
// and read the paper's metrics off Results.
//
//	cfg := dibs.DefaultConfig()              // K=8 fat-tree, DCTCP+DIBS
//	cfg.Duration = 500 * dibs.Millisecond
//	res := dibs.Run(cfg)
//	fmt.Println(res.QCT99, res.TotalDrops)
//
// The experiment harness that regenerates every figure of the paper lives
// in cmd/figures; runnable walkthroughs live in examples/.
package dibs

import (
	"errors"
	"io"
	"time"

	"dibs/internal/eventq"
	"dibs/internal/netsim"
	"dibs/internal/trace"
	"dibs/internal/transport"
	"dibs/internal/workload"
)

// Time is a virtual-time instant or duration in nanoseconds.
type Time = eventq.Time

// Duration converts a wall-clock time.Duration into virtual Time units.
//
//dibslint:ignore vtime-duration facade boundary converter, mirrors eventq.Duration
func Duration(d time.Duration) Time { return eventq.Duration(d) }

// Virtual-time units.
const (
	Nanosecond  = eventq.Nanosecond
	Microsecond = eventq.Microsecond
	Millisecond = eventq.Millisecond
	Second      = eventq.Second
)

// Config describes one simulation run; see DefaultConfig for the paper's
// Table 1 and 2 defaults.
type Config = netsim.Config

// Results carries the paper's metrics for one run (times in ms).
type Results = netsim.Results

// Network is a built simulation; use it directly to start custom flows.
type Network = netsim.Network

// QueryConfig parameterizes the partition-aggregate (incast) workload.
type QueryConfig = workload.QueryConfig

// OneShot describes a single synchronized incast (the §5.2 experiment).
type OneShot = netsim.OneShot

// LongFlows configures the §5.6 fairness workload.
type LongFlows = netsim.LongFlows

// SizeDist is an empirical flow-size distribution.
type SizeDist = workload.SizeDist

// TopoKind selects the network topology.
type TopoKind = netsim.TopoKind

// BufferMode selects the switch queue discipline.
type BufferMode = netsim.BufferMode

// SimMode selects the simulation fidelity mode (DESIGN §9).
type SimMode = netsim.SimMode

// DetourPolicy names a DIBS detour policy.
type DetourPolicy = netsim.DetourPolicy

// Transport selects the end-host congestion-control variant.
type Transport = transport.Variant

// SwitchArch selects the switch architecture (§4).
type SwitchArch = netsim.SwitchArch

// Switch architectures.
const (
	ArchOutputQueued = netsim.ArchOutputQueued
	ArchCIOQ         = netsim.ArchCIOQ
)

// Topology kinds.
const (
	TopoFatTree   = netsim.TopoFatTree
	TopoClick     = netsim.TopoClick
	TopoLinear    = netsim.TopoLinear
	TopoJellyfish = netsim.TopoJellyfish
	TopoHyperX    = netsim.TopoHyperX
)

// Switch buffer modes.
const (
	BufferDropTail = netsim.BufferDropTail
	BufferInfinite = netsim.BufferInfinite
	BufferShared   = netsim.BufferShared
	BufferPFabric  = netsim.BufferPFabric
)

// Simulation fidelity modes: full per-packet simulation (the default),
// pure rate-model long flows, or the hybrid that demotes stable long flows
// to the rate model and promotes them back under incast (DESIGN §9).
const (
	ModePacket = netsim.ModePacket
	ModeFluid  = netsim.ModeFluid
	ModeHybrid = netsim.ModeHybrid
)

// Detour policies (§2 default and the §7 variants).
const (
	PolicyRandom        = netsim.PolicyRandom
	PolicyLoadAware     = netsim.PolicyLoadAware
	PolicyFlowBased     = netsim.PolicyFlowBased
	PolicyProbabilistic = netsim.PolicyProbabilistic
)

// Transport variants.
const (
	DCTCP   = transport.DCTCP
	NewReno = transport.NewReno
	PFabric = transport.PFabric
)

// DefaultConfig returns the paper's default setup: K=8 fat-tree, 1 Gbps
// links, 100-packet buffers with ECN marking at 20, DCTCP (minRTO 10 ms,
// initial window 10, fast retransmit disabled), DIBS with the random
// policy, 300 qps incast of degree 40 x 20 KB, and 120 ms per-host
// background inter-arrivals.
func DefaultConfig() Config { return netsim.DefaultConfig() }

// Build assembles the network described by cfg without running it, for
// callers that start flows manually.
func Build(cfg Config) *Network { return netsim.Build(cfg) }

// Run builds the network, runs the configured workloads for
// cfg.Duration+cfg.Drain of virtual time, and returns the measurements.
func Run(cfg Config) *Results { return netsim.Build(cfg).Run() }

// WebSearchBackground returns the background flow-size distribution used by
// the paper's simulations (approximating the DCTCP paper's traces).
func WebSearchBackground() *SizeDist { return workload.WebSearchBackground() }

// WriteEventTrace writes a network's recorded event log (Config.TraceEvents
// must have been set) as JSON Lines.
func WriteEventTrace(w io.Writer, n *Network) error {
	if n.Trace == nil {
		return errors.New("dibs: event tracing was not enabled (set Config.TraceEvents)")
	}
	return trace.WriteJSONL(w, n.Trace.Events())
}

// ReadEventTrace parses a JSONL event trace written by WriteEventTrace.
func ReadEventTrace(r io.Reader) ([]TraceEvent, error) { return trace.ReadJSONL(r) }

// TraceEvent is one structured simulation event.
type TraceEvent = trace.Event
