// Command dibslint runs the repo's determinism/virtual-time/metric lint
// suite over package patterns and exits non-zero on findings:
//
//	go run ./cmd/dibslint ./...
//	go run ./cmd/dibslint -tests -json ./...
//	go run ./cmd/dibslint -rules
//
// Output is one finding per line, file:line:col: rule-id: message, sorted
// by position; -json emits a JSON array (rule, position, message,
// severity) instead, and -sarif emits a SARIF 2.1.0 log with
// repo-root-relative URIs, ready for GitHub code-scanning upload. Exit
// status: 0 clean or warnings only, 1 error-level findings, 2 usage or
// load failure. -disable=rule1,rule2 drops specific rules for one
// invocation. -workers=n analyzes packages in parallel (default one
// worker per CPU); findings are identical and identically ordered at any
// worker count.
//
// Suppress a single finding with a trailing or preceding comment:
//
//	//dibslint:ignore RULE reason
//
// The reason is mandatory; a bare ignore is itself reported. Test files
// are skipped by default; -tests loads them too (in-package and external
// _test packages) and applies the rules marked as test-relevant in
// -rules — seeding from the wall clock or the process-global rand source
// makes a test flaky-by-construction.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dibs/internal/lint"
	"dibs/internal/runner"
)

func main() {
	rules := flag.Bool("rules", false, "list rule IDs and exit")
	tests := flag.Bool("tests", false, "also lint _test.go files (test-relevant rules only)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	sarifOut := flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log on stdout (for code-scanning upload)")
	disable := flag.String("disable", "", "comma-separated rule IDs to skip")
	workers := flag.Int("workers", 0, "packages analyzed in parallel (0 = one per CPU); output is identical at any setting")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dibslint [-rules] [-tests] [-json|-sarif] [-disable=rule,...] [-workers=n] [packages]\n\npatterns: directories, or dir/... for recursion (default ./...)\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *jsonOut && *sarifOut {
		fatal(fmt.Errorf("-json and -sarif are mutually exclusive"))
	}

	if *rules {
		for _, r := range lint.AllRules() {
			marks := r.Severity
			if r.InTests {
				marks += ",tests"
			}
			fmt.Printf("%-20s [%s] %s\n", r.ID, marks, r.Doc)
		}
		return
	}

	disabled := make(map[string]bool)
	for _, id := range strings.Split(*disable, ",") {
		if id = strings.TrimSpace(id); id != "" {
			disabled[id] = true
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	dirs, err := expand(patterns)
	if err != nil {
		fatal(err)
	}
	var pkgs []*lint.Package
	for _, dir := range dirs {
		path, err := loader.PathFor(dir)
		if err != nil {
			fatal(err)
		}
		if *tests {
			tp, err := loader.LoadTests(path)
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, tp...)
		} else {
			pkg, err := loader.Load(path)
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, pkg)
		}
	}

	all := loader.RunParallel(pkgs, lint.Analyzers(), runner.DefaultWorkers(*workers))
	findings := all[:0]
	for _, f := range all {
		if !disabled[f.Rule] {
			findings = append(findings, f)
		}
	}
	errors := 0
	for _, f := range findings {
		if f.Severity == lint.SevError {
			errors++
		}
	}
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, findings); err != nil {
			fatal(err)
		}
	} else if *sarifOut {
		root, err := os.Getwd()
		if err != nil {
			root = ""
		}
		if err := lint.WriteSARIF(os.Stdout, findings, root); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(loader.TypeErrors) > 0 {
		fmt.Fprintf(os.Stderr, "dibslint: %d type-check diagnostics (first: %v)\n",
			len(loader.TypeErrors), loader.TypeErrors[0])
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dibslint: %d finding(s), %d error(s)\n", len(findings), errors)
	}
	if errors > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dibslint:", err)
	os.Exit(2)
}

// expand resolves patterns (dir or dir/...) to the sorted set of
// directories containing at least one non-test Go file (a package must
// have production sources to be loaded, even with -tests).
func expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) error {
		ok, err := hasGoFiles(dir)
		if err != nil || !ok {
			return err
		}
		if abs, err := filepath.Abs(dir); err == nil {
			dir = abs
		}
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	}
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "/..."); ok {
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				return add(path)
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		ok, err := hasGoFiles(pat)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("no Go files in %s", pat)
		}
		if err := add(pat); err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}
