// Command dibsim runs a single configurable DIBS simulation and prints the
// paper's metrics, exposing every Table 1/2 knob as a flag.
//
// Examples:
//
//	dibsim                                   # paper defaults, 1s of traffic
//	dibsim -dibs=false                       # plain DCTCP baseline
//	dibsim -qps 2000 -degree 100             # intense incast
//	dibsim -buffer 25 -policy load-aware     # small buffers, §7 policy
//	dibsim -topo jellyfish -duration 500ms   # another topology
//	dibsim -repeat 8 -workers 4              # 8 seeds in parallel, aggregated
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"dibs"
	"dibs/internal/prof"
	"dibs/internal/runner"
	"dibs/internal/stats"
)

func main() {
	var (
		topo     = flag.String("topo", "fattree", "topology: fattree|click|linear|jellyfish|hyperx")
		k        = flag.Int("k", 8, "fat-tree K")
		oversub  = flag.Int("oversub", 1, "uplink capacity divisor (1:f^2 oversubscription)")
		buffer   = flag.Int("buffer", 100, "per-port buffer (packets)")
		bufMode  = flag.String("bufmode", "droptail", "buffer mode: droptail|infinite|shared|pfabric")
		markAt   = flag.Int("markat", 20, "DCTCP ECN marking threshold (packets, 0=off)")
		useDIBS  = flag.Bool("dibs", true, "enable DIBS detouring")
		policy   = flag.String("policy", "random", "detour policy: random|load-aware|flow-based|probabilistic")
		tp       = flag.String("transport", "dctcp", "transport: dctcp|newreno|pfabric")
		ttl      = flag.Int("ttl", 255, "initial packet TTL")
		dupack   = flag.Int("dupack", 0, "dup-ack threshold (0 disables fast retransmit)")
		qps      = flag.Float64("qps", 300, "query arrival rate (0 disables incast)")
		degree   = flag.Int("degree", 40, "incast degree")
		respKB   = flag.Int64("response", 20, "query response size (KB)")
		bgIAms   = flag.Float64("bg", 120, "per-host background inter-arrival (ms, 0 disables)")
		duration = flag.Duration("duration", time.Second, "traffic generation window")
		drain    = flag.Duration("drain", 300*time.Millisecond, "extra drain time")
		seed     = flag.Int64("seed", 1, "RNG seed")
		fairN    = flag.Int("longflows", 0, "long-lived flows per host pair (fairness mode)")
		pfc      = flag.Bool("pfc", false, "enable Ethernet flow control (implies -bufmode shared, -dibs=false)")
		spray    = flag.Bool("spray", false, "packet-level ECMP instead of flow-level")
		delack   = flag.Bool("delack", false, "DCTCP delayed-ACK ECN-echo state machine")
		repeat   = flag.Int("repeat", 1, "repeat the run over seeds seed..seed+N-1 and aggregate")
		workers  = flag.Int("workers", 0, "parallel runs for -repeat (0 = GOMAXPROCS, 1 = serial); output is identical for any value")
		events   = flag.String("events", "", "write a JSONL event trace to this file")
		confIn   = flag.String("config", "", "load a JSON config file (flags apply on top where set)")
		confOut  = flag.String("dumpconfig", "", "write the effective JSON config to this file and exit")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		engine   = flag.String("engine", "wheel", "scheduler engine: wheel|heap (results are byte-identical; heap is the differential reference)")
		shards   = flag.Int("shards", 1, "conservative-PDES scheduler shards within one run (results are byte-identical for any count; >1 forbids -events)")
		mode     = flag.String("mode", "packet", "simulation fidelity: packet|fluid|hybrid (fluid/hybrid rate-model long flows; see DESIGN §9 for the options they exclude)")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	cfg := dibs.DefaultConfig()
	if *confIn != "" {
		// Pure config mode: the JSON file fully describes the run and the
		// tuning flags are ignored (only -events/-dumpconfig still apply).
		data, err := os.ReadFile(*confIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reading config: %v\n", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(data, &cfg); err != nil {
			fmt.Fprintf(os.Stderr, "parsing config: %v\n", err)
			os.Exit(1)
		}
	} else {
		applyFlags(&cfg, flags{
			topo: *topo, k: *k, oversub: *oversub, buffer: *buffer,
			bufMode: *bufMode, markAt: *markAt, useDIBS: *useDIBS,
			policy: *policy, tp: *tp, ttl: *ttl, dupack: *dupack,
			qps: *qps, degree: *degree, respKB: *respKB, bgIAms: *bgIAms,
			duration: *duration, drain: *drain, seed: *seed, fairN: *fairN,
			pfc: *pfc, spray: *spray, delack: *delack, engine: *engine,
			shards: *shards, mode: *mode,
		})
	}
	if *events != "" {
		cfg.TraceEvents = true
	}

	if *repeat > 1 {
		if *events != "" || *confOut != "" {
			fmt.Fprintln(os.Stderr, "-repeat is incompatible with -events and -dumpconfig")
			os.Exit(2)
		}
		runRepeat(cfg, *repeat, *workers)
		return
	}
	runIt(cfg, *confOut, *events)
}

// runRepeat runs the configuration across consecutive seeds — in parallel
// when workers allows — printing per-seed summaries in seed order plus
// aggregate tail statistics. Each run is a pure function of its seed, so
// the output is identical for every worker count.
func runRepeat(cfg dibs.Config, repeat, workers int) {
	start := time.Now()
	baseSeed := cfg.Seed
	results := runner.Map(workers, repeat, func(i int) *dibs.Results {
		c := cfg
		c.Seed = baseSeed + int64(i)
		return dibs.Build(c).Run()
	})

	var qct99, fct99, drops, detours stats.Sample
	for i, r := range results {
		fmt.Printf("seed %-6d %s\n", baseSeed+int64(i), r)
		qct99.Add(r.QCT99)
		fct99.Add(r.ShortFCT99)
		drops.Add(float64(r.TotalDrops))
		detours.Add(float64(r.Detours))
	}
	fmt.Printf("\naggregate over %d seeds (%d..%d)\n", repeat, baseSeed, baseSeed+int64(repeat)-1)
	fmt.Printf("QCT99    mean %8.2f ms   min %8.2f   max %8.2f\n", qct99.Mean(), qct99.Min(), qct99.Max())
	fmt.Printf("FCT99    mean %8.2f ms   min %8.2f   max %8.2f\n", fct99.Mean(), fct99.Min(), fct99.Max())
	fmt.Printf("drops    mean %8.1f      min %8.0f   max %8.0f\n", drops.Mean(), drops.Min(), drops.Max())
	fmt.Printf("detours  mean %8.1f      min %8.0f   max %8.0f\n", detours.Mean(), detours.Min(), detours.Max())
	fmt.Fprintf(os.Stderr, "[wall %.1fs]\n", time.Since(start).Seconds())
}

// flags bundles the command-line tuning knobs.
type flags struct {
	topo, bufMode, policy, tp   string
	engine, mode                string
	k, oversub, buffer, markAt  int
	ttl, dupack, degree, fairN  int
	shards                      int
	respKB                      int64
	qps, bgIAms                 float64
	duration, drain             time.Duration
	seed                        int64
	useDIBS, pfc, spray, delack bool
}

func applyFlags(cfg *dibs.Config, f flags) {
	switch f.topo {
	case "fattree":
		cfg.Topo = dibs.TopoFatTree
	case "click":
		cfg.Topo = dibs.TopoClick
	case "linear":
		cfg.Topo = dibs.TopoLinear
		cfg.LinearSwitches, cfg.LinearHostsPer = 8, 4
	case "jellyfish":
		cfg.Topo = dibs.TopoJellyfish
		cfg.JellyfishSwitches, cfg.JellyfishDegree, cfg.JellyfishHostsPer = 16, 4, 4
	case "hyperx":
		cfg.Topo = dibs.TopoHyperX
		cfg.HyperXX, cfg.HyperXY, cfg.HyperXHostsPer = 4, 4, 4
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", f.topo)
		os.Exit(2)
	}
	cfg.FatTreeK = f.k
	cfg.Oversub = f.oversub
	cfg.BufferPkts = f.buffer
	cfg.MarkAtPkts = f.markAt
	switch f.bufMode {
	case "droptail":
		cfg.Buffer = dibs.BufferDropTail
	case "infinite":
		cfg.Buffer = dibs.BufferInfinite
	case "shared":
		cfg.Buffer = dibs.BufferShared
	case "pfabric":
		cfg.Buffer = dibs.BufferPFabric
	default:
		fmt.Fprintf(os.Stderr, "unknown buffer mode %q\n", f.bufMode)
		os.Exit(2)
	}
	cfg.DIBS = f.useDIBS
	switch f.policy {
	case "random":
		cfg.Policy = dibs.PolicyRandom
	case "load-aware":
		cfg.Policy = dibs.PolicyLoadAware
	case "flow-based":
		cfg.Policy = dibs.PolicyFlowBased
	case "probabilistic":
		cfg.Policy = dibs.PolicyProbabilistic
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", f.policy)
		os.Exit(2)
	}
	switch f.tp {
	case "dctcp":
		cfg.Transport = dibs.DCTCP
	case "newreno":
		cfg.Transport = dibs.NewReno
	case "pfabric":
		cfg.Transport = dibs.PFabric
	default:
		fmt.Fprintf(os.Stderr, "unknown transport %q\n", f.tp)
		os.Exit(2)
	}
	cfg.TTL = f.ttl
	cfg.DupAckThresh = f.dupack
	cfg.Seed = f.seed
	cfg.Duration = dibs.Duration(f.duration)
	cfg.Drain = dibs.Duration(f.drain)
	if f.qps > 0 {
		cfg.Query = &dibs.QueryConfig{QPS: f.qps, Degree: f.degree, ResponseBytes: f.respKB * 1000}
	} else {
		cfg.Query = nil
	}
	if f.bgIAms > 0 {
		cfg.BGInterarrival = dibs.Time(f.bgIAms * float64(dibs.Millisecond))
	} else {
		cfg.BGInterarrival = 0
	}
	if f.fairN > 0 {
		cfg.Long = &dibs.LongFlows{PerPair: f.fairN}
	}
	if f.pfc {
		cfg.PFC = true
		cfg.DIBS = false
		cfg.Buffer = dibs.BufferShared
	}
	cfg.PacketSpray = f.spray
	cfg.DelayedAck = f.delack
	switch f.engine {
	case "wheel", "heap":
		cfg.Engine = f.engine
	default:
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", f.engine)
		os.Exit(2)
	}
	cfg.Shards = f.shards
	switch f.mode {
	case "packet":
		cfg.Mode = dibs.ModePacket
	case "fluid":
		cfg.Mode = dibs.ModeFluid
	case "hybrid":
		cfg.Mode = dibs.ModeHybrid
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", f.mode)
		os.Exit(2)
	}
}

func runIt(cfg dibs.Config, confOut, events string) {
	if confOut != "" {
		data, err := json.MarshalIndent(cfg, "", "  ")
		if err == nil {
			err = os.WriteFile(confOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing config: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", confOut)
		return
	}

	start := time.Now()
	net := dibs.Build(cfg)
	res := net.Run()
	if events != "" {
		f, err := os.Create(events)
		if err == nil {
			err = dibs.WriteEventTrace(f, net)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing events: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[event trace: %s — %s]\n", events, net.Trace.Summary())
	}
	fmt.Println(res)
	fmt.Printf("\nQCT   p50 %8.2f ms   p99 %8.2f ms   max %8.2f ms  (%d/%d queries)\n",
		res.QCT50, res.QCT99, res.QCTMax, res.QueriesDone, res.QueriesStarted)
	fmt.Printf("FCT   p50 %8.2f ms   p99 %8.2f ms  (short background flows, %d bg flows done)\n",
		res.ShortFCT50, res.ShortFCT99, res.BGFlowsDone)
	fmt.Printf("loss  %d drops (%d overflow)   detours %d (%.1f%% of delivered)\n",
		res.TotalDrops, res.Drops[0], res.Detours, 100*res.DetouredFrac)
	fmt.Printf("recovery  %d timeouts, %d retransmits, %d fast recoveries\n",
		res.Timeouts, res.Retransmits, res.FastRecovers)
	if len(res.LongGoodputs) > 0 {
		fmt.Printf("fairness  Jain %.3f over %d long flows\n", res.JainIndex, len(res.LongGoodputs))
	}
	if res.FluidBytes > 0 {
		fmt.Printf("fluid  %d bytes rate-modeled  %d demotions  %d promotions  %d flows still fluid\n",
			res.FluidBytes, res.FluidDemotions, res.FluidPromotions, res.FluidFlows)
	}
	fmt.Fprintf(os.Stderr, "[wall %.1fs]\n", time.Since(start).Seconds())
}
