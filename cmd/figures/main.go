// Command figures regenerates the tables and figures of the DIBS paper's
// evaluation (§5) and prints their numeric series as aligned text.
//
// Usage:
//
//	figures -list                 # enumerate experiments
//	figures -fig fig08            # run one experiment
//	figures -all                  # run everything (tens of minutes at -scale 1)
//	figures -all -scale 0.2       # faster, noisier
//	figures -fig fig06 -seed 7 -v # change seed, log per-run summaries
//
// Experiment IDs follow the paper's figure numbers (fig01..fig16) plus the
// in-text experiments — dba (§5.5.2), oversub (§5.5.4), fair (§5.6) — and
// the ablations beyond the paper's own plots: policies, topos, dupack (§7),
// pfc and spray (§6), cioq and minrto (§4), delack (methodology).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dibs/internal/experiments"
	"dibs/internal/prof"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		fig     = flag.String("fig", "", "comma-separated experiment IDs to run (e.g. fig08,fig09)")
		all     = flag.Bool("all", false, "run every experiment")
		seed    = flag.Int64("seed", 1, "base RNG seed")
		scale   = flag.Float64("scale", 1.0, "duration scale factor (smaller = faster, noisier)")
		verbose = flag.Bool("v", false, "log each simulation run")
		format  = flag.String("format", "text", "output format: text|json|csv")
		workers = flag.Int("workers", 0, "parallel sweep runs (0 = GOMAXPROCS, 1 = serial); output is identical for any value")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	case *fig != "":
		ids = strings.Split(*fig, ",")
	default:
		flag.Usage()
		os.Exit(2)
	}

	opts := experiments.Opts{Seed: *seed, Scale: *scale, Workers: *workers}
	if *verbose {
		opts.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		if *format == "text" {
			fmt.Printf("# %s — %s (seed %d, scale %g)\n\n", e.ID, e.Title, *seed, *scale)
		}
		for _, table := range e.Run(opts) {
			var err error
			switch *format {
			case "text":
				table.Render(os.Stdout)
			case "json":
				err = table.WriteJSON(os.Stdout)
			case "csv":
				fmt.Printf("# %s\n", table.ID)
				err = table.WriteCSV(os.Stdout)
			default:
				fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
				os.Exit(2)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", table.ID, err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %.1fs]\n", e.ID, time.Since(start).Seconds())
	}
}
