// Command topoviz inspects the simulator's topologies: node inventory,
// link structure, FIB/ECMP properties, and detour-relevant statistics
// (switch degree, host-port counts, path diversity).
//
// Examples:
//
//	topoviz -topo fattree -k 8
//	topoviz -topo jellyfish -dot > jf.dot   # Graphviz output
package main

import (
	"flag"
	"fmt"
	"os"

	"dibs/internal/packet"
	"dibs/internal/stats"
	"dibs/internal/topology"
)

func main() {
	var (
		kind = flag.String("topo", "fattree", "fattree|click|linear|jellyfish|hyperx")
		k    = flag.Int("k", 4, "fat-tree K")
		dot  = flag.Bool("dot", false, "emit Graphviz dot instead of a summary")
		seed = flag.Int64("seed", 1, "seed (jellyfish)")
	)
	flag.Parse()

	var topo *topology.Topology
	spec := topology.DefaultLink
	switch *kind {
	case "fattree":
		topo = topology.FatTree(*k, spec, 1)
	case "click":
		topo = topology.ClickTestbed(spec)
	case "linear":
		topo = topology.Linear(8, 4, spec)
	case "jellyfish":
		topo = topology.Jellyfish(16, 4, 4, spec, *seed)
	case "hyperx":
		topo = topology.HyperX(4, 4, 4, spec)
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *kind)
		os.Exit(2)
	}

	if *dot {
		emitDot(topo)
		return
	}

	fmt.Printf("topology %s: %d nodes (%d hosts, %d switches)\n",
		topo.Name, topo.NumNodes(), len(topo.Hosts()), len(topo.Switches()))
	fmt.Printf("diameter: %d links\n", topo.Diameter())

	var degree, hostPorts, detourable stats.Sample
	for _, sw := range topo.Switches() {
		degree.Add(float64(len(topo.Ports(sw))))
		hp, dt := 0, 0
		for pi := range topo.Ports(sw) {
			if topo.IsHostPort(sw, pi) {
				hp++
			} else {
				dt++
			}
		}
		hostPorts.Add(float64(hp))
		detourable.Add(float64(dt))
	}
	fmt.Printf("switch ports: mean %.1f (min %.0f max %.0f)\n", degree.Mean(), degree.Min(), degree.Max())
	fmt.Printf("detour-eligible ports per switch: mean %.1f (min %.0f max %.0f)\n",
		detourable.Mean(), detourable.Min(), detourable.Max())

	// Path diversity: ECMP fan-out at the first switch of each host pair.
	var ecmp stats.Sample
	hosts := topo.Hosts()
	for i, src := range hosts {
		edge := topo.Ports(src)[0].Peer
		for j, dst := range hosts {
			if i == j {
				continue
			}
			ecmp.Add(float64(len(topo.NextHops(edge, dst))))
		}
	}
	fmt.Printf("ECMP width at first switch: mean %.2f, p99 %.0f\n", ecmp.Mean(), ecmp.Percentile(99))
}

func emitDot(topo *topology.Topology) {
	fmt.Println("graph topo {")
	fmt.Println("  layout=neato; overlap=false;")
	for id := packet.NodeID(0); int(id) < topo.NumNodes(); id++ {
		n := topo.Node(id)
		shape := "box"
		if n.Kind == topology.Host {
			shape = "ellipse"
		}
		fmt.Printf("  %q [shape=%s];\n", n.Name, shape)
	}
	for id := packet.NodeID(0); int(id) < topo.NumNodes(); id++ {
		for pi, p := range topo.Ports(id) {
			// Emit each undirected link once.
			if p.Peer > id || (p.Peer == id && p.PeerPort > pi) {
				fmt.Printf("  %q -- %q;\n", topo.Node(id).Name, topo.Node(p.Peer).Name)
			}
		}
	}
	fmt.Println("}")
}
