// Command bench produces and checks the repository's tracked performance
// baseline (BENCH_N.json).
//
// It runs the headline Go benchmarks (BenchmarkSimulatorThroughput under
// both scheduler engines, BenchmarkIncastBurst, BenchmarkPacketPool,
// BenchmarkNextHops, BenchmarkHybridThroughput) as a `go test -bench`
// subprocess, times a fixed small-scale fig08+fig09 pass (recording a heap
// summary around it), a K=16 shard-speedup probe (4 conservative-PDES
// shards vs 1), a hybrid-speedup probe (packet vs hybrid mode on the
// long-background-flows workload), and a full `-all -scale 0.1`
// experiments pass in-process, and writes the numbers as JSON. The throughput benchmark also reports pkts/op, from which
// allocs_per_packet is derived — the headline number of the
// zero-allocation packet path. Running the wheel and heap engines
// back-to-back in one process makes their ratio robust to machine noise;
// the two absolute numbers drift together, the ratio does not.
//
// Usage:
//
//	bench -out BENCH_9.json              # measure and write the baseline
//	bench -compare BENCH_9.json          # measure and gate: exit 1 on a
//	                                     # >20% events/sec loss, a >20%
//	                                     # allocs/op growth (throughput or
//	                                     # incast), more than 0.9 allocs
//	                                     # per packet, any allocation in
//	                                     # the packet pool, a hybrid-mode
//	                                     # speedup < 5x, or (with >= 4
//	                                     # procs) a 4-shard speedup < 2x
//	bench -out B.json -skip-all          # skip the slow -all pass
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"time"

	"dibs/internal/eventq"
	"dibs/internal/experiments"
	"dibs/internal/netsim"
)

// Baseline is the tracked benchmark snapshot.
type Baseline struct {
	GoVersion  string                 `json:"go_version"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Benchmarks map[string]BenchResult `json:"benchmarks"`
	// Fig0809Seconds is the wall time of a fig08+fig09 pass at seed 1,
	// scale 0.1, default workers.
	Fig0809Seconds float64 `json:"fig08_09_seconds"`
	// Fig0809Heap summarizes heap behavior over that same pass.
	Fig0809Heap HeapSummary `json:"fig08_09_heap"`
	// AllScale01Seconds is the wall time of every experiment at scale 0.1
	// (the `cmd/figures -all -scale 0.1` workload), default workers.
	AllScale01Seconds float64 `json:"all_scale_0.1_seconds"`
	// ShardSpeedup is the events/sec ratio of a 4-shard over a 1-shard run
	// of the same K=16 fat-tree workload (conservative PDES, byte-identical
	// results). On a machine with fewer than 4 procs the sharded run cannot
	// win — the number is still recorded for transparency, but the >= 2x
	// gate only applies when GOMAXPROCS >= 4.
	ShardSpeedup float64 `json:"shard_speedup,omitempty"`
	// HybridSpeedup is the wall-clock ratio of a packet-mode run over a
	// hybrid-mode run of the same long-background-flows workload (the
	// BenchmarkHybridThroughput config). Unlike ShardSpeedup it needs no
	// extra cores — the rate model wins by simulating fewer events, not by
	// parallelism — so the >= 5x gate applies unconditionally.
	HybridSpeedup float64 `json:"hybrid_speedup,omitempty"`
}

// HeapSummary is a runtime.MemStats delta over a measured pass — the
// stdlib-only stand-in for a full heap profile, enough to spot an
// allocation-rate regression at a glance.
type HeapSummary struct {
	// TotalAllocMB is heap megabytes allocated during the pass.
	TotalAllocMB float64 `json:"total_alloc_mb"`
	// NumGC is the number of GC cycles the pass triggered.
	NumGC uint32 `json:"num_gc"`
	// HeapInUseMB is the live heap at the end of the pass.
	HeapInUseMB float64 `json:"heap_in_use_mb"`
}

// BenchResult is one parsed `go test -bench` line.
type BenchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// EventsPerSec is derived from the benchmark's events/op metric; only
	// BenchmarkSimulatorThroughput reports it.
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// PktsPerOp is the pkts/op metric (packets emitted per iteration);
	// AllocsPerPacket = AllocsPerOp / PktsPerOp, the per-packet allocation
	// budget of the hot path.
	PktsPerOp       float64 `json:"pkts_per_op,omitempty"`
	AllocsPerPacket float64 `json:"allocs_per_packet,omitempty"`
}

// regressionTolerance is the fraction of the baseline events/sec a new
// measurement may lose before -compare fails the run.
const regressionTolerance = 0.20

// minShardSpeedup is the events/sec ratio a 4-shard K=16 run must reach
// over the 1-shard run when the machine actually has 4 procs to run them on.
const minShardSpeedup = 2.0

// minHybridSpeedup is the wall-clock factor the hybrid fluid/packet mode
// must gain over full packet fidelity on the long-background-flows
// workload. The rate model replaces ~per-packet events with coarse ticks,
// so the measured ratio sits far above this floor; 5x leaves room for the
// packet-fidelity warm-up before the flows demote.
const minHybridSpeedup = 5.0

// maxAllocsPerPacket is the absolute ceiling on steady-state allocations
// per simulated packet, gated independently of the stored baseline. The
// flattened-FIB topology and chunked event nodes brought the measured value
// to ~0.6; the ceiling leaves noise headroom while staying well under the
// 1.38 the previous baseline tolerated.
const maxAllocsPerPacket = 0.9

func main() {
	var (
		out     = flag.String("out", "", "write the measured baseline to this JSON file")
		compare = flag.String("compare", "", "baseline JSON to gate against (>20% events/sec regression fails)")
		skipAll = flag.Bool("skip-all", false, "skip the full -all -scale 0.1 experiments pass")
	)
	flag.Parse()
	if *out == "" && *compare == "" {
		fmt.Fprintln(os.Stderr, "bench: need -out and/or -compare")
		os.Exit(2)
	}

	b := Baseline{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]BenchResult{},
	}

	fmt.Fprintln(os.Stderr, "== go test -bench (throughput, incast)")
	if err := runGoBench(&b); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}

	fmt.Fprintln(os.Stderr, "== fig08+fig09 pass (scale 0.1)")
	b.Fig0809Seconds, b.Fig0809Heap = timeExperimentsWithHeap([]string{"fig08", "fig09"})
	fmt.Fprintf(os.Stderr, "   %.1fs, %.0f MB allocated, %d GCs, %.0f MB live\n",
		b.Fig0809Seconds, b.Fig0809Heap.TotalAllocMB, b.Fig0809Heap.NumGC, b.Fig0809Heap.HeapInUseMB)

	fmt.Fprintln(os.Stderr, "== shard speedup (K=16, 4 shards vs 1)")
	b.ShardSpeedup = measureShardSpeedup()
	fmt.Fprintf(os.Stderr, "   %.2fx at GOMAXPROCS=%d\n", b.ShardSpeedup, b.GOMAXPROCS)

	fmt.Fprintln(os.Stderr, "== hybrid speedup (long flows, packet vs hybrid)")
	b.HybridSpeedup = measureHybridSpeedup()
	fmt.Fprintf(os.Stderr, "   %.2fx\n", b.HybridSpeedup)

	if !*skipAll {
		fmt.Fprintln(os.Stderr, "== all experiments (scale 0.1)")
		var ids []string
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
		b.AllScale01Seconds = timeExperiments(ids)
		fmt.Fprintf(os.Stderr, "   %.1fs\n", b.AllScale01Seconds)
	}

	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	os.Stdout.Write(data)

	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	if *compare != "" {
		if err := gate(*compare, b); err != nil {
			fmt.Fprintf(os.Stderr, "bench: REGRESSION: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "no regression vs %s\n", *compare)
	}
}

// benchLineRe matches `go test -bench` result lines, e.g.
// BenchmarkSimulatorThroughput-4  5  244034957 ns/op  425379 events/op  42216896 B/op  1389550 allocs/op
var benchLineRe = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)
var metricRe = regexp.MustCompile(`([\d.e+]+)\s+(\S+)`)

// runGoBench executes the headline benchmarks in a subprocess and parses
// the results into b.
func runGoBench(b *Baseline) error {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "^(BenchmarkSimulatorThroughput|BenchmarkSimulatorThroughputHeap|BenchmarkIncastBurst|BenchmarkPacketPool|BenchmarkNextHops|BenchmarkHybridThroughput)$",
		"-benchmem", ".")
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(outBytes), -1) {
		m := benchLineRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		var r BenchResult
		var eventsPerOp float64
		for _, mm := range metricRe.FindAllStringSubmatch(m[2], -1) {
			v, err := strconv.ParseFloat(mm[1], 64)
			if err != nil {
				continue
			}
			switch mm[2] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			case "events/op":
				eventsPerOp = v
			case "pkts/op":
				r.PktsPerOp = v
			}
		}
		if eventsPerOp > 0 && r.NsPerOp > 0 {
			r.EventsPerSec = eventsPerOp / r.NsPerOp * 1e9
		}
		if r.PktsPerOp > 0 {
			r.AllocsPerPacket = r.AllocsPerOp / r.PktsPerOp
		}
		b.Benchmarks[name] = r
		fmt.Fprintf(os.Stderr, "   %s\n", line)
	}
	if _, ok := b.Benchmarks["BenchmarkSimulatorThroughput"]; !ok {
		return fmt.Errorf("BenchmarkSimulatorThroughput missing from bench output")
	}
	wheel := b.Benchmarks["BenchmarkSimulatorThroughput"]
	if heap, ok := b.Benchmarks["BenchmarkSimulatorThroughputHeap"]; ok && heap.EventsPerSec > 0 {
		fmt.Fprintf(os.Stderr, "   wheel/heap events/sec ratio: %.2fx\n",
			wheel.EventsPerSec/heap.EventsPerSec)
	}
	return nil
}

// measureShardSpeedup times one K=16 fat-tree workload (1024 hosts, 320
// switches, default background + query traffic) under 1 and then 4
// conservative-PDES scheduler shards and returns the events/sec ratio.
// Results are byte-identical by construction (the property netsim's
// TestShardCountInvariance pins), so this measures pure engine throughput.
func measureShardSpeedup() float64 {
	run := func(shards int) float64 {
		cfg := netsim.DefaultConfig()
		cfg.FatTreeK = 16
		cfg.Seed = 7
		cfg.Duration = 3 * eventq.Millisecond
		cfg.Drain = 20 * eventq.Millisecond
		cfg.BGInterarrival = 5 * eventq.Millisecond
		cfg.Shards = shards
		n := netsim.Build(cfg)
		start := time.Now()
		n.Run()
		return float64(n.Executed()) / time.Since(start).Seconds()
	}
	one := run(1)
	four := run(4)
	fmt.Fprintf(os.Stderr, "   1 shard: %.0f events/sec, 4 shards: %.0f events/sec\n", one, four)
	return four / one
}

// measureHybridSpeedup times the long-background-flows workload (the
// BenchmarkHybridThroughput config: K=4 fat-tree, one long flow per
// adjacent host pair, marking NICs) at full packet fidelity and in hybrid
// mode, returning the wall-clock ratio. Hybrid runs the same flows as
// packets until their cwnds stabilize, then hands the bulk of the bytes to
// the rate model, so the ratio is the real end-to-end payoff of the fast
// path — not an events-only accounting trick.
func measureHybridSpeedup() float64 {
	run := func(mode netsim.SimMode) float64 {
		cfg := netsim.DefaultConfig()
		cfg.FatTreeK = 4
		cfg.Seed = 7
		cfg.Query = nil
		cfg.BGInterarrival = 0
		cfg.Long = &netsim.LongFlows{PerPair: 1}
		cfg.HostMarkAtPkts = 20
		cfg.Mode = mode
		cfg.Duration = 300 * eventq.Millisecond
		cfg.Drain = 0
		n := netsim.Build(cfg)
		start := time.Now()
		n.Run()
		return time.Since(start).Seconds()
	}
	pkt := run(netsim.ModePacket)
	hyb := run(netsim.ModeHybrid)
	fmt.Fprintf(os.Stderr, "   packet: %.2fs, hybrid: %.2fs\n", pkt, hyb)
	return pkt / hyb
}

// timeExperiments runs the named experiments at the fixed baseline setting
// (seed 1, scale 0.1, default workers) and returns the wall time.
func timeExperiments(ids []string) float64 {
	opts := experiments.Opts{Seed: 1, Scale: 0.1}
	start := time.Now()
	for _, id := range ids {
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "bench: unknown experiment %q\n", id)
			os.Exit(1)
		}
		if tables := e.Run(opts); len(tables) == 0 {
			fmt.Fprintf(os.Stderr, "bench: %s produced no tables\n", id)
			os.Exit(1)
		}
	}
	return time.Since(start).Seconds()
}

// timeExperimentsWithHeap is timeExperiments plus a MemStats delta bracket:
// a GC before the pass settles the baseline, and the allocation/GC deltas
// over the pass form the heap summary.
func timeExperimentsWithHeap(ids []string) (float64, HeapSummary) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	secs := timeExperiments(ids)
	runtime.ReadMemStats(&after)
	const mb = 1 << 20
	return secs, HeapSummary{
		TotalAllocMB: float64(after.TotalAlloc-before.TotalAlloc) / mb,
		NumGC:        after.NumGC - before.NumGC,
		HeapInUseMB:  float64(after.HeapInuse) / mb,
	}
}

// gate fails when the new measurement regressed versus the stored baseline:
// more than regressionTolerance events/sec lost, more than
// regressionTolerance allocs/op gained, or any allocation at all in the
// packet pool's steady state.
func gate(path string, got Baseline) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want Baseline
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	baseTP := want.Benchmarks["BenchmarkSimulatorThroughput"]
	nowTP := got.Benchmarks["BenchmarkSimulatorThroughput"]
	if baseTP.EventsPerSec <= 0 {
		return fmt.Errorf("%s has no events/sec baseline", path)
	}
	if nowTP.EventsPerSec < baseTP.EventsPerSec*(1-regressionTolerance) {
		return fmt.Errorf("events/sec %.0f is %.1f%% below baseline %.0f (tolerance %.0f%%)",
			nowTP.EventsPerSec, 100*(1-nowTP.EventsPerSec/baseTP.EventsPerSec),
			baseTP.EventsPerSec, 100*regressionTolerance)
	}
	fmt.Fprintf(os.Stderr, "events/sec: baseline %.0f, now %.0f (%+.1f%%)\n",
		baseTP.EventsPerSec, nowTP.EventsPerSec, 100*(nowTP.EventsPerSec/baseTP.EventsPerSec-1))
	if baseTP.AllocsPerOp > 0 {
		if nowTP.AllocsPerOp > baseTP.AllocsPerOp*(1+regressionTolerance) {
			return fmt.Errorf("allocs/op %.0f is %.1f%% above baseline %.0f (tolerance %.0f%%)",
				nowTP.AllocsPerOp, 100*(nowTP.AllocsPerOp/baseTP.AllocsPerOp-1),
				baseTP.AllocsPerOp, 100*regressionTolerance)
		}
		fmt.Fprintf(os.Stderr, "allocs/op: baseline %.0f, now %.0f (%+.1f%%)\n",
			baseTP.AllocsPerOp, nowTP.AllocsPerOp, 100*(nowTP.AllocsPerOp/baseTP.AllocsPerOp-1))
	}
	if nowTP.AllocsPerPacket > maxAllocsPerPacket {
		return fmt.Errorf("allocs/packet %.2f exceeds the absolute ceiling %.2f",
			nowTP.AllocsPerPacket, maxAllocsPerPacket)
	}
	if nowTP.PktsPerOp > 0 {
		fmt.Fprintf(os.Stderr, "allocs/packet: %.2f (ceiling %.2f)\n",
			nowTP.AllocsPerPacket, maxAllocsPerPacket)
	}
	if pool, ok := got.Benchmarks["BenchmarkPacketPool"]; ok && pool.AllocsPerOp != 0 {
		return fmt.Errorf("BenchmarkPacketPool allocates %.0f allocs/op; the pool steady state must be 0",
			pool.AllocsPerOp)
	}
	baseIB := want.Benchmarks["BenchmarkIncastBurst"]
	nowIB := got.Benchmarks["BenchmarkIncastBurst"]
	if baseIB.AllocsPerOp > 0 && nowIB.AllocsPerOp > 0 {
		if nowIB.AllocsPerOp > baseIB.AllocsPerOp*(1+regressionTolerance) {
			return fmt.Errorf("IncastBurst allocs/op %.0f is %.1f%% above baseline %.0f (tolerance %.0f%%)",
				nowIB.AllocsPerOp, 100*(nowIB.AllocsPerOp/baseIB.AllocsPerOp-1),
				baseIB.AllocsPerOp, 100*regressionTolerance)
		}
		fmt.Fprintf(os.Stderr, "IncastBurst allocs/op: baseline %.0f, now %.0f (%+.1f%%)\n",
			baseIB.AllocsPerOp, nowIB.AllocsPerOp, 100*(nowIB.AllocsPerOp/baseIB.AllocsPerOp-1))
	}
	// The parallel engine must pay for itself where it can: with >= 4 procs
	// a 4-shard K=16 run has to clear minShardSpeedup. Below that the
	// sharded run shares one core with the coordinator and a slowdown is
	// expected, so the measurement is recorded but not gated.
	if got.GOMAXPROCS >= 4 && got.ShardSpeedup > 0 && got.ShardSpeedup < minShardSpeedup {
		return fmt.Errorf("shard speedup %.2fx at GOMAXPROCS=%d is below the %.1fx floor",
			got.ShardSpeedup, got.GOMAXPROCS, minShardSpeedup)
	}
	if got.ShardSpeedup > 0 {
		fmt.Fprintf(os.Stderr, "shard speedup: %.2fx at GOMAXPROCS=%d (gated >= %.1fx when GOMAXPROCS >= 4)\n",
			got.ShardSpeedup, got.GOMAXPROCS, minShardSpeedup)
	}
	if got.HybridSpeedup > 0 {
		if got.HybridSpeedup < minHybridSpeedup {
			return fmt.Errorf("hybrid speedup %.2fx is below the %.1fx floor",
				got.HybridSpeedup, minHybridSpeedup)
		}
		fmt.Fprintf(os.Stderr, "hybrid speedup: %.2fx (gated >= %.1fx)\n",
			got.HybridSpeedup, minHybridSpeedup)
	}
	return nil
}
