// Command bench produces and checks the repository's tracked performance
// baseline (BENCH_N.json).
//
// It runs the two headline Go benchmarks (BenchmarkSimulatorThroughput,
// BenchmarkIncastBurst) as a `go test -bench` subprocess, times a fixed
// small-scale fig08+fig09 pass and a full `-all -scale 0.1` experiments
// pass in-process, and writes the numbers as JSON.
//
// Usage:
//
//	bench -out BENCH_3.json              # measure and write the baseline
//	bench -compare BENCH_3.json          # measure and gate: exit 1 on a
//	                                     # >20% events/sec regression
//	bench -out B.json -skip-all          # skip the slow -all pass
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"time"

	"dibs/internal/experiments"
)

// Baseline is the tracked benchmark snapshot.
type Baseline struct {
	GoVersion  string                 `json:"go_version"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Benchmarks map[string]BenchResult `json:"benchmarks"`
	// Fig0809Seconds is the wall time of a fig08+fig09 pass at seed 1,
	// scale 0.1, default workers.
	Fig0809Seconds float64 `json:"fig08_09_seconds"`
	// AllScale01Seconds is the wall time of every experiment at scale 0.1
	// (the `cmd/figures -all -scale 0.1` workload), default workers.
	AllScale01Seconds float64 `json:"all_scale_0.1_seconds"`
}

// BenchResult is one parsed `go test -bench` line.
type BenchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// EventsPerSec is derived from the benchmark's events/op metric; only
	// BenchmarkSimulatorThroughput reports it.
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// regressionTolerance is the fraction of the baseline events/sec a new
// measurement may lose before -compare fails the run.
const regressionTolerance = 0.20

func main() {
	var (
		out     = flag.String("out", "", "write the measured baseline to this JSON file")
		compare = flag.String("compare", "", "baseline JSON to gate against (>20% events/sec regression fails)")
		skipAll = flag.Bool("skip-all", false, "skip the full -all -scale 0.1 experiments pass")
	)
	flag.Parse()
	if *out == "" && *compare == "" {
		fmt.Fprintln(os.Stderr, "bench: need -out and/or -compare")
		os.Exit(2)
	}

	b := Baseline{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]BenchResult{},
	}

	fmt.Fprintln(os.Stderr, "== go test -bench (throughput, incast)")
	if err := runGoBench(&b); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}

	fmt.Fprintln(os.Stderr, "== fig08+fig09 pass (scale 0.1)")
	b.Fig0809Seconds = timeExperiments([]string{"fig08", "fig09"})
	fmt.Fprintf(os.Stderr, "   %.1fs\n", b.Fig0809Seconds)

	if !*skipAll {
		fmt.Fprintln(os.Stderr, "== all experiments (scale 0.1)")
		var ids []string
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
		b.AllScale01Seconds = timeExperiments(ids)
		fmt.Fprintf(os.Stderr, "   %.1fs\n", b.AllScale01Seconds)
	}

	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	os.Stdout.Write(data)

	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	if *compare != "" {
		if err := gate(*compare, b); err != nil {
			fmt.Fprintf(os.Stderr, "bench: REGRESSION: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "no regression vs %s\n", *compare)
	}
}

// benchLineRe matches `go test -bench` result lines, e.g.
// BenchmarkSimulatorThroughput-4  5  244034957 ns/op  425379 events/op  42216896 B/op  1389550 allocs/op
var benchLineRe = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)
var metricRe = regexp.MustCompile(`([\d.e+]+)\s+(\S+)`)

// runGoBench executes the headline benchmarks in a subprocess and parses
// the results into b.
func runGoBench(b *Baseline) error {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "^(BenchmarkSimulatorThroughput|BenchmarkIncastBurst)$",
		"-benchmem", ".")
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(outBytes), -1) {
		m := benchLineRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		var r BenchResult
		var eventsPerOp float64
		for _, mm := range metricRe.FindAllStringSubmatch(m[2], -1) {
			v, err := strconv.ParseFloat(mm[1], 64)
			if err != nil {
				continue
			}
			switch mm[2] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			case "events/op":
				eventsPerOp = v
			}
		}
		if eventsPerOp > 0 && r.NsPerOp > 0 {
			r.EventsPerSec = eventsPerOp / r.NsPerOp * 1e9
		}
		b.Benchmarks[name] = r
		fmt.Fprintf(os.Stderr, "   %s\n", line)
	}
	if _, ok := b.Benchmarks["BenchmarkSimulatorThroughput"]; !ok {
		return fmt.Errorf("BenchmarkSimulatorThroughput missing from bench output")
	}
	return nil
}

// timeExperiments runs the named experiments at the fixed baseline setting
// (seed 1, scale 0.1, default workers) and returns the wall time.
func timeExperiments(ids []string) float64 {
	opts := experiments.Opts{Seed: 1, Scale: 0.1}
	start := time.Now()
	for _, id := range ids {
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "bench: unknown experiment %q\n", id)
			os.Exit(1)
		}
		if tables := e.Run(opts); len(tables) == 0 {
			fmt.Fprintf(os.Stderr, "bench: %s produced no tables\n", id)
			os.Exit(1)
		}
	}
	return time.Since(start).Seconds()
}

// gate fails when the new throughput lost more than regressionTolerance
// versus the stored baseline.
func gate(path string, got Baseline) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want Baseline
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	base := want.Benchmarks["BenchmarkSimulatorThroughput"].EventsPerSec
	now := got.Benchmarks["BenchmarkSimulatorThroughput"].EventsPerSec
	if base <= 0 {
		return fmt.Errorf("%s has no events/sec baseline", path)
	}
	if now < base*(1-regressionTolerance) {
		return fmt.Errorf("events/sec %.0f is %.1f%% below baseline %.0f (tolerance %.0f%%)",
			now, 100*(1-now/base), base, 100*regressionTolerance)
	}
	fmt.Fprintf(os.Stderr, "events/sec: baseline %.0f, now %.0f (%+.1f%%)\n",
		base, now, 100*(now/base-1))
	return nil
}
